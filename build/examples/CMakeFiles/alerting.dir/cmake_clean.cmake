file(REMOVE_RECURSE
  "CMakeFiles/alerting.dir/alerting.cpp.o"
  "CMakeFiles/alerting.dir/alerting.cpp.o.d"
  "alerting"
  "alerting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alerting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
