# Empty compiler generated dependencies file for alerting.
# This may be replaced when dependencies are built.
