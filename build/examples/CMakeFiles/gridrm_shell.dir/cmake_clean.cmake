file(REMOVE_RECURSE
  "CMakeFiles/gridrm_shell.dir/gridrm_shell.cpp.o"
  "CMakeFiles/gridrm_shell.dir/gridrm_shell.cpp.o.d"
  "gridrm_shell"
  "gridrm_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
