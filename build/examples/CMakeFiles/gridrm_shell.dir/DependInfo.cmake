
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gridrm_shell.cpp" "examples/CMakeFiles/gridrm_shell.dir/gridrm_shell.cpp.o" "gcc" "examples/CMakeFiles/gridrm_shell.dir/gridrm_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/global/CMakeFiles/gridrm_global.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gridrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/gridrm_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/gridrm_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gridrm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/glue/CMakeFiles/gridrm_glue.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dbc/CMakeFiles/gridrm_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/gridrm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridrm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
