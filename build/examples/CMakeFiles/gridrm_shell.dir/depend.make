# Empty dependencies file for gridrm_shell.
# This may be replaced when dependencies are built.
