# Empty compiler generated dependencies file for history_report.
# This may be replaced when dependencies are built.
