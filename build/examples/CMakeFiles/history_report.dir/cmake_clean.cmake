file(REMOVE_RECURSE
  "CMakeFiles/history_report.dir/history_report.cpp.o"
  "CMakeFiles/history_report.dir/history_report.cpp.o.d"
  "history_report"
  "history_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
