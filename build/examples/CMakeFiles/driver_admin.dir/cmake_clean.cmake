file(REMOVE_RECURSE
  "CMakeFiles/driver_admin.dir/driver_admin.cpp.o"
  "CMakeFiles/driver_admin.dir/driver_admin.cpp.o.d"
  "driver_admin"
  "driver_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
