# Empty dependencies file for driver_admin.
# This may be replaced when dependencies are built.
