file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/alert_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/alert_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cache_controller_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cache_controller_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/connection_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/connection_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/driver_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/driver_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/event_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/event_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/gateway_config_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/gateway_config_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/request_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/request_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/security_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/security_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/session_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/session_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/site_poller_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/site_poller_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/tree_view_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/tree_view_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
