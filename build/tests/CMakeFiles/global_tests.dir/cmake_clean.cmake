file(REMOVE_RECURSE
  "CMakeFiles/global_tests.dir/global/directory_test.cpp.o"
  "CMakeFiles/global_tests.dir/global/directory_test.cpp.o.d"
  "CMakeFiles/global_tests.dir/global/global_layer_test.cpp.o"
  "CMakeFiles/global_tests.dir/global/global_layer_test.cpp.o.d"
  "global_tests"
  "global_tests.pdb"
  "global_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
