# Empty dependencies file for global_tests.
# This may be replaced when dependencies are built.
