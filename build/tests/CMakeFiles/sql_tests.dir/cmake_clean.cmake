file(REMOVE_RECURSE
  "CMakeFiles/sql_tests.dir/sql/eval_test.cpp.o"
  "CMakeFiles/sql_tests.dir/sql/eval_test.cpp.o.d"
  "CMakeFiles/sql_tests.dir/sql/lexer_test.cpp.o"
  "CMakeFiles/sql_tests.dir/sql/lexer_test.cpp.o.d"
  "CMakeFiles/sql_tests.dir/sql/parser_test.cpp.o"
  "CMakeFiles/sql_tests.dir/sql/parser_test.cpp.o.d"
  "CMakeFiles/sql_tests.dir/sql/random_property_test.cpp.o"
  "CMakeFiles/sql_tests.dir/sql/random_property_test.cpp.o.d"
  "sql_tests"
  "sql_tests.pdb"
  "sql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
