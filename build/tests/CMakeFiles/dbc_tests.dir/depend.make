# Empty dependencies file for dbc_tests.
# This may be replaced when dependencies are built.
