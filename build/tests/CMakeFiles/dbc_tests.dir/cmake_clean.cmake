file(REMOVE_RECURSE
  "CMakeFiles/dbc_tests.dir/dbc/driver_registry_test.cpp.o"
  "CMakeFiles/dbc_tests.dir/dbc/driver_registry_test.cpp.o.d"
  "CMakeFiles/dbc_tests.dir/dbc/result_io_test.cpp.o"
  "CMakeFiles/dbc_tests.dir/dbc/result_io_test.cpp.o.d"
  "CMakeFiles/dbc_tests.dir/dbc/result_set_test.cpp.o"
  "CMakeFiles/dbc_tests.dir/dbc/result_set_test.cpp.o.d"
  "dbc_tests"
  "dbc_tests.pdb"
  "dbc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
