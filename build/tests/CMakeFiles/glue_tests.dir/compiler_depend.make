# Empty compiler generated dependencies file for glue_tests.
# This may be replaced when dependencies are built.
