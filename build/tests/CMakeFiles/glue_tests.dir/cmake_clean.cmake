file(REMOVE_RECURSE
  "CMakeFiles/glue_tests.dir/glue/schema_manager_test.cpp.o"
  "CMakeFiles/glue_tests.dir/glue/schema_manager_test.cpp.o.d"
  "CMakeFiles/glue_tests.dir/glue/schema_test.cpp.o"
  "CMakeFiles/glue_tests.dir/glue/schema_test.cpp.o.d"
  "glue_tests"
  "glue_tests.pdb"
  "glue_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glue_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
