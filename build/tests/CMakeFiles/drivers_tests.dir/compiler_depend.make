# Empty compiler generated dependencies file for drivers_tests.
# This may be replaced when dependencies are built.
