file(REMOVE_RECURSE
  "CMakeFiles/drivers_tests.dir/drivers/all_drivers_test.cpp.o"
  "CMakeFiles/drivers_tests.dir/drivers/all_drivers_test.cpp.o.d"
  "CMakeFiles/drivers_tests.dir/drivers/driver_common_test.cpp.o"
  "CMakeFiles/drivers_tests.dir/drivers/driver_common_test.cpp.o.d"
  "CMakeFiles/drivers_tests.dir/drivers/ganglia_driver_test.cpp.o"
  "CMakeFiles/drivers_tests.dir/drivers/ganglia_driver_test.cpp.o.d"
  "CMakeFiles/drivers_tests.dir/drivers/snmp_driver_test.cpp.o"
  "CMakeFiles/drivers_tests.dir/drivers/snmp_driver_test.cpp.o.d"
  "CMakeFiles/drivers_tests.dir/drivers/text_drivers_test.cpp.o"
  "CMakeFiles/drivers_tests.dir/drivers/text_drivers_test.cpp.o.d"
  "drivers_tests"
  "drivers_tests.pdb"
  "drivers_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drivers_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
