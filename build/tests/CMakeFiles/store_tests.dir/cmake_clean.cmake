file(REMOVE_RECURSE
  "CMakeFiles/store_tests.dir/store/aggregate_test.cpp.o"
  "CMakeFiles/store_tests.dir/store/aggregate_test.cpp.o.d"
  "CMakeFiles/store_tests.dir/store/database_test.cpp.o"
  "CMakeFiles/store_tests.dir/store/database_test.cpp.o.d"
  "store_tests"
  "store_tests.pdb"
  "store_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
