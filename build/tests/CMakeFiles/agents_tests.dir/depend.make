# Empty dependencies file for agents_tests.
# This may be replaced when dependencies are built.
