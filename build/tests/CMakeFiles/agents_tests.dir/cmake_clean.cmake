file(REMOVE_RECURSE
  "CMakeFiles/agents_tests.dir/agents/ganglia_agent_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/ganglia_agent_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/mds_agent_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/mds_agent_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/snmp_agent_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/snmp_agent_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/snmp_codec_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/snmp_codec_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/sqlsrc_agent_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/sqlsrc_agent_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/text_agents_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/text_agents_test.cpp.o.d"
  "agents_tests"
  "agents_tests.pdb"
  "agents_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
