# Empty compiler generated dependencies file for gridrm_store.
# This may be replaced when dependencies are built.
