file(REMOVE_RECURSE
  "libgridrm_store.a"
)
