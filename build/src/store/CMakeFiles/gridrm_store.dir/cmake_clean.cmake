file(REMOVE_RECURSE
  "CMakeFiles/gridrm_store.dir/database.cpp.o"
  "CMakeFiles/gridrm_store.dir/database.cpp.o.d"
  "libgridrm_store.a"
  "libgridrm_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
