file(REMOVE_RECURSE
  "CMakeFiles/gridrm_dbc.dir/driver_registry.cpp.o"
  "CMakeFiles/gridrm_dbc.dir/driver_registry.cpp.o.d"
  "CMakeFiles/gridrm_dbc.dir/result_io.cpp.o"
  "CMakeFiles/gridrm_dbc.dir/result_io.cpp.o.d"
  "CMakeFiles/gridrm_dbc.dir/result_set.cpp.o"
  "CMakeFiles/gridrm_dbc.dir/result_set.cpp.o.d"
  "libgridrm_dbc.a"
  "libgridrm_dbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_dbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
