# Empty dependencies file for gridrm_dbc.
# This may be replaced when dependencies are built.
