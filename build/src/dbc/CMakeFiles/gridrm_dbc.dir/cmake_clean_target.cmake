file(REMOVE_RECURSE
  "libgridrm_dbc.a"
)
