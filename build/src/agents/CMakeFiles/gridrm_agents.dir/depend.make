# Empty dependencies file for gridrm_agents.
# This may be replaced when dependencies are built.
