file(REMOVE_RECURSE
  "libgridrm_agents.a"
)
