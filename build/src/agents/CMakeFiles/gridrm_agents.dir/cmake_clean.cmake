file(REMOVE_RECURSE
  "CMakeFiles/gridrm_agents.dir/ganglia_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/ganglia_agent.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/mds_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/mds_agent.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/netlogger_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/netlogger_agent.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/nws_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/nws_agent.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/scms_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/scms_agent.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/site.cpp.o"
  "CMakeFiles/gridrm_agents.dir/site.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/snmp_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/snmp_agent.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/snmp_codec.cpp.o"
  "CMakeFiles/gridrm_agents.dir/snmp_codec.cpp.o.d"
  "CMakeFiles/gridrm_agents.dir/sqlsrc_agent.cpp.o"
  "CMakeFiles/gridrm_agents.dir/sqlsrc_agent.cpp.o.d"
  "libgridrm_agents.a"
  "libgridrm_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
