
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/ganglia_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/ganglia_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/ganglia_agent.cpp.o.d"
  "/root/repo/src/agents/mds_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/mds_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/mds_agent.cpp.o.d"
  "/root/repo/src/agents/netlogger_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/netlogger_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/netlogger_agent.cpp.o.d"
  "/root/repo/src/agents/nws_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/nws_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/nws_agent.cpp.o.d"
  "/root/repo/src/agents/scms_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/scms_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/scms_agent.cpp.o.d"
  "/root/repo/src/agents/site.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/site.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/site.cpp.o.d"
  "/root/repo/src/agents/snmp_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/snmp_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/snmp_agent.cpp.o.d"
  "/root/repo/src/agents/snmp_codec.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/snmp_codec.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/snmp_codec.cpp.o.d"
  "/root/repo/src/agents/sqlsrc_agent.cpp" "src/agents/CMakeFiles/gridrm_agents.dir/sqlsrc_agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridrm_agents.dir/sqlsrc_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gridrm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gridrm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/glue/CMakeFiles/gridrm_glue.dir/DependInfo.cmake"
  "/root/repo/build/src/dbc/CMakeFiles/gridrm_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/gridrm_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
