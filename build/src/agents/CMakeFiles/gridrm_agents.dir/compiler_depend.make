# Empty compiler generated dependencies file for gridrm_agents.
# This may be replaced when dependencies are built.
