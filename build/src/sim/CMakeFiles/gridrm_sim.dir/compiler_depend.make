# Empty compiler generated dependencies file for gridrm_sim.
# This may be replaced when dependencies are built.
