file(REMOVE_RECURSE
  "libgridrm_sim.a"
)
