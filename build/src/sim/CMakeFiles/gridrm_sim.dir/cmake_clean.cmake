file(REMOVE_RECURSE
  "CMakeFiles/gridrm_sim.dir/host_model.cpp.o"
  "CMakeFiles/gridrm_sim.dir/host_model.cpp.o.d"
  "libgridrm_sim.a"
  "libgridrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
