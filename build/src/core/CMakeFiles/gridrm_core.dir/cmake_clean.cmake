file(REMOVE_RECURSE
  "CMakeFiles/gridrm_core.dir/alert_manager.cpp.o"
  "CMakeFiles/gridrm_core.dir/alert_manager.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/cache_controller.cpp.o"
  "CMakeFiles/gridrm_core.dir/cache_controller.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/connection_manager.cpp.o"
  "CMakeFiles/gridrm_core.dir/connection_manager.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/driver_manager.cpp.o"
  "CMakeFiles/gridrm_core.dir/driver_manager.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/event.cpp.o"
  "CMakeFiles/gridrm_core.dir/event.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/event_manager.cpp.o"
  "CMakeFiles/gridrm_core.dir/event_manager.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/gateway.cpp.o"
  "CMakeFiles/gridrm_core.dir/gateway.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/request_manager.cpp.o"
  "CMakeFiles/gridrm_core.dir/request_manager.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/security.cpp.o"
  "CMakeFiles/gridrm_core.dir/security.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/session_manager.cpp.o"
  "CMakeFiles/gridrm_core.dir/session_manager.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/site_poller.cpp.o"
  "CMakeFiles/gridrm_core.dir/site_poller.cpp.o.d"
  "CMakeFiles/gridrm_core.dir/tree_view.cpp.o"
  "CMakeFiles/gridrm_core.dir/tree_view.cpp.o.d"
  "libgridrm_core.a"
  "libgridrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
