# Empty compiler generated dependencies file for gridrm_core.
# This may be replaced when dependencies are built.
