
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alert_manager.cpp" "src/core/CMakeFiles/gridrm_core.dir/alert_manager.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/alert_manager.cpp.o.d"
  "/root/repo/src/core/cache_controller.cpp" "src/core/CMakeFiles/gridrm_core.dir/cache_controller.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/cache_controller.cpp.o.d"
  "/root/repo/src/core/connection_manager.cpp" "src/core/CMakeFiles/gridrm_core.dir/connection_manager.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/connection_manager.cpp.o.d"
  "/root/repo/src/core/driver_manager.cpp" "src/core/CMakeFiles/gridrm_core.dir/driver_manager.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/driver_manager.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/gridrm_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/event.cpp.o.d"
  "/root/repo/src/core/event_manager.cpp" "src/core/CMakeFiles/gridrm_core.dir/event_manager.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/event_manager.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/core/CMakeFiles/gridrm_core.dir/gateway.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/gateway.cpp.o.d"
  "/root/repo/src/core/request_manager.cpp" "src/core/CMakeFiles/gridrm_core.dir/request_manager.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/request_manager.cpp.o.d"
  "/root/repo/src/core/security.cpp" "src/core/CMakeFiles/gridrm_core.dir/security.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/security.cpp.o.d"
  "/root/repo/src/core/session_manager.cpp" "src/core/CMakeFiles/gridrm_core.dir/session_manager.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/session_manager.cpp.o.d"
  "/root/repo/src/core/site_poller.cpp" "src/core/CMakeFiles/gridrm_core.dir/site_poller.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/site_poller.cpp.o.d"
  "/root/repo/src/core/tree_view.cpp" "src/core/CMakeFiles/gridrm_core.dir/tree_view.cpp.o" "gcc" "src/core/CMakeFiles/gridrm_core.dir/tree_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gridrm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/gridrm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/dbc/CMakeFiles/gridrm_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/glue/CMakeFiles/gridrm_glue.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gridrm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/drivers/CMakeFiles/gridrm_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/gridrm_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
