file(REMOVE_RECURSE
  "libgridrm_core.a"
)
