# Empty compiler generated dependencies file for gridrm_global.
# This may be replaced when dependencies are built.
