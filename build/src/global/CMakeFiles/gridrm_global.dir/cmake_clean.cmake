file(REMOVE_RECURSE
  "CMakeFiles/gridrm_global.dir/directory.cpp.o"
  "CMakeFiles/gridrm_global.dir/directory.cpp.o.d"
  "CMakeFiles/gridrm_global.dir/global_layer.cpp.o"
  "CMakeFiles/gridrm_global.dir/global_layer.cpp.o.d"
  "libgridrm_global.a"
  "libgridrm_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
