file(REMOVE_RECURSE
  "libgridrm_global.a"
)
