file(REMOVE_RECURSE
  "libgridrm_sql.a"
)
