file(REMOVE_RECURSE
  "CMakeFiles/gridrm_sql.dir/ast.cpp.o"
  "CMakeFiles/gridrm_sql.dir/ast.cpp.o.d"
  "CMakeFiles/gridrm_sql.dir/eval.cpp.o"
  "CMakeFiles/gridrm_sql.dir/eval.cpp.o.d"
  "CMakeFiles/gridrm_sql.dir/lexer.cpp.o"
  "CMakeFiles/gridrm_sql.dir/lexer.cpp.o.d"
  "CMakeFiles/gridrm_sql.dir/parser.cpp.o"
  "CMakeFiles/gridrm_sql.dir/parser.cpp.o.d"
  "libgridrm_sql.a"
  "libgridrm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
