# Empty compiler generated dependencies file for gridrm_sql.
# This may be replaced when dependencies are built.
