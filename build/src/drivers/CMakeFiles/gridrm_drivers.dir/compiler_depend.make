# Empty compiler generated dependencies file for gridrm_drivers.
# This may be replaced when dependencies are built.
