file(REMOVE_RECURSE
  "CMakeFiles/gridrm_drivers.dir/defaults.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/defaults.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/driver_common.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/driver_common.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/ganglia_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/ganglia_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/mds_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/mds_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/mock_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/mock_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/netlogger_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/netlogger_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/nws_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/nws_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/scms_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/scms_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/snmp_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/snmp_driver.cpp.o.d"
  "CMakeFiles/gridrm_drivers.dir/sqlsrc_driver.cpp.o"
  "CMakeFiles/gridrm_drivers.dir/sqlsrc_driver.cpp.o.d"
  "libgridrm_drivers.a"
  "libgridrm_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
