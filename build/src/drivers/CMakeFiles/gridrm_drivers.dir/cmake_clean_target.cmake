file(REMOVE_RECURSE
  "libgridrm_drivers.a"
)
