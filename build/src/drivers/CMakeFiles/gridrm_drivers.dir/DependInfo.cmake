
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drivers/defaults.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/defaults.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/defaults.cpp.o.d"
  "/root/repo/src/drivers/driver_common.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/driver_common.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/driver_common.cpp.o.d"
  "/root/repo/src/drivers/ganglia_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/ganglia_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/ganglia_driver.cpp.o.d"
  "/root/repo/src/drivers/mds_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/mds_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/mds_driver.cpp.o.d"
  "/root/repo/src/drivers/mock_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/mock_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/mock_driver.cpp.o.d"
  "/root/repo/src/drivers/netlogger_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/netlogger_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/netlogger_driver.cpp.o.d"
  "/root/repo/src/drivers/nws_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/nws_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/nws_driver.cpp.o.d"
  "/root/repo/src/drivers/scms_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/scms_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/scms_driver.cpp.o.d"
  "/root/repo/src/drivers/snmp_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/snmp_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/snmp_driver.cpp.o.d"
  "/root/repo/src/drivers/sqlsrc_driver.cpp" "src/drivers/CMakeFiles/gridrm_drivers.dir/sqlsrc_driver.cpp.o" "gcc" "src/drivers/CMakeFiles/gridrm_drivers.dir/sqlsrc_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gridrm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/gridrm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/dbc/CMakeFiles/gridrm_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/glue/CMakeFiles/gridrm_glue.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gridrm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/gridrm_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
