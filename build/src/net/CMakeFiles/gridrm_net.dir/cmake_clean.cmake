file(REMOVE_RECURSE
  "CMakeFiles/gridrm_net.dir/network.cpp.o"
  "CMakeFiles/gridrm_net.dir/network.cpp.o.d"
  "libgridrm_net.a"
  "libgridrm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
