file(REMOVE_RECURSE
  "libgridrm_net.a"
)
