# Empty compiler generated dependencies file for gridrm_net.
# This may be replaced when dependencies are built.
