# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sql")
subdirs("dbc")
subdirs("net")
subdirs("sim")
subdirs("glue")
subdirs("store")
subdirs("agents")
subdirs("drivers")
subdirs("core")
subdirs("global")
