# Empty dependencies file for gridrm_glue.
# This may be replaced when dependencies are built.
