file(REMOVE_RECURSE
  "libgridrm_glue.a"
)
