file(REMOVE_RECURSE
  "CMakeFiles/gridrm_glue.dir/schema.cpp.o"
  "CMakeFiles/gridrm_glue.dir/schema.cpp.o.d"
  "CMakeFiles/gridrm_glue.dir/schema_manager.cpp.o"
  "CMakeFiles/gridrm_glue.dir/schema_manager.cpp.o.d"
  "libgridrm_glue.a"
  "libgridrm_glue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_glue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
