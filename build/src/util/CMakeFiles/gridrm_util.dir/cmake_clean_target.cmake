file(REMOVE_RECURSE
  "libgridrm_util.a"
)
