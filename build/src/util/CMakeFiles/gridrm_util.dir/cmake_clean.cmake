file(REMOVE_RECURSE
  "CMakeFiles/gridrm_util.dir/clock.cpp.o"
  "CMakeFiles/gridrm_util.dir/clock.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/config.cpp.o"
  "CMakeFiles/gridrm_util.dir/config.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/log.cpp.o"
  "CMakeFiles/gridrm_util.dir/log.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/strings.cpp.o"
  "CMakeFiles/gridrm_util.dir/strings.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/thread_pool.cpp.o"
  "CMakeFiles/gridrm_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/url.cpp.o"
  "CMakeFiles/gridrm_util.dir/url.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/value.cpp.o"
  "CMakeFiles/gridrm_util.dir/value.cpp.o.d"
  "CMakeFiles/gridrm_util.dir/xml.cpp.o"
  "CMakeFiles/gridrm_util.dir/xml.cpp.o.d"
  "libgridrm_util.a"
  "libgridrm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridrm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
