# Empty dependencies file for gridrm_util.
# This may be replaced when dependencies are built.
