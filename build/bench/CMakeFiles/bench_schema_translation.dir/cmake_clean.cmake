file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_translation.dir/bench_schema_translation.cpp.o"
  "CMakeFiles/bench_schema_translation.dir/bench_schema_translation.cpp.o.d"
  "bench_schema_translation"
  "bench_schema_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
