# Empty dependencies file for bench_schema_translation.
# This may be replaced when dependencies are built.
