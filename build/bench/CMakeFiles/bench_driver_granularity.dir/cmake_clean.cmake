file(REMOVE_RECURSE
  "CMakeFiles/bench_driver_granularity.dir/bench_driver_granularity.cpp.o"
  "CMakeFiles/bench_driver_granularity.dir/bench_driver_granularity.cpp.o.d"
  "bench_driver_granularity"
  "bench_driver_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_driver_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
