# Empty compiler generated dependencies file for bench_connection_pool.
# This may be replaced when dependencies are built.
