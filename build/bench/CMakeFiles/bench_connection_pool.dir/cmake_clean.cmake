file(REMOVE_RECURSE
  "CMakeFiles/bench_connection_pool.dir/bench_connection_pool.cpp.o"
  "CMakeFiles/bench_connection_pool.dir/bench_connection_pool.cpp.o.d"
  "bench_connection_pool"
  "bench_connection_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connection_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
