file(REMOVE_RECURSE
  "CMakeFiles/bench_gateway_overhead.dir/bench_gateway_overhead.cpp.o"
  "CMakeFiles/bench_gateway_overhead.dir/bench_gateway_overhead.cpp.o.d"
  "bench_gateway_overhead"
  "bench_gateway_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gateway_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
