# Empty compiler generated dependencies file for bench_gateway_overhead.
# This may be replaced when dependencies are built.
