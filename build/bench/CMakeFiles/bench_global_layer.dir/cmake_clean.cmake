file(REMOVE_RECURSE
  "CMakeFiles/bench_global_layer.dir/bench_global_layer.cpp.o"
  "CMakeFiles/bench_global_layer.dir/bench_global_layer.cpp.o.d"
  "bench_global_layer"
  "bench_global_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
