# Empty compiler generated dependencies file for bench_global_layer.
# This may be replaced when dependencies are built.
