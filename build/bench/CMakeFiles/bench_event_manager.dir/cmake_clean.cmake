file(REMOVE_RECURSE
  "CMakeFiles/bench_event_manager.dir/bench_event_manager.cpp.o"
  "CMakeFiles/bench_event_manager.dir/bench_event_manager.cpp.o.d"
  "bench_event_manager"
  "bench_event_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
