# Empty compiler generated dependencies file for bench_event_manager.
# This may be replaced when dependencies are built.
