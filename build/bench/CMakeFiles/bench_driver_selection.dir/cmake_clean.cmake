file(REMOVE_RECURSE
  "CMakeFiles/bench_driver_selection.dir/bench_driver_selection.cpp.o"
  "CMakeFiles/bench_driver_selection.dir/bench_driver_selection.cpp.o.d"
  "bench_driver_selection"
  "bench_driver_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_driver_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
