file(REMOVE_RECURSE
  "CMakeFiles/bench_gateway_cache.dir/bench_gateway_cache.cpp.o"
  "CMakeFiles/bench_gateway_cache.dir/bench_gateway_cache.cpp.o.d"
  "bench_gateway_cache"
  "bench_gateway_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gateway_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
