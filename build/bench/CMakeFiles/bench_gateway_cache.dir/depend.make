# Empty dependencies file for bench_gateway_cache.
# This may be replaced when dependencies are built.
