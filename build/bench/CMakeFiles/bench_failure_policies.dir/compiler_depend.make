# Empty compiler generated dependencies file for bench_failure_policies.
# This may be replaced when dependencies are built.
