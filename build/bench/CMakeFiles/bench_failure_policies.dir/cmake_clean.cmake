file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_policies.dir/bench_failure_policies.cpp.o"
  "CMakeFiles/bench_failure_policies.dir/bench_failure_policies.cpp.o.d"
  "bench_failure_policies"
  "bench_failure_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
