file(REMOVE_RECURSE
  "CMakeFiles/bench_sql_engine.dir/bench_sql_engine.cpp.o"
  "CMakeFiles/bench_sql_engine.dir/bench_sql_engine.cpp.o.d"
  "bench_sql_engine"
  "bench_sql_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sql_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
