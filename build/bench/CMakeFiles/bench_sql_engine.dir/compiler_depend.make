# Empty compiler generated dependencies file for bench_sql_engine.
# This may be replaced when dependencies are built.
