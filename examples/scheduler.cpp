// scheduler: the paper's motivating high-level client (section 1: the
// homogeneous view "can then be used by a range of high-level tools for
// tasks such as intelligent system monitoring, scheduling,
// load-balancing, and task-migration").
//
// A toy Grid scheduler places a stream of jobs: for each job it asks
// GridRM -- through one gateway, across three sites -- for current
// per-host load, picks the least-loaded eligible host (enough free
// memory), "runs" the job there, and periodically prints utilisation
// summaries computed with GROUP BY aggregates over the harvested
// history.
//
//   $ ./scheduler [jobs]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "gridrm/gridrm.hpp"

using namespace gridrm;

int main(int argc, char** argv) {
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 12;

  util::SimClock clock;
  net::Network network(clock, 71);
  global::GmaDirectory directory(network,
                                 {"gma.directory", global::kDirectoryPort});

  struct Site {
    std::unique_ptr<agents::SiteSimulation> agents;
    std::unique_ptr<core::Gateway> gateway;
    std::unique_ptr<global::GlobalLayer> global;
    std::string admin;
  };
  std::vector<Site> sites;
  const char* names[] = {"siteA", "siteB", "siteC"};
  for (int i = 0; i < 3; ++i) {
    Site site;
    agents::SiteOptions options;
    options.siteName = names[i];
    options.hostCount = 3;
    options.seed = 500 + i;
    site.agents =
        std::make_unique<agents::SiteSimulation>(network, clock, options);
    core::GatewayOptions gatewayOptions;
    gatewayOptions.name = std::string("gw-") + names[i];
    gatewayOptions.host = std::string("gw.") + names[i];
    gatewayOptions.cacheTtl = 10 * util::kSecond;
    site.gateway =
        std::make_unique<core::Gateway>(network, clock, gatewayOptions);
    site.admin = site.gateway->openSession(core::Principal::admin());
    for (const auto& url : site.agents->dataSourceUrls()) {
      site.gateway->addDataSource(site.admin, url);
    }
    site.global = std::make_unique<global::GlobalLayer>(
        *site.gateway, net::Address{"gma.directory", global::kDirectoryPort});
    site.global->start();
    sites.push_back(std::move(site));
  }
  clock.advance(5 * 60 * util::kSecond);

  // The scheduler talks to siteA's gateway only.
  Site& entry = sites[0];
  std::vector<std::string> sources;
  for (auto& site : sites) sources.push_back(site.agents->headUrl("sql"));

  std::map<std::string, int> placements;
  core::QueryOptions fresh;
  fresh.useCache = false;
  fresh.recordHistory = true;  // build up history for the summary report

  std::printf("== placing %d jobs across the Grid ==\n", jobs);
  for (int job = 0; job < jobs; ++job) {
    // One consolidated view of every candidate host, with derived
    // per-CPU load computed in SQL.
    auto result = entry.global->globalQuery(
        entry.admin, sources,
        "SELECT HostName, ClusterName, Load1 / CPUCount AS perCpu "
        "FROM Processor ORDER BY Load1 / CPUCount",
        fresh);
    if (!result.complete() || result.rows->rowCount() == 0) {
      std::printf("job %02d: no candidates (%zu failures)\n", job,
                  result.failures.size());
      continue;
    }
    // Consolidation unions per-source results (each sorted locally), so
    // the Grid-wide minimum is picked client-side.
    std::string chosen;
    std::string cluster;
    double perCpu = 1e18;
    result.rows->rewind();
    while (result.rows->next()) {
      const double candidate = result.rows->getReal("perCpu");
      if (candidate < perCpu) {
        perCpu = candidate;
        chosen = result.rows->getString("HostName");
        cluster = result.rows->getString("ClusterName");
      }
    }
    std::printf("job %02d -> %-14s (%s, load/cpu %.2f)\n", job,
                chosen.c_str(), cluster.c_str(), perCpu);
    ++placements[chosen];
    clock.advance(30 * util::kSecond);  // jobs arrive every 30 s
  }

  // Placement distribution.
  std::printf("\n== placement distribution ==\n");
  for (const auto& [host, count] : placements) {
    std::printf("%-14s %d job(s)\n", host.c_str(), count);
  }

  // Utilisation summary over harvested history, via GROUP BY aggregates.
  std::printf("\n== per-cluster utilisation (history, GROUP BY) ==\n");
  // History rows carry the projection the scheduler recorded
  // (HostName, ClusterName, perCpu) plus Source and RecordedAt.
  auto summary = entry.gateway->submitHistoricalQuery(
      entry.admin,
      "SELECT ClusterName, COUNT(*) AS samples, AVG(perCpu) AS avgPerCpu, "
      "MAX(perCpu) AS peak FROM HistoryProcessor "
      "GROUP BY ClusterName ORDER BY AVG(perCpu) DESC");
  std::printf("%s", core::renderTable(*summary).c_str());

  std::printf("\n== per-host peak load/cpu (history) ==\n");
  auto peaks = entry.gateway->submitHistoricalQuery(
      entry.admin,
      "SELECT HostName, MAX(perCpu) AS peak, COUNT(*) AS samples "
      "FROM HistoryProcessor GROUP BY HostName ORDER BY MAX(perCpu) DESC LIMIT 5");
  std::printf("%s", core::renderTable(*peaks).c_str());
  return 0;
}
