// Quickstart: stand up one simulated Grid site, run a GridRM gateway
// over it, and query heterogeneous agents with plain SQL.
//
//   $ ./quickstart
//
// This walks the paper's core loop (Fig. 3): SQL in, driver selected
// (statically or dynamically), native protocol spoken, GLUE rows out.
#include <cstdio>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/tree_view.hpp"

using namespace gridrm;

int main() {
  // A simulated clock makes the demo deterministic; swap in
  // util::SystemClock for wall-time operation.
  util::SimClock clock;
  net::Network network(clock, /*seed=*/7);

  // One Grid site: 4 hosts, each with an SNMP agent, plus Ganglia, NWS,
  // NetLogger, SCMS and a GLUE-native SQL source on the head node.
  agents::SiteOptions siteOptions;
  siteOptions.siteName = "siteA";
  siteOptions.hostCount = 4;
  agents::SiteSimulation site(network, clock, siteOptions);
  clock.advance(10 * 60 * util::kSecond);  // let the site "run" 10 minutes

  // The gateway: registers the default driver set on startup.
  core::GatewayOptions gatewayOptions;
  gatewayOptions.name = "gw-siteA";
  gatewayOptions.host = "gw.siteA";
  core::Gateway gateway(network, clock, gatewayOptions);

  const std::string session =
      gateway.openSession(core::Principal::admin());
  for (const auto& url : site.dataSourceUrls()) {
    gateway.addDataSource(session, url);
  }

  std::printf("== GridRM quickstart: site %s, %zu data sources ==\n\n",
              site.name().c_str(), gateway.dataSources().size());

  // 1. Query one SNMP agent (fine-grained binary protocol).
  {
    auto result = gateway.submitQuery(
        session, {site.headUrl("snmp")},
        "SELECT HostName, Load1, Load5, UserPct FROM Processor");
    std::printf("-- Processor via SNMP --\n%s\n",
                core::renderTable(*result.rows).c_str());
  }

  // 2. The same GLUE group via Ganglia (coarse-grained XML): one fetch,
  //    every host in the cluster.
  {
    auto result = gateway.submitQuery(
        session, {site.headUrl("ganglia")},
        "SELECT HostName, Load1 FROM Processor ORDER BY Load1 DESC");
    std::printf("-- Processor via Ganglia (whole cluster, one dump) --\n%s\n",
                core::renderTable(*result.rows).c_str());
  }

  // 3. The paper's dynamic-location form: no subprotocol in the URL;
  //    the gateway scans registered drivers for one that accepts it.
  {
    const std::string anonymous = "jdbc:://siteA-node02:161/perfdata";
    auto result = gateway.submitQuery(
        session, {anonymous}, "SELECT HostName, Load1 FROM Processor");
    std::printf("-- Dynamic driver location for %s --\n", anonymous.c_str());
    std::printf("selected driver: %s\n%s\n",
                gateway.driverManager().cachedDriver(anonymous).c_str(),
                core::renderTable(*result.rows).c_str());
  }

  // 4. A site-wide consolidated query across every registered source.
  {
    auto result =
        gateway.submitSiteQuery(session, "SELECT HostName, Load1 FROM Processor");
    std::printf("-- Consolidated site query (all sources) --\n");
    std::printf("rows: %zu, sources: %zu, failures: %zu%s\n\n",
                result.rows->rowCount(), result.sourcesQueried,
                result.failures.size(),
                result.failures.empty() ? "" : " (NWS has no Processor group)");
  }

  // 5. NWS forecasts through the same SQL front door.
  {
    auto result = gateway.submitQuery(
        session, {site.headUrl("nws")},
        "SELECT Resource, Measurement, Forecast, ForecastError "
        "FROM NetworkForecast");
    std::printf("-- Network Weather Service forecasts --\n%s\n",
                core::renderTable(*result.rows).c_str());
  }

  // 6. The cached tree view of Fig. 9.
  {
    std::vector<core::TreeViewEntry> entries;
    entries.push_back({site.headUrl("snmp"),
                       "SELECT HostName, Load1, Load5, UserPct FROM Processor"});
    entries.push_back({site.headUrl("scms"), "SELECT * FROM Host"});
    std::printf("-- Gateway cached view (Fig. 9) --\n%s\n",
                core::renderCachedTree(gateway.name(), gateway.cache(), clock,
                                       entries)
                    .c_str());
  }

  std::printf("done.\n");
  return 0;
}
