// gridrm_shell: an interactive SQL console against a simulated Grid --
// the closest text-mode equivalent of pointing a browser at the paper's
// JSP interface.
//
//   $ ./gridrm_shell
//   gridrm> sources
//   gridrm> use jdbc:ganglia://siteA-node00:8649/perfdata
//   gridrm> SELECT HostName, Load1 FROM Processor ORDER BY Load1 DESC
//   gridrm> all SELECT HostName, RAMAvailable FROM Memory
//   gridrm> tick 60            -- advance simulated time by 60 s
//   gridrm> help
//
// Also accepts a script on stdin, so it doubles as a batch query tool:
//   echo "all SELECT * FROM Host" | ./gridrm_shell
#include <cstdio>
#include <iostream>
#include <sstream>

#include "gridrm/gridrm.hpp"
#include "gridrm/util/strings.hpp"

#include <unistd.h>

using namespace gridrm;

namespace {

void printHelp() {
  std::printf(
      "commands:\n"
      "  sources                 list registered data sources\n"
      "  drivers                 list registered drivers\n"
      "  use <url>               set the target data source\n"
      "  all <SELECT ...>        query every registered source (consolidated)\n"
      "  history <SELECT ...>    query the gateway's historical database\n"
      "  tick <seconds>          advance simulated time\n"
      "  stats                   gateway statistics\n"
      "  <SELECT ...>            query the current source\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  util::SimClock clock;
  net::Network network(clock, 61);
  agents::SiteOptions siteOptions;
  siteOptions.siteName = "siteA";
  siteOptions.hostCount = 4;
  agents::SiteSimulation site(network, clock, siteOptions);
  clock.advance(5 * 60 * util::kSecond);

  core::GatewayOptions gatewayOptions;
  gatewayOptions.name = "gw-siteA";
  gatewayOptions.host = "gw.siteA";
  core::Gateway gateway(network, clock, gatewayOptions);
  const std::string session = gateway.openSession(core::Principal::admin());
  for (const auto& url : site.dataSourceUrls()) {
    gateway.addDataSource(session, url);
  }

  std::string current = site.headUrl("sql");
  const bool interactive = isatty(0);
  if (interactive) {
    std::printf("GridRM shell -- site %s, %zu sources. 'help' for commands.\n",
                site.name().c_str(), gateway.dataSources().size());
  }

  std::string line;
  while (true) {
    if (interactive) {
      std::printf("gridrm> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed(util::trim(line));
    if (trimmed.empty()) continue;

    std::istringstream words(trimmed);
    std::string cmd;
    words >> cmd;
    const std::string lower = util::toLower(cmd);

    try {
      if (lower == "quit" || lower == "exit") break;
      if (lower == "help") {
        printHelp();
      } else if (lower == "sources") {
        for (const auto& url : gateway.dataSources()) {
          std::printf("%s%s\n", url.c_str(),
                      url == current ? "   <- current" : "");
        }
      } else if (lower == "drivers") {
        for (const auto& name : gateway.listDrivers(session)) {
          std::printf("%s\n", name.c_str());
        }
      } else if (lower == "use") {
        std::string url;
        words >> url;
        if (!util::Url::parse(url)) {
          std::printf("malformed URL\n");
        } else {
          current = url;
          std::printf("current source: %s\n", current.c_str());
        }
      } else if (lower == "tick") {
        long long seconds = 0;
        words >> seconds;
        clock.advance(seconds * util::kSecond);
        std::printf("t = %lld s\n",
                    static_cast<long long>(clock.now() / util::kSecond));
      } else if (lower == "stats") {
        const auto rm = gateway.requestManager().stats();
        const auto cache = gateway.cache().stats();
        const auto pool = gateway.connectionManager().stats();
        const auto dm = gateway.driverManager().stats();
        std::printf("queries=%llu sourceQueries=%llu errors=%llu\n",
                    (unsigned long long)rm.queries,
                    (unsigned long long)rm.sourceQueries,
                    (unsigned long long)rm.sourceErrors);
        std::printf("cache hits=%llu misses=%llu  pool hits=%llu creates=%llu\n",
                    (unsigned long long)cache.hits,
                    (unsigned long long)cache.misses,
                    (unsigned long long)pool.poolHits,
                    (unsigned long long)pool.creations);
        std::printf("driver selections=%llu cacheHits=%llu scans=%llu\n",
                    (unsigned long long)dm.selections,
                    (unsigned long long)dm.cacheHits,
                    (unsigned long long)dm.dynamicScans);
      } else if (lower == "all") {
        std::string sql;
        std::getline(words, sql);
        auto result = gateway.submitSiteQuery(session, std::string(util::trim(sql)));
        std::printf("%s", core::renderTable(*result.rows).c_str());
        for (const auto& failure : result.failures) {
          std::printf("! %s: %s\n", failure.url.c_str(),
                      failure.message.c_str());
        }
      } else if (lower == "history") {
        std::string sql;
        std::getline(words, sql);
        auto rows = gateway.submitHistoricalQuery(
            session, std::string(util::trim(sql)));
        std::printf("%s", core::renderTable(*rows).c_str());
      } else {
        // Bare SQL against the current source.
        auto result = gateway.submitQuery(session, {current}, trimmed);
        if (!result.complete()) {
          std::printf("error: %s\n", result.failures[0].message.c_str());
        } else {
          std::printf("%s", core::renderTable(*result.rows).c_str());
        }
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
