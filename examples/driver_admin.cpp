// driver_admin: the behaviours behind the paper's JSP driver
// management panels (Figs. 6-8): listing registered drivers, installing
// a new driver at runtime without disturbing the gateway, registering
// prioritised per-source driver preferences, and choosing the action to
// take when the preferred driver fails.
//
//   $ ./driver_admin
#include <cstdio>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/tree_view.hpp"
#include "gridrm/drivers/mock_driver.hpp"

using namespace gridrm;

namespace {

void listDrivers(core::Gateway& gateway, const std::string& session) {
  std::printf("registered drivers:");
  for (const auto& name : gateway.listDrivers(session)) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  util::SimClock clock;
  net::Network network(clock, 29);
  agents::SiteOptions siteOptions;
  siteOptions.siteName = "siteA";
  siteOptions.hostCount = 2;
  agents::SiteSimulation site(network, clock, siteOptions);
  clock.advance(60 * util::kSecond);

  core::GatewayOptions gatewayOptions;
  gatewayOptions.name = "gw-siteA";
  gatewayOptions.host = "gw.siteA";
  core::Gateway gateway(network, clock, gatewayOptions);
  const std::string admin = gateway.openSession(core::Principal::admin());

  std::printf("== initial state (defaults registered at startup) ==\n");
  listDrivers(gateway, admin);

  // --- Fig. 8: register a prioritised driver list for one source -----
  const std::string source = site.headUrl("scms");
  gateway.setDriverPreference(admin, source, {"scms", "sql"});
  std::printf("\npreference for %s: scms, then sql\n", source.c_str());
  auto result =
      gateway.submitQuery(admin, {source}, "SELECT HostName FROM Host");
  std::printf("query ok: %zu rows via driver '%s'\n", result.rows->rowCount(),
              gateway.driverManager().cachedDriver(source).c_str());

  // --- failure actions: retry / try-next / report / dynamic ----------
  std::printf("\n== failure policies (section 3.1.3) ==\n");
  for (auto [action, label] :
       {std::pair{core::FailurePolicy::Action::Report, "report"},
        std::pair{core::FailurePolicy::Action::Retry, "retry x2"},
        std::pair{core::FailurePolicy::Action::TryNext, "try-next"},
        std::pair{core::FailurePolicy::Action::DynamicReselect,
                  "dynamic-reselect"}}) {
    gateway.setFailurePolicy(admin, {action, 2});
    gateway.connectionManager().clear();  // force fresh connects
    network.setHostDown("siteA-node00", true);  // break the SCMS master
    auto attempt =
        gateway.submitQuery(admin, {source}, "SELECT HostName FROM Host",
                            core::QueryOptions{.useCache = false});
    network.setHostDown("siteA-node00", false);
    std::printf("%-17s -> %s\n", label,
                attempt.complete() ? "recovered via another driver"
                                   : "reported failure to the client");
  }

  // --- runtime driver installation (Table 1) --------------------------
  std::printf("\n== runtime driver installation ==\n");
  drivers::MockBehaviour behaviour;
  behaviour.name = "custom";
  behaviour.accepts = {"custom"};
  behaviour.hostName = "custom-device-7";
  gateway.registerDriver(
      admin,
      std::make_shared<drivers::MockDriver>(gateway.driverContext(), behaviour));
  listDrivers(gateway, admin);
  auto custom = gateway.submitQuery(admin, {"jdbc:custom://device7/x"},
                                    "SELECT HostName, Load1 FROM Processor");
  std::printf("query through the just-installed driver:\n%s",
              core::renderTable(*custom.rows).c_str());

  // --- removal is equally non-disruptive ------------------------------
  gateway.unregisterDriver(admin, "custom");
  std::printf("\nafter unregistering 'custom':\n");
  listDrivers(gateway, admin);
  auto gone = gateway.submitQuery(admin, {"jdbc:custom://device7/x"},
                                  "SELECT HostName FROM Processor",
                                  core::QueryOptions{.useCache = false});
  std::printf("query now fails cleanly: %s\n",
              gone.complete() ? "unexpectedly ok"
                              : gone.failures[0].message.c_str());

  // Security: only DriverAdmin-capable principals may do any of this.
  const std::string guest =
      gateway.openSession(core::Principal{"guest", {"guest"}});
  try {
    gateway.unregisterDriver(guest, "snmp");
    std::printf("BUG: guest unregistered a driver\n");
  } catch (const dbc::SqlError& e) {
    std::printf("\nguest blocked by CGSL as expected: %s\n", e.what());
  }
  return 0;
}
