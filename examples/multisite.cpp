// multisite: the paper's Fig. 1 scenario -- three Grid sites, each with
// its own gateway, federated through a GMA directory. A client connects
// to ONE gateway and transparently queries resources on all three.
//
//   $ ./multisite
#include <cstdio>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/tree_view.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"

using namespace gridrm;

namespace {

struct Site {
  std::unique_ptr<agents::SiteSimulation> agents;
  std::unique_ptr<core::Gateway> gateway;
  std::unique_ptr<global::GlobalLayer> global;
  std::string admin;
};

}  // namespace

int main() {
  util::SimClock clock;
  net::Network network(clock, 3);

  // WAN between sites: 20ms links; LAN inside a site: default 200us.
  for (const char* a : {"gw.siteA", "gw.siteB", "gw.siteC"}) {
    for (const char* b : {"gw.siteA", "gw.siteB", "gw.siteC"}) {
      if (std::string(a) < b) {
        network.setLink(a, b, net::LinkModel{20 * util::kMillisecond, 0, 0.0});
      }
    }
  }

  global::GmaDirectory directory(network,
                                 {"gma.directory", global::kDirectoryPort});

  std::vector<Site> sites;
  const char* names[] = {"siteA", "siteB", "siteC"};
  const std::size_t hostCounts[] = {4, 3, 2};
  for (int i = 0; i < 3; ++i) {
    Site site;
    agents::SiteOptions options;
    options.siteName = names[i];
    options.hostCount = hostCounts[i];
    options.seed = 100 + i;
    site.agents =
        std::make_unique<agents::SiteSimulation>(network, clock, options);

    core::GatewayOptions gatewayOptions;
    gatewayOptions.name = std::string("gw-") + names[i];
    gatewayOptions.host = std::string("gw.") + names[i];
    gatewayOptions.cacheTtl = 10 * util::kSecond;
    site.gateway =
        std::make_unique<core::Gateway>(network, clock, gatewayOptions);
    site.admin = site.gateway->openSession(core::Principal::admin());
    for (const auto& url : site.agents->dataSourceUrls()) {
      site.gateway->addDataSource(site.admin, url);
    }
    site.global = std::make_unique<global::GlobalLayer>(
        *site.gateway, net::Address{"gma.directory", global::kDirectoryPort});
    site.global->start();
    sites.push_back(std::move(site));
  }
  clock.advance(5 * 60 * util::kSecond);

  std::printf("== 3 sites registered with the GMA directory ==\n");

  // The client talks only to siteA's gateway, but asks about the whole
  // Grid: the head node of every site, via GLUE-native SQL sources.
  Site& entry = sites[0];
  std::vector<std::string> everywhere;
  for (int i = 0; i < 3; ++i) {
    everywhere.push_back(sites[i].agents->headUrl("sql"));
  }

  const util::TimePoint before = clock.now();
  auto result = entry.global->globalQuery(
      entry.admin, everywhere,
      "SELECT HostName, ClusterName, Load1 FROM Processor");
  const util::TimePoint elapsed = clock.now() - before;

  std::printf("-- Grid-wide Processor query through gw-siteA --\n%s",
              core::renderTable(*result.rows).c_str());
  std::printf("(%zu rows from %zu sources in %.1f simulated ms; "
              "%llu remote queries)\n\n",
              result.rows->rowCount(), result.sourcesQueried,
              static_cast<double>(elapsed) / util::kMillisecond,
              static_cast<unsigned long long>(
                  entry.global->stats().remoteQueriesSent));

  // Ask again: the inter-gateway cache answers without touching the WAN.
  const util::TimePoint before2 = clock.now();
  auto cached = entry.global->globalQuery(
      entry.admin, everywhere,
      "SELECT HostName, ClusterName, Load1 FROM Processor");
  const util::TimePoint elapsed2 = clock.now() - before2;
  std::printf("-- Same query again (inter-gateway cache) --\n");
  std::printf("%.3f simulated ms (was %.1f), remote cache hits: %llu\n\n",
              static_cast<double>(elapsed2) / util::kMillisecond,
              static_cast<double>(elapsed) / util::kMillisecond,
              static_cast<unsigned long long>(
                  entry.global->stats().remoteCacheHits));
  (void)cached;

  // Aggregate Grid capacity from each site's ComputeElement group.
  auto capacity = entry.global->globalQuery(
      entry.admin, everywhere,
      "SELECT Name, TotalCPUs, FreeCPUs, AverageLoad FROM ComputeElement");
  std::printf("-- Grid capacity (ComputeElement per site) --\n%s\n",
              core::renderTable(*capacity.rows).c_str());

  std::printf("directory producers: %zu\n", directory.producers().size());
  return 0;
}
