// alerting: the event path of paper Fig. 4, end to end.
//
// SNMP agents watch thresholds and emit native traps; the gateway's
// Event Manager translates them to GridRM events, records them in the
// historical database, fans them out to subscribers, and -- when a
// second gateway has registered interest through the GMA directory --
// propagates them across sites.
//
//   $ ./alerting
#include <cstdio>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/tree_view.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"

using namespace gridrm;

int main() {
  util::SimClock clock;
  net::Network network(clock, 19);
  global::GmaDirectory directory(network,
                                 {"gma.directory", global::kDirectoryPort});

  // Site A produces the alerts; site B's operators want to see them too.
  agents::SiteOptions optionsA;
  optionsA.siteName = "siteA";
  optionsA.hostCount = 3;
  agents::SiteSimulation siteA(network, clock, optionsA);

  agents::SiteOptions optionsB;
  optionsB.siteName = "siteB";
  optionsB.hostCount = 1;
  agents::SiteSimulation siteB(network, clock, optionsB);
  clock.advance(60 * util::kSecond);

  auto makeGateway = [&](const char* name, const char* host) {
    core::GatewayOptions o;
    o.name = name;
    o.host = host;
    o.eventOptions.threadedDispatch = false;  // deterministic demo output
    return std::make_unique<core::Gateway>(network, clock, o);
  };
  auto gatewayA = makeGateway("gw-siteA", "gw.siteA");
  auto gatewayB = makeGateway("gw-siteB", "gw.siteB");
  const std::string adminA = gatewayA->openSession(core::Principal::admin());
  const std::string adminB = gatewayB->openSession(core::Principal::admin());
  for (const auto& url : siteA.dataSourceUrls()) {
    gatewayA->addDataSource(adminA, url);
  }
  for (const auto& url : siteB.dataSourceUrls()) {
    gatewayB->addDataSource(adminB, url);
  }

  global::GlobalOptions globalOptions;
  globalOptions.propagateEventPattern = "snmp.trap";  // share trap alerts
  global::GlobalLayer globalA(
      *gatewayA, {"gma.directory", global::kDirectoryPort}, globalOptions);
  global::GlobalLayer globalB(
      *gatewayB, {"gma.directory", global::kDirectoryPort}, globalOptions);
  globalA.start();
  globalB.start();

  // Agents deliver traps to their local gateway's event port.
  siteA.setTrapSink(gatewayA->eventAddress());

  // Local subscriber at A; remote subscriber at B.
  gatewayA->subscribeEvents(adminA, "snmp.trap", [](const core::Event& e) {
    std::printf("[siteA operator] %-22s %-9s from %s\n", e.type.c_str(),
                core::severityName(e.severity), e.source.c_str());
  });
  gatewayB->subscribeEvents(adminB, "snmp.trap", [](const core::Event& e) {
    std::printf("[siteB operator] %-22s relayed via %s (origin host %s)\n",
                e.type.c_str(), e.field("origin").c_str(),
                e.field("source_host").c_str());
  });

  std::printf("== tightening thresholds so the simulated load trips them ==\n");
  for (std::size_t i = 0; i < siteA.snmpAgentCount(); ++i) {
    siteA.snmpAgent(i).setTrapThresholds(
        agents::snmp::TrapThresholds{/*highLoad1=*/0.25, /*lowDiskMb=*/-1});
  }

  // A monitoring period: tick the site once per simulated 30s.
  for (int tick = 0; tick < 10; ++tick) {
    clock.advance(30 * util::kSecond);
    siteA.pollTraps();
  }
  gatewayA->eventManager().drain();
  gatewayB->eventManager().drain();

  // The historical record survives for later analysis (section 2:
  // "real-time and historical data").
  auto history = gatewayA->submitHistoricalQuery(
      adminA,
      "SELECT Timestamp, Type, Source, Severity FROM EventHistory "
      "ORDER BY Timestamp");
  std::printf("\n-- EventHistory at gw-siteA --\n%s\n",
              core::renderTable(*history).c_str());

  const auto statsA = gatewayA->eventManager().stats();
  std::printf("gw-siteA events: received=%llu dispatched=%llu recorded=%llu\n",
              static_cast<unsigned long long>(statsA.received),
              static_cast<unsigned long long>(statsA.dispatched),
              static_cast<unsigned long long>(statsA.recorded));
  std::printf("events propagated A->B: %llu\n",
              static_cast<unsigned long long>(
                  globalA.stats().eventsPropagated));
  return 0;
}
