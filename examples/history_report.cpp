// history_report: the "Historical" client of paper Fig. 1.
//
// A SitePoller harvests the site on a schedule (recording history and
// keeping the gateway cache warm), an AlertManager watches thresholds
// over the same data, and afterwards the historical database is mined
// with plain SQL: per-host load statistics, alert timelines, and the
// effect of the retention policy.
//
//   $ ./history_report [minutes]
#include <cstdio>
#include <cstdlib>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/alert_manager.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/site_poller.hpp"
#include "gridrm/core/tree_view.hpp"

using namespace gridrm;

int main(int argc, char** argv) {
  const int minutes = argc > 1 ? std::atoi(argv[1]) : 30;

  util::SimClock clock;
  net::Network network(clock, 41);
  agents::SiteOptions siteOptions;
  siteOptions.siteName = "siteA";
  siteOptions.hostCount = 3;
  agents::SiteSimulation site(network, clock, siteOptions);

  core::GatewayOptions gatewayOptions;
  gatewayOptions.name = "gw-siteA";
  gatewayOptions.host = "gw.siteA";
  gatewayOptions.eventOptions.threadedDispatch = false;
  // Retention is gateway policy now (store.retention_ms in a config
  // file), not a constant the reporting code has to remember.
  gatewayOptions.storeRetention = 10 * 60 * util::kSecond;
  core::Gateway gateway(network, clock, gatewayOptions);

  // The alert rule: any host whose 1-minute load per CPU exceeds 0.2.
  core::AlertManager alerts(gateway.requestManager(), gateway.eventManager(),
                            clock);
  core::AlertRule rule;
  rule.name = "BusyHost";
  rule.url = site.headUrl("sql");
  rule.sql = "SELECT HostName, Load1, CPUCount FROM Processor";
  rule.condition = "Load1 / CPUCount > 0.2";
  rule.severity = core::Severity::Warning;
  rule.holdOff = 5 * 60 * util::kSecond;
  alerts.addRule(rule);

  // Poll Processor and Memory through different agents every 30s.
  core::SitePoller poller(gateway.requestManager(), clock,
                          core::Principal::monitor("poller"), &alerts);
  core::PollTask loadTask;
  loadTask.url = site.headUrl("ganglia");
  loadTask.sql = "SELECT HostName, Load1 FROM Processor";
  loadTask.interval = 30 * util::kSecond;
  poller.addTask(loadTask);
  core::PollTask memTask;
  memTask.url = site.headUrl("scms");
  memTask.sql = "SELECT HostName, RAMAvailable FROM Memory";
  memTask.interval = 60 * util::kSecond;
  poller.addTask(memTask);

  std::printf("== harvesting %s for %d simulated minutes ==\n",
              site.name().c_str(), minutes);
  poller.runFor(static_cast<util::Duration>(minutes) * 60 * util::kSecond,
                10 * util::kSecond);
  const auto pollerStats = poller.stats();
  std::printf("polls: %llu (failures %llu), alerts raised: %llu\n\n",
              static_cast<unsigned long long>(pollerStats.polls),
              static_cast<unsigned long long>(pollerStats.pollFailures),
              static_cast<unsigned long long>(pollerStats.alertsRaised));

  // --- mine the history with ordinary SQL ---------------------------
  // (The reporting session opens after the harvest: simulated hours have
  // passed, and sessions idle out like the paper's JSP logins would.)
  const std::string admin = gateway.openSession(core::Principal::admin());
  auto samples = gateway.submitHistoricalQuery(
      admin, "SELECT HostName, Load1, RecordedAt FROM HistoryProcessor "
             "WHERE HostName = 'siteA-node00' ORDER BY RecordedAt DESC "
             "LIMIT 5");
  std::printf("-- last 5 load samples of siteA-node00 --\n%s\n",
              core::renderTable(*samples).c_str());

  auto hot = gateway.submitHistoricalQuery(
      admin, "SELECT HostName, Load1, RecordedAt FROM HistoryProcessor "
             "WHERE Load1 > 1.0 ORDER BY Load1 DESC LIMIT 5");
  std::printf("-- top recorded load spikes --\n%s\n",
              core::renderTable(*hot).c_str());

  auto alertLog = gateway.submitHistoricalQuery(
      admin, "SELECT Timestamp, Source, Severity FROM EventHistory "
             "WHERE Type LIKE 'gateway.alert%' ORDER BY Timestamp");
  std::printf("-- alert timeline --\n%s\n",
              core::renderTable(*alertLog, 10).c_str());

  // --- retention -----------------------------------------------------
  const std::size_t before =
      gateway.database().rowCount("HistoryProcessor");
  const std::size_t dropped = gateway.enforceRetention();
  std::printf("retention (keep 10 min): %zu rows -> %zu (%zu dropped)\n",
              before, gateway.database().rowCount("HistoryProcessor"),
              dropped);
  return 0;
}
