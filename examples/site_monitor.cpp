// site_monitor: a text-mode site monitoring loop -- the behaviour
// behind the paper's JSP tree view (Figs. 6 and 9).
//
// Simulates a monitoring session: periodic cached views of the site
// punctuated by explicit polls, showing how the gateway cache "returns
// a view of the recent status of a site while limiting resource
// intrusion" (section 4). Prints the agent-request counters at the end
// so the intrusion saving is visible.
//
//   $ ./site_monitor [rounds]
#include <cstdio>
#include <cstdlib>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/tree_view.hpp"

using namespace gridrm;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 6;

  util::SimClock clock;
  net::Network network(clock, 13);
  agents::SiteOptions siteOptions;
  siteOptions.siteName = "siteA";
  siteOptions.hostCount = 4;
  agents::SiteSimulation site(network, clock, siteOptions);
  clock.advance(5 * 60 * util::kSecond);

  core::GatewayOptions gatewayOptions;
  gatewayOptions.name = "gw-siteA";
  gatewayOptions.host = "gw.siteA";
  gatewayOptions.cacheTtl = 30 * util::kSecond;
  core::Gateway gateway(network, clock, gatewayOptions);
  const std::string session = gateway.openSession(core::Principal::admin());
  for (const auto& url : site.dataSourceUrls()) {
    gateway.addDataSource(session, url);
  }

  const std::string loadSql =
      "SELECT HostName, Load1, Load5 FROM Processor";
  const std::string memSql =
      "SELECT HostName, RAMAvailable FROM Memory";
  std::vector<core::TreeViewEntry> view;
  for (std::size_t i = 0; i < site.cluster().size(); ++i) {
    view.push_back(
        {"jdbc:snmp://" + site.cluster().host(i).name() + ":161/perfdata",
         loadSql});
  }
  view.push_back({site.headUrl("ganglia"), memSql});

  for (int round = 0; round < rounds; ++round) {
    std::printf("==== round %d (t = %llds) ====\n", round,
                static_cast<long long>(clock.now() / util::kSecond));
    if (round % 3 == 0) {
      // Explicit poll (the Fig. 9 "poll" icon): hit the agents.
      std::printf("[polling all sources]\n");
      for (const auto& entry : view) {
        core::QueryOptions poll;
        poll.useCache = true;  // refresh the cache for other users
        auto result = gateway.submitQuery(session, {entry.url}, entry.sql, poll);
        if (!result.complete()) {
          std::printf("  poll failed for %s: %s\n", entry.url.c_str(),
                      result.failures[0].message.c_str());
        }
      }
    }
    // Every user renders from cache between polls.
    std::printf("%s\n",
                core::renderCachedTree(gateway.name(), gateway.cache(), clock,
                                       view)
                    .c_str());
    clock.advance(20 * util::kSecond);
  }

  // The intrusion ledger: how often were agents actually contacted?
  std::printf("==== resource intrusion ====\n");
  for (std::size_t i = 0; i < site.cluster().size(); ++i) {
    const net::Address agent{site.cluster().host(i).name(), 161};
    std::printf("%-20s  %llu SNMP requests served\n",
                agent.host.c_str(),
                static_cast<unsigned long long>(
                    network.stats(agent).requestsServed));
  }
  const auto cacheStats = gateway.cache().stats();
  std::printf("gateway cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(cacheStats.hits),
              static_cast<unsigned long long>(cacheStats.misses));
  return 0;
}
