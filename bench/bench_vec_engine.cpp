// E19 -- vectorized batch execution vs the row interpreter.
//
// Claim: executing SELECTs as batch kernels over typed columns
// (sql/vec) beats the tree-walking row interpreter by >= 3x on
// filter-heavy full-table scans, because per-row costs (virtual
// dispatch through RowAccessor, Value boxing, shared_ptr string
// copies) collapse into tight per-column loops with selection
// vectors.
//
// Measured: the same statements through store::executeSelect (vec
// engine) and store::executeSelectInterpreted (ground truth) over an
// identical 64k-row data set -- filter-heavy scans, arithmetic
// projection, GROUP BY aggregation -- plus tsdb historical scans with
// tsdb.vectorized_scan on and off (the zero-transpose path: decoded
// segment columns feed the kernels directly).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "gridrm/sql/parser.hpp"
#include "gridrm/sql/vec/engine.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"

namespace {

using namespace gridrm;
using util::Value;
using util::ValueType;

constexpr int kRows = 1 << 16;  // 64k

const std::vector<dbc::ColumnInfo>& schema() {
  static const std::vector<dbc::ColumnInfo> kColumns = {
      {"host", ValueType::String, "", "t"},
      {"cluster", ValueType::String, "", "t"},
      {"load1", ValueType::Real, "", "t"},
      {"cpus", ValueType::Int, "", "t"},
      {"mem", ValueType::Int, "", "t"}};
  return kColumns;
}

const std::vector<std::vector<Value>>& rows() {
  static const std::vector<std::vector<Value>> kRowsData = [] {
    std::vector<std::vector<Value>> out;
    out.reserve(kRows);
    for (int i = 0; i < kRows; ++i) {
      out.push_back({Value("node" + std::to_string(i % 512)),
                     Value(i % 7 == 0 ? "siteB" : "siteA"),
                     i % 19 == 0 ? Value::null() : Value(0.01 * (i % 400)),
                     Value(2 + i % 6), Value(256 << (i % 5))});
    }
    return out;
  }();
  return kRowsData;
}

// Filter-heavy: arithmetic + comparison + IN + LIKE, tiny projection.
const char* kFilterSql =
    "SELECT host FROM t "
    "WHERE load1 / cpus > 0.3 AND mem >= 1024 "
    "AND cpus IN (2, 3, 4) AND cluster LIKE 'siteA%'";

const char* kGroupBySql =
    "SELECT cluster, count(*), sum(mem), avg(load1) FROM t "
    "WHERE cpus >= 3 GROUP BY cluster ORDER BY cluster";

const char* kProjectSql =
    "SELECT load1 * 100 + cpus, mem / 2 FROM t WHERE mem > 512";

void runEngine(benchmark::State& state, const char* sqlText, bool vec) {
  const bool saved = sql::vec::engineEnabled();
  sql::vec::setEngineEnabled(vec);
  const auto stmt = sql::parseSelect(sqlText);
  for (auto _ : state) {
    auto rs = vec ? store::executeSelect(stmt, schema(), rows())
                  : store::executeSelectInterpreted(stmt, schema(), rows());
    benchmark::DoNotOptimize(rs);
  }
  sql::vec::setEngineEnabled(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRows);
}

void BM_FilterScan_Vec(benchmark::State& state) {
  runEngine(state, kFilterSql, true);
}
BENCHMARK(BM_FilterScan_Vec);

void BM_FilterScan_Interp(benchmark::State& state) {
  runEngine(state, kFilterSql, false);
}
BENCHMARK(BM_FilterScan_Interp);

void BM_Project_Vec(benchmark::State& state) {
  runEngine(state, kProjectSql, true);
}
BENCHMARK(BM_Project_Vec);

void BM_Project_Interp(benchmark::State& state) {
  runEngine(state, kProjectSql, false);
}
BENCHMARK(BM_Project_Interp);

void BM_GroupBy_Vec(benchmark::State& state) {
  runEngine(state, kGroupBySql, true);
}
BENCHMARK(BM_GroupBy_Vec);

void BM_GroupBy_Interp(benchmark::State& state) {
  runEngine(state, kGroupBySql, false);
}
BENCHMARK(BM_GroupBy_Interp);

// --- tsdb historical scan: the zero-transpose path -------------------

std::unique_ptr<store::tsdb::TimeSeriesStore> makeTsdb(util::SimClock& clock,
                                                       bool vectorized) {
  store::tsdb::TsdbOptions options;
  options.segmentRows = 4096;
  options.segmentSpan = 0;
  options.rawTtl = 0;
  options.vectorizedScan = vectorized;
  auto store =
      std::make_unique<store::tsdb::TimeSeriesStore>(clock, options);
  store->createTable("History",
                     {{"Host", ValueType::String, "", "History"},
                      {"Load", ValueType::Real, "", "History"},
                      {"CPUs", ValueType::Int, "", "History"},
                      {"RecordedAt", ValueType::Int, "us", "History"}},
                     "RecordedAt");
  for (int i = 0; i < kRows; ++i) {
    store->append("History",
                  {Value("node" + std::to_string(i % 512)),
                   Value(0.01 * (i % 400)), Value(2 + i % 6),
                   Value(static_cast<std::int64_t>(i) * 1000)});
  }
  store->sealAll();
  return store;
}

void runTsdbScan(benchmark::State& state, bool vectorized) {
  util::SimClock clock;
  auto store = makeTsdb(clock, vectorized);
  // Row-engine toggle held fixed so the comparison isolates the
  // segment-scan predicate phase (the final assembly is shared).
  const bool saved = sql::vec::engineEnabled();
  sql::vec::setEngineEnabled(true);
  const auto stmt = sql::parseSelect(
      "SELECT Host, Load FROM History "
      "WHERE RecordedAt >= 1000000 AND RecordedAt < 60000000 "
      "AND Load > 3.0 AND CPUs IN (3, 4)");
  for (auto _ : state) {
    auto rs = store->query(stmt);
    benchmark::DoNotOptimize(rs);
  }
  sql::vec::setEngineEnabled(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRows);
}

void BM_TsdbScan_Vec(benchmark::State& state) { runTsdbScan(state, true); }
BENCHMARK(BM_TsdbScan_Vec);

void BM_TsdbScan_Interp(benchmark::State& state) { runTsdbScan(state, false); }
BENCHMARK(BM_TsdbScan_Interp);

}  // namespace
