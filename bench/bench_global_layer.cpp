// E6 -- Global layer scalability (paper Fig. 1, sections 1.1 and 4).
//
// Claims: gateways route remote queries to the owning gateway through
// the GMA directory, and inter-gateway caching "increase[s] scalability
// by reducing unnecessary requests".
//
// Scenario: G sites behind 20ms WAN links. A client at site 0 queries
// the head node of every site. Swept: G and inter-gateway cache on/off.
// Expected shape: simulated latency grows linearly in the number of
// *remote* sites without caching; with caching, repeat queries cost
// near-zero WAN traffic within the TTL.
//
// Counters: sim_ms_per_sweep (simulated), wan_queries_per_sweep.
#include <benchmark/benchmark.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"

namespace {

using namespace gridrm;

struct Grid {
  Grid(int siteCount, util::Duration cacheTtl) : network(clock, 23) {
    directory = std::make_unique<global::GmaDirectory>(
        network, net::Address{"gma", global::kDirectoryPort});
    for (int i = 0; i < siteCount; ++i) {
      const std::string name = "site" + std::to_string(i);
      agents::SiteOptions siteOptions;
      siteOptions.siteName = name;
      siteOptions.hostCount = 2;
      siteOptions.seed = 100 + i;
      sites.push_back(std::make_unique<agents::SiteSimulation>(
          network, clock, siteOptions));
    }
    clock.advance(60 * util::kSecond);
    for (int i = 0; i < siteCount; ++i) {
      const std::string host = "gw.site" + std::to_string(i);
      // WAN links between gateways and from gateways to remote agents.
      for (int j = 0; j < i; ++j) {
        network.setLink(host, "gw.site" + std::to_string(j),
                        net::LinkModel{20 * util::kMillisecond, 0, 0.0});
      }
      core::GatewayOptions o;
      o.name = "gw-site" + std::to_string(i);
      o.host = host;
      o.cacheTtl = cacheTtl;
      gateways.push_back(std::make_unique<core::Gateway>(network, clock, o));
      admins.push_back(gateways[i]->openSession(core::Principal::admin()));
      for (const auto& url : sites[i]->dataSourceUrls()) {
        gateways[i]->addDataSource(admins[i], url);
      }
      globals.push_back(std::make_unique<global::GlobalLayer>(
          *gateways[i], net::Address{"gma", global::kDirectoryPort}));
      globals[i]->start();
      urls.push_back(sites[i]->headUrl("sql"));
    }
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<global::GmaDirectory> directory;
  std::vector<std::unique_ptr<agents::SiteSimulation>> sites;
  std::vector<std::unique_ptr<core::Gateway>> gateways;
  std::vector<std::unique_ptr<global::GlobalLayer>> globals;
  std::vector<std::string> admins;
  std::vector<std::string> urls;
};

void runSweeps(benchmark::State& state, util::Duration cacheTtl,
               bool useCache) {
  Grid grid(static_cast<int>(state.range(0)), cacheTtl);
  core::QueryOptions options;
  options.useCache = useCache;

  std::uint64_t sweeps = 0;
  util::Duration simTotal = 0;
  for (auto _ : state) {
    const util::TimePoint before = grid.clock.now();
    auto result = grid.globals[0]->globalQuery(
        grid.admins[0], grid.urls,
        "SELECT HostName, Load1 FROM Processor", options);
    benchmark::DoNotOptimize(result.rows);
    simTotal += grid.clock.now() - before;
    ++sweeps;
  }
  state.counters["sim_ms_per_sweep"] =
      static_cast<double>(simTotal) / util::kMillisecond /
      static_cast<double>(sweeps);
  state.counters["wan_queries_per_sweep"] =
      static_cast<double>(grid.globals[0]->stats().remoteQueriesSent) /
      static_cast<double>(sweeps);
}

void BM_GridSweepNoCache(benchmark::State& state) {
  runSweeps(state, 0, false);
}
void BM_GridSweepCached(benchmark::State& state) {
  runSweeps(state, 60 * util::kSecond, true);
}

BENCHMARK(BM_GridSweepNoCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_GridSweepCached)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Directory lookup amortisation: first remote contact pays a directory
// round trip; later ones use the gateway's lookup cache.
void BM_DirectoryLookupAmortised(benchmark::State& state) {
  Grid grid(2, 0);
  core::QueryOptions options;
  options.useCache = false;
  std::uint64_t sweeps = 0;
  for (auto _ : state) {
    auto result = grid.globals[0]->globalQuery(
        grid.admins[0], {grid.urls[1]}, "SELECT Load1 FROM Processor",
        options);
    benchmark::DoNotOptimize(result.rows);
    ++sweeps;
  }
  state.counters["directory_lookups"] = static_cast<double>(
      grid.globals[0]->stats().directoryLookups);
  state.counters["lookup_cache_hits_per_query"] =
      static_cast<double>(grid.globals[0]->stats().lookupCacheHits) /
      static_cast<double>(sweeps);
}
BENCHMARK(BM_DirectoryLookupAmortised);

}  // namespace
