// E4 -- Gateway result cache vs resource intrusion (paper section 4,
// Fig. 9).
//
// Claim: "By utilising the cache, a heavily used GridRM Gateway can
// return a view of the recent status of a site while limiting resource
// intrusion."
//
// Scenario per iteration: C simulated clients each poll the site's
// SNMP agents once every 5 simulated seconds for 5 simulated minutes.
// Swept: cache TTL in {0 (off), 1s, 5s, 30s}. Expected shape: agent
// requests served drop roughly as TTL/poll-interval grows, while the
// data age seen by clients stays bounded by the TTL.
//
// Counters: agent_requests (total intrusion), cache_hit_rate.
#include <benchmark/benchmark.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"

namespace {

using namespace gridrm;

void BM_ClientsPollingSite(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const util::Duration ttl = state.range(1) * util::kSecond;

  double agentRequests = 0;
  double hitRate = 0;
  for (auto _ : state) {
    state.PauseTiming();  // construction is not part of the scenario
    util::SimClock clock;
    net::Network network(clock, 5);
    agents::SiteOptions siteOptions;
    siteOptions.hostCount = 4;
    agents::SiteSimulation site(network, clock, siteOptions);
    clock.advance(60 * util::kSecond);

    core::GatewayOptions gatewayOptions;
    gatewayOptions.host = "gw.siteA";
    gatewayOptions.cacheTtl = ttl;
    core::Gateway gateway(network, clock, gatewayOptions);
    std::vector<std::string> sessions;
    for (int c = 0; c < clients; ++c) {
      sessions.push_back(gateway.openSession(core::Principal::monitor(
          "client" + std::to_string(c))));
    }
    std::vector<std::string> urls;
    for (std::size_t i = 0; i < site.cluster().size(); ++i) {
      urls.push_back("jdbc:snmp://" + site.cluster().host(i).name() +
                     ":161/perfdata");
    }
    network.resetStats();
    state.ResumeTiming();

    // 5 simulated minutes, every client polls every 5 simulated seconds.
    for (int step = 0; step < 60; ++step) {
      for (const auto& session : sessions) {
        auto result = gateway.submitQuery(
            session, urls, "SELECT HostName, Load1 FROM Processor");
        benchmark::DoNotOptimize(result.rows);
      }
      clock.advance(5 * util::kSecond);
    }

    double served = 0;
    for (const auto& urlText : urls) {
      auto url = util::Url::parse(urlText);
      served += static_cast<double>(
          network.stats({url->host(), 161}).requestsServed);
    }
    agentRequests = served;
    const auto cacheStats = gateway.cache().stats();
    const double lookups =
        static_cast<double>(cacheStats.hits + cacheStats.misses);
    hitRate = lookups > 0 ? static_cast<double>(cacheStats.hits) / lookups
                          : 0.0;
  }
  state.counters["agent_requests"] = agentRequests;
  state.counters["cache_hit_rate"] = hitRate;
}

// Args: {clients, ttlSeconds}.
BENCHMARK(BM_ClientsPollingSite)
    ->Args({1, 0})
    ->Args({1, 5})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 5})
    ->Args({4, 30})
    ->Args({16, 0})
    ->Args({16, 5})
    ->Args({16, 30})
    ->Unit(benchmark::kMillisecond);

}  // namespace
