// E18 -- Federated query push-down (PR 7).
//
// Claims: decomposing a distributed GROUP BY into per-site partial
// aggregates (AVG as SUM+COUNT) cuts the bytes a coordinator moves
// across the federation by >= 5x versus shipping every raw row,
// because each site answers with one partial row per group instead of
// its whole relation.
//
// Scenario: a grid of simulated gateways (the paper's multi-site
// deployment; Arg sweeps the fan-out width, headline width 8), each
// owning a site of 8 hosts. The coordinator runs the same GROUP BY
// ClusterName aggregate in FederatedMode::Auto (planner decomposes)
// and FederatedMode::ShipAllRows (baseline transport), uncached, and
// we meter the coordinator's producer endpoint byte counters around
// each call.
//
// Expected shape: bytes_reduction >= 5 at width 8 (it grows with rows
// per site, since the pushdown answer stays one row per site while the
// baseline ships hostCount rows); rows_shipped_per_query drops from
// sites*hosts to one per remote site.
//
// Counters: bytes_pushdown, bytes_shipall, bytes_reduction,
// rows_pushdown, rows_shipall, groups_returned.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"

namespace {

using namespace gridrm;

constexpr int kHostsPerSite = 8;

struct QueryGrid {
  explicit QueryGrid(int siteCount) : network(clock, 37) {
    directory = std::make_unique<global::GmaDirectory>(
        network, net::Address{"gma", global::kDirectoryPort});
    for (int i = 0; i < siteCount; ++i) {
      agents::SiteOptions siteOptions;
      siteOptions.siteName = "site" + std::to_string(i);
      siteOptions.hostCount = kHostsPerSite;
      siteOptions.seed = 200 + i;
      sites.push_back(std::make_unique<agents::SiteSimulation>(
          network, clock, siteOptions));
    }
    clock.advance(60 * util::kSecond);
    for (int i = 0; i < siteCount; ++i) {
      core::GatewayOptions o;
      o.name = "gw-site" + std::to_string(i);
      o.host = "gw.site" + std::to_string(i);
      gateways.push_back(std::make_unique<core::Gateway>(network, clock, o));
      admins.push_back(gateways[i]->openSession(core::Principal::admin()));
      for (const auto& url : sites[i]->dataSourceUrls()) {
        gateways[i]->addDataSource(admins[i], url);
      }
      globals.push_back(std::make_unique<global::GlobalLayer>(
          *gateways[i], net::Address{"gma", global::kDirectoryPort},
          global::GlobalOptions{}));
      globals[i]->start();
    }
  }

  /// Coordinator-side federation traffic so far (requests out, GFRAG
  /// replies and FFRAME frames in).
  std::uint64_t coordinatorBytes() const {
    const net::EndpointStats ep =
        network.stats(globals[0]->producerAddress());
    return ep.bytesIn + ep.bytesOut;
  }

  std::uint64_t rowsShipped() const {
    std::uint64_t rows = 0;
    for (const auto& g : globals) rows += g->stats().fragmentRowsShipped;
    return rows;
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<global::GmaDirectory> directory;
  std::vector<std::unique_ptr<agents::SiteSimulation>> sites;
  std::vector<std::unique_ptr<core::Gateway>> gateways;
  std::vector<std::unique_ptr<global::GlobalLayer>> globals;
  std::vector<std::string> admins;
};

// One aggregate over every site's whole relation; AVG forces the
// SUM+COUNT pair rewrite.
const char* kAggSql =
    "SELECT ClusterName, count(*) AS hosts, sum(CPUCount) AS cpus, "
    "avg(ClockSpeed) AS mhz, max(Load1) AS peak FROM Processor "
    "GROUP BY ClusterName ORDER BY ClusterName";

void BM_FederatedGroupByReduction(benchmark::State& state) {
  const int siteCount = static_cast<int>(state.range(0));
  QueryGrid grid(siteCount);
  std::vector<std::string> urls;
  for (const auto& site : grid.sites) urls.push_back(site->headUrl("scms"));
  core::QueryOptions fresh;
  fresh.useCache = false;

  // Warm once per mode: directory owners resolve and cache, schema
  // plans bind. The measured loop is pure query traffic.
  auto warm = grid.globals[0]->federatedQuery(grid.admins[0], urls, kAggSql,
                                              fresh, global::FederatedMode::Auto);
  (void)grid.globals[0]->federatedQuery(grid.admins[0], urls, kAggSql, fresh,
                                        global::FederatedMode::ShipAllRows);

  std::uint64_t pushdownBytes = 0;
  std::uint64_t shipAllBytes = 0;
  std::uint64_t pushdownRows = 0;
  std::uint64_t shipAllRows = 0;
  std::uint64_t queries = 0;
  std::vector<double> pushdownUs;
  std::vector<double> shipAllUs;
  for (auto _ : state) {
    std::uint64_t bytes0 = grid.coordinatorBytes();
    std::uint64_t rows0 = grid.rowsShipped();
    auto t0 = std::chrono::steady_clock::now();
    auto decomposed = grid.globals[0]->federatedQuery(
        grid.admins[0], urls, kAggSql, fresh, global::FederatedMode::Auto);
    pushdownUs.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    benchmark::DoNotOptimize(decomposed.rows);
    pushdownBytes += grid.coordinatorBytes() - bytes0;
    pushdownRows += grid.rowsShipped() - rows0;

    bytes0 = grid.coordinatorBytes();
    rows0 = grid.rowsShipped();
    t0 = std::chrono::steady_clock::now();
    auto shipped = grid.globals[0]->federatedQuery(
        grid.admins[0], urls, kAggSql, fresh,
        global::FederatedMode::ShipAllRows);
    shipAllUs.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    benchmark::DoNotOptimize(shipped.rows);
    shipAllBytes += grid.coordinatorBytes() - bytes0;
    shipAllRows += grid.rowsShipped() - rows0;
    ++queries;
  }
  auto p99 = [](std::vector<double>& samples) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() * 99 / 100];
  };

  const double q = static_cast<double>(queries);
  state.counters["bytes_pushdown"] = static_cast<double>(pushdownBytes) / q;
  state.counters["bytes_shipall"] = static_cast<double>(shipAllBytes) / q;
  state.counters["bytes_reduction"] =
      pushdownBytes == 0 ? 0.0
                         : static_cast<double>(shipAllBytes) /
                               static_cast<double>(pushdownBytes);
  state.counters["rows_pushdown"] = static_cast<double>(pushdownRows) / q;
  state.counters["rows_shipall"] = static_cast<double>(shipAllRows) / q;
  state.counters["groups_returned"] =
      warm.rows ? static_cast<double>(warm.rows->rowCount()) : 0.0;
  state.counters["p99_us_pushdown"] = p99(pushdownUs);
  state.counters["p99_us_shipall"] = p99(shipAllUs);
}

// Arg = federation width (gateways); 8 is the E18 headline.
BENCHMARK(BM_FederatedGroupByReduction)->Arg(2)->Arg(4)->Arg(8);

// Fragment frame-size sweep at width 8: smaller frames mean more
// FFRAME datagrams (and more per-frame header overhead) for the same
// ship-all payload; the pushdown path is insensitive because each site
// answers with a single partial row regardless.
void BM_FederatedFrameSizeSweep(benchmark::State& state) {
  QueryGrid grid(8);
  // Rebuild the coordinator's Global layer with the swept frame size.
  global::GlobalOptions options;
  options.fragmentFrameRows = static_cast<std::size_t>(state.range(0));
  grid.globals[0] = std::make_unique<global::GlobalLayer>(
      *grid.gateways[0], net::Address{"gma", global::kDirectoryPort}, options);
  grid.globals[0]->start();
  std::vector<std::string> urls;
  for (const auto& site : grid.sites) urls.push_back(site->headUrl("scms"));
  core::QueryOptions fresh;
  fresh.useCache = false;
  (void)grid.globals[0]->federatedQuery(grid.admins[0], urls, kAggSql, fresh,
                                        global::FederatedMode::ShipAllRows);

  std::uint64_t queries = 0;
  const std::uint64_t bytesBefore = grid.coordinatorBytes();
  for (auto _ : state) {
    auto result = grid.globals[0]->federatedQuery(
        grid.admins[0], urls, kAggSql, fresh,
        global::FederatedMode::ShipAllRows);
    benchmark::DoNotOptimize(result.rows);
    ++queries;
  }
  state.counters["bytes_per_query"] =
      static_cast<double>(grid.coordinatorBytes() - bytesBefore) /
      static_cast<double>(queries);
  state.counters["frames_received"] = static_cast<double>(
      grid.globals[0]->stats().fragmentFramesReceived);
}
BENCHMARK(BM_FederatedFrameSizeSweep)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
