// E20 -- Discrete-event performance study at 10k-host scale (PR 9).
//
// Claims: the event-loop simulation core makes the Zhang/Schopf-style
// performance study a reproducible in-process experiment. Closed-loop
// simulated clients execute the REAL gateway/directory/federation code
// (ACIL sessions, drivers, SQL engine); only time is simulated: the
// network runs in charge mode (round trips are accounted, not slept)
// and a deterministic multi-server queueing model (ServiceStation)
// converts per-op cost + concurrency into sojourn times. Same seed =>
// identical throughput/latency counters on every run.
//
// Scenarios:
//  * gateway_query / directory_lookup / federated_query sweeps over
//    concurrent clients (1..64): throughput saturates at the station's
//    service capacity while latency grows linearly past the knee --
//    the classic closed-loop curve pair.
//  * scale_out: one process hosting PERF_STUDY_GATEWAYS x
//    PERF_STUDY_HOSTS_PER_GW (default 100 x 100 = 10,000 hosts across
//    100 gateways, all federated through one directory); counters
//    report build time and a cross-grid query mix. CI's bench-smoke
//    sets the env knobs to a 10 x 10 grid.
//
// Counters: ops, ops_per_sec (simulated), latency_mean_ms,
// latency_p95_ms, sim_seconds; scale_out adds hosts, gateways,
// build_ms, loop_events.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gridrm/sim/topology.hpp"

namespace {

using namespace gridrm;

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct SweepResult {
  std::uint64_t ops = 0;
  double meanUs = 0;
  double p95Us = 0;
};

/// Drive `users` closed-loop clients on the topology's loop for
/// `simTime`: each client runs `op` (real code, synchronous), charges
/// the drained network latency plus queueing at `station`, records the
/// sojourn, and re-enters at its completion time.
SweepResult runClosedLoop(sim::Topology& topo, std::size_t users,
                          util::Duration simTime,
                          sim::ServiceStation& station,
                          const std::function<void()>& op) {
  sim::EventLoop& loop = topo.loop();
  const util::TimePoint end = loop.now() + simTime;
  std::vector<util::Duration> sojourns;
  std::uint64_t ops = 0;

  auto client = std::make_shared<std::function<void()>>();
  *client = [&, client] {
    const util::TimePoint start = loop.now();
    (void)net::Network::drainChargedLatency();
    op();
    const util::Duration charge = net::Network::drainChargedLatency();
    // The station models server CPU; drained network time rides the
    // wire, not a worker, so it stretches the sojourn without holding a
    // server slot. Throughput then saturates at CPU capacity while
    // per-client latency grows with population -- the study's knee.
    const util::TimePoint done = station.admit(start) + charge;
    sojourns.push_back(done - start);
    ++ops;
    if (done < end) loop.schedule(done, *client);
  };
  // Stagger arrivals by 1us so same-instant ties never depend on
  // container order.
  for (std::size_t u = 0; u < users; ++u) {
    loop.schedule(loop.now() + static_cast<util::Duration>(u), *client);
  }
  loop.runUntil(end);
  topo.quiesce();

  SweepResult r;
  r.ops = ops;
  if (!sojourns.empty()) {
    double sum = 0;
    for (util::Duration s : sojourns) sum += static_cast<double>(s);
    r.meanUs = sum / static_cast<double>(sojourns.size());
    std::sort(sojourns.begin(), sojourns.end());
    r.p95Us = static_cast<double>(
        sojourns[(sojourns.size() - 1) * 95 / 100]);
  }
  return r;
}

void report(benchmark::State& state, const SweepResult& r,
            util::Duration simTime) {
  const double simSeconds =
      static_cast<double>(simTime) / static_cast<double>(util::kSecond);
  state.counters["ops"] = static_cast<double>(r.ops);
  state.counters["ops_per_sec"] = static_cast<double>(r.ops) / simSeconds;
  state.counters["latency_mean_ms"] = r.meanUs / 1000.0;
  state.counters["latency_p95_ms"] = r.p95Us / 1000.0;
  state.counters["sim_seconds"] = simSeconds;
}

constexpr util::Duration kSweepSimTime = 5 * util::kSecond;

void BM_GatewayQuery(benchmark::State& state) {
  sim::TopologyOptions opts;
  opts.gateways = 2;
  opts.hostsPerGateway = 4;
  opts.seed = 42;
  sim::Topology topo(opts);
  const std::vector<std::string> urls{topo.site(0).headUrl("snmp")};
  // Two gateway workers, ~300us CPU per query (parse, driver, merge).
  sim::ServiceStation station(2, 300);
  SweepResult last;
  for (auto _ : state) {
    last = runClosedLoop(
        topo, static_cast<std::size_t>(state.range(0)), kSweepSimTime,
        station, [&] {
          auto result = topo.gateway(0).submitQuery(
              topo.adminToken(0), urls,
              "SELECT HostName, Load1 FROM Processor");
          benchmark::DoNotOptimize(result);
        });
  }
  report(state, last, kSweepSimTime);
}

void BM_DirectoryLookup(benchmark::State& state) {
  sim::TopologyOptions opts;
  opts.gateways = 4;
  opts.hostsPerGateway = 4;
  opts.seed = 42;
  sim::Topology topo(opts);
  const std::string target = topo.site(3).cluster().host(0).name();
  // The directory serves one request at a time; ~50us service each.
  sim::ServiceStation station(1, 50);
  SweepResult last;
  std::uint64_t misses = 0;
  for (auto _ : state) {
    last = runClosedLoop(
        topo, static_cast<std::size_t>(state.range(0)), kSweepSimTime,
        station, [&] {
          auto entry = topo.globalLayer(0)->directory().lookup(target);
          if (!entry) ++misses;
        });
  }
  report(state, last, kSweepSimTime);
  state.counters["lookup_misses"] = static_cast<double>(misses);
}

void BM_FederatedQuery(benchmark::State& state) {
  sim::TopologyOptions opts;
  opts.gateways = 3;
  opts.hostsPerGateway = 4;
  opts.seed = 42;
  sim::Topology topo(opts);
  const std::vector<std::string> urls{topo.site(1).headUrl("snmp"),
                                      topo.site(2).headUrl("snmp")};
  // Federation fans out per site; ~800us coordinator CPU per statement.
  sim::ServiceStation station(2, 800);
  SweepResult last;
  for (auto _ : state) {
    last = runClosedLoop(
        topo, static_cast<std::size_t>(state.range(0)), kSweepSimTime,
        station, [&] {
          auto result = topo.globalLayer(0)->federatedQuery(
              topo.adminToken(0), urls,
              "SELECT COUNT(*), AVG(Load1) FROM Processor");
          benchmark::DoNotOptimize(result);
        });
  }
  report(state, last, kSweepSimTime);
}

// One process, the full grid: PERF_STUDY_GATEWAYS gateways x
// PERF_STUDY_HOSTS_PER_GW hosts (10k hosts by default), built once and
// then exercised with a cross-grid query mix per iteration.
void BM_ScaleOut(benchmark::State& state) {
  static std::unique_ptr<sim::Topology> topo;
  static double buildMs = 0;
  if (!topo) {
    sim::TopologyOptions opts;
    opts.gateways = envSize("PERF_STUDY_GATEWAYS", 100);
    opts.hostsPerGateway = envSize("PERF_STUDY_HOSTS_PER_GW", 100);
    opts.seed = 7;
    // Stagger 100 site refresh ticks rather than firing them all on
    // one instant.
    opts.refreshInterval = 60 * util::kSecond;
    const auto t0 = std::chrono::steady_clock::now();
    topo = std::make_unique<sim::Topology>(opts);
    buildMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  }
  util::Rng rng(11);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    // A burst of gateway queries spread across the grid, then a slice
    // of simulated time so maintenance events interleave.
    for (int i = 0; i < 8; ++i) {
      const std::size_t g = rng.below(topo->gatewayCount());
      auto result = topo->gateway(g).submitQuery(
          topo->adminToken(g), {topo->site(g).headUrl("snmp")},
          "SELECT HostName, Load1 FROM Processor");
      benchmark::DoNotOptimize(result);
      ++ops;
    }
    topo->loop().runFor(util::kSecond);
  }
  topo->quiesce();
  state.counters["hosts"] = static_cast<double>(topo->hostCount());
  state.counters["gateways"] = static_cast<double>(topo->gatewayCount());
  state.counters["build_ms"] = buildMs;
  state.counters["loop_events"] =
      static_cast<double>(topo->loop().eventsFired());
  state.counters["ops"] = static_cast<double>(ops);
}

}  // namespace

BENCHMARK(BM_GatewayQuery)
    ->ArgName("users")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DirectoryLookup)
    ->ArgName("users")
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FederatedQuery)
    ->ArgName("users")
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleOut)->Unit(benchmark::kMillisecond);
