// E11 -- Cost of the homogenisation layer (ablation).
//
// The paper's design argument is that normalising everything through
// SQL + GLUE + pluggable drivers is worth its overhead. This ablation
// quantifies that overhead: the same datum (a host's 1-minute load)
// obtained (a) by a client speaking the native protocol directly,
// (b) through a standalone driver, and (c) through the full gateway
// path (session check, CGSL/FGSL, request manager, pool, driver,
// translation, consolidation), with and without the gateway cache.
//
// Expected shape: the abstraction adds single-digit microseconds of CPU
// and zero extra network round trips for fine-grained sources -- small
// against any real link latency -- and the cached gateway path is
// cheaper than even direct native access.
#include <benchmark/benchmark.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/agents/snmp_agent.hpp"
#include "gridrm/agents/snmp_codec.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/drivers/defaults.hpp"

namespace {

using namespace gridrm;
namespace snmp = agents::snmp;

struct Bench {
  Bench() : network(clock, 37) {
    agents::SiteOptions options;
    options.hostCount = 2;
    site = std::make_unique<agents::SiteSimulation>(network, clock, options);
    clock.advance(60 * util::kSecond);
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<agents::SiteSimulation> site;
};

void reportSimTime(benchmark::State& state, util::SimClock& clock,
                   util::TimePoint simStart) {
  state.counters["sim_us_per_query"] =
      static_cast<double>(clock.now() - simStart) /
      static_cast<double>(state.iterations());
}

// (a) Bare native access: encode one SNMP GET, decode the response.
void BM_DirectNativeSnmp(benchmark::State& state) {
  Bench bench;
  const net::Address agent{"siteA-node00", snmp::kSnmpPort};
  const util::TimePoint simStart = bench.clock.now();
  for (auto _ : state) {
    snmp::Pdu get;
    get.type = snmp::PduType::Get;
    get.varbinds.push_back({snmp::Oid::parse(snmp::oids::kLaLoad1), {}});
    const net::Payload response =
        bench.network.request({"client", 0}, agent, snmp::encodePdu(get));
    snmp::Pdu decoded = snmp::decodePdu(response);
    benchmark::DoNotOptimize(decoded.varbinds[0].value);
  }
  reportSimTime(state, bench.clock, simStart);
}
BENCHMARK(BM_DirectNativeSnmp);

// (b) Through a standalone driver: SQL + GLUE translation, no gateway.
void BM_ThroughDriver(benchmark::State& state) {
  Bench bench;
  glue::SchemaManager schemaManager;
  dbc::DriverRegistry registry;
  drivers::DriverContext ctx;
  ctx.network = &bench.network;
  ctx.clock = &bench.clock;
  ctx.schemaManager = &schemaManager;
  drivers::registerDefaultDrivers(registry, ctx);
  auto url = *util::Url::parse(bench.site->headUrl("snmp"));
  auto conn = registry.locate(url)->connect(url, {});
  auto stmt = conn->createStatement();
  const util::TimePoint simStart = bench.clock.now();
  for (auto _ : state) {
    auto rs = stmt->executeQuery("SELECT Load1 FROM Processor");
    benchmark::DoNotOptimize(rs);
  }
  reportSimTime(state, bench.clock, simStart);
}
BENCHMARK(BM_ThroughDriver);

// (c) Full gateway path.
void runGateway(benchmark::State& state, util::Duration cacheTtl,
                bool useCache, bool validatePool = true) {
  Bench bench;
  core::GatewayOptions options;
  options.host = "gw";
  options.cacheTtl = cacheTtl;
  options.validatePooledConnections = validatePool;
  core::Gateway gateway(bench.network, bench.clock, options);
  const std::string session =
      gateway.openSession(core::Principal::monitor());
  const std::string url = bench.site->headUrl("snmp");
  core::QueryOptions queryOptions;
  queryOptions.useCache = useCache;
  const util::TimePoint simStart = bench.clock.now();
  for (auto _ : state) {
    auto result = gateway.submitQuery(session, {url},
                                      "SELECT Load1 FROM Processor",
                                      queryOptions);
    benchmark::DoNotOptimize(result.rows);
  }
  reportSimTime(state, bench.clock, simStart);
}

void BM_ThroughGatewayUncached(benchmark::State& state) {
  runGateway(state, 0, false);
}
// Lazy pool validation: the gateway trusts pooled connections and
// poisons them on failure instead of probing before every reuse.
void BM_ThroughGatewayLazyValidation(benchmark::State& state) {
  runGateway(state, 0, false, /*validatePool=*/false);
}
void BM_ThroughGatewayCached(benchmark::State& state) {
  runGateway(state, 3600 * util::kSecond, true);
}
BENCHMARK(BM_ThroughGatewayUncached);
BENCHMARK(BM_ThroughGatewayLazyValidation);
BENCHMARK(BM_ThroughGatewayCached);

}  // namespace
