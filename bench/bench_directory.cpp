// E21 -- Replicated directory service at registry scale (PR 10).
//
// Claims: sharding the GMA directory across replicas keeps register /
// lookup / batch-lookup throughput within a small constant of the
// standalone directory (lookups fan out one request per shard; batch
// lookups amortize that fan-out across hosts), and a dead replica
// degrades a shard's lookups to one failover round trip instead of an
// outage.
//
// Scenario: one standalone directory vs a 3-replica service (3 shards,
// replication 2) on the simulated network (200us links). Workload: 64
// registered producers, single lookups, 16-host batch lookups, and
// lookups against a shard whose primary is down (failover to the read
// replica; the timeout charged for the dead primary dominates).
//
// Counters: sim_us_per_op (simulated microseconds per operation),
// client_failovers where the failover path is exercised.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "gridrm/global/directory.hpp"

namespace {

using namespace gridrm;

constexpr int kProducers = 64;

struct DirectoryBench {
  explicit DirectoryBench(bool sharded) : network(clock, 23) {
    std::vector<net::Address> seeds;
    if (sharded) {
      const std::vector<net::Address> nodes = {
          {"gma0", global::kDirectoryPort},
          {"gma1", global::kDirectoryPort},
          {"gma2", global::kDirectoryPort}};
      map = global::ShardMap::build(nodes, /*shards=*/3, /*replication=*/2);
      for (const auto& node : nodes) {
        global::DirectoryOptions options;
        options.map = map;
        replicas.push_back(
            std::make_unique<global::GmaDirectory>(network, node, options));
      }
      seeds = nodes;
    } else {
      replicas.push_back(std::make_unique<global::GmaDirectory>(
          network, net::Address{"gma", global::kDirectoryPort}));
      seeds = {{"gma", global::kDirectoryPort}};
    }
    client = std::make_unique<global::DirectoryClient>(
        network, net::Address{"client", 1}, seeds);
  }

  void registerFleet() {
    for (int i = 0; i < kProducers; ++i) {
      client->registerProducer(
          "gw-" + std::to_string(i), {"h" + std::to_string(i), 1},
          {"site" + std::to_string(i) + "-*"}, /*epoch=*/1);
    }
    for (auto& replica : replicas) (void)replica->syncTick();
  }

  util::SimClock clock{0};
  net::Network network;
  global::ShardMap map;
  std::vector<std::unique_ptr<global::GmaDirectory>> replicas;
  std::unique_ptr<global::DirectoryClient> client;
};

void simCounter(benchmark::State& state, util::TimePoint t0,
                const util::SimClock& clock) {
  state.counters["sim_us_per_op"] = benchmark::Counter(
      static_cast<double>(clock.now() - t0) /
      static_cast<double>(state.iterations() ? state.iterations() : 1));
}

/// Arg 0: standalone. Arg 1: 3-replica sharded service.
void BM_DirectoryRegister(benchmark::State& state) {
  DirectoryBench bench(state.range(0) == 1);
  const util::TimePoint t0 = bench.clock.now();
  int i = 0;
  for (auto _ : state) {
    bench.client->registerProducer(
        "gw-" + std::to_string(i % kProducers),
        {"h" + std::to_string(i % kProducers), 1},
        {"site" + std::to_string(i % kProducers) + "-*"}, /*epoch=*/1);
    ++i;
  }
  simCounter(state, t0, bench.clock);
}
BENCHMARK(BM_DirectoryRegister)->Arg(0)->Arg(1);

void BM_DirectoryLookup(benchmark::State& state) {
  DirectoryBench bench(state.range(0) == 1);
  bench.registerFleet();
  const util::TimePoint t0 = bench.clock.now();
  int i = 0;
  for (auto _ : state) {
    auto hit = bench.client->lookup("site" + std::to_string(i % kProducers) +
                                    "-node00");
    benchmark::DoNotOptimize(hit);
    ++i;
  }
  simCounter(state, t0, bench.clock);
}
BENCHMARK(BM_DirectoryLookup)->Arg(0)->Arg(1);

void BM_DirectoryLookupMany(benchmark::State& state) {
  DirectoryBench bench(state.range(0) == 1);
  bench.registerFleet();
  std::vector<std::string> hosts;
  for (int i = 0; i < 16; ++i) {
    hosts.push_back("site" + std::to_string(i) + "-node00");
  }
  const util::TimePoint t0 = bench.clock.now();
  for (auto _ : state) {
    auto answers = bench.client->lookupMany(hosts);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["hosts_per_batch"] = static_cast<double>(hosts.size());
  simCounter(state, t0, bench.clock);
}
BENCHMARK(BM_DirectoryLookupMany)->Arg(0)->Arg(1);

/// Sharded service with one dead replica: every lookup that routes to
/// the dead primary pays its request timeout, then recovers on the
/// read replica — the per-lookup failover recovery cost.
void BM_DirectoryLookupFailover(benchmark::State& state) {
  DirectoryBench bench(/*sharded=*/true);
  bench.registerFleet();
  bench.network.setHostDown("gma0", true);
  const util::TimePoint t0 = bench.clock.now();
  int i = 0;
  for (auto _ : state) {
    auto hit = bench.client->lookup("site" + std::to_string(i % kProducers) +
                                    "-node00");
    benchmark::DoNotOptimize(hit);
    ++i;
  }
  simCounter(state, t0, bench.clock);
  state.counters["client_failovers"] =
      static_cast<double>(bench.client->clientStats().failovers);
}
BENCHMARK(BM_DirectoryLookupFailover);

}  // namespace
