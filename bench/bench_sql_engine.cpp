// E9 -- SQL front-end cost (paper section 3).
//
// Claim: "The approach used in GridRM is simple and standard, yet
// powerful and expressive due to the nature of SQL" -- with "String
// queries in, and ResultSets out", the SQL machinery must be cheap
// relative to contacting any data source.
//
// Measured: lexing+parsing of a representative query corpus, AST
// round-trip rendering, expression evaluation, and full SELECT
// execution against the in-memory store at several table sizes.
// Expected shape: parse cost is a few microseconds -- orders of
// magnitude below even a LAN round trip to an agent.
#include <benchmark/benchmark.h>

#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"

namespace {

using namespace gridrm;
using util::Value;

const char* kCorpus[] = {
    "SELECT * FROM Processor",
    "SELECT HostName, Load1 FROM Processor WHERE Load1 > 0.8",
    "SELECT HostName, Load1 / CPUCount AS perCpu FROM Processor "
    "WHERE ClusterName = 'siteA' AND Load1 BETWEEN 0.5 AND 4.0 "
    "ORDER BY perCpu DESC LIMIT 10",
    "SELECT * FROM Memory WHERE RAMAvailable < 512 OR VirtualAvailable < 128",
    "SELECT HostName FROM Host WHERE OSName LIKE 'Linux%' "
    "AND HostName IN ('n0', 'n1', 'n2') AND UpTime IS NOT NULL",
};

void BM_Parse(benchmark::State& state) {
  const std::string query = kCorpus[state.range(0)];
  for (auto _ : state) {
    auto stmt = sql::parse(query);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * query.size()));
  state.SetLabel(query.substr(0, 40) + "...");
}
BENCHMARK(BM_Parse)->DenseRange(0, 4);

void BM_ParseRenderRoundTrip(benchmark::State& state) {
  const std::string query = kCorpus[2];
  for (auto _ : state) {
    auto text = sql::parse(query).toSql();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_ParseRenderRoundTrip);

void BM_PredicateEvaluation(benchmark::State& state) {
  auto stmt = sql::parseSelect(
      "SELECT * FROM t WHERE load1 / cpus > 0.5 AND host LIKE 'siteA-%' "
      "AND mem BETWEEN 100 AND 4000");
  sql::FnRowAccessor row([](const std::string& name) -> std::optional<Value> {
    if (name == "load1") return Value(1.4);
    if (name == "cpus") return Value(2);
    if (name == "host") return Value("siteA-node07");
    if (name == "mem") return Value(1024);
    return std::nullopt;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::evaluatePredicate(*stmt.where, row));
  }
}
BENCHMARK(BM_PredicateEvaluation);

store::Database* makeDb(int rows) {
  auto* db = new store::Database();
  db->createTable("Processor",
                  {{"HostName", util::ValueType::String, "", "Processor"},
                   {"ClusterName", util::ValueType::String, "", "Processor"},
                   {"Load1", util::ValueType::Real, "", "Processor"},
                   {"CPUCount", util::ValueType::Int, "", "Processor"}});
  for (int i = 0; i < rows; ++i) {
    db->insertRow("Processor",
                  {Value("node" + std::to_string(i)), Value("siteA"),
                   Value(0.01 * (i % 400)), Value(2 + i % 6)});
  }
  return db;
}

void BM_ExecuteSelect(benchmark::State& state) {
  std::unique_ptr<store::Database> db(makeDb(static_cast<int>(state.range(0))));
  const auto stmt = sql::parseSelect(
      "SELECT HostName, Load1 FROM Processor WHERE Load1 > 2.0 "
      "ORDER BY Load1 DESC LIMIT 20");
  for (auto _ : state) {
    auto rs = db->query(stmt);
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ExecuteSelect)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GroupByAggregate(benchmark::State& state) {
  std::unique_ptr<store::Database> db(makeDb(static_cast<int>(state.range(0))));
  const auto stmt = sql::parseSelect(
      "SELECT ClusterName, COUNT(*), AVG(Load1 / CPUCount) "
      "FROM Processor GROUP BY ClusterName");
  for (auto _ : state) {
    auto rs = db->query(stmt);
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GroupByAggregate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Insert(benchmark::State& state) {
  std::unique_ptr<store::Database> db(makeDb(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    db->insertRow("Processor", {Value("n"), Value("s"),
                                Value(0.5), Value(static_cast<int>(i++ % 8))});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Insert);

}  // namespace
