// E17 -- columnar historical store vs the row Table (ROADMAP: "a real
// gateway accumulates millions of metrics over days").
//
// Claim: per-attribute columns with delta-of-delta timestamps, XOR
// gauges and dictionary strings cut the stored bytes per sample by an
// order of magnitude, and tier-aware aggregate rewrites answer coarse
// historical GROUP BYs from rollups instead of raw samples.
//
// Measured: append rate into the write-ahead buffer (sealing included),
// encoded footprint per sample vs the row-store equivalent, historical
// GROUP-BY throughput (row store vs tsdb raw tier vs tsdb rollup tier),
// and narrow time-range scans where segment pruning + late
// materialisation skip most of the data. TsdbStats counters ride along
// in the JSON output (bytes_per_sample, compression_x, tier hits, cell
// skip ratios) so EXPERIMENTS.md quotes them directly.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"
#include "gridrm/util/clock.hpp"

namespace {

using namespace gridrm;
using store::tsdb::TimeSeriesStore;
using store::tsdb::TsdbOptions;
using store::tsdb::TsdbStats;
using util::Value;
using util::ValueType;

constexpr std::int64_t kPollInterval = 30 * util::kSecond;
constexpr int kHosts = 10;

std::vector<dbc::ColumnInfo> historySchema() {
  return {{"HostName", ValueType::String, "", "HistoryProcessor"},
          {"ClusterName", ValueType::String, "", "HistoryProcessor"},
          {"Load1", ValueType::Real, "", "HistoryProcessor"},
          {"CPUCount", ValueType::Int, "", "HistoryProcessor"},
          {"RecordedAt", ValueType::Int, "us", "HistoryProcessor"}};
}

/// One poll sweep row: host h sampled at poll p (realistic monitoring
/// shape -- strings repeat, loads wobble over a small set, timestamps
/// tick at the poll interval).
std::vector<Value> sampleRow(int p, int h) {
  return {Value("node" + std::to_string(h)),
          Value(h < kHosts / 2 ? "clusterA" : "clusterB"),
          Value(0.25 * ((p + h) % 40)), Value(2 + h % 6),
          Value(static_cast<std::int64_t>(p) * kPollInterval)};
}

void ingest(TimeSeriesStore& store, int polls) {
  store.createTable("HistoryProcessor", historySchema(), "RecordedAt");
  for (int p = 0; p < polls; ++p) {
    for (int h = 0; h < kHosts; ++h) {
      store.append("HistoryProcessor", sampleRow(p, h));
    }
  }
  store.sealAll();
}

void ingestRows(store::Database& db, int polls) {
  db.createTable("HistoryProcessor", historySchema());
  for (int p = 0; p < polls; ++p) {
    for (int h = 0; h < kHosts; ++h) {
      db.insertRow("HistoryProcessor", sampleRow(p, h));
    }
  }
}

void exportCounters(benchmark::State& state, const TsdbStats& s) {
  state.counters["bytes_per_sample"] = s.bytesPerSample();
  state.counters["compression_x"] = s.compressionRatio();
  state.counters["segments"] = static_cast<double>(s.segments);
  state.counters["rollup_rows_1m"] = static_cast<double>(s.rollupRows1m);
  state.counters["rollup_rows_1h"] = static_cast<double>(s.rollupRows1h);
  state.counters["tier_hits_1m"] = static_cast<double>(s.tierHits1m);
  state.counters["tier_hits_1h"] = static_cast<double>(s.tierHits1h);
  state.counters["raw_queries"] = static_cast<double>(s.rawQueries);
  state.counters["segments_pruned"] =
      static_cast<double>(s.scan.segmentsPruned);
  state.counters["cells_skipped"] = static_cast<double>(s.scan.cellsSkipped);
  state.counters["cells_materialized"] =
      static_cast<double>(s.scan.cellsMaterialized);
}

// --- ingest ----------------------------------------------------------

void BM_AppendTsdb(benchmark::State& state) {
  util::SimClock clock;
  TimeSeriesStore store(clock);
  store.createTable("HistoryProcessor", historySchema(), "RecordedAt");
  int p = 0, h = 0;
  for (auto _ : state) {
    store.append("HistoryProcessor", sampleRow(p, h));
    if (++h == kHosts) {
      h = 0;
      ++p;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  exportCounters(state, store.stats());
}
BENCHMARK(BM_AppendTsdb);

void BM_AppendRowStore(benchmark::State& state) {
  store::Database db;
  db.createTable("HistoryProcessor", historySchema());
  int p = 0, h = 0;
  for (auto _ : state) {
    db.insertRow("HistoryProcessor", sampleRow(p, h));
    if (++h == kHosts) {
      h = 0;
      ++p;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AppendRowStore);

// --- footprint -------------------------------------------------------

void BM_EncodedFootprint(benchmark::State& state) {
  // Footprint per sealed sample; the timed body is the stats() walk so
  // the counters land in the JSON (the interesting numbers are the
  // bytes_per_sample / compression_x counters, not the loop time).
  util::SimClock clock;
  TimeSeriesStore store(clock);
  ingest(store, static_cast<int>(state.range(0)) / kHosts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.stats());
  }
  exportCounters(state, store.stats());
}
BENCHMARK(BM_EncodedFootprint)->Arg(10000)->Arg(100000);

// --- historical GROUP BY ---------------------------------------------

// 100k samples = 10 hosts x 10000 polls x 30s, ~3.5 simulated days.
constexpr int kScanPolls = 10000;
const char* kGroupBySql =
    "SELECT ClusterName, COUNT(*), AVG(Load1), MAX(Load1) "
    "FROM HistoryProcessor "
    "WHERE RecordedAt >= 0 AND RecordedAt < 252000000000 "
    "GROUP BY ClusterName";  // [0, 70000s) = whole hours: tier-aligned

void BM_GroupByRowStore(benchmark::State& state) {
  store::Database db;
  ingestRows(db, kScanPolls);
  const auto stmt = sql::parseSelect(kGroupBySql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query(stmt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kScanPolls * kHosts);
}
BENCHMARK(BM_GroupByRowStore);

void BM_GroupByTsdbRaw(benchmark::State& state) {
  util::SimClock clock;
  TsdbOptions options;
  options.tierQueries = false;  // force the raw columnar path
  TimeSeriesStore store(clock, options);
  ingest(store, kScanPolls);
  const auto stmt = sql::parseSelect(kGroupBySql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(stmt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kScanPolls * kHosts);
  exportCounters(state, store.stats());
}
BENCHMARK(BM_GroupByTsdbRaw);

void BM_GroupByTsdbTiered(benchmark::State& state) {
  util::SimClock clock;
  TimeSeriesStore store(clock);
  ingest(store, kScanPolls);
  const auto stmt = sql::parseSelect(kGroupBySql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(stmt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kScanPolls * kHosts);
  exportCounters(state, store.stats());
}
BENCHMARK(BM_GroupByTsdbTiered);

// --- narrow time-range scan ------------------------------------------

// One host's samples from a 5-minute window out of ~3.5 days: segment
// pruning drops almost every segment before any column decodes.
const char* kNarrowSql =
    "SELECT HostName, Load1, RecordedAt FROM HistoryProcessor "
    "WHERE RecordedAt >= 86400000000 AND RecordedAt < 86700000000 "
    "AND HostName = 'node3'";

void BM_NarrowScanRowStore(benchmark::State& state) {
  store::Database db;
  ingestRows(db, kScanPolls);
  const auto stmt = sql::parseSelect(kNarrowSql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query(stmt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kScanPolls * kHosts);
}
BENCHMARK(BM_NarrowScanRowStore);

void BM_NarrowScanTsdb(benchmark::State& state) {
  util::SimClock clock;
  TimeSeriesStore store(clock);
  ingest(store, kScanPolls);
  const auto stmt = sql::parseSelect(kNarrowSql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(stmt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kScanPolls * kHosts);
  exportCounters(state, store.stats());
}
BENCHMARK(BM_NarrowScanTsdb);

}  // namespace
