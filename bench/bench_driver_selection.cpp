// E1 -- Driver selection (paper Fig. 5 / Table 2 / section 3.1.3).
//
// Claim: dynamic driver location scans the registered drivers with
// acceptsUrl(); "for performance, the GridRMDriverManager maintains a
// cache containing details of the driver last successfully used for a
// data source". Expected shape: cold dynamic selection costs O(N)
// probes in the number of registered drivers; the last-good cache and
// static preferences make repeat selection O(1) regardless of N.
//
// Counters: probes = acceptsUrl calls per selection.
#include <benchmark/benchmark.h>

#include "gridrm/core/driver_manager.hpp"
#include "gridrm/drivers/mock_driver.hpp"

namespace {

using namespace gridrm;
using drivers::MockBehaviour;
using drivers::MockDriver;

struct Bench {
  explicit Bench(int driverCount) : manager(registry) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    // N-1 decoy drivers that reject the URL, then the real one: the
    // worst case for a linear acceptsUrl scan.
    for (int i = 0; i < driverCount - 1; ++i) {
      MockBehaviour decoy;
      decoy.name = "decoy" + std::to_string(i);
      decoy.accepts = {decoy.name};
      registry.registerDriver(std::make_shared<MockDriver>(ctx, decoy));
    }
    MockBehaviour target;
    target.name = "target";
    target.accepts = {"t"};
    registry.registerDriver(std::make_shared<MockDriver>(ctx, target));
    url = *util::Url::parse("jdbc:t://host/x");
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  core::GridRmDriverManager manager;
  util::Url url;
};

void BM_ColdDynamicSelection(benchmark::State& state) {
  Bench bench(static_cast<int>(state.range(0)));
  bench.manager.setLastGoodCacheEnabled(false);  // every selection is cold
  for (auto _ : state) {
    auto sel = bench.manager.obtainConnection(bench.url, {});
    benchmark::DoNotOptimize(sel.connection);
  }
  const auto stats = bench.manager.stats();
  state.counters["probes_per_selection"] = benchmark::Counter(
      static_cast<double>(stats.acceptProbes),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ColdDynamicSelection)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_CachedDynamicSelection(benchmark::State& state) {
  Bench bench(static_cast<int>(state.range(0)));
  (void)bench.manager.obtainConnection(bench.url, {});  // warm the cache
  const auto warmup = bench.manager.stats().acceptProbes;
  for (auto _ : state) {
    auto sel = bench.manager.obtainConnection(bench.url, {});
    benchmark::DoNotOptimize(sel.connection);
  }
  const auto stats = bench.manager.stats();
  state.counters["probes_per_selection"] = benchmark::Counter(
      static_cast<double>(stats.acceptProbes - warmup),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CachedDynamicSelection)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_StaticSelection(benchmark::State& state) {
  Bench bench(static_cast<int>(state.range(0)));
  bench.manager.setStaticPreference(bench.url.text(), {"target"});
  for (auto _ : state) {
    auto sel = bench.manager.obtainConnection(bench.url, {});
    benchmark::DoNotOptimize(sel.connection);
  }
  const auto stats = bench.manager.stats();
  state.counters["probes_per_selection"] = benchmark::Counter(
      static_cast<double>(stats.acceptProbes),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_StaticSelection)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
