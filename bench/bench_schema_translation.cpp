// E7 -- Naming-schema translation cost (paper sections 3.1.4, 3.2.3).
//
// Claim: all driver results are normalised to GLUE ("schema-to-device
// translation", Fig. 3); sources already adhering to GLUE need "little
// or no further processing".
//
// Measured: the pure translation machinery in isolation (mapping
// lookup + unit scaling + GLUE row assembly + relational tail), plus
// the native-parse front ends it sits behind (gmond XML, ULM lines,
// SNMP TLV decode). Expected shape: translation is microseconds per
// row -- negligible against even a LAN round trip -- and the
// GLUE-native (identity) path is the cheapest of all.
#include <benchmark/benchmark.h>

#include "gridrm/agents/ganglia_agent.hpp"
#include "gridrm/agents/netlogger_agent.hpp"
#include "gridrm/agents/snmp_codec.hpp"
#include "gridrm/drivers/driver_common.hpp"
#include "gridrm/drivers/ganglia_driver.hpp"
#include "gridrm/drivers/snmp_driver.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/xml.hpp"

namespace {

using namespace gridrm;

// --- GLUE row assembly + scaling (the SchemaManager-driven core) -----

void BM_GlueRowTranslation(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const glue::GroupDef* group = glue::Schema::builtin().findGroup("Processor");
  const glue::DriverSchemaMap map = drivers::GangliaDriver::defaultSchemaMap();
  const glue::GroupMapping* mapping = map.findGroup("Processor");

  // Simulated "parsed native" values, one set per row.
  const std::vector<std::pair<std::string, util::Value>> native = {
      {"load_one", util::Value("0.42")}, {"load_five", util::Value("0.40")},
      {"load_fifteen", util::Value("0.39")}, {"cpu_user", util::Value("31.5")},
      {"cpu_num", util::Value("2")}, {"cpu_speed", util::Value("2400")}};

  for (auto _ : state) {
    drivers::GlueRowBuilder builder(*group);
    for (int r = 0; r < rows; ++r) {
      builder.beginRow();
      builder.set("HostName", util::Value("node00"));
      for (const auto& [metric, raw] : native) {
        // Reverse lookup: which attribute does this metric feed?
        for (const auto& attr : group->attributes()) {
          auto m = mapping->find(attr.name);
          if (m && m->native == metric) {
            builder.set(attr.name,
                        drivers::convertScaled(raw, m->scale, attr.type));
          }
        }
      }
    }
    auto out = builder.takeRows();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows);
}
BENCHMARK(BM_GlueRowTranslation)->Arg(1)->Arg(16)->Arg(256);

// --- native parse front ends -----------------------------------------

void BM_ParseGangliaXml(benchmark::State& state) {
  util::SimClock clock;
  net::Network network(clock);
  sim::ClusterModel cluster("c", static_cast<std::size_t>(state.range(0)),
                            clock, 3);
  agents::ganglia::GangliaAgent agent(cluster, network, clock);
  clock.advance(60 * util::kSecond);
  const std::string xml = agent.renderXml();
  for (auto _ : state) {
    auto doc = util::parseXml(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * xml.size()));
}
BENCHMARK(BM_ParseGangliaXml)->Arg(1)->Arg(16)->Arg(64);

void BM_ParseUlmRecord(benchmark::State& state) {
  const std::string line = agents::netlogger::formatUlm(
      123456789, "node00", "simd", "cpu.load", 0.4242);
  for (auto _ : state) {
    double value = 0;
    benchmark::DoNotOptimize(
        agents::netlogger::parseUlmValue(line, value));
    benchmark::DoNotOptimize(value);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * line.size()));
}
BENCHMARK(BM_ParseUlmRecord);

void BM_DecodeSnmpResponse(benchmark::State& state) {
  namespace snmp = agents::snmp;
  snmp::Pdu pdu;
  pdu.type = snmp::PduType::Response;
  for (int i = 0; i < 12; ++i) {
    pdu.varbinds.push_back(
        {snmp::Oid::parse("1.3.6.1.4.1.2021.10.1.3." + std::to_string(i)),
         util::Value(0.5 + i)});
  }
  const std::string wire = snmp::encodePdu(pdu);
  for (auto _ : state) {
    auto decoded = snmp::decodePdu(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_DecodeSnmpResponse);

// --- relational tail applied to translated rows ----------------------

void BM_ApplyClauses(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const glue::GroupDef* group = glue::Schema::builtin().findGroup("Processor");
  drivers::GlueRowBuilder builder(*group);
  for (int r = 0; r < rows; ++r) {
    builder.beginRow()
        .set("HostName", util::Value("node" + std::to_string(r)))
        .set("Load1", util::Value(0.1 * r))
        .set("CPUCount", util::Value(2));
  }
  const auto columns = builder.columns();
  const auto data = builder.takeRows();
  const auto stmt = sql::parseSelect(
      "SELECT HostName, Load1 FROM Processor WHERE Load1 > 1.0 "
      "ORDER BY Load1 DESC LIMIT 10");
  for (auto _ : state) {
    auto rs = drivers::applyClauses(stmt, columns, data);
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows);
}
BENCHMARK(BM_ApplyClauses)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
