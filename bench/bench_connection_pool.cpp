// E2 -- Connection pooling (paper section 3.1.2).
//
// Claim: "Driver connections typically incur an overhead when a data
// source is first connected ... the ConnectionManager provides pooling
// of driver connections to reduce the overhead effects."
//
// The SNMP driver's connect() probes the agent (one extra round trip),
// so an unpooled query costs ~2 RTTs of simulated time versus ~1 RTT
// pooled. Expected shape: pooled simulated time per query is roughly
// half of unpooled, and the gap widens with link latency.
//
// Counters: sim_us_per_query (simulated), creations_per_query.
#include <benchmark/benchmark.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/connection_manager.hpp"
#include "gridrm/drivers/defaults.hpp"

namespace {

using namespace gridrm;

struct Bench {
  Bench(std::size_t maxIdle, util::Duration linkLatencyUs,
        bool validateOnAcquire)
      : network(clock, 7),
        manager(registry),
        pool(manager, maxIdle, validateOnAcquire) {
    network.setDefaultLink(net::LinkModel{linkLatencyUs, 0, 0.0});
    agents::SiteOptions options;
    options.hostCount = 1;
    site = std::make_unique<agents::SiteSimulation>(network, clock, options);
    clock.advance(60 * util::kSecond);
    ctx.network = &network;
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    drivers::registerDefaultDrivers(registry, ctx);
    url = *util::Url::parse(site->headUrl("snmp"));
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<agents::SiteSimulation> site;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  core::GridRmDriverManager manager;
  core::ConnectionManager pool;
  util::Url url;
};

void runQueries(benchmark::State& state, std::size_t maxIdle,
                bool validateOnAcquire) {
  Bench bench(maxIdle, static_cast<util::Duration>(state.range(0)),
              validateOnAcquire);
  std::uint64_t queries = 0;
  const util::TimePoint simStart = bench.clock.now();
  for (auto _ : state) {
    auto lease = bench.pool.acquire(bench.url, {});
    auto stmt = lease->createStatement();
    auto rs = stmt->executeQuery("SELECT Load1 FROM Processor");
    benchmark::DoNotOptimize(rs);
    ++queries;
  }
  const double simUs =
      static_cast<double>(bench.clock.now() - simStart);
  state.counters["sim_us_per_query"] =
      simUs / static_cast<double>(queries);
  state.counters["creations_per_query"] =
      static_cast<double>(bench.pool.stats().creations) /
      static_cast<double>(queries);
}

// Every query reconnects: connect probe + query = ~2 RTTs.
void BM_Unpooled(benchmark::State& state) { runQueries(state, 0, true); }
// Pooled but re-validated on every acquire: the validation probe costs
// as much as the connect it saves (~2 RTTs) -- pooling only pays off
// when the connect itself is expensive beyond one probe.
void BM_PooledValidating(benchmark::State& state) {
  runQueries(state, 4, true);
}
// Pooled, trusting the pool (validate lazily on failure): ~1 RTT.
void BM_Pooled(benchmark::State& state) { runQueries(state, 4, false); }

// Sweep one-way link latency: 100us (LAN), 2ms (campus), 20ms (WAN).
BENCHMARK(BM_Unpooled)->Arg(100)->Arg(2000)->Arg(20000);
BENCHMARK(BM_PooledValidating)->Arg(100)->Arg(2000)->Arg(20000);
BENCHMARK(BM_Pooled)->Arg(100)->Arg(2000)->Arg(20000);

// Concurrent clients sharing one pool: enough idle connections avoid
// re-connect storms even when leases overlap.
void BM_PooledOverlappingLeases(benchmark::State& state) {
  Bench bench(8, 2000, false);
  std::uint64_t queries = 0;
  for (auto _ : state) {
    auto a = bench.pool.acquire(bench.url, {});
    auto b = bench.pool.acquire(bench.url, {});
    auto stmt = a->createStatement();
    auto rs = stmt->executeQuery("SELECT Load1 FROM Processor");
    benchmark::DoNotOptimize(rs);
    queries += 1;
  }
  state.counters["creations_total"] =
      static_cast<double>(bench.pool.stats().creations);
  state.counters["pool_hit_rate"] =
      static_cast<double>(bench.pool.stats().poolHits) /
      static_cast<double>(bench.pool.stats().acquisitions);
  (void)queries;
}
BENCHMARK(BM_PooledOverlappingLeases);

}  // namespace
