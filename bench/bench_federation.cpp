// E16 -- Federation resilience under loss (PR 5).
//
// Claims: sequenced SDELTA delivery with NACK/resend and liveness
// probing keeps relayed continuous queries effectively lossless over
// lossy WAN links, where the legacy fire-and-forget datagram relay
// loses a fraction of deltas equal to the link loss rate.
//
// Scenario: two sites, a consumer gateway relaying a continuous query
// from the owner over a WAN link swept through 0% / 5% / 25% frame
// loss, with the resilience layer on (reliable) and off (baseline).
// Each iteration is one 10s harvesting refresh at the owner; after the
// sweep the consumer settles (liveness probes + NACKs) and we report
// the fraction of refreshes applied.
//
// Expected shape: delivered_fraction >= 0.99 for the reliable relay at
// every loss rate (1.0 after settling, at the cost of resends); the
// baseline tracks ~(1 - loss).
//
// Counters: delivered_fraction, deltas_resent, gaps_detected,
// snapshot_resyncs, liveness_probes, datagrams_dropped.
#include <benchmark/benchmark.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/site_poller.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"

namespace {

using namespace gridrm;

struct FedGrid {
  explicit FedGrid(const global::GlobalOptions& globalOptions)
      : network(clock, 29) {
    directory = std::make_unique<global::GmaDirectory>(
        network, net::Address{"gma", global::kDirectoryPort});
    for (int i = 0; i < 2; ++i) {
      const std::string name = "site" + std::to_string(i);
      agents::SiteOptions siteOptions;
      siteOptions.siteName = name;
      siteOptions.hostCount = 2;
      siteOptions.seed = 100 + i;
      sites.push_back(std::make_unique<agents::SiteSimulation>(
          network, clock, siteOptions));
    }
    clock.advance(60 * util::kSecond);
    for (int i = 0; i < 2; ++i) {
      core::GatewayOptions o;
      o.name = "gw-site" + std::to_string(i);
      o.host = "gw.site" + std::to_string(i);
      gateways.push_back(std::make_unique<core::Gateway>(network, clock, o));
      admins.push_back(gateways[i]->openSession(core::Principal::admin()));
      for (const auto& url : sites[i]->dataSourceUrls()) {
        gateways[i]->addDataSource(admins[i], url);
      }
      globals.push_back(std::make_unique<global::GlobalLayer>(
          *gateways[i], net::Address{"gma", global::kDirectoryPort},
          globalOptions));
      globals[i]->start();
    }
  }

  void quiesce() {
    for (;;) {
      gateways[0]->scheduler().waitIdle();
      gateways[1]->scheduler().waitIdle();
      if (gateways[0]->scheduler().idle() && gateways[1]->scheduler().idle()) {
        return;
      }
    }
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<global::GmaDirectory> directory;
  std::vector<std::unique_ptr<agents::SiteSimulation>> sites;
  std::vector<std::unique_ptr<core::Gateway>> gateways;
  std::vector<std::unique_ptr<global::GlobalLayer>> globals;
  std::vector<std::string> admins;
};

void runRelaySweep(benchmark::State& state, bool reliable) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  global::GlobalOptions options;
  options.reliableDelivery = reliable;
  options.livenessTimeout = 2 * util::kSecond;
  options.resubscribeReplayRows = 0;
  FedGrid grid(options);

  std::uint64_t received = 0;
  (void)grid.globals[0]->subscribeGlobal(
      grid.admins[0], grid.sites[1]->headUrl("snmp"),
      "SELECT HostName, Load1 FROM Processor",
      [&](const stream::StreamDelta&) { ++received; });
  grid.network.setLink("gw.site0", "gw.site1",
                       net::LinkModel{200, 0, loss});

  core::SitePoller poller(grid.gateways[1]->requestManager(), grid.clock,
                          core::Principal::monitor());
  poller.setStreamSink(&grid.gateways[1]->streamEngine());
  core::PollTask task;
  task.url = grid.sites[1]->headUrl("snmp");
  task.sql = "SELECT * FROM Processor";
  task.interval = 10 * util::kSecond;
  poller.addTask(task);

  std::uint64_t polls = 0;
  for (auto _ : state) {
    grid.clock.advance(10 * util::kSecond);
    polls += poller.tick();
    grid.quiesce();
    grid.globals[0]->tick();  // NACK any gap the newest frame exposed
    grid.quiesce();
  }
  // Settle: no new refreshes; liveness probes reclaim the tail.
  for (int i = 0; i < 50 && received < polls; ++i) {
    grid.clock.advance(util::kSecond);
    grid.globals[0]->tick();
    grid.quiesce();
  }

  const global::GlobalStats consumer = grid.globals[0]->stats();
  const global::GlobalStats owner = grid.globals[1]->stats();
  state.counters["delivered_fraction"] =
      polls == 0 ? 0.0
                 : static_cast<double>(received) / static_cast<double>(polls);
  state.counters["deltas_resent"] = static_cast<double>(owner.deltasResent);
  state.counters["gaps_detected"] =
      static_cast<double>(consumer.deltaGapsDetected);
  state.counters["snapshot_resyncs"] =
      static_cast<double>(consumer.snapshotResyncs);
  state.counters["liveness_probes"] =
      static_cast<double>(consumer.livenessProbes);
  state.counters["datagrams_dropped"] = static_cast<double>(
      grid.network
          .stats({"gw.site0", grid.globals[0]->producerAddress().port})
          .datagramsDropped);
}

void BM_FederationReliableRelay(benchmark::State& state) {
  runRelaySweep(state, /*reliable=*/true);
}
void BM_FederationFireAndForget(benchmark::State& state) {
  runRelaySweep(state, /*reliable=*/false);
}

// Arg = WAN frame-loss percentage.
BENCHMARK(BM_FederationReliableRelay)->Arg(0)->Arg(5)->Arg(25);
BENCHMARK(BM_FederationFireAndForget)->Arg(0)->Arg(5)->Arg(25);

// Registration storm against a directory that comes up late: every
// retry burns simulated backoff, after which the join completes.
void BM_FederationLateDirectoryJoin(benchmark::State& state) {
  std::uint64_t attempts = 0;
  std::uint64_t joins = 0;
  for (auto _ : state) {
    state.PauseTiming();
    util::SimClock clock;
    net::Network network(clock, 31);
    global::GmaDirectory directory(network,
                                   {"gma", global::kDirectoryPort});
    global::DirectoryClient client(network, {"gw", global::kProducerPort},
                                   {"gma", global::kDirectoryPort});
    network.setHostDown("gma", true);
    // The directory recovers while the client backs off.
    state.ResumeTiming();
    try {
      attempts += client.registerProducer("gw", {"gw", global::kProducerPort},
                                          {"node*"}, 1, 0, /*retries=*/2,
                                          /*backoff=*/50 * util::kMillisecond);
    } catch (const net::NetError&) {
      attempts += 3;  // retries exhausted while the directory was down
      network.setHostDown("gma", false);
      attempts += client.registerProducer("gw", {"gw", global::kProducerPort},
                                          {"node*"}, 1, 0, /*retries=*/2);
    }
    ++joins;
  }
  state.counters["attempts_per_join"] =
      static_cast<double>(attempts) / static_cast<double>(joins);
}
BENCHMARK(BM_FederationLateDirectoryJoin);

}  // namespace
