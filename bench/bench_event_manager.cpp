// E5 -- Event Manager fast buffer (paper Fig. 4).
//
// Claim: the fast buffer "ensures events are not lost in a busy
// system"; incoming events are recorded and "forwarded to all
// components that registered interest".
//
// Measured: (a) ingest->dispatch throughput as listener fan-out grows,
// (b) native-trap translation throughput (decode + dispatch), and
// (c) the loss ablation: bursty producers against a bounded buffer
// under Block (lossless) vs DropNewest (sheds load). Expected shape:
// zero drops under Block regardless of burst size; drops appear under
// DropNewest once the burst outruns the consumer; throughput falls
// roughly linearly with fan-out.
#include <benchmark/benchmark.h>

#include "gridrm/agents/snmp_agent.hpp"
#include "gridrm/core/event_manager.hpp"

namespace {

using namespace gridrm;
namespace snmp = agents::snmp;

void BM_IngestDispatchFanout(benchmark::State& state) {
  const int listeners = static_cast<int>(state.range(0));
  util::SimClock clock;
  core::EventManagerOptions options;
  options.threadedDispatch = false;  // measure the translation+fanout work
  options.recordHistory = false;
  core::EventManager mgr(clock, nullptr, options);
  std::uint64_t delivered = 0;
  for (int i = 0; i < listeners; ++i) {
    mgr.addListener("bench", [&](const core::Event&) { ++delivered; });
  }
  core::Event e;
  e.type = "bench.tick";
  e.fields["v"] = util::Value(1.0);
  for (auto _ : state) {
    mgr.ingest(e);
  }
  state.counters["deliveries_per_event"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IngestDispatchFanout)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_NativeTrapTranslation(benchmark::State& state) {
  util::SimClock clock;
  core::EventManagerOptions options;
  options.threadedDispatch = false;
  options.recordHistory = false;
  core::EventManager mgr(clock, nullptr, options);
  mgr.addFormatter(std::make_unique<core::SnmpTrapFormatter>());
  std::uint64_t seen = 0;
  mgr.addListener("snmp.trap", [&](const core::Event&) { ++seen; });

  snmp::Pdu trap;
  trap.type = snmp::PduType::Trap;
  trap.varbinds.push_back({snmp::Oid::parse("1.3.6.1.6.3.1.1.4.1.0"),
                           util::Value(snmp::oids::kTrapHighLoad)});
  trap.varbinds.push_back(
      {snmp::Oid::parse(snmp::oids::kLaLoad1), util::Value(7.5)});
  const net::Payload wire = snmp::encodePdu(trap);
  const net::Address from{"node00", 161};

  for (auto _ : state) {
    mgr.ingestNative(from, wire);
  }
  benchmark::DoNotOptimize(seen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_NativeTrapTranslation);

void BM_HistoricalRecording(benchmark::State& state) {
  util::SimClock clock;
  store::Database db;
  core::EventManagerOptions options;
  options.threadedDispatch = false;
  core::EventManager mgr(clock, &db, options);
  core::Event e;
  e.type = "bench.tick";
  e.source = "node00";
  e.fields["load"] = util::Value(2.5);
  for (auto _ : state) {
    mgr.ingest(e);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistoricalRecording);

/// Burst ablation: `burst` producer events hit a `capacity`-slot buffer
/// with a consumer that costs ~1us per event.
void runBurst(benchmark::State& state, util::OverflowPolicy policy) {
  const int capacity = static_cast<int>(state.range(0));
  constexpr int kBurst = 4096;
  double dropRate = 0;
  for (auto _ : state) {
    state.PauseTiming();
    util::SimClock clock;
    core::EventManagerOptions options;
    options.threadedDispatch = true;
    options.recordHistory = false;
    options.fastBufferCapacity = static_cast<std::size_t>(capacity);
    options.overflow = policy;
    core::EventManager mgr(clock, nullptr, options);
    std::atomic<std::uint64_t> consumed{0};
    mgr.addListener("*", [&](const core::Event&) {
      // Simulate per-event handling work.
      std::uint64_t acc = consumed.fetch_add(1);
      for (int spin = 0; spin < 50; ++spin) {
        benchmark::DoNotOptimize(acc += spin);
      }
    });
    core::Event e;
    e.type = "burst";
    state.ResumeTiming();

    for (int i = 0; i < kBurst; ++i) mgr.ingest(e);
    mgr.drain();

    state.PauseTiming();
    const auto stats = mgr.stats();
    dropRate = static_cast<double>(stats.dropped) / kBurst;
    state.ResumeTiming();
  }
  state.counters["drop_rate"] = dropRate;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
}

void BM_BurstBlockPolicy(benchmark::State& state) {
  runBurst(state, util::OverflowPolicy::Block);
}
void BM_BurstDropNewestPolicy(benchmark::State& state) {
  runBurst(state, util::OverflowPolicy::DropNewest);
}
BENCHMARK(BM_BurstBlockPolicy)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_BurstDropNewestPolicy)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
