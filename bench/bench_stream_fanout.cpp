// E12 -- Continuous-query fan-out (streaming SQL over the Gateway).
//
// Claim: push-based delivery keeps per-subscriber overhead flat — one
// harvested batch is evaluated once per matching subscription and the
// bounded per-subscription queues decouple consumers from the
// harvesting loop.
//
// Measured: (a) delivered-rows/sec as the subscriber count grows, with
// every subscriber's predicate matching (worst-case fan-out); (b) the
// same sweep with selective predicates so most subscriptions filter the
// batch out (the evaluate-but-don't-queue path); (c) the overflow
// ablation: DropOldest shedding versus a draining consumer at queue
// capacity. Expected shape: delivered rows scale linearly with
// subscriber count while ingest cost per batch grows linearly too
// (every query re-evaluates the batch); shedding costs no more than
// delivery.
#include <benchmark/benchmark.h>

#include "gridrm/stream/continuous_query_engine.hpp"

namespace {

using namespace gridrm;
using util::Value;
using util::ValueType;

dbc::ResultSetMetaData batchColumns() {
  return dbc::ResultSetMetaData(
      {{"HostName", ValueType::String, "", "Processor"},
       {"Load1", ValueType::Real, "", "Processor"},
       {"CPUCount", ValueType::Int, "", "Processor"}});
}

std::vector<std::vector<Value>> batchRows(std::size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({Value("node" + std::to_string(i)),
                    Value(0.1 * static_cast<double>(i % 10)), Value(4)});
  }
  return rows;
}

/// (a) Worst-case fan-out: every subscriber matches every batch.
void BM_DeliveredRowsVsSubscribers(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  util::SimClock clock;
  stream::ContinuousQueryEngine engine(clock);
  std::uint64_t deliveredRows = 0;
  for (int i = 0; i < subscribers; ++i) {
    (void)engine.subscribe(
        "", "SELECT HostName, Load1 FROM Processor WHERE Load1 >= 0.0",
        [&](const stream::StreamDelta& d) { deliveredRows += d.rows.size(); });
  }
  const auto columns = batchColumns();
  const auto rows = batchRows(16);
  for (auto _ : state) {
    engine.onRows("jdbc:snmp://head:161/site", "Processor", columns, rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveredRows));
  state.counters["rows_per_batch_per_sub"] = benchmark::Counter(
      static_cast<double>(deliveredRows) / std::max(1, subscribers),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DeliveredRowsVsSubscribers)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

/// (b) Selective predicates: 1 in 8 subscriptions matches the batch's
/// source; the rest pay only the source/table filter.
void BM_SelectiveSubscribers(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  util::SimClock clock;
  stream::ContinuousQueryEngine engine(clock);
  std::uint64_t deliveredRows = 0;
  for (int i = 0; i < subscribers; ++i) {
    const std::string host = "head" + std::to_string(i % 8);
    (void)engine.subscribe(
        host, "SELECT * FROM Processor",
        [&](const stream::StreamDelta& d) { deliveredRows += d.rows.size(); });
  }
  const auto columns = batchColumns();
  const auto rows = batchRows(16);
  for (auto _ : state) {
    engine.onRows("jdbc:snmp://head0:161/site", "Processor", columns, rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveredRows));
}
BENCHMARK(BM_SelectiveSubscribers)->Arg(8)->Arg(64)->Arg(256);

/// (c) Overflow ablation at queue capacity: a pull consumer that never
/// polls (DropOldest sheds) vs one drained every iteration.
void BM_OverflowSheddingVsDraining(benchmark::State& state) {
  const bool drain = state.range(0) != 0;
  util::SimClock clock;
  stream::StreamOptions options;
  options.queueCapacity = 8;
  options.overflow = stream::OverflowPolicy::DropOldest;
  stream::ContinuousQueryEngine engine(clock);
  const auto id =
      engine.subscribe("", "SELECT * FROM Processor", nullptr, options);
  const auto columns = batchColumns();
  const auto rows = batchRows(16);
  for (auto _ : state) {
    engine.onRows("jdbc:snmp://head:161/site", "Processor", columns, rows);
    if (drain) benchmark::DoNotOptimize(engine.poll(id));
  }
  const auto stats = engine.stats();
  state.counters["deltas_dropped"] =
      benchmark::Counter(static_cast<double>(stats.deltasDropped));
  state.counters["rows_delivered"] =
      benchmark::Counter(static_cast<double>(stats.rowsDelivered));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OverflowSheddingVsDraining)
    ->Arg(0)
    ->ArgName("drain")
    ->Arg(1);

}  // namespace
