// E15 -- Gateway-wide priority scheduler (lanes, admission, cancellation).
//
// Claim 1 (lanes): a saturating flood of Background work (site polls,
// stream drains, relayed queries) must not drag interactive query
// latency: the Interactive lane outranks the backlog, so an admitted
// client attempt takes the next free worker instead of queueing behind
// hundreds of polls. Expected shape: interactive p99 under flood within
// ~2x of the idle baseline, while the same client routed through the
// flooded lane (the old single-FIFO-pool world) degrades by the full
// backlog drain time.
//
// Claim 2 (cancellation): when a deadline seals a fan-out, attempts
// still queued behind busy workers are cancelled before they run — they
// never claim a pooled connection or touch the source. Expected shape:
// with 8 clients racing 2 workers at a 10 ms source under a 2 ms
// deadline, ~6 attempts per round are dropped at dispatch
// (cancelled_before_run > 0, source contacted only ~2x per round).
//
// Uses the real SystemClock (lane waits and deadlines are enforced
// against wall time), so iteration counts are fixed to keep runs short.
//
// Counters: p50_ms, p99_ms, bg_executed, bg_rejected,
// interactive_avg_wait_ms, cancelled_before_run, source_contacts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gridrm/core/request_manager.hpp"
#include "gridrm/core/scheduler.hpp"
#include "gridrm/drivers/mock_driver.hpp"

namespace {

using namespace gridrm;
using drivers::MockBehaviour;
using drivers::MockDriver;

constexpr util::Duration kSourceLatency = 2 * util::kMillisecond;
constexpr util::Duration kFloodTaskUs = 500;  // per background task
constexpr std::size_t kFloodDepth = 64;       // backlog the flood maintains

struct Bench {
  Bench(core::SchedulerOptions schedulerOptions, util::Duration sourceLatency)
      : scheduler(clock, schedulerOptions),
        driverManager(registry),
        pool(driverManager),
        cache(clock, 60 * util::kSecond),
        fgsl(true),
        rm(pool, cache, fgsl, /*historyDb=*/nullptr, clock, scheduler) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    MockBehaviour b;
    b.queryLatencyUs = sourceLatency;
    driver = std::make_shared<MockDriver>(ctx, b);
    registry.registerDriver(driver);
  }

  util::SystemClock clock;
  core::Scheduler scheduler;  // must outlive rm
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  core::GridRmDriverManager driverManager;
  core::ConnectionManager pool;
  core::CacheController cache;
  core::FineSecurityLayer fgsl;
  core::RequestManager rm;
  std::shared_ptr<MockDriver> driver;
};

/// Keeps the Background lane ~kFloodDepth deep with short tasks until
/// stopped — a steady harvesting/relay load saturating the gateway.
struct Flood {
  explicit Flood(core::Scheduler& scheduler) : scheduler_(scheduler) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        const auto queued =
            scheduler_.stats().lane(core::Lane::Background).queued;
        if (queued < kFloodDepth) {
          scheduler_.submit(core::Lane::Background, [] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(kFloodTaskUs));
          });
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }
  ~Flood() {
    stop_.store(true);
    thread_.join();
  }

  core::Scheduler& scheduler_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void runInteractive(benchmark::State& state, bool flood, core::Lane lane) {
  Bench bench({.workers = 4, .maxQueueDepth = 256, .backgroundShare = 25},
              kSourceLatency);
  core::QueryOptions options;
  options.useCache = false;   // measure the live path, not the cache
  options.deadline = util::kSecond;  // forces pooled execution; never missed
  options.lane = lane;

  std::unique_ptr<Flood> load;
  if (flood) load = std::make_unique<Flood>(bench.scheduler);

  std::vector<double> latenciesMs;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = bench.rm.queryOne(core::Principal::monitor(),
                                    "jdbc:mock://client/x",
                                    "SELECT Load1 FROM Processor", options);
    benchmark::DoNotOptimize(result);
    latenciesMs.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  load.reset();

  std::sort(latenciesMs.begin(), latenciesMs.end());
  auto percentile = [&](double p) {
    return latenciesMs[static_cast<std::size_t>(
        p * static_cast<double>(latenciesMs.size() - 1))];
  };
  const auto stats = bench.scheduler.stats();
  const auto& laneStats = stats.lane(lane);
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["bg_executed"] =
      static_cast<double>(stats.lane(core::Lane::Background).executed);
  state.counters["bg_rejected"] =
      static_cast<double>(stats.lane(core::Lane::Background).rejected);
  state.counters["interactive_avg_wait_ms"] =
      laneStats.executed == 0
          ? 0.0
          : static_cast<double>(laneStats.totalWait) /
                static_cast<double>(laneStats.executed) / 1000.0;
}

// Idle baseline: the scheduler serves only the client.
void BM_InteractiveIdle(benchmark::State& state) {
  runInteractive(state, /*flood=*/false, core::Lane::Interactive);
}

// Priority lanes under flood: the client's attempt outranks the
// Background backlog and takes the next free worker.
void BM_InteractiveUnderFlood(benchmark::State& state) {
  runInteractive(state, /*flood=*/true, core::Lane::Interactive);
}

// The counterfactual single-FIFO-pool world: the client queues at the
// back of the same flooded lane as the polls and drains with them.
void BM_InteractiveUnderFloodFifo(benchmark::State& state) {
  runInteractive(state, /*flood=*/true, core::Lane::Background);
}

// Claim 2: a met deadline cancels still-queued attempts before they
// run. 8 clients race 2 workers at a 10 ms source under a 2 ms
// deadline: ~2 attempts park in the source per round, ~6 are sealed
// and dropped at dispatch without ever contacting it.
void BM_DeadlineCancelsQueuedAttempts(benchmark::State& state) {
  std::uint64_t cancelled = 0;
  std::uint64_t contacts = 0;
  std::uint64_t misses = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Bench bench({.workers = 2, .maxQueueDepth = 64},
                /*sourceLatency=*/10 * util::kMillisecond);
    core::QueryOptions options;
    options.useCache = false;
    options.deadline = 2 * util::kMillisecond;
    std::vector<std::future<core::QueryResult>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(std::async(std::launch::async, [&bench, &options, i] {
        return bench.rm.queryOne(core::Principal::monitor(),
                                 "jdbc:mock://h" + std::to_string(i) + "/x",
                                 "SELECT Load1 FROM Processor", options);
      }));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    bench.scheduler.waitIdle();  // stragglers finish, cancelled are pruned
    cancelled +=
        bench.scheduler.stats().lane(core::Lane::Interactive).cancelled;
    contacts += bench.driver->queryCalls();
    misses += bench.rm.stats().deadlineMisses;
    ++rounds;
  }
  state.counters["cancelled_before_run"] =
      static_cast<double>(cancelled) / static_cast<double>(rounds);
  state.counters["source_contacts"] =
      static_cast<double>(contacts) / static_cast<double>(rounds);
  state.counters["deadline_misses"] =
      static_cast<double>(misses) / static_cast<double>(rounds);
}

// Real-time benchmarks: fixed iteration counts keep the runs short and
// the flood/drain trajectories comparable across scenarios.
BENCHMARK(BM_InteractiveIdle)->Iterations(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InteractiveUnderFlood)
    ->Iterations(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InteractiveUnderFloodFifo)
    ->Iterations(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeadlineCancelsQueuedAttempts)
    ->Iterations(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
