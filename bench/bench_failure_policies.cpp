// E8 -- Failure policies (paper sections 3.1.3 and 4).
//
// Claim: when the cached/preferred driver fails, configuration rules
// decide the next step -- report the error, retry the driver, try
// another, or dynamically select a new driver from the registered set.
//
// Scenario: a flaky primary driver (every Nth connect fails) plus a
// healthy backup, both claiming the source. Sweep the failure period N
// under each policy. Expected shape: Report's success rate degrades
// ~1/N; Retry recovers transient faults at the cost of extra connect
// attempts; TryNext/DynamicReselect approach 100% success by failing
// over to the backup.
//
// Counters: success_rate, connect_attempts_per_query,
// sim_us_per_query (mock connects cost 1ms of simulated time).
#include <benchmark/benchmark.h>

#include "gridrm/core/connection_manager.hpp"
#include "gridrm/drivers/mock_driver.hpp"

namespace {

using namespace gridrm;
using core::FailurePolicy;
using drivers::MockBehaviour;
using drivers::MockDriver;

struct Bench {
  explicit Bench(std::size_t failEveryN)
      : manager(registry), pool(manager, /*maxIdlePerSource=*/0) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    MockBehaviour primary;
    primary.name = "primary";
    primary.accepts = {"src"};
    primary.failConnectEveryN = failEveryN;
    primary.connectLatencyUs = util::kMillisecond;
    primaryDriver = std::make_shared<MockDriver>(ctx, primary);
    registry.registerDriver(primaryDriver);

    MockBehaviour backup;
    backup.name = "backup";
    backup.accepts = {"src"};
    backup.connectLatencyUs = util::kMillisecond;
    backupDriver = std::make_shared<MockDriver>(ctx, backup);
    registry.registerDriver(backupDriver);

    url = *util::Url::parse("jdbc:src://host/x");
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  core::GridRmDriverManager manager;
  core::ConnectionManager pool;
  std::shared_ptr<MockDriver> primaryDriver;
  std::shared_ptr<MockDriver> backupDriver;
  util::Url url;
};

void runPolicy(benchmark::State& state, FailurePolicy policy) {
  Bench bench(static_cast<std::size_t>(state.range(0)));
  bench.manager.setFailurePolicy(policy);

  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  const util::TimePoint simStart = bench.clock.now();
  for (auto _ : state) {
    ++attempts;
    try {
      auto lease = bench.pool.acquire(bench.url, {});
      auto stmt = lease->createStatement();
      auto rs = stmt->executeQuery("SELECT Load1 FROM Processor");
      benchmark::DoNotOptimize(rs);
      ++successes;
    } catch (const dbc::SqlError&) {
      // Report policy surfaces the failure to the client.
    }
  }
  state.counters["success_rate"] =
      static_cast<double>(successes) / static_cast<double>(attempts);
  state.counters["connect_attempts_per_query"] =
      static_cast<double>(bench.primaryDriver->connectCalls() +
                          bench.backupDriver->connectCalls()) /
      static_cast<double>(attempts);
  state.counters["sim_us_per_query"] =
      static_cast<double>(bench.clock.now() - simStart) /
      static_cast<double>(attempts);
}

void BM_PolicyReport(benchmark::State& state) {
  runPolicy(state, {FailurePolicy::Action::Report, 0});
}
void BM_PolicyRetry2(benchmark::State& state) {
  runPolicy(state, {FailurePolicy::Action::Retry, 2});
}
void BM_PolicyTryNext(benchmark::State& state) {
  runPolicy(state, {FailurePolicy::Action::TryNext, 0});
}
void BM_PolicyDynamicReselect(benchmark::State& state) {
  runPolicy(state, {FailurePolicy::Action::DynamicReselect, 0});
}

// Arg = primary fails every Nth connect (2 = half of all connects).
BENCHMARK(BM_PolicyReport)->Arg(2)->Arg(4)->Arg(16);
BENCHMARK(BM_PolicyRetry2)->Arg(2)->Arg(4)->Arg(16);
BENCHMARK(BM_PolicyTryNext)->Arg(2)->Arg(4)->Arg(16);
BENCHMARK(BM_PolicyDynamicReselect)->Arg(2)->Arg(4)->Arg(16);

}  // namespace
