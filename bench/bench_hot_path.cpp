// E14 -- hot read path: sharded zero-copy cache, single-flight
// coalescing, and the query-plan cache.
//
// Three arms:
//
//  1. Multithreaded cache-hit throughput. The new path (key-sharded
//     CacheController, hits served as SharedResultSet cursors over
//     shared row storage) against a reproduction of the seed behaviour
//     (one global lock, every hit deep-copies the rows). The
//     acceptance bar is >= 5x items/s at 8 threads.
//
//  2. Cold-key stampede. N clients hit one uncached key at once;
//     single-flight coalescing must keep source contacts at one lease
//     regardless of N (counter: source_contacts).
//
//  3. Plan-cache parse elimination. parseQuery with and without the
//     gateway PlanCache; the `parses` counter shows the parser runs
//     once per SQL text instead of once per poll.
#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/cache_controller.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/sql/parser.hpp"

namespace {

using namespace gridrm;

constexpr int kKeys = 64;
constexpr int kRowsPerEntry = 64;

std::unique_ptr<dbc::VectorResultSet> siteRows(int n) {
  dbc::ResultSetBuilder b;
  b.addColumn("HostName", util::ValueType::String);
  b.addColumn("ClusterName", util::ValueType::String);
  b.addColumn("Load1", util::ValueType::Real);
  b.addColumn("Load5", util::ValueType::Real);
  b.addColumn("CPUCount", util::ValueType::Int);
  b.addColumn("Timestamp", util::ValueType::Int);
  for (int i = 0; i < n; ++i) {
    b.addRow({util::Value("siteA-node" + std::to_string(i)),
              util::Value("siteA"), util::Value(0.25 * i),
              util::Value(0.2 * i), util::Value(std::int64_t{8}),
              util::Value(std::int64_t{1000} + i)});
  }
  return b.build();
}

std::string hitKey(int i) {
  return core::CacheController::key(
      "jdbc:snmp://siteA-node" + std::to_string(i) + ":161/x",
      "SELECT HostName, Load1 FROM Processor");
}

/// Cache shared by all benchmark threads of one run.
struct HitFixture {
  util::SimClock clock;
  core::CacheController cache;

  explicit HitFixture(std::size_t shards)
      : clock(0), cache(clock, 3600 * util::kSecond, 4096, shards) {
    for (int i = 0; i < kKeys; ++i) cache.insert(hitKey(i), *siteRows(kRowsPerEntry));
  }
};

std::unique_ptr<HitFixture> g_hit;
std::mutex g_seedCacheMu;  // the seed's single cache-wide lock

// Arm 1a: sharded + zero copy (the shipped read path). Each hit is one
// shard lock plus a cursor allocation; the 64 rows are never copied.
void BM_CacheHitShardedZeroCopy(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_hit = std::make_unique<HitFixture>(
        static_cast<std::size_t>(state.range(0)));
  }
  int i = 0;
  for (auto _ : state) {
    auto hit = g_hit->cache.lookup(hitKey((state.thread_index() * 17 + i++) % kKeys));
    benchmark::DoNotOptimize(hit->rowCount());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["shards"] = static_cast<double>(g_hit->cache.shardCount());
  }
}

// Arm 1b: the seed behaviour, reproduced -- one process-wide mutex
// around the cache and a full deep copy of the rows on every hit
// (lookup() used to rebuild a VectorResultSet per caller).
void BM_CacheHitUnshardedDeepCopy(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_hit = std::make_unique<HitFixture>(/*shards=*/1);
  }
  int i = 0;
  for (auto _ : state) {
    const std::string key = hitKey((state.thread_index() * 17 + i++) % kKeys);
    std::scoped_lock lock(g_seedCacheMu);
    auto shared = g_hit->cache.lookupShared(key);
    dbc::VectorResultSet copy(shared->metaData(), shared->rows());
    benchmark::DoNotOptimize(copy.rowCount());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CacheHitShardedZeroCopy)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_CacheHitUnshardedDeepCopy)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Arm 2: stampede of N clients on one cold key. source_contacts is the
// number of driver leases taken: single-flight keeps it at 1.
void BM_ColdKeyStampede(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double sourceContacts = 0;
  double coalescedOrCached = 0;
  for (auto _ : state) {
    state.PauseTiming();
    util::SimClock clock;
    net::Network network(clock, 5);
    agents::SiteOptions siteOptions;
    siteOptions.hostCount = 1;
    agents::SiteSimulation site(network, clock, siteOptions);
    clock.advance(60 * util::kSecond);
    core::GatewayOptions gatewayOptions;
    gatewayOptions.host = "gw.siteA";
    gatewayOptions.cacheTtl = 30 * util::kSecond;
    core::Gateway gateway(network, clock, gatewayOptions);
    std::vector<std::string> sessions;
    for (int c = 0; c < clients; ++c) {
      sessions.push_back(gateway.openSession(
          core::Principal::monitor("client" + std::to_string(c))));
    }
    const std::string url = site.headUrl("snmp");
    state.ResumeTiming();

    std::vector<std::thread> stampede;
    for (int c = 0; c < clients; ++c) {
      stampede.emplace_back([&, c] {
        auto result = gateway.submitQuery(
            sessions[c], {url}, "SELECT HostName, Load1 FROM Processor");
        benchmark::DoNotOptimize(result.rows);
      });
    }
    for (auto& t : stampede) t.join();

    state.PauseTiming();
    sourceContacts = static_cast<double>(
        gateway.connectionManager().stats().acquisitions);
    coalescedOrCached = static_cast<double>(
        gateway.requestManager().stats().coalescedQueries +
        gateway.cache().stats().hits);
    state.ResumeTiming();
  }
  state.counters["source_contacts"] = sourceContacts;
  state.counters["coalesced_or_cached"] = coalescedOrCached;
}

BENCHMARK(BM_ColdKeyStampede)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Arm 3: the per-poll SQL parse. Every driver executeQuery goes
// through parseQuery(); with the PlanCache wired in, the text is
// lexed, parsed and GLUE-bound exactly once.
void BM_ParseQueryPerPoll(benchmark::State& state) {
  const bool usePlanCache = state.range(0) != 0;
  glue::SchemaManager schemas;
  drivers::PlanCache plans;
  drivers::DriverContext ctx;
  ctx.schemaManager = &schemas;
  if (usePlanCache) ctx.planCache = &plans;
  const std::string sql =
      "SELECT HostName, Load1, Load5 FROM Processor "
      "WHERE Load1 > 0.5 AND ClusterName LIKE 'siteA%' "
      "ORDER BY Load1 DESC LIMIT 10";
  const std::uint64_t before = sql::parseSelectCount();
  for (auto _ : state) {
    auto plan = drivers::parseQuery(sql, ctx);
    benchmark::DoNotOptimize(plan.get());
  }
  state.counters["parses"] =
      static_cast<double>(sql::parseSelectCount() - before);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ParseQueryPerPoll)->Arg(0)->Arg(1);

}  // namespace
