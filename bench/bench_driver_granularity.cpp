// E3 -- Fine- vs coarse-grained data sources (paper section 3.3).
//
// Claim: "In some cases, for example SNMP and Net Logger, fine grained
// native requests for data are possible, with generally little or no
// parsing required ... For other data sources, for example Ganglia and
// NWS, responses are typically coarse grained. A greater overhead is
// required to parse values from the response, which is typically XML or
// plain text. Therefore, on a driver-by-driver basis, implementations
// should address these issues by using caching policies within the
// plug-in."
//
// Measured: wall time per single-attribute query through each driver
// (protocol encode/decode + parse + GLUE translation; the simulated
// network adds no real time), bytes pulled from the agent per query,
// and the effect of the in-plug-in response cache as the Ganglia
// cluster grows. Expected shape: ganglia cost and bytes grow with
// cluster size while snmp stays flat; the plug-in cache flattens
// ganglia's per-query cost back down.
#include <benchmark/benchmark.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/dbc/driver_registry.hpp"
#include "gridrm/drivers/defaults.hpp"

namespace {

using namespace gridrm;

struct Bench {
  explicit Bench(std::size_t hosts) : network(clock, 11) {
    agents::SiteOptions options;
    options.hostCount = hosts;
    site = std::make_unique<agents::SiteSimulation>(network, clock, options);
    clock.advance(120 * util::kSecond);
    ctx.network = &network;
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    drivers::registerDefaultDrivers(registry, ctx);
  }

  std::unique_ptr<dbc::Connection> connect(const std::string& urlText) {
    auto url = *util::Url::parse(urlText);
    return registry.locate(url)->connect(url, {});
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<agents::SiteSimulation> site;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
};

/// One single-attribute query per iteration; cache disabled via cachems=0
/// so every iteration exercises the full fetch+parse path.
void runDriver(benchmark::State& state, const char* subprotocol,
               const char* sql, bool disableCache) {
  Bench bench(static_cast<std::size_t>(state.range(0)));
  std::string url = bench.site->headUrl(subprotocol);
  if (disableCache) url += "?cachems=0";
  auto conn = bench.connect(url);
  auto stmt = conn->createStatement();
  const net::Address agent = net::Address::parse(
      util::Url::parse(url)->endpoint(0));

  const auto before = bench.network.stats(agent);
  std::uint64_t queries = 0;
  for (auto _ : state) {
    // Advance sim time so TTL caches (when enabled) behave realistically
    // for a 1 query/second client.
    bench.clock.advance(util::kSecond);
    auto rs = stmt->executeQuery(sql);
    benchmark::DoNotOptimize(rs);
    ++queries;
  }
  const auto after = bench.network.stats(agent);
  state.counters["bytes_per_query"] =
      static_cast<double>(after.bytesOut - before.bytesOut) /
      static_cast<double>(queries);
  state.counters["agent_requests_per_query"] =
      static_cast<double>(after.requestsServed - before.requestsServed) /
      static_cast<double>(queries);
}

void BM_Snmp(benchmark::State& state) {
  runDriver(state, "snmp", "SELECT Load1 FROM Processor", true);
}
void BM_NetLogger(benchmark::State& state) {
  runDriver(state, "netlogger", "SELECT Load1 FROM Processor", true);
}
void BM_Scms(benchmark::State& state) {
  runDriver(state, "scms", "SELECT Load1 FROM Processor", true);
}
void BM_GangliaNoCache(benchmark::State& state) {
  runDriver(state, "ganglia", "SELECT Load1 FROM Processor", true);
}
void BM_GangliaCached(benchmark::State& state) {
  runDriver(state, "ganglia", "SELECT Load1 FROM Processor", false);
}
void BM_NwsNoCache(benchmark::State& state) {
  runDriver(state, "nws", "SELECT Forecast FROM NetworkForecast", true);
}
void BM_NwsCached(benchmark::State& state) {
  runDriver(state, "nws", "SELECT Forecast FROM NetworkForecast", false);
}
void BM_SqlSource(benchmark::State& state) {
  runDriver(state, "sql", "SELECT Load1 FROM Processor", true);
}
void BM_MdsNoCache(benchmark::State& state) {
  runDriver(state, "mds", "SELECT Load1 FROM Processor", true);
}
void BM_MdsCached(benchmark::State& state) {
  runDriver(state, "mds", "SELECT Load1 FROM Processor", false);
}

// Fine-grained drivers: flat in cluster size (they ask one host).
BENCHMARK(BM_Snmp)->Arg(1)->Arg(16)->Arg(64);
BENCHMARK(BM_NetLogger)->Arg(1)->Arg(16)->Arg(64);
// Cluster-wide drivers: response (and parse cost) grows with the site.
BENCHMARK(BM_Scms)->Arg(1)->Arg(16)->Arg(64);
BENCHMARK(BM_GangliaNoCache)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_GangliaCached)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_NwsNoCache)->Arg(1);
BENCHMARK(BM_NwsCached)->Arg(1);
BENCHMARK(BM_SqlSource)->Arg(1)->Arg(16)->Arg(64);
BENCHMARK(BM_MdsNoCache)->Arg(1)->Arg(16)->Arg(64);
BENCHMARK(BM_MdsCached)->Arg(1)->Arg(16)->Arg(64);

}  // namespace
