#!/usr/bin/env bash
# Run every benchmark binary and leave machine-readable results next to
# this script as BENCH_<tag>.json (Google Benchmark's JSON format).
#
# Usage: bench/run_all.sh [build-dir] [output-dir]
#   build-dir   defaults to ./build (binaries in <build-dir>/bench)
#   output-dir  defaults to the current directory
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found; build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"
status=0
for bin in "${bench_dir}"/bench_*; do
  [[ -x "${bin}" && -f "${bin}" ]] || continue
  tag="$(basename "${bin}")"
  tag="${tag#bench_}"
  out="${out_dir}/BENCH_${tag}.json"
  echo "== ${tag} -> ${out}"
  if ! "${bin}" --benchmark_out="${out}" --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"; then
    echo "warn: ${tag} failed" >&2
    status=1
  fi
done
exit "${status}"
