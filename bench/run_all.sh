#!/usr/bin/env bash
# Run every benchmark binary and leave machine-readable results as
# BENCH_<tag>.json (Google Benchmark's JSON format).
#
# Usage: bench/run_all.sh [build-dir] [output-dir]
#   build-dir   defaults to ./build (binaries in <build-dir>/bench)
#   output-dir  defaults to the repository root (next to EXPERIMENTS.md,
#               which quotes these results) -- the convention CI's
#               bench-smoke job and the E-series tables rely on
#
# Environment:
#   BENCH_REPS      --benchmark_repetitions (default 1)
#   BENCH_MIN_TIME  --benchmark_min_time, e.g. 0.01 for a smoke run
#                   (plain seconds — portable across benchmark library
#                   versions; unset = Google Benchmark's default)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
out_dir="${2:-${repo_root}}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found; build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

extra_args=()
if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
  extra_args+=("--benchmark_min_time=${BENCH_MIN_TIME}")
fi

mkdir -p "${out_dir}"
status=0
# The source tree is the ground truth for which benchmarks must exist:
# a bench_*.cpp without a built binary means a stale or partial build,
# and silently skipping it would let EXPERIMENTS.md quote missing data.
for src in "${repo_root}"/bench/bench_*.cpp; do
  name="$(basename "${src}" .cpp)"
  if [[ ! -x "${bench_dir}/${name}" ]]; then
    echo "error: ${bench_dir}/${name} is missing (source ${src} exists);" >&2
    echo "       rebuild: cmake --build ${build_dir} -j" >&2
    status=1
  fi
done
[[ "${status}" -eq 0 ]] || exit "${status}"
for bin in "${bench_dir}"/bench_*; do
  [[ -x "${bin}" && -f "${bin}" ]] || continue
  tag="$(basename "${bin}")"
  tag="${tag#bench_}"
  out="${out_dir}/BENCH_${tag}.json"
  echo "== ${tag} -> ${out}"
  if ! "${bin}" --benchmark_out="${out}" --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}" \
      ${extra_args[@]+"${extra_args[@]}"}; then
    echo "warn: ${tag} failed" >&2
    status=1
  fi
done
exit "${status}"
