// E13 -- Slow-source isolation (tail-tolerant fan-out).
//
// Claim: one hung or slow agent must not drag the latency of a
// multi-site query down to the straggler's pace. With a per-source
// deadline the fan-out returns whatever completed in time, and the
// per-source circuit breaker stops the gateway from contacting a
// degraded agent at all once it has missed its deadline repeatedly.
//
// Scenario: 8 sources, 7 fast (~0 latency) and 1 straggler that takes
// 20 real ms per query. Baseline runs with no deadline and no breaker;
// the isolated run uses a 5 ms deadline and a breaker that opens after
// 3 consecutive misses. Expected shape: baseline p50 ~= straggler
// latency (20 ms); isolated p99 <= deadline and p50 far below it once
// the breaker opens, with the straggler contacted only a handful of
// times across the whole run.
//
// Uses the real SystemClock (deadlines are enforced against wall
// time), so iteration counts are capped to keep the run short.
//
// Counters: p50_ms, p99_ms, straggler_contacts_per_query,
// deadline_misses, breaker_skips, rows_per_query.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "gridrm/core/request_manager.hpp"
#include "gridrm/drivers/mock_driver.hpp"

namespace {

using namespace gridrm;
using drivers::MockBehaviour;
using drivers::MockDriver;

constexpr int kSources = 8;
constexpr util::Duration kStragglerLatency = 20 * util::kMillisecond;
constexpr util::Duration kDeadline = 5 * util::kMillisecond;

struct Bench {
  explicit Bench(core::RequestManagerTuning tuning)
      : driverManager(registry),
        pool(driverManager),
        cache(clock, 60 * util::kSecond),
        fgsl(true),
        rm(pool, cache, fgsl, /*historyDb=*/nullptr, clock, /*workers=*/16,
           tuning) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;

    MockBehaviour fast;
    fast.name = "fast";
    fast.accepts = {"fast"};
    fastDriver = std::make_shared<MockDriver>(ctx, fast);
    registry.registerDriver(fastDriver);

    MockBehaviour slow;
    slow.name = "slow";
    slow.accepts = {"slow"};
    slow.queryLatencyUs = kStragglerLatency;
    slowDriver = std::make_shared<MockDriver>(ctx, slow);
    registry.registerDriver(slowDriver);

    for (int i = 0; i < kSources - 1; ++i)
      urls.push_back("jdbc:fast://h" + std::to_string(i) + "/x");
    urls.push_back("jdbc:slow://h" + std::to_string(kSources - 1) + "/x");
  }

  util::SystemClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  core::GridRmDriverManager driverManager;
  core::ConnectionManager pool;
  core::CacheController cache;
  core::FineSecurityLayer fgsl;
  core::RequestManager rm;
  std::shared_ptr<MockDriver> fastDriver;
  std::shared_ptr<MockDriver> slowDriver;
  std::vector<std::string> urls;
};

void runFanOut(benchmark::State& state, core::RequestManagerTuning tuning,
               util::Duration deadline) {
  Bench bench(tuning);
  core::QueryOptions options;
  options.useCache = false;  // measure live fan-out, not the cache
  options.deadline = deadline;

  std::vector<double> latenciesMs;
  std::uint64_t rows = 0;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = bench.rm.query(core::Principal::monitor(), bench.urls,
                                 "SELECT Load1 FROM Processor", options);
    benchmark::DoNotOptimize(result);
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    latenciesMs.push_back(elapsed.count());
    rows += result.rows ? result.rows->rowCount() : 0;
    ++queries;
  }

  std::sort(latenciesMs.begin(), latenciesMs.end());
  auto percentile = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latenciesMs.size() - 1));
    return latenciesMs[idx];
  };
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["straggler_contacts_per_query"] =
      static_cast<double>(bench.slowDriver->queryCalls()) /
      static_cast<double>(queries);
  state.counters["deadline_misses"] =
      static_cast<double>(bench.rm.stats().deadlineMisses);
  state.counters["breaker_skips"] =
      static_cast<double>(bench.rm.stats().breakerSkips);
  state.counters["rows_per_query"] =
      static_cast<double>(rows) / static_cast<double>(queries);
}

// Baseline: every query waits for the straggler.
void BM_FanOutBaseline(benchmark::State& state) {
  runFanOut(state, {}, /*deadline=*/0);
}

// Deadline alone: partial results within the deadline, but the
// straggler is still contacted (and abandoned) on every query.
void BM_FanOutDeadline(benchmark::State& state) {
  runFanOut(state, {}, kDeadline);
}

// Deadline + breaker: after 3 consecutive misses the breaker opens and
// the straggler is skipped without being contacted.
void BM_FanOutDeadlineBreaker(benchmark::State& state) {
  core::RequestManagerTuning tuning;
  tuning.breaker.failureThreshold = 3;
  tuning.breaker.cooldown = 3600 * util::kSecond;  // stay open all run
  runFanOut(state, tuning, kDeadline);
}

// Real-time benchmark (the straggler sleeps 20 wall ms); fix the
// iteration count so the run stays short and the breaker trajectory
// (3 misses, then skips) is deterministic.
BENCHMARK(BM_FanOutBaseline)->Iterations(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FanOutDeadline)->Iterations(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FanOutDeadlineBreaker)
    ->Iterations(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
