// Replicated, sharded directory service (PR 10): routing through the
// shard map, replica failover, NOTMINE redirects, anti-entropy repair
// (digest -> summary -> delta), tombstone replication, deterministic
// lease sweeps, and the RPC-failure-vs-negative distinction.
#include "gridrm/global/directory.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gridrm::global {
namespace {

class DirectoryServiceTest : public ::testing::Test {
 protected:
  static std::vector<net::Address> nodes() {
    return {{"gma0", kDirectoryPort}, {"gma1", kDirectoryPort},
            {"gma2", kDirectoryPort}};
  }

  DirectoryServiceTest()
      : clock_(0),
        network_(clock_, 17),
        map_(ShardMap::build(nodes(), /*shards=*/3, /*replication=*/2)) {
    for (const auto& node : nodes()) {
      DirectoryOptions options;
      options.map = map_;
      replicas_.push_back(
          std::make_unique<GmaDirectory>(network_, node, options));
    }
    client_ = std::make_unique<DirectoryClient>(network_, net::Address{"me", 0},
                                                nodes());
  }

  GmaDirectory& replicaAt(const net::Address& address) {
    for (auto& replica : replicas_) {
      if (replica && replica->address() == address) return *replica;
    }
    ADD_FAILURE() << "no replica at " << address.toString();
    return *replicas_.front();
  }

  /// Run anti-entropy on every live replica, `rounds` times. Returns
  /// total entries applied.
  std::size_t syncAll(int rounds = 1) {
    std::size_t applied = 0;
    for (int r = 0; r < rounds; ++r) {
      for (auto& replica : replicas_) {
        if (replica) applied += replica->syncTick();
      }
    }
    return applied;
  }

  /// Every shard's holders export byte-identical state.
  void expectConverged() {
    for (std::size_t shard = 0; shard < map_.shardCount(); ++shard) {
      const auto holders = map_.replicasOf(shard);
      ASSERT_GE(holders.size(), 2u);
      const std::string reference = replicaAt(holders[0]).exportShard(shard);
      for (std::size_t i = 1; i < holders.size(); ++i) {
        EXPECT_EQ(replicaAt(holders[i]).exportShard(shard), reference)
            << "shard " << shard << " diverged between "
            << holders[0].toString() << " and " << holders[i].toString();
      }
    }
  }

  util::SimClock clock_;
  net::Network network_;
  ShardMap map_;
  std::vector<std::unique_ptr<GmaDirectory>> replicas_;
  std::unique_ptr<DirectoryClient> client_;
};

TEST_F(DirectoryServiceTest, ShardedRegisterAndLookupAdoptsMap) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_->registerProducer("gw-b", {"b", 1}, {"siteB-*"});
  client_->registerProducer("gw-c", {"c", 1}, {"siteC-*"});

  // The first service-mode answer carried the map.
  EXPECT_TRUE(client_->shardMap().service());
  EXPECT_EQ(client_->shardMap().version(), map_.version());
  EXPECT_GE(client_->clientStats().mapRefreshes, 1u);

  EXPECT_EQ(client_->lookup("siteA-n0")->name, "gw-a");
  EXPECT_EQ(client_->lookup("siteB-n0")->name, "gw-b");
  EXPECT_EQ(client_->lookup("siteC-n0")->name, "gw-c");
  EXPECT_FALSE(client_->lookup("elsewhere").has_value());  // proven negative
  EXPECT_EQ(client_->list().size(), 3u);

  // Writes landed on owning shards, not everywhere: the three names
  // are spread across replicas by the consistent hash.
  std::size_t total = 0;
  for (auto& replica : replicas_) total += replica->producers().size();
  EXPECT_EQ(total, 3u);
}

TEST_F(DirectoryServiceTest, LookupFailsOverToReadReplica) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  syncAll();  // the read replica needs the entry before the primary dies

  const std::size_t shard = map_.shardOf("p:gw-a");
  const auto holders = map_.replicasOf(shard);
  network_.setHostDown(holders[0].host, true);

  auto hit = client_->lookup("siteA-n7");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "gw-a");
  EXPECT_GE(client_->clientStats().failovers, 1u);

  network_.setHostDown(holders[0].host, false);
}

TEST_F(DirectoryServiceTest, AllHoldersDownIsUnavailableNeverNegative) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  const std::size_t shard = map_.shardOf("p:gw-a");
  for (const auto& holder : map_.replicasOf(shard)) {
    network_.setHostDown(holder.host, true);
  }

  // Single lookup: the answer is unknowable, so it throws instead of
  // returning nullopt.
  EXPECT_THROW((void)client_->lookup("siteA-n0"), net::NetError);

  // Batch lookup: the position is Unavailable, never NotFound.
  auto answers = client_->lookupMany({"siteA-n0"});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].status, LookupStatus::Unavailable);
  EXPECT_GE(client_->clientStats().unavailableShards, 2u);

  for (const auto& holder : map_.replicasOf(shard)) {
    network_.setHostDown(holder.host, false);
  }
  // Healed: the same queries answer definitively again.
  EXPECT_EQ(client_->lookup("siteA-n0")->name, "gw-a");
  EXPECT_EQ(client_->lookupMany({"siteA-n0"})[0].status, LookupStatus::Found);
}

TEST_F(DirectoryServiceTest, HitOnReachableShardSurvivesOtherShardOutage) {
  // Find two producer names hashing onto DIFFERENT shards. With 3
  // shards over 3 nodes at replication 2, downing one shard's two
  // holders always leaves any other shard a live holder.
  std::string nameA = "gw-a";
  std::string nameB;
  for (char c = 'b'; c <= 'z' && nameB.empty(); ++c) {
    const std::string candidate = std::string("gw-") + c;
    if (map_.shardOf("p:" + candidate) != map_.shardOf("p:" + nameA)) {
      nameB = candidate;
    }
  }
  ASSERT_FALSE(nameB.empty()) << "all candidate names on one shard";
  client_->registerProducer(nameA, {"a", 1}, {"siteA-*"});
  client_->registerProducer(nameB, {"b", 1}, {"siteB-*"});
  syncAll();

  const std::size_t shardB = map_.shardOf("p:" + nameB);
  for (const auto& holder : map_.replicasOf(shardB)) {
    network_.setHostDown(holder.host, true);
  }
  std::set<std::string> down;
  for (const auto& holder : map_.replicasOf(shardB)) down.insert(holder.host);
  bool shardAReachable = false;
  for (const auto& holder : map_.replicasOf(map_.shardOf("p:" + nameA))) {
    if (!down.count(holder.host)) shardAReachable = true;
  }
  ASSERT_TRUE(shardAReachable);

  // A definitive hit on the reachable shard answers even though another
  // shard is dark; the batch marks only unprovable positions.
  EXPECT_EQ(client_->lookup("siteA-n0")->name, nameA);
  auto answers = client_->lookupMany({"siteA-n0", "siteB-n0"});
  EXPECT_EQ(answers[0].status, LookupStatus::Found);
  EXPECT_EQ(answers[1].status, LookupStatus::Unavailable);
}

TEST_F(DirectoryServiceTest, NonHolderAnswersNotMine) {
  const std::size_t shard = map_.shardOf("p:gw-a");
  net::Address outsider;
  bool found = false;
  for (const auto& node : nodes()) {
    if (!map_.holds(shard, node)) {
      outsider = node;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "replication covers all nodes";
  const auto response = network_.request(
      {"me", 0}, outsider, "REG PRODUCER gw-a a:1 0 0 0\nsiteA-*");
  EXPECT_EQ(response.rfind("NOTMINE", 0), 0u) << response;
  EXPECT_GE(replicaAt(outsider).stats().notMineRedirects, 1u);
  // The client, armed with the map, never hits that path.
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  EXPECT_EQ(client_->clientStats().redirects, 0u);
}

TEST_F(DirectoryServiceTest, AntiEntropyConvergesAllShards) {
  for (int i = 0; i < 8; ++i) {
    const std::string name = "gw-" + std::to_string(i);
    client_->registerProducer(name, {"h" + std::to_string(i), 1},
                              {"site" + std::to_string(i) + "-*"}, /*epoch=*/1,
                              /*leaseTtl=*/300 * util::kSecond);
  }
  client_->registerConsumer("sink-a", {"sink", 162}, "snmp.trap");
  client_->registerConsumer("sink-b", {"sink", 163}, "*");

  // Writes land only on the contacted holder; one full round of
  // anti-entropy replicates every entry to its co-holder.
  const std::size_t applied = syncAll(1);
  EXPECT_GT(applied, 0u);
  expectConverged();

  // Converged replicas exchange digests and stop shipping entries.
  EXPECT_EQ(syncAll(1), 0u);
  std::uint64_t rounds = 0;
  for (auto& replica : replicas_) rounds += replica->stats().syncRounds;
  EXPECT_GT(rounds, 0u);
}

TEST_F(DirectoryServiceTest, WipedReplicaHealsFromPeers) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_->registerProducer("gw-b", {"b", 1}, {"siteB-*"});
  client_->registerConsumer("sink", {"s", 162}, "*");
  syncAll(1);
  expectConverged();

  // Replica 1 restarts with an empty store.
  replicas_[1]->wipe();
  // Bounded repair: one round where every replica syncs (the wiped one
  // pulls what its peers have AND peers push back what it is missing).
  syncAll(1);
  expectConverged();

  // The healed replica serves its shards again.
  EXPECT_EQ(client_->lookup("siteA-n0")->name, "gw-a");
  EXPECT_EQ(client_->lookup("siteB-n0")->name, "gw-b");
  EXPECT_EQ(client_->consumersFor("snmp.trap.x").size(), 1u);
}

TEST_F(DirectoryServiceTest, TombstonesReplicateAndBlockResurrection) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  syncAll(1);
  client_->unregisterProducer("gw-a");

  // The contacted holder tombstoned the entry; its peer still has the
  // live version until anti-entropy ships the tombstone.
  syncAll(1);
  expectConverged();
  for (auto& replica : replicas_) {
    EXPECT_TRUE(replica->producers().empty());
  }
  EXPECT_FALSE(client_->lookup("siteA-n0").has_value());

  // Further rounds must not resurrect the entry from any stale copy.
  EXPECT_EQ(syncAll(2), 0u);
  EXPECT_FALSE(client_->lookup("siteA-n0").has_value());
}

TEST_F(DirectoryServiceTest, IndependentLeaseSweepsConvergeByteIdentically) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"}, /*epoch=*/1,
                            /*leaseTtl=*/4 * util::kSecond);
  syncAll(1);
  expectConverged();

  // Both holders sweep the expired lease independently — no sync in
  // between — and still converge byte-identically, because the
  // tombstone timestamp is the deterministic lease expiry, not the
  // sweep time.
  clock_.advance(10 * util::kSecond);
  for (auto& replica : replicas_) replica->sweepTick();
  expectConverged();
  for (auto& replica : replicas_) {
    EXPECT_TRUE(replica->producers().empty());
  }
  const std::size_t shard = map_.shardOf("p:gw-a");
  EXPECT_NE(replicaAt(map_.replicasOf(shard)[0]).exportShard(shard), "");
  EXPECT_EQ(syncAll(1), 0u);  // nothing left to repair
}

TEST_F(DirectoryServiceTest, StaleEpochRefusedByOwningShard) {
  client_->registerProducer("gw-a", {"a", 1}, {"new-*"}, /*epoch=*/5);
  client_->registerProducer("gw-a", {"a", 1}, {"old-*"}, /*epoch=*/3);
  // The epoch-3 restart lost the race: patterns unchanged.
  EXPECT_TRUE(client_->lookup("new-x").has_value());
  EXPECT_FALSE(client_->lookup("old-x").has_value());
  const std::size_t shard = map_.shardOf("p:gw-a");
  EXPECT_EQ(replicaAt(map_.replicasOf(shard)[0]).stats().staleRegistrations,
            1u);
}

TEST_F(DirectoryServiceTest, ReplicaStatsProbesEveryNode) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  auto health = client_->replicaStats();
  ASSERT_EQ(health.size(), 3u);
  std::uint64_t registrations = 0;
  for (const auto& [address, stats] : health) {
    ASSERT_TRUE(stats.has_value()) << address.toString();
    registrations += stats->registrations;
  }
  EXPECT_EQ(registrations, 1u);

  network_.setHostDown("gma2", true);
  health = client_->replicaStats();
  ASSERT_EQ(health.size(), 3u);
  EXPECT_TRUE(health[0].second.has_value());
  EXPECT_TRUE(health[1].second.has_value());
  EXPECT_FALSE(health[2].second.has_value());  // down, not an exception
}

TEST_F(DirectoryServiceTest, SmallestNameWinsAcrossShards) {
  // Two producers in (likely) different shards both match the host:
  // the merged answer must be the name-order first match, exactly the
  // standalone directory's semantics.
  client_->registerProducer("gw-b", {"b", 1}, {"dup-*"});
  client_->registerProducer("gw-a", {"a", 1}, {"dup-*"});
  EXPECT_EQ(client_->lookup("dup-x")->name, "gw-a");
  auto answers = client_->lookupMany({"dup-x"});
  ASSERT_EQ(answers[0].status, LookupStatus::Found);
  EXPECT_EQ(answers[0].entry->name, "gw-a");
}

TEST_F(DirectoryServiceTest, FreshClientFirstLookupSweepsTheAdoptedMap) {
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_->registerConsumer("mon", {"m", 9}, "alert");
  syncAll(1);

  // A brand-new client knows only one seed and a standalone-shaped
  // map; the seed's answer covers the seed's own shards and carries
  // the real map. The very FIRST read must re-sweep under the adopted
  // map instead of returning the partial view as a proven negative —
  // from every seed, including ones not holding the entry's shard.
  for (const auto& seed : nodes()) {
    DirectoryClient fresh(network_, {"fresh", 2}, {seed});
    auto hit = fresh.lookup("siteA-n0");
    ASSERT_TRUE(hit.has_value()) << "false negative bootstrapping from "
                                 << seed.toString();
    EXPECT_EQ(hit->name, "gw-a");
    EXPECT_TRUE(fresh.shardMap().service());
  }
  DirectoryClient batch(network_, {"fresh", 3}, {nodes()[0]});
  auto answers = batch.lookupMany({"siteA-n0", "nowhere-n0"});
  EXPECT_EQ(answers[0].status, LookupStatus::Found);
  EXPECT_EQ(answers[1].status, LookupStatus::NotFound);
  DirectoryClient lister(network_, {"fresh", 4}, {nodes()[1]});
  EXPECT_EQ(lister.list().size(), 1u);
  DirectoryClient evented(network_, {"fresh", 5}, {nodes()[2]});
  EXPECT_EQ(evented.consumersFor("alert.cpu").size(), 1u);
}

TEST_F(DirectoryServiceTest, WriteSurvivesPrimaryOutageViaReadReplica) {
  const std::size_t shard = map_.shardOf("p:gw-a");
  const auto holders = map_.replicasOf(shard);
  network_.setHostDown(holders[0].host, true);

  // The write fails over to the read replica (any holder accepts
  // writes; versioned merge reconciles), and is not lost when the
  // primary returns.
  client_->registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  EXPECT_GE(client_->clientStats().failovers, 1u);
  EXPECT_EQ(client_->lookup("siteA-n0")->name, "gw-a");

  network_.setHostDown(holders[0].host, false);
  syncAll(1);
  expectConverged();
  EXPECT_EQ(replicaAt(holders[0]).producers().size(), 1u);
}

}  // namespace
}  // namespace gridrm::global
