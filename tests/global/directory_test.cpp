#include "gridrm/global/directory.hpp"

#include <gtest/gtest.h>

namespace gridrm::global {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest()
      : clock_(0),
        network_(clock_),
        directory_(network_, {"gma", kDirectoryPort}),
        client_(network_, {"me", 0}, {"gma", kDirectoryPort}) {}

  util::SimClock clock_;
  net::Network network_;
  GmaDirectory directory_;
  DirectoryClient client_;
};

TEST_F(DirectoryTest, RegisterAndLookupProducer) {
  client_.registerProducer("gw-a", {"gw-a.host", 8710},
                           {"siteA-*", "special.host"});
  auto hit = client_.lookup("siteA-node03");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "gw-a");
  EXPECT_EQ(hit->address.toString(), "gw-a.host:8710");
  EXPECT_TRUE(client_.lookup("special.host").has_value());
  EXPECT_FALSE(client_.lookup("siteB-node00").has_value());
}

TEST_F(DirectoryTest, MultipleProducersDisjointOwnership) {
  client_.registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_.registerProducer("gw-b", {"b", 1}, {"siteB-*"});
  EXPECT_EQ(client_.lookup("siteA-n0")->name, "gw-a");
  EXPECT_EQ(client_.lookup("siteB-n0")->name, "gw-b");
  EXPECT_EQ(client_.list().size(), 2u);
}

TEST_F(DirectoryTest, ReregistrationReplacesPatterns) {
  client_.registerProducer("gw-a", {"a", 1}, {"old-*"});
  client_.registerProducer("gw-a", {"a", 1}, {"new-*"});
  EXPECT_FALSE(client_.lookup("old-x").has_value());
  EXPECT_TRUE(client_.lookup("new-x").has_value());
  EXPECT_EQ(client_.list().size(), 1u);
}

TEST_F(DirectoryTest, UnregisterProducer) {
  client_.registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_.unregisterProducer("gw-a");
  EXPECT_FALSE(client_.lookup("siteA-x").has_value());
  EXPECT_TRUE(client_.list().empty());
}

TEST_F(DirectoryTest, ConsumerRegistryFiltersByEventType) {
  client_.registerConsumer("gw-a", {"a", 162}, "snmp.trap");
  client_.registerConsumer("gw-b", {"b", 162}, "*");
  client_.registerConsumer("gw-c", {"c", 162}, "other");

  auto forTrap = client_.consumersFor("snmp.trap.highload");
  ASSERT_EQ(forTrap.size(), 2u);  // gw-a (prefix) + gw-b (wildcard)

  auto forOther = client_.consumersFor("other.kind");
  ASSERT_EQ(forOther.size(), 2u);  // gw-b + gw-c
  client_.unregisterConsumer("gw-b");
  EXPECT_EQ(client_.consumersFor("snmp.trap.x").size(), 1u);
}

TEST_F(DirectoryTest, BadRequestsAnswered) {
  EXPECT_EQ(network_.request({"me", 0}, {"gma", kDirectoryPort}, "JUNK"),
            "ERR bad request");
  EXPECT_EQ(network_.request({"me", 0}, {"gma", kDirectoryPort}, ""),
            "ERR empty request");
}

TEST_F(DirectoryTest, InProcessAccessors) {
  client_.registerProducer("gw-a", {"a", 1}, {"x-*"});
  client_.registerConsumer("gw-a", {"a", 162}, "*");
  EXPECT_EQ(directory_.producers().size(), 1u);
  EXPECT_EQ(directory_.consumers().size(), 1u);
  EXPECT_EQ(directory_.producers()[0].ownedHostPatterns.size(), 1u);
}

}  // namespace
}  // namespace gridrm::global
