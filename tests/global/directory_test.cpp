#include "gridrm/global/directory.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gridrm/sim/event_loop.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::global {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest()
      : clock_(0),
        network_(clock_),
        directory_(network_, {"gma", kDirectoryPort}),
        client_(network_, {"me", 0}, {"gma", kDirectoryPort}) {}

  util::SimClock clock_;
  net::Network network_;
  GmaDirectory directory_;
  DirectoryClient client_;
};

TEST_F(DirectoryTest, RegisterAndLookupProducer) {
  client_.registerProducer("gw-a", {"gw-a.host", 8710},
                           {"siteA-*", "special.host"});
  auto hit = client_.lookup("siteA-node03");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "gw-a");
  EXPECT_EQ(hit->address.toString(), "gw-a.host:8710");
  EXPECT_TRUE(client_.lookup("special.host").has_value());
  EXPECT_FALSE(client_.lookup("siteB-node00").has_value());
}

TEST_F(DirectoryTest, MultipleProducersDisjointOwnership) {
  client_.registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_.registerProducer("gw-b", {"b", 1}, {"siteB-*"});
  EXPECT_EQ(client_.lookup("siteA-n0")->name, "gw-a");
  EXPECT_EQ(client_.lookup("siteB-n0")->name, "gw-b");
  EXPECT_EQ(client_.list().size(), 2u);
}

TEST_F(DirectoryTest, ReregistrationReplacesPatterns) {
  client_.registerProducer("gw-a", {"a", 1}, {"old-*"});
  client_.registerProducer("gw-a", {"a", 1}, {"new-*"});
  EXPECT_FALSE(client_.lookup("old-x").has_value());
  EXPECT_TRUE(client_.lookup("new-x").has_value());
  EXPECT_EQ(client_.list().size(), 1u);
}

TEST_F(DirectoryTest, UnregisterProducer) {
  client_.registerProducer("gw-a", {"a", 1}, {"siteA-*"});
  client_.unregisterProducer("gw-a");
  EXPECT_FALSE(client_.lookup("siteA-x").has_value());
  EXPECT_TRUE(client_.list().empty());
}

TEST_F(DirectoryTest, ConsumerRegistryFiltersByEventType) {
  client_.registerConsumer("gw-a", {"a", 162}, "snmp.trap");
  client_.registerConsumer("gw-b", {"b", 162}, "*");
  client_.registerConsumer("gw-c", {"c", 162}, "other");

  auto forTrap = client_.consumersFor("snmp.trap.highload");
  ASSERT_EQ(forTrap.size(), 2u);  // gw-a (prefix) + gw-b (wildcard)

  auto forOther = client_.consumersFor("other.kind");
  ASSERT_EQ(forOther.size(), 2u);  // gw-b + gw-c
  client_.unregisterConsumer("gw-b");
  EXPECT_EQ(client_.consumersFor("snmp.trap.x").size(), 1u);
}

TEST_F(DirectoryTest, BadRequestsAnswered) {
  EXPECT_EQ(network_.request({"me", 0}, {"gma", kDirectoryPort}, "JUNK"),
            "ERR bad request");
  EXPECT_EQ(network_.request({"me", 0}, {"gma", kDirectoryPort}, ""),
            "ERR empty request");
}

TEST_F(DirectoryTest, InProcessAccessors) {
  client_.registerProducer("gw-a", {"a", 1}, {"x-*"});
  client_.registerConsumer("gw-a", {"a", 162}, "*");
  EXPECT_EQ(directory_.producers().size(), 1u);
  EXPECT_EQ(directory_.consumers().size(), 1u);
  EXPECT_EQ(directory_.producers()[0].ownedHostPatterns.size(), 1u);
}

// S2 regression: a lease renewal in flight while the TTL sweep runs
// must extend the lease in place, never be observed as an eviction
// followed by a fresh registration. The EventLoop pins the exact
// interleaving: lease expires, renewal is SENT, sweep runs, renewal
// ARRIVES — deterministic down to the microsecond.
TEST(DirectoryLeaseRaceTest, RenewalInFlightDuringSweepExtendsInPlace) {
  sim::EventLoop loop;
  net::Network network(loop.clock(), 7);
  network.attachScheduler(&loop);
  network.setDefaultLink({50 * util::kMillisecond, 0, 0.0});
  GmaDirectory directory(network, {"gma", kDirectoryPort});

  const net::Address me{"gw-a.host", 8710};
  const util::Duration ttl = 4 * util::kSecond;  // grace = ttl/4 = 1s
  const std::string regHead =
      "REG PRODUCER gw-a gw-a.host:8710 1 " +
      std::to_string(ttl / util::kMillisecond);

  // t=0: initial leased registration; arrives t=50ms, so the directory
  // grants expiry 4.05s and answers "OK 4050000" at t=100ms.
  util::TimePoint granted = 0;
  network.requestAsync(me, {"gma", kDirectoryPort},
                       regHead + " 0\nsiteA-*", [&](const net::AsyncOutcome& o) {
                         ASSERT_TRUE(o.ok()) << o.message;
                         const auto words = util::splitNonEmpty(o.response, ' ');
                         ASSERT_GE(words.size(), 2u);
                         EXPECT_EQ(words[0], "OK");
                         granted = static_cast<util::TimePoint>(
                             std::stoll(words[1]));
                       });
  loop.runUntil(200 * util::kMillisecond);
  ASSERT_EQ(granted, 50 * util::kMillisecond + ttl);

  // t=4.20s (lease already expired at 4.05s): the gateway sends its
  // renewal, carrying the previously granted expiry. It will arrive at
  // t=4.25s — AFTER the sweep below.
  bool renewed = false;
  loop.schedule(4200 * util::kMillisecond, [&] {
    network.requestAsync(me, {"gma", kDirectoryPort},
                         regHead + " " + std::to_string(granted) + "\nsiteA-*",
                         [&](const net::AsyncOutcome& o) {
                           ASSERT_TRUE(o.ok()) << o.message;
                           EXPECT_EQ(o.response.rfind("OK ", 0), 0u);
                           renewed = true;
                         });
  });
  // t=4.21s: the sweep runs between renewal send and renewal arrival.
  // The grace window (expiry 4.05s + 1s > 4.21s) keeps the entry
  // alive; pre-PR-10 this evicted it and the renewal re-added a fresh
  // entry — the drop-then-re-add race.
  loop.schedule(4210 * util::kMillisecond, [&] { directory.sweepTick(); });
  loop.runUntil(4400 * util::kMillisecond);

  ASSERT_TRUE(renewed);
  const auto stats = directory.stats();
  EXPECT_EQ(stats.leaseEvictions, 0u);
  EXPECT_EQ(stats.renewals, 1u) << "renewal observed as a fresh add";
  const auto producers = directory.producers();
  ASSERT_EQ(producers.size(), 1u);
  EXPECT_EQ(producers[0].version, 2u);  // mutated in place, not re-added
  EXPECT_EQ(producers[0].expiresAt, 4250 * util::kMillisecond + ttl);

  // Counterfactual: with no further renewal, the sweep evicts once the
  // grace window past the renewed expiry passes.
  loop.runUntil(producers[0].expiresAt + ttl / 4 + util::kSecond);
  directory.sweepTick();
  EXPECT_EQ(directory.stats().leaseEvictions, 1u);
  EXPECT_TRUE(directory.producers().empty());
}

// Without the grace window (divisor 0) the old sweep behavior remains
// available: expiry is immediately fatal.
TEST(DirectoryLeaseRaceTest, ZeroGraceDivisorEvictsAtExpiry) {
  sim::EventLoop loop;
  net::Network network(loop.clock(), 7);
  network.attachScheduler(&loop);
  network.setDefaultLink({50 * util::kMillisecond, 0, 0.0});
  DirectoryOptions options;
  options.leaseGraceDivisor = 0;
  GmaDirectory directory(network, {"gma", kDirectoryPort}, options);

  network.requestAsync({"gw", 1}, {"gma", kDirectoryPort},
                       "REG PRODUCER gw-a a:1 1 4000 0\nsiteA-*",
                       [](const net::AsyncOutcome& o) {
                         ASSERT_TRUE(o.ok()) << o.message;
                       });
  loop.runUntil(200 * util::kMillisecond);
  ASSERT_EQ(directory.producers().size(), 1u);

  loop.runUntil(4100 * util::kMillisecond);  // expiry was 4050ms
  directory.sweepTick();
  EXPECT_EQ(directory.stats().leaseEvictions, 1u);
  EXPECT_TRUE(directory.producers().empty());
}

}  // namespace
}  // namespace gridrm::global
