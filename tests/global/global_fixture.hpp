// Two-site Grid fixture: a GMA directory plus two gateways, each owning
// a simulated site, with Global layers started (paper Fig. 1).
#pragma once

#include <memory>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"

namespace gridrm::global::testutil {

struct GridFixture {
  explicit GridFixture(util::Duration cacheTtl = 5 * util::kSecond,
                       const std::string& eventPattern = "",
                       GlobalOptions baseOptions = {})
      : clock(0), network(clock, 17) {
    directory =
        std::make_unique<GmaDirectory>(network, net::Address{"gma", kDirectoryPort});

    agents::SiteOptions optionsA;
    optionsA.siteName = "siteA";
    optionsA.hostCount = 3;
    optionsA.seed = 1;
    siteA = std::make_unique<agents::SiteSimulation>(network, clock, optionsA);

    agents::SiteOptions optionsB;
    optionsB.siteName = "siteB";
    optionsB.hostCount = 2;
    optionsB.seed = 2;
    siteB = std::make_unique<agents::SiteSimulation>(network, clock, optionsB);

    clock.advance(120 * util::kSecond);

    core::GatewayOptions gwA;
    gwA.name = "gw-a";
    gwA.host = "gw-a.host";
    gwA.cacheTtl = cacheTtl;
    gatewayA = std::make_unique<core::Gateway>(network, clock, gwA);

    core::GatewayOptions gwB;
    gwB.name = "gw-b";
    gwB.host = "gw-b.host";
    gwB.cacheTtl = cacheTtl;
    gatewayB = std::make_unique<core::Gateway>(network, clock, gwB);

    adminA = gatewayA->openSession(core::Principal::admin());
    adminB = gatewayB->openSession(core::Principal::admin());
    for (const auto& url : siteA->dataSourceUrls()) {
      gatewayA->addDataSource(adminA, url);
    }
    for (const auto& url : siteB->dataSourceUrls()) {
      gatewayB->addDataSource(adminB, url);
    }

    GlobalOptions globalOptions = std::move(baseOptions);
    globalOptions.propagateEventPattern = eventPattern;
    globalA = std::make_unique<GlobalLayer>(
        *gatewayA, net::Address{"gma", kDirectoryPort}, globalOptions);
    globalB = std::make_unique<GlobalLayer>(
        *gatewayB, net::Address{"gma", kDirectoryPort}, globalOptions);
    globalA->start();
    globalB->start();
  }

  /// Drain both gateways' scheduler queues. Stream drains hop between
  /// gateways — a delta drained at B is relayed into A's Background
  /// lane — so loop until both are simultaneously idle.
  void quiesce() {
    for (;;) {
      gatewayA->scheduler().waitIdle();
      gatewayB->scheduler().waitIdle();
      if (gatewayA->scheduler().idle() && gatewayB->scheduler().idle()) {
        return;
      }
    }
  }

  /// One maintenance round: advance simulated time by `step`, run both
  /// Global layers' tick() (lease renewal, NACKs, liveness probes) and
  /// drain the schedulers.
  void pump(util::Duration step = 500 * util::kMillisecond) {
    clock.advance(step);
    globalA->tick();
    globalB->tick();
    quiesce();
  }

  util::SimClock clock;
  net::Network network;
  std::unique_ptr<GmaDirectory> directory;
  std::unique_ptr<agents::SiteSimulation> siteA;
  std::unique_ptr<agents::SiteSimulation> siteB;
  std::unique_ptr<core::Gateway> gatewayA;
  std::unique_ptr<core::Gateway> gatewayB;
  std::unique_ptr<GlobalLayer> globalA;
  std::unique_ptr<GlobalLayer> globalB;
  std::string adminA;
  std::string adminB;
};

}  // namespace gridrm::global::testutil
