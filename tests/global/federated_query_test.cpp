// End-to-end federated query planning (PR 7) over the two-site Grid
// fixture: decomposed plans must return byte-identical results to the
// forced ship-all-rows baseline while moving far fewer rows, fragment
// results stream back as FFRAME datagrams (multi-frame reassembly),
// fragment plans are cached per schema generation, and a met
// coordinator deadline prunes still-queued site fetches.
#include "gridrm/global/global_layer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gridrm/dbc/result_io.hpp"
#include "global_fixture.hpp"

namespace gridrm::global {
namespace {

using testutil::GridFixture;

/// Serialized bytes of a federated result (metadata included).
std::string bytes(const core::QueryResult& result) {
  return result.rows ? dbc::serializeResultSet(*result.rows) : std::string();
}

// Aggregates over static Int columns (CPUCount, ClockSpeed are host
// configuration, not time-varying samples) so the comparison cannot be
// perturbed by simulated load drift between the two executions.
const char* kAggSql =
    "SELECT ClusterName, count(*) AS hosts, sum(CPUCount) AS cpus, "
    "min(ClockSpeed) AS lo, max(ClockSpeed) AS hi "
    "FROM Processor GROUP BY ClusterName ORDER BY ClusterName";

TEST(FederatedQueryTest, DecomposedAggregateMatchesShipAllByteIdentical) {
  GridFixture f;
  const std::vector<std::string> urls = {f.siteA->headUrl("scms"),
                                         f.siteB->headUrl("scms")};
  auto decomposed = f.globalA->federatedQuery(f.adminA, urls, kAggSql, {},
                                              FederatedMode::Auto);
  ASSERT_TRUE(decomposed.complete())
      << (decomposed.failures.empty() ? "" : decomposed.failures[0].message);
  auto shipAll = f.globalA->federatedQuery(f.adminA, urls, kAggSql, {},
                                           FederatedMode::ShipAllRows);
  ASSERT_TRUE(shipAll.complete())
      << (shipAll.failures.empty() ? "" : shipAll.failures[0].message);

  // One group per cluster, in key order.
  EXPECT_EQ(decomposed.rows->rowCount(), 2u);
  EXPECT_EQ(bytes(decomposed), bytes(shipAll));

  const auto statsA = f.globalA->stats();
  EXPECT_EQ(statsA.federatedQueries, 2u);
  EXPECT_EQ(statsA.federatedPushdownQueries, 1u);
  EXPECT_EQ(statsA.federatedShipAllQueries, 1u);
  EXPECT_EQ(statsA.fragmentsSent, 2u);  // one GFRAG to gw-b per mode
  EXPECT_EQ(f.globalB->stats().fragmentsServed, 2u);
}

TEST(FederatedQueryTest, PushdownShipsPartialRowsNotRawRows) {
  GridFixture f;
  const std::vector<std::string> urls = {f.siteA->headUrl("scms"),
                                         f.siteB->headUrl("scms")};
  (void)f.globalA->federatedQuery(f.adminA, urls, kAggSql, {},
                                  FederatedMode::Auto);
  const std::uint64_t pushdownRows = f.globalB->stats().fragmentRowsShipped;
  core::QueryOptions uncached;
  uncached.useCache = false;
  (void)f.globalA->federatedQuery(f.adminA, urls, kAggSql, uncached,
                                  FederatedMode::ShipAllRows);
  const std::uint64_t shipAllRows =
      f.globalB->stats().fragmentRowsShipped - pushdownRows;
  // siteB: one partial row (its single cluster group) vs two raw host
  // rows — decomposition moves strictly less data.
  EXPECT_EQ(pushdownRows, 1u);
  EXPECT_EQ(shipAllRows, 2u);
}

TEST(FederatedQueryTest, FragmentResultsServedFromGatewayCache) {
  GridFixture f(/*cacheTtl=*/30 * util::kSecond);
  const std::vector<std::string> urls = {f.siteB->headUrl("scms")};
  (void)f.globalA->federatedQuery(f.adminA, urls, kAggSql);
  (void)f.globalA->federatedQuery(f.adminA, urls, kAggSql);
  const auto stats = f.globalA->stats();
  EXPECT_EQ(stats.fragmentsSent, 1u);
  EXPECT_GE(stats.remoteCacheHits, 1u);
}

TEST(FederatedQueryTest, MultiFrameStreamsReassembleInOrder) {
  GlobalOptions tiny;
  tiny.fragmentFrameRows = 1;  // every row travels in its own FFRAME
  GridFixture f(5 * util::kSecond, "", tiny);
  const std::vector<std::string> urls = {f.siteA->headUrl("scms"),
                                         f.siteB->headUrl("scms")};
  const char* sql =
      "SELECT HostName, CPUCount FROM Processor ORDER BY HostName";
  auto decomposed =
      f.globalA->federatedQuery(f.adminA, urls, sql, {}, FederatedMode::Auto);
  ASSERT_TRUE(decomposed.complete())
      << (decomposed.failures.empty() ? "" : decomposed.failures[0].message);
  EXPECT_EQ(decomposed.rows->rowCount(), 5u);  // 3 siteA + 2 siteB hosts

  core::QueryOptions uncached;
  uncached.useCache = false;
  auto shipAll = f.globalA->federatedQuery(f.adminA, urls, sql, uncached,
                                           FederatedMode::ShipAllRows);
  ASSERT_TRUE(shipAll.complete());
  EXPECT_EQ(bytes(decomposed), bytes(shipAll));

  // siteB's 2 fragment rows crossed as 2 sequenced frames.
  EXPECT_GE(f.globalB->stats().fragmentFramesSent, 2u);
  EXPECT_GE(f.globalA->stats().fragmentFramesReceived, 2u);
}

TEST(FederatedQueryTest, BatchLookupResolvesSitesPositionally) {
  GridFixture f;
  auto out = f.globalA->directory().lookupMany(
      {"siteA-node00", "siteB-node01", "nowhere-node00"});
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(out[0].status, LookupStatus::Found);
  ASSERT_EQ(out[1].status, LookupStatus::Found);
  // Positional proven negative, not dropped and not Unavailable: every
  // shard answered.
  EXPECT_EQ(out[2].status, LookupStatus::NotFound);
  EXPECT_EQ(out[0].entry->name, "gw-a");
  EXPECT_EQ(out[1].entry->name, "gw-b");
}

TEST(FederatedQueryTest, FanOutResolvesOwnersInOneDirectoryRoundTrip) {
  GridFixture f;
  const std::vector<std::string> urls = {f.siteB->headUrl("scms"),
                                         f.siteB->headUrl("snmp"),
                                         f.siteB->headUrl("sql")};
  (void)f.globalA->federatedQuery(f.adminA, urls, kAggSql);
  // Distinct remote hosts resolve through one LOOKUPN batch.
  EXPECT_EQ(f.globalA->stats().directoryLookups, 1u);
}

TEST(FederatedQueryTest, SchemaReloadInvalidatesFragmentPlans) {
  // Satellite fix: cached fragment plans must die with the schema
  // generation, like bound plans, so a reload can never dispatch a
  // stale fragment.
  GridFixture f;
  auto& plans = f.gatewayA->planCache();
  auto& schemas = f.gatewayA->schemaManager();
  auto a = plans.federated(kAggSql, schemas);
  auto b = plans.federated(kAggSql, schemas);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // cached: the same immutable plan
  EXPECT_EQ(plans.stats().federatedMisses, 1u);
  EXPECT_EQ(plans.stats().federatedHits, 1u);

  schemas.setSchema(nullptr);  // generation bump (builtin schema again)
  auto c = plans.federated(kAggSql, schemas);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a.get(), c.get());  // re-derived, not the stale fragment
  EXPECT_EQ(plans.stats().federatedMisses, 2u);

  // And the federated path still answers correctly after the reload.
  auto result = f.globalA->federatedQuery(
      f.adminA, {f.siteA->headUrl("scms"), f.siteB->headUrl("scms")},
      kAggSql);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.rows->rowCount(), 2u);
}

TEST(FederatedQueryTest, FallbackErrorsSurfaceLikeSingleGateway) {
  GridFixture f;
  // Unknown aggregate: not decomposable, shipped raw and executed at
  // the coordinator, whose engine error lands in failures per URL.
  auto result = f.globalA->federatedQuery(
      f.adminA, {f.siteA->headUrl("scms"), f.siteB->headUrl("scms")},
      "SELECT median(CPUCount) FROM Processor");
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(f.globalA->stats().federatedShipAllQueries, 1u);
}

TEST(FederatedQueryTest, CoordinatorDeadlineCancelsQueuedSiteFetches) {
  GridFixture f;
  auto& scheduler = f.gatewayA->scheduler();

  // Saturate the blocking capacity (workers - 1 = 3) so the per-site
  // fetch tasks stay queued. The blockers double as the sim-clock
  // driver: they advance time past the coordinator deadline while the
  // coordinator polls it.
  std::atomic<bool> release{false};
  const std::size_t blockers = scheduler.workerCount() - 1;
  for (std::size_t i = 0; i < blockers; ++i) {
    ASSERT_TRUE(scheduler.submit(
        core::Lane::Interactive,
        [&] {
          while (!release.load()) {
            f.clock.advance(5 * util::kMillisecond);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        },
        {}, /*blocking=*/true));
  }

  core::QueryOptions options;
  options.deadline = 50 * util::kMillisecond;
  auto result = f.globalA->federatedQuery(
      f.adminA, {f.siteA->headUrl("scms"), f.siteB->headUrl("scms")},
      kAggSql, options);
  release.store(true);

  // Both site fetches were still queued when the deadline hit: pruned
  // via their CancelTokens, reported as per-URL timeouts, no rows.
  EXPECT_EQ(result.failures.size(), 2u);
  for (const auto& failure : result.failures) {
    EXPECT_EQ(failure.code, dbc::ErrorCode::Timeout);
    EXPECT_NE(failure.message.find("coordinator deadline"),
              std::string::npos);
  }
  EXPECT_EQ(result.rows->rowCount(), 0u);
  EXPECT_EQ(f.globalA->stats().federatedDeadlineCancels, 2u);

  // Once the blockers drain, the scheduler drops the cancelled entries
  // at dispatch instead of running them.
  f.quiesce();
  const auto lane = f.gatewayA->schedulerStats(f.adminA).lane(
      core::Lane::Interactive);
  EXPECT_GE(lane.cancelled, 2u);
}

}  // namespace
}  // namespace gridrm::global
