#include "gridrm/global/shard_map.hpp"

#include <gtest/gtest.h>

#include "gridrm/global/directory.hpp"  // kDirectoryPort

#include <map>
#include <string>

namespace gridrm::global {
namespace {

std::vector<net::Address> nodes3() {
  return {{"gma0", kDirectoryPort}, {"gma1", kDirectoryPort},
          {"gma2", kDirectoryPort}};
}

TEST(ShardMapTest, SingleIsStandalone) {
  auto map = ShardMap::single({"gma", kDirectoryPort});
  EXPECT_FALSE(map.service());  // version 0 marks "not a service"
  EXPECT_EQ(map.version(), 0u);
  EXPECT_EQ(map.shardCount(), 1u);
  EXPECT_EQ(map.replication(), 1u);
  EXPECT_EQ(map.shardOf("p:anything"), 0u);
  EXPECT_EQ(map.primaryOf(0).host, "gma");
  EXPECT_EQ(map.shardsHeldBy({"gma", kDirectoryPort}).size(), 1u);
}

TEST(ShardMapTest, OneShardRoutesEverythingToShardZero) {
  auto map = ShardMap::build(nodes3(), /*shards=*/1, /*replication=*/2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(map.shardOf("p:gw" + std::to_string(i)), 0u);
  }
  auto replicas = map.replicasOf(0);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].host, "gma0");  // primary first
  EXPECT_EQ(replicas[1].host, "gma1");
}

TEST(ShardMapTest, ReplicationClampedToNodeCount) {
  auto map = ShardMap::build(nodes3(), 4, /*replication=*/7);
  EXPECT_EQ(map.replication(), 3u);
  for (std::size_t s = 0; s < map.shardCount(); ++s) {
    EXPECT_EQ(map.replicasOf(s).size(), 3u);
    for (const auto& node : nodes3()) EXPECT_TRUE(map.holds(s, node));
  }
}

TEST(ShardMapTest, ConsistentPlacementIsDeterministic) {
  auto a = ShardMap::build(nodes3(), 8, 2);
  auto b = ShardMap::build(nodes3(), 8, 2);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "p:gateway-" + std::to_string(i);
    EXPECT_EQ(a.shardOf(key), b.shardOf(key));
    EXPECT_LT(a.shardOf(key), 8u);
  }
}

TEST(ShardMapTest, KeysSpreadAcrossShards) {
  auto map = ShardMap::build(nodes3(), 4, 2);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 400; ++i) {
    ++counts[map.shardOf("p:gw" + std::to_string(i))];
  }
  // Consistent hashing with 16 virtual points per shard will not be
  // perfectly uniform, but it must not collapse onto one shard.
  EXPECT_GE(counts.size(), 3u);
}

TEST(ShardMapTest, ReplicasRoundRobinFromPrimary) {
  auto map = ShardMap::build(nodes3(), 3, 2);
  for (std::size_t s = 0; s < 3; ++s) {
    auto replicas = map.replicasOf(s);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(replicas[0], map.primaryOf(s));
    EXPECT_EQ(replicas[0].host, "gma" + std::to_string(s % 3));
    EXPECT_EQ(replicas[1].host, "gma" + std::to_string((s + 1) % 3));
    EXPECT_TRUE(map.holds(s, replicas[0]));
    EXPECT_TRUE(map.holds(s, replicas[1]));
    EXPECT_FALSE(map.holds(s, {"gma" + std::to_string((s + 2) % 3),
                               kDirectoryPort}));
  }
  // Every node holds its primary shard plus the one it backs up.
  EXPECT_EQ(map.shardsHeldBy(nodes3()[0]).size(), 2u);
}

TEST(ShardMapTest, EncodeDecodeRoundTrip) {
  auto map = ShardMap::build(nodes3(), 8, 2, /*version=*/42);
  const std::string line = map.encode();
  EXPECT_EQ(line.rfind("MAP 42 8 2 ", 0), 0u);
  auto decoded = ShardMap::decode(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == map);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "c:consumer-" + std::to_string(i);
    EXPECT_EQ(decoded->shardOf(key), map.shardOf(key));
  }
}

TEST(ShardMapTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(ShardMap::decode("").has_value());
  EXPECT_FALSE(ShardMap::decode("MAP").has_value());
  EXPECT_FALSE(ShardMap::decode("MAP 1 2").has_value());
  EXPECT_FALSE(ShardMap::decode("PRODUCER gw-a a:1 0").has_value());
  EXPECT_FALSE(ShardMap::decode("MAP x y z gma0:8700").has_value());
}

TEST(ShardMapTest, BuildForcesServiceVersion) {
  // A service map can never masquerade as standalone: version 0 is
  // promoted to 1 so clients always adopt a piggybacked map.
  auto map = ShardMap::build(nodes3(), 2, 2, /*version=*/0);
  EXPECT_TRUE(map.service());
  EXPECT_EQ(map.version(), 1u);
}

}  // namespace
}  // namespace gridrm::global
