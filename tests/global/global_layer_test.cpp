#include "gridrm/global/global_layer.hpp"

#include <gtest/gtest.h>

#include "global_fixture.hpp"

namespace gridrm::global {
namespace {

using testutil::GridFixture;

TEST(GlobalLayerTest, ProducersRegisterWithDirectory) {
  GridFixture f;
  EXPECT_EQ(f.directory->producers().size(), 2u);
  EXPECT_TRUE(f.globalA->ownsHost("siteA-node00"));
  EXPECT_FALSE(f.globalA->ownsHost("siteB-node00"));
}

TEST(GlobalLayerTest, LocalQueryStaysLocal) {
  GridFixture f;
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteA->headUrl("snmp")}, "SELECT * FROM Processor");
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.rows->rowCount(), 1u);
  EXPECT_EQ(f.globalA->stats().remoteQueriesSent, 0u);
}

TEST(GlobalLayerTest, RemoteQueryRoutedToOwningGateway) {
  // A client connected to gw-a asks for siteB data: gw-a must route the
  // query to gw-b (paper section 1.1).
  GridFixture f;
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("snmp")}, "SELECT * FROM Processor");
  ASSERT_TRUE(result.complete())
      << (result.failures.empty() ? "" : result.failures[0].message);
  EXPECT_EQ(result.rows->rowCount(), 1u);
  result.rows->next();
  EXPECT_EQ(result.rows->getString("HostName"), "siteB-node00");
  EXPECT_EQ(f.globalA->stats().remoteQueriesSent, 1u);
  EXPECT_EQ(f.globalB->stats().remoteQueriesServed, 1u);
}

TEST(GlobalLayerTest, MixedLocalAndRemoteConsolidated) {
  GridFixture f;
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteA->headUrl("scms"), f.siteB->headUrl("scms")},
      "SELECT * FROM Processor");
  ASSERT_TRUE(result.complete());
  // siteA has 3 hosts, siteB has 2: SCMS returns one row per host.
  EXPECT_EQ(result.rows->rowCount(), 5u);
  EXPECT_EQ(result.rows->metaData().column(0).name, "Source");
}

TEST(GlobalLayerTest, InterGatewayCacheReducesRemoteTraffic) {
  // Paper section 4: caching between gateways "increase[s] scalability
  // by reducing unnecessary requests".
  GridFixture f(/*cacheTtl=*/30 * util::kSecond);
  const std::vector<std::string> urls = {f.siteB->headUrl("snmp")};
  const std::string sql = "SELECT * FROM Processor";
  (void)f.globalA->globalQuery(f.adminA, urls, sql);
  (void)f.globalA->globalQuery(f.adminA, urls, sql);
  (void)f.globalA->globalQuery(f.adminA, urls, sql);
  EXPECT_EQ(f.globalA->stats().remoteQueriesSent, 1u);
  EXPECT_EQ(f.globalA->stats().remoteCacheHits, 2u);
}

TEST(GlobalLayerTest, CacheDisabledSendsEveryQuery) {
  GridFixture f(/*cacheTtl=*/0);
  const std::vector<std::string> urls = {f.siteB->headUrl("snmp")};
  core::QueryOptions options;
  options.useCache = false;
  (void)f.globalA->globalQuery(f.adminA, urls, "SELECT * FROM Processor",
                               options);
  (void)f.globalA->globalQuery(f.adminA, urls, "SELECT * FROM Processor",
                               options);
  EXPECT_EQ(f.globalA->stats().remoteQueriesSent, 2u);
}

TEST(GlobalLayerTest, DirectoryLookupsCached) {
  GridFixture f(/*cacheTtl=*/0);
  core::QueryOptions options;
  options.useCache = false;
  for (int i = 0; i < 3; ++i) {
    (void)f.globalA->globalQuery(f.adminA, {f.siteB->headUrl("snmp")},
                                 "SELECT * FROM Processor", options);
  }
  EXPECT_EQ(f.globalA->stats().directoryLookups, 1u);
  EXPECT_EQ(f.globalA->stats().lookupCacheHits, 2u);
}

TEST(GlobalLayerTest, UnknownHostFails) {
  GridFixture f;
  auto result = f.globalA->globalQuery(
      f.adminA, {"jdbc:snmp://unknown-host:161/x"}, "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  EXPECT_NE(result.failures[0].message.find("no gateway owns"),
            std::string::npos);
}

TEST(GlobalLayerTest, FederationSecretEnforced) {
  GridFixture f;
  const net::Payload response = f.network.request(
      {"evil", 0}, f.globalB->producerAddress(),
      "GQUERY wrong-secret\n" + f.siteB->headUrl("snmp") +
          "\nSELECT * FROM Processor");
  EXPECT_EQ(response, "ERR federation authentication failed");
  EXPECT_EQ(f.globalB->stats().authFailures, 1u);
}

TEST(GlobalLayerTest, RemoteErrorsSurfaceInFailures) {
  GridFixture f;
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("snmp")}, "SELECT * FROM NotAGroup");
  EXPECT_FALSE(result.complete());
  EXPECT_NE(result.failures[0].message.find("remote"), std::string::npos);
}

TEST(GlobalLayerTest, RemoteGatewayDownReportedNotFatal) {
  GridFixture f;
  f.network.setHostDown("gw-b.host", true);
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("snmp"), f.siteA->headUrl("snmp")},
      "SELECT * FROM Processor");
  EXPECT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.rows->rowCount(), 1u);  // local half still answered
}

TEST(GlobalLayerTest, ClientsFreeToConnectToAnyGateway) {
  // The same remote data is reachable through either gateway.
  GridFixture f;
  auto viaA = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("sql")},
      "SELECT HostName FROM Host ORDER BY HostName");
  auto viaB = f.globalB->globalQuery(
      f.adminB, {f.siteB->headUrl("sql")},
      "SELECT HostName FROM Host ORDER BY HostName");
  ASSERT_TRUE(viaA.complete());
  ASSERT_TRUE(viaB.complete());
  EXPECT_EQ(viaA.rows->rowCount(), viaB.rows->rowCount());
}

TEST(GlobalLayerTest, RemoteResultsRecordedInLocalHistory) {
  // Fig. 9: the gateway's stored data covers "local resources, as well
  // as any remote resource data, that was queried from the local
  // gateway".
  GridFixture f;
  core::QueryOptions options;
  options.useCache = false;
  options.recordHistory = true;
  for (int i = 0; i < 2; ++i) {
    auto result = f.globalA->globalQuery(
        f.adminA, {f.siteA->headUrl("sql"), f.siteB->headUrl("sql")},
        "SELECT HostName, Load1 FROM Processor", options);
    ASSERT_TRUE(result.complete());
    f.clock.advance(10 * util::kSecond);
  }
  // Both the local (siteA) and the relayed (siteB) rows are in gw-a's
  // HistoryProcessor, distinguishable by Source.
  auto local = f.gatewayA->submitHistoricalQuery(
      f.adminA, "SELECT * FROM HistoryProcessor "
                "WHERE HostName LIKE 'siteA%'");
  auto remote = f.gatewayA->submitHistoricalQuery(
      f.adminA, "SELECT * FROM HistoryProcessor "
                "WHERE HostName LIKE 'siteB%'");
  EXPECT_EQ(local->rowCount(), 6u);   // 3 hosts x 2 polls
  EXPECT_EQ(remote->rowCount(), 4u);  // 2 hosts x 2 polls
  // Aggregates over the federated history work too.
  auto counts = f.gatewayA->submitHistoricalQuery(
      f.adminA, "SELECT HostName, COUNT(*) AS n FROM HistoryProcessor "
                "GROUP BY HostName");
  EXPECT_EQ(counts->rowCount(), 5u);
}

// S1 regression (PR 10): an unreachable directory is NOT "no gateway
// owns this host". The failure must carry ErrorCode::Unavailable and
// the directory-unavailable message, never the proven-negative one.
TEST(GlobalLayerTest, DirectoryDownIsUnavailableNotMissing) {
  GridFixture f;
  f.network.setHostDown("gma", true);
  // Cold cache: nothing stale to serve, so the query must surface the
  // outage — not claim the producer does not exist.
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("snmp")}, "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].code, dbc::ErrorCode::Unavailable);
  EXPECT_NE(result.failures[0].message.find("directory unavailable"),
            std::string::npos)
      << result.failures[0].message;
  EXPECT_EQ(result.failures[0].message.find("no gateway owns"),
            std::string::npos)
      << "RPC failure misread as a negative lookup";
  EXPECT_GE(f.globalA->stats().directoryUnavailable, 1u);

  // The federated planner distinguishes too.
  auto federated = f.globalA->federatedQuery(
      f.adminA, {f.siteB->headUrl("snmp")}, "SELECT * FROM Processor");
  ASSERT_EQ(federated.failures.size(), 1u);
  EXPECT_EQ(federated.failures[0].code, dbc::ErrorCode::Unavailable);
}

// S1 companion: with a warm (even expired) cache entry, the outage is
// bridged by serving the stale owner instead of failing.
TEST(GlobalLayerTest, StaleOwnerServedWhileDirectoryUnreachable) {
  GlobalOptions options;
  options.lookupCacheTtl = 2 * util::kSecond;
  GridFixture f(/*cacheTtl=*/2 * util::kSecond, "", options);
  auto warm = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("snmp")}, "SELECT * FROM Processor");
  ASSERT_TRUE(warm.complete());

  f.clock.advance(10 * util::kSecond);  // cache entry now expired
  f.network.setHostDown("gma", true);
  auto result = f.globalA->globalQuery(
      f.adminA, {f.siteB->headUrl("snmp")}, "SELECT * FROM Processor");
  EXPECT_TRUE(result.complete())
      << (result.failures.empty() ? "" : result.failures[0].message);
  EXPECT_GE(f.globalA->stats().staleLookupsServed, 1u);
  EXPECT_EQ(f.globalA->stats().directoryUnavailable, 0u);
}

// Directory replica health is queryable through the layer (ACIL).
TEST(GlobalLayerTest, DirectoryHealthExposesReplicaStats) {
  GridFixture f;
  auto health = f.globalA->directoryHealth(f.adminA);
  ASSERT_EQ(health.size(), 1u);  // standalone fixture: one "replica"
  ASSERT_TRUE(health[0].second.has_value());
  EXPECT_GE(health[0].second->registrations, 2u);  // both gateways

  f.network.setHostDown("gma", true);
  health = f.globalA->directoryHealth(f.adminA);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_FALSE(health[0].second.has_value());
}

TEST(GlobalLayerTest, EventPropagationBetweenGateways) {
  GridFixture f(/*cacheTtl=*/5 * util::kSecond, /*eventPattern=*/"alert");
  std::vector<core::Event> seenAtB;
  f.gatewayB->subscribeEvents(f.adminB, "alert",
                              [&](const core::Event& e) {
                                seenAtB.push_back(e);
                              });

  core::Event e;
  e.type = "alert.load";
  e.source = "siteA-node00";
  e.fields["load"] = util::Value(9.5);
  f.gatewayA->eventManager().ingest(e);
  f.gatewayA->eventManager().drain();
  f.gatewayB->eventManager().drain();

  ASSERT_EQ(seenAtB.size(), 1u);
  EXPECT_EQ(seenAtB[0].type, "alert.load");
  EXPECT_EQ(seenAtB[0].field("origin"), "gw-a");
  EXPECT_EQ(seenAtB[0].field("source_host"), "siteA-node00");
  EXPECT_GE(f.globalA->stats().eventsPropagated, 1u);

  // The relayed copy at B must not bounce back to A (origin tag).
  f.gatewayA->eventManager().drain();
  EXPECT_EQ(f.globalB->stats().eventsPropagated, 0u);
}

}  // namespace
}  // namespace gridrm::global
