// Concurrency churn over the replicated directory service (S3): real
// threads hammer register/unregister/lookup/consumer traffic while
// maintenance threads run anti-entropy syncs, lease sweeps and clock
// advances. Run under TSan in CI: the assertions here are secondary to
// the data-race coverage; afterwards the replicas must still converge
// byte-identically.
#include "gridrm/global/directory.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace gridrm::global {
namespace {

TEST(DirectoryChurnTest, ConcurrentTrafficStaysCoherentAndConverges) {
  util::SimClock clock(0);
  net::Network network(clock, 29);
  const std::vector<net::Address> nodes = {{"gma0", kDirectoryPort},
                                           {"gma1", kDirectoryPort},
                                           {"gma2", kDirectoryPort}};
  const ShardMap map = ShardMap::build(nodes, 3, 2);
  std::vector<std::unique_ptr<GmaDirectory>> replicas;
  for (const auto& node : nodes) {
    DirectoryOptions options;
    options.map = map;
    replicas.push_back(std::make_unique<GmaDirectory>(network, node, options));
  }

  constexpr int kIterations = 60;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Two producer-churn threads over overlapping name sets: register,
  // re-register (pattern change), unregister.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      DirectoryClient client(network, {"churn" + std::to_string(t), 1}, nodes);
      for (int i = 0; i < kIterations; ++i) {
        const std::string name = "gw-" + std::to_string(i % 5);
        client.registerProducer(name, {"h" + name, 1},
                                {name + "-*", "shared-*"},
                                /*epoch=*/static_cast<std::uint64_t>(t + 1));
        if (i % 3 == 0) client.unregisterProducer(name);
      }
    });
  }

  // Leased registrations for the sweeps to chew on.
  threads.emplace_back([&] {
    DirectoryClient client(network, {"leaser", 1}, nodes);
    for (int i = 0; i < kIterations; ++i) {
      client.registerProducer("leased-" + std::to_string(i % 4),
                              {"l", 1}, {"leased-*"}, /*epoch=*/1,
                              /*leaseTtl=*/2 * util::kSecond);
    }
  });

  // Reader thread: single + batch lookups and LISTs. Results are
  // whatever the interleaving produced; the invariant is no throw (all
  // replicas stay up) and no race.
  threads.emplace_back([&] {
    DirectoryClient client(network, {"reader", 1}, nodes);
    for (int i = 0; i < kIterations; ++i) {
      (void)client.lookup("gw-" + std::to_string(i % 5) + "-n0");
      (void)client.lookupMany({"shared-n0", "leased-n1", "nowhere"});
      if (i % 10 == 0) (void)client.list();
    }
  });

  // Consumer-registry churn.
  threads.emplace_back([&] {
    DirectoryClient client(network, {"sink", 162}, nodes);
    for (int i = 0; i < kIterations; ++i) {
      const std::string name = "sink-" + std::to_string(i % 3);
      client.registerConsumer(name, {"sink", 162},
                              i % 2 == 0 ? "snmp.trap" : "*");
      (void)client.consumersFor("snmp.trap.highload");
      if (i % 4 == 0) client.unregisterConsumer(name);
    }
  });

  // Maintenance: anti-entropy + sweeps + time, concurrent with the
  // request traffic (SimClock advance is thread-safe here — no
  // EventLoop owns the clock).
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& replica : replicas) {
        (void)replica->syncTick();
        replica->sweepTick();
      }
      clock.advance(100 * util::kMillisecond);
      std::this_thread::yield();
    }
  });

  for (std::size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  // Quiesced: bounded anti-entropy rounds converge every shard.
  for (int round = 0; round < 3; ++round) {
    for (auto& replica : replicas) (void)replica->syncTick();
  }
  for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
    const auto holders = map.replicasOf(shard);
    std::string reference;
    for (std::size_t i = 0; i < holders.size(); ++i) {
      for (auto& replica : replicas) {
        if (replica->address() == holders[i]) {
          const std::string exported = replica->exportShard(shard);
          if (i == 0) {
            reference = exported;
          } else {
            EXPECT_EQ(exported, reference) << "shard " << shard;
          }
        }
      }
    }
  }

  // And the service still answers coherently.
  DirectoryClient client(network, {"after", 1}, nodes);
  auto answers = client.lookupMany({"shared-n0"});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_NE(answers[0].status, LookupStatus::Unavailable);
}

}  // namespace
}  // namespace gridrm::global
