// Federation resilience (PR 5): leased registrations, lookup caching
// degraded modes, reliable sequenced delta delivery and liveness-epoch
// driven re-subscription, exercised over the seeded lossy network.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "global_fixture.hpp"
#include "gridrm/core/site_poller.hpp"
#include "gridrm/util/config.hpp"

namespace gridrm::global {
namespace {

using core::SitePoller;
using stream::StreamDelta;
using testutil::GridFixture;

std::unique_ptr<SitePoller> makePollerB(GridFixture& f) {
  auto poller = std::make_unique<SitePoller>(
      f.gatewayB->requestManager(), f.clock, core::Principal::monitor());
  poller->setStreamSink(&f.gatewayB->streamEngine());
  core::PollTask task;
  task.url = f.siteB->headUrl("snmp");
  task.sql = "SELECT * FROM Processor";
  task.interval = 30 * util::kSecond;
  poller->addTask(task);
  return poller;
}

TEST(FederationResilienceTest, FromConfigParsesFederationKeys) {
  util::Config cfg = util::Config::parse(
      "federation.secret = s3cret\n"
      "federation.producer_port = 9001\n"
      "federation.lookup_ttl_ms = 1000\n"
      "federation.negative_lookup_ttl_ms = 200\n"
      "federation.lease_ttl_ms = 3000\n"
      "federation.register_retries = 5\n"
      "federation.register_backoff_ms = 10\n"
      "federation.query_retries = 4\n"
      "federation.query_backoff_ms = 20\n"
      "federation.reliable = false\n"
      "federation.resend_buffer = 7\n"
      "federation.reorder_window = 9\n"
      "federation.liveness_timeout_ms = 1500\n"
      "federation.replay_rows = 6\n"
      "federation.serve_stale = false\n"
      "federation.stale_entries = 11\n"
      "federation.propagate_events = snmp.trap\n");
  GlobalOptions o = GlobalOptions::fromConfig(cfg);
  EXPECT_EQ(o.federationSecret, "s3cret");
  EXPECT_EQ(o.producerPort, 9001);
  EXPECT_EQ(o.lookupCacheTtl, 1 * util::kSecond);
  EXPECT_EQ(o.negativeLookupTtl, 200 * util::kMillisecond);
  EXPECT_EQ(o.leaseTtl, 3 * util::kSecond);
  EXPECT_EQ(o.registerRetries, 5u);
  EXPECT_EQ(o.registerBackoff, 10 * util::kMillisecond);
  EXPECT_EQ(o.queryRetries, 4u);
  EXPECT_EQ(o.queryBackoff, 20 * util::kMillisecond);
  EXPECT_FALSE(o.reliableDelivery);
  EXPECT_EQ(o.resendBuffer, 7u);
  EXPECT_EQ(o.reorderWindow, 9u);
  EXPECT_EQ(o.livenessTimeout, 1500 * util::kMillisecond);
  EXPECT_EQ(o.resubscribeReplayRows, 6u);
  EXPECT_FALSE(o.serveStale);
  EXPECT_EQ(o.staleCacheEntries, 11u);
  EXPECT_EQ(o.propagateEventPattern, "snmp.trap");

  GlobalOptions defaults = GlobalOptions::fromConfig(util::Config{});
  EXPECT_EQ(defaults.producerPort, kProducerPort);
  EXPECT_TRUE(defaults.reliableDelivery);
}

TEST(FederationResilienceTest, LeasedRegistrationsRenewAndEvict) {
  GlobalOptions options;
  options.leaseTtl = 4 * util::kSecond;
  GridFixture f(5 * util::kSecond, "", options);
  ASSERT_EQ(f.directory->producers().size(), 2u);

  // tick() before ttl/2 elapses does not renew.
  f.globalA->tick();
  EXPECT_EQ(f.globalA->stats().leaseRenewals, 0u);

  // ...but past ttl/2 it does.
  f.clock.advance(2100 * util::kMillisecond);
  f.globalA->tick();
  EXPECT_EQ(f.globalA->stats().leaseRenewals, 1u);

  // Let both leases lapse: the entries stop being served.
  f.clock.advance(10 * util::kSecond);
  EXPECT_TRUE(f.directory->producers().empty());

  // A renewal prunes the dead entries at the directory and re-adds the
  // renewer; the silent gateway stays evicted until it renews too.
  f.globalA->tick();
  EXPECT_EQ(f.directory->producers().size(), 1u);
  EXPECT_GE(f.directory->stats().leaseEvictions, 2u);
  f.globalB->tick();
  EXPECT_EQ(f.directory->producers().size(), 2u);
}

/// Delegates to a real directory after failing the first N requests —
/// a directory that is slow to come up.
class FlakyDirectory final : public net::RequestHandler {
 public:
  FlakyDirectory(GmaDirectory& inner, int failures)
      : inner_(inner), failures_(failures) {}
  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override {
    if (failures_ > 0) {
      --failures_;
      throw net::NetError(net::NetErrorKind::Timeout, "directory booting");
    }
    return inner_.handleRequest(from, request);
  }

 private:
  GmaDirectory& inner_;
  int failures_;
};

TEST(FederationResilienceTest, RegistrationRetriesWithBackoff) {
  util::SimClock clock(0);
  net::Network network(clock, 3);
  GmaDirectory real(network, {"dir-real", kDirectoryPort});
  FlakyDirectory flaky(real, /*failures=*/2);
  network.bind({"gma", kDirectoryPort}, &flaky);

  DirectoryClient client(network, {"gw", kProducerPort},
                         {"gma", kDirectoryPort});
  const util::TimePoint before = clock.now();
  const std::size_t attempts = client.registerProducer(
      "gw", {"gw", kProducerPort}, {"node*"}, /*epoch=*/1, /*leaseTtl=*/0,
      /*retries=*/3, /*backoff=*/250 * util::kMillisecond);
  EXPECT_EQ(attempts, 3u);
  // Two backoff sleeps: 250ms then 500ms (plus link RTTs).
  EXPECT_GE(clock.now() - before, 750 * util::kMillisecond);
  EXPECT_EQ(real.producers().size(), 1u);

  // With retries exhausted the last NetError surfaces.
  FlakyDirectory stubborn(real, /*failures=*/100);
  network.bind({"gma", kDirectoryPort}, &stubborn);
  EXPECT_THROW(client.registerProducer("gw2", {"gw2", kProducerPort}, {},
                                       1, 0, /*retries=*/1,
                                       /*backoff=*/util::kMillisecond),
               net::NetError);
}

TEST(FederationResilienceTest, StartSurvivesDirectoryOutageTickHeals) {
  GlobalOptions options;
  options.registerRetries = 0;  // fail fast during the outage
  GridFixture f(5 * util::kSecond, "", options);

  // A third gateway boots while the directory is unreachable.
  core::GatewayOptions gwC;
  gwC.name = "gw-c";
  gwC.host = "gw-c.host";
  core::Gateway gatewayC(f.network, f.clock, gwC);
  GlobalLayer globalC(gatewayC, net::Address{"gma", kDirectoryPort}, options);

  f.network.setHostDown("gma", true);
  globalC.start({"sitec-*"});  // must not throw
  EXPECT_TRUE(f.directory->producers().size() == 2u);

  // The directory comes back; periodic maintenance completes the join.
  f.network.setHostDown("gma", false);
  globalC.tick();
  EXPECT_EQ(f.directory->producers().size(), 3u);
  globalC.stop();
}

TEST(FederationResilienceTest, NegativeLookupsAreCached) {
  GridFixture f;
  const std::string url = "jdbc:snmp://nowhere:161/x";
  auto r1 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  ASSERT_EQ(r1.failures.size(), 1u);
  EXPECT_NE(r1.failures[0].message.find("no gateway owns"),
            std::string::npos);
  EXPECT_EQ(f.globalA->stats().directoryLookups, 1u);

  // Within the negative TTL the directory is not asked again.
  auto r2 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_EQ(r2.failures.size(), 1u);
  EXPECT_EQ(f.globalA->stats().directoryLookups, 1u);
  EXPECT_EQ(f.globalA->stats().negativeLookupHits, 1u);

  // Past the TTL the entry is revalidated.
  f.clock.advance(6 * util::kSecond);
  (void)f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_EQ(f.globalA->stats().directoryLookups, 2u);
}

TEST(FederationResilienceTest, ExpiredLookupServedStaleWhenDirectoryDown) {
  GridFixture f;
  const std::string url = f.siteB->headUrl("snmp");
  auto r1 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_TRUE(r1.complete());

  // Lookup cache expires; the directory is unreachable; the expired
  // entry still routes the query to gateway B.
  f.clock.advance(61 * util::kSecond);
  f.network.setHostDown("gma", true);
  auto r2 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_TRUE(r2.complete());
  EXPECT_TRUE(r2.staleSources.empty());  // rows are fresh, only the route
  EXPECT_EQ(f.globalA->stats().staleLookupsServed, 1u);
}

TEST(FederationResilienceTest, DegradedModeServesStaleRemoteRows) {
  GridFixture f;
  const std::string url = f.siteB->headUrl("snmp");
  auto fresh =
      f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  ASSERT_TRUE(fresh.complete());
  const std::size_t freshRows = fresh.rows->underlying().rowCount();
  ASSERT_GT(freshRows, 0u);

  // The result cache expires, then gateway B drops off the network:
  // the expired copy is served, flagged as stale.
  f.clock.advance(6 * util::kSecond);
  f.network.setHostDown("gw-b.host", true);
  auto degraded =
      f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_TRUE(degraded.complete());
  ASSERT_EQ(degraded.staleSources.size(), 1u);
  EXPECT_EQ(degraded.staleSources[0], url);
  EXPECT_EQ(degraded.rows->underlying().rowCount(), freshRows);
  EXPECT_EQ(f.globalA->stats().staleRemoteServes, 1u);
  EXPECT_GE(f.globalA->stats().remoteRetries, 2u);

  // With stale serving disabled the same outage is a reported failure.
  GlobalOptions noStale;
  noStale.serveStale = false;
  noStale.queryRetries = 0;
  GridFixture g(5 * util::kSecond, "", noStale);
  const std::string urlG = g.siteB->headUrl("snmp");
  (void)g.globalA->globalQuery(g.adminA, {urlG}, "SELECT * FROM Processor");
  g.clock.advance(6 * util::kSecond);
  g.network.setHostDown("gw-b.host", true);
  auto failed =
      g.globalA->globalQuery(g.adminA, {urlG}, "SELECT * FROM Processor");
  EXPECT_EQ(failed.failures.size(), 1u);
  EXPECT_TRUE(failed.staleSources.empty());
}

TEST(FederationResilienceTest, LossySequencedDeliveryIsExactlyOnce) {
  GlobalOptions options;
  options.livenessTimeout = 2 * util::kSecond;
  GridFixture f(5 * util::kSecond, "", options);

  std::vector<StreamDelta> received;
  (void)f.globalA->subscribeGlobal(
      f.adminA, f.siteB->headUrl("snmp"),
      "SELECT HostName, Load1 FROM Processor",
      [&](const StreamDelta& d) { received.push_back(d); });

  // A lossy WAN between the gateways: 40% of frames vanish.
  f.network.setLink("gw-a.host", "gw-b.host",
                    net::LinkModel{200, 0, 0.40});

  auto poller = makePollerB(f);
  const std::size_t kPolls = 10;
  for (std::size_t i = 0; i < kPolls; ++i) {
    f.clock.advance(30 * util::kSecond);
    (void)poller->tick();
    f.quiesce();
    f.globalA->tick();  // NACK any gap the next frame revealed
    f.quiesce();
  }
  // Heal: liveness probes find the final lost frames.
  for (int i = 0; i < 40 && received.size() < kPolls; ++i) f.pump();

  // Exactly-once, in-order application despite the loss.
  ASSERT_EQ(received.size(), kPolls);
  std::set<util::TimePoint> stamps;
  for (std::size_t i = 0; i < received.size(); ++i) {
    stamps.insert(received[i].timestamp);
    if (i > 0) EXPECT_GT(received[i].timestamp, received[i - 1].timestamp);
  }
  EXPECT_EQ(stamps.size(), kPolls);  // no duplicates

  const GlobalStats statsA = f.globalA->stats();
  const GlobalStats statsB = f.globalB->stats();
  EXPECT_GE(statsA.deltaGapsDetected, 1u);
  EXPECT_GE(statsA.nacksSent, 1u);
  EXPECT_GE(statsB.deltasResent, 1u);
  EXPECT_EQ(statsA.streamDeltasReceived, kPolls);

  // Introspection reflects the healed state.
  auto status = f.globalA->remoteSubscriptionStatus(f.adminA);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].nextExpectedSeq, kPolls + 1);
  EXPECT_FALSE(status[0].needsResubscribe);
  EXPECT_EQ(status[0].reorderBuffered, 0u);
}

TEST(FederationResilienceTest, ResendBufferOverflowFallsBackToResync) {
  GlobalOptions options;
  options.livenessTimeout = 2 * util::kSecond;
  options.resendBuffer = 1;  // almost no resend history
  GridFixture f(5 * util::kSecond, "", options);

  std::vector<StreamDelta> received;
  (void)f.globalA->subscribeGlobal(
      f.adminA, f.siteB->headUrl("snmp"), "SELECT * FROM Processor",
      [&](const StreamDelta& d) { received.push_back(d); });
  auto poller = makePollerB(f);
  (void)poller->tick();
  f.quiesce();
  ASSERT_EQ(received.size(), 1u);

  // Black out the inter-gateway link across three refreshes: the
  // resend buffer (1 frame) can no longer cover the gap.
  f.network.setLink("gw-a.host", "gw-b.host", net::LinkModel{200, 0, 1.0});
  for (int i = 0; i < 3; ++i) {
    f.clock.advance(30 * util::kSecond);
    (void)poller->tick();
    f.quiesce();
  }
  f.network.setLink("gw-a.host", "gw-b.host", net::LinkModel{200, 0, 0.0});
  for (int i = 0; i < 20 && received.size() < 2; ++i) f.pump();

  // The consumer jumped to the newest frame instead of replaying the
  // evicted range.
  ASSERT_EQ(received.size(), 2u);
  EXPECT_GT(received[1].timestamp, received[0].timestamp);
  EXPECT_EQ(f.globalA->stats().snapshotResyncs, 1u);
  auto status = f.globalA->remoteSubscriptionStatus(f.adminA);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].nextExpectedSeq, 5u);  // past the newest frame
}

TEST(FederationResilienceTest, OwnerRestartTriggersResubscribeWithReplay) {
  GlobalOptions options;
  options.livenessTimeout = 2 * util::kSecond;
  options.resubscribeReplayRows = 2;
  GridFixture f(5 * util::kSecond, "", options);

  std::vector<StreamDelta> received;
  (void)f.globalA->subscribeGlobal(
      f.adminA, f.siteB->headUrl("snmp"), "SELECT * FROM Processor",
      [&](const StreamDelta& d) { received.push_back(d); });
  auto poller = makePollerB(f);
  for (int i = 0; i < 2; ++i) {
    (void)poller->tick();
    f.quiesce();
    f.clock.advance(30 * util::kSecond);
  }
  ASSERT_EQ(received.size(), 2u);

  // Gateway B dies abruptly (no unregistration, no GUNSUB) and comes
  // back with a bumped epoch.
  const std::uint64_t epochBefore = f.globalB->epoch();
  f.globalB->crash();
  EXPECT_EQ(f.globalB->epoch(), epochBefore);  // bump happens on start
  f.globalB->start();
  EXPECT_EQ(f.globalB->epoch(), epochBefore + 1);

  // Liveness probing notices the dead relay (GONE) and re-subscribes,
  // replaying recent history so the consumer refills its window.
  const std::size_t beforeHeal = received.size();
  for (int i = 0; i < 20 && f.globalA->stats().resubscribes == 0; ++i) {
    f.pump();
  }
  EXPECT_EQ(f.globalA->stats().resubscribes, 1u);
  EXPECT_GT(received.size(), beforeHeal);  // replayed rows arrived

  auto status = f.globalA->remoteSubscriptionStatus(f.adminA);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].needsResubscribe);
  EXPECT_EQ(status[0].ownerEpoch, epochBefore + 1);

  // The healed relay streams new refreshes normally.
  const std::size_t afterHeal = received.size();
  f.clock.advance(30 * util::kSecond);
  (void)poller->tick();
  f.quiesce();
  EXPECT_EQ(received.size(), afterHeal + 1);
}

TEST(FederationResilienceTest, ReliableEventPropagationDedupsRetries) {
  // A lossy link makes the event request path retry; the receiver must
  // apply each event once.
  GlobalOptions options;
  GridFixture f(5 * util::kSecond, "snmp.trap", options);
  f.network.setLink("gw-a.host", "gw-b.host",
                    net::LinkModel{200, 0, 0.30});

  for (int i = 0; i < 5; ++i) {
    core::Event event;
    event.type = "snmp.trap.highload";
    event.source = "siteA-node0" + std::to_string(i);
    event.severity = core::Severity::Warning;
    f.gatewayA->eventManager().ingest(event);
    f.gatewayA->eventManager().drain();
    f.gatewayB->eventManager().drain();
  }
  const GlobalStats statsB = f.globalB->stats();
  // Whatever was delivered arrived exactly once.
  EXPECT_EQ(statsB.remoteEventsIngested,
            f.globalA->stats().eventsPropagated);
  EXPECT_LE(statsB.remoteEventsIngested, 5u);
  EXPECT_GE(statsB.remoteEventsIngested, 1u);
}

}  // namespace
}  // namespace gridrm::global
