#include "gridrm/stream/continuous_query_engine.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "gridrm/util/clock.hpp"

namespace gridrm::stream {
namespace {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;
using util::ValueType;

dbc::ResultSetMetaData processorColumns() {
  return dbc::ResultSetMetaData({{"HostName", ValueType::String, "", "Processor"},
                                 {"Load1", ValueType::Real, "", "Processor"}});
}

std::vector<std::vector<Value>> processorRows() {
  return {{Value(std::string("node00")), Value(0.9)},
          {Value(std::string("node01")), Value(0.2)}};
}

StreamOptions pullOptions(std::size_t capacity,
                          OverflowPolicy policy = OverflowPolicy::DropOldest) {
  StreamOptions o;
  o.queueCapacity = capacity;
  o.overflow = policy;
  return o;
}

struct Fixture {
  util::SimClock clock{0};
  ContinuousQueryEngine engine{clock};
};

TEST(ContinuousQueryEngineTest, MatchingRowsPushedToConsumer) {
  Fixture f;
  std::vector<StreamDelta> received;
  const auto id = f.engine.subscribe(
      "", "SELECT HostName FROM Processor WHERE Load1 > 0.5",
      [&](const StreamDelta& d) { received.push_back(d); });
  f.engine.onRows("jdbc:mock://h/x", "Processor", processorColumns(),
                  processorRows());
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].sequence, 1u);
  EXPECT_EQ(received[0].sourceUrl, "jdbc:mock://h/x");
  EXPECT_EQ(received[0].table, "Processor");
  ASSERT_EQ(received[0].rows.size(), 1u);  // node01 filtered out
  EXPECT_EQ(received[0].rows[0][0].toString(), "node00");
  ASSERT_EQ(received[0].columns.columnCount(), 1u);  // projection applied
  EXPECT_EQ(received[0].columns.column(0).name, "HostName");

  const auto stats = f.engine.stats();
  EXPECT_EQ(stats.subscriptions, 1u);
  EXPECT_EQ(stats.active, 1u);
  EXPECT_EQ(stats.batchesIngested, 1u);
  EXPECT_EQ(stats.rowsEvaluated, 2u);
  EXPECT_EQ(stats.deltasQueued, 1u);
  EXPECT_EQ(stats.rowsQueued, 1u);
  EXPECT_EQ(stats.deltasDelivered, 1u);
  EXPECT_EQ(stats.rowsDelivered, 1u);
  EXPECT_EQ(f.engine.isActive(id), true);
}

TEST(ContinuousQueryEngineTest, OtherTablesAndEmptyMatchesIgnored) {
  Fixture f;
  int calls = 0;
  (void)f.engine.subscribe("", "SELECT * FROM Processor WHERE Load1 > 5.0",
                           [&](const StreamDelta&) { ++calls; });
  // Different GLUE group: not evaluated at all.
  f.engine.onRows("jdbc:mock://h/x", "Memory", processorColumns(),
                  processorRows());
  // Same group but the predicate matches no row: no empty delta.
  f.engine.onRows("jdbc:mock://h/x", "Processor", processorColumns(),
                  processorRows());
  EXPECT_EQ(calls, 0);
  const auto stats = f.engine.stats();
  EXPECT_EQ(stats.batchesIngested, 2u);
  EXPECT_EQ(stats.rowsEvaluated, 2u);  // only the Processor batch
  EXPECT_EQ(stats.deltasQueued, 0u);
}

TEST(ContinuousQueryEngineTest, SourceFilterMatchesUrlOrBareHost) {
  Fixture f;
  int fromUrl = 0;
  int fromHost = 0;
  (void)f.engine.subscribe("jdbc:mock://h1/x", "SELECT * FROM Processor",
                           [&](const StreamDelta&) { ++fromUrl; });
  (void)f.engine.subscribe("h1", "SELECT * FROM Processor",
                           [&](const StreamDelta&) { ++fromHost; });
  f.engine.onRows("jdbc:mock://h1/x", "Processor", processorColumns(),
                  processorRows());
  f.engine.onRows("jdbc:mock://h2/x", "Processor", processorColumns(),
                  processorRows());
  EXPECT_EQ(fromUrl, 1);   // exact URL; h2 excluded
  EXPECT_EQ(fromHost, 1);  // bare host matches the h1 URL only
}

TEST(ContinuousQueryEngineTest, PullModePollDrainsQueue) {
  Fixture f;
  const auto id = f.engine.subscribe("", "SELECT * FROM Processor");
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  f.clock.advance(util::kSecond);
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_EQ(f.engine.queueDepth(id), 2u);

  auto first = f.engine.poll(id, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].sequence, 1u);
  auto rest = f.engine.poll(id);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].sequence, 2u);
  EXPECT_EQ(f.engine.queueDepth(id), 0u);
  EXPECT_EQ(f.engine.stats().deltasDelivered, 2u);
}

TEST(ContinuousQueryEngineTest, DropOldestShedsFromTheFront) {
  Fixture f;
  const auto id = f.engine.subscribe("", "SELECT * FROM Processor", nullptr,
                                     pullOptions(2));
  for (int i = 0; i < 3; ++i) {
    f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  }
  EXPECT_EQ(f.engine.queueDepth(id), 2u);
  auto deltas = f.engine.poll(id);
  ASSERT_EQ(deltas.size(), 2u);
  // Delta #1 was evicted; the sequence gap reveals the drop.
  EXPECT_EQ(deltas[0].sequence, 2u);
  EXPECT_EQ(deltas[1].sequence, 3u);
  const auto stats = f.engine.stats();
  EXPECT_EQ(stats.deltasDropped, 1u);
  EXPECT_EQ(stats.rowsDropped, 2u);
  EXPECT_TRUE(f.engine.isActive(id));
}

TEST(ContinuousQueryEngineTest, CancelSlowConsumerTerminatesSubscription) {
  Fixture f;
  const auto id = f.engine.subscribe(
      "", "SELECT * FROM Processor", nullptr,
      pullOptions(1, OverflowPolicy::CancelSlowConsumer));
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_FALSE(f.engine.isActive(id));
  EXPECT_EQ(f.engine.activeCount(), 0u);
  const auto stats = f.engine.stats();
  EXPECT_EQ(stats.cancelledSlow, 1u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_TRUE(f.engine.poll(id).empty());
}

TEST(ContinuousQueryEngineTest, BlockPolicyWaitsForPoll) {
  Fixture f;
  const auto id = f.engine.subscribe("", "SELECT * FROM Processor", nullptr,
                                     pullOptions(1, OverflowPolicy::Block));
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_EQ(f.engine.queueDepth(id), 1u);

  std::thread producer([&] {
    f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  });
  // The producer is parked on the full queue until a poll frees a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(f.engine.queueDepth(id), 1u);
  auto deltas = f.engine.poll(id, 1);
  producer.join();
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].sequence, 1u);
  EXPECT_EQ(f.engine.queueDepth(id), 1u);  // the blocked delta landed
  EXPECT_EQ(f.engine.stats().deltasDropped, 0u);
}

TEST(ContinuousQueryEngineTest, UnsubscribeReleasesBlockedProducer) {
  Fixture f;
  const auto id = f.engine.subscribe("", "SELECT * FROM Processor", nullptr,
                                     pullOptions(1, OverflowPolicy::Block));
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  std::thread producer([&] {
    f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(f.engine.unsubscribe(id));
  producer.join();  // must not deadlock
  const auto stats = f.engine.stats();
  EXPECT_EQ(stats.deltasDropped, 1u);  // the blocked delta had nowhere to go
  EXPECT_EQ(stats.active, 0u);
}

TEST(ContinuousQueryEngineTest, UnsubscribeStopsDelivery) {
  Fixture f;
  int calls = 0;
  const auto id = f.engine.subscribe("", "SELECT * FROM Processor",
                                     [&](const StreamDelta&) { ++calls; });
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_TRUE(f.engine.unsubscribe(id));
  EXPECT_FALSE(f.engine.unsubscribe(id));
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_EQ(calls, 1);
}

TEST(ContinuousQueryEngineTest, AggregatesAndBadSqlRejected) {
  Fixture f;
  EXPECT_THROW((void)f.engine.subscribe("", "SELECT AVG(Load1) FROM Processor"),
               SqlError);
  EXPECT_THROW((void)f.engine.subscribe(
                   "", "SELECT HostName FROM Processor GROUP BY HostName"),
               SqlError);
  try {
    (void)f.engine.subscribe("", "SELEC nonsense");
    FAIL() << "malformed SQL accepted";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Syntax);
  }
  EXPECT_EQ(f.engine.activeCount(), 0u);
}

TEST(ContinuousQueryEngineTest, EvalErrorSkipsBatchButKeepsSubscription) {
  Fixture f;
  int calls = 0;
  const auto id = f.engine.subscribe("", "SELECT NoSuchColumn FROM Processor",
                                     [&](const StreamDelta&) { ++calls; });
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(f.engine.stats().evalErrors, 1u);
  EXPECT_TRUE(f.engine.isActive(id));
}

TEST(ContinuousQueryEngineTest, ThrowingConsumerDoesNotWedgeEngine) {
  Fixture f;
  int calls = 0;
  (void)f.engine.subscribe("", "SELECT * FROM Processor",
                           [&](const StreamDelta&) {
                             ++calls;
                             throw std::runtime_error("consumer bug");
                           });
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  f.engine.onRows("u", "Processor", processorColumns(), processorRows());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(f.engine.stats().deltasDelivered, 2u);
}

TEST(ContinuousQueryEngineTest, PassiveSubscriptionOnlyFedByInjectDelta) {
  Fixture f;
  std::vector<StreamDelta> received;
  const auto id = f.engine.subscribePassive(
      "relay:jdbc:mock://remote/x",
      [&](const StreamDelta& d) { received.push_back(d); });
  // Passive subscriptions never match harvested batches...
  f.engine.onRows("jdbc:mock://remote/x", "Processor", processorColumns(),
                  processorRows());
  EXPECT_TRUE(received.empty());
  // ...only explicit injection.
  StreamDelta delta;
  delta.sourceUrl = "jdbc:mock://remote/x";
  delta.table = "Processor";
  delta.columns = processorColumns();
  delta.rows = processorRows();
  EXPECT_TRUE(f.engine.injectDelta(id, delta));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].sequence, 1u);  // relabelled locally
  EXPECT_EQ(received[0].rows.size(), 2u);
  EXPECT_FALSE(f.engine.injectDelta(9999, delta));
}

TEST(ContinuousQueryEngineTest, ReplaysNewestHistoryRowsOnSubscribe) {
  util::SimClock clock(0);
  store::Database db;
  db.createTable("HistoryProcessor",
                 {{"Source", ValueType::String, "", "HistoryProcessor"},
                  {"RecordedAt", ValueType::Int, "us", "HistoryProcessor"},
                  {"HostName", ValueType::String, "", "HistoryProcessor"},
                  {"Load1", ValueType::Real, "", "HistoryProcessor"}});
  for (int i = 0; i < 5; ++i) {
    db.insertRow("HistoryProcessor",
                 {Value(std::string("jdbc:mock://h/x")),
                  Value(static_cast<std::int64_t>(i)),
                  Value(std::string("node0" + std::to_string(i))),
                  Value(i < 3 ? 0.9 : 0.1)});
  }
  ContinuousQueryEngine engine(clock, {}, &db);

  StreamOptions options;
  options.replayRows = 2;
  std::vector<StreamDelta> received;
  (void)engine.subscribe(
      "jdbc:mock://h/x", "SELECT * FROM Processor WHERE Load1 > 0.5",
      [&](const StreamDelta& d) { received.push_back(d); }, options);

  // Three history rows match the predicate; only the newest two replay.
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].sourceUrl, "history");
  ASSERT_EQ(received[0].rows.size(), 2u);
  const auto host = received[0].columns.columnIndex("HostName");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(received[0].rows[0][*host].toString(), "node01");
  EXPECT_EQ(received[0].rows[1][*host].toString(), "node02");
  EXPECT_EQ(engine.stats().rowsReplayed, 2u);
}

TEST(ContinuousQueryEngineTest, ReplaySkippedWhenNoHistoryTable) {
  util::SimClock clock(0);
  store::Database db;
  ContinuousQueryEngine engine(clock, {}, &db);
  StreamOptions options;
  options.replayRows = 10;
  const auto id = engine.subscribe("", "SELECT * FROM Processor", nullptr,
                                   options);
  EXPECT_EQ(engine.queueDepth(id), 0u);
  EXPECT_EQ(engine.stats().rowsReplayed, 0u);
}

TEST(ContinuousQueryEngineTest, OverflowPolicyNamesRoundTrip) {
  EXPECT_EQ(overflowPolicyFromName("dropoldest"), OverflowPolicy::DropOldest);
  EXPECT_EQ(overflowPolicyFromName("BLOCK"), OverflowPolicy::Block);
  EXPECT_EQ(overflowPolicyFromName("cancel"),
            OverflowPolicy::CancelSlowConsumer);
  EXPECT_EQ(overflowPolicyFromName("bogus"), std::nullopt);
  for (auto p : {OverflowPolicy::DropOldest, OverflowPolicy::Block,
                 OverflowPolicy::CancelSlowConsumer}) {
    EXPECT_EQ(overflowPolicyFromName(overflowPolicyName(p)), p);
  }
}

}  // namespace
}  // namespace gridrm::stream
