// Vectorized batch engine (sql/vec): the differential battery.
//
// The engine's correctness contract is *byte identity* with the row
// interpreter: for any statement, store::executeSelect (vec-first with
// fallback-by-rerun) must produce the same serialized result -- rows,
// metadata, column names and types -- or throw the same error with the
// same code and message as store::executeSelectInterpreted. The battery
// drives hundreds of generated SELECTs (filters, arithmetic with
// overflow-adjacent literals, deep AND/OR/NOT nesting, GROUP BY
// aggregates, ORDER BY, LIMIT) over generated rows and compares both
// executors verbatim; targeted cases pin the error-parity sites and the
// kBatchRows boundary, and counter tests cover the engine's
// observability surface (vecStatements / vecFallbacks / vecBatches /
// vecRowsScanned / vecRowsFiltered).
#include "gridrm/sql/vec/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "expr_generator.hpp"
#include "gridrm/dbc/result_io.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/sql/vec/column_batch.hpp"
#include "gridrm/store/database.hpp"

namespace gridrm::sql::vec {
namespace {

using dbc::SqlError;
using util::Value;
using util::ValueType;

const std::vector<dbc::ColumnInfo>& tableColumns() {
  static const std::vector<dbc::ColumnInfo> kColumns = {
      {"host", ValueType::String, "", "t"},
      {"cluster", ValueType::String, "", "t"},
      {"load1", ValueType::Real, "", "t"},
      {"load5", ValueType::Real, "", "t"},
      {"cpus", ValueType::Int, "", "t"},
      {"mem", ValueType::Int, "", "t"}};
  return kColumns;
}

std::vector<Value> toRow(std::map<std::string, Value> m) {
  return {m["host"], m["cluster"], m["load1"], m["load5"], m["cpus"],
          m["mem"]};
}

/// Restores the engine toggle even when an assertion throws.
struct EngineGuard {
  bool saved = engineEnabled();
  ~EngineGuard() { setEngineEnabled(saved); }
};

/// Serialized result, or an error marker. SqlError::what() embeds the
/// code name, so string equality covers code + message; a raw EvalError
/// (the interpreter's lazy ORDER BY keys throw it unwrapped) is marked
/// separately so a wrapped/unwrapped mismatch cannot slip through.
std::string runWith(bool vectorized, const SelectStatement& stmt,
                    const std::vector<std::vector<Value>>& rows) {
  EngineGuard guard;
  setEngineEnabled(vectorized);
  try {
    auto rs = vectorized
                  ? store::executeSelect(stmt, tableColumns(), rows)
                  : store::executeSelectInterpreted(stmt, tableColumns(), rows);
    return dbc::serializeResultSet(*rs);
  } catch (const SqlError& e) {
    return std::string("SqlError: ") + e.what();
  } catch (const EvalError& e) {
    return std::string("EvalError: ") + e.what();
  }
}

void expectIdentical(const SelectStatement& stmt,
                     const std::vector<std::vector<Value>>& rows) {
  SCOPED_TRACE("sql=" + stmt.toSql() +
               " rows=" + std::to_string(rows.size()));
  EXPECT_EQ(runWith(true, stmt, rows), runWith(false, stmt, rows));
}

std::vector<std::vector<Value>> genRows(ExprGenerator& gen, std::size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(toRow(gen.genRow()));
  return rows;
}

// ---------------------------------------------------------------------
// The battery: 400 plain + 200 federated-shaped statements. The
// federated generator adds the shapes the vec engine refuses
// (arithmetic over aggregates, aggregate-only ORDER BY, aliases), so
// the second half exercises fallback-by-rerun parity specifically.

TEST(VecEngineBattery, GeneratedStatementsMatchInterpreter) {
  resetEngineStats();
  ExprGenerator gen(20260807u);
  for (int i = 0; i < 400; ++i) {
    const auto rows = genRows(gen, i % 37);
    expectIdentical(gen.genSelect(), rows);
  }
  const VecEngineStats s = engineStats();
  // Every statement is accounted for: it either completed vectorized
  // or fell back to the interpreter, never silently neither.
  EXPECT_EQ(s.vecStatements + s.vecFallbacks, 400u);
  EXPECT_GT(s.vecStatements, 300u);
  EXPECT_GT(s.vecRowsScanned, 0u);
}

TEST(VecEngineBattery, FederatedShapesExerciseFallbackParity) {
  resetEngineStats();
  ExprGenerator gen(0x5eedf00du);
  for (int i = 0; i < 200; ++i) {
    const auto rows = genRows(gen, i % 29);
    expectIdentical(gen.genFederatedSelect(), rows);
  }
  const VecEngineStats s = engineStats();
  EXPECT_EQ(s.vecStatements + s.vecFallbacks, 200u);
  EXPECT_GT(s.vecStatements, 100u);
}

// ---------------------------------------------------------------------
// Batch boundaries: row counts straddling kBatchRows must neither drop
// nor duplicate rows at the seam.

TEST(VecEngineBoundary, RowCountsAroundBatchSize) {
  ASSERT_EQ(kBatchRows, 1024u);
  ExprGenerator gen(7);
  const auto stmt = parseSelect(
      "SELECT load1 + cpus, host FROM t "
      "WHERE cpus % 2 = 0 OR load1 > 4.0 ORDER BY mem, host");
  const auto agg = parseSelect(
      "SELECT cluster, count(*), sum(mem), avg(load1) FROM t "
      "WHERE NOT (cpus = 3) GROUP BY cluster ORDER BY cluster");
  for (std::size_t n : {0u, 1u, 2u, 1023u, 1024u, 1025u, 2048u, 2049u}) {
    const auto rows = genRows(gen, n);
    expectIdentical(stmt, rows);
    expectIdentical(agg, rows);
  }
}

TEST(VecEngineBoundary, BatchCounterTracksSeams) {
  ExprGenerator gen(11);
  const auto stmt = parseSelect("SELECT host FROM t WHERE cpus >= 0");
  const auto rows = genRows(gen, 1025);
  resetEngineStats();
  (void)store::executeSelect(stmt, tableColumns(), rows);
  const VecEngineStats s = engineStats();
  EXPECT_EQ(s.vecStatements, 1u);
  EXPECT_EQ(s.vecBatches, 2u);  // 1024 + 1
  EXPECT_EQ(s.vecRowsScanned, 1025u);
  EXPECT_EQ(s.vecFallbacks, 0u);
}

// ---------------------------------------------------------------------
// Error parity: the data-dependent error sites. Every case must (a)
// actually throw and (b) throw identically through both executors.

void expectIdenticalError(const std::string& sqlText,
                          const std::vector<std::vector<Value>>& rows) {
  const auto stmt = parseSelect(sqlText);
  SCOPED_TRACE("sql=" + sqlText);
  const std::string vec = runWith(true, stmt, rows);
  EXPECT_TRUE(vec.rfind("SqlError", 0) == 0 ||
              vec.rfind("EvalError", 0) == 0)
      << vec;
  EXPECT_EQ(vec, runWith(false, stmt, rows));
}

TEST(VecEngineParity, ErrorSites) {
  ExprGenerator gen(13);
  const auto rows = genRows(gen, 8);
  // Unknown columns in every clause position.
  expectIdenticalError("SELECT nope FROM t", rows);
  expectIdenticalError("SELECT load1 FROM t WHERE nope > 1", rows);
  expectIdenticalError("SELECT load1 + nope FROM t", rows);
  expectIdenticalError("SELECT load1 FROM t ORDER BY nope", rows);
  expectIdenticalError("SELECT cluster, sum(nope) FROM t GROUP BY cluster",
                       rows);
  // Qualifier mismatches resolve (and fail) the same way.
  expectIdenticalError("SELECT wrong.load1 FROM t", rows);
  // Aggregate shape errors.
  expectIdenticalError("SELECT *, count(*) FROM t", rows);
  expectIdenticalError("SELECT sum(host) FROM t", rows);
  expectIdenticalError("SELECT avg(cluster) FROM t", rows);
  expectIdenticalError("SELECT sum(*) FROM t", rows);
  expectIdenticalError("SELECT nosuchfn(load1) FROM t", rows);
  expectIdenticalError("SELECT count(load1, load5) FROM t", rows);
  // Non-numeric arithmetic reached only on some rows.
  expectIdenticalError("SELECT load1 - host FROM t", rows);
}

TEST(VecEngineParity, NonErrorEdgeSemantics) {
  ExprGenerator gen(17);
  const auto rows = genRows(gen, 24);
  for (const char* sqlText : {
           // String concatenation rides the Add operator.
           "SELECT host + cluster FROM t",
           // Division / modulo by zero yield NULL, not an error.
           "SELECT load1 / 0, cpus % 0 FROM t",
           // Overflow promotes to Real mid-column.
           "SELECT mem + 9223372036854775807 FROM t",
           "SELECT cpus * -9223372036854775807 FROM t ORDER BY cpus",
           // Three-valued logic with NULLs on both sides.
           "SELECT host FROM t WHERE (load1 > 2 AND load5 < 3) "
           "OR NOT (cpus IN (1, 2, 3))",
           "SELECT host FROM t WHERE load1 IS NULL OR load5 IS NOT NULL",
           // LIKE against a NULLable string column.
           "SELECT cluster FROM t WHERE host LIKE 'siteA-%'",
           // BETWEEN with a negation.
           "SELECT mem FROM t WHERE cpus NOT BETWEEN 2 AND 5",
           // Aggregates over an all-NULL slice and an empty input.
           "SELECT count(load1), sum(load1), min(load1), max(load1), "
           "avg(load1) FROM t WHERE load1 IS NULL",
           "SELECT count(*), sum(mem) FROM t WHERE 1 = 2",
       }) {
    expectIdentical(parseSelect(sqlText), rows);
  }
}

// ---------------------------------------------------------------------
// Observability and the kill switch.

TEST(VecEngineStatsTest, DisabledEngineLeavesCountersUntouched) {
  EngineGuard guard;
  ExprGenerator gen(19);
  const auto rows = genRows(gen, 64);
  const auto stmt = parseSelect("SELECT host FROM t WHERE cpus > 1");

  setEngineEnabled(false);
  resetEngineStats();
  const std::string off = runWith(false, stmt, rows);
  auto rs = store::executeSelect(stmt, tableColumns(), rows);
  EXPECT_EQ(dbc::serializeResultSet(*rs), off);
  VecEngineStats s = engineStats();
  EXPECT_EQ(s.vecStatements, 0u);
  EXPECT_EQ(s.vecBatches, 0u);

  setEngineEnabled(true);
  (void)store::executeSelect(stmt, tableColumns(), rows);
  s = engineStats();
  EXPECT_EQ(s.vecStatements, 1u);
  EXPECT_EQ(s.vecRowsScanned, 64u);
  const std::size_t kept = dbc::deserializeResultSet(off)->rows().size();
  EXPECT_EQ(s.vecRowsFiltered, s.vecRowsScanned - kept);
}

TEST(VecEngineStatsTest, FallbackIncrementsCounter) {
  ExprGenerator gen(23);
  const auto rows = genRows(gen, 4);
  resetEngineStats();
  // A scalar Call is outside the vec engine's vocabulary: it must
  // fall back, and the interpreter then reports the unknown function.
  const auto stmt = parseSelect("SELECT nosuchfn(load1) FROM t");
  EXPECT_THROW((void)store::executeSelect(stmt, tableColumns(), rows),
               SqlError);
  const VecEngineStats s = engineStats();
  EXPECT_EQ(s.vecStatements, 0u);
  EXPECT_EQ(s.vecFallbacks, 1u);
}

}  // namespace
}  // namespace gridrm::sql::vec
