// Randomised property tests for the SQL engine.
//
// For each seed we generate a random (well-formed) expression tree,
// render it to SQL, reparse it, and check the two trees evaluate to the
// same Value on randomly populated rows -- i.e. toSql() is a faithful,
// precedence-correct rendering and the evaluator is deterministic.
#include <gtest/gtest.h>

#include <map>

#include "expr_generator.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"

namespace gridrm::sql {
namespace {

using util::Value;

Value evalOnRow(const Expr& expr, const std::map<std::string, Value>& row) {
  FnRowAccessor accessor(
      [&](const std::string& name) -> std::optional<Value> {
        auto it = row.find(name);
        if (it == row.end()) return std::nullopt;
        return it->second;
      });
  return evaluate(expr, accessor);
}

class SqlRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlRoundTripProperty, RenderedSqlEvaluatesIdentically) {
  ExprGenerator gen(GetParam());
  for (int round = 0; round < 20; ++round) {
    ExprPtr original = gen.genPredicate(3);
    const std::string rendered =
        "SELECT * FROM t WHERE " + original->toSql();

    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered)) << rendered;
    ASSERT_NE(reparsed.where, nullptr) << rendered;
    // One reparse may normalise literals (e.g. -4 becomes unary-neg 4);
    // after that, rendering must be a fixed point.
    const std::string normalised = reparsed.where->toSql();
    SelectStatement again =
        parseSelect("SELECT * FROM t WHERE " + normalised);
    EXPECT_EQ(again.where->toSql(), normalised) << rendered;

    for (int trial = 0; trial < 10; ++trial) {
      const auto row = gen.genRow();
      Value a;
      Value b;
      bool aThrew = false;
      bool bThrew = false;
      try {
        a = evalOnRow(*original, row);
      } catch (const EvalError&) {
        aThrew = true;
      }
      try {
        b = evalOnRow(*reparsed.where, row);
      } catch (const EvalError&) {
        bThrew = true;
      }
      EXPECT_EQ(aThrew, bThrew) << rendered;
      if (!aThrew && !bThrew) {
        // NaN-safe comparison: render both.
        EXPECT_EQ(a.toString(), b.toString()) << rendered;
      }
    }
  }
}

TEST_P(SqlRoundTripProperty, NumericExpressionsRoundTrip) {
  ExprGenerator gen(GetParam() * 31 + 7);
  for (int round = 0; round < 20; ++round) {
    ExprPtr original = gen.genNumeric(3);
    const std::string rendered = "SELECT " + original->toSql() + " FROM t";
    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered)) << rendered;
    ASSERT_EQ(reparsed.items.size(), 1u);
    const std::string normalised = reparsed.items[0].expr->toSql();
    SelectStatement again = parseSelect("SELECT " + normalised + " FROM t");
    EXPECT_EQ(again.items[0].expr->toSql(), normalised) << rendered;
  }
}

TEST_P(SqlRoundTripProperty, CloneIsDeepAndEquivalent) {
  ExprGenerator gen(GetParam() * 131 + 3);
  for (int round = 0; round < 10; ++round) {
    ExprPtr original = gen.genPredicate(3);
    ExprPtr copy = original->clone();
    EXPECT_EQ(original->toSql(), copy->toSql());
    const auto row = gen.genRow();
    try {
      EXPECT_EQ(evalOnRow(*original, row).toString(),
                evalOnRow(*copy, row).toString());
    } catch (const EvalError&) {
      // Both share structure, so a type error in one implies the other.
      EXPECT_THROW(evalOnRow(*copy, row), EvalError);
    }
  }
}

TEST_P(SqlRoundTripProperty, ClausefulSelectsRoundTripAndExecuteIdentically) {
  const std::uint64_t seed = GetParam() * 977 + 11;
  ExprGenerator gen(seed);
  // A fixed random table the statements execute against.
  const std::vector<dbc::ColumnInfo> columns = {
      {"host", util::ValueType::String, "", "t"},
      {"cluster", util::ValueType::String, "", "t"},
      {"load1", util::ValueType::Real, "", "t"},
      {"load5", util::ValueType::Real, "", "t"},
      {"cpus", util::ValueType::Int, "", "t"},
      {"mem", util::ValueType::Int, "", "t"}};
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 24; ++i) {
    auto m = gen.genRow();
    rows.push_back({m["host"], m["cluster"], m["load1"], m["load5"],
                    m["cpus"], m["mem"]});
  }

  // Run a statement to a textual table (or a thrown-error marker);
  // ORDER BY is a stable sort over identical input order, so equal
  // statements must produce byte-identical output even across ties.
  const auto run = [&](const SelectStatement& stmt) -> std::string {
    try {
      auto rs = store::executeSelect(stmt, columns, rows);
      std::string out;
      for (const auto& c : rs->metaData().columns()) out += c.name + "|";
      out += "\n";
      for (const auto& row : rs->rows()) {
        for (const auto& v : row) out += v.toString() + "|";
        out += "\n";
      }
      return out;
    } catch (const dbc::SqlError& e) {
      return std::string("SqlError: ") + e.what();
    } catch (const EvalError& e) {
      return std::string("EvalError: ") + e.what();
    }
  };

  for (int round = 0; round < 15; ++round) {
    const SelectStatement original = gen.genSelect();
    const std::string rendered = original.toSql();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " sql=" + rendered);

    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered));
    EXPECT_EQ(reparsed.groupBy.size(), original.groupBy.size());
    EXPECT_EQ(reparsed.orderBy.size(), original.orderBy.size());
    EXPECT_EQ(reparsed.limit, original.limit);
    // Rendering is a fixed point after one normalising reparse (the
    // first reparse may shorten float literals and re-parenthesise).
    const std::string normalised = reparsed.toSql();
    SelectStatement again;
    ASSERT_NO_THROW(again = parseSelect(normalised));
    EXPECT_EQ(again.toSql(), normalised);

    // Execution equivalence on the normalised statement: parsing its
    // rendering again must compute a byte-identical table.
    EXPECT_EQ(run(reparsed), run(again));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gridrm::sql
