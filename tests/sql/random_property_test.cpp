// Randomised property tests for the SQL engine.
//
// For each seed we generate a random (well-formed) expression tree,
// render it to SQL, reparse it, and check the two trees evaluate to the
// same Value on randomly populated rows -- i.e. toSql() is a faithful,
// precedence-correct rendering and the evaluator is deterministic.
#include <gtest/gtest.h>

#include <map>

#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::sql {
namespace {

using util::Rng;
using util::Value;

/// Columns the generator may reference, with their type class.
const char* kNumericCols[] = {"load1", "load5", "cpus", "mem"};
const char* kStringCols[] = {"host", "cluster"};

class ExprGenerator {
 public:
  explicit ExprGenerator(std::uint64_t seed) : rng_(seed) {}

  /// A random boolean-valued expression.
  ExprPtr genPredicate(int depth) {
    if (depth <= 0) return genLeafPredicate();
    switch (rng_.below(6)) {
      case 0:
        return Expr::makeBinary(BinOp::And, genPredicate(depth - 1),
                                genPredicate(depth - 1));
      case 1:
        return Expr::makeBinary(BinOp::Or, genPredicate(depth - 1),
                                genPredicate(depth - 1));
      case 2:
        return Expr::makeUnary(UnOp::Not, genPredicate(depth - 1));
      default:
        return genLeafPredicate();
    }
  }

  /// A random numeric-valued expression.
  ExprPtr genNumeric(int depth) {
    if (depth <= 0 || rng_.chance(0.4)) {
      if (rng_.chance(0.5)) {
        return Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]);
      }
      if (rng_.chance(0.5)) {
        return Expr::makeLiteral(
            Value(static_cast<std::int64_t>(rng_.below(20)) - 5));
      }
      return Expr::makeLiteral(Value(rng_.uniform(-2.0, 6.0)));
    }
    static constexpr BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                     BinOp::Div, BinOp::Mod};
    return Expr::makeBinary(kOps[rng_.below(std::size(kOps))],
                            genNumeric(depth - 1), genNumeric(depth - 1));
  }

  /// A random full SELECT with GROUP BY / ORDER BY / LIMIT clauses.
  /// Aggregate-mode statements project only group keys and aggregate
  /// calls (the engine rejects anything else); star/expression mode
  /// stays aggregate-free.
  SelectStatement genSelect() {
    SelectStatement stmt;
    stmt.table = "t";
    if (rng_.chance(0.5)) {
      // Aggregation: 0 keys = one global group.
      const std::size_t keys = rng_.below(3);
      for (std::size_t i = 0; i < keys; ++i) {
        const char* col = kStringCols[rng_.below(std::size(kStringCols))];
        stmt.groupBy.push_back(Expr::makeColumn("", col));
        SelectItem item;
        item.expr = Expr::makeColumn("", col);
        stmt.items.push_back(std::move(item));
      }
      // Lower-case names match the parser's normalisation, so derived
      // column labels survive the round trip byte-identically.
      static const char* kAggs[] = {"count", "sum", "avg", "min", "max"};
      const std::size_t aggs = 1 + rng_.below(2);
      for (std::size_t i = 0; i < aggs; ++i) {
        SelectItem item;
        if (rng_.chance(0.2)) {
          item.expr = Expr::makeCall("count", {}, /*starArg=*/true);
        } else {
          std::vector<ExprPtr> args;
          args.push_back(Expr::makeColumn(
              "", kNumericCols[rng_.below(std::size(kNumericCols))]));
          item.expr = Expr::makeCall(kAggs[rng_.below(std::size(kAggs))],
                                     std::move(args));
        }
        stmt.items.push_back(std::move(item));
      }
    } else if (rng_.chance(0.3)) {
      stmt.items.push_back(SelectItem{});  // SELECT *
    } else {
      const std::size_t n = 1 + rng_.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        SelectItem item;
        item.expr = rng_.chance(0.5)
                        ? Expr::makeColumn("", kNumericCols[rng_.below(
                                                   std::size(kNumericCols))])
                        : genNumeric(2);
        stmt.items.push_back(std::move(item));
      }
    }
    if (rng_.chance(0.6)) stmt.where = genPredicate(2);
    const std::size_t orderKeys = rng_.below(3);
    for (std::size_t i = 0; i < orderKeys; ++i) {
      OrderKey key;
      if (!stmt.items.empty() && !stmt.items[0].isStar() &&
          rng_.chance(0.7)) {
        key.expr = stmt.items[rng_.below(stmt.items.size())].expr->clone();
      } else if (!stmt.groupBy.empty()) {
        key.expr = stmt.groupBy[rng_.below(stmt.groupBy.size())]->clone();
      } else {
        key.expr = Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]);
      }
      key.descending = rng_.chance(0.5);
      stmt.orderBy.push_back(std::move(key));
    }
    if (rng_.chance(0.5)) {
      stmt.limit = static_cast<std::int64_t>(rng_.below(6));
    }
    return stmt;
  }

  std::map<std::string, Value> genRow() {
    std::map<std::string, Value> row;
    for (const char* c : kNumericCols) {
      if (rng_.chance(0.15)) {
        row[c] = Value::null();
      } else if (rng_.chance(0.5)) {
        row[c] = Value(static_cast<std::int64_t>(rng_.below(10)));
      } else {
        row[c] = Value(rng_.uniform(0.0, 8.0));
      }
    }
    static const char* kHosts[] = {"siteA-node00", "siteA-node01",
                                   "siteB-node00", "weird host"};
    for (const char* c : kStringCols) {
      row[c] = rng_.chance(0.1)
                   ? Value::null()
                   : Value(kHosts[rng_.below(std::size(kHosts))]);
    }
    return row;
  }

 private:
  ExprPtr genLeafPredicate() {
    switch (rng_.below(5)) {
      case 0: {  // numeric comparison
        static constexpr BinOp kCmp[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                                         BinOp::Le, BinOp::Gt, BinOp::Ge};
        return Expr::makeBinary(kCmp[rng_.below(std::size(kCmp))],
                                genNumeric(1), genNumeric(1));
      }
      case 1: {  // LIKE
        static const char* kPatterns[] = {"siteA-%", "%node%", "weird_host",
                                          "%", "nomatch"};
        return Expr::makeBinary(
            BinOp::Like,
            Expr::makeColumn("", kStringCols[rng_.below(2)]),
            Expr::makeLiteral(
                Value(kPatterns[rng_.below(std::size(kPatterns))])));
      }
      case 2: {  // IS [NOT] NULL
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::IsNull;
        e->negated = rng_.chance(0.5);
        e->children.push_back(Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]));
        return e;
      }
      case 3: {  // BETWEEN
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Between;
        e->negated = rng_.chance(0.3);
        e->children.push_back(genNumeric(1));
        e->children.push_back(Expr::makeLiteral(
            Value(static_cast<std::int64_t>(rng_.below(4)))));
        e->children.push_back(Expr::makeLiteral(
            Value(static_cast<std::int64_t>(4 + rng_.below(6)))));
        return e;
      }
      default: {  // IN list
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::InList;
        e->negated = rng_.chance(0.3);
        e->children.push_back(Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]));
        const std::size_t n = 1 + rng_.below(4);
        for (std::size_t i = 0; i < n; ++i) {
          e->children.push_back(Expr::makeLiteral(
              Value(static_cast<std::int64_t>(rng_.below(10)))));
        }
        return e;
      }
    }
  }

  Rng rng_;
};

Value evalOnRow(const Expr& expr, const std::map<std::string, Value>& row) {
  FnRowAccessor accessor(
      [&](const std::string& name) -> std::optional<Value> {
        auto it = row.find(name);
        if (it == row.end()) return std::nullopt;
        return it->second;
      });
  return evaluate(expr, accessor);
}

class SqlRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlRoundTripProperty, RenderedSqlEvaluatesIdentically) {
  ExprGenerator gen(GetParam());
  for (int round = 0; round < 20; ++round) {
    ExprPtr original = gen.genPredicate(3);
    const std::string rendered =
        "SELECT * FROM t WHERE " + original->toSql();

    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered)) << rendered;
    ASSERT_NE(reparsed.where, nullptr) << rendered;
    // One reparse may normalise literals (e.g. -4 becomes unary-neg 4);
    // after that, rendering must be a fixed point.
    const std::string normalised = reparsed.where->toSql();
    SelectStatement again =
        parseSelect("SELECT * FROM t WHERE " + normalised);
    EXPECT_EQ(again.where->toSql(), normalised) << rendered;

    for (int trial = 0; trial < 10; ++trial) {
      const auto row = gen.genRow();
      Value a;
      Value b;
      bool aThrew = false;
      bool bThrew = false;
      try {
        a = evalOnRow(*original, row);
      } catch (const EvalError&) {
        aThrew = true;
      }
      try {
        b = evalOnRow(*reparsed.where, row);
      } catch (const EvalError&) {
        bThrew = true;
      }
      EXPECT_EQ(aThrew, bThrew) << rendered;
      if (!aThrew && !bThrew) {
        // NaN-safe comparison: render both.
        EXPECT_EQ(a.toString(), b.toString()) << rendered;
      }
    }
  }
}

TEST_P(SqlRoundTripProperty, NumericExpressionsRoundTrip) {
  ExprGenerator gen(GetParam() * 31 + 7);
  for (int round = 0; round < 20; ++round) {
    ExprPtr original = gen.genNumeric(3);
    const std::string rendered = "SELECT " + original->toSql() + " FROM t";
    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered)) << rendered;
    ASSERT_EQ(reparsed.items.size(), 1u);
    const std::string normalised = reparsed.items[0].expr->toSql();
    SelectStatement again = parseSelect("SELECT " + normalised + " FROM t");
    EXPECT_EQ(again.items[0].expr->toSql(), normalised) << rendered;
  }
}

TEST_P(SqlRoundTripProperty, CloneIsDeepAndEquivalent) {
  ExprGenerator gen(GetParam() * 131 + 3);
  for (int round = 0; round < 10; ++round) {
    ExprPtr original = gen.genPredicate(3);
    ExprPtr copy = original->clone();
    EXPECT_EQ(original->toSql(), copy->toSql());
    const auto row = gen.genRow();
    try {
      EXPECT_EQ(evalOnRow(*original, row).toString(),
                evalOnRow(*copy, row).toString());
    } catch (const EvalError&) {
      // Both share structure, so a type error in one implies the other.
      EXPECT_THROW(evalOnRow(*copy, row), EvalError);
    }
  }
}

TEST_P(SqlRoundTripProperty, ClausefulSelectsRoundTripAndExecuteIdentically) {
  const std::uint64_t seed = GetParam() * 977 + 11;
  ExprGenerator gen(seed);
  // A fixed random table the statements execute against.
  const std::vector<dbc::ColumnInfo> columns = {
      {"host", util::ValueType::String, "", "t"},
      {"cluster", util::ValueType::String, "", "t"},
      {"load1", util::ValueType::Real, "", "t"},
      {"load5", util::ValueType::Real, "", "t"},
      {"cpus", util::ValueType::Int, "", "t"},
      {"mem", util::ValueType::Int, "", "t"}};
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 24; ++i) {
    auto m = gen.genRow();
    rows.push_back({m["host"], m["cluster"], m["load1"], m["load5"],
                    m["cpus"], m["mem"]});
  }

  // Run a statement to a textual table (or a thrown-error marker);
  // ORDER BY is a stable sort over identical input order, so equal
  // statements must produce byte-identical output even across ties.
  const auto run = [&](const SelectStatement& stmt) -> std::string {
    try {
      auto rs = store::executeSelect(stmt, columns, rows);
      std::string out;
      for (const auto& c : rs->metaData().columns()) out += c.name + "|";
      out += "\n";
      for (const auto& row : rs->rows()) {
        for (const auto& v : row) out += v.toString() + "|";
        out += "\n";
      }
      return out;
    } catch (const dbc::SqlError& e) {
      return std::string("SqlError: ") + e.what();
    } catch (const EvalError& e) {
      return std::string("EvalError: ") + e.what();
    }
  };

  for (int round = 0; round < 15; ++round) {
    const SelectStatement original = gen.genSelect();
    const std::string rendered = original.toSql();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " sql=" + rendered);

    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered));
    EXPECT_EQ(reparsed.groupBy.size(), original.groupBy.size());
    EXPECT_EQ(reparsed.orderBy.size(), original.orderBy.size());
    EXPECT_EQ(reparsed.limit, original.limit);
    // Rendering is a fixed point after one normalising reparse (the
    // first reparse may shorten float literals and re-parenthesise).
    const std::string normalised = reparsed.toSql();
    SelectStatement again;
    ASSERT_NO_THROW(again = parseSelect(normalised));
    EXPECT_EQ(again.toSql(), normalised);

    // Execution equivalence on the normalised statement: parsing its
    // rendering again must compute a byte-identical table.
    EXPECT_EQ(run(reparsed), run(again));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gridrm::sql
