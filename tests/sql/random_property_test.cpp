// Randomised property tests for the SQL engine.
//
// For each seed we generate a random (well-formed) expression tree,
// render it to SQL, reparse it, and check the two trees evaluate to the
// same Value on randomly populated rows -- i.e. toSql() is a faithful,
// precedence-correct rendering and the evaluator is deterministic.
#include <gtest/gtest.h>

#include <map>

#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::sql {
namespace {

using util::Rng;
using util::Value;

/// Columns the generator may reference, with their type class.
const char* kNumericCols[] = {"load1", "load5", "cpus", "mem"};
const char* kStringCols[] = {"host", "cluster"};

class ExprGenerator {
 public:
  explicit ExprGenerator(std::uint64_t seed) : rng_(seed) {}

  /// A random boolean-valued expression.
  ExprPtr genPredicate(int depth) {
    if (depth <= 0) return genLeafPredicate();
    switch (rng_.below(6)) {
      case 0:
        return Expr::makeBinary(BinOp::And, genPredicate(depth - 1),
                                genPredicate(depth - 1));
      case 1:
        return Expr::makeBinary(BinOp::Or, genPredicate(depth - 1),
                                genPredicate(depth - 1));
      case 2:
        return Expr::makeUnary(UnOp::Not, genPredicate(depth - 1));
      default:
        return genLeafPredicate();
    }
  }

  /// A random numeric-valued expression.
  ExprPtr genNumeric(int depth) {
    if (depth <= 0 || rng_.chance(0.4)) {
      if (rng_.chance(0.5)) {
        return Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]);
      }
      if (rng_.chance(0.5)) {
        return Expr::makeLiteral(
            Value(static_cast<std::int64_t>(rng_.below(20)) - 5));
      }
      return Expr::makeLiteral(Value(rng_.uniform(-2.0, 6.0)));
    }
    static constexpr BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                     BinOp::Div, BinOp::Mod};
    return Expr::makeBinary(kOps[rng_.below(std::size(kOps))],
                            genNumeric(depth - 1), genNumeric(depth - 1));
  }

  std::map<std::string, Value> genRow() {
    std::map<std::string, Value> row;
    for (const char* c : kNumericCols) {
      if (rng_.chance(0.15)) {
        row[c] = Value::null();
      } else if (rng_.chance(0.5)) {
        row[c] = Value(static_cast<std::int64_t>(rng_.below(10)));
      } else {
        row[c] = Value(rng_.uniform(0.0, 8.0));
      }
    }
    static const char* kHosts[] = {"siteA-node00", "siteA-node01",
                                   "siteB-node00", "weird host"};
    for (const char* c : kStringCols) {
      row[c] = rng_.chance(0.1)
                   ? Value::null()
                   : Value(kHosts[rng_.below(std::size(kHosts))]);
    }
    return row;
  }

 private:
  ExprPtr genLeafPredicate() {
    switch (rng_.below(5)) {
      case 0: {  // numeric comparison
        static constexpr BinOp kCmp[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                                         BinOp::Le, BinOp::Gt, BinOp::Ge};
        return Expr::makeBinary(kCmp[rng_.below(std::size(kCmp))],
                                genNumeric(1), genNumeric(1));
      }
      case 1: {  // LIKE
        static const char* kPatterns[] = {"siteA-%", "%node%", "weird_host",
                                          "%", "nomatch"};
        return Expr::makeBinary(
            BinOp::Like,
            Expr::makeColumn("", kStringCols[rng_.below(2)]),
            Expr::makeLiteral(
                Value(kPatterns[rng_.below(std::size(kPatterns))])));
      }
      case 2: {  // IS [NOT] NULL
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::IsNull;
        e->negated = rng_.chance(0.5);
        e->children.push_back(Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]));
        return e;
      }
      case 3: {  // BETWEEN
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Between;
        e->negated = rng_.chance(0.3);
        e->children.push_back(genNumeric(1));
        e->children.push_back(Expr::makeLiteral(
            Value(static_cast<std::int64_t>(rng_.below(4)))));
        e->children.push_back(Expr::makeLiteral(
            Value(static_cast<std::int64_t>(4 + rng_.below(6)))));
        return e;
      }
      default: {  // IN list
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::InList;
        e->negated = rng_.chance(0.3);
        e->children.push_back(Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]));
        const std::size_t n = 1 + rng_.below(4);
        for (std::size_t i = 0; i < n; ++i) {
          e->children.push_back(Expr::makeLiteral(
              Value(static_cast<std::int64_t>(rng_.below(10)))));
        }
        return e;
      }
    }
  }

  Rng rng_;
};

Value evalOnRow(const Expr& expr, const std::map<std::string, Value>& row) {
  FnRowAccessor accessor(
      [&](const std::string& name) -> std::optional<Value> {
        auto it = row.find(name);
        if (it == row.end()) return std::nullopt;
        return it->second;
      });
  return evaluate(expr, accessor);
}

class SqlRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlRoundTripProperty, RenderedSqlEvaluatesIdentically) {
  ExprGenerator gen(GetParam());
  for (int round = 0; round < 20; ++round) {
    ExprPtr original = gen.genPredicate(3);
    const std::string rendered =
        "SELECT * FROM t WHERE " + original->toSql();

    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered)) << rendered;
    ASSERT_NE(reparsed.where, nullptr) << rendered;
    // One reparse may normalise literals (e.g. -4 becomes unary-neg 4);
    // after that, rendering must be a fixed point.
    const std::string normalised = reparsed.where->toSql();
    SelectStatement again =
        parseSelect("SELECT * FROM t WHERE " + normalised);
    EXPECT_EQ(again.where->toSql(), normalised) << rendered;

    for (int trial = 0; trial < 10; ++trial) {
      const auto row = gen.genRow();
      Value a;
      Value b;
      bool aThrew = false;
      bool bThrew = false;
      try {
        a = evalOnRow(*original, row);
      } catch (const EvalError&) {
        aThrew = true;
      }
      try {
        b = evalOnRow(*reparsed.where, row);
      } catch (const EvalError&) {
        bThrew = true;
      }
      EXPECT_EQ(aThrew, bThrew) << rendered;
      if (!aThrew && !bThrew) {
        // NaN-safe comparison: render both.
        EXPECT_EQ(a.toString(), b.toString()) << rendered;
      }
    }
  }
}

TEST_P(SqlRoundTripProperty, NumericExpressionsRoundTrip) {
  ExprGenerator gen(GetParam() * 31 + 7);
  for (int round = 0; round < 20; ++round) {
    ExprPtr original = gen.genNumeric(3);
    const std::string rendered = "SELECT " + original->toSql() + " FROM t";
    SelectStatement reparsed;
    ASSERT_NO_THROW(reparsed = parseSelect(rendered)) << rendered;
    ASSERT_EQ(reparsed.items.size(), 1u);
    const std::string normalised = reparsed.items[0].expr->toSql();
    SelectStatement again = parseSelect("SELECT " + normalised + " FROM t");
    EXPECT_EQ(again.items[0].expr->toSql(), normalised) << rendered;
  }
}

TEST_P(SqlRoundTripProperty, CloneIsDeepAndEquivalent) {
  ExprGenerator gen(GetParam() * 131 + 3);
  for (int round = 0; round < 10; ++round) {
    ExprPtr original = gen.genPredicate(3);
    ExprPtr copy = original->clone();
    EXPECT_EQ(original->toSql(), copy->toSql());
    const auto row = gen.genRow();
    try {
      EXPECT_EQ(evalOnRow(*original, row).toString(),
                evalOnRow(*copy, row).toString());
    } catch (const EvalError&) {
      // Both share structure, so a type error in one implies the other.
      EXPECT_THROW(evalOnRow(*copy, row), EvalError);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gridrm::sql
