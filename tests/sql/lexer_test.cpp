#include "gridrm/sql/lexer.hpp"

#include <gtest/gtest.h>

namespace gridrm::sql {
namespace {

std::vector<TokenType> typesOf(const std::string& text) {
  std::vector<TokenType> out;
  for (const auto& t : lex(text)) out.push_back(t.type);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::End);
}

TEST(LexerTest, SimpleSelect) {
  auto tokens = lex("SELECT * FROM Processor");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::Identifier);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::Star);
  EXPECT_EQ(tokens[2].text, "FROM");
  EXPECT_EQ(tokens[3].text, "Processor");
  EXPECT_EQ(tokens[4].type, TokenType::End);
}

TEST(LexerTest, Numbers) {
  auto tokens = lex("1 42 3.5 .25 1e3 2.5E-2");
  EXPECT_EQ(tokens[0].type, TokenType::Integer);
  EXPECT_EQ(tokens[1].type, TokenType::Integer);
  EXPECT_EQ(tokens[2].type, TokenType::Real);
  EXPECT_EQ(tokens[3].type, TokenType::Real);
  EXPECT_EQ(tokens[4].type, TokenType::Real);
  EXPECT_EQ(tokens[5].type, TokenType::Real);
  EXPECT_EQ(tokens[5].text, "2.5E-2");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::String);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(typesOf("= != <> < <= > >= + - / % ( ) , . *"),
            (std::vector<TokenType>{
                TokenType::Eq, TokenType::Ne, TokenType::Ne, TokenType::Lt,
                TokenType::Le, TokenType::Gt, TokenType::Ge, TokenType::Plus,
                TokenType::Minus, TokenType::Slash, TokenType::Percent,
                TokenType::LParen, TokenType::RParen, TokenType::Comma,
                TokenType::Dot, TokenType::Star, TokenType::End}));
}

TEST(LexerTest, DotBetweenIdentifiers) {
  auto tokens = lex("t.col");
  EXPECT_EQ(tokens[0].text, "t");
  EXPECT_EQ(tokens[1].type, TokenType::Dot);
  EXPECT_EQ(tokens[2].text, "col");
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = lex("ab  cd");
  EXPECT_EQ(tokens[0].pos, 0u);
  EXPECT_EQ(tokens[1].pos, 4u);
}

TEST(LexerTest, Errors) {
  EXPECT_THROW(lex("'unterminated"), ParseError);
  EXPECT_THROW(lex("a ! b"), ParseError);
  EXPECT_THROW(lex("a # b"), ParseError);
}

TEST(LexerTest, IdentifiersWithUnderscores) {
  auto tokens = lex("_x a_b c9");
  EXPECT_EQ(tokens[0].text, "_x");
  EXPECT_EQ(tokens[1].text, "a_b");
  EXPECT_EQ(tokens[2].text, "c9");
}

}  // namespace
}  // namespace gridrm::sql
