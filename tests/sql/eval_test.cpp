#include "gridrm/sql/eval.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>

#include "gridrm/sql/parser.hpp"

namespace gridrm::sql {
namespace {

using util::Value;

/// Evaluate the WHERE clause of "SELECT * FROM t WHERE <cond>" against
/// a row given as name->Value.
Value evalCond(const std::string& cond,
               const std::map<std::string, Value>& row) {
  SelectStatement s = parseSelect("SELECT * FROM t WHERE " + cond);
  FnRowAccessor accessor([&](const std::string& name) -> std::optional<Value> {
    auto it = row.find(name);
    if (it == row.end()) return std::nullopt;
    return it->second;
  });
  return evaluate(*s.where, accessor);
}

bool predCond(const std::string& cond,
              const std::map<std::string, Value>& row) {
  SelectStatement s = parseSelect("SELECT * FROM t WHERE " + cond);
  FnRowAccessor accessor([&](const std::string& name) -> std::optional<Value> {
    auto it = row.find(name);
    if (it == row.end()) return std::nullopt;
    return it->second;
  });
  return evaluatePredicate(*s.where, accessor);
}

TEST(EvalTest, Comparisons) {
  std::map<std::string, Value> row{{"x", Value(5)}, {"y", Value(2.5)}};
  EXPECT_TRUE(predCond("x = 5", row));
  EXPECT_TRUE(predCond("x != 4", row));
  EXPECT_TRUE(predCond("x > 4", row));
  EXPECT_TRUE(predCond("x >= 5", row));
  EXPECT_TRUE(predCond("x < 6", row));
  EXPECT_TRUE(predCond("x <= 5", row));
  EXPECT_FALSE(predCond("x < 5", row));
  EXPECT_TRUE(predCond("y = 2.5", row));
  EXPECT_TRUE(predCond("x > y", row));  // cross-type numeric
}

TEST(EvalTest, Arithmetic) {
  std::map<std::string, Value> row{{"a", Value(7)}, {"b", Value(2)}};
  EXPECT_EQ(evalCond("a + b", row).asInt(), 9);
  EXPECT_EQ(evalCond("a - b", row).asInt(), 5);
  EXPECT_EQ(evalCond("a * b", row).asInt(), 14);
  EXPECT_EQ(evalCond("a / b", row).asInt(), 3);  // integer division
  EXPECT_EQ(evalCond("a % b", row).asInt(), 1);
  EXPECT_DOUBLE_EQ(evalCond("a / 2.0", row).asReal(), 3.5);
}

TEST(EvalTest, DivisionByZeroIsNull) {
  std::map<std::string, Value> row{{"a", Value(7)}};
  EXPECT_TRUE(evalCond("a / 0", row).isNull());
  EXPECT_TRUE(evalCond("a % 0", row).isNull());
  EXPECT_TRUE(evalCond("a / 0.0", row).isNull());
}

// Int64 arithmetic at the representability edge promotes to Real
// instead of wrapping (or worse, tripping signed-overflow UB -- the
// UBSan CI job pins that). The promoted doubles are the mathematically
// nearest representables, so exact EXPECT_EQ comparisons hold.
TEST(EvalTest, OverflowPromotesToReal) {
  std::map<std::string, Value> row{
      {"big", Value(std::numeric_limits<std::int64_t>::max())},
      {"small", Value(std::numeric_limits<std::int64_t>::min())}};
  const Value addOver = evalCond("big + 1", row);
  ASSERT_EQ(addOver.type(), util::ValueType::Real);
  EXPECT_EQ(addOver.asReal(), 9223372036854775808.0);
  // The promoted value is computed in double, where -2^63 - 1 rounds
  // back to -2^63: the point is the *type* flips without UB, not that
  // doubles gain precision int64 lacks.
  const Value subOver = evalCond("small - 1", row);
  ASSERT_EQ(subOver.type(), util::ValueType::Real);
  EXPECT_EQ(subOver.asReal(), -9223372036854775808.0);
  const Value mulOver = evalCond("big * 2", row);
  ASSERT_EQ(mulOver.type(), util::ValueType::Real);
  EXPECT_EQ(mulOver.asReal(), 18446744073709551616.0);
  // In-range results stay exact Ints right up to the edge.
  const Value edge = evalCond("big + 0", row);
  ASSERT_EQ(edge.type(), util::ValueType::Int);
  EXPECT_EQ(edge.asInt(), std::numeric_limits<std::int64_t>::max());
}

TEST(EvalTest, Int64MinEdgeCases) {
  std::map<std::string, Value> row{
      {"small", Value(std::numeric_limits<std::int64_t>::min())}};
  // INT64_MIN / -1 is the one division that overflows: promote.
  const Value div = evalCond("small / -1", row);
  ASSERT_EQ(div.type(), util::ValueType::Real);
  EXPECT_EQ(div.asReal(), 9223372036854775808.0);
  // INT64_MIN % -1 is mathematically 0; the hardware would trap.
  const Value mod = evalCond("small % -1", row);
  ASSERT_EQ(mod.type(), util::ValueType::Int);
  EXPECT_EQ(mod.asInt(), 0);
  // Unary negation of INT64_MIN promotes too.
  const Value neg = evalCond("-small", row);
  ASSERT_EQ(neg.type(), util::ValueType::Real);
  EXPECT_EQ(neg.asReal(), 9223372036854775808.0);
}

TEST(EvalTest, StringConcatenation) {
  std::map<std::string, Value> row{{"s", Value("ab")}};
  EXPECT_EQ(evalCond("s + 'cd'", row).asString(), "abcd");
}

TEST(EvalTest, NullPropagation) {
  std::map<std::string, Value> row{{"n", Value::null()}, {"x", Value(1)}};
  EXPECT_TRUE(evalCond("n = 1", row).isNull());
  EXPECT_TRUE(evalCond("n + 1", row).isNull());
  EXPECT_TRUE(evalCond("n > x", row).isNull());
  EXPECT_FALSE(predCond("n = 1", row));  // NULL predicate excludes the row
}

TEST(EvalTest, ThreeValuedAndOr) {
  std::map<std::string, Value> row{{"n", Value::null()}, {"x", Value(1)}};
  // false AND NULL = false; true AND NULL = NULL
  EXPECT_FALSE(evalCond("x = 2 AND n = 1", row).toBool());
  EXPECT_FALSE(evalCond("x = 2 AND n = 1", row).isNull());
  EXPECT_TRUE(evalCond("x = 1 AND n = 1", row).isNull());
  // true OR NULL = true; false OR NULL = NULL
  EXPECT_TRUE(evalCond("x = 1 OR n = 1", row).toBool());
  EXPECT_TRUE(evalCond("x = 2 OR n = 1", row).isNull());
}

TEST(EvalTest, NotAndNegation) {
  std::map<std::string, Value> row{{"x", Value(5)}};
  EXPECT_TRUE(predCond("NOT x = 4", row));
  EXPECT_FALSE(predCond("NOT x = 5", row));
  EXPECT_EQ(evalCond("-x", row).asInt(), -5);
}

TEST(EvalTest, InList) {
  std::map<std::string, Value> row{{"x", Value(2)}, {"n", Value::null()}};
  EXPECT_TRUE(predCond("x IN (1, 2, 3)", row));
  EXPECT_FALSE(predCond("x IN (4, 5)", row));
  EXPECT_TRUE(predCond("x NOT IN (4, 5)", row));
  EXPECT_FALSE(predCond("x NOT IN (1, 2)", row));
  // NULL needle -> NULL; list containing NULL and no match -> NULL.
  EXPECT_TRUE(evalCond("n IN (1)", row).isNull());
  EXPECT_TRUE(evalCond("x IN (4, NULL)", row).isNull());
  EXPECT_TRUE(predCond("x IN (2, NULL)", row));  // match wins over NULL
}

TEST(EvalTest, IsNull) {
  std::map<std::string, Value> row{{"n", Value::null()}, {"x", Value(1)}};
  EXPECT_TRUE(predCond("n IS NULL", row));
  EXPECT_FALSE(predCond("x IS NULL", row));
  EXPECT_TRUE(predCond("x IS NOT NULL", row));
  EXPECT_FALSE(predCond("n IS NOT NULL", row));
}

TEST(EvalTest, Between) {
  std::map<std::string, Value> row{{"x", Value(5)}};
  EXPECT_TRUE(predCond("x BETWEEN 1 AND 5", row));  // inclusive
  EXPECT_TRUE(predCond("x BETWEEN 5 AND 9", row));
  EXPECT_FALSE(predCond("x BETWEEN 6 AND 9", row));
  EXPECT_TRUE(predCond("x NOT BETWEEN 6 AND 9", row));
}

TEST(EvalTest, UnknownColumnThrows) {
  std::map<std::string, Value> row;
  EXPECT_THROW(evalCond("missing = 1", row), EvalError);
}

TEST(EvalTest, ArithmeticOnStringsThrows) {
  std::map<std::string, Value> row{{"s", Value("x")}};
  EXPECT_THROW(evalCond("s * 2", row), EvalError);
}

// --- LIKE pattern matching ---------------------------------------------

struct LikeCase {
  const char* text;
  const char* pattern;
  bool expected;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(likeMatch(c.text, c.pattern), c.expected)
      << "'" << c.text << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LikeMatchTest,
    ::testing::Values(
        LikeCase{"node01", "node%", true},
        LikeCase{"node01", "%01", true},
        LikeCase{"node01", "n%1", true},
        LikeCase{"node01", "node0_", true},
        LikeCase{"node01", "node0", false},
        LikeCase{"node01", "_ode01", true},
        LikeCase{"node01", "%", true},
        LikeCase{"", "%", true},
        LikeCase{"", "_", false},
        LikeCase{"abc", "abc", true},
        LikeCase{"abc", "ABC", false},  // LIKE is case-sensitive here
        LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"ac", "a%b%c", false},
        LikeCase{"anything", "%%", true},
        LikeCase{"ab", "a_b", false}));

TEST(EvalTest, LikeInQueries) {
  std::map<std::string, Value> row{{"name", Value("siteA-node03")}};
  EXPECT_TRUE(predCond("name LIKE 'siteA-%'", row));
  EXPECT_FALSE(predCond("name LIKE 'siteB-%'", row));
  EXPECT_TRUE(predCond("name NOT LIKE 'siteB-%'", row));
}

}  // namespace
}  // namespace gridrm::sql
