#include "gridrm/sql/parser.hpp"

#include <gtest/gtest.h>

namespace gridrm::sql {
namespace {

TEST(ParserTest, SelectStar) {
  SelectStatement s = parseSelect("SELECT * FROM Processor");
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.items[0].isStar());
  EXPECT_EQ(s.table, "Processor");
  EXPECT_EQ(s.where, nullptr);
  EXPECT_TRUE(s.orderBy.empty());
  EXPECT_FALSE(s.limit.has_value());
}

TEST(ParserTest, SelectColumnsWithAliases) {
  SelectStatement s =
      parseSelect("SELECT Load1 AS l1, Load5 FROM Processor p");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->name, "Load1");
  EXPECT_EQ(s.items[0].alias, "l1");
  EXPECT_EQ(s.items[1].expr->name, "Load5");
  EXPECT_EQ(s.tableAlias, "p");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  SelectStatement s = parseSelect("select load1 from processor where load1 > 1");
  EXPECT_EQ(s.table, "processor");
  ASSERT_NE(s.where, nullptr);
}

TEST(ParserTest, WherePrecedence) {
  // a OR b AND c  parses as  a OR (b AND c)
  SelectStatement s = parseSelect(
      "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->bop, BinOp::Or);
  EXPECT_EQ(s.where->children[1]->bop, BinOp::And);
}

TEST(ParserTest, ArithmeticPrecedence) {
  // a + b * c  parses as  a + (b * c)
  SelectStatement s = parseSelect("SELECT a + b * c FROM t");
  const Expr& e = *s.items[0].expr;
  EXPECT_EQ(e.bop, BinOp::Add);
  EXPECT_EQ(e.children[1]->bop, BinOp::Mul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  SelectStatement s = parseSelect("SELECT (a + b) * c FROM t");
  const Expr& e = *s.items[0].expr;
  EXPECT_EQ(e.bop, BinOp::Mul);
  EXPECT_EQ(e.children[0]->bop, BinOp::Add);
}

TEST(ParserTest, ComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    SelectStatement s =
        parseSelect(std::string("SELECT * FROM t WHERE a ") + op + " 1");
    ASSERT_NE(s.where, nullptr) << op;
    EXPECT_EQ(s.where->kind, ExprKind::Binary);
  }
}

TEST(ParserTest, LikeAndNotLike) {
  SelectStatement s =
      parseSelect("SELECT * FROM t WHERE name LIKE 'node%'");
  EXPECT_EQ(s.where->bop, BinOp::Like);
  SelectStatement n =
      parseSelect("SELECT * FROM t WHERE name NOT LIKE 'node%'");
  EXPECT_EQ(n.where->kind, ExprKind::Unary);
}

TEST(ParserTest, InList) {
  SelectStatement s =
      parseSelect("SELECT * FROM t WHERE x IN (1, 2, 3)");
  EXPECT_EQ(s.where->kind, ExprKind::InList);
  EXPECT_EQ(s.where->children.size(), 4u);  // needle + 3
  EXPECT_FALSE(s.where->negated);
  SelectStatement n = parseSelect("SELECT * FROM t WHERE x NOT IN (1)");
  EXPECT_TRUE(n.where->negated);
}

TEST(ParserTest, IsNull) {
  SelectStatement s = parseSelect("SELECT * FROM t WHERE x IS NULL");
  EXPECT_EQ(s.where->kind, ExprKind::IsNull);
  EXPECT_FALSE(s.where->negated);
  SelectStatement n = parseSelect("SELECT * FROM t WHERE x IS NOT NULL");
  EXPECT_TRUE(n.where->negated);
}

TEST(ParserTest, Between) {
  SelectStatement s =
      parseSelect("SELECT * FROM t WHERE x BETWEEN 1 AND 5");
  EXPECT_EQ(s.where->kind, ExprKind::Between);
  EXPECT_EQ(s.where->children.size(), 3u);
  SelectStatement n =
      parseSelect("SELECT * FROM t WHERE x NOT BETWEEN 1 AND 5");
  EXPECT_TRUE(n.where->negated);
}

TEST(ParserTest, BetweenBindsTighterThanAnd) {
  SelectStatement s = parseSelect(
      "SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND y = 2");
  EXPECT_EQ(s.where->bop, BinOp::And);
  EXPECT_EQ(s.where->children[0]->kind, ExprKind::Between);
}

TEST(ParserTest, OrderByMulti) {
  SelectStatement s = parseSelect(
      "SELECT * FROM t ORDER BY a DESC, b ASC, c");
  ASSERT_EQ(s.orderBy.size(), 3u);
  EXPECT_TRUE(s.orderBy[0].descending);
  EXPECT_FALSE(s.orderBy[1].descending);
  EXPECT_FALSE(s.orderBy[2].descending);
}

TEST(ParserTest, Limit) {
  SelectStatement s = parseSelect("SELECT * FROM t LIMIT 10");
  EXPECT_EQ(s.limit, 10);
}

TEST(ParserTest, QualifiedColumns) {
  SelectStatement s = parseSelect("SELECT p.Load1 FROM Processor p");
  EXPECT_EQ(s.items[0].expr->table, "p");
  EXPECT_EQ(s.items[0].expr->name, "Load1");
}

TEST(ParserTest, LiteralKinds) {
  SelectStatement s = parseSelect(
      "SELECT * FROM t WHERE a = 'str' AND b = 1.5 AND c = TRUE AND d IS NULL");
  ASSERT_NE(s.where, nullptr);
}

TEST(ParserTest, NegativeNumbersInExpressions) {
  SelectStatement s = parseSelect("SELECT * FROM t WHERE a > -5");
  EXPECT_EQ(s.where->children[1]->kind, ExprKind::Unary);
}

TEST(ParserTest, InsertBasic) {
  Statement stmt = parse("INSERT INTO t VALUES (1, 'x', 2.5, NULL, TRUE)");
  ASSERT_EQ(stmt.kind, StatementKind::Insert);
  const InsertStatement& ins = stmt.insert;
  EXPECT_EQ(ins.table, "t");
  EXPECT_TRUE(ins.columns.empty());
  ASSERT_EQ(ins.rows.size(), 1u);
  ASSERT_EQ(ins.rows[0].size(), 5u);
  EXPECT_EQ(ins.rows[0][0].asInt(), 1);
  EXPECT_EQ(ins.rows[0][1].asString(), "x");
  EXPECT_DOUBLE_EQ(ins.rows[0][2].asReal(), 2.5);
  EXPECT_TRUE(ins.rows[0][3].isNull());
  EXPECT_TRUE(ins.rows[0][4].asBool());
}

TEST(ParserTest, InsertWithColumnsAndMultipleRows) {
  Statement stmt =
      parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (-5, 6)");
  const InsertStatement& ins = stmt.insert;
  EXPECT_EQ(ins.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(ins.rows.size(), 3u);
  EXPECT_EQ(ins.rows[2][0].asInt(), -5);
}

TEST(ParserTest, Errors) {
  EXPECT_THROW(parseSelect(""), ParseError);
  EXPECT_THROW(parseSelect("SELECT"), ParseError);
  EXPECT_THROW(parseSelect("SELECT * FROM"), ParseError);
  EXPECT_THROW(parseSelect("SELECT * FROM t WHERE"), ParseError);
  EXPECT_THROW(parseSelect("SELECT * FROM t garbage extra"), ParseError);
  EXPECT_THROW(parseSelect("UPDATE t SET x = 1"), ParseError);
  EXPECT_THROW(parseSelect("SELECT * FROM t LIMIT x"), ParseError);
  EXPECT_THROW(parse("INSERT INTO t (a) VALUES (1, 2)"), ParseError);
  EXPECT_THROW(parse("INSERT INTO t VALUES (b)"), ParseError);
  EXPECT_THROW(parseSelect("SELECT * FROM SELECT"), ParseError);
}

// --- round-trip property: parse(toSql(parse(q))) == structure ---------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ToSqlReparsesToSameText) {
  Statement first = parse(GetParam());
  const std::string rendered = first.toSql();
  Statement second = parse(rendered);
  // Fixed point: rendering the reparsed statement must be identical.
  EXPECT_EQ(second.toSql(), rendered) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "SELECT * FROM Processor",
        "SELECT Load1 FROM Processor",
        "SELECT Load1 AS l, Load5 FROM Processor AS p",
        "SELECT * FROM Memory WHERE RAMAvailable < 512",
        "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3",
        "SELECT * FROM t WHERE NOT a = 1",
        "SELECT * FROM t WHERE name LIKE 'node%'",
        "SELECT * FROM t WHERE x IN (1, 2, 3)",
        "SELECT * FROM t WHERE x NOT IN ('a', 'b')",
        "SELECT * FROM t WHERE x IS NULL",
        "SELECT * FROM t WHERE x IS NOT NULL",
        "SELECT * FROM t WHERE x BETWEEN 1 AND 5",
        "SELECT * FROM t WHERE x NOT BETWEEN 1 AND 5",
        "SELECT a + b * c FROM t",
        "SELECT (a + b) * c FROM t",
        "SELECT a / b - c % d FROM t",
        "SELECT * FROM t WHERE s = 'it''s'",
        "SELECT * FROM t ORDER BY a DESC, b LIMIT 7",
        "SELECT t.a, t.b FROM t WHERE t.a > 0.5",
        "INSERT INTO t VALUES (1, 'x', 2.5, NULL, TRUE)",
        "INSERT INTO t (a, b) VALUES (1, 2), (3, 4)",
        "SELECT * FROM t WHERE a = TRUE AND b = FALSE",
        "SELECT * FROM t WHERE load1 / cpus > 0.5"));

}  // namespace
}  // namespace gridrm::sql
