// Random well-formed SQL generator shared by the SQL round-trip
// property tests and the plan-cache byte-identity tests. Everything it
// emits references table "t" with the columns below, so callers can
// bind the output against a matching GLUE group.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "gridrm/sql/ast.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::sql {

/// Columns the generator may reference, with their type class.
inline constexpr const char* kNumericCols[] = {"load1", "load5", "cpus",
                                               "mem"};
inline constexpr const char* kStringCols[] = {"host", "cluster"};

class ExprGenerator {
 public:
  explicit ExprGenerator(std::uint64_t seed) : rng_(seed) {}

  /// A random boolean-valued expression.
  ExprPtr genPredicate(int depth) {
    if (depth <= 0) return genLeafPredicate();
    switch (rng_.below(6)) {
      case 0:
        return Expr::makeBinary(BinOp::And, genPredicate(depth - 1),
                                genPredicate(depth - 1));
      case 1:
        return Expr::makeBinary(BinOp::Or, genPredicate(depth - 1),
                                genPredicate(depth - 1));
      case 2:
        return Expr::makeUnary(UnOp::Not, genPredicate(depth - 1));
      default:
        return genLeafPredicate();
    }
  }

  /// A random numeric-valued expression.
  ExprPtr genNumeric(int depth) {
    if (depth <= 0 || rng_.chance(0.4)) {
      if (rng_.chance(0.5)) {
        return Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]);
      }
      if (rng_.chance(0.12)) {
        // Overflow-adjacent magnitudes: Add/Sub/Mul over these trip
        // the int64 overflow check in eval.hpp (promote-to-Real), so
        // generated batteries cover the promotion boundary on both
        // sides. Exact INT64_MIN stays out: its absolute value does
        // not lex as a positive int64, so it cannot round-trip.
        static constexpr std::int64_t kEdges[] = {
            std::numeric_limits<std::int64_t>::max(),
            std::numeric_limits<std::int64_t>::max() - 1,
            std::numeric_limits<std::int64_t>::min() + 1,
            std::numeric_limits<std::int64_t>::min() + 2,
            std::numeric_limits<std::int64_t>::max() / 2 + 1,
        };
        return Expr::makeLiteral(
            util::Value(kEdges[rng_.below(std::size(kEdges))]));
      }
      if (rng_.chance(0.5)) {
        return Expr::makeLiteral(
            util::Value(static_cast<std::int64_t>(rng_.below(20)) - 5));
      }
      return Expr::makeLiteral(util::Value(rng_.uniform(-2.0, 6.0)));
    }
    static constexpr BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                     BinOp::Div, BinOp::Mod};
    return Expr::makeBinary(kOps[rng_.below(std::size(kOps))],
                            genNumeric(depth - 1), genNumeric(depth - 1));
  }

  /// A random full SELECT with GROUP BY / ORDER BY / LIMIT clauses.
  /// Aggregate-mode statements project only group keys and aggregate
  /// calls (the engine rejects anything else); star/expression mode
  /// stays aggregate-free.
  SelectStatement genSelect() {
    SelectStatement stmt;
    stmt.table = "t";
    if (rng_.chance(0.5)) {
      // Aggregation: 0 keys = one global group.
      const std::size_t keys = rng_.below(3);
      for (std::size_t i = 0; i < keys; ++i) {
        const char* col = kStringCols[rng_.below(std::size(kStringCols))];
        stmt.groupBy.push_back(Expr::makeColumn("", col));
        SelectItem item;
        item.expr = Expr::makeColumn("", col);
        stmt.items.push_back(std::move(item));
      }
      // Lower-case names match the parser's normalisation, so derived
      // column labels survive the round trip byte-identically.
      static const char* kAggs[] = {"count", "sum", "avg", "min", "max"};
      const std::size_t aggs = 1 + rng_.below(2);
      for (std::size_t i = 0; i < aggs; ++i) {
        SelectItem item;
        if (rng_.chance(0.2)) {
          item.expr = Expr::makeCall("count", {}, /*starArg=*/true);
        } else {
          std::vector<ExprPtr> args;
          args.push_back(Expr::makeColumn(
              "", kNumericCols[rng_.below(std::size(kNumericCols))]));
          item.expr = Expr::makeCall(kAggs[rng_.below(std::size(kAggs))],
                                     std::move(args));
        }
        stmt.items.push_back(std::move(item));
      }
    } else if (rng_.chance(0.3)) {
      stmt.items.push_back(SelectItem{});  // SELECT *
    } else {
      const std::size_t n = 1 + rng_.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        SelectItem item;
        item.expr = rng_.chance(0.5)
                        ? Expr::makeColumn("", kNumericCols[rng_.below(
                                                   std::size(kNumericCols))])
                        : genNumeric(2);
        stmt.items.push_back(std::move(item));
      }
    }
    // Mostly shallow WHEREs, with an occasional depth-4 tree: deep
    // AND/OR/NOT nesting is where three-valued short-circuit bugs
    // hide, and shallow trees never reach them.
    if (rng_.chance(0.6)) stmt.where = genPredicate(rng_.chance(0.3) ? 4 : 2);
    const std::size_t orderKeys = rng_.below(3);
    for (std::size_t i = 0; i < orderKeys; ++i) {
      OrderKey key;
      if (!stmt.items.empty() && !stmt.items[0].isStar() &&
          rng_.chance(0.7)) {
        key.expr = stmt.items[rng_.below(stmt.items.size())].expr->clone();
      } else if (!stmt.groupBy.empty()) {
        key.expr = stmt.groupBy[rng_.below(stmt.groupBy.size())]->clone();
      } else {
        key.expr = Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]);
      }
      key.descending = rng_.chance(0.5);
      stmt.orderBy.push_back(std::move(key));
    }
    if (rng_.chance(0.5)) {
      stmt.limit = static_cast<std::int64_t>(rng_.below(6));
    }
    return stmt;
  }

  /// A random SELECT aimed at the federated planner (PR 7): everything
  /// genSelect covers plus the shapes that stress plan decomposition —
  /// aliased aggregates, AVG/COUNT(*) mixes, bare first-row columns
  /// beside aggregates, arithmetic over aggregate calls, and aggregate
  /// expressions in ORDER BY. Pair with genExactRow(): partial-sum
  /// reassociation across sites is then exact, so the decomposed merge
  /// must be *byte-identical* to the ship-all-rows baseline.
  SelectStatement genFederatedSelect() {
    SelectStatement stmt;
    stmt.table = "t";
    if (rng_.chance(0.6)) {
      // Aggregate mode: 0 keys = one global group (the COUNT(*)-over-
      // empty-input edge), else grouped with NULLable string keys.
      const std::size_t keys = rng_.below(3);
      for (std::size_t i = 0; i < keys; ++i) {
        const char* col = kStringCols[rng_.below(std::size(kStringCols))];
        stmt.groupBy.push_back(Expr::makeColumn("", col));
        SelectItem item;
        item.expr = Expr::makeColumn("", col);
        stmt.items.push_back(std::move(item));
      }
      const std::size_t extras = 1 + rng_.below(3);
      for (std::size_t i = 0; i < extras; ++i) {
        SelectItem item;
        switch (rng_.below(6)) {
          case 0:
            item.expr = Expr::makeCall("count", {}, /*starArg=*/true);
            break;
          case 1:  // aliased aggregate
            item.expr = genAggCall();
            item.alias = "a" + std::to_string(i);
            break;
          case 2:  // bare column resolved against the group's first row
            item.expr = Expr::makeColumn(
                "", kNumericCols[rng_.below(std::size(kNumericCols))]);
            break;
          case 3:  // arithmetic over aggregates (and a literal)
            item.expr = Expr::makeBinary(
                rng_.chance(0.5) ? BinOp::Add : BinOp::Mul, genAggCall(),
                Expr::makeLiteral(
                    util::Value(static_cast<std::int64_t>(1 + rng_.below(4)))));
            break;
          default:
            item.expr = genAggCall();
            break;
        }
        stmt.items.push_back(std::move(item));
      }
      const std::size_t orderKeys = rng_.below(3);
      for (std::size_t i = 0; i < orderKeys; ++i) {
        OrderKey key;
        if (!stmt.groupBy.empty() && rng_.chance(0.4)) {
          key.expr = stmt.groupBy[rng_.below(stmt.groupBy.size())]->clone();
        } else if (rng_.chance(0.5)) {
          key.expr = stmt.items[rng_.below(stmt.items.size())].expr->clone();
        } else {
          key.expr = genAggCall();  // an aggregate only ordered by
        }
        key.descending = rng_.chance(0.5);
        stmt.orderBy.push_back(std::move(key));
      }
    } else {
      // Non-aggregate mode: star or expressions, with ORDER BY keys
      // that may reference unprojected columns (the hidden-key path).
      if (rng_.chance(0.3)) {
        stmt.items.push_back(SelectItem{});  // SELECT *
      } else {
        const std::size_t n = 1 + rng_.below(3);
        for (std::size_t i = 0; i < n; ++i) {
          SelectItem item;
          item.expr =
              rng_.chance(0.5)
                  ? Expr::makeColumn(
                        "", kNumericCols[rng_.below(std::size(kNumericCols))])
                  : genNumeric(2);
          if (rng_.chance(0.25)) item.alias = "c" + std::to_string(i);
          stmt.items.push_back(std::move(item));
        }
      }
      const std::size_t orderKeys = rng_.below(3);
      for (std::size_t i = 0; i < orderKeys; ++i) {
        OrderKey key;
        key.expr = rng_.chance(0.5)
                       ? Expr::makeColumn(
                             "", kNumericCols[rng_.below(
                                     std::size(kNumericCols))])
                       : genNumeric(1);
        key.descending = rng_.chance(0.5);
        stmt.orderBy.push_back(std::move(key));
      }
    }
    if (rng_.chance(0.6)) stmt.where = genPredicate(rng_.chance(0.3) ? 4 : 2);
    if (rng_.chance(0.5)) {
      stmt.limit = static_cast<std::int64_t>(rng_.below(6));
    }
    return stmt;
  }

  /// Like genRow(), but every Real is a small dyadic rational (a
  /// multiple of 0.25): sums of hundreds of them are exact in binary
  /// floating point under *any* association and round-trip through the
  /// %.10g wire encoding unchanged — the property that makes the
  /// federated differential battery a byte-identity test even for
  /// SUM/AVG partials reassociated across sites.
  std::map<std::string, util::Value> genExactRow() {
    std::map<std::string, util::Value> row;
    for (const char* c : kNumericCols) {
      if (rng_.chance(0.15)) {
        row[c] = util::Value::null();
      } else if (rng_.chance(0.5)) {
        row[c] = util::Value(static_cast<std::int64_t>(rng_.below(10)));
      } else {
        row[c] = util::Value(static_cast<double>(rng_.below(33)) * 0.25);
      }
    }
    static const char* kHosts[] = {"siteA-node00", "siteA-node01",
                                   "siteB-node00", "weird host"};
    for (const char* c : kStringCols) {
      row[c] = rng_.chance(0.1)
                   ? util::Value::null()
                   : util::Value(kHosts[rng_.below(std::size(kHosts))]);
    }
    return row;
  }

  std::map<std::string, util::Value> genRow() {
    std::map<std::string, util::Value> row;
    for (const char* c : kNumericCols) {
      if (rng_.chance(0.15)) {
        row[c] = util::Value::null();
      } else if (rng_.chance(0.5)) {
        row[c] = util::Value(static_cast<std::int64_t>(rng_.below(10)));
      } else {
        row[c] = util::Value(rng_.uniform(0.0, 8.0));
      }
    }
    static const char* kHosts[] = {"siteA-node00", "siteA-node01",
                                   "siteB-node00", "weird host"};
    for (const char* c : kStringCols) {
      row[c] = rng_.chance(0.1)
                   ? util::Value::null()
                   : util::Value(kHosts[rng_.below(std::size(kHosts))]);
    }
    return row;
  }

 private:
  /// A mergeable aggregate call over a bare numeric column. Bare-column
  /// arguments keep per-site SUM/AVG partials dyadic-exact when the
  /// rows come from genExactRow().
  ExprPtr genAggCall() {
    static const char* kAggs[] = {"count", "sum", "avg", "min", "max"};
    std::vector<ExprPtr> args;
    args.push_back(Expr::makeColumn(
        "", kNumericCols[rng_.below(std::size(kNumericCols))]));
    return Expr::makeCall(kAggs[rng_.below(std::size(kAggs))],
                          std::move(args));
  }

  ExprPtr genLeafPredicate() {
    switch (rng_.below(5)) {
      case 0: {  // numeric comparison
        static constexpr BinOp kCmp[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                                         BinOp::Le, BinOp::Gt, BinOp::Ge};
        return Expr::makeBinary(kCmp[rng_.below(std::size(kCmp))],
                                genNumeric(1), genNumeric(1));
      }
      case 1: {  // LIKE
        static const char* kPatterns[] = {"siteA-%", "%node%", "weird_host",
                                          "%", "nomatch"};
        return Expr::makeBinary(
            BinOp::Like,
            Expr::makeColumn("", kStringCols[rng_.below(2)]),
            Expr::makeLiteral(
                util::Value(kPatterns[rng_.below(std::size(kPatterns))])));
      }
      case 2: {  // IS [NOT] NULL
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::IsNull;
        e->negated = rng_.chance(0.5);
        e->children.push_back(Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]));
        return e;
      }
      case 3: {  // BETWEEN
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Between;
        e->negated = rng_.chance(0.3);
        e->children.push_back(genNumeric(1));
        e->children.push_back(Expr::makeLiteral(
            util::Value(static_cast<std::int64_t>(rng_.below(4)))));
        e->children.push_back(Expr::makeLiteral(
            util::Value(static_cast<std::int64_t>(4 + rng_.below(6)))));
        return e;
      }
      default: {  // IN list
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::InList;
        e->negated = rng_.chance(0.3);
        e->children.push_back(Expr::makeColumn(
            "", kNumericCols[rng_.below(std::size(kNumericCols))]));
        const std::size_t n = 1 + rng_.below(4);
        for (std::size_t i = 0; i < n; ++i) {
          e->children.push_back(Expr::makeLiteral(
              util::Value(static_cast<std::int64_t>(rng_.below(10)))));
        }
        return e;
      }
    }
  }

  util::Rng rng_;
};

}  // namespace gridrm::sql
