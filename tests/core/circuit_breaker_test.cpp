#include "gridrm/core/circuit_breaker.hpp"

#include <gtest/gtest.h>

namespace gridrm::core {
namespace {

using util::kMillisecond;
using util::kSecond;

CircuitBreakerOptions opts(std::size_t threshold,
                           util::Duration cooldown = kSecond) {
  CircuitBreakerOptions o;
  o.failureThreshold = threshold;
  o.cooldown = cooldown;
  return o;
}

TEST(CircuitBreakerTest, DisabledBreakerAlwaysAllows) {
  util::SimClock clock;
  CircuitBreaker b(opts(0), clock);
  for (int i = 0; i < 10; ++i) b.recordFailure();
  EXPECT_TRUE(b.allowRequest());
  EXPECT_FALSE(b.wouldReject());
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.snapshot().failures, 10u);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  util::SimClock clock;
  CircuitBreaker b(opts(3), clock);
  b.recordFailure();
  b.recordFailure();
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allowRequest());
  b.recordFailure();  // third consecutive: trip
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_FALSE(b.allowRequest());
  EXPECT_TRUE(b.wouldReject());
  const auto s = b.snapshot();
  EXPECT_EQ(s.opens, 1u);
  EXPECT_EQ(s.skips, 1u);
  EXPECT_EQ(s.consecutiveFailures, 3u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  util::SimClock clock;
  CircuitBreaker b(opts(3), clock);
  b.recordFailure();
  b.recordFailure();
  b.recordSuccess(kMillisecond);
  b.recordFailure();
  b.recordFailure();
  EXPECT_EQ(b.state(), BreakerState::Closed);  // never 3 in a row
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses) {
  util::SimClock clock;
  CircuitBreaker b(opts(1, kSecond), clock);
  b.recordFailure();
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_FALSE(b.allowRequest());

  clock.advance(kSecond);
  // Cooldown elapsed: the first caller claims the half-open probe...
  EXPECT_TRUE(b.allowRequest());
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  // ...and everyone else keeps being rejected while it is in flight.
  EXPECT_FALSE(b.allowRequest());
  EXPECT_TRUE(b.wouldReject());

  b.recordSuccess(2 * kMillisecond);
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allowRequest());
  EXPECT_FALSE(b.wouldReject());
}

TEST(CircuitBreakerTest, HalfOpenProbeRelapseReopens) {
  util::SimClock clock;
  CircuitBreaker b(opts(1, kSecond), clock);
  b.recordFailure();
  clock.advance(kSecond);
  EXPECT_TRUE(b.allowRequest());  // probe
  b.recordFailure();              // probe relapsed
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.snapshot().opens, 2u);
  // Cooldown restarts from the relapse.
  clock.advance(kSecond / 2);
  EXPECT_FALSE(b.allowRequest());
  clock.advance(kSecond / 2);
  EXPECT_TRUE(b.allowRequest());  // second probe
  b.recordSuccess(kMillisecond);
  EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreakerTest, LostProbeSlotIsReclaimedAfterCooldown) {
  util::SimClock clock;
  CircuitBreaker b(opts(1, kSecond), clock);
  b.recordFailure();
  clock.advance(kSecond);
  EXPECT_TRUE(b.allowRequest());  // probe claimed, but never reports back
  EXPECT_FALSE(b.allowRequest());
  clock.advance(kSecond);  // probe presumed lost
  EXPECT_TRUE(b.allowRequest());
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
}

TEST(CircuitBreakerTest, WouldRejectIsPureRead) {
  util::SimClock clock;
  CircuitBreaker b(opts(1, kSecond), clock);
  b.recordFailure();
  clock.advance(kSecond);
  // A pure read past the cooldown must not claim the probe slot or
  // transition the state machine.
  EXPECT_FALSE(b.wouldReject());
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_TRUE(b.allowRequest());  // the probe is still claimable
}

TEST(CircuitBreakerTest, LatencyEwmaDrivesHedgeDelay) {
  util::SimClock clock;
  CircuitBreaker b(opts(0), clock);
  EXPECT_EQ(b.hedgeDelay(kMillisecond), 0);  // no data yet

  b.recordSuccess(10 * kMillisecond);
  // First sample initialises the EWMA with zero deviation.
  EXPECT_EQ(b.snapshot().ewmaLatency, 10 * kMillisecond);
  EXPECT_EQ(b.hedgeDelay(kMillisecond), 10 * kMillisecond);
  // The floor wins over a small estimate.
  EXPECT_EQ(b.hedgeDelay(50 * kMillisecond), 50 * kMillisecond);

  b.recordSuccess(20 * kMillisecond);
  const auto s = b.snapshot();
  // alpha = 0.2: deviation = 0.2*|20-10| = 2ms, ewma = 12ms, p95 = 18ms.
  EXPECT_EQ(s.ewmaLatency, 12 * kMillisecond);
  EXPECT_EQ(s.p95Latency, 18 * kMillisecond);
  EXPECT_EQ(b.hedgeDelay(kMillisecond), 18 * kMillisecond);
}

TEST(SourceHealthRegistryTest, PerUrlIsolation) {
  util::SimClock clock;
  SourceHealthRegistry reg(clock, opts(2));
  ASSERT_TRUE(reg.enabled());
  reg.recordFailure("a");
  reg.recordFailure("a");
  reg.recordSuccess("b", kMillisecond);
  EXPECT_EQ(reg.state("a"), BreakerState::Open);
  EXPECT_EQ(reg.state("b"), BreakerState::Closed);
  EXPECT_TRUE(reg.wouldReject("a"));
  EXPECT_FALSE(reg.wouldReject("b"));
  EXPECT_FALSE(reg.allowRequest("a"));
  EXPECT_TRUE(reg.allowRequest("b"));
  // Unknown URLs are healthy by definition.
  EXPECT_EQ(reg.state("c"), BreakerState::Closed);
  EXPECT_FALSE(reg.wouldReject("c"));
}

TEST(SourceHealthRegistryTest, DisabledRegistryNeverRejects) {
  util::SimClock clock;
  SourceHealthRegistry reg(clock, opts(0));
  EXPECT_FALSE(reg.enabled());
  for (int i = 0; i < 5; ++i) reg.recordFailure("a");
  EXPECT_TRUE(reg.allowRequest("a"));
  EXPECT_FALSE(reg.wouldReject("a"));
  // Latency is still tracked for auto-hedging even without breakers.
  reg.recordSuccess("a", 4 * kMillisecond);
  EXPECT_EQ(reg.suggestedHedgeDelay("a", kMillisecond), 4 * kMillisecond);
}

TEST(SourceHealthRegistryTest, SnapshotSortedByUrl) {
  util::SimClock clock;
  SourceHealthRegistry reg(clock, opts(1));
  reg.recordSuccess("jdbc:b://h/x", kMillisecond);
  reg.recordFailure("jdbc:a://h/x");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].url, "jdbc:a://h/x");
  EXPECT_EQ(snap[0].state, BreakerState::Open);
  EXPECT_EQ(snap[1].url, "jdbc:b://h/x");
  EXPECT_EQ(snap[1].successes, 1u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
  EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
  EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen), "half-open");
}

}  // namespace
}  // namespace gridrm::core
