#include "gridrm/core/cache_controller.hpp"

#include <gtest/gtest.h>

namespace gridrm::core {
namespace {

using dbc::Value;
using dbc::ValueType;
using util::kSecond;

std::unique_ptr<dbc::VectorResultSet> rows(int n) {
  dbc::ResultSetBuilder b;
  b.addColumn("x", ValueType::Int);
  for (int i = 0; i < n; ++i) b.addRow({Value(i)});
  return b.build();
}

TEST(CacheControllerTest, MissThenHit) {
  util::SimClock clock;
  CacheController cache(clock, 5 * kSecond);
  EXPECT_EQ(cache.lookup("k"), nullptr);
  cache.insert("k", *rows(3));
  auto hit = cache.lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rowCount(), 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheControllerTest, HitReturnsIndependentCursor) {
  util::SimClock clock;
  CacheController cache(clock, 5 * kSecond);
  cache.insert("k", *rows(2));
  auto a = cache.lookup("k");
  auto b = cache.lookup("k");
  a->next();
  a->next();
  // b's cursor must be unaffected by a's iteration.
  ASSERT_TRUE(b->next());
  EXPECT_EQ(b->get(0).asInt(), 0);
}

TEST(CacheControllerTest, TtlExpiry) {
  util::SimClock clock;
  CacheController cache(clock, 5 * kSecond);
  cache.insert("k", *rows(1));
  clock.advance(4 * kSecond);
  EXPECT_NE(cache.lookup("k"), nullptr);
  clock.advance(2 * kSecond);
  EXPECT_EQ(cache.lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheControllerTest, PerEntryTtlOverride) {
  util::SimClock clock;
  CacheController cache(clock, 5 * kSecond);
  cache.insert("long", *rows(1), 60 * kSecond);
  clock.advance(10 * kSecond);
  EXPECT_NE(cache.lookup("long"), nullptr);
}

TEST(CacheControllerTest, ZeroTtlDisablesCaching) {
  util::SimClock clock;
  CacheController cache(clock, 0);
  cache.insert("k", *rows(1));
  EXPECT_EQ(cache.lookup("k"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(CacheControllerTest, InsertReplacesExisting) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond);
  cache.insert("k", *rows(1));
  cache.insert("k", *rows(5));
  auto hit = cache.lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rowCount(), 5u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheControllerTest, LruEvictionAtCapacity) {
  util::SimClock clock;
  // One shard so the LRU order is global and the eviction deterministic.
  CacheController cache(clock, 60 * kSecond, /*maxEntries=*/3, /*shards=*/1);
  cache.insert("a", *rows(1));
  cache.insert("b", *rows(1));
  cache.insert("c", *rows(1));
  (void)cache.lookup("a");  // a is now most recent
  cache.insert("d", *rows(1));  // evicts b (least recent)
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_NE(cache.lookup("d"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheControllerTest, ShardedStatsAggregateAcrossShards) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond, /*maxEntries=*/64, /*shards=*/8);
  EXPECT_EQ(cache.shardCount(), 8u);
  for (int i = 0; i < 20; ++i) {
    cache.insert("key" + std::to_string(i), *rows(1));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(cache.lookup("key" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(cache.lookup("absent"), nullptr);
  // Counters live per shard; stats() must present the whole cache.
  EXPECT_EQ(cache.size(), 20u);
  EXPECT_EQ(cache.stats().insertions, 20u);
  EXPECT_EQ(cache.stats().hits, 20u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheControllerTest, ShardCountClampedToAtLeastOne) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond, /*maxEntries=*/4, /*shards=*/0);
  EXPECT_EQ(cache.shardCount(), 1u);
  cache.insert("k", *rows(1));
  EXPECT_NE(cache.lookup("k"), nullptr);
}

TEST(CacheControllerTest, HitsShareRowStorageZeroCopy) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond);
  cache.insert("k", *rows(4));
  auto a = cache.lookup("k");
  auto b = cache.lookup("k");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Two hits must read the *same* underlying rows, not two deep copies:
  // pointer identity of the shared storage and of the row vector.
  EXPECT_EQ(a->shared().get(), b->shared().get());
  EXPECT_EQ(&a->rows(), &b->rows());
}

TEST(CacheControllerTest, SharedInsertAdoptsStorageWithoutCopy) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond);
  std::shared_ptr<const dbc::VectorResultSet> storage = rows(3);
  cache.insert("k", storage);
  auto hit = cache.lookupShared("k");
  ASSERT_NE(hit, nullptr);
  // The cache serves the exact object the producer published.
  EXPECT_EQ(hit.get(), storage.get());
}

TEST(CacheControllerTest, CursorSurvivesEviction) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond);
  cache.insert("k", *rows(2));
  auto cursor = cache.lookup("k");
  ASSERT_NE(cursor, nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // The cursor keeps its shared storage alive past the eviction.
  ASSERT_TRUE(cursor->next());
  EXPECT_EQ(cursor->get(0).asInt(), 0);
}

TEST(CacheControllerTest, InvalidateAndClear) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond);
  cache.insert("a", *rows(1));
  cache.insert("b", *rows(1));
  cache.invalidate("a");
  EXPECT_EQ(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("b"), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheControllerTest, CachedAtReportsStoreTime) {
  util::SimClock clock(100 * kSecond);
  CacheController cache(clock, 60 * kSecond);
  EXPECT_FALSE(cache.cachedAt("k").has_value());
  cache.insert("k", *rows(1));
  EXPECT_EQ(cache.cachedAt("k"), 100 * kSecond);
}

TEST(CacheControllerTest, CachedAtReturnsNulloptOnceExpired) {
  // Regression: cachedAt used to report the store time of entries whose
  // TTL had already lapsed, so the tree view labelled dead data as
  // merely old. Expired entries must read as absent.
  util::SimClock clock(100 * kSecond);
  CacheController cache(clock, 5 * kSecond);
  cache.insert("k", *rows(1));
  clock.advance(4 * kSecond);
  EXPECT_TRUE(cache.cachedAt("k").has_value());
  clock.advance(2 * kSecond);  // past the 5s TTL
  EXPECT_FALSE(cache.cachedAt("k").has_value());
}

TEST(CacheControllerTest, KeyCombinesUrlAndSql) {
  EXPECT_NE(CacheController::key("u1", "q"), CacheController::key("u2", "q"));
  EXPECT_NE(CacheController::key("u", "q1"), CacheController::key("u", "q2"));
  EXPECT_EQ(CacheController::key("u", "q"), CacheController::key("u", "q"));
}

TEST(CacheControllerTest, KeyIsCollisionProof) {
  // Adversarial pairs whose naive "url + sep + sql" concatenations
  // collide by shifting bytes across the separator.
  const std::string sep = "\x1f";
  EXPECT_NE(CacheController::key("u" + sep, "q"),
            CacheController::key("u", sep + "q"));
  EXPECT_NE(CacheController::key("u", sep + "q"),
            CacheController::key("u" + sep + sep, "q"));
  EXPECT_NE(CacheController::key("ab", "c"), CacheController::key("a", "bc"));
  EXPECT_NE(CacheController::key("", "u" + sep + "q"),
            CacheController::key("u", "q"));
  // Length prefixes must not be absorbed by URLs that start with digits.
  EXPECT_NE(CacheController::key("1a", "q"),
            CacheController::key("a", "q").insert(0, "1"));
  EXPECT_EQ(CacheController::key("u" + sep, "q"),
            CacheController::key("u" + sep, "q"));
}

}  // namespace
}  // namespace gridrm::core
