#include "gridrm/core/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace gridrm::core {
namespace {

using util::kMillisecond;

/// Parks the single worker so queued entries can be arranged before any
/// of them dispatch; release() lets the worker continue.
struct Gate {
  std::atomic<bool> open{false};
  void release() { open = true; }
  void wait() const {
    while (!open) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
};

/// Spin (real time) until `pred` holds or ~2s elapse.
template <typename Pred>
bool waitFor(Pred pred) {
  for (int i = 0; i < 20000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return pred();
}

TEST(SchedulerTest, RunsSubmittedTask) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 2});
  std::atomic<bool> ran{false};
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { ran = true; }));
  scheduler.waitIdle();
  EXPECT_TRUE(ran.load());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.lane(Lane::Interactive).submitted, 1u);
  EXPECT_EQ(stats.lane(Lane::Interactive).executed, 1u);
  EXPECT_EQ(stats.lane(Lane::Interactive).queued, 0u);
}

TEST(SchedulerTest, InteractiveRunsBeforeBackground) {
  // Strict priority (share = 0): with one gated worker, every queued
  // interactive entry dispatches before any background entry.
  util::SimClock clock;
  Scheduler scheduler(clock,
                      {.workers = 1, .maxQueueDepth = 64,
                       .backgroundShare = 0});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));

  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::scoped_lock lock(mu);
    order.push_back(tag);
  };
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler.submit(Lane::Background, [&] { record(2); }));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { record(1); }));
  }
  gate.release();
  scheduler.waitIdle();

  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[i], 1) << "position " << i;
  for (int i = 4; i < 8; ++i) EXPECT_EQ(order[i], 2) << "position " << i;
}

TEST(SchedulerTest, HedgeOutranksBackgroundButNotInteractive) {
  util::SimClock clock;
  Scheduler scheduler(clock,
                      {.workers = 1, .maxQueueDepth = 64,
                       .backgroundShare = 0});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));

  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::scoped_lock lock(mu);
    order.push_back(tag);
  };
  ASSERT_TRUE(scheduler.submit(Lane::Background, [&] { record(3); }));
  ASSERT_TRUE(scheduler.submit(Lane::Hedge, [&] { record(2); }));
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { record(1); }));
  gate.release();
  scheduler.waitIdle();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(SchedulerTest, BackgroundShareAvoidsStarvation) {
  // share = 50: under contention Background earns every other dispatch,
  // so the queued background entry runs before the interactive backlog
  // drains instead of waiting for it.
  util::SimClock clock;
  Scheduler scheduler(clock,
                      {.workers = 1, .maxQueueDepth = 64,
                       .backgroundShare = 50});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));

  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::scoped_lock lock(mu);
    order.push_back(tag);
  };
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { record(1); }));
  }
  ASSERT_TRUE(scheduler.submit(Lane::Background, [&] { record(2); }));
  gate.release();
  scheduler.waitIdle();

  ASSERT_EQ(order.size(), 7u);
  // With a 50% share the background entry wins the first or second
  // contended slot (the gate's own dispatch may already accrue credit)
  // — long before the interactive backlog is drained.
  std::size_t bgAt = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 2) {
      bgAt = i;
      break;
    }
  }
  EXPECT_LE(bgAt, 1u);
}

TEST(SchedulerTest, CancelledQueuedTaskNeverRuns) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 1});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));

  std::atomic<bool> ran{false};
  auto token = CancelToken::make();
  ASSERT_TRUE(
      scheduler.submit(Lane::Background, [&] { ran = true; }, token));
  token.cancel();
  gate.release();
  scheduler.waitIdle();

  EXPECT_FALSE(ran.load());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.lane(Lane::Background).cancelled, 1u);
  EXPECT_EQ(stats.lane(Lane::Background).executed, 0u);
  EXPECT_EQ(stats.lane(Lane::Background).queued, 0u);
}

TEST(SchedulerTest, AdmissionRejectsBeyondMaxQueueDepth) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 1, .maxQueueDepth = 2});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));

  // The worker is parked, so these queue up against the bound.
  EXPECT_TRUE(scheduler.submit(Lane::Background, [] {}));
  EXPECT_TRUE(scheduler.submit(Lane::Background, [] {}));
  EXPECT_FALSE(scheduler.submit(Lane::Background, [] {}));
  // Lanes are bounded independently: Interactive still has room.
  EXPECT_TRUE(scheduler.submit(Lane::Interactive, [] {}));

  gate.release();
  scheduler.waitIdle();
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.lane(Lane::Background).rejected, 1u);
  EXPECT_EQ(stats.lane(Lane::Background).executed, 2u);
  EXPECT_EQ(stats.lane(Lane::Background).maxQueued, 2u);
}

TEST(SchedulerTest, SubmitAfterShutdownRejectedNotFatal) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 1});
  scheduler.shutdown();
  std::atomic<bool> ran{false};
  EXPECT_FALSE(scheduler.submit(Lane::Interactive, [&] { ran = true; }));
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(scheduler.stats().lane(Lane::Interactive).rejected, 1u);
  scheduler.shutdown();  // idempotent
}

TEST(SchedulerTest, ShutdownDrainsInteractiveAndCancelsBackground) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 1, .maxQueueDepth = 64});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));

  std::atomic<int> interactiveRan{0};
  std::atomic<int> backgroundRan{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        scheduler.submit(Lane::Interactive, [&] { ++interactiveRan; }));
    ASSERT_TRUE(scheduler.submit(Lane::Background, [&] { ++backgroundRan; }));
  }

  // Release the parked worker only once shutdown() has closed admission
  // and cleared the Background queue (both happen before the join, under
  // the same lock that set stopped_), making the outcome deterministic.
  std::thread releaser([&] {
    while (!scheduler.stopped()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    gate.release();
  });
  scheduler.shutdown();
  releaser.join();

  EXPECT_EQ(interactiveRan.load(), 3);
  EXPECT_EQ(backgroundRan.load(), 0);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.lane(Lane::Background).cancelled, 3u);
  EXPECT_EQ(stats.lane(Lane::Interactive).executed, 4u);  // gate + 3
}

TEST(SchedulerTest, BlockingCapAlwaysLeavesALeafWorker) {
  // Two "collector" tasks each submit a leaf task back into the pool
  // and wait for it. Unmarked, two collectors on two workers would
  // deadlock; marked blocking, at most workers-1 run concurrently so a
  // worker always remains for the leaves.
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 2});
  std::atomic<int> leavesDone{0};
  std::atomic<int> collectorsDone{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(scheduler.submit(
        Lane::Background,
        [&] {
          std::atomic<bool> leafDone{false};
          ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] {
            leafDone = true;
            ++leavesDone;
          }));
          ASSERT_TRUE(waitFor([&] { return leafDone.load(); }));
          ++collectorsDone;
        },
        CancelToken{}, /*blocking=*/true));
  }
  ASSERT_TRUE(waitFor([&] { return collectorsDone.load() == 2; }));
  EXPECT_EQ(leavesDone.load(), 2);
  scheduler.waitIdle();
}

TEST(SchedulerTest, WaitStatsTrackQueueDelay) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 1});
  Gate gate;
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { gate.wait(); }));
  ASSERT_TRUE(scheduler.submit(Lane::Background, [] {}));
  clock.advance(5 * kMillisecond);  // the entry ages while the worker
  gate.release();                   // is parked
  scheduler.waitIdle();
  const auto stats = scheduler.stats();
  EXPECT_GE(stats.lane(Lane::Background).totalWait, 5 * kMillisecond);
  EXPECT_GE(stats.lane(Lane::Background).maxWait, 5 * kMillisecond);
}

TEST(SchedulerTest, WorkerCountClampedToAtLeastOne) {
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 0});
  EXPECT_EQ(scheduler.workerCount(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(scheduler.submit(Lane::Background, [&] { ran = true; }));
  scheduler.waitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(SchedulerTest, InertTokenNeverCancels) {
  CancelToken inert;
  EXPECT_FALSE(inert.valid());
  inert.cancel();
  EXPECT_FALSE(inert.cancelled());
  auto live = CancelToken::make();
  EXPECT_TRUE(live.valid());
  EXPECT_FALSE(live.cancelled());
  auto alias = live;  // copies share the flag
  alias.cancel();
  EXPECT_TRUE(live.cancelled());
}

}  // namespace
}  // namespace gridrm::core
