#include "gridrm/core/session_manager.hpp"

#include <gtest/gtest.h>

namespace gridrm::core {
namespace {

using util::kSecond;

TEST(SessionManagerTest, OpenValidateClose) {
  util::SimClock clock;
  SessionManager mgr(clock);
  const std::string token = mgr.open(Principal{"alice", {"monitor"}});
  auto session = mgr.validate(token);
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->principal.id, "alice");
  mgr.close(token);
  EXPECT_FALSE(mgr.validate(token).has_value());
}

TEST(SessionManagerTest, UnknownTokenRejected) {
  util::SimClock clock;
  SessionManager mgr(clock);
  EXPECT_FALSE(mgr.validate("bogus").has_value());
}

TEST(SessionManagerTest, TokensAreUnique) {
  util::SimClock clock;
  SessionManager mgr(clock);
  EXPECT_NE(mgr.open(Principal{"a", {}}), mgr.open(Principal{"a", {}}));
}

TEST(SessionManagerTest, IdleExpiry) {
  util::SimClock clock;
  SessionManager mgr(clock, /*idleTimeout=*/60 * kSecond);
  const std::string token = mgr.open(Principal{"a", {}});
  clock.advance(59 * kSecond);
  EXPECT_TRUE(mgr.validate(token).has_value());  // touch resets idle timer
  clock.advance(59 * kSecond);
  EXPECT_TRUE(mgr.validate(token).has_value());
  clock.advance(61 * kSecond);
  EXPECT_FALSE(mgr.validate(token).has_value());
}

TEST(SessionManagerTest, ExpireIdleSweep) {
  util::SimClock clock;
  SessionManager mgr(clock, 10 * kSecond);
  mgr.open(Principal{"a", {}});
  mgr.open(Principal{"b", {}});
  const std::string live = mgr.open(Principal{"c", {}});
  clock.advance(9 * kSecond);
  (void)mgr.validate(live);
  clock.advance(5 * kSecond);
  EXPECT_EQ(mgr.expireIdle(), 2u);
  EXPECT_EQ(mgr.activeCount(), 1u);
}

}  // namespace
}  // namespace gridrm::core
