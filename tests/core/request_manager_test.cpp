#include "gridrm/core/request_manager.hpp"

#include <gtest/gtest.h>

#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;
using util::kSecond;

struct Fixture {
  Fixture()
      : driverManager(registry),
        pool(driverManager),
        cache(clock, 5 * kSecond),
        fgsl(true),
        rm(pool, cache, fgsl, &db, clock, /*workers=*/2) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
  }

  std::shared_ptr<MockDriver> addDriver(MockBehaviour b) {
    auto d = std::make_shared<MockDriver>(ctx, std::move(b));
    registry.registerDriver(d);
    return d;
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager driverManager;
  ConnectionManager pool;
  CacheController cache;
  FineSecurityLayer fgsl;
  store::Database db;
  RequestManager rm;
  Principal monitor = Principal::monitor();
};

TEST(RequestManagerTest, QueryOneReturnsRows) {
  Fixture f;
  MockBehaviour b;
  b.hostName = "m0";
  f.addDriver(b);
  QueryResult result =
      f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor");
  EXPECT_TRUE(result.complete());
  ASSERT_NE(result.rows, nullptr);
  EXPECT_EQ(result.rows->rowCount(), 1u);
  result.rows->next();
  EXPECT_EQ(result.rows->getString("HostName"), "m0");
}

TEST(RequestManagerTest, MalformedUrlFails) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  QueryResult result =
      f.rm.queryOne(f.monitor, "not a url", "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  ASSERT_EQ(result.failures.size(), 1u);
}

TEST(RequestManagerTest, BadSqlFails) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  QueryResult result = f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "garbage");
  EXPECT_FALSE(result.complete());
}

TEST(RequestManagerTest, CacheServesRepeatQueries) {
  Fixture f;
  auto driver = f.addDriver(MockBehaviour{});
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";
  (void)f.rm.queryOne(f.monitor, url, sql);
  QueryResult second = f.rm.queryOne(f.monitor, url, sql);
  EXPECT_EQ(second.servedFromCache, 1u);
  EXPECT_EQ(driver->queryCalls(), 1u);  // source touched once

  f.clock.advance(6 * kSecond);  // TTL lapsed
  QueryResult third = f.rm.queryOne(f.monitor, url, sql);
  EXPECT_EQ(third.servedFromCache, 0u);
  EXPECT_EQ(driver->queryCalls(), 2u);
}

TEST(RequestManagerTest, CacheBypassOption) {
  Fixture f;
  auto driver = f.addDriver(MockBehaviour{});
  QueryOptions options;
  options.useCache = false;
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";
  (void)f.rm.queryOne(f.monitor, url, sql, options);
  (void)f.rm.queryOne(f.monitor, url, sql, options);
  EXPECT_EQ(driver->queryCalls(), 2u);
}

TEST(RequestManagerTest, FgslDeniesGroup) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  f.fgsl.addRule({"monitor", "*", "Processor", false});
  QueryResult result =
      f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  EXPECT_NE(result.failures[0].message.find("SECURITY_DENIED"),
            std::string::npos);
}

TEST(RequestManagerTest, MultiSourceConsolidation) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  std::vector<std::string> urls = {"jdbc:mock://h1/x", "jdbc:mock://h2/x",
                                   "jdbc:mock://h3/x"};
  QueryResult result =
      f.rm.query(f.monitor, urls, "SELECT * FROM Processor");
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.sourcesQueried, 3u);
  ASSERT_NE(result.rows, nullptr);
  EXPECT_EQ(result.rows->rowCount(), 3u);
  // Leading Source column carries provenance.
  EXPECT_EQ(result.rows->metaData().column(0).name, "Source");
  result.rows->next();
  EXPECT_EQ(result.rows->getString("Source"), "jdbc:mock://h1/x");
}

TEST(RequestManagerTest, PartialFailureStillDeliversRows) {
  Fixture f;
  MockBehaviour good;
  good.name = "good";
  good.accepts = {"good"};
  f.addDriver(good);
  // No driver accepts "bad" URLs.
  QueryResult result = f.rm.query(
      f.monitor, {"jdbc:good://h1/x", "jdbc:bad://h2/x"},
      "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].url, "jdbc:bad://h2/x");
  EXPECT_EQ(result.rows->rowCount(), 1u);
}

TEST(RequestManagerTest, AllSourcesFailingGivesEmptyRowsPlusFailures) {
  Fixture f;
  QueryResult result = f.rm.query(
      f.monitor, {"jdbc:x://h1/x", "jdbc:x://h2/x"}, "SELECT * FROM Processor");
  EXPECT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.rows->rowCount(), 0u);
}

TEST(RequestManagerTest, SerialAndParallelAgree) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  std::vector<std::string> urls;
  for (int i = 0; i < 6; ++i) {
    urls.push_back("jdbc:mock://h" + std::to_string(i) + "/x");
  }
  QueryOptions serial;
  serial.parallel = false;
  serial.useCache = false;
  QueryOptions parallel;
  parallel.useCache = false;
  auto a = f.rm.query(f.monitor, urls, "SELECT * FROM Processor", serial);
  auto b = f.rm.query(f.monitor, urls, "SELECT * FROM Processor", parallel);
  EXPECT_EQ(a.rows->rowCount(), b.rows->rowCount());
}

TEST(RequestManagerTest, HistoryRecordingAndQuery) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  QueryOptions options;
  options.recordHistory = true;
  options.useCache = false;
  (void)f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor",
                      options);
  f.clock.advance(kSecond);
  (void)f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor",
                      options);

  auto rs = f.rm.queryHistorical(f.monitor,
                                 "SELECT * FROM HistoryProcessor");
  EXPECT_EQ(rs->rowCount(), 2u);
  rs->next();
  EXPECT_EQ(rs->getString("Source"), "jdbc:mock://h/x");
  EXPECT_EQ(rs->getString("HostName"), "mockhost");

  // Time filtering over history (the paper's historical query path).
  auto recent = f.rm.queryHistorical(
      f.monitor, "SELECT * FROM HistoryProcessor WHERE RecordedAt > 0");
  EXPECT_EQ(recent->rowCount(), 1u);
  EXPECT_EQ(f.rm.stats().historyQueries, 2u);
  EXPECT_EQ(f.rm.stats().rowsRecorded, 2u);
}

TEST(RequestManagerTest, HistoricalUnknownTableErrors) {
  Fixture f;
  EXPECT_THROW(f.rm.queryHistorical(f.monitor, "SELECT * FROM HistoryNope"),
               dbc::SqlError);
  EXPECT_THROW(f.rm.queryHistorical(f.monitor, "garbage"), dbc::SqlError);
}

TEST(RequestManagerTest, StatsAccumulate) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  (void)f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor");
  (void)f.rm.query(f.monitor, {"jdbc:mock://h/x", "jdbc:mock://h2/x"},
                   "SELECT * FROM Processor");
  const auto stats = f.rm.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.sourceQueries, 3u);
}

}  // namespace
}  // namespace gridrm::core
