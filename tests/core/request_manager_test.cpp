#include "gridrm/core/request_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <thread>

#include "gridrm/drivers/mock_driver.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/sql/parser.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;
using util::kMillisecond;
using util::kSecond;

struct Fixture {
  explicit Fixture(RequestManagerTuning tuning = {})
      : driverManager(registry),
        pool(driverManager),
        cache(clock, 5 * kSecond),
        fgsl(true),
        rm(pool, cache, fgsl, &db, clock, /*workers=*/2, tuning) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
  }

  std::shared_ptr<MockDriver> addDriver(MockBehaviour b) {
    auto d = std::make_shared<MockDriver>(ctx, std::move(b));
    registry.registerDriver(d);
    return d;
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager driverManager;
  ConnectionManager pool;
  CacheController cache;
  FineSecurityLayer fgsl;
  store::Database db;
  RequestManager rm;
  Principal monitor = Principal::monitor();
};

TEST(RequestManagerTest, QueryOneReturnsRows) {
  Fixture f;
  MockBehaviour b;
  b.hostName = "m0";
  f.addDriver(b);
  QueryResult result =
      f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor");
  EXPECT_TRUE(result.complete());
  ASSERT_NE(result.rows, nullptr);
  EXPECT_EQ(result.rows->rowCount(), 1u);
  result.rows->next();
  EXPECT_EQ(result.rows->getString("HostName"), "m0");
}

TEST(RequestManagerTest, MalformedUrlFails) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  QueryResult result =
      f.rm.queryOne(f.monitor, "not a url", "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  ASSERT_EQ(result.failures.size(), 1u);
}

TEST(RequestManagerTest, BadSqlFails) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  QueryResult result = f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "garbage");
  EXPECT_FALSE(result.complete());
}

TEST(RequestManagerTest, CacheServesRepeatQueries) {
  Fixture f;
  auto driver = f.addDriver(MockBehaviour{});
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";
  (void)f.rm.queryOne(f.monitor, url, sql);
  QueryResult second = f.rm.queryOne(f.monitor, url, sql);
  EXPECT_EQ(second.servedFromCache, 1u);
  EXPECT_EQ(driver->queryCalls(), 1u);  // source touched once

  f.clock.advance(6 * kSecond);  // TTL lapsed
  QueryResult third = f.rm.queryOne(f.monitor, url, sql);
  EXPECT_EQ(third.servedFromCache, 0u);
  EXPECT_EQ(driver->queryCalls(), 2u);
}

TEST(RequestManagerTest, CacheBypassOption) {
  Fixture f;
  auto driver = f.addDriver(MockBehaviour{});
  QueryOptions options;
  options.useCache = false;
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";
  (void)f.rm.queryOne(f.monitor, url, sql, options);
  (void)f.rm.queryOne(f.monitor, url, sql, options);
  EXPECT_EQ(driver->queryCalls(), 2u);
}

TEST(RequestManagerTest, FgslDeniesGroup) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  f.fgsl.addRule({"monitor", "*", "Processor", false});
  QueryResult result =
      f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  EXPECT_NE(result.failures[0].message.find("SECURITY_DENIED"),
            std::string::npos);
}

TEST(RequestManagerTest, MultiSourceConsolidation) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  std::vector<std::string> urls = {"jdbc:mock://h1/x", "jdbc:mock://h2/x",
                                   "jdbc:mock://h3/x"};
  QueryResult result =
      f.rm.query(f.monitor, urls, "SELECT * FROM Processor");
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.sourcesQueried, 3u);
  ASSERT_NE(result.rows, nullptr);
  EXPECT_EQ(result.rows->rowCount(), 3u);
  // Leading Source column carries provenance.
  EXPECT_EQ(result.rows->metaData().column(0).name, "Source");
  result.rows->next();
  EXPECT_EQ(result.rows->getString("Source"), "jdbc:mock://h1/x");
}

TEST(RequestManagerTest, PartialFailureStillDeliversRows) {
  Fixture f;
  MockBehaviour good;
  good.name = "good";
  good.accepts = {"good"};
  f.addDriver(good);
  // No driver accepts "bad" URLs.
  QueryResult result = f.rm.query(
      f.monitor, {"jdbc:good://h1/x", "jdbc:bad://h2/x"},
      "SELECT * FROM Processor");
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].url, "jdbc:bad://h2/x");
  EXPECT_EQ(result.rows->rowCount(), 1u);
}

TEST(RequestManagerTest, AllSourcesFailingGivesEmptyRowsPlusFailures) {
  Fixture f;
  QueryResult result = f.rm.query(
      f.monitor, {"jdbc:x://h1/x", "jdbc:x://h2/x"}, "SELECT * FROM Processor");
  EXPECT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.rows->rowCount(), 0u);
}

TEST(RequestManagerTest, SerialAndParallelAgree) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  std::vector<std::string> urls;
  for (int i = 0; i < 6; ++i) {
    urls.push_back("jdbc:mock://h" + std::to_string(i) + "/x");
  }
  QueryOptions serial;
  serial.parallel = false;
  serial.useCache = false;
  QueryOptions parallel;
  parallel.useCache = false;
  auto a = f.rm.query(f.monitor, urls, "SELECT * FROM Processor", serial);
  auto b = f.rm.query(f.monitor, urls, "SELECT * FROM Processor", parallel);
  EXPECT_EQ(a.rows->rowCount(), b.rows->rowCount());
}

TEST(RequestManagerTest, HistoryRecordingAndQuery) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  QueryOptions options;
  options.recordHistory = true;
  options.useCache = false;
  (void)f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor",
                      options);
  f.clock.advance(kSecond);
  (void)f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor",
                      options);

  auto rs = f.rm.queryHistorical(f.monitor,
                                 "SELECT * FROM HistoryProcessor");
  EXPECT_EQ(rs->rowCount(), 2u);
  rs->next();
  EXPECT_EQ(rs->getString("Source"), "jdbc:mock://h/x");
  EXPECT_EQ(rs->getString("HostName"), "mockhost");

  // Time filtering over history (the paper's historical query path).
  auto recent = f.rm.queryHistorical(
      f.monitor, "SELECT * FROM HistoryProcessor WHERE RecordedAt > 0");
  EXPECT_EQ(recent->rowCount(), 1u);
  EXPECT_EQ(f.rm.stats().historyQueries, 2u);
  EXPECT_EQ(f.rm.stats().rowsRecorded, 2u);
}

TEST(RequestManagerTest, HistoricalUnknownTableErrors) {
  Fixture f;
  EXPECT_THROW(f.rm.queryHistorical(f.monitor, "SELECT * FROM HistoryNope"),
               dbc::SqlError);
  EXPECT_THROW(f.rm.queryHistorical(f.monitor, "garbage"), dbc::SqlError);
}

TEST(RequestManagerTest, StatsAccumulate) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  (void)f.rm.queryOne(f.monitor, "jdbc:mock://h/x", "SELECT * FROM Processor");
  (void)f.rm.query(f.monitor, {"jdbc:mock://h/x", "jdbc:mock://h2/x"},
                   "SELECT * FROM Processor");
  const auto stats = f.rm.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.sourceQueries, 3u);
}

// Spin (in real time) until `pred` holds; the simulated clock is only
// ever advanced by the test body itself, so this never races sim time.
bool waitFor(const std::function<bool()>& pred) {
  const auto stop =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < stop) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return false;
}

TEST(RequestManagerIsolationTest, DeadlineDeliversPartialRowsAndStraggler) {
  Fixture f;
  MockBehaviour fast;
  fast.name = "fast";
  fast.accepts = {"fast"};
  f.addDriver(fast);
  MockBehaviour slow;
  slow.name = "slow";
  slow.accepts = {"slow"};
  slow.queryLatencyUs = 3600 * kSecond;
  slow.blockOnDelay = true;
  auto slowDriver = f.addDriver(slow);

  const std::vector<std::string> urls = {
      "jdbc:fast://h1/x", "jdbc:fast://h2/x", "jdbc:fast://h3/x",
      "jdbc:slow://h4/x"};
  QueryOptions options;
  options.useCache = false;
  options.deadline = 50 * kMillisecond;
  auto fut = std::async(std::launch::async, [&] {
    return f.rm.query(f.monitor, urls, "SELECT * FROM Processor", options);
  });
  // Wait (in real time) until the fast sources completed and the
  // straggler is parked inside the driver, then expire the deadline.
  ASSERT_TRUE(waitFor([&] {
    std::size_t ok = 0;
    for (const auto& s : f.rm.sourceHealth().snapshot()) ok += s.successes;
    return ok >= 3 && slowDriver->queryCalls() == 1;
  }));
  f.clock.advance(51 * kMillisecond);

  QueryResult result = fut.get();
  ASSERT_NE(result.rows, nullptr);
  EXPECT_EQ(result.rows->rowCount(), 3u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].url, "jdbc:slow://h4/x");
  EXPECT_EQ(result.failures[0].message, "deadline exceeded");
  EXPECT_EQ(f.rm.stats().deadlineMisses, 1u);
  slowDriver->releaseBlockedQueries();
}

TEST(RequestManagerIsolationTest, HedgeWinsWhenPrimaryStalls) {
  Fixture f;
  MockBehaviour b;
  b.blockOnDelay = true;
  b.queryDelaySchedule = {3600 * kSecond, 0};  // primary hangs, hedge instant
  auto driver = f.addDriver(b);
  QueryOptions options;
  options.useCache = false;
  options.hedgeDelay = 10 * kMillisecond;
  auto fut = std::async(std::launch::async, [&] {
    return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                         "SELECT * FROM Processor", options);
  });
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == 1; }));
  f.clock.advance(11 * kMillisecond);  // past the hedge delay

  QueryResult result = fut.get();
  EXPECT_TRUE(result.complete());
  ASSERT_NE(result.rows, nullptr);
  EXPECT_EQ(result.rows->rowCount(), 1u);
  EXPECT_EQ(driver->queryCalls(), 2u);
  const auto stats = f.rm.stats();
  EXPECT_EQ(stats.hedgedRequests, 1u);
  EXPECT_EQ(stats.hedgeWins, 1u);
  EXPECT_EQ(stats.deadlineMisses, 0u);
  driver->releaseBlockedQueries();
}

TEST(RequestManagerIsolationTest, HedgeLoserIsDiscarded) {
  Fixture f;
  MockBehaviour b;
  b.blockOnDelay = true;
  // Primary completes at 20ms; the hedge (fired at 5ms) hangs forever.
  b.queryDelaySchedule = {20 * kMillisecond, 3600 * kSecond};
  auto driver = f.addDriver(b);
  QueryOptions options;
  options.useCache = false;
  options.hedgeDelay = 5 * kMillisecond;
  auto fut = std::async(std::launch::async, [&] {
    return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                         "SELECT * FROM Processor", options);
  });
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == 1; }));
  f.clock.advance(6 * kMillisecond);
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == 2; }));
  f.clock.advance(15 * kMillisecond);  // primary wakes at 20ms

  QueryResult result = fut.get();
  EXPECT_TRUE(result.complete());
  const auto stats = f.rm.stats();
  EXPECT_EQ(stats.hedgedRequests, 1u);
  EXPECT_EQ(stats.hedgeWins, 0u);  // the primary won
  driver->releaseBlockedQueries();
}

TEST(RequestManagerIsolationTest, AutoHedgeDerivesDelayFromHistory) {
  Fixture f;
  MockBehaviour b;
  b.blockOnDelay = true;
  // Call 1 primes the latency EWMA, call 2 stalls, call 3 is the hedge.
  b.queryDelaySchedule = {0, 3600 * kSecond, 0};
  auto driver = f.addDriver(b);
  QueryOptions options;
  options.useCache = false;
  EXPECT_TRUE(f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                            "SELECT * FROM Processor", options)
                  .complete());

  options.hedgeDelay = kHedgeAuto;
  auto fut = std::async(std::launch::async, [&] {
    return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                         "SELECT * FROM Processor", options);
  });
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == 2; }));
  // The primed EWMA is ~0, so the hedge fires at the configured floor.
  f.clock.advance(f.rm.tuning().hedgeFloor + kMillisecond);

  QueryResult result = fut.get();
  EXPECT_TRUE(result.complete());
  const auto stats = f.rm.stats();
  EXPECT_EQ(stats.hedgedRequests, 1u);
  EXPECT_EQ(stats.hedgeWins, 1u);
  driver->releaseBlockedQueries();
}

TEST(RequestManagerIsolationTest, BreakerOpensSkipsAndRecovers) {
  RequestManagerTuning tuning;
  tuning.breaker.failureThreshold = 2;
  tuning.breaker.cooldown = 10 * kSecond;
  Fixture f(tuning);
  MockBehaviour b;
  b.failQueriesFrom = 0;  // the source is down: every query fails
  auto driver = f.addDriver(b);
  QueryOptions options;
  options.useCache = false;
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";

  EXPECT_FALSE(f.rm.queryOne(f.monitor, url, sql, options).complete());
  EXPECT_FALSE(f.rm.queryOne(f.monitor, url, sql, options).complete());
  EXPECT_EQ(driver->queryCalls(), 2u);
  EXPECT_EQ(f.rm.sourceHealth().state(url), BreakerState::Open);

  // Open: the source is reported degraded without contacting the agent.
  QueryResult skipped = f.rm.queryOne(f.monitor, url, sql, options);
  EXPECT_FALSE(skipped.complete());
  ASSERT_EQ(skipped.failures.size(), 1u);
  EXPECT_NE(skipped.failures[0].message.find("UNAVAILABLE"),
            std::string::npos);
  EXPECT_EQ(driver->queryCalls(), 2u);  // agent request counter unchanged
  EXPECT_EQ(f.rm.stats().breakerSkips, 1u);

  // Heal the source; after the cooldown the next query is the half-open
  // probe and its success closes the breaker again.
  driver->behaviour().failQueriesFrom = SIZE_MAX;
  f.clock.advance(10 * kSecond);
  EXPECT_TRUE(f.rm.queryOne(f.monitor, url, sql, options).complete());
  EXPECT_EQ(driver->queryCalls(), 3u);
  EXPECT_EQ(f.rm.sourceHealth().state(url), BreakerState::Closed);
  EXPECT_TRUE(f.rm.queryOne(f.monitor, url, sql, options).complete());
  EXPECT_EQ(driver->queryCalls(), 4u);
}

TEST(RequestManagerIsolationTest, DeadlineMissesTripBreaker) {
  RequestManagerTuning tuning;
  tuning.breaker.failureThreshold = 2;
  tuning.breaker.cooldown = 3600 * kSecond;
  Fixture f(tuning);
  MockBehaviour b;
  b.blockOnDelay = true;
  b.queryLatencyUs = 20 * kMillisecond;  // alive, but too slow
  auto driver = f.addDriver(b);
  QueryOptions options;
  options.useCache = false;
  options.deadline = 10 * kMillisecond;
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";

  for (std::size_t i = 1; i <= 2; ++i) {
    auto fut = std::async(std::launch::async, [&] {
      return f.rm.queryOne(f.monitor, url, sql, options);
    });
    ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == i; }));
    f.clock.advance(11 * kMillisecond);
    QueryResult r = fut.get();
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].message, "deadline exceeded");
    f.clock.advance(20 * kMillisecond);  // let the worker wake and drain
  }

  // Two deadline misses tripped the breaker even though the source's
  // late completions were successful: abandoned attempts stay silent.
  EXPECT_EQ(f.rm.sourceHealth().state(url), BreakerState::Open);
  QueryResult skipped = f.rm.queryOne(f.monitor, url, sql, options);
  EXPECT_FALSE(skipped.complete());
  EXPECT_EQ(driver->queryCalls(), 2u);
  EXPECT_EQ(f.rm.stats().deadlineMisses, 2u);
  driver->releaseBlockedQueries();
}

TEST(RequestManagerHotPathTest, ResultSharesCachedStorageZeroCopy) {
  Fixture f;
  f.addDriver(MockBehaviour{});
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";
  QueryResult first = f.rm.queryOne(f.monitor, url, sql);
  QueryResult second = f.rm.queryOne(f.monitor, url, sql);
  ASSERT_NE(first.rows, nullptr);
  ASSERT_NE(second.rows, nullptr);
  EXPECT_EQ(second.servedFromCache, 1u);
  // The cache adopted the driver result's storage and the hit re-shares
  // it: both cursors read the very same rows, no deep copy anywhere.
  EXPECT_EQ(first.rows->shared().get(), second.rows->shared().get());
  EXPECT_EQ(&first.rows->rows(), &second.rows->rows());
}

TEST(RequestManagerHotPathTest, StampedeOnColdKeyIssuesOneSourceRequest) {
  Fixture f;
  MockBehaviour b;
  b.queryLatencyUs = 50 * kMillisecond;
  b.blockOnDelay = true;  // the leader parks until the clock advances
  auto driver = f.addDriver(b);
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT * FROM Processor";

  constexpr int kClients = 16;
  std::atomic<int> started{0};
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(std::async(std::launch::async, [&] {
      ++started;
      return f.rm.queryOne(f.monitor, url, sql);
    }));
  }
  // Every client is running and the leader is parked inside the driver;
  // give the followers a moment to queue on the flight, then release.
  ASSERT_TRUE(waitFor(
      [&] { return started.load() == kClients && driver->queryCalls() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  f.clock.advance(60 * kMillisecond);

  std::vector<QueryResult> results;
  for (auto& fut : futures) results.push_back(fut.get());

  // The whole stampede reached the agent exactly once.
  EXPECT_EQ(driver->queryCalls(), 1u);
  std::size_t cacheHits = 0;
  const dbc::VectorResultSet* storage = nullptr;
  for (auto& r : results) {
    ASSERT_TRUE(r.complete());
    ASSERT_NE(r.rows, nullptr);
    EXPECT_EQ(r.rows->rowCount(), 1u);
    cacheHits += r.servedFromCache;
    if (storage == nullptr) storage = r.rows->shared().get();
    // One driver execution fanned out to every client without a copy:
    // leader, followers and any cache-served straggler share storage.
    EXPECT_EQ(r.rows->shared().get(), storage);
  }
  const auto stats = f.rm.stats();
  EXPECT_EQ(stats.coalescedQueries + cacheHits,
            static_cast<std::uint64_t>(kClients - 1));
  EXPECT_GE(stats.coalescedQueries, 1u);
}

TEST(RequestManagerHotPathTest, CoalescedFollowersShareLeaderFailure) {
  Fixture f;
  MockBehaviour b;
  b.queryLatencyUs = 50 * kMillisecond;
  b.blockOnDelay = true;
  b.failQueriesFrom = 0;  // every contact fails (after the delay)
  auto driver = f.addDriver(b);

  constexpr int kClients = 4;
  std::atomic<int> started{0};
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(std::async(std::launch::async, [&] {
      ++started;
      return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                           "SELECT * FROM Processor");
    }));
  }
  ASSERT_TRUE(waitFor(
      [&] { return started.load() == kClients && driver->queryCalls() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  f.clock.advance(60 * kMillisecond);

  for (auto& fut : futures) {
    QueryResult r = fut.get();
    EXPECT_FALSE(r.complete());
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_NE(r.failures[0].message.find("scripted failure"),
              std::string::npos);
  }
  // The leader's failure was shared; followers did not retry the source.
  EXPECT_EQ(driver->queryCalls(), 1u);
  driver->releaseBlockedQueries();
}

TEST(RequestManagerHotPathTest, CoalesceDisabledContactsSourcePerClient) {
  RequestManagerTuning tuning;
  tuning.coalesce = false;
  Fixture f(tuning);
  MockBehaviour b;
  b.queryLatencyUs = 50 * kMillisecond;
  b.blockOnDelay = true;
  auto driver = f.addDriver(b);

  constexpr int kClients = 4;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(std::async(std::launch::async, [&] {
      return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                           "SELECT * FROM Processor");
    }));
  }
  // With single flight off, every concurrent miss reaches the driver.
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == kClients; }));
  f.clock.advance(60 * kMillisecond);
  for (auto& fut : futures) {
    QueryResult r = fut.get();
    EXPECT_TRUE(r.complete());
  }
  EXPECT_EQ(driver->queryCalls(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(f.rm.stats().coalescedQueries, 0u);
  driver->releaseBlockedQueries();
}

TEST(RequestManagerHotPathTest, PollsBypassCoalescingAndAlwaysContactSource) {
  Fixture f;
  MockBehaviour b;
  b.queryLatencyUs = 50 * kMillisecond;
  b.blockOnDelay = true;
  auto driver = f.addDriver(b);
  QueryOptions options;
  options.useCache = false;  // the SitePoller's contract

  constexpr int kClients = 3;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(std::async(std::launch::async, [&] {
      return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                           "SELECT * FROM Processor", options);
    }));
  }
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == kClients; }));
  f.clock.advance(60 * kMillisecond);
  for (auto& fut : futures) (void)fut.get();
  EXPECT_EQ(driver->queryCalls(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(f.rm.stats().coalescedQueries, 0u);
  driver->releaseBlockedQueries();
}

TEST(RequestManagerHotPathTest, PlanCacheParsesSqlOnceAcrossRepeatedRuns) {
  Fixture f;
  drivers::PlanCache plans;
  f.rm.setPlanCache(&plans);
  f.ctx.planCache = &plans;  // before addDriver: the driver copies ctx
  auto driver = f.addDriver(MockBehaviour{});
  QueryOptions options;
  options.useCache = false;  // force a driver execution every time
  const std::string url = "jdbc:mock://h/x";
  const std::string sql = "SELECT HostName, Load1 FROM Processor";

  (void)f.rm.queryOne(f.monitor, url, sql, options);  // cold: parses
  const std::uint64_t parsesAfterFirst = sql::parseSelectCount();
  for (int i = 0; i < 9; ++i) {
    QueryResult r = f.rm.queryOne(f.monitor, url, sql, options);
    EXPECT_TRUE(r.complete());
  }
  EXPECT_EQ(driver->queryCalls(), 10u);
  // Nine further executions — each passing the RequestManager's group
  // check AND the driver's own parse — add zero parseSelect calls.
  EXPECT_EQ(sql::parseSelectCount(), parsesAfterFirst);
  const auto stats = plans.stats();
  EXPECT_GE(stats.hits, 9u);
  EXPECT_GE(stats.statementHits, 9u);
}

}  // namespace
}  // namespace gridrm::core
