#include "gridrm/core/driver_manager.hpp"

#include <gtest/gtest.h>

#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;

util::Url url(const std::string& text) { return *util::Url::parse(text); }

struct Fixture {
  Fixture() : manager(registry) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
  }

  std::shared_ptr<MockDriver> addDriver(MockBehaviour behaviour) {
    auto driver = std::make_shared<MockDriver>(ctx, std::move(behaviour));
    registry.registerDriver(driver);
    return driver;
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager manager;
};

TEST(DriverManagerTest, DynamicSelectionFindsCompatibleDriver) {
  Fixture f;
  MockBehaviour a;
  a.name = "a";
  a.accepts = {"aa"};
  f.addDriver(a);
  MockBehaviour b;
  b.name = "b";
  b.accepts = {"bb"};
  auto bDriver = f.addDriver(b);

  auto sel = f.manager.obtainConnection(url("jdbc:bb://h/x"), {});
  EXPECT_EQ(sel.driver->name(), "b");
  EXPECT_NE(sel.connection, nullptr);
  EXPECT_EQ(bDriver->connectCalls(), 1u);
  EXPECT_EQ(f.manager.stats().dynamicScans, 1u);
  EXPECT_EQ(f.manager.stats().acceptProbes, 2u);
}

TEST(DriverManagerTest, NoDriverAcceptsThrowsUnsupported) {
  Fixture f;
  MockBehaviour a;
  a.accepts = {"other"};
  f.addDriver(a);
  try {
    f.manager.obtainConnection(url("jdbc:zz://h/x"), {});
    FAIL();
  } catch (const dbc::SqlError& e) {
    EXPECT_EQ(e.code(), dbc::ErrorCode::Unsupported);
  }
}

TEST(DriverManagerTest, LastGoodCacheSkipsScan) {
  Fixture f;
  for (int i = 0; i < 5; ++i) {
    MockBehaviour b;
    b.name = "d" + std::to_string(i);
    b.accepts = {b.name};
    f.addDriver(b);
  }
  MockBehaviour target;
  target.name = "target";
  target.accepts = {"t"};
  f.addDriver(target);

  (void)f.manager.obtainConnection(url("jdbc:t://h/x"), {});
  EXPECT_EQ(f.manager.cachedDriver("jdbc:t://h/x"), "target");
  const auto probesAfterFirst = f.manager.stats().acceptProbes;

  // Second allocation: served from the last-good cache, zero probes.
  (void)f.manager.obtainConnection(url("jdbc:t://h/x"), {});
  EXPECT_EQ(f.manager.stats().acceptProbes, probesAfterFirst);
  EXPECT_EQ(f.manager.stats().cacheHits, 1u);
  EXPECT_EQ(f.manager.stats().dynamicScans, 1u);
}

TEST(DriverManagerTest, CacheDisabledAlwaysScans) {
  Fixture f;
  MockBehaviour b;
  b.name = "d";
  b.accepts = {"d"};
  f.addDriver(b);
  f.manager.setLastGoodCacheEnabled(false);
  (void)f.manager.obtainConnection(url("jdbc:d://h/x"), {});
  (void)f.manager.obtainConnection(url("jdbc:d://h/x"), {});
  EXPECT_EQ(f.manager.stats().dynamicScans, 2u);
  EXPECT_EQ(f.manager.stats().cacheHits, 0u);
  EXPECT_TRUE(f.manager.cachedDriver("jdbc:d://h/x").empty());
}

TEST(DriverManagerTest, StaticPreferenceOrderRespected) {
  Fixture f;
  MockBehaviour first;
  first.name = "first";
  first.accepts = {"p"};
  first.failConnect = true;  // preferred but broken
  auto firstDriver = f.addDriver(first);
  MockBehaviour second;
  second.name = "second";
  second.accepts = {"p"};
  auto secondDriver = f.addDriver(second);

  f.manager.setStaticPreference("jdbc:p://h/x", {"first", "second"});
  f.manager.setFailurePolicy({FailurePolicy::Action::TryNext, 0});

  auto sel = f.manager.obtainConnection(url("jdbc:p://h/x"), {});
  EXPECT_EQ(sel.driver->name(), "second");
  EXPECT_EQ(firstDriver->connectCalls(), 1u);
  EXPECT_EQ(secondDriver->connectCalls(), 1u);
  EXPECT_EQ(f.manager.stats().staticSelections, 1u);
  EXPECT_EQ(f.manager.stats().failovers, 1u);
  // Static selection performs no acceptsUrl scan.
  EXPECT_EQ(f.manager.stats().dynamicScans, 0u);
}

TEST(DriverManagerTest, ReportPolicyStopsAtFirstFailure) {
  Fixture f;
  MockBehaviour broken;
  broken.name = "broken";
  broken.accepts = {"p"};
  broken.failConnect = true;
  f.addDriver(broken);
  MockBehaviour backup;
  backup.name = "backup";
  backup.accepts = {"p"};
  auto backupDriver = f.addDriver(backup);

  f.manager.setStaticPreference("jdbc:p://h/x", {"broken", "backup"});
  f.manager.setFailurePolicy({FailurePolicy::Action::Report, 0});

  EXPECT_THROW(f.manager.obtainConnection(url("jdbc:p://h/x"), {}),
               dbc::SqlError);
  EXPECT_EQ(backupDriver->connectCalls(), 0u);  // never tried
}

TEST(DriverManagerTest, RetryPolicyRetriesSameDriver) {
  Fixture f;
  MockBehaviour flaky;
  flaky.name = "flaky";
  flaky.accepts = {"p"};
  flaky.failConnect = true;
  auto driver = f.addDriver(flaky);

  f.manager.setFailurePolicy({FailurePolicy::Action::Retry, 2});
  EXPECT_THROW(f.manager.obtainConnection(url("jdbc:p://h/x"), {}),
               dbc::SqlError);
  EXPECT_EQ(driver->connectCalls(), 3u);  // 1 + 2 retries
}

TEST(DriverManagerTest, DynamicReselectExtendsExhaustedStaticList) {
  Fixture f;
  MockBehaviour preferred;
  preferred.name = "preferred";
  preferred.accepts = {"p"};
  preferred.failConnect = true;
  f.addDriver(preferred);
  MockBehaviour fallback;
  fallback.name = "fallback";
  fallback.accepts = {"p"};
  f.addDriver(fallback);

  f.manager.setStaticPreference("jdbc:p://h/x", {"preferred"});
  f.manager.setFailurePolicy({FailurePolicy::Action::DynamicReselect, 0});

  auto sel = f.manager.obtainConnection(url("jdbc:p://h/x"), {});
  EXPECT_EQ(sel.driver->name(), "fallback");
  EXPECT_EQ(f.manager.stats().dynamicScans, 1u);
}

TEST(DriverManagerTest, FailedCachedDriverFallsThrough) {
  Fixture f;
  MockBehaviour main;
  main.name = "main";
  main.accepts = {"p"};
  auto mainDriver = f.addDriver(main);
  MockBehaviour backup;
  backup.name = "backup";
  backup.accepts = {"p"};
  f.addDriver(backup);
  f.manager.setFailurePolicy({FailurePolicy::Action::DynamicReselect, 0});

  (void)f.manager.obtainConnection(url("jdbc:p://h/x"), {});
  EXPECT_EQ(f.manager.cachedDriver("jdbc:p://h/x"), "main");

  // Break the cached driver; the next allocation reselects dynamically.
  mainDriver->behaviour().failConnect = true;
  auto sel = f.manager.obtainConnection(url("jdbc:p://h/x"), {});
  EXPECT_EQ(sel.driver->name(), "backup");
  EXPECT_EQ(f.manager.cachedDriver("jdbc:p://h/x"), "backup");
}

TEST(DriverManagerTest, AllCandidatesFailClearsCache) {
  Fixture f;
  MockBehaviour only;
  only.name = "only";
  only.accepts = {"p"};
  auto driver = f.addDriver(only);
  (void)f.manager.obtainConnection(url("jdbc:p://h/x"), {});
  driver->behaviour().failConnect = true;
  EXPECT_THROW(f.manager.obtainConnection(url("jdbc:p://h/x"), {}),
               dbc::SqlError);
  EXPECT_TRUE(f.manager.cachedDriver("jdbc:p://h/x").empty());
}

TEST(DriverManagerTest, ReportFailureDropsCacheEntry) {
  Fixture f;
  MockBehaviour b;
  b.name = "d";
  b.accepts = {"p"};
  f.addDriver(b);
  (void)f.manager.obtainConnection(url("jdbc:p://h/x"), {});
  EXPECT_EQ(f.manager.cachedDriver("jdbc:p://h/x"), "d");
  f.manager.reportFailure("jdbc:p://h/x");
  EXPECT_TRUE(f.manager.cachedDriver("jdbc:p://h/x").empty());
}

TEST(DriverManagerTest, StaticPreferenceAccessors) {
  Fixture f;
  f.manager.setStaticPreference("u", {"a", "b"});
  EXPECT_EQ(f.manager.staticPreference("u"),
            (std::vector<std::string>{"a", "b"}));
  f.manager.clearStaticPreference("u");
  EXPECT_TRUE(f.manager.staticPreference("u").empty());
}

}  // namespace
}  // namespace gridrm::core
