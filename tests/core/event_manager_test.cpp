#include "gridrm/core/event_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "gridrm/agents/snmp_agent.hpp"
#include "gridrm/agents/snmp_codec.hpp"

namespace gridrm::core {
namespace {

namespace snmp = agents::snmp;
using util::Value;

EventManagerOptions inlineOptions() {
  EventManagerOptions o;
  o.threadedDispatch = false;  // deterministic unit tests
  return o;
}

TEST(EventTypeMatchTest, PatternSemantics) {
  EXPECT_TRUE(eventTypeMatches("", "anything"));
  EXPECT_TRUE(eventTypeMatches("*", "anything"));
  EXPECT_TRUE(eventTypeMatches("snmp.trap", "snmp.trap"));
  EXPECT_TRUE(eventTypeMatches("snmp.trap", "snmp.trap.highload"));
  EXPECT_FALSE(eventTypeMatches("snmp.trap", "snmp.trapx"));
  EXPECT_FALSE(eventTypeMatches("snmp.trap.highload", "snmp.trap"));
}

TEST(EventManagerTest, ListenersReceiveMatchingEvents) {
  util::SimClock clock;
  EventManager mgr(clock, nullptr, inlineOptions());
  std::vector<std::string> seen;
  mgr.addListener("alert", [&](const Event& e) { seen.push_back(e.type); });

  Event a;
  a.type = "alert.load";
  mgr.ingest(a);
  Event b;
  b.type = "other.thing";
  mgr.ingest(b);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "alert.load");
  EXPECT_EQ(mgr.stats().received, 2u);
  EXPECT_EQ(mgr.stats().dispatched, 2u);
}

TEST(EventManagerTest, RemoveListenerStopsDelivery) {
  util::SimClock clock;
  EventManager mgr(clock, nullptr, inlineOptions());
  int count = 0;
  const std::size_t id = mgr.addListener("*", [&](const Event&) { ++count; });
  Event e;
  e.type = "x";
  mgr.ingest(e);
  mgr.removeListener(id);
  mgr.ingest(e);
  EXPECT_EQ(count, 1);
}

TEST(EventManagerTest, SequenceAndTimestampAssigned) {
  util::SimClock clock(77 * util::kSecond);
  EventManager mgr(clock, nullptr, inlineOptions());
  std::vector<Event> seen;
  mgr.addListener("", [&](const Event& e) { seen.push_back(e); });
  Event e;
  e.type = "t";
  mgr.ingest(e);
  mgr.ingest(e);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].sequence + 1, seen[1].sequence);
  EXPECT_EQ(seen[0].timestamp, 77 * util::kSecond);
}

TEST(EventManagerTest, HistoryRecorded) {
  util::SimClock clock;
  store::Database db;
  EventManager mgr(clock, &db, inlineOptions());
  Event e;
  e.type = "alert.disk";
  e.source = "n0";
  e.severity = Severity::Critical;
  e.fields["free"] = Value(12);
  mgr.ingest(e);

  auto rs = db.query("SELECT * FROM EventHistory");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_EQ(rs->getString("Type"), "alert.disk");
  EXPECT_EQ(rs->getString("Source"), "n0");
  EXPECT_EQ(rs->getString("Severity"), "critical");
  EXPECT_NE(rs->getString("Fields").find("free=12"), std::string::npos);
}

TEST(EventManagerTest, SnmpTrapFormatterDecodes) {
  util::SimClock clock;
  EventManager mgr(clock, nullptr, inlineOptions());
  mgr.addFormatter(std::make_unique<SnmpTrapFormatter>());
  std::vector<Event> seen;
  mgr.addListener("snmp.trap", [&](const Event& e) { seen.push_back(e); });

  snmp::Pdu trap;
  trap.type = snmp::PduType::Trap;
  trap.varbinds.push_back({snmp::Oid::parse("1.3.6.1.6.3.1.1.4.1.0"),
                           Value(snmp::oids::kTrapHighLoad)});
  trap.varbinds.push_back(
      {snmp::Oid::parse(snmp::oids::kLaLoad1), Value(7.5)});
  mgr.ingestNative({"node03", 161}, snmp::encodePdu(trap));

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, "snmp.trap.highload");
  EXPECT_EQ(seen[0].source, "node03");
  EXPECT_EQ(seen[0].severity, Severity::Critical);
}

TEST(EventManagerTest, UndecodablePayloadCounted) {
  util::SimClock clock;
  EventManager mgr(clock, nullptr, inlineOptions());
  mgr.addFormatter(std::make_unique<SnmpTrapFormatter>());
  mgr.ingestNative({"x", 1}, "complete garbage");
  EXPECT_EQ(mgr.stats().undecodable, 1u);
  EXPECT_EQ(mgr.stats().received, 0u);
}

TEST(EventManagerTest, TextFormatterRoundTrip) {
  TextEventFormatter fmt;
  Event e;
  e.type = "alert.load";
  e.severity = Severity::Warning;
  e.fields["load"] = Value(3.5);
  e.fields["host"] = Value("n1");
  auto encoded = fmt.encode(e);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_TRUE(fmt.accepts(*encoded));
  auto decoded = fmt.decode({"gw", 0}, *encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, "alert.load");
  EXPECT_EQ(decoded->severity, Severity::Warning);
  EXPECT_DOUBLE_EQ(decoded->fields.at("load").toReal(), 3.5);
  EXPECT_EQ(decoded->fields.at("host").toString(), "n1");
}

TEST(EventManagerTest, TransmitEncodesToNative) {
  // Paper Fig. 4: events can be passed back out to data sources.
  util::SimClock clock;
  net::Network network(clock);
  EventManager mgr(clock, nullptr, inlineOptions());
  mgr.addFormatter(std::make_unique<TextEventFormatter>());

  struct Sink final : net::RequestHandler {
    net::Payload handleRequest(const net::Address&,
                               const net::Payload&) override {
      return "";
    }
    void handleDatagram(const net::Address&, const net::Payload& b) override {
      received.push_back(b);
    }
    std::vector<net::Payload> received;
  } sink;
  network.bind({"src", 9}, &sink);

  Event e;
  e.type = "control.reset";
  EXPECT_TRUE(mgr.transmit(e, network, {"gw", 0}, {"src", 9}, "text"));
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].substr(0, 6), "EVENT ");
  EXPECT_EQ(mgr.stats().transmitted, 1u);
  // Unknown formatter name: nothing sent.
  EXPECT_FALSE(mgr.transmit(e, network, {"gw", 0}, {"src", 9}, "nope"));
}

TEST(EventManagerTest, ThreadedDispatchDeliversEverything) {
  util::SimClock clock;
  EventManagerOptions options;
  options.threadedDispatch = true;
  options.fastBufferCapacity = 64;
  EventManager mgr(clock, nullptr, options);
  std::atomic<int> count{0};
  mgr.addListener("*", [&](const Event&) { ++count; });
  for (int i = 0; i < 500; ++i) {
    Event e;
    e.type = "burst";
    mgr.ingest(e);
  }
  mgr.drain();
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(mgr.stats().dropped, 0u);  // Block policy is lossless
}

TEST(EventManagerTest, BlockPolicyLosslessUnderSlowListener) {
  // A tiny buffer plus a slow listener forces the ingesting threads to
  // back-pressure on the fast buffer; Block must still lose nothing.
  util::SimClock clock;
  EventManagerOptions options;
  options.threadedDispatch = true;
  options.fastBufferCapacity = 2;
  options.overflow = util::OverflowPolicy::Block;
  EventManager mgr(clock, nullptr, options);
  std::atomic<int> count{0};
  mgr.addListener("*", [&](const Event&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ++count;
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        Event e;
        e.type = "burst";
        mgr.ingest(e);
      }
    });
  }
  for (auto& p : producers) p.join();
  mgr.drain();
  const auto stats = mgr.stats();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(stats.received, 200u);
  EXPECT_EQ(stats.dispatched, 200u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(EventManagerTest, DropNewestUnderConcurrentProducers) {
  // The lossy policy under the same contention: every event is either
  // dispatched or counted as dropped, never silently lost.
  util::SimClock clock;
  EventManagerOptions options;
  options.threadedDispatch = true;
  options.fastBufferCapacity = 4;
  options.overflow = util::OverflowPolicy::DropNewest;
  EventManager mgr(clock, nullptr, options);
  std::atomic<int> count{0};
  mgr.addListener("*", [&](const Event&) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    ++count;
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        Event e;
        e.type = "burst";
        mgr.ingest(e);
      }
    });
  }
  for (auto& p : producers) p.join();
  mgr.drain();
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.received, 200u);
  EXPECT_EQ(stats.dispatched + stats.dropped, 200u);
  EXPECT_EQ(static_cast<std::uint64_t>(count.load()), stats.dispatched);
}

TEST(EventManagerTest, DropNewestPolicyCountsDrops) {
  util::SimClock clock;
  EventManagerOptions options;
  options.threadedDispatch = true;
  options.fastBufferCapacity = 4;
  options.overflow = util::OverflowPolicy::DropNewest;
  EventManager mgr(clock, nullptr, options);
  // A slow listener forces the buffer to back up.
  std::atomic<int> count{0};
  mgr.addListener("*", [&](const Event&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++count;
  });
  for (int i = 0; i < 200; ++i) {
    Event e;
    e.type = "burst";
    mgr.ingest(e);
  }
  mgr.drain();
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.received, 200u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.dispatched + stats.dropped, 200u);
}

}  // namespace
}  // namespace gridrm::core
