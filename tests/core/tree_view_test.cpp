#include "gridrm/core/tree_view.hpp"

#include <gtest/gtest.h>

namespace gridrm::core {
namespace {

using dbc::Value;
using dbc::ValueType;
using util::kSecond;

std::unique_ptr<dbc::VectorResultSet> sample() {
  return dbc::ResultSetBuilder()
      .addColumn("HostName", ValueType::String)
      .addColumn("Load1", ValueType::Real)
      .addRow({Value("n0"), Value(0.5)})
      .addRow({Value("n1"), Value(1.25)})
      .build();
}

TEST(RenderTableTest, AlignedColumnsWithHeader) {
  const std::string out = renderTable(*sample());
  EXPECT_NE(out.find("HostName"), std::string::npos);
  EXPECT_NE(out.find("Load1"), std::string::npos);
  EXPECT_NE(out.find("n0"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("--------"), std::string::npos);
}

TEST(RenderTableTest, MaxRowsTruncates) {
  const std::string out = renderTable(*sample(), 1);
  EXPECT_NE(out.find("n0"), std::string::npos);
  EXPECT_EQ(out.find("n1"), std::string::npos);
  EXPECT_NE(out.find("1 more rows"), std::string::npos);
}

TEST(RenderTableTest, EmptyResult) {
  dbc::VectorResultSet empty;
  EXPECT_EQ(renderTable(empty), "(empty result)\n");
}

TEST(TreeViewTest, CachedAndUncachedEntries) {
  util::SimClock clock;
  CacheController cache(clock, 60 * kSecond);
  const std::string url = "jdbc:snmp://n0:161/x";
  const std::string sql = "SELECT * FROM Processor";
  cache.insert(CacheController::key(url, sql), *sample());
  clock.advance(10 * kSecond);

  const std::string out = renderCachedTree(
      "gw-siteA", cache, clock,
      {{url, sql}, {"jdbc:ganglia://head:8649/x", sql}});

  EXPECT_NE(out.find("[gateway] gw-siteA"), std::string::npos);
  EXPECT_NE(out.find(url), std::string::npos);
  EXPECT_NE(out.find("cached 10s ago"), std::string::npos);
  EXPECT_NE(out.find("n0"), std::string::npos);
  // Second source has no cached data (Fig. 9: poll to refresh).
  EXPECT_NE(out.find("(no cached data -- poll to refresh)"),
            std::string::npos);
}

}  // namespace
}  // namespace gridrm::core
