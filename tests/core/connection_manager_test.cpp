#include "gridrm/core/connection_manager.hpp"

#include <gtest/gtest.h>

#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;

util::Url url(const std::string& text) { return *util::Url::parse(text); }

struct Fixture {
  explicit Fixture(std::size_t maxIdle = 4, bool validate = true)
      : manager(registry), pool(manager, maxIdle, validate) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    MockBehaviour b;
    b.name = "mock";
    b.accepts = {"mock"};
    driver = std::make_shared<MockDriver>(ctx, b);
    registry.registerDriver(driver);
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager manager;
  ConnectionManager pool;
  std::shared_ptr<MockDriver> driver;
};

TEST(ConnectionManagerTest, FirstAcquireCreates) {
  Fixture f;
  auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {});
  EXPECT_TRUE(static_cast<bool>(lease));
  EXPECT_EQ(f.pool.stats().creations, 1u);
  EXPECT_EQ(f.pool.stats().poolHits, 0u);
  EXPECT_EQ(f.driver->connectCalls(), 1u);
}

TEST(ConnectionManagerTest, ReleaseThenReuseHitsPool) {
  Fixture f;
  { auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {}); }
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h/x"), 1u);
  { auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {}); }
  EXPECT_EQ(f.pool.stats().poolHits, 1u);
  EXPECT_EQ(f.pool.stats().creations, 1u);
  EXPECT_EQ(f.driver->connectCalls(), 1u);  // connected exactly once
}

TEST(ConnectionManagerTest, DistinctSourcesDistinctPools) {
  Fixture f;
  { auto lease = f.pool.acquire(url("jdbc:mock://h1/x"), {}); }
  { auto lease = f.pool.acquire(url("jdbc:mock://h2/x"), {}); }
  EXPECT_EQ(f.pool.stats().creations, 2u);
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h1/x"), 1u);
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h2/x"), 1u);
}

TEST(ConnectionManagerTest, ConcurrentLeasesCreateSeparateConnections) {
  Fixture f;
  auto a = f.pool.acquire(url("jdbc:mock://h/x"), {});
  auto b = f.pool.acquire(url("jdbc:mock://h/x"), {});
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(f.pool.stats().creations, 2u);
}

TEST(ConnectionManagerTest, MaxIdleCapDiscardsExtras) {
  Fixture f(/*maxIdle=*/1);
  {
    auto a = f.pool.acquire(url("jdbc:mock://h/x"), {});
    auto b = f.pool.acquire(url("jdbc:mock://h/x"), {});
  }  // both released; only one kept
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h/x"), 1u);
  EXPECT_EQ(f.pool.stats().discards, 1u);
}

TEST(ConnectionManagerTest, ZeroIdleDisablesPooling) {
  Fixture f(/*maxIdle=*/0);
  { auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {}); }
  { auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {}); }
  EXPECT_EQ(f.pool.stats().creations, 2u);
  EXPECT_EQ(f.pool.stats().poolHits, 0u);
}

TEST(ConnectionManagerTest, ClosedConnectionNotPooled) {
  Fixture f;
  {
    auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {});
    lease->close();
  }
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h/x"), 0u);
}

TEST(ConnectionManagerTest, PoisonedLeaseDiscardedAndCacheCleared) {
  Fixture f;
  (void)f.manager.obtainConnection(url("jdbc:mock://h/x"), {});
  {
    auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {});
    lease.poison();
  }
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h/x"), 0u);
  EXPECT_TRUE(f.manager.cachedDriver("jdbc:mock://h/x").empty());
}

TEST(ConnectionManagerTest, MoveSemanticsTransferOwnership) {
  Fixture f;
  auto a = f.pool.acquire(url("jdbc:mock://h/x"), {});
  ConnectionManager::Lease b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
}

TEST(ConnectionManagerTest, ClearDropsIdleConnections) {
  Fixture f;
  { auto lease = f.pool.acquire(url("jdbc:mock://h/x"), {}); }
  f.pool.clear();
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h/x"), 0u);
}

TEST(ConnectionManagerTest, DropDriverRemovesItsIdleConnections) {
  Fixture f;
  { auto lease = f.pool.acquire(url("jdbc:mock://h1/x"), {}); }
  { auto lease = f.pool.acquire(url("jdbc:mock://h2/x"), {}); }
  EXPECT_EQ(f.pool.dropDriver("other"), 0u);
  EXPECT_EQ(f.pool.dropDriver("mock"), 2u);
  EXPECT_EQ(f.pool.idleCount("jdbc:mock://h1/x"), 0u);
}

TEST(ConnectionManagerTest, AcquireFailurePropagates) {
  Fixture f;
  f.driver->behaviour().failConnect = true;
  EXPECT_THROW(f.pool.acquire(url("jdbc:mock://h/x"), {}), dbc::SqlError);
}

}  // namespace
}  // namespace gridrm::core
