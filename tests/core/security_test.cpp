#include "gridrm/core/security.hpp"

#include <gtest/gtest.h>

#include "gridrm/dbc/error.hpp"

namespace gridrm::core {
namespace {

TEST(PrincipalTest, Roles) {
  Principal p{"alice", {"monitor", "ops"}};
  EXPECT_TRUE(p.hasRole("monitor"));
  EXPECT_FALSE(p.hasRole("admin"));
  EXPECT_TRUE(Principal::admin().hasRole("admin"));
}

TEST(CoarseSecurityTest, DefaultPolicyShape) {
  CoarseSecurityLayer cgsl = CoarseSecurityLayer::defaults();
  const Principal admin = Principal::admin();
  const Principal monitor = Principal::monitor();
  const Principal guest{"g", {"guest"}};

  EXPECT_TRUE(cgsl.check(admin, Operation::DriverAdmin));
  EXPECT_TRUE(cgsl.check(admin, Operation::RealTimeQuery));
  EXPECT_TRUE(cgsl.check(monitor, Operation::RealTimeQuery));
  EXPECT_TRUE(cgsl.check(monitor, Operation::HistoricalQuery));
  EXPECT_TRUE(cgsl.check(monitor, Operation::EventSubscribe));
  EXPECT_FALSE(cgsl.check(monitor, Operation::DriverAdmin));
  EXPECT_TRUE(cgsl.check(guest, Operation::RealTimeQuery));
  EXPECT_FALSE(cgsl.check(guest, Operation::HistoricalQuery));
}

TEST(CoarseSecurityTest, RequireThrowsSecurityDenied) {
  CoarseSecurityLayer cgsl = CoarseSecurityLayer::defaults();
  const Principal guest{"g", {"guest"}};
  try {
    cgsl.require(guest, Operation::DriverAdmin);
    FAIL();
  } catch (const dbc::SqlError& e) {
    EXPECT_EQ(e.code(), dbc::ErrorCode::SecurityDenied);
  }
}

TEST(CoarseSecurityTest, GrantAndRevoke) {
  CoarseSecurityLayer cgsl;
  const Principal p{"x", {"role"}};
  EXPECT_FALSE(cgsl.check(p, Operation::RealTimeQuery));
  cgsl.allow("role", Operation::RealTimeQuery);
  EXPECT_TRUE(cgsl.check(p, Operation::RealTimeQuery));
  cgsl.revoke("role", Operation::RealTimeQuery);
  EXPECT_FALSE(cgsl.check(p, Operation::RealTimeQuery));
}

TEST(CoarseSecurityTest, WildcardRole) {
  CoarseSecurityLayer cgsl;
  cgsl.allow("*", Operation::RealTimeQuery);
  EXPECT_TRUE(cgsl.check(Principal{"anyone", {"whatever"}},
                         Operation::RealTimeQuery));
}

TEST(GlobMatchTest, Patterns) {
  EXPECT_TRUE(globMatch("*", "anything"));
  EXPECT_TRUE(globMatch("siteA-*", "siteA-node03"));
  EXPECT_FALSE(globMatch("siteA-*", "siteB-node03"));
  EXPECT_TRUE(globMatch("*node*", "siteA-node03"));
  EXPECT_TRUE(globMatch("exact", "exact"));
  EXPECT_FALSE(globMatch("exact", "exactly"));
  EXPECT_TRUE(globMatch("n?de", "node"));
  EXPECT_FALSE(globMatch("n?de", "noode"));
  EXPECT_TRUE(globMatch("", ""));
  EXPECT_FALSE(globMatch("", "x"));
}

TEST(FineSecurityTest, FirstMatchWins) {
  FineSecurityLayer fgsl(/*defaultAllow=*/true);
  fgsl.addRule({"guest", "secure-*", "*", false});  // deny guests on secure
  fgsl.addRule({"*", "secure-*", "Processor", true});  // never reached for guests

  const Principal guest{"g", {"guest"}};
  const Principal monitor{"m", {"monitor"}};
  EXPECT_FALSE(fgsl.check(guest, "secure-node01", "Processor"));
  EXPECT_TRUE(fgsl.check(monitor, "secure-node01", "Processor"));
  EXPECT_TRUE(fgsl.check(guest, "open-node01", "Processor"));  // default
}

TEST(FineSecurityTest, DefaultDeny) {
  FineSecurityLayer fgsl(/*defaultAllow=*/false);
  fgsl.addRule({"monitor", "*", "Processor", true});
  const Principal monitor{"m", {"monitor"}};
  EXPECT_TRUE(fgsl.check(monitor, "h", "Processor"));
  EXPECT_FALSE(fgsl.check(monitor, "h", "Memory"));
  EXPECT_FALSE(fgsl.check(Principal{"g", {"guest"}}, "h", "Processor"));
}

TEST(FineSecurityTest, GroupPatternGlobs) {
  FineSecurityLayer fgsl(true);
  fgsl.addRule({"guest", "*", "Network*", false});
  const Principal guest{"g", {"guest"}};
  EXPECT_FALSE(fgsl.check(guest, "h", "NetworkAdapter"));
  EXPECT_FALSE(fgsl.check(guest, "h", "NetworkForecast"));
  EXPECT_TRUE(fgsl.check(guest, "h", "Processor"));
}

TEST(FineSecurityTest, RequireThrows) {
  FineSecurityLayer fgsl(false);
  EXPECT_THROW(fgsl.require(Principal{"x", {}}, "h", "Processor"),
               dbc::SqlError);
}

TEST(FineSecurityTest, ClearRulesRestoresDefault) {
  FineSecurityLayer fgsl(true);
  fgsl.addRule({"*", "*", "*", false});
  EXPECT_FALSE(fgsl.check(Principal{"x", {}}, "h", "G"));
  fgsl.clearRules();
  EXPECT_TRUE(fgsl.check(Principal{"x", {}}, "h", "G"));
}

}  // namespace
}  // namespace gridrm::core
