#include "gridrm/core/gateway.hpp"

#include <gtest/gtest.h>

#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

TEST(GatewayConfigTest, DefaultsWhenEmpty) {
  GatewayOptions o = GatewayOptions::fromConfig(util::Config{});
  GatewayOptions d;
  EXPECT_EQ(o.name, d.name);
  EXPECT_EQ(o.cacheTtl, d.cacheTtl);
  EXPECT_EQ(o.poolMaxIdlePerSource, d.poolMaxIdlePerSource);
  EXPECT_EQ(o.failurePolicy.action, FailurePolicy::Action::DynamicReselect);
  EXPECT_EQ(o.sessionIdleTimeout, d.sessionIdleTimeout);
  EXPECT_EQ(o.streamOptions.queueCapacity, d.streamOptions.queueCapacity);
  EXPECT_EQ(o.streamOptions.overflow, stream::OverflowPolicy::DropOldest);
  EXPECT_EQ(o.streamOptions.replayRows, 0u);
}

TEST(GatewayConfigTest, ParsesPolicyFile) {
  util::Config cfg = util::Config::parse(
      "# gateway policy (Fig. 2)\n"
      "gateway.name = gw-prod\n"
      "gateway.host = gw.prod.site\n"
      "cache.ttl_ms = 2500\n"
      "cache.max_entries = 128\n"
      "pool.max_idle = 2\n"
      "pool.validate = false\n"
      "query.workers = 8\n"
      "query.deadline_ms = 250\n"
      "query.hedge_delay_ms = 40\n"
      "scheduler.workers = 6\n"
      "scheduler.max_queue_depth = 64\n"
      "scheduler.background_share = 40\n"
      "breaker.failure_threshold = 4\n"
      "breaker.cooldown_ms = 1500\n"
      "drivers.register_defaults = false\n"
      "events.buffer_capacity = 64\n"
      "events.drop_newest = true\n"
      "events.record_history = false\n"
      "stream.queue_capacity = 32\n"
      "stream.overflow = block\n"
      "stream.replay_rows = 5\n"
      "failure.action = retry\n"
      "failure.retries = 3\n"
      "session.idle_timeout_s = 120\n");
  GatewayOptions o = GatewayOptions::fromConfig(cfg);
  EXPECT_EQ(o.name, "gw-prod");
  EXPECT_EQ(o.host, "gw.prod.site");
  EXPECT_EQ(o.cacheTtl, 2500 * util::kMillisecond);
  EXPECT_EQ(o.cacheMaxEntries, 128u);
  EXPECT_EQ(o.poolMaxIdlePerSource, 2u);
  EXPECT_FALSE(o.validatePooledConnections);
  EXPECT_EQ(o.queryWorkers, 8u);
  EXPECT_EQ(o.queryDeadline, 250 * util::kMillisecond);
  EXPECT_EQ(o.queryHedgeDelay, 40 * util::kMillisecond);
  EXPECT_EQ(o.schedulerWorkers, 6u);
  EXPECT_EQ(o.schedulerMaxQueueDepth, 64u);
  EXPECT_EQ(o.schedulerBackgroundShare, 40u);
  EXPECT_EQ(o.breaker.failureThreshold, 4u);
  EXPECT_EQ(o.breaker.cooldown, 1500 * util::kMillisecond);
  EXPECT_FALSE(o.registerDefaultDrivers);
  EXPECT_EQ(o.eventOptions.fastBufferCapacity, 64u);
  EXPECT_EQ(o.eventOptions.overflow, util::OverflowPolicy::DropNewest);
  EXPECT_FALSE(o.eventOptions.recordHistory);
  EXPECT_EQ(o.streamOptions.queueCapacity, 32u);
  EXPECT_EQ(o.streamOptions.overflow, stream::OverflowPolicy::Block);
  EXPECT_EQ(o.streamOptions.replayRows, 5u);
  EXPECT_EQ(o.failurePolicy.action, FailurePolicy::Action::Retry);
  EXPECT_EQ(o.failurePolicy.retries, 3);
  EXPECT_EQ(o.sessionIdleTimeout, 120 * util::kSecond);
}

TEST(GatewayConfigTest, FailureActionNames) {
  for (auto [text, action] :
       {std::pair{"report", FailurePolicy::Action::Report},
        std::pair{"retry", FailurePolicy::Action::Retry},
        std::pair{"trynext", FailurePolicy::Action::TryNext},
        std::pair{"dynamic", FailurePolicy::Action::DynamicReselect},
        std::pair{"junk", FailurePolicy::Action::DynamicReselect}}) {
    util::Config cfg;
    cfg.set("failure.action", text);
    EXPECT_EQ(GatewayOptions::fromConfig(cfg).failurePolicy.action, action)
        << text;
  }
}

TEST(GatewayConfigTest, StreamOverflowNames) {
  for (auto [text, policy] :
       {std::pair{"dropoldest", stream::OverflowPolicy::DropOldest},
        std::pair{"block", stream::OverflowPolicy::Block},
        std::pair{"cancel", stream::OverflowPolicy::CancelSlowConsumer},
        // Unknown names keep the default rather than failing startup.
        std::pair{"junk", stream::OverflowPolicy::DropOldest}}) {
    util::Config cfg;
    cfg.set("stream.overflow", text);
    EXPECT_EQ(GatewayOptions::fromConfig(cfg).streamOptions.overflow, policy)
        << text;
  }
}

TEST(GatewayConfigTest, HedgeDelayAutoKeyword) {
  util::Config cfg;
  cfg.set("query.hedge_delay_ms", "auto");
  EXPECT_EQ(GatewayOptions::fromConfig(cfg).queryHedgeDelay, kHedgeAuto);
  // And defaults: both timing knobs off, breakers disabled.
  GatewayOptions d;
  EXPECT_EQ(d.queryDeadline, 0);
  EXPECT_EQ(d.queryHedgeDelay, 0);
  EXPECT_EQ(d.breaker.failureThreshold, 0u);
}

TEST(GatewayConfigTest, SourceHealthIntrospection) {
  util::SimClock clock;
  net::Network network(clock);
  util::Config cfg;
  cfg.set("breaker.failure_threshold", "1");
  cfg.set("breaker.cooldown_ms", "60000");
  cfg.set("drivers.register_defaults", "false");
  Gateway gateway(network, clock, GatewayOptions::fromConfig(cfg));
  drivers::MockBehaviour b;
  b.failQueriesFrom = 0;  // the source is down
  auto driver =
      std::make_shared<drivers::MockDriver>(gateway.driverContext(), b);
  const std::string token = gateway.openSession(Principal::admin());
  gateway.registerDriver(token, driver);

  QueryOptions options;
  options.useCache = false;
  const std::string url = "jdbc:mock://h/x";
  EXPECT_FALSE(gateway
                   .submitQuery(token, {url}, "SELECT * FROM Processor",
                                options)
                   .complete());
  auto health = gateway.sourceHealth(token);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].url, url);
  EXPECT_EQ(health[0].state, BreakerState::Open);
  EXPECT_EQ(health[0].failures, 1u);

  // While open, the agent is not contacted again.
  EXPECT_FALSE(gateway
                   .submitQuery(token, {url}, "SELECT * FROM Processor",
                                options)
                   .complete());
  EXPECT_EQ(driver->queryCalls(), 1u);
  EXPECT_EQ(gateway.requestManager().stats().breakerSkips, 1u);
}

TEST(GatewayConfigTest, SchedulerWiredAndIntrospectable) {
  util::SimClock clock;
  net::Network network(clock);
  util::Config cfg;
  cfg.set("query.workers", "3");
  Gateway gateway(network, clock, GatewayOptions::fromConfig(cfg));
  // scheduler.workers = 0 inherits query.workers.
  EXPECT_EQ(gateway.scheduler().workerCount(), 3u);

  const std::string token = gateway.openSession(Principal::monitor());
  const auto stats = gateway.schedulerStats(token);
  EXPECT_EQ(stats.lane(Lane::Interactive).queued, 0u);
  EXPECT_THROW((void)gateway.schedulerStats("bogus-token"), dbc::SqlError);
}

TEST(GatewayConfigTest, ConfiguredGatewayRuns) {
  util::SimClock clock;
  net::Network network(clock);
  util::Config cfg;
  cfg.set("gateway.name", "gw-cfg");
  cfg.set("cache.ttl_ms", "1000");
  Gateway gateway(network, clock, GatewayOptions::fromConfig(cfg));
  EXPECT_EQ(gateway.name(), "gw-cfg");
  EXPECT_EQ(gateway.cache().defaultTtl(), util::kSecond);
  const std::string token = gateway.openSession(Principal::admin());
  EXPECT_EQ(gateway.listDrivers(token).size(), 7u);
}

}  // namespace
}  // namespace gridrm::core
