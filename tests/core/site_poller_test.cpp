#include "gridrm/core/site_poller.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;
using util::kSecond;

struct Fixture {
  explicit Fixture(RequestManagerTuning tuning = {})
      : driverManager(registry),
        pool(driverManager),
        cache(clock, 60 * kSecond),
        fgsl(true),
        rm(pool, cache, fgsl, &db, clock, 1, tuning),
        events(clock, &db,
               [] {
                 EventManagerOptions o;
                 o.threadedDispatch = false;
                 return o;
               }()),
        alerts(rm, events, clock),
        poller(rm, clock, Principal::monitor(), &alerts) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    driver = std::make_shared<MockDriver>(ctx, MockBehaviour{});
    registry.registerDriver(driver);
  }

  PollTask task(util::Duration interval = 30 * kSecond) {
    PollTask t;
    t.url = "jdbc:mock://h/x";
    t.sql = "SELECT * FROM Processor";
    t.interval = interval;
    return t;
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager driverManager;
  ConnectionManager pool;
  CacheController cache;
  FineSecurityLayer fgsl;
  store::Database db;
  RequestManager rm;
  EventManager events;
  AlertManager alerts;
  SitePoller poller;
  std::shared_ptr<MockDriver> driver;
};

TEST(SitePollerTest, FirstTickRunsEveryTask) {
  Fixture f;
  f.poller.addTask(f.task());
  f.poller.addTask(f.task());
  EXPECT_EQ(f.poller.tick(), 2u);
  EXPECT_EQ(f.poller.stats().polls, 2u);
}

TEST(SitePollerTest, IntervalRespected) {
  Fixture f;
  f.poller.addTask(f.task(30 * kSecond));
  EXPECT_EQ(f.poller.tick(), 1u);
  f.clock.advance(10 * kSecond);
  EXPECT_EQ(f.poller.tick(), 0u);  // not due yet
  f.clock.advance(25 * kSecond);
  EXPECT_EQ(f.poller.tick(), 1u);
}

TEST(SitePollerTest, RunForAccumulatesHistory) {
  Fixture f;
  f.poller.addTask(f.task(30 * kSecond));
  f.poller.runFor(5 * 60 * kSecond, 10 * kSecond);
  // One poll every 30s over 5 minutes: ~11 samples recorded.
  const auto rows = f.db.rowCount("HistoryProcessor");
  EXPECT_GE(rows, 10u);
  EXPECT_LE(rows, 12u);
}

TEST(SitePollerTest, RefreshCacheLeavesFreshView) {
  Fixture f;
  PollTask t = f.task();
  f.poller.addTask(t);
  (void)f.poller.tick();
  // An interactive client is served from the poller-refreshed cache
  // without the driver being touched again.
  const auto queriesAfterPoll = f.driver->queryCalls();
  QueryResult viewed = f.rm.queryOne(Principal::monitor(), t.url, t.sql);
  EXPECT_EQ(viewed.servedFromCache, 1u);
  EXPECT_EQ(f.driver->queryCalls(), queriesAfterPoll);
}

TEST(SitePollerTest, CacheRefreshOptional) {
  Fixture f;
  PollTask t = f.task();
  t.refreshCache = false;
  f.poller.addTask(t);
  (void)f.poller.tick();
  QueryResult viewed = f.rm.queryOne(Principal::monitor(), t.url, t.sql);
  EXPECT_EQ(viewed.servedFromCache, 0u);
}

TEST(SitePollerTest, FailuresCountedAndNonFatal) {
  Fixture f;
  PollTask bad = f.task();
  bad.url = "jdbc:none://h/x";
  f.poller.addTask(bad);
  f.poller.addTask(f.task());
  EXPECT_EQ(f.poller.tick(), 2u);
  EXPECT_EQ(f.poller.stats().pollFailures, 1u);
  EXPECT_EQ(f.poller.stats().polls, 2u);
}

TEST(SitePollerTest, AlertsEvaluatedAfterPolls) {
  Fixture f;
  AlertRule rule;
  rule.name = "Load";
  rule.url = "jdbc:mock://h/x";
  rule.sql = "SELECT * FROM Processor";
  rule.condition = "Load1 > 0.25";  // mock serves 0.5
  rule.holdOff = 0;
  f.alerts.addRule(rule);
  f.poller.addTask(f.task());
  (void)f.poller.tick();
  EXPECT_EQ(f.poller.stats().alertsRaised, 1u);
}

TEST(SitePollerTest, RemoveTasksByUrl) {
  Fixture f;
  f.poller.addTask(f.task());
  f.poller.addTask(f.task());
  PollTask other = f.task();
  other.url = "jdbc:mock://other/x";
  f.poller.addTask(other);
  EXPECT_EQ(f.poller.removeTasks("jdbc:mock://h/x"), 2u);
  EXPECT_EQ(f.poller.taskCount(), 1u);
}

TEST(SitePollerTest, RetentionPrunesOldHistoryAndEvents) {
  Fixture f;
  f.poller.addTask(f.task(10 * kSecond));
  f.poller.runFor(10 * 60 * kSecond, 10 * kSecond);  // 10 minutes of data
  const auto before = f.db.rowCount("HistoryProcessor");
  ASSERT_GT(before, 30u);
  // Keep only the last 2 minutes.
  const std::size_t dropped =
      f.poller.enforceRetention(f.db, 2 * 60 * kSecond);
  EXPECT_GT(dropped, 0u);
  const auto after = f.db.rowCount("HistoryProcessor");
  EXPECT_LT(after, before);
  EXPECT_GE(after, 11u);  // ~12 samples in the kept window
}

TEST(SitePollerTest, StreamSinkReceivesEveryRefresh) {
  Fixture f;
  stream::ContinuousQueryEngine engine(f.clock);
  f.poller.setStreamSink(&engine);
  const auto id = engine.subscribe(
      "jdbc:mock://h/x", "SELECT * FROM Processor WHERE Load1 < 1.0");
  f.poller.addTask(f.task(30 * kSecond));

  EXPECT_EQ(f.poller.tick(), 1u);
  f.clock.advance(30 * kSecond);
  EXPECT_EQ(f.poller.tick(), 1u);

  auto deltas = engine.poll(id);
  ASSERT_EQ(deltas.size(), 2u);  // one delta per poll refresh
  EXPECT_EQ(deltas[0].sourceUrl, "jdbc:mock://h/x");
  EXPECT_EQ(deltas[0].table, "Processor");
  EXPECT_EQ(f.poller.stats().rowsStreamed, 2u);
}

TEST(SitePollerTest, StreamSinkDetachable) {
  Fixture f;
  stream::ContinuousQueryEngine engine(f.clock);
  f.poller.setStreamSink(&engine);
  const auto id = engine.subscribe("", "SELECT * FROM Processor");
  f.poller.addTask(f.task(30 * kSecond));
  (void)f.poller.tick();
  EXPECT_EQ(engine.queueDepth(id), 1u);

  f.poller.setStreamSink(nullptr);
  f.clock.advance(30 * kSecond);
  (void)f.poller.tick();
  EXPECT_EQ(engine.queueDepth(id), 1u);  // feed stopped
  EXPECT_EQ(f.poller.stats().rowsStreamed, 1u);
}

TEST(SitePollerTest, SaturatedSchedulerDefersPollsToNextTick) {
  // The poller's RequestManager shares a deliberately tiny scheduler:
  // one parked worker and a one-deep Background lane. A due poll that
  // is refused at admission is deferred — counted, left due, and run on
  // the next tick once the backlog clears.
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 1, .maxQueueDepth = 1});
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  ctx.clock = &clock;
  ctx.schemaManager = &schemaManager;
  dbc::DriverRegistry registry;
  GridRmDriverManager driverManager(registry);
  ConnectionManager pool(driverManager);
  CacheController cache(clock, 60 * kSecond);
  FineSecurityLayer fgsl(true);
  store::Database db;
  RequestManager rm(pool, cache, fgsl, &db, clock, scheduler);
  auto driver = std::make_shared<MockDriver>(ctx, MockBehaviour{});
  registry.registerDriver(driver);
  SitePoller poller(rm, clock, Principal::monitor());
  PollTask t;
  t.url = "jdbc:mock://h/x";
  t.sql = "SELECT * FROM Processor";
  t.interval = 30 * kSecond;
  poller.addTask(t);

  // Park the worker, then fill the Background lane to its bound.
  std::atomic<bool> release{false};
  ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] {
    while (!release) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }));
  for (int i = 0; i < 20000; ++i) {  // until the worker holds the parker
    if (scheduler.stats().lane(Lane::Interactive).queued == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(scheduler.submit(Lane::Background, [] {}));

  EXPECT_EQ(poller.tick(), 0u);  // due, but shed at admission
  EXPECT_EQ(poller.stats().pollsDeferred, 1u);
  EXPECT_EQ(poller.stats().polls, 0u);
  EXPECT_EQ(driver->queryCalls(), 0u);

  release = true;
  scheduler.waitIdle();
  EXPECT_EQ(poller.tick(), 1u);  // still due: lastRun was never stamped
  EXPECT_EQ(poller.stats().polls, 1u);
  EXPECT_EQ(driver->queryCalls(), 1u);
}

TEST(SitePollerTest, SkipsSourcesWithOpenBreaker) {
  RequestManagerTuning tuning;
  tuning.breaker.failureThreshold = 1;
  tuning.breaker.cooldown = 3600 * kSecond;
  Fixture f(tuning);
  f.driver->behaviour().failQueriesFrom = 0;  // the source is down
  f.poller.addTask(f.task(10 * kSecond));

  EXPECT_EQ(f.poller.tick(), 1u);  // first poll fails and trips the breaker
  EXPECT_EQ(f.poller.stats().pollFailures, 1u);
  EXPECT_EQ(f.driver->queryCalls(), 1u);

  f.clock.advance(10 * kSecond);
  EXPECT_EQ(f.poller.tick(), 0u);  // due, but the breaker is open
  EXPECT_EQ(f.poller.stats().pollsSkippedOpen, 1u);
  EXPECT_EQ(f.driver->queryCalls(), 1u);  // degraded source left alone
}

}  // namespace
}  // namespace gridrm::core
