#include "gridrm/core/alert_manager.hpp"

#include <gtest/gtest.h>

#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;
using util::kSecond;
using util::Value;

struct Fixture {
  Fixture()
      : driverManager(registry),
        pool(driverManager),
        cache(clock, 0),
        fgsl(true),
        rm(pool, cache, fgsl, &db, clock, 1),
        events(clock, &db,
               [] {
                 EventManagerOptions o;
                 o.threadedDispatch = false;
                 return o;
               }()),
        alerts(rm, events, clock) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
    MockBehaviour b;
    b.hostName = "node00";
    b.load1 = 0.5;
    driver = std::make_shared<MockDriver>(ctx, b);
    registry.registerDriver(driver);
    events.addListener("gateway.alert",
                       [this](const Event& e) { seen.push_back(e); });
  }

  AlertRule loadRule(double threshold, util::Duration holdOff = 0) {
    AlertRule rule;
    rule.name = "HighLoad";
    rule.url = "jdbc:mock://h/x";
    rule.sql = "SELECT * FROM Processor";
    rule.condition = "Load1 > " + util::Value(threshold).toString();
    rule.severity = Severity::Critical;
    rule.holdOff = holdOff;
    return rule;
  }

  util::SimClock clock;
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager driverManager;
  ConnectionManager pool;
  CacheController cache;
  FineSecurityLayer fgsl;
  store::Database db;
  RequestManager rm;
  EventManager events;
  AlertManager alerts;
  std::shared_ptr<MockDriver> driver;
  std::vector<Event> seen;
  Principal monitor = Principal::monitor();
};

TEST(AlertManagerTest, ViolationRaisesEvent) {
  Fixture f;
  f.alerts.addRule(f.loadRule(0.25));
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 1u);
  ASSERT_EQ(f.seen.size(), 1u);
  EXPECT_EQ(f.seen[0].type, "gateway.alert.highload");
  EXPECT_EQ(f.seen[0].source, "node00");
  EXPECT_EQ(f.seen[0].severity, Severity::Critical);
  EXPECT_EQ(f.seen[0].field("rule"), "HighLoad");
  EXPECT_EQ(f.seen[0].field("HostName"), "node00");
}

TEST(AlertManagerTest, NoViolationNoEvent) {
  Fixture f;
  f.alerts.addRule(f.loadRule(2.0));  // load is 0.5
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 0u);
  EXPECT_TRUE(f.seen.empty());
  EXPECT_EQ(f.alerts.stats().rowsExamined, 1u);
}

TEST(AlertManagerTest, HoldOffSuppressesRepeats) {
  Fixture f;
  f.alerts.addRule(f.loadRule(0.25, /*holdOff=*/60 * kSecond));
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 1u);
  f.clock.advance(30 * kSecond);
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 0u);  // still held off
  f.clock.advance(31 * kSecond);
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 1u);  // hold-off expired
  EXPECT_EQ(f.alerts.stats().suppressedByHoldOff, 1u);
}

TEST(AlertManagerTest, HoldOffIsPerSubject) {
  Fixture f;
  f.alerts.addRule(f.loadRule(0.25, 60 * kSecond));
  (void)f.alerts.evaluate(f.monitor);
  // A different host violating immediately after still alerts.
  f.driver->behaviour().hostName = "node01";
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 1u);
}

TEST(AlertManagerTest, BadRuleSqlRejectedAtInstall) {
  Fixture f;
  AlertRule rule = f.loadRule(1.0);
  rule.sql = "not sql";
  EXPECT_THROW(f.alerts.addRule(rule), dbc::SqlError);
  rule = f.loadRule(1.0);
  rule.condition = "&&& nope";
  EXPECT_THROW(f.alerts.addRule(rule), dbc::SqlError);
}

TEST(AlertManagerTest, ConditionOnMissingColumnCounted) {
  Fixture f;
  AlertRule rule = f.loadRule(1.0);
  rule.condition = "NoSuchColumn > 1";
  f.alerts.addRule(rule);
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 0u);
  EXPECT_EQ(f.alerts.stats().conditionErrors, 1u);
}

TEST(AlertManagerTest, QueryFailureCounted) {
  Fixture f;
  AlertRule rule = f.loadRule(1.0);
  rule.url = "jdbc:nosuch://h/x";
  f.alerts.addRule(rule);
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 0u);
  EXPECT_EQ(f.alerts.stats().queryFailures, 1u);
}

TEST(AlertManagerTest, RuleReplaceAndRemove) {
  Fixture f;
  f.alerts.addRule(f.loadRule(0.25));
  AlertRule relaxed = f.loadRule(5.0);  // same name, new threshold
  f.alerts.addRule(relaxed);
  EXPECT_EQ(f.alerts.rules().size(), 1u);
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 0u);
  EXPECT_TRUE(f.alerts.removeRule("HighLoad"));
  EXPECT_FALSE(f.alerts.removeRule("HighLoad"));
  EXPECT_EQ(f.alerts.rules().size(), 0u);
}

TEST(AlertManagerTest, EvaluateSingleRuleByName) {
  Fixture f;
  f.alerts.addRule(f.loadRule(0.25));
  EXPECT_EQ(f.alerts.evaluateRule(f.monitor, "HighLoad"), 1u);
  EXPECT_THROW(f.alerts.evaluateRule(f.monitor, "Nope"), dbc::SqlError);
}

TEST(AlertManagerTest, AlertsRecordedInEventHistory) {
  Fixture f;
  f.alerts.addRule(f.loadRule(0.25));
  (void)f.alerts.evaluate(f.monitor);
  auto rs = f.db.query(
      "SELECT * FROM EventHistory WHERE Type = 'gateway.alert.highload'");
  EXPECT_EQ(rs->rowCount(), 1u);
}

TEST(AlertManagerTest, CompositeConditions) {
  Fixture f;
  AlertRule rule = f.loadRule(0.0);
  rule.condition = "Load1 > 0.25 AND HostName LIKE 'node%' AND Load1 < 10";
  f.alerts.addRule(rule);
  EXPECT_EQ(f.alerts.evaluate(f.monitor), 1u);
}

}  // namespace
}  // namespace gridrm::core
