// End-to-end streaming-SQL scenarios: continuous queries subscribed
// through the ACIL and the Global layer, fed by the SitePoller's
// harvesting loop and the Event Manager, delivered across gateways
// over the simulated network.
#include <gtest/gtest.h>

#include <vector>

#include "../global/global_fixture.hpp"
#include "gridrm/core/site_poller.hpp"

namespace gridrm::global {
namespace {

using core::SitePoller;
using stream::OverflowPolicy;
using stream::StreamDelta;
using stream::StreamOptions;
using testutil::GridFixture;

/// A poller at gateway B harvesting its site's head SNMP agent into the
/// gateway cache, history and the stream engine — the production wiring.
std::unique_ptr<SitePoller> makePollerB(GridFixture& f) {
  auto poller = std::make_unique<SitePoller>(
      f.gatewayB->requestManager(), f.clock, core::Principal::monitor());
  poller->setStreamSink(&f.gatewayB->streamEngine());
  core::PollTask task;
  task.url = f.siteB->headUrl("snmp");
  task.sql = "SELECT * FROM Processor";
  task.interval = 30 * util::kSecond;
  poller->addTask(task);
  return poller;
}

TEST(StreamFlowTest, RemoteSubscriptionStreamsDeltasAcrossGateways) {
  // The acceptance scenario: a consumer at gateway A subscribes to a
  // source owned by gateway B; B's harvesting loop picks up the metric
  // change and the delta crosses the network into A's consumer.
  GridFixture f;
  std::vector<StreamDelta> received;
  const auto id = f.globalA->subscribeGlobal(
      f.adminA, f.siteB->headUrl("snmp"),
      "SELECT HostName, Load1 FROM Processor WHERE Load1 >= 0.0",
      [&](const StreamDelta& d) { received.push_back(d); });

  EXPECT_EQ(f.globalA->stats().streamSubscriptionsSent, 1u);
  EXPECT_EQ(f.globalB->stats().streamSubscriptionsServed, 1u);
  EXPECT_TRUE(f.gatewayA->streamEngine().isActive(id));

  auto poller = makePollerB(f);
  EXPECT_EQ(poller->tick(), 1u);  // first refresh at B...
  f.quiesce();                     // drains run on the scheduler
  ASSERT_EQ(received.size(), 1u);  // ...streams to A
  f.clock.advance(60 * util::kSecond);  // B's metrics evolve
  EXPECT_EQ(poller->tick(), 1u);
  f.quiesce();
  ASSERT_EQ(received.size(), 2u);

  const auto host = received[0].columns.columnIndex("HostName");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(received[0].rows.at(0).at(*host).toString(), "siteB-node00");
  EXPECT_EQ(received[0].table, "Processor");
  // Sequence numbers are assigned by A's local (passive) endpoint.
  EXPECT_EQ(received[0].sequence, 1u);
  EXPECT_EQ(received[1].sequence, 2u);

  EXPECT_GE(f.globalB->stats().streamDeltasRelayed, 2u);
  EXPECT_GE(f.globalA->stats().streamDeltasReceived, 2u);
  EXPECT_GE(f.gatewayB->streamEngine().stats().deltasDelivered, 2u);
}

TEST(StreamFlowTest, LocalSubscriptionNeverLeavesTheGateway) {
  GridFixture f;
  std::vector<StreamDelta> received;
  (void)f.globalB->subscribeGlobal(
      f.adminB, f.siteB->headUrl("snmp"), "SELECT * FROM Processor",
      [&](const StreamDelta& d) { received.push_back(d); });
  EXPECT_EQ(f.globalB->stats().streamSubscriptionsSent, 0u);

  auto poller = makePollerB(f);
  (void)poller->tick();
  f.quiesce();
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(f.globalB->stats().streamDeltasRelayed, 0u);
}

TEST(StreamFlowTest, UnsubscribeGlobalTearsDownBothEnds) {
  GridFixture f;
  std::vector<StreamDelta> received;
  const auto id = f.globalA->subscribeGlobal(
      f.adminA, f.siteB->headUrl("snmp"), "SELECT * FROM Processor",
      [&](const StreamDelta& d) { received.push_back(d); });
  EXPECT_EQ(f.gatewayB->streamEngine().activeCount(), 1u);

  f.globalA->unsubscribeGlobal(f.adminA, id);
  EXPECT_EQ(f.gatewayB->streamEngine().activeCount(), 0u);
  EXPECT_FALSE(f.gatewayA->streamEngine().isActive(id));

  auto poller = makePollerB(f);
  (void)poller->tick();
  f.quiesce();
  EXPECT_TRUE(received.empty());
}

TEST(StreamFlowTest, DropOldestOverflowShedsWithoutBlockingPoller) {
  // The companion acceptance scenario: a pull-mode subscriber that never
  // polls must not wedge the harvesting loop — deltas beyond the queue
  // capacity are shed oldest-first and the counters account for every
  // one of them.
  GridFixture f;
  StreamOptions options;
  options.queueCapacity = 2;
  options.overflow = OverflowPolicy::DropOldest;
  const auto id = f.gatewayB->subscribeQuery(
      f.adminB, f.siteB->headUrl("snmp"), "SELECT * FROM Processor", nullptr,
      options);

  auto poller = makePollerB(f);
  const int kTicks = 5;
  for (int i = 0; i < kTicks; ++i) {
    EXPECT_EQ(poller->tick(), 1u);  // never blocks, every poll completes
    f.clock.advance(30 * util::kSecond);
  }
  EXPECT_EQ(poller->stats().polls, static_cast<std::uint64_t>(kTicks));
  EXPECT_EQ(f.gatewayB->streamEngine().queueDepth(id), 2u);

  const auto stats = f.gatewayB->streamStats();
  EXPECT_EQ(stats.deltasQueued, static_cast<std::uint64_t>(kTicks));
  EXPECT_EQ(stats.deltasDropped, static_cast<std::uint64_t>(kTicks - 2));
  // Every delta carries the same refresh row count, so dropped rows are
  // exactly the three evicted deltas' worth.
  EXPECT_EQ(stats.rowsDropped, 3 * (stats.rowsQueued / kTicks));

  // The survivors are the newest two refreshes.
  auto deltas = f.gatewayB->streamEngine().poll(id);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].sequence, static_cast<std::uint64_t>(kTicks - 1));
  EXPECT_EQ(deltas[1].sequence, static_cast<std::uint64_t>(kTicks));
}

TEST(StreamFlowTest, EventsStreamAsContinuousQueryRows) {
  // Dispatched events surface as rows of the pseudo-table "Events", so
  // a continuous query can filter them with SQL.
  util::SimClock clock(0);
  net::Network network(clock, 7);
  core::GatewayOptions options;
  options.name = "gw";
  options.host = "gw.host";
  options.eventOptions.threadedDispatch = false;  // deterministic
  core::Gateway gateway(network, clock, options);
  const auto admin = gateway.openSession(core::Principal::admin());

  const auto id = gateway.subscribeQuery(
      admin, "", "SELECT Type, Source FROM Events WHERE Severity = 'critical'");

  core::Event info;
  info.type = "poll.latency";
  info.source = "node00";
  info.severity = core::Severity::Info;
  gateway.eventManager().ingest(info);

  core::Event critical;
  critical.type = "snmp.trap.highload";
  critical.source = "node01";
  critical.severity = core::Severity::Critical;
  critical.fields["Load1"] = util::Value(7.5);
  gateway.eventManager().ingest(critical);

  auto deltas = gateway.streamEngine().poll(id);
  ASSERT_EQ(deltas.size(), 1u);  // the info event was filtered out
  EXPECT_EQ(deltas[0].table, "Events");
  ASSERT_EQ(deltas[0].rows.size(), 1u);
  EXPECT_EQ(deltas[0].rows[0][0].toString(), "snmp.trap.highload");
  EXPECT_EQ(deltas[0].rows[0][1].toString(), "node01");
}

TEST(StreamFlowTest, SubscriptionRequiresAuthorization) {
  GridFixture f;
  EXPECT_THROW((void)f.gatewayA->subscribeQuery("bogus-token", "",
                                                "SELECT * FROM Processor"),
               dbc::SqlError);
  EXPECT_THROW((void)f.globalA->subscribeGlobal("bogus-token",
                                                f.siteB->headUrl("snmp"),
                                                "SELECT * FROM Processor"),
               dbc::SqlError);
}

}  // namespace
}  // namespace gridrm::global
