// Concurrency stress: many client threads hammering one gateway while
// drivers, pool, cache, sessions and the event manager are shared.
// These tests assert totals (no lost or duplicated work) and absence of
// crashes/races rather than timing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/drivers/nws_driver.hpp"

namespace gridrm::core {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : clock_(0), network_(clock_, 53) {
    agents::SiteOptions siteOptions;
    siteOptions.siteName = "siteA";
    siteOptions.hostCount = 4;
    site_ = std::make_unique<agents::SiteSimulation>(network_, clock_,
                                                     siteOptions);
    clock_.advance(60 * util::kSecond);
    GatewayOptions gatewayOptions;
    gatewayOptions.host = "gw";
    gatewayOptions.cacheTtl = 2 * util::kSecond;
    // Idle cap >= client threads: a released connection is never
    // discarded just because the idle queue is full, which makes the
    // over-creation bound below deterministic under any scheduling.
    gatewayOptions.poolMaxIdlePerSource = 8;
    gateway_ = std::make_unique<Gateway>(network_, clock_, gatewayOptions);
  }

  util::SimClock clock_;
  net::Network network_;
  std::unique_ptr<agents::SiteSimulation> site_;
  std::unique_ptr<Gateway> gateway_;
};

TEST_F(ConcurrencyTest, ParallelClientsAllQueriesAnswered) {
  constexpr int kThreads = 8;
  constexpr int kQueriesEach = 50;
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        const std::string session = gateway_->openSession(
            Principal::monitor("client" + std::to_string(t)));
        // Mix of sources and drivers per thread.
        const std::string urls[] = {
            site_->headUrl("snmp"), site_->headUrl("scms"),
            site_->headUrl("sql"),
            "jdbc:snmp://siteA-node0" + std::to_string(t % 4 ) + ":161/x"};
        for (int i = 0; i < kQueriesEach; ++i) {
          auto result = gateway_->submitQuery(
              session, {urls[i % std::size(urls)]},
              "SELECT HostName, Load1 FROM Processor");
          if (result.complete() && result.rows->rowCount() > 0) {
            ++ok;
          } else {
            ++failed;
          }
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  EXPECT_EQ(ok.load(), kThreads * kQueriesEach);
  EXPECT_EQ(failed.load(), 0);
  const auto stats = gateway_->requestManager().stats();
  EXPECT_EQ(stats.sourceQueries,
            static_cast<std::uint64_t>(kThreads * kQueriesEach));
}

TEST_F(ConcurrencyTest, PoolUnderContentionNeverOverCreates) {
  constexpr int kThreads = 8;
  constexpr int kQueriesEach = 40;
  const std::string url = site_->headUrl("scms");
  QueryOptions options;
  options.useCache = false;
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        const std::string session = gateway_->openSession(
            Principal::monitor("c" + std::to_string(t)));
        for (int i = 0; i < kQueriesEach; ++i) {
          auto result = gateway_->submitQuery(session, {url},
                                              "SELECT * FROM Host", options);
          ASSERT_TRUE(result.complete());
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  const auto stats = gateway_->connectionManager().stats();
  // At most one connection per concurrently active lease.
  EXPECT_LE(stats.creations, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.acquisitions,
            static_cast<std::uint64_t>(kThreads * kQueriesEach));
}

TEST_F(ConcurrencyTest, CacheStampedeSharesOneSourceContactPerKey) {
  // All threads hammer one (url, sql) key with caching on. Every call
  // is served exactly one way -- shared cached rows, a coalesced ride
  // on the in-flight leader, or a leader contact of its own -- so the
  // three counters partition the total and source contacts stay tiny.
  constexpr int kThreads = 8;
  constexpr int kQueriesEach = 50;
  const std::string url = site_->headUrl("snmp");
  std::atomic<int> ok{0};
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        const std::string session = gateway_->openSession(
            Principal::monitor("hot" + std::to_string(t)));
        for (int i = 0; i < kQueriesEach; ++i) {
          auto result = gateway_->submitQuery(
              session, {url}, "SELECT HostName, Load1 FROM Processor");
          if (result.complete() && result.rows->rowCount() > 0) ++ok;
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  constexpr int kTotal = kThreads * kQueriesEach;
  EXPECT_EQ(ok.load(), kTotal);
  const auto rmStats = gateway_->requestManager().stats();
  const auto cacheStats = gateway_->cache().stats();
  const auto poolStats = gateway_->connectionManager().stats();
  EXPECT_EQ(cacheStats.hits + rmStats.coalescedQueries + poolStats.acquisitions,
            static_cast<std::uint64_t>(kTotal));
  // One lease per leader; leaders are bounded by the initial stampede.
  EXPECT_GE(poolStats.acquisitions, 1u);
  EXPECT_LE(poolStats.acquisitions, static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(cacheStats.hits, static_cast<std::uint64_t>(kTotal - 2 * kThreads));
}

TEST_F(ConcurrencyTest, ShardedCacheSurvivesConcurrentClearsAndLookups) {
  // Clients spread over several keys while an admin thread clears and
  // invalidates the sharded cache and reads its aggregated stats. The
  // serve-path partition must stay exact through the churn.
  constexpr int kThreads = 6;
  constexpr int kQueriesEach = 60;
  const std::string url = site_->headUrl("snmp");
  std::atomic<int> ok{0};
  std::atomic<bool> stop{false};
  std::thread admin([&] {
    while (!stop.load()) {
      gateway_->cache().invalidate(
          CacheController::key(url, "SELECT HostName, Load1 FROM Processor"));
      gateway_->cache().clear();
      (void)gateway_->cache().stats();
      (void)gateway_->cache().size();
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        const std::string session = gateway_->openSession(
            Principal::monitor("churn" + std::to_string(t)));
        for (int i = 0; i < kQueriesEach; ++i) {
          // A few distinct keys so shards are exercised unevenly.
          const std::string sql =
              "SELECT HostName, Load1 FROM Processor WHERE Load1 > -" +
              std::to_string(i % 4 + 1);
          auto result = gateway_->submitQuery(session, {url}, sql);
          if (result.complete() && result.rows->rowCount() > 0) ++ok;
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  stop = true;
  admin.join();
  constexpr int kTotal = kThreads * kQueriesEach;
  EXPECT_EQ(ok.load(), kTotal);
  const auto rmStats = gateway_->requestManager().stats();
  const auto cacheStats = gateway_->cache().stats();
  const auto poolStats = gateway_->connectionManager().stats();
  EXPECT_EQ(cacheStats.hits + rmStats.coalescedQueries + poolStats.acquisitions,
            static_cast<std::uint64_t>(kTotal));
}

TEST_F(ConcurrencyTest, EventsFromConcurrentProducers) {
  constexpr int kProducers = 6;
  constexpr int kEventsEach = 200;
  std::atomic<int> delivered{0};
  const std::string session =
      gateway_->openSession(Principal::monitor("subscriber"));
  gateway_->subscribeEvents(session, "stress",
                            [&](const Event&) { ++delivered; });
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kEventsEach; ++i) {
          Event e;
          e.type = "stress.tick";
          gateway_->eventManager().ingest(e);
        }
      });
    }
    for (auto& t : producers) t.join();
  }
  gateway_->eventManager().drain();
  EXPECT_EQ(delivered.load(), kProducers * kEventsEach);
  EXPECT_EQ(gateway_->eventManager().stats().dropped, 0u);
}

TEST_F(ConcurrencyTest, DriverAdminDuringTraffic) {
  // Registering/unregistering drivers at runtime must not disturb
  // in-flight queries on other drivers (paper section 2: plug-ins are
  // dynamic "without affecting normal Gateway operation").
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread traffic([&] {
    const std::string session =
        gateway_->openSession(Principal::monitor("t"));
    while (!stop.load()) {
      auto result = gateway_->submitQuery(
          session, {site_->headUrl("sql")},
          "SELECT HostName FROM Host", QueryOptions{.useCache = false});
      if (!result.complete()) ++failures;
    }
  });
  const std::string admin = gateway_->openSession(Principal::admin());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(gateway_->unregisterDriver(admin, "nws"));
    auto ctx = gateway_->driverContext();
    gateway_->registerDriver(
        admin, std::make_shared<drivers::NwsDriver>(ctx));
  }
  stop = true;
  traffic.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyTest, SessionsOpenedAndClosedConcurrently) {
  constexpr int kThreads = 8;
  std::atomic<int> validated{0};
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < 100; ++i) {
          const std::string token = gateway_->openSession(
              Principal::monitor("s" + std::to_string(t)));
          if (gateway_->sessionManager().validate(token)) ++validated;
          gateway_->closeSession(token);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(validated.load(), kThreads * 100);
  EXPECT_EQ(gateway_->sessionManager().activeCount(), 0u);
}

}  // namespace
}  // namespace gridrm::core
