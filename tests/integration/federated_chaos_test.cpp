// Chaos acceptance for federated query planning (PR 7): a distributed
// aggregate keeps returning byte-identical results while FFRAME
// datagrams are being dropped (NACK'd gap repair, fresh-stream resync,
// no double-counted partials), a crashed site degrades to stale
// partials or a per-URL unreachable error, and a late duplicate frame
// after the stream completed is dropped, never re-ingested.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../global/global_fixture.hpp"
#include "gridrm/dbc/result_io.hpp"
#include "gridrm/sim/chaos.hpp"

namespace gridrm::global {
namespace {

using testutil::GridFixture;

std::string bytes(const core::QueryResult& result) {
  return result.rows ? dbc::serializeResultSet(*result.rows) : std::string();
}

// Static Int/String columns only: byte-comparable across repeated runs.
const char* kAggSql =
    "SELECT ClusterName, count(*) AS hosts, sum(CPUCount) AS cpus, "
    "min(ClockSpeed) AS lo FROM Processor "
    "GROUP BY ClusterName ORDER BY ClusterName";
const char* kRowSql =
    "SELECT HostName, CPUCount FROM Processor ORDER BY HostName";

TEST(FederatedChaosTest, AggregateSurvivesLossBurstWithoutDoubleCounting) {
  GlobalOptions options;
  options.fragmentFrameRows = 1;  // one row per frame: loss hits streams
  GridFixture f(5 * util::kSecond, "", options);
  const std::vector<std::string> urls = {f.siteA->headUrl("scms"),
                                         f.siteB->headUrl("scms")};
  core::QueryOptions fresh;
  fresh.useCache = false;

  // Clean-network references (also seed the stale fallback cache).
  const std::string aggBaseline =
      bytes(f.globalA->federatedQuery(f.adminA, urls, kAggSql, fresh));
  const std::string rowBaseline =
      bytes(f.globalA->federatedQuery(f.adminA, urls, kRowSql, fresh));
  ASSERT_FALSE(aggBaseline.empty());
  ASSERT_FALSE(rowBaseline.empty());

  // 25% loss on the inter-gateway link for the whole exercised window
  // (retry backoff advances the sim clock, so keep it generous).
  sim::ChaosInjector chaos(f.network, f.clock, /*seed=*/11);
  const util::TimePoint t0 = f.clock.now();
  chaos.lossBurst("gw-a.host", "gw-b.host", t0, t0 + 600 * util::kSecond,
                  0.25);
  chaos.fireDue();

  for (int round = 0; round < 12; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    auto agg = f.globalA->federatedQuery(f.adminA, urls, kAggSql, fresh);
    auto rows = f.globalA->federatedQuery(f.adminA, urls, kRowSql, fresh);
    // Lost frames were repaired (NACK or fresh-stream resync) or the
    // site's last good partial served stale — either way the merged
    // relation is exactly the clean-network one: nothing lost, nothing
    // counted twice.
    EXPECT_TRUE(agg.failures.empty());
    EXPECT_TRUE(rows.failures.empty());
    EXPECT_EQ(bytes(agg), aggBaseline);
    EXPECT_EQ(bytes(rows), rowBaseline);
  }

  const GlobalStats statsA = f.globalA->stats();
  // The repair machinery actually fired under this seed.
  EXPECT_GE(statsA.fragmentNacksSent + statsA.fragmentResyncs, 1u);
  if (statsA.fragmentNacksSent > 0) {
    EXPECT_GE(f.globalB->stats().fragmentFramesResent, 1u);
  }
}

TEST(FederatedChaosTest, CrashedSiteDegradesToStalePartialsAndRecovers) {
  GridFixture f;
  const std::vector<std::string> urls = {f.siteA->headUrl("scms"),
                                         f.siteB->headUrl("scms")};

  // Warm run caches site B's partial (fresh + stale copies).
  auto warm = f.globalA->federatedQuery(f.adminA, urls, kAggSql);
  ASSERT_TRUE(warm.complete());
  const std::string warmBytes = bytes(warm);

  // Site B's gateway dies; let the fresh cache entry expire so the next
  // query must actually reach (and fail to reach) the owner.
  f.globalB->crash();
  f.network.setHostDown("gw-b.host", true);
  f.clock.advance(10 * util::kSecond);

  auto degraded = f.globalA->federatedQuery(f.adminA, urls, kAggSql);
  EXPECT_TRUE(degraded.complete());  // served, but flagged
  EXPECT_FALSE(degraded.staleSources.empty());
  // Static columns: the stale partial merges to the identical relation.
  EXPECT_EQ(bytes(degraded), warmBytes);
  EXPECT_GE(f.globalA->stats().staleRemoteServes, 1u);

  // A statement never seen before has no stale partial to fall back on:
  // the unreachable site surfaces as a per-URL error while site A's
  // half of the aggregate still answers.
  auto partial = f.globalA->federatedQuery(f.adminA, urls, kRowSql);
  ASSERT_EQ(partial.failures.size(), 1u);
  EXPECT_EQ(partial.failures[0].url, f.siteB->headUrl("scms"));
  EXPECT_NE(partial.failures[0].message.find("site unreachable"),
            std::string::npos);
  ASSERT_NE(partial.rows, nullptr);
  EXPECT_EQ(partial.rows->rowCount(), 3u);  // site A's 3 hosts

  // Restart heals: fresh fan-out, no staleness, same relation.
  f.network.setHostDown("gw-b.host", false);
  f.globalB->start();
  core::QueryOptions fresh;
  fresh.useCache = false;
  auto healed = f.globalA->federatedQuery(f.adminA, urls, kAggSql, fresh);
  ASSERT_TRUE(healed.complete());
  EXPECT_TRUE(healed.staleSources.empty());
  EXPECT_EQ(bytes(healed), warmBytes);
}

TEST(FederatedChaosTest, LateDuplicateFrameIsDroppedNotReIngested) {
  GlobalOptions options;
  options.fragmentFrameRows = 1;
  GridFixture f(5 * util::kSecond, "", options);
  const std::vector<std::string> urls = {f.siteB->headUrl("scms")};
  core::QueryOptions fresh;
  fresh.useCache = false;

  auto first = f.globalA->federatedQuery(f.adminA, urls, kRowSql, fresh);
  ASSERT_TRUE(first.complete());
  const std::string baseline = bytes(first);
  const std::uint64_t received = f.globalA->stats().fragmentFramesReceived;

  // A NACK resend arriving after the fetch completed: the collector for
  // stream gw-a-0 is gone, so the frame must be counted as a duplicate
  // and discarded — not ingested into any later stream.
  f.network.datagram(f.globalB->producerAddress(), f.globalA->producerAddress(),
                     "FFRAME gw-a-0 1 2 " + std::to_string(f.globalB->epoch()) +
                         "\ncorrupt frame bytes");
  const GlobalStats after = f.globalA->stats();
  EXPECT_EQ(after.duplicateFragmentFramesDropped, 1u);
  EXPECT_EQ(after.fragmentFramesReceived, received);

  // And a subsequent fetch is untouched by the stray frame.
  auto second = f.globalA->federatedQuery(f.adminA, urls, kRowSql, fresh);
  ASSERT_TRUE(second.complete());
  EXPECT_EQ(bytes(second), baseline);
}

}  // namespace
}  // namespace gridrm::global
