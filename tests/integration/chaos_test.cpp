// Chaos acceptance scenario (PR 5): a relayed continuous query survives
// scripted loss bursts, a two-way partition and an abrupt owner restart
// with no lost, duplicated or reordered deltas at the consumer.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "../global/global_fixture.hpp"
#include "gridrm/core/site_poller.hpp"
#include "gridrm/sim/chaos.hpp"

namespace gridrm::global {
namespace {

using core::SitePoller;
using stream::StreamDelta;
using testutil::GridFixture;

TEST(ChaosTest, RelayedStreamSurvivesLossPartitionAndRestart) {
  GlobalOptions options;
  options.livenessTimeout = 2 * util::kSecond;
  options.resubscribeReplayRows = 0;  // keep the ledger exactly-once
  GridFixture f(5 * util::kSecond, "", options);

  std::vector<StreamDelta> received;
  (void)f.globalA->subscribeGlobal(
      f.adminA, f.siteB->headUrl("snmp"),
      "SELECT HostName, Load1 FROM Processor",
      [&](const StreamDelta& d) { received.push_back(d); });

  SitePoller poller(f.gatewayB->requestManager(), f.clock,
                    core::Principal::monitor());
  poller.setStreamSink(&f.gatewayB->streamEngine());
  core::PollTask task;
  task.url = f.siteB->headUrl("snmp");
  task.sql = "SELECT * FROM Processor";
  task.interval = 10 * util::kSecond;
  poller.addTask(task);

  sim::ChaosInjector chaos(f.network, f.clock, /*seed=*/11);
  const util::TimePoint t0 = f.clock.now();
  auto sec = [&](int s) { return t0 + s * util::kSecond; };

  // The poller refreshes every 10s across the whole timeline; faults
  // and workload share one deterministic schedule. Polls that land
  // while gateway B is "crashed" are suppressed — a dead process does
  // not harvest.
  bool gatewayBUp = true;
  std::size_t polls = 0;
  for (int s = 10; s <= 180; s += 10) {
    chaos.at(sec(s), [&] {
      if (!gatewayBUp) return;
      polls += poller.tick();
    });
  }

  // Scripted faults.
  chaos.lossBurst("gw-a.host", "gw-b.host", sec(15), sec(55), 0.25);
  chaos.partition({"gw-a.host"}, {"gw-b.host"}, sec(75), sec(95));
  chaos.at(sec(115), [&] {
    gatewayBUp = false;
    f.globalB->crash();
    f.network.setHostDown("gw-b.host", true);
  });
  chaos.at(sec(125), [&] {
    f.network.setHostDown("gw-b.host", false);
    f.globalB->start();
    gatewayBUp = true;
  });

  chaos.run(500 * util::kMillisecond,
            [&] {
              f.globalA->tick();
              f.globalB->tick();
              f.quiesce();
            },
            /*settle=*/20 * util::kSecond);

  // Frames emitted while a live relay existed must all have arrived.
  // Polls during the crash window fed no relay (B was down and ticked
  // nothing), and the restart resets the relay's ledger, so the
  // consumer's count matches the polls that actually streamed.
  ASSERT_GT(polls, 10u);
  EXPECT_EQ(received.size(), polls);

  // No duplicates, no reordering: owner-side refresh timestamps are
  // strictly increasing and unique across the whole run.
  std::set<util::TimePoint> stamps;
  for (std::size_t i = 0; i < received.size(); ++i) {
    stamps.insert(received[i].timestamp);
    if (i > 0) EXPECT_GT(received[i].timestamp, received[i - 1].timestamp);
  }
  EXPECT_EQ(stamps.size(), received.size());

  const GlobalStats statsA = f.globalA->stats();
  const GlobalStats statsB = f.globalB->stats();
  EXPECT_GE(statsA.deltaGapsDetected, 1u);   // loss/partition left gaps
  EXPECT_GE(statsB.deltasResent + statsA.snapshotResyncs, 1u);
  EXPECT_GE(statsA.resubscribes, 1u);        // the restart healed
  EXPECT_EQ(statsA.streamDeltasReceived, received.size());

  auto status = f.globalA->remoteSubscriptionStatus(f.adminA);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].needsResubscribe);
  EXPECT_EQ(status[0].reorderBuffered, 0u);
  EXPECT_EQ(status[0].ownerEpoch, f.globalB->epoch());
}

TEST(ChaosTest, GlobalQueriesDegradeAndRecoverAcrossHostDownWindow) {
  GridFixture f;
  const std::string url = f.siteB->headUrl("snmp");
  sim::ChaosInjector chaos(f.network, f.clock, /*seed=*/5);
  const util::TimePoint t0 = f.clock.now();
  chaos.hostDownWindow("gw-b.host", t0 + 10 * util::kSecond,
                       t0 + 20 * util::kSecond);

  // Warm: fresh remote rows (also seeding the stale cache).
  auto r1 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  ASSERT_TRUE(r1.complete());
  ASSERT_TRUE(r1.staleSources.empty());

  // Inside the outage: degraded service from the expired cached copy.
  f.clock.advance(12 * util::kSecond);
  chaos.fireDue();
  auto r2 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_TRUE(r2.complete());
  EXPECT_EQ(r2.staleSources.size(), 1u);

  // After the repair action: fresh rows again.
  f.clock.advance(10 * util::kSecond);
  chaos.fireDue();
  auto r3 = f.globalA->globalQuery(f.adminA, {url}, "SELECT * FROM Processor");
  EXPECT_TRUE(r3.complete());
  EXPECT_TRUE(r3.staleSources.empty());
}

}  // namespace
}  // namespace gridrm::global
