// End-to-end Local-layer tests (paper Figs. 2, 3 and 5): client SQL in
// through the ACIL, down through security, request handling, pooling,
// driver selection and native protocols, GLUE rows out.
#include <gtest/gtest.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"

namespace gridrm::core {
namespace {

using util::kSecond;

class GatewayIntegrationTest : public ::testing::Test {
 protected:
  GatewayIntegrationTest() : clock_(0), network_(clock_, 23) {
    agents::SiteOptions siteOptions;
    siteOptions.siteName = "siteA";
    siteOptions.hostCount = 3;
    site_ = std::make_unique<agents::SiteSimulation>(network_, clock_,
                                                     siteOptions);
    clock_.advance(120 * kSecond);

    GatewayOptions gatewayOptions;
    gatewayOptions.name = "gw-a";
    gatewayOptions.host = "gw-a.host";
    gateway_ = std::make_unique<Gateway>(network_, clock_, gatewayOptions);
    admin_ = gateway_->openSession(Principal::admin());
    for (const auto& url : site_->dataSourceUrls()) {
      gateway_->addDataSource(admin_, url);
    }
  }

  util::SimClock clock_;
  net::Network network_;
  std::unique_ptr<agents::SiteSimulation> site_;
  std::unique_ptr<Gateway> gateway_;
  std::string admin_;
};

TEST_F(GatewayIntegrationTest, QueryThroughEveryDriver) {
  for (const char* sub :
       {"snmp", "ganglia", "netlogger", "scms", "sql", "mds"}) {
    QueryResult result = gateway_->submitQuery(
        admin_, {site_->headUrl(sub)}, "SELECT * FROM Processor");
    EXPECT_TRUE(result.complete()) << sub;
    EXPECT_GT(result.rows->rowCount(), 0u) << sub;
  }
  QueryResult nws = gateway_->submitQuery(
      admin_, {site_->headUrl("nws")}, "SELECT * FROM NetworkForecast");
  EXPECT_TRUE(nws.complete());
  EXPECT_EQ(nws.rows->rowCount(), 3u);
}

TEST_F(GatewayIntegrationTest, PaperUrlFormDynamicSelection) {
  // "jdbc:://host:161/..." -- no subprotocol, located dynamically.
  const std::string anonymous =
      "jdbc:://siteA-node01:161/perfdata";
  QueryResult result = gateway_->submitQuery(
      admin_, {anonymous}, "SELECT HostName, Load1 FROM Processor");
  ASSERT_TRUE(result.complete())
      << (result.failures.empty() ? "" : result.failures[0].message);
  result.rows->next();
  EXPECT_EQ(result.rows->getString("HostName"), "siteA-node01");
  EXPECT_EQ(gateway_->driverManager().cachedDriver(anonymous), "snmp");
}

TEST_F(GatewayIntegrationTest, SiteQueryConsolidatesAllSources) {
  QueryResult result =
      gateway_->submitSiteQuery(admin_, "SELECT * FROM Memory");
  // SNMP (3 hosts, 1 row each) + ganglia (3 rows) + netlogger (1) +
  // scms (3) + sql (3) + mds (3); NWS fails (no Memory group).
  EXPECT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.rows->rowCount(), 16u);
  EXPECT_EQ(result.rows->metaData().column(0).name, "Source");
}

TEST_F(GatewayIntegrationTest, SessionSecurityEnforced) {
  EXPECT_THROW(gateway_->submitQuery("bad-token", {site_->headUrl("sql")},
                                     "SELECT * FROM Host"),
               dbc::SqlError);
  const std::string guest =
      gateway_->openSession(Principal{"eve", {"guest"}});
  // Guests may run real-time queries but not administer drivers.
  EXPECT_NO_THROW(gateway_->submitQuery(guest, {site_->headUrl("sql")},
                                        "SELECT * FROM Host"));
  EXPECT_THROW(gateway_->listDrivers(guest), dbc::SqlError);
  EXPECT_THROW(gateway_->submitHistoricalQuery(guest, "SELECT * FROM x"),
               dbc::SqlError);
}

TEST_F(GatewayIntegrationTest, FgslBlocksPerResourceGroups) {
  gateway_->fineSecurity().addRule({"guest", "*", "Memory", false});
  const std::string guest =
      gateway_->openSession(Principal{"eve", {"guest"}});
  QueryResult denied = gateway_->submitQuery(
      guest, {site_->headUrl("sql")}, "SELECT * FROM Memory");
  EXPECT_FALSE(denied.complete());
  QueryResult allowed = gateway_->submitQuery(
      guest, {site_->headUrl("sql")}, "SELECT * FROM Host");
  EXPECT_TRUE(allowed.complete());
}

TEST_F(GatewayIntegrationTest, GatewayCacheLimitsResourceIntrusion) {
  // Paper section 4: cached views limit agent load.
  const net::Address agent{"siteA-node00", 161};
  const std::string url = site_->headUrl("snmp");
  const std::string sql = "SELECT Load1 FROM Processor";
  (void)gateway_->submitQuery(admin_, {url}, sql);
  const auto afterFirst = network_.stats(agent).requestsServed;
  for (int i = 0; i < 10; ++i) {
    (void)gateway_->submitQuery(admin_, {url}, sql);
  }
  EXPECT_EQ(network_.stats(agent).requestsServed, afterFirst);
  EXPECT_EQ(gateway_->cache().stats().hits, 10u);
}

TEST_F(GatewayIntegrationTest, ExplicitPollRefreshesCache) {
  const std::string url = site_->headUrl("snmp");
  const std::string sql = "SELECT Load1 FROM Processor";
  (void)gateway_->submitQuery(admin_, {url}, sql);
  const auto cachedAt =
      gateway_->cache().cachedAt(CacheController::key(url, sql));
  ASSERT_TRUE(cachedAt.has_value());

  clock_.advance(kSecond);
  QueryOptions poll;
  poll.useCache = false;  // the Fig. 9 "poll" action
  (void)gateway_->submitQuery(admin_, {url}, sql, poll);
  // Poll bypasses the cache but leaves the old entry in place; a
  // subsequent cached read still works.
  QueryResult cached = gateway_->submitQuery(admin_, {url}, sql);
  EXPECT_EQ(cached.servedFromCache, 1u);
}

TEST_F(GatewayIntegrationTest, ConnectionPoolReusedAcrossQueries) {
  const std::string url = site_->headUrl("scms");
  QueryOptions options;
  options.useCache = false;
  (void)gateway_->submitQuery(admin_, {url}, "SELECT * FROM Host", options);
  (void)gateway_->submitQuery(admin_, {url}, "SELECT * FROM Host", options);
  (void)gateway_->submitQuery(admin_, {url}, "SELECT * FROM Host", options);
  const auto stats = gateway_->connectionManager().stats();
  EXPECT_EQ(stats.creations, 1u);
  EXPECT_EQ(stats.poolHits, 2u);
}

TEST_F(GatewayIntegrationTest, RuntimeDriverAdministration) {
  // Fig. 8: register preferences, swap policies, unregister drivers.
  auto names = gateway_->listDrivers(admin_);
  EXPECT_EQ(names.size(), 7u);

  gateway_->setDriverPreference(admin_, site_->headUrl("snmp"), {"snmp"});
  gateway_->setFailurePolicy(admin_,
                             {FailurePolicy::Action::Retry, 2});
  EXPECT_EQ(gateway_->driverManager().failurePolicy().retries, 2);

  EXPECT_TRUE(gateway_->unregisterDriver(admin_, "nws"));
  EXPECT_EQ(gateway_->listDrivers(admin_).size(), 6u);
  QueryResult result = gateway_->submitQuery(
      admin_, {site_->headUrl("nws")}, "SELECT * FROM NetworkForecast");
  EXPECT_FALSE(result.complete());  // no driver accepts NWS any more
}

TEST_F(GatewayIntegrationTest, HistoricalPathRecordsAndQueries) {
  QueryOptions options;
  options.recordHistory = true;
  options.useCache = false;
  for (int i = 0; i < 3; ++i) {
    (void)gateway_->submitQuery(admin_, {site_->headUrl("sql")},
                                "SELECT * FROM Processor", options);
    clock_.advance(10 * kSecond);
  }
  auto rs = gateway_->submitHistoricalQuery(
      admin_, "SELECT * FROM HistoryProcessor WHERE HostName = 'siteA-node00' "
              "ORDER BY RecordedAt");
  EXPECT_EQ(rs->rowCount(), 3u);
}

TEST_F(GatewayIntegrationTest, FailedSourceRecoversViaReselection) {
  const std::string url = site_->headUrl("scms");
  QueryOptions options;
  options.useCache = false;
  (void)gateway_->submitQuery(admin_, {url}, "SELECT * FROM Host", options);

  network_.setHostDown("siteA-node00", true);
  QueryResult down =
      gateway_->submitQuery(admin_, {url}, "SELECT * FROM Host", options);
  EXPECT_FALSE(down.complete());

  network_.setHostDown("siteA-node00", false);
  QueryResult recovered =
      gateway_->submitQuery(admin_, {url}, "SELECT * FROM Host", options);
  EXPECT_TRUE(recovered.complete());
}

TEST_F(GatewayIntegrationTest, DataSourceManagement) {
  const std::size_t before = gateway_->dataSources().size();
  gateway_->addDataSource(admin_, "jdbc:snmp://extra:161/x");
  EXPECT_EQ(gateway_->dataSources().size(), before + 1);
  gateway_->removeDataSource(admin_, "jdbc:snmp://extra:161/x");
  EXPECT_EQ(gateway_->dataSources().size(), before);
}

}  // namespace
}  // namespace gridrm::core
