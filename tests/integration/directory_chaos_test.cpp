// Chaos acceptance for the replicated directory service (PR 10), on
// sim::Topology with three directory replicas:
//  - killing one replica of three mid-workload leaves every lookup,
//    query and federated plan for healthy sites succeeding (100%),
//  - partitioning a whole shard (both its holders) makes the affected
//    site's failure ErrorCode::Unavailable — never "no gateway owns" —
//    while other sites keep answering,
//  - a replica restarting with an empty, stale store is healed by
//    anti-entropy within bounded sync rounds, byte-identically per
//    seed.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gridrm/global/directory.hpp"
#include "gridrm/sim/chaos.hpp"
#include "gridrm/sim/topology.hpp"

namespace gridrm::sim {
namespace {

TopologyOptions replicatedOptions(std::uint64_t seed = 5) {
  TopologyOptions opts;
  opts.gateways = 3;
  opts.hostsPerGateway = 2;
  opts.seed = seed;
  opts.directoryReplicas = 3;
  opts.directoryShards = 3;
  opts.directoryReplication = 2;
  opts.directorySyncInterval = 5 * util::kSecond;
  return opts;
}

/// Byte-wise state of the whole service: every shard's export from
/// every holder, labeled. Two converged services with the same history
/// produce identical dumps.
std::string dumpService(Topology& topo) {
  const auto& map = topo.directoryReplica(0).shardMap();
  std::string out;
  for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
    for (std::size_t i = 0; i < topo.directoryReplicaCount(); ++i) {
      auto& replica = topo.directoryReplica(i);
      if (!map.holds(shard, replica.address())) continue;
      out += "== shard " + std::to_string(shard) + " @ " +
             replica.address().toString() + "\n";
      out += replica.exportShard(shard);
    }
  }
  return out;
}

void expectConverged(Topology& topo) {
  const auto& map = topo.directoryReplica(0).shardMap();
  for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
    std::string reference;
    bool first = true;
    for (std::size_t i = 0; i < topo.directoryReplicaCount(); ++i) {
      auto& replica = topo.directoryReplica(i);
      if (!map.holds(shard, replica.address())) continue;
      const std::string exported = replica.exportShard(shard);
      if (first) {
        reference = exported;
        first = false;
      } else {
        EXPECT_EQ(exported, reference)
            << "shard " << shard << " diverged at "
            << replica.address().toString();
      }
    }
  }
}

TEST(DirectoryChaosTest, KillingOneReplicaOfThreeLosesNoQuery) {
  Topology topo(replicatedOptions());
  ChaosInjector chaos(topo.network(), topo.loop().clock(), /*seed=*/11);
  chaos.bindLoop(topo.loop());

  // Replica gma1 is dead from t0+20s to t0+80s — spanning several
  // anti-entropy rounds and lookup-cache expiries mid-workload.
  const util::TimePoint t0 = topo.loop().now();
  chaos.hostDownWindow("gma1", t0 + 20 * util::kSecond,
                       t0 + 80 * util::kSecond);

  global::DirectoryClient probe(topo.network(), {"probe", 1},
                                topo.directorySeeds());
  const std::vector<std::string> urls = {topo.site(1).headUrl("snmp"),
                                         topo.site(2).headUrl("snmp")};
  std::size_t rounds = 0, lookupHits = 0, queriesComplete = 0;
  for (int s = 10; s <= 120; s += 10) {
    ++rounds;
    topo.loop().runUntil(t0 + s * util::kSecond);
    // Direct directory lookups: with replication 2 every shard keeps a
    // live holder, so the answer is always definitive.
    bool allFound = true;
    for (std::size_t g = 0; g < topo.gatewayCount(); ++g) {
      auto hit = probe.lookup("site" + std::to_string(g) + "-node00");
      if (!hit.has_value()) allFound = false;
    }
    if (allFound) ++lookupHits;
    // Remote + federated traffic through the global layer.
    auto federated = topo.globalLayer(0)->federatedQuery(
        topo.adminToken(0), urls, "SELECT COUNT(*) FROM Processor");
    if (federated.complete()) ++queriesComplete;
    topo.quiesce();
  }

  // 100% availability for every site: one dead replica is invisible
  // apart from the failover counters.
  EXPECT_EQ(lookupHits, rounds);
  EXPECT_EQ(queriesComplete, rounds);
  EXPECT_GE(probe.clientStats().failovers, 1u);
  EXPECT_EQ(probe.clientStats().unavailableShards, 0u);

  // gma1 is back; bounded healing: two sync intervals later all its
  // shards are byte-identical with their co-holders again.
  topo.loop().runFor(2 * topo.options().directorySyncInterval +
                     util::kSecond);
  expectConverged(topo);
  std::uint64_t applied = 0;
  for (std::size_t i = 0; i < topo.directoryReplicaCount(); ++i) {
    applied += topo.directoryReplica(i).stats().syncEntriesApplied;
  }
  EXPECT_GT(applied, 0u);
}

TEST(DirectoryChaosTest, PartitionedShardIsUnavailableNeverNotFound) {
  Topology topo(replicatedOptions());
  // Let anti-entropy replicate the boot registrations onto the read
  // replicas before the outage begins.
  topo.loop().runFor(2 * topo.options().directorySyncInterval +
                     util::kSecond);
  const auto& map = topo.directoryReplica(0).shardMap();

  // Pick a remote gateway (not gw0, the querying one) whose owning
  // shard's holders do NOT cover the other remote gateway's shard, so
  // the outage leaves a provably healthy remote site.
  std::size_t affected = 0, healthy = 0;
  bool found = false;
  for (std::size_t a = 1; a < topo.gatewayCount() && !found; ++a) {
    const auto holders =
        map.replicasOf(map.shardOf("p:gw" + std::to_string(a)));
    std::set<std::string> down;
    for (const auto& holder : holders) down.insert(holder.host);
    for (std::size_t h = 1; h < topo.gatewayCount(); ++h) {
      if (h == a) continue;
      bool reachable = false;
      for (const auto& holder :
           map.replicasOf(map.shardOf("p:gw" + std::to_string(h)))) {
        if (!down.count(holder.host)) reachable = true;
      }
      if (reachable) {
        affected = a;
        healthy = h;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "seed hashed all gateways onto one shard pair";

  // Dark shard: every holder of the affected gateway's entry is down.
  for (const auto& holder :
       map.replicasOf(map.shardOf("p:gw" + std::to_string(affected)))) {
    topo.network().setHostDown(holder.host, true);
  }

  const std::string affectedUrl = topo.site(affected).headUrl("snmp");
  const std::string healthyUrl = topo.site(healthy).headUrl("snmp");

  // The healthy site keeps answering through the reachable shards.
  auto ok = topo.globalLayer(0)->globalQuery(
      topo.adminToken(0), {healthyUrl}, "SELECT COUNT(*) FROM Processor");
  EXPECT_TRUE(ok.complete())
      << (ok.failures.empty() ? "" : ok.failures[0].message);

  // The affected site fails as UNAVAILABLE — the directory could not
  // be asked — never as the proven negative "no gateway owns".
  auto result = topo.globalLayer(0)->globalQuery(
      topo.adminToken(0), {affectedUrl}, "SELECT COUNT(*) FROM Processor");
  EXPECT_FALSE(result.complete());
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].code, dbc::ErrorCode::Unavailable);
  EXPECT_NE(result.failures[0].message.find("directory unavailable"),
            std::string::npos)
      << result.failures[0].message;
  EXPECT_EQ(result.failures[0].message.find("no gateway owns"),
            std::string::npos);

  // Federated plan over both: the healthy half answers, the affected
  // half is flagged Unavailable.
  auto federated = topo.globalLayer(0)->federatedQuery(
      topo.adminToken(0), {healthyUrl, affectedUrl},
      "SELECT COUNT(*) FROM Processor");
  ASSERT_EQ(federated.failures.size(), 1u);
  EXPECT_EQ(federated.failures[0].code, dbc::ErrorCode::Unavailable);
  ASSERT_NE(federated.rows, nullptr);
  EXPECT_GT(federated.rows->rowCount(), 0u);

  // Heal the partition: the same queries answer definitively again.
  for (std::size_t i = 0; i < topo.directoryReplicaCount(); ++i) {
    topo.network().setHostDown(topo.directoryReplicaAddress(i).host, false);
  }
  topo.loop().runFor(15 * util::kSecond);  // cache expiry + sync rounds
  auto healed = topo.globalLayer(0)->globalQuery(
      topo.adminToken(0), {affectedUrl}, "SELECT COUNT(*) FROM Processor");
  EXPECT_TRUE(healed.complete())
      << (healed.failures.empty() ? "" : healed.failures[0].message);
  expectConverged(topo);
}

TEST(DirectoryChaosTest, StaleStoreRestartHealsWithinBoundedRounds) {
  auto runScenario = [] {
    Topology topo(replicatedOptions(/*seed=*/7));
    topo.loop().runFor(10 * util::kSecond);

    // Replica 2 restarts having lost its in-memory store. Its
    // cold-start recovery sync (one bounded anti-entropy round in the
    // constructor) pulls every held shard back from the co-holders, so
    // it never serves authoritative negatives from the empty store.
    topo.restartDirectoryReplica(2);
    expectConverged(topo);
    EXPECT_GT(topo.directoryReplica(2).stats().syncEntriesApplied, 0u);

    global::DirectoryClient probe(topo.network(), {"probe", 1},
                                  topo.directorySeeds());
    for (std::size_t g = 0; g < topo.gatewayCount(); ++g) {
      EXPECT_TRUE(
          probe.lookup("site" + std::to_string(g) + "-node00").has_value());
    }

    // A wiped store with NO recovery sync (fault injection) heals via
    // the scheduled rounds instead, within two sync intervals.
    topo.directoryReplica(1).wipe();
    topo.loop().runFor(2 * topo.options().directorySyncInterval +
                       util::kSecond);
    expectConverged(topo);
    for (std::size_t g = 0; g < topo.gatewayCount(); ++g) {
      EXPECT_TRUE(
          probe.lookup("site" + std::to_string(g) + "-node00").has_value());
    }
    return dumpService(topo);
  };

  // Convergence is deterministic per seed: two whole runs of the
  // scenario produce byte-identical service state.
  const std::string first = runScenario();
  const std::string second = runScenario();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace gridrm::sim
