// End-to-end event path (paper Fig. 4): an SNMP agent crosses a
// threshold, emits a native trap to the gateway's event port, the
// Event Manager translates it, records it, and fans it out to
// subscribed clients.
#include <gtest/gtest.h>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"

namespace gridrm::core {
namespace {

using util::kSecond;

class EventFlowTest : public ::testing::Test {
 protected:
  EventFlowTest() : clock_(0), network_(clock_, 31) {
    agents::SiteOptions siteOptions;
    siteOptions.siteName = "siteA";
    siteOptions.hostCount = 2;
    site_ = std::make_unique<agents::SiteSimulation>(network_, clock_,
                                                     siteOptions);
    clock_.advance(60 * kSecond);

    GatewayOptions gatewayOptions;
    gatewayOptions.name = "gw-a";
    gatewayOptions.host = "gw-a.host";
    gatewayOptions.eventOptions.threadedDispatch = false;  // deterministic
    gateway_ = std::make_unique<Gateway>(network_, clock_, gatewayOptions);
    admin_ = gateway_->openSession(Principal::admin());

    site_->setTrapSink(gateway_->eventAddress());
  }

  util::SimClock clock_;
  net::Network network_;
  std::unique_ptr<agents::SiteSimulation> site_;
  std::unique_ptr<Gateway> gateway_;
  std::string admin_;
};

TEST_F(EventFlowTest, TrapToSubscriberAndHistory) {
  std::vector<Event> seen;
  gateway_->subscribeEvents(admin_, "snmp.trap",
                            [&](const Event& e) { seen.push_back(e); });

  // Force every host into the "high load" state.
  for (std::size_t i = 0; i < site_->snmpAgentCount(); ++i) {
    site_->snmpAgent(i).setTrapThresholds(
        agents::snmp::TrapThresholds{-1.0, -1});
  }
  site_->pollTraps();

  ASSERT_EQ(seen.size(), 2u);  // one trap per host, edge-triggered
  EXPECT_EQ(seen[0].type, "snmp.trap.highload");
  EXPECT_EQ(seen[0].severity, Severity::Critical);

  // Recorded for historical analysis.
  auto rs = gateway_->submitHistoricalQuery(
      admin_, "SELECT * FROM EventHistory WHERE Type = 'snmp.trap.highload'");
  EXPECT_EQ(rs->rowCount(), 2u);

  // Re-polling without recovery does not re-fire.
  site_->pollTraps();
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(EventFlowTest, LowDiskTrapDistinguished) {
  std::vector<Event> seen;
  gateway_->subscribeEvents(admin_, "snmp.trap.lowdisk",
                            [&](const Event& e) { seen.push_back(e); });
  site_->snmpAgent(0).setTrapThresholds(
      agents::snmp::TrapThresholds{1e9, 1LL << 40});  // disk always "low"
  site_->pollTraps();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].source, "siteA-node00");
}

TEST_F(EventFlowTest, TrapsFireDuringNormalQueries) {
  // The agent evaluates thresholds opportunistically while serving
  // requests, so a busy host surfaces alerts without a dedicated poll.
  std::vector<Event> seen;
  gateway_->subscribeEvents(admin_, "snmp.trap",
                            [&](const Event& e) { seen.push_back(e); });
  site_->snmpAgent(0).setTrapThresholds(
      agents::snmp::TrapThresholds{-1.0, -1});
  (void)gateway_->submitQuery(admin_,
                              {"jdbc:snmp://siteA-node00:161/perfdata"},
                              "SELECT Load1 FROM Processor");
  EXPECT_GE(seen.size(), 1u);
}

TEST_F(EventFlowTest, EventSubscriptionRequiresPermission) {
  const std::string guest = gateway_->openSession(Principal{"g", {"guest"}});
  EXPECT_THROW(gateway_->subscribeEvents(guest, "*", [](const Event&) {}),
               dbc::SqlError);
}

TEST_F(EventFlowTest, UnsubscribeStopsDelivery) {
  int count = 0;
  const std::size_t id = gateway_->subscribeEvents(
      admin_, "*", [&](const Event&) { ++count; });
  Event tickEvent;
  tickEvent.type = "x";
  gateway_->eventManager().ingest(tickEvent);
  gateway_->unsubscribeEvents(admin_, id);
  gateway_->eventManager().ingest(tickEvent);
  EXPECT_EQ(count, 1);
}

TEST_F(EventFlowTest, GatewayTransmitsEventBackToSource) {
  // Fig. 4's Transmitter API: GridRM -> native -> data source.
  struct Sink final : net::RequestHandler {
    net::Payload handleRequest(const net::Address&,
                               const net::Payload&) override {
      return "";
    }
    void handleDatagram(const net::Address&, const net::Payload& b) override {
      received.push_back(b);
    }
    std::vector<net::Payload> received;
  } sink;
  network_.bind({"siteA-node00", 9999}, &sink);

  Event e;
  e.type = "control.clearalarm";
  e.fields["reason"] = util::Value("operator-ack");
  EXPECT_TRUE(gateway_->eventManager().transmit(
      e, network_, gateway_->eventAddress(), {"siteA-node00", 9999}, "text"));
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_NE(sink.received[0].find("control.clearalarm"), std::string::npos);
}

}  // namespace
}  // namespace gridrm::core
