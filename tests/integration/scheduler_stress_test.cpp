// Queue-saturation and teardown stress for the gateway-wide scheduler:
// a Background flood must shed at the admission bound without touching
// interactive work, a met deadline must cancel still-queued attempts
// before they waste a pooled connection, and shutting down while
// saturated must never deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "gridrm/core/request_manager.hpp"
#include "gridrm/core/scheduler.hpp"
#include "gridrm/drivers/mock_driver.hpp"

namespace gridrm::core {
namespace {

using drivers::MockBehaviour;
using drivers::MockDriver;
using util::kMillisecond;
using util::kSecond;

/// Spin (real time) until `pred` holds or ~2s elapse.
template <typename Pred>
bool waitFor(Pred pred) {
  for (int i = 0; i < 20000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return pred();
}

/// RequestManager on an explicitly shared Scheduler, so tests control
/// the admission bound and read the lane counters — the Gateway wiring.
struct SharedSchedulerFixture {
  explicit SharedSchedulerFixture(SchedulerOptions schedulerOptions,
                                  RequestManagerTuning tuning = {})
      : scheduler(clock, schedulerOptions),
        driverManager(registry),
        pool(driverManager),
        cache(clock, 5 * kSecond),
        fgsl(true),
        rm(pool, cache, fgsl, &db, clock, scheduler, tuning) {
    ctx.clock = &clock;
    ctx.schemaManager = &schemaManager;
  }

  std::shared_ptr<MockDriver> addDriver(MockBehaviour b) {
    auto d = std::make_shared<MockDriver>(ctx, std::move(b));
    registry.registerDriver(d);
    return d;
  }

  util::SimClock clock;
  Scheduler scheduler;  // must outlive rm
  glue::SchemaManager schemaManager;
  drivers::DriverContext ctx;
  dbc::DriverRegistry registry;
  GridRmDriverManager driverManager;
  ConnectionManager pool;
  CacheController cache;
  FineSecurityLayer fgsl;
  store::Database db;
  RequestManager rm;
  Principal monitor = Principal::monitor();
};

TEST(SchedulerStressTest, BackgroundFloodShedsAtBoundNeverTouchesInteractive) {
  // Four producers burst 400 Background tasks at a 16-deep lane served
  // by two workers: most are shed at admission. A concurrent client
  // submitting Interactive work one-at-a-time loses nothing.
  util::SimClock clock;
  Scheduler scheduler(clock, {.workers = 2, .maxQueueDepth = 16,
                              .backgroundShare = 25});

  // Park both workers so the burst races a full-stop lane: exactly
  // maxQueueDepth submissions are admitted, the rest shed.
  std::atomic<bool> release{false};
  std::atomic<int> parked{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] {
      ++parked;
      while (!release) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }));
  }
  ASSERT_TRUE(waitFor([&] { return parked.load() == 2; }));

  std::atomic<std::uint64_t> backgroundRan{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const bool ok =
            scheduler.submit(Lane::Background, [&] { ++backgroundRan; });
        ok ? ++accepted : ++shed;
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load(), 16u);
  EXPECT_EQ(shed.load(), 400u - 16u);

  // With the flood queued, interactive work still flows one request at
  // a time: its lane is bounded independently and outranks the backlog.
  release = true;
  std::uint64_t interactiveDone = 0;
  for (int i = 0; i < 50; ++i) {
    std::atomic<bool> done{false};
    ASSERT_TRUE(scheduler.submit(Lane::Interactive, [&] { done = true; }));
    ASSERT_TRUE(waitFor([&] { return done.load(); }));
    ++interactiveDone;
  }
  scheduler.waitIdle();

  EXPECT_EQ(interactiveDone, 50u);
  EXPECT_EQ(backgroundRan.load(), accepted.load());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.lane(Lane::Interactive).rejected, 0u);
  EXPECT_EQ(stats.lane(Lane::Interactive).executed, 52u);  // parkers + 50
  EXPECT_EQ(stats.lane(Lane::Background).rejected, shed.load());
  EXPECT_EQ(stats.lane(Lane::Background).executed, accepted.load());
}

TEST(SchedulerStressTest, MetDeadlineCancelsQueuedAttemptsBeforeTheyRun) {
  // Six deadline-bound clients race two workers at a source that parks
  // forever: two attempts run (and park), four wait in the Interactive
  // lane. The deadline seals every slot and cancels the queued four —
  // they are dropped at dispatch, never claiming a connection.
  SharedSchedulerFixture f({.workers = 2, .maxQueueDepth = 64});
  MockBehaviour b;
  b.blockOnDelay = true;
  b.queryLatencyUs = 3600 * kSecond;
  auto driver = f.addDriver(b);

  QueryOptions options;
  options.useCache = false;
  options.deadline = 10 * kMillisecond;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(std::async(std::launch::async, [&, i] {
      return f.rm.queryOne(f.monitor, "jdbc:mock://h" + std::to_string(i) + "/x",
                           "SELECT * FROM Processor", options);
    }));
  }
  // Every fan-out has submitted its attempt (so each one's deadline is
  // anchored before the advance below), both workers are parked inside
  // the driver, and the other four attempts are queued behind them.
  ASSERT_TRUE(waitFor([&] {
    return f.scheduler.stats().lane(Lane::Interactive).submitted == 6 &&
           driver->queryCalls() == 2;
  }));
  f.clock.advance(11 * kMillisecond);

  for (auto& fut : futures) {
    QueryResult result = fut.get();
    EXPECT_FALSE(result.complete());
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].message, "deadline exceeded");
  }
  EXPECT_EQ(f.rm.stats().deadlineMisses, 6u);

  driver->releaseBlockedQueries();
  f.scheduler.waitIdle();
  const auto stats = f.scheduler.stats();
  EXPECT_EQ(stats.lane(Lane::Interactive).cancelled, 4u);
  EXPECT_EQ(stats.lane(Lane::Interactive).executed, 2u);
  EXPECT_EQ(driver->queryCalls(), 2u);  // the cancelled four never ran
}

TEST(SchedulerStressTest, ShutdownWhileSaturatedDrainsWithoutDeadlock) {
  // Relayed Background queries (blocking collectors, as the Global
  // layer submits them) saturate the scheduler against a parked source,
  // then the scheduler shuts down mid-flight: queued relays are
  // cancelled, the running collector aborts instead of waiting for
  // completions that will never come, and join() returns.
  SharedSchedulerFixture f({.workers = 2, .maxQueueDepth = 64});
  MockBehaviour b;
  b.blockOnDelay = true;
  b.queryLatencyUs = 3600 * kSecond;
  auto driver = f.addDriver(b);

  QueryOptions options;
  options.useCache = false;
  options.deadline = 20 * kMillisecond;
  options.lane = Lane::Background;
  std::atomic<int> relaysFinished{0};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(f.scheduler.submit(
        Lane::Background,
        [&, i] {
          (void)f.rm.queryOne(f.monitor,
                              "jdbc:mock://h" + std::to_string(i) + "/x",
                              "SELECT * FROM Processor", options);
          ++relaysFinished;
        },
        CancelToken{}, /*blocking=*/true));
  }
  // One relay runs (blocking cap = workers - 1) and its attempt parks
  // in the driver on the other worker.
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == 1; }));

  std::thread shutdownThread([&] { f.scheduler.shutdown(); });
  // join() blocks on the worker parked inside the driver until the
  // teardown escape hatch releases it — exactly the production order
  // (drivers outlive the scheduler).
  ASSERT_TRUE(waitFor([&] { return f.scheduler.stopped(); }));
  driver->releaseBlockedQueries();
  shutdownThread.join();  // would deadlock before this change

  EXPECT_EQ(relaysFinished.load(), 1);  // the running one; queued = cancelled
  const auto stats = f.scheduler.stats();
  EXPECT_GE(stats.lane(Lane::Background).cancelled, 5u);
  EXPECT_EQ(driver->queryCalls(), 1u);
}

TEST(SchedulerStressTest, OverloadedInteractiveFailsFastWithOverloaded) {
  // With the single worker parked and the one-deep Interactive lane
  // already holding an attempt, the next client is shed at admission:
  // it fails immediately with ErrorCode::Overloaded instead of queueing
  // behind work the gateway cannot absorb.
  SharedSchedulerFixture f({.workers = 1, .maxQueueDepth = 1});
  auto driver = f.addDriver(MockBehaviour{});

  std::atomic<bool> release{false};
  ASSERT_TRUE(f.scheduler.submit(Lane::Background, [&] {
    while (!release) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }));

  QueryOptions options;
  options.useCache = false;
  options.deadline = 50 * kMillisecond;
  auto first = std::async(std::launch::async, [&] {
    return f.rm.queryOne(f.monitor, "jdbc:mock://h1/x",
                         "SELECT * FROM Processor", options);
  });
  ASSERT_TRUE(waitFor([&] {
    return f.scheduler.stats().lane(Lane::Interactive).queued == 1;
  }));

  // The lane is full: this one is refused at submit() and the caller
  // sees the failure without waiting out its deadline (the clock never
  // advances in this test).
  QueryResult shed = f.rm.queryOne(f.monitor, "jdbc:mock://h2/x",
                                   "SELECT * FROM Processor", options);
  EXPECT_FALSE(shed.complete());
  ASSERT_EQ(shed.failures.size(), 1u);
  EXPECT_EQ(shed.failures[0].message, "gateway overloaded: scheduler queue full");
  EXPECT_EQ(shed.failures[0].code, dbc::ErrorCode::Overloaded);
  EXPECT_EQ(f.rm.stats().overloadRejections, 1u);

  release = true;
  QueryResult result = first.get();
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(f.rm.stats().deadlineMisses, 0u);
}

TEST(SchedulerStressTest, ShutdownWithCoalescedFollowersNeverDeadlocks) {
  // A coalesced flight: the leader's attempt parks in the driver while
  // two followers wait on the flight's completion. Shutting down
  // mid-flight must unwind all three — the leader aborts its wait, the
  // flight is sealed, and the followers wake with the shared outcome.
  SharedSchedulerFixture f({.workers = 2, .maxQueueDepth = 64});
  MockBehaviour b;
  b.blockOnDelay = true;
  b.queryLatencyUs = 3600 * kSecond;
  auto driver = f.addDriver(b);

  QueryOptions options;  // useCache=true: eligible for coalescing
  options.deadline = 20 * kMillisecond;
  auto runQuery = [&] {
    return f.rm.queryOne(f.monitor, "jdbc:mock://h/x",
                         "SELECT * FROM Processor", options);
  };
  auto leader = std::async(std::launch::async, runQuery);
  ASSERT_TRUE(waitFor([&] { return driver->queryCalls() == 1; }));
  auto follower1 = std::async(std::launch::async, runQuery);
  auto follower2 = std::async(std::launch::async, runQuery);
  // All three attempts submitted; give the free worker a moment to pick
  // a follower attempt and park it on the flight's completion — the
  // hazardous interleaving this test exists for. (The no-deadlock
  // property holds in every interleaving, so this is best-effort.)
  ASSERT_TRUE(waitFor([&] {
    return f.scheduler.stats().lane(Lane::Interactive).submitted == 3;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::thread shutdownThread([&] { f.scheduler.shutdown(); });
  ASSERT_TRUE(waitFor([&] { return f.scheduler.stopped(); }));
  driver->releaseBlockedQueries();
  shutdownThread.join();

  // All three callers return; a follower either shares the flight's
  // outcome or (if the flight already settled and was erased) re-leads
  // against the now-released driver — never a hang.
  (void)leader.get();
  (void)follower1.get();
  (void)follower2.get();
  EXPECT_LE(driver->queryCalls(), 3u);
}

}  // namespace
}  // namespace gridrm::core
