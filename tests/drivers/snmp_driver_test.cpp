#include "gridrm/drivers/snmp_driver.hpp"

#include <gtest/gtest.h>

#include "driver_test_util.hpp"

namespace gridrm::drivers {
namespace {

using testutil::SiteFixture;

TEST(SnmpDriverTest, AcceptsUrlForms) {
  SiteFixture fixture;
  SnmpDriver driver(fixture.context());
  EXPECT_TRUE(driver.acceptsUrl(*util::Url::parse("jdbc:snmp://h/x")));
  EXPECT_TRUE(driver.acceptsUrl(*util::Url::parse("jdbc:snmp://h:9999/x")));
  // Paper form: no subprotocol, claimed via the well-known port.
  EXPECT_TRUE(driver.acceptsUrl(*util::Url::parse("jdbc:://h:161/x")));
  EXPECT_FALSE(driver.acceptsUrl(*util::Url::parse("jdbc:://h:8649/x")));
  EXPECT_FALSE(driver.acceptsUrl(*util::Url::parse("jdbc:nws://h:161/x")));
}

TEST(SnmpDriverTest, ConnectFailsForDeadHost) {
  SiteFixture fixture;
  SnmpDriver driver(fixture.context());
  EXPECT_THROW(
      driver.connect(*util::Url::parse("jdbc:snmp://nosuchhost/x"), {}),
      dbc::SqlError);
}

TEST(SnmpDriverTest, WrongCommunityIsSecurityDenied) {
  SiteFixture fixture;
  SnmpDriver driver(fixture.context());
  try {
    driver.connect(*util::Url::parse(
                       "jdbc:snmp://siteA-node00:161/x?community=wrong"),
                   {});
    FAIL();
  } catch (const dbc::SqlError& e) {
    EXPECT_EQ(e.code(), dbc::ErrorCode::SecurityDenied);
  }
}

TEST(SnmpDriverTest, FineGrainedFetchOnlyNeededOids) {
  // A one-column query must cost exactly one data request beyond the
  // connect-time probe (paper section 3.3: fine-grained requests).
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::snmp::kSnmpPort};
  auto conn = fixture.connect("jdbc:snmp://siteA-node00:161/x");
  const auto baseline = fixture.network().stats(agent).requestsServed;
  auto stmt = conn->createStatement();
  (void)stmt->executeQuery("SELECT Load1 FROM Processor");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 1);
}

TEST(SnmpDriverTest, UptimeScaledToSeconds) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:snmp://siteA-node00:161/x",
                          "SELECT UpTime FROM Host");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 120);  // the fixture advanced 120s
}

TEST(SnmpDriverTest, MemoryScaledKbToMb) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:snmp://siteA-node00:161/x",
                          "SELECT RAMSize FROM Memory");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 2048);  // default spec memTotalMb
}

TEST(SnmpDriverTest, CpuCountViaBulkWalk) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:snmp://siteA-node01:161/x",
                          "SELECT CPUCount FROM Processor");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 2);
}

TEST(SnmpDriverTest, IsValidProbesAgent) {
  SiteFixture fixture;
  auto conn = fixture.connect("jdbc:snmp://siteA-node00:161/x");
  EXPECT_TRUE(conn->isValid());
  fixture.network().setHostDown("siteA-node00", true);
  EXPECT_FALSE(conn->isValid());
  fixture.network().setHostDown("siteA-node00", false);
  EXPECT_TRUE(conn->isValid());
}

TEST(SnmpDriverTest, ClosedConnectionRefusesStatements) {
  SiteFixture fixture;
  auto conn = fixture.connect("jdbc:snmp://siteA-node00:161/x");
  conn->close();
  EXPECT_TRUE(conn->isClosed());
  EXPECT_THROW(conn->createStatement(), dbc::SqlError);
}

TEST(SnmpDriverTest, NetworkAdapterCounters) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:snmp://siteA-node00:161/x",
                          "SELECT Name, Speed, InBytes FROM NetworkAdapter");
  rs->next();
  EXPECT_EQ(rs->getString("Name"), "eth0");
  EXPECT_EQ(rs->getInt("Speed"), 1000);  // Mbps after scaling
  EXPECT_GT(rs->getInt("InBytes"), 0);
}

}  // namespace
}  // namespace gridrm::drivers
