#include "gridrm/drivers/driver_common.hpp"

#include <gtest/gtest.h>

#include "gridrm/glue/schema.hpp"
#include "gridrm/sql/parser.hpp"

namespace gridrm::drivers {
namespace {

using util::Value;
using util::ValueType;

const glue::Schema& schema() { return glue::Schema::builtin(); }

TEST(ParsedQueryTest, StarNeedsEverything) {
  ParsedQuery q = ParsedQuery::parse("SELECT * FROM Processor", schema());
  EXPECT_EQ(q.group().name(), "Processor");
  EXPECT_EQ(q.neededAttributes().size(), q.group().size());
}

TEST(ParsedQueryTest, ProjectionNeedsOnlyReferenced) {
  ParsedQuery q =
      ParsedQuery::parse("SELECT Load1 FROM Processor", schema());
  EXPECT_EQ(q.neededAttributes(), std::vector<std::string>{"Load1"});
  EXPECT_TRUE(q.needs("load1"));  // case-insensitive
  EXPECT_FALSE(q.needs("Load5"));
}

TEST(ParsedQueryTest, WhereAndOrderColumnsIncluded) {
  ParsedQuery q = ParsedQuery::parse(
      "SELECT Load1 FROM Processor WHERE HostName = 'x' ORDER BY Load5",
      schema());
  EXPECT_TRUE(q.needs("Load1"));
  EXPECT_TRUE(q.needs("HostName"));
  EXPECT_TRUE(q.needs("Load5"));
  EXPECT_FALSE(q.needs("IdlePct"));
  // Needed attributes come back in schema order.
  EXPECT_EQ(q.neededAttributes(),
            (std::vector<std::string>{"HostName", "Load1", "Load5"}));
}

TEST(ParsedQueryTest, ErrorsMapToSqlErrorCodes) {
  try {
    ParsedQuery::parse("not sql", schema());
    FAIL();
  } catch (const dbc::SqlError& e) {
    EXPECT_EQ(e.code(), dbc::ErrorCode::Syntax);
  }
  try {
    ParsedQuery::parse("SELECT * FROM NotAGroup", schema());
    FAIL();
  } catch (const dbc::SqlError& e) {
    EXPECT_EQ(e.code(), dbc::ErrorCode::NoSuchTable);
  }
  try {
    ParsedQuery::parse("SELECT Bogus FROM Processor", schema());
    FAIL();
  } catch (const dbc::SqlError& e) {
    EXPECT_EQ(e.code(), dbc::ErrorCode::NoSuchColumn);
  }
}

TEST(GlueRowBuilderTest, UnsetAttributesStayNull) {
  const glue::GroupDef* g = schema().findGroup("Processor");
  GlueRowBuilder b(*g);
  b.beginRow().set("HostName", Value("n0")).set("Load1", Value(0.5));
  auto rows = b.takeRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), g->size());
  EXPECT_EQ(rows[0][*g->indexOf("HostName")].asString(), "n0");
  EXPECT_TRUE(rows[0][*g->indexOf("Load5")].isNull());
}

TEST(GlueRowBuilderTest, UnknownAttributeIgnored) {
  const glue::GroupDef* g = schema().findGroup("Memory");
  GlueRowBuilder b(*g);
  b.beginRow().set("NotAnAttribute", Value(1));
  auto rows = b.takeRows();
  for (const auto& cell : rows[0]) EXPECT_TRUE(cell.isNull());
}

TEST(GlueRowBuilderTest, ColumnsMatchGroupDefinition) {
  const glue::GroupDef* g = schema().findGroup("Memory");
  GlueRowBuilder b(*g);
  auto columns = b.columns();
  ASSERT_EQ(columns.size(), g->size());
  EXPECT_EQ(columns[0].table, "Memory");
  EXPECT_EQ(columns[*g->indexOf("RAMSize")].unit, "MB");
}

TEST(ConvertScaledTest, NumericConversions) {
  EXPECT_EQ(convertScaled(Value(2048), 1.0 / 1024, ValueType::Int).asInt(), 2);
  EXPECT_DOUBLE_EQ(
      convertScaled(Value(150), 0.01, ValueType::Real).asReal(), 1.5);
  EXPECT_EQ(convertScaled(Value(1.9), 1.0, ValueType::Int).asInt(), 1);
}

TEST(ConvertScaledTest, StringToNumeric) {
  EXPECT_DOUBLE_EQ(
      convertScaled(Value("0.42"), 1.0, ValueType::Real).asReal(), 0.42);
  EXPECT_TRUE(convertScaled(Value("junk"), 1.0, ValueType::Real).isNull());
  EXPECT_TRUE(convertScaled(Value("junk"), 1.0, ValueType::Int).isNull());
}

TEST(ConvertScaledTest, NullStaysNull) {
  EXPECT_TRUE(convertScaled(Value::null(), 2.0, ValueType::Real).isNull());
}

TEST(ConvertScaledTest, ToStringAndBool) {
  EXPECT_EQ(convertScaled(Value(42), 1.0, ValueType::String).asString(), "42");
  EXPECT_TRUE(convertScaled(Value(1), 1.0, ValueType::Bool).asBool());
}

TEST(ResponseCacheTest, TtlSemantics) {
  util::SimClock clock;
  ResponseCache<int> cache(clock, 10 * util::kSecond);
  EXPECT_EQ(cache.get(), nullptr);
  cache.put(7);
  ASSERT_NE(cache.get(), nullptr);
  EXPECT_EQ(*cache.get(), 7);
  clock.advance(9 * util::kSecond);
  EXPECT_NE(cache.get(), nullptr);
  clock.advance(2 * util::kSecond);
  EXPECT_EQ(cache.get(), nullptr);  // expired
}

TEST(ResponseCacheTest, ZeroTtlDisables) {
  util::SimClock clock;
  ResponseCache<int> cache(clock, 0);
  cache.put(7);
  EXPECT_EQ(cache.get(), nullptr);
}

TEST(ResponseCacheTest, InvalidateDropsValue) {
  util::SimClock clock;
  ResponseCache<int> cache(clock, util::kSecond);
  cache.put(7);
  cache.invalidate();
  EXPECT_EQ(cache.get(), nullptr);
}

TEST(CollectColumnsTest, WalksWholeTree) {
  auto stmt = sql::parseSelect(
      "SELECT a FROM t WHERE b > 1 AND c IN (d, 2) ORDER BY e");
  std::set<std::string> cols;
  collectColumns(*stmt.items[0].expr, cols);
  collectColumns(*stmt.where, cols);
  collectColumns(*stmt.orderBy[0].expr, cols);
  EXPECT_EQ(cols, (std::set<std::string>{"a", "b", "c", "d", "e"}));
}

}  // namespace
}  // namespace gridrm::drivers
