#include "gridrm/drivers/ganglia_driver.hpp"

#include <gtest/gtest.h>

#include "driver_test_util.hpp"

namespace gridrm::drivers {
namespace {

using testutil::SiteFixture;

TEST(GangliaDriverTest, AcceptsUrlForms) {
  SiteFixture fixture;
  GangliaDriver driver(fixture.context());
  EXPECT_TRUE(driver.acceptsUrl(*util::Url::parse("jdbc:ganglia://h/x")));
  EXPECT_TRUE(driver.acceptsUrl(*util::Url::parse("jdbc:://h:8649/x")));
  EXPECT_FALSE(driver.acceptsUrl(*util::Url::parse("jdbc:://h:161/x")));
}

TEST(GangliaDriverTest, OneFetchServesWholeCluster) {
  // Coarse-grained: a full-cluster query costs exactly one agent request
  // (beyond the connect-time validation fetch).
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::ganglia::kGmondPort};
  auto conn = fixture.connect("jdbc:ganglia://siteA-node00/x?cachems=0");
  const auto baseline = fixture.network().stats(agent).requestsServed;
  auto stmt = conn->createStatement();
  auto rs = stmt->executeQuery("SELECT * FROM Processor");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 1);
  auto* vec = dynamic_cast<dbc::VectorResultSet*>(rs.get());
  ASSERT_NE(vec, nullptr);
  EXPECT_EQ(vec->rowCount(), 3u);  // every host from one dump
}

TEST(GangliaDriverTest, PluginCacheSuppressesRefetch) {
  // Section 3.3: coarse-grained drivers cache within the plug-in.
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::ganglia::kGmondPort};
  auto conn = fixture.connect("jdbc:ganglia://siteA-node00/x?cachems=30000");
  auto stmt = conn->createStatement();
  const auto baseline = fixture.network().stats(agent).requestsServed;
  (void)stmt->executeQuery("SELECT * FROM Processor");
  (void)stmt->executeQuery("SELECT * FROM Memory");
  (void)stmt->executeQuery("SELECT * FROM Host");
  // All three served from the snapshot fetched at connect time.
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline);

  fixture.clock().advance(31 * util::kSecond);  // TTL lapses
  (void)stmt->executeQuery("SELECT * FROM Processor");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 1);
}

TEST(GangliaDriverTest, CacheDisabledRefetchesEveryQuery) {
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::ganglia::kGmondPort};
  auto conn = fixture.connect("jdbc:ganglia://siteA-node00/x?cachems=0");
  auto stmt = conn->createStatement();
  const auto baseline = fixture.network().stats(agent).requestsServed;
  (void)stmt->executeQuery("SELECT * FROM Processor");
  (void)stmt->executeQuery("SELECT * FROM Processor");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 2);
}

TEST(GangliaDriverTest, ClusterNameTranslated) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:ganglia://siteA-node00/x",
                          "SELECT ClusterName FROM Processor LIMIT 1");
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "siteA");
}

TEST(GangliaDriverTest, BootTimeScaledToMicroseconds) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:ganglia://siteA-node00/x",
                          "SELECT BootTime FROM OperatingSystem LIMIT 1");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 0);  // hosts booted at sim time 0
}

TEST(GangliaDriverTest, ConnectFailsForDeadHost) {
  SiteFixture fixture;
  GangliaDriver driver(fixture.context());
  EXPECT_THROW(driver.connect(*util::Url::parse("jdbc:ganglia://dead/x"), {}),
               dbc::SqlError);
}

TEST(GangliaDriverTest, OrderByAcrossClusterRows) {
  SiteFixture fixture;
  auto rs = fixture.query("jdbc:ganglia://siteA-node00/x",
                          "SELECT HostName, Load1 FROM Processor "
                          "ORDER BY Load1 DESC");
  double last = 1e9;
  while (rs->next()) {
    const double load = rs->getReal("Load1");
    EXPECT_LE(load, last);
    last = load;
  }
}

}  // namespace
}  // namespace gridrm::drivers
