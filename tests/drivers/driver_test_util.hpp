// Shared fixture for driver tests: one simulated site, a registry with
// the default drivers, and helpers to connect/query by URL.
#pragma once

#include <memory>
#include <string>

#include "gridrm/agents/site.hpp"
#include "gridrm/dbc/driver_registry.hpp"
#include "gridrm/drivers/defaults.hpp"
#include "gridrm/glue/schema_manager.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::drivers::testutil {

class SiteFixture {
 public:
  explicit SiteFixture(std::size_t hosts = 3, std::uint64_t seed = 11)
      : clock_(0), network_(clock_, seed) {
    agents::SiteOptions options;
    options.siteName = "siteA";
    options.hostCount = hosts;
    options.seed = seed;
    site_ = std::make_unique<agents::SiteSimulation>(network_, clock_,
                                                     options);
    clock_.advance(120 * util::kSecond);
    ctx_.network = &network_;
    ctx_.clock = &clock_;
    ctx_.schemaManager = &schemaManager_;
    registerDefaultDrivers(registry_, ctx_);
  }

  util::SimClock& clock() { return clock_; }
  net::Network& network() { return network_; }
  agents::SiteSimulation& site() { return *site_; }
  glue::SchemaManager& schemaManager() { return schemaManager_; }
  dbc::DriverRegistry& registry() { return registry_; }
  DriverContext& context() { return ctx_; }

  std::unique_ptr<dbc::Connection> connect(const std::string& urlText) {
    auto url = util::Url::parse(urlText);
    if (!url) throw std::runtime_error("bad url " + urlText);
    auto driver = registry_.locate(*url);
    if (!driver) throw std::runtime_error("no driver for " + urlText);
    return driver->connect(*url, util::Config{});
  }

  std::unique_ptr<dbc::VectorResultSet> query(const std::string& urlText,
                                              const std::string& sql) {
    auto conn = connect(urlText);
    auto stmt = conn->createStatement();
    auto rs = stmt->executeQuery(sql);
    if (auto* vec = dynamic_cast<dbc::VectorResultSet*>(rs.get())) {
      rs.release();
      return std::unique_ptr<dbc::VectorResultSet>(vec);
    }
    return dbc::VectorResultSet::materialize(*rs);
  }

 private:
  util::SimClock clock_;
  net::Network network_;
  std::unique_ptr<agents::SiteSimulation> site_;
  glue::SchemaManager schemaManager_;
  dbc::DriverRegistry registry_;
  DriverContext ctx_;
};

}  // namespace gridrm::drivers::testutil
