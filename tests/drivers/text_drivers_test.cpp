// NWS, NetLogger, SCMS and SQL-source driver specifics (the shared
// GLUE behaviours are covered by all_drivers_test.cpp).
#include <gtest/gtest.h>

#include <set>

#include "driver_test_util.hpp"
#include "gridrm/drivers/mock_driver.hpp"
#include "gridrm/drivers/nws_driver.hpp"
#include "gridrm/drivers/sqlsrc_driver.hpp"

namespace gridrm::drivers {
namespace {

using testutil::SiteFixture;

// ----------------------------------------------------------------- NWS

TEST(NwsDriverTest, ServesNetworkForecastGroup) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl("nws"),
                          "SELECT * FROM NetworkForecast");
  EXPECT_EQ(rs->rowCount(), 3u);  // latency, bandwidth, availableCpu
  std::set<std::string> resources;
  while (rs->next()) {
    resources.insert(rs->getString("Resource"));
    EXPECT_FALSE(rs->get("Measurement").isNull());
    EXPECT_FALSE(rs->get("Forecast").isNull());
    EXPECT_GE(rs->getReal("ForecastError"), 0.0);
  }
  EXPECT_EQ(resources,
            (std::set<std::string>{"latency", "bandwidth", "availableCpu"}));
}

TEST(NwsDriverTest, OtherGroupsRejected) {
  SiteFixture fixture;
  auto conn = fixture.connect(fixture.site().headUrl("nws"));
  auto stmt = conn->createStatement();
  EXPECT_THROW(stmt->executeQuery("SELECT * FROM Processor"), dbc::SqlError);
}

TEST(NwsDriverTest, FilterByResource) {
  SiteFixture fixture;
  auto rs = fixture.query(
      fixture.site().headUrl("nws"),
      "SELECT Forecast FROM NetworkForecast WHERE Resource = 'latency'");
  EXPECT_EQ(rs->rowCount(), 1u);
}

TEST(NwsDriverTest, PluginCacheCutsSensorTraffic) {
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::nws::kNwsPort};
  auto conn = fixture.connect("jdbc:nws://siteA-node00/x?cachems=60000");
  auto stmt = conn->createStatement();
  (void)stmt->executeQuery("SELECT * FROM NetworkForecast");
  const auto afterFirst = fixture.network().stats(agent).requestsServed;
  (void)stmt->executeQuery("SELECT * FROM NetworkForecast");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, afterFirst);
}

TEST(NwsDriverTest, AcceptsUrlByPort) {
  SiteFixture fixture;
  NwsDriver driver(fixture.context());
  EXPECT_TRUE(driver.acceptsUrl(*util::Url::parse("jdbc:://h:8060/x")));
  EXPECT_FALSE(driver.acceptsUrl(*util::Url::parse("jdbc:://h:161/x")));
}

// ------------------------------------------------------------ NetLogger

TEST(NetLoggerDriverTest, TimestampComesFromLogRecord) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl("netlogger"),
                          "SELECT Timestamp, Load1 FROM Processor");
  rs->next();
  const auto ts = rs->get("Timestamp").asInt();
  // Log records are emitted every 5s of sim time; the newest must be at
  // or before "now" but within one period of it.
  EXPECT_LE(ts, fixture.clock().now());
  EXPECT_GE(ts, fixture.clock().now() - 10 * util::kSecond);
}

TEST(NetLoggerDriverTest, PerAttributeTailRequests) {
  // Fine-grained: N mapped attributes -> N TAIL requests.
  SiteFixture fixture;
  const net::Address agent{"siteA-node00",
                           agents::netlogger::kNetLoggerPort};
  auto conn = fixture.connect(fixture.site().headUrl("netlogger"));
  const auto baseline = fixture.network().stats(agent).requestsServed;
  auto stmt = conn->createStatement();
  (void)stmt->executeQuery("SELECT InBytes, OutBytes FROM NetworkAdapter");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 2);
}

// ----------------------------------------------------------------- SCMS

TEST(ScmsDriverTest, NodesEnumeratedThenStatted) {
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::scms::kScmsPort};
  auto conn = fixture.connect(fixture.site().headUrl("scms"));
  const auto baseline = fixture.network().stats(agent).requestsServed;
  auto stmt = conn->createStatement();
  (void)stmt->executeQuery("SELECT * FROM Host");
  // 1 NODES + 3 STAT requests for the 3-host fixture.
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 4);
}

TEST(ScmsDriverTest, HostGroupComplete) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl("scms"),
                          "SELECT * FROM Host ORDER BY HostName");
  ASSERT_EQ(rs->rowCount(), 3u);
  rs->next();
  EXPECT_EQ(rs->getString("HostName"), "siteA-node00");
  EXPECT_EQ(rs->getString("ClusterName"), "siteA");
  EXPECT_GT(rs->getInt("ProcessCount"), 0);
  EXPECT_EQ(rs->getInt("UpTime"), 120);
}

// ------------------------------------------------------------ SQL source

TEST(SqlSourceDriverTest, PassThroughDelegatesWholeQuery) {
  // The GLUE-native driver ships the SQL verbatim: one request per
  // query, and ORDER BY/LIMIT are executed source-side.
  SiteFixture fixture;
  const net::Address agent{"siteA-node00", agents::sqlsrc::kSqlPort};
  auto conn = fixture.connect(fixture.site().headUrl("sql"));
  const auto baseline = fixture.network().stats(agent).requestsServed;
  auto stmt = conn->createStatement();
  auto rs = stmt->executeQuery(
      "SELECT HostName FROM Processor ORDER BY Load1 DESC LIMIT 1");
  EXPECT_EQ(fixture.network().stats(agent).requestsServed, baseline + 1);
  auto* vec = dynamic_cast<dbc::VectorResultSet*>(rs.get());
  ASSERT_NE(vec, nullptr);
  EXPECT_EQ(vec->rowCount(), 1u);
}

TEST(SqlSourceDriverTest, SourceErrorsSurfaceAsSqlError) {
  SiteFixture fixture;
  auto conn = fixture.connect(fixture.site().headUrl("sql"));
  auto stmt = conn->createStatement();
  EXPECT_THROW(stmt->executeQuery("SELECT * FROM Nope"), dbc::SqlError);
}

TEST(SqlSourceDriverTest, ComputeElementGroup) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl("sql"),
                          "SELECT * FROM ComputeElement");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_EQ(rs->getInt("HostCount"), 3);
}

// ------------------------------------------------------------ Mock driver

TEST(MockDriverTest, ScriptedFailures) {
  SiteFixture fixture;
  MockBehaviour behaviour;
  behaviour.failQueriesFrom = 2;  // queries 3, 4, ... fail
  MockDriver driver(fixture.context(), behaviour);
  auto url = *util::Url::parse("jdbc:mock://h/x");
  ASSERT_TRUE(driver.acceptsUrl(url));
  auto conn = driver.connect(url, {});
  auto stmt = conn->createStatement();
  EXPECT_NO_THROW(stmt->executeQuery("SELECT Load1 FROM Processor"));
  EXPECT_NO_THROW(stmt->executeQuery("SELECT Load1 FROM Processor"));
  EXPECT_THROW(stmt->executeQuery("SELECT Load1 FROM Processor"),
               dbc::SqlError);
  EXPECT_EQ(driver.queryCalls(), 3u);
}

TEST(MockDriverTest, ConnectFailureScripted) {
  SiteFixture fixture;
  MockBehaviour behaviour;
  behaviour.failConnect = true;
  MockDriver driver(fixture.context(), behaviour);
  EXPECT_THROW(driver.connect(*util::Url::parse("jdbc:mock://h/x"), {}),
               dbc::SqlError);
  EXPECT_EQ(driver.connectCalls(), 1u);
}

}  // namespace
}  // namespace gridrm::drivers
