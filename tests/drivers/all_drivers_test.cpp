// The paper's homogeneous-view claim, tested across every driver at
// once: the same SQL against wildly different native protocols must
// come back as identically-shaped GLUE rows (section 3.2.3).
#include <gtest/gtest.h>

#include "driver_test_util.hpp"
#include "gridrm/glue/schema.hpp"

namespace gridrm::drivers {
namespace {

using testutil::SiteFixture;

/// Which drivers serve the Processor group (NWS serves only
/// NetworkForecast; SQL serves everything).
struct DriverCase {
  const char* subprotocol;
  bool perHostRows;  // cluster-wide drivers return one row per host
};

class ProcessorGroupTest : public ::testing::TestWithParam<DriverCase> {};

TEST_P(ProcessorGroupTest, HomogeneousViewAcrossDrivers) {
  SiteFixture fixture;
  const DriverCase& c = GetParam();
  auto rs =
      fixture.query(fixture.site().headUrl(c.subprotocol),
                    "SELECT * FROM Processor");

  // Shape: exactly the GLUE Processor columns, in schema order.
  const glue::GroupDef* group =
      glue::Schema::builtin().findGroup("Processor");
  ASSERT_EQ(rs->metaData().columnCount(), group->size()) << c.subprotocol;
  for (std::size_t i = 0; i < group->size(); ++i) {
    EXPECT_EQ(rs->metaData().column(i).name, group->attributes()[i].name);
  }

  const std::size_t expectedRows = c.perHostRows ? 3u : 1u;
  ASSERT_EQ(rs->rowCount(), expectedRows) << c.subprotocol;

  while (rs->next()) {
    // HostName must always be translated (never NULL).
    (void)rs->get("HostName");
    EXPECT_FALSE(rs->wasNull()) << c.subprotocol;
    // Load1 is served by every Processor-capable driver here.
    const double load = rs->getReal("Load1");
    EXPECT_FALSE(rs->wasNull()) << c.subprotocol;
    EXPECT_GE(load, 0.0);
    EXPECT_LT(load, 64.0);
    // Timestamp populated.
    (void)rs->get("Timestamp");
    EXPECT_FALSE(rs->wasNull()) << c.subprotocol;
  }
}

TEST_P(ProcessorGroupTest, WhereClauseHonoured) {
  SiteFixture fixture;
  const DriverCase& c = GetParam();
  const std::string url = fixture.site().headUrl(c.subprotocol);
  auto all = fixture.query(url, "SELECT * FROM Processor");
  auto none =
      fixture.query(url, "SELECT * FROM Processor WHERE Load1 < -1");
  EXPECT_GT(all->rowCount(), 0u);
  EXPECT_EQ(none->rowCount(), 0u);
  auto byHost = fixture.query(
      url, "SELECT * FROM Processor WHERE HostName = 'siteA-node00'");
  EXPECT_EQ(byHost->rowCount(), 1u) << c.subprotocol;
}

TEST_P(ProcessorGroupTest, ProjectionNarrowsColumns) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl(GetParam().subprotocol),
                          "SELECT HostName, Load1 FROM Processor");
  EXPECT_EQ(rs->metaData().columnCount(), 2u);
}

TEST_P(ProcessorGroupTest, UnknownGroupRejectedBeforeContact) {
  SiteFixture fixture;
  auto conn = fixture.connect(fixture.site().headUrl(GetParam().subprotocol));
  auto stmt = conn->createStatement();
  EXPECT_THROW(stmt->executeQuery("SELECT * FROM NotAGroup"), dbc::SqlError);
}

TEST_P(ProcessorGroupTest, UnknownColumnRejected) {
  SiteFixture fixture;
  auto conn = fixture.connect(fixture.site().headUrl(GetParam().subprotocol));
  auto stmt = conn->createStatement();
  EXPECT_THROW(stmt->executeQuery("SELECT Bogus FROM Processor"),
               dbc::SqlError);
}

INSTANTIATE_TEST_SUITE_P(
    Drivers, ProcessorGroupTest,
    ::testing::Values(DriverCase{"snmp", false}, DriverCase{"ganglia", true},
                      DriverCase{"netlogger", false},
                      DriverCase{"scms", true}, DriverCase{"sql", true},
                      DriverCase{"mds", true}),
    [](const ::testing::TestParamInfo<DriverCase>& info) {
      return info.param.subprotocol;
    });

// Memory group across the drivers that serve it.
class MemoryGroupTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MemoryGroupTest, RamFiguresConsistent) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl(GetParam()),
                          "SELECT * FROM Memory");
  ASSERT_GT(rs->rowCount(), 0u);
  while (rs->next()) {
    const auto avail = rs->get("RAMAvailable");
    if (!avail.isNull()) {
      EXPECT_GE(avail.toInt(), 0);
      EXPECT_LE(avail.toInt(), 64 * 1024);  // sane MB range for the sim
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Drivers, MemoryGroupTest,
                         ::testing::Values("snmp", "ganglia", "netlogger",
                                           "scms", "sql", "mds"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return info.param;
                         });

// Cross-driver consistency: the same underlying host model seen through
// two different agents must agree (within sim-time skew).
TEST(CrossDriverTest, SnmpAndGangliaAgreeOnLoad) {
  SiteFixture fixture;
  auto viaSnmp = fixture.query(
      fixture.site().headUrl("snmp"),
      "SELECT Load1 FROM Processor");
  auto viaGanglia = fixture.query(
      fixture.site().headUrl("ganglia"),
      "SELECT Load1 FROM Processor WHERE HostName = 'siteA-node00'");
  viaSnmp->next();
  viaGanglia->next();
  EXPECT_NEAR(viaSnmp->get(0).asReal(), viaGanglia->get(0).asReal(), 0.2);
}

TEST(CrossDriverTest, ScmsAndSqlAgreeOnCpuCount) {
  SiteFixture fixture;
  auto a = fixture.query(fixture.site().headUrl("scms"),
                         "SELECT CPUCount FROM Processor "
                         "WHERE HostName = 'siteA-node01'");
  auto b = fixture.query(fixture.site().headUrl("sql"),
                         "SELECT CPUCount FROM Processor "
                         "WHERE HostName = 'siteA-node01'");
  a->next();
  b->next();
  EXPECT_EQ(a->get(0).asInt(), b->get(0).asInt());
}

// Aggregates run inside the driver's relational tail, so any source can
// answer GROUP BY questions natively.
TEST(CrossDriverTest, AggregatesThroughDrivers) {
  SiteFixture fixture;
  auto rs = fixture.query(
      fixture.site().headUrl("ganglia"),
      "SELECT ClusterName, COUNT(*) AS n, AVG(Load1) AS avgLoad "
      "FROM Processor GROUP BY ClusterName");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_EQ(rs->getString("ClusterName"), "siteA");
  EXPECT_EQ(rs->getInt("n"), 3);
  EXPECT_GT(rs->getReal("avgLoad"), 0.0);

  auto viaScms = fixture.query(
      fixture.site().headUrl("scms"),
      "SELECT MAX(Load1), MIN(Load1) FROM Processor");
  viaScms->next();
  EXPECT_GE(viaScms->get(0).asReal(), viaScms->get(1).asReal());
}

// Paper section 3.2.3: attributes a source cannot supply come back NULL
// rather than failing the query.
TEST(NullTranslationTest, SnmpClusterNameIsNull) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl("snmp"),
                          "SELECT ClusterName, HostName FROM Processor");
  rs->next();
  (void)rs->get("ClusterName");
  EXPECT_TRUE(rs->wasNull());
  (void)rs->get("HostName");
  EXPECT_FALSE(rs->wasNull());
}

TEST(NullTranslationTest, NetLoggerServesOnlyItsEvents) {
  SiteFixture fixture;
  auto rs = fixture.query(fixture.site().headUrl("netlogger"),
                          "SELECT * FROM Processor");
  rs->next();
  (void)rs->get("Load1");
  EXPECT_FALSE(rs->wasNull());  // cpu.load event exists
  (void)rs->get("UserPct");
  EXPECT_TRUE(rs->wasNull());  // no such event stream
}

}  // namespace
}  // namespace gridrm::drivers
