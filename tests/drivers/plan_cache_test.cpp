// PlanCache unit + property tests (E14 satellite): repeated parses hit
// the cache and return the identical immutable plan, schema reloads
// invalidate every bound plan, and a cached plan is byte-identical to a
// fresh parse for randomly generated statements.
#include "gridrm/drivers/plan_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "../sql/expr_generator.hpp"
#include "gridrm/glue/schema_manager.hpp"
#include "gridrm/sql/parser.hpp"

namespace gridrm::drivers {
namespace {

using dbc::ErrorCode;
using dbc::SqlError;

const char* kSql = "SELECT Load1 FROM Processor WHERE Load1 > 1";

/// A schema that (re)defines Processor, distinct from the builtin one.
glue::Schema processorOnlySchema() {
  glue::Schema s;
  s.addGroup(glue::GroupDef(
      "Processor", {{"HostName", util::ValueType::String, "", ""},
                    {"Load1", util::ValueType::Real, "", ""}}));
  return s;
}

/// Group "t" matching the ExprGenerator's column universe.
glue::Schema generatorSchema() {
  glue::Schema s;
  s.addGroup(glue::GroupDef(
      "t", {{"host", util::ValueType::String, "", ""},
            {"cluster", util::ValueType::String, "", ""},
            {"load1", util::ValueType::Real, "", ""},
            {"load5", util::ValueType::Real, "", ""},
            {"cpus", util::ValueType::Int, "", ""},
            {"mem", util::ValueType::Int, "", ""}}));
  return s;
}

TEST(PlanCacheTest, RepeatedParseReturnsSameBoundPlan) {
  glue::SchemaManager schemas;
  PlanCache plans;
  auto a = plans.parse(kSql, schemas);
  auto b = plans.parse(kSql, schemas);
  ASSERT_NE(a, nullptr);
  // Not just equivalent: the very same immutable plan object.
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(plans.stats().misses, 1u);
  EXPECT_EQ(plans.stats().hits, 1u);
  EXPECT_EQ(&a->group(), glue::Schema::builtin().findGroup("Processor"));
}

TEST(PlanCacheTest, RepeatedParseLexesSqlTextOnlyOnce) {
  glue::SchemaManager schemas;
  PlanCache plans;
  (void)plans.parse(kSql, schemas);
  const std::uint64_t parsesAfterFirst = sql::parseSelectCount();
  for (int i = 0; i < 10; ++i) (void)plans.parse(kSql, schemas);
  // The whole point of the cache: no further trips through the parser.
  EXPECT_EQ(sql::parseSelectCount(), parsesAfterFirst);
  EXPECT_EQ(plans.stats().hits, 10u);
}

TEST(PlanCacheTest, StatementCacheReturnsSameParseTree) {
  PlanCache plans;
  auto a = plans.statement(kSql);
  auto b = plans.statement(kSql);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->table, "Processor");
  EXPECT_EQ(plans.stats().statementMisses, 1u);
  EXPECT_EQ(plans.stats().statementHits, 1u);
}

TEST(PlanCacheTest, SchemaReloadInvalidatesBoundPlans) {
  glue::SchemaManager schemas;
  PlanCache plans;
  auto before = plans.parse(kSql, schemas);
  (void)plans.statement(kSql);

  const glue::Schema reloaded = processorOnlySchema();
  schemas.setSchema(&reloaded);

  auto after = plans.parse(kSql, schemas);
  ASSERT_NE(after, nullptr);
  // The stale plan held GroupDef pointers into the old schema; the new
  // one must be a fresh parse bound against the reloaded schema.
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(&after->group(), reloaded.findGroup("Processor"));
  EXPECT_EQ(plans.stats().invalidations, 1u);
  EXPECT_EQ(plans.stats().misses, 2u);
  // Statement-only plans carry no schema binding and survive reloads.
  EXPECT_EQ(plans.statement(kSql)->table, "Processor");
  EXPECT_EQ(plans.stats().statementHits, 1u);
}

TEST(PlanCacheTest, FederatedPlanIsCachedAndBindsThroughParse) {
  glue::SchemaManager schemas;
  PlanCache plans;
  auto a = plans.federated(kSql, schemas);
  auto b = plans.federated(kSql, schemas);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // the same immutable decomposition
  EXPECT_EQ(plans.stats().federatedMisses, 1u);
  EXPECT_EQ(plans.stats().federatedHits, 1u);
  // federated() validates through parse(): the bound cache warms too,
  // and the second call rides its hit path before the fragment lookup.
  EXPECT_EQ(plans.stats().misses, 1u);
  EXPECT_EQ(plans.stats().hits, 1u);
}

TEST(PlanCacheTest, SchemaReloadInvalidatesFederatedFragments) {
  // Regression (PR 7 satellite): fragment plans were derived from a
  // binding against the old schema; serving one across a reload would
  // dispatch a stale fragment to remote sites.
  glue::SchemaManager schemas;
  PlanCache plans;
  auto before = plans.federated(kSql, schemas);

  const glue::Schema reloaded = processorOnlySchema();
  schemas.setSchema(&reloaded);

  auto after = plans.federated(kSql, schemas);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());  // re-derived, not served stale
  EXPECT_EQ(plans.stats().invalidations, 1u);
  EXPECT_EQ(plans.stats().federatedMisses, 2u);
  EXPECT_EQ(plans.stats().federatedHits, 0u);
  // Same statement text, so the fresh derivation agrees semantically.
  EXPECT_EQ(after->fragmentSql, before->fragmentSql);
}

TEST(PlanCacheTest, FederatedErrorsMatchParseAndAreNotCached) {
  glue::SchemaManager schemas;
  PlanCache plans;
  try {
    (void)plans.federated("SELEC nonsense", schemas);
    FAIL() << "expected a syntax error";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Syntax);
  }
  try {
    (void)plans.federated("SELECT Load1 FROM NoSuchGroup", schemas);
    FAIL() << "expected NoSuchTable";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NoSuchTable);
  }
  EXPECT_EQ(plans.stats().federatedMisses, 0u);
  EXPECT_EQ(plans.size(), 0u);
}

TEST(PlanCacheTest, SchemaReloadNeverServesStalePlanForDroppedGroup) {
  glue::SchemaManager schemas;
  PlanCache plans;
  ASSERT_NE(plans.parse(kSql, schemas), nullptr);

  glue::Schema withoutProcessor;  // empty: Processor no longer exists
  schemas.setSchema(&withoutProcessor);
  try {
    (void)plans.parse(kSql, schemas);
    FAIL() << "expected NoSuchTable after the group was dropped";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NoSuchTable);
  }
  // Restoring the builtin schema (generation bump) binds afresh again.
  schemas.setSchema(nullptr);
  auto restored = plans.parse(kSql, schemas);
  EXPECT_EQ(&restored->group(),
            glue::Schema::builtin().findGroup("Processor"));
}

TEST(PlanCacheTest, CapacityEvictsLeastRecentlyUsedPlan) {
  glue::SchemaManager schemas;
  PlanCache plans(/*capacity=*/2);
  auto a = plans.parse("SELECT Load1 FROM Processor", schemas);
  (void)plans.parse("SELECT Load5 FROM Processor", schemas);
  (void)plans.parse("SELECT CPUCount FROM Processor", schemas);  // evicts a
  EXPECT_EQ(plans.stats().evictions, 1u);
  EXPECT_EQ(plans.size(), 2u);
  auto a2 = plans.parse("SELECT Load1 FROM Processor", schemas);
  EXPECT_NE(a2.get(), a.get());  // was evicted, re-parsed
  EXPECT_EQ(plans.stats().misses, 4u);
}

TEST(PlanCacheTest, ParseErrorsAreNotCached) {
  glue::SchemaManager schemas;
  PlanCache plans;
  for (int i = 0; i < 2; ++i) {
    try {
      (void)plans.parse("SELEC nonsense", schemas);
      FAIL() << "expected a syntax error";
    } catch (const SqlError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Syntax);
    }
    try {
      (void)plans.statement("SELEC nonsense");
      FAIL() << "expected a syntax error";
    } catch (const SqlError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Syntax);
    }
  }
  // Bad SQL never occupies a slot (and never turns into a false hit).
  EXPECT_EQ(plans.size(), 0u);
  EXPECT_EQ(plans.stats().hits, 0u);
  EXPECT_EQ(plans.stats().statementHits, 0u);
}

TEST(PlanCacheTest, ParseQueryFallsBackToFreshParseWithoutCache) {
  DriverContext ctx;  // no planCache, no schemaManager
  auto a = parseQuery(kSql, ctx);
  auto b = parseQuery(kSql, ctx);
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a.get(), b.get());  // uncached: fresh parse per call
  EXPECT_EQ(&a->group(), glue::Schema::builtin().findGroup("Processor"));

  glue::SchemaManager schemas;
  PlanCache plans;
  ctx.schemaManager = &schemas;
  ctx.planCache = &plans;
  auto c = parseQuery(kSql, ctx);
  auto d = parseQuery(kSql, ctx);
  EXPECT_EQ(c.get(), d.get());  // cached: shared plan
  EXPECT_EQ(plans.stats().hits, 1u);
}

// Property: for random well-formed SELECTs, the plan served from the
// cache renders byte-identically to a plan parsed fresh from the same
// text -- before and after a schema reload -- and computes the same
// needed-attribute set.
class PlanCacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanCacheProperty, CachedPlanIsByteIdenticalToFreshParse) {
  const glue::Schema tschema = generatorSchema();
  glue::SchemaManager schemas(&tschema);
  PlanCache plans;
  sql::ExprGenerator gen(GetParam() * 613 + 29);

  for (int round = 0; round < 20; ++round) {
    const std::string sqlText = gen.genSelect().toSql();
    SCOPED_TRACE("sql=" + sqlText);

    if (round == 10) {
      // Mid-run reload: every cached binding must be rebuilt, and the
      // rebuilt plans must still match fresh parses exactly.
      schemas.setSchema(&tschema);
    }

    const auto cached = plans.parse(sqlText, schemas);
    const ParsedQuery fresh = ParsedQuery::parse(sqlText, schemas.schema());
    EXPECT_EQ(cached->statement().toSql(), fresh.statement().toSql());
    EXPECT_EQ(cached->neededAttributes(), fresh.neededAttributes());
    EXPECT_EQ(&cached->group(), &fresh.group());

    // The statement cache agrees with a direct parser run, byte for
    // byte, and a second lookup serves the identical tree.
    const auto stmt = plans.statement(sqlText);
    EXPECT_EQ(stmt->toSql(), sql::parseSelect(sqlText).toSql());
    EXPECT_EQ(plans.statement(sqlText).get(), stmt.get());
    EXPECT_EQ(plans.parse(sqlText, schemas).get(), cached.get());
  }
  EXPECT_GE(plans.stats().invalidations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanCacheProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// TSan-targeted stress: concurrent bound/statement parses racing with
// schema reloads and clear(). Correctness bar: every returned plan is
// non-null, bound to *some* live schema's Processor group, and renders
// the SQL it was asked for.
TEST(PlanCacheTest, ConcurrentParsesRacingSchemaReloadsAreSafe) {
  const glue::Schema reloaded = processorOnlySchema();
  glue::SchemaManager schemas;
  PlanCache plans(/*capacity=*/8);

  std::vector<std::string> texts;
  for (int i = 0; i < 12; ++i) {
    texts.push_back("SELECT Load1 FROM Processor WHERE Load1 > " +
                    std::to_string(i));
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 300;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string& sqlText = texts[(t * 7 + i) % texts.size()];
        if (t == 0 && i % 64 == 0) {
          schemas.setSchema(i % 128 == 0 ? &reloaded : nullptr);
        }
        if (t == 1 && i % 100 == 0) plans.clear();
        if (i % 2 == 0) {
          auto plan = plans.parse(sqlText, schemas);
          ASSERT_NE(plan, nullptr);
          EXPECT_EQ(plan->group().name(), "Processor");
          EXPECT_EQ(plan->statement().table, "Processor");
        } else {
          auto stmt = plans.statement(sqlText);
          ASSERT_NE(stmt, nullptr);
          EXPECT_EQ(stmt->table, "Processor");
        }
        (void)plans.stats();
        (void)plans.size();
      }
    });
  }
  for (auto& w : workers) w.join();
  const PlanCacheStats stats = plans.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.statementHits +
                stats.statementMisses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace gridrm::drivers
