#include "gridrm/agents/sqlsrc_agent.hpp"

#include <gtest/gtest.h>

#include "gridrm/dbc/result_io.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::agents::sqlsrc {
namespace {

class SqlSourceAgentTest : public ::testing::Test {
 protected:
  SqlSourceAgentTest()
      : clock_(0),
        network_(clock_),
        cluster_("siteA", 3, clock_, 5),
        agent_(cluster_, network_, clock_) {
    clock_.advance(60 * util::kSecond);
  }

  std::unique_ptr<dbc::VectorResultSet> query(const std::string& sql) {
    const net::Payload response =
        network_.request({"c", 0}, agent_.address(), sql);
    if (util::startsWith(response, "ERR ")) {
      throw std::runtime_error(response);
    }
    return dbc::deserializeResultSet(response);
  }

  util::SimClock clock_;
  net::Network network_;
  sim::ClusterModel cluster_;
  SqlSourceAgent agent_;
};

TEST_F(SqlSourceAgentTest, ProcessorRowsPerHost) {
  auto rs = query("SELECT * FROM Processor");
  EXPECT_EQ(rs->rowCount(), 3u);
  ASSERT_TRUE(rs->next());
  EXPECT_EQ(rs->getString("HostName"), "siteA-node00");
  EXPECT_EQ(rs->getString("ClusterName"), "siteA");
  EXPECT_GT(rs->getInt("CPUCount"), 0);
  EXPECT_GE(rs->getReal("Load1"), 0.0);
}

TEST_F(SqlSourceAgentTest, WhereClausePushedThrough) {
  auto rs = query(
      "SELECT HostName FROM Processor WHERE HostName = 'siteA-node02'");
  EXPECT_EQ(rs->rowCount(), 1u);
}

TEST_F(SqlSourceAgentTest, AllGlueGroupsServed) {
  for (const char* group : {"Host", "Processor", "Memory", "OperatingSystem",
                            "FileSystem", "NetworkAdapter"}) {
    auto rs = query(std::string("SELECT * FROM ") + group);
    EXPECT_EQ(rs->rowCount(), 3u) << group;
  }
}

TEST_F(SqlSourceAgentTest, ComputeElementAggregates) {
  auto rs = query("SELECT * FROM ComputeElement");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_EQ(rs->getInt("HostCount"), 3);
  EXPECT_EQ(rs->getInt("TotalCPUs"),
            3 * cluster_.host(0).spec().cpuCount);
  EXPECT_GE(rs->getReal("AverageLoad"), 0.0);
  EXPECT_LE(rs->getInt("FreeCPUs"), rs->getInt("TotalCPUs"));
}

TEST_F(SqlSourceAgentTest, DataIsFreshPerQuery) {
  auto t1 = query("SELECT Timestamp FROM Host LIMIT 1");
  clock_.advance(30 * util::kSecond);
  auto t2 = query("SELECT Timestamp FROM Host LIMIT 1");
  t1->next();
  t2->next();
  EXPECT_GT(t2->get(0).asInt(), t1->get(0).asInt());
}

TEST_F(SqlSourceAgentTest, ErrorsReportedAsErrPayload) {
  EXPECT_THROW(query("SELECT * FROM Nope"), std::runtime_error);
  EXPECT_THROW(query("garbage"), std::runtime_error);
  EXPECT_THROW(query("SELECT Missing FROM Host"), std::runtime_error);
}

TEST_F(SqlSourceAgentTest, OrderByAndLimit) {
  auto rs = query("SELECT HostName, Load1 FROM Processor "
                  "ORDER BY Load1 DESC LIMIT 2");
  ASSERT_EQ(rs->rowCount(), 2u);
  rs->next();
  const double first = rs->getReal("Load1");
  rs->next();
  EXPECT_GE(first, rs->getReal("Load1"));
}

}  // namespace
}  // namespace gridrm::agents::sqlsrc
