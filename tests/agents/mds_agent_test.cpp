#include "gridrm/agents/mds_agent.hpp"

#include <gtest/gtest.h>

#include "gridrm/util/strings.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::agents::mds {
namespace {

class MdsAgentTest : public ::testing::Test {
 protected:
  MdsAgentTest()
      : clock_(0),
        network_(clock_),
        cluster_("siteA", 3, clock_, 7),
        agent_(cluster_, network_, clock_) {
    clock_.advance(60 * util::kSecond);
  }

  std::string search(const std::string& request) {
    return network_.request({"c", 0}, agent_.address(), request);
  }

  util::SimClock clock_;
  net::Network network_;
  sim::ClusterModel cluster_;
  MdsAgent agent_;
};

TEST_F(MdsAgentTest, BindsGrisPort) {
  EXPECT_EQ(agent_.address().port, kGrisPort);
  EXPECT_EQ(agent_.baseDn(), "Mds-Vo-name=siteA,o=grid");
}

TEST_F(MdsAgentTest, SubtreeSearchReturnsVoAndHosts) {
  auto entries = parseLdif(search("SEARCH o=grid sub"));
  ASSERT_EQ(entries.size(), 4u);  // VO entry + 3 hosts
  EXPECT_EQ(entries[0].dn, "Mds-Vo-name=siteA,o=grid");
  EXPECT_EQ(entries[1].attr("objectClass"), "GlueHost");
}

TEST_F(MdsAgentTest, ObjectClassFilter) {
  auto hosts = parseLdif(search("SEARCH o=grid sub (objectClass=GlueHost)"));
  EXPECT_EQ(hosts.size(), 3u);
  auto vos = parseLdif(search("SEARCH o=grid sub (objectClass=MdsVo)"));
  EXPECT_EQ(vos.size(), 1u);
}

TEST_F(MdsAgentTest, ScopeSemantics) {
  const std::string base = agent_.baseDn();
  EXPECT_EQ(parseLdif(search("SEARCH " + base + " base")).size(), 1u);
  EXPECT_EQ(parseLdif(search("SEARCH " + base + " one")).size(), 3u);
  EXPECT_EQ(parseLdif(search("SEARCH " + base + " sub")).size(), 4u);
}

TEST_F(MdsAgentTest, BaseSearchOnHostEntry) {
  const std::string dn =
      "GlueHostUniqueID=siteA-node01," + agent_.baseDn();
  auto entries = parseLdif(search("SEARCH " + dn + " base"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].attr("GlueHostName"), "siteA-node01");
  EXPECT_EQ(entries[0].attr("GlueClusterName"), "siteA");
}

TEST_F(MdsAgentTest, AttributeValuesTrackHostModel) {
  auto entries = parseLdif(
      search("SEARCH o=grid sub (GlueHostUniqueID=siteA-node00)"));
  ASSERT_EQ(entries.size(), 1u);
  const double load =
      util::Value::parse(entries[0].attr("GlueHostProcessorLoadAverage1Min"))
          .toReal(-1);
  EXPECT_NEAR(load, cluster_.host(0).load1(), 0.01);
  EXPECT_EQ(entries[0].attr("GlueHostArchitectureSMPSize"),
            std::to_string(cluster_.host(0).spec().cpuCount));
}

TEST_F(MdsAgentTest, UnrelatedBaseReturnsNothing) {
  EXPECT_TRUE(parseLdif(search("SEARCH o=other sub")).empty());
}

TEST_F(MdsAgentTest, BadRequestsAnswered) {
  EXPECT_NE(search("JUNK").find("ERROR"), std::string::npos);
  EXPECT_NE(search("SEARCH o=grid sub badfilter").find("ERROR"),
            std::string::npos);
}

TEST(ParseLdifTest, RoundTripBasics) {
  const std::string ldif =
      "dn: a=1,o=grid\n"
      "objectClass: X\n"
      "attr: with: colon\n"
      "\n"
      "dn: b=2,o=grid\n"
      "k: v\n"
      "\n";
  auto entries = parseLdif(ldif);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].attr("attr"), "with: colon");
  EXPECT_EQ(entries[1].dn, "b=2,o=grid");
  EXPECT_EQ(entries[1].attr("missing", "fb"), "fb");
}

}  // namespace
}  // namespace gridrm::agents::mds
