// Tests for the three line-oriented agents: NWS, NetLogger, SCMS.
#include <gtest/gtest.h>

#include "gridrm/agents/netlogger_agent.hpp"
#include "gridrm/agents/nws_agent.hpp"
#include "gridrm/agents/scms_agent.hpp"
#include "gridrm/util/strings.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::agents {
namespace {

using util::kSecond;

class TextAgentsTest : public ::testing::Test {
 protected:
  TextAgentsTest()
      : clock_(0),
        network_(clock_),
        cluster_("siteA", 2, clock_, 3),
        nws_(cluster_.host(0), network_, clock_),
        netlogger_(cluster_.host(0), network_, clock_),
        scms_(cluster_, network_, clock_) {
    clock_.advance(120 * kSecond);
  }

  std::string ask(const net::Address& to, const std::string& request) {
    return network_.request({"c", 0}, to, request);
  }

  util::SimClock clock_;
  net::Network network_;
  sim::ClusterModel cluster_;
  nws::NwsAgent nws_;
  netlogger::NetLoggerAgent netlogger_;
  scms::ScmsAgent scms_;
};

// ---------------------------------------------------------------- NWS

TEST_F(TextAgentsTest, NwsListsResources) {
  const std::string out = ask(nws_.address(), "LIST");
  EXPECT_NE(out.find("latency"), std::string::npos);
  EXPECT_NE(out.find("bandwidth"), std::string::npos);
  EXPECT_NE(out.find("availableCpu"), std::string::npos);
}

TEST_F(TextAgentsTest, NwsForecastShape) {
  const std::string out = ask(nws_.address(), "FORECAST latency");
  EXPECT_NE(out.find("RESOURCE latency"), std::string::npos);
  EXPECT_NE(out.find("MEASUREMENT "), std::string::npos);
  EXPECT_NE(out.find("FORECAST "), std::string::npos);
  EXPECT_NE(out.find("MSE "), std::string::npos);
  EXPECT_NE(out.find("METHOD "), std::string::npos);
}

TEST_F(TextAgentsTest, NwsForecastIsReasonable) {
  // With 2 minutes of samples, the forecast should be in the ballpark
  // of the measurement (mean-reverting series, small noise).
  const std::string out = ask(nws_.address(), "FORECAST availableCpu");
  double measurement = -1;
  double forecast = -1;
  for (const auto& line : util::splitNonEmpty(out, '\n')) {
    auto words = util::splitNonEmpty(line, ' ');
    if (words.size() < 2) continue;
    if (words[0] == "MEASUREMENT") {
      measurement = util::Value::parse(words[1]).toReal();
    }
    if (words[0] == "FORECAST") forecast = util::Value::parse(words[1]).toReal();
  }
  ASSERT_GE(measurement, 0.0);
  EXPECT_LE(measurement, 1.0);
  EXPECT_NEAR(forecast, measurement, 0.5);
}

TEST_F(TextAgentsTest, NwsSeriesReturnsRequestedCount) {
  const std::string out = ask(nws_.address(), "SERIES latency 5");
  EXPECT_EQ(util::splitNonEmpty(out, '\n').size(), 5u);
}

TEST_F(TextAgentsTest, NwsSeriesGrowsWithTime) {
  const auto n1 =
      util::splitNonEmpty(ask(nws_.address(), "SERIES latency 999"), '\n')
          .size();
  clock_.advance(100 * kSecond);
  const auto n2 =
      util::splitNonEmpty(ask(nws_.address(), "SERIES latency 999"), '\n')
          .size();
  EXPECT_GT(n2, n1);
}

TEST_F(TextAgentsTest, NwsErrors) {
  EXPECT_NE(ask(nws_.address(), "FORECAST nope").find("ERROR"),
            std::string::npos);
  EXPECT_NE(ask(nws_.address(), "JUNK").find("ERROR"), std::string::npos);
  EXPECT_NE(ask(nws_.address(), "").find("ERROR"), std::string::npos);
}

// ---------------------------------------------------------- NetLogger

TEST_F(TextAgentsTest, NetLoggerAdvertisesEvents) {
  const std::string out = ask(netlogger_.address(), "EVENTS");
  for (const char* event : netlogger::kEvents) {
    EXPECT_NE(out.find(event), std::string::npos) << event;
  }
}

TEST_F(TextAgentsTest, NetLoggerTailReturnsUlmRecords) {
  const std::string out = ask(netlogger_.address(), "TAIL cpu.load 3");
  const auto lines = util::splitNonEmpty(out, '\n');
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_NE(line.find("DATE="), std::string::npos);
    EXPECT_NE(line.find("HOST=siteA-node00"), std::string::npos);
    EXPECT_NE(line.find("NL.EVNT=cpu.load"), std::string::npos);
    double value = -1;
    EXPECT_TRUE(netlogger::parseUlmValue(line, value));
    EXPECT_GE(value, 0.0);
  }
}

TEST_F(TextAgentsTest, NetLoggerTimestampsAscend) {
  const auto lines = util::splitNonEmpty(
      ask(netlogger_.address(), "TAIL mem.free 5"), '\n');
  util::TimePoint last = 0;
  for (const auto& line : lines) {
    util::TimePoint ts = 0;
    ASSERT_TRUE(netlogger::parseUlmDate(line, ts));
    EXPECT_GT(ts, last);
    last = ts;
  }
}

TEST_F(TextAgentsTest, NetLoggerUlmParsers) {
  const std::string line =
      netlogger::formatUlm(12345, "h", "prog", "ev", 0.75);
  double v = 0;
  util::TimePoint ts = 0;
  EXPECT_TRUE(netlogger::parseUlmValue(line, v));
  EXPECT_DOUBLE_EQ(v, 0.75);
  EXPECT_TRUE(netlogger::parseUlmDate(line, ts));
  EXPECT_EQ(ts, 12345);
  EXPECT_FALSE(netlogger::parseUlmValue("no val here", v));
  EXPECT_FALSE(netlogger::parseUlmDate("DATE=abc", ts));
}

TEST_F(TextAgentsTest, NetLoggerErrors) {
  EXPECT_NE(ask(netlogger_.address(), "TAIL nope 1").find("ERROR"),
            std::string::npos);
  EXPECT_NE(ask(netlogger_.address(), "TAIL cpu.load").find("ERROR"),
            std::string::npos);
}

// --------------------------------------------------------------- SCMS

TEST_F(TextAgentsTest, ScmsListsNodes) {
  const std::string out = ask(scms_.address(), "NODES");
  const auto lines = util::splitNonEmpty(out, '\n');
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "siteA-node00");
  EXPECT_EQ(lines[1], "siteA-node01");
}

TEST_F(TextAgentsTest, ScmsStatHasExpectedKeys) {
  const std::string out = ask(scms_.address(), "STAT siteA-node01");
  for (const char* key :
       {"node:", "cluster:", "ncpus:", "load1:", "cpu_user:", "mem_free_mb:",
        "disk_free_mb:", "os:", "uptime:"}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  EXPECT_NE(out.find("node: siteA-node01"), std::string::npos);
  EXPECT_NE(out.find("cluster: siteA"), std::string::npos);
}

TEST_F(TextAgentsTest, ScmsStatValuesTrackHostModel) {
  const std::string out = ask(scms_.address(), "STAT siteA-node00");
  for (const auto& line : util::splitNonEmpty(out, '\n')) {
    if (util::startsWith(line, "ncpus:")) {
      EXPECT_NE(line.find(std::to_string(cluster_.host(0).spec().cpuCount)),
                std::string::npos);
    }
  }
}

TEST_F(TextAgentsTest, ScmsErrors) {
  EXPECT_NE(ask(scms_.address(), "STAT nope").find("ERROR"),
            std::string::npos);
  EXPECT_NE(ask(scms_.address(), "WHAT").find("ERROR"), std::string::npos);
}

}  // namespace
}  // namespace gridrm::agents
