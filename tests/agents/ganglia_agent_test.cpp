#include "gridrm/agents/ganglia_agent.hpp"

#include <gtest/gtest.h>

#include "gridrm/util/value.hpp"
#include "gridrm/util/xml.hpp"

namespace gridrm::agents::ganglia {
namespace {

class GangliaAgentTest : public ::testing::Test {
 protected:
  GangliaAgentTest()
      : clock_(0),
        network_(clock_),
        cluster_("siteA", 3, clock_, 7),
        agent_(cluster_, network_, clock_) {
    clock_.advance(120 * util::kSecond);
  }

  util::SimClock clock_;
  net::Network network_;
  sim::ClusterModel cluster_;
  GangliaAgent agent_;
};

TEST_F(GangliaAgentTest, BindsHeadNodePort8649) {
  EXPECT_EQ(agent_.address().host, "siteA-node00");
  EXPECT_EQ(agent_.address().port, kGmondPort);
}

TEST_F(GangliaAgentTest, AnyRequestReturnsFullClusterDump) {
  const net::Payload xml =
      network_.request({"c", 0}, agent_.address(), "");
  auto root = util::parseXml(xml);
  EXPECT_EQ(root->name, "GANGLIA_XML");
  const util::XmlElement* cluster = root->child("CLUSTER");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->attr("NAME"), "siteA");
  EXPECT_EQ(cluster->childrenNamed("HOST").size(), 3u);
}

TEST_F(GangliaAgentTest, EveryHostCarriesFullMetricSet) {
  auto root = util::parseXml(agent_.renderXml());
  for (const util::XmlElement* host :
       root->child("CLUSTER")->childrenNamed("HOST")) {
    std::size_t metrics = host->childrenNamed("METRIC").size();
    EXPECT_EQ(metrics, std::size(kMetricNames)) << host->attr("NAME");
  }
}

TEST_F(GangliaAgentTest, MetricValuesTrackHostModel) {
  auto root = util::parseXml(agent_.renderXml());
  const util::XmlElement* host0 =
      root->child("CLUSTER")->childrenNamed("HOST")[0];
  EXPECT_EQ(host0->attr("NAME"), "siteA-node00");
  double loadOne = -1;
  std::string cpuNum;
  for (const util::XmlElement* m : host0->childrenNamed("METRIC")) {
    if (m->attr("NAME") == "load_one") {
      loadOne = util::Value::parse(m->attr("VAL")).toReal(-1);
    }
    if (m->attr("NAME") == "cpu_num") cpuNum = m->attr("VAL");
  }
  EXPECT_NEAR(loadOne, cluster_.host(0).load1(), 0.01);
  EXPECT_EQ(cpuNum, std::to_string(cluster_.host(0).spec().cpuCount));
}

TEST_F(GangliaAgentTest, DumpGrowsWithClusterSize) {
  util::SimClock clock2;
  net::Network net2(clock2);
  sim::ClusterModel big("big", 32, clock2, 9);
  GangliaAgent bigAgent(big, net2, clock2);
  EXPECT_GT(bigAgent.renderXml().size(), agent_.renderXml().size() * 5);
}

TEST_F(GangliaAgentTest, LocaltimeAdvancesWithClock) {
  auto before = util::parseXml(agent_.renderXml());
  clock_.advance(50 * util::kSecond);
  auto after = util::parseXml(agent_.renderXml());
  const auto t0 =
      util::Value::parse(before->child("CLUSTER")->attr("LOCALTIME")).toInt();
  const auto t1 =
      util::Value::parse(after->child("CLUSTER")->attr("LOCALTIME")).toInt();
  EXPECT_EQ(t1 - t0, 50);
}

}  // namespace
}  // namespace gridrm::agents::ganglia
