#include "gridrm/agents/snmp_codec.hpp"

#include <gtest/gtest.h>

namespace gridrm::agents::snmp {
namespace {

using util::Value;

TEST(OidTest, ParseAndPrint) {
  Oid oid = Oid::parse("1.3.6.1.2.1.1.5.0");
  EXPECT_EQ(oid.size(), 9u);
  EXPECT_EQ(oid.toString(), "1.3.6.1.2.1.1.5.0");
  EXPECT_TRUE(Oid::parse("").empty());
  EXPECT_TRUE(Oid::parse("1.x.3").empty());  // garbage rejected
}

TEST(OidTest, Ordering) {
  EXPECT_LT(Oid::parse("1.3.6"), Oid::parse("1.3.7"));
  EXPECT_LT(Oid::parse("1.3"), Oid::parse("1.3.0"));  // prefix sorts first
  EXPECT_EQ(Oid::parse("1.3"), Oid::parse("1.3"));
}

TEST(OidTest, PrefixAndChild) {
  Oid base = Oid::parse("1.3.6.1");
  EXPECT_TRUE(base.isPrefixOf(Oid::parse("1.3.6.1.2")));
  EXPECT_TRUE(base.isPrefixOf(base));
  EXPECT_FALSE(base.isPrefixOf(Oid::parse("1.3.6")));
  EXPECT_FALSE(base.isPrefixOf(Oid::parse("1.3.7.1.2")));
  EXPECT_EQ(base.child(9).toString(), "1.3.6.1.9");
}

Pdu roundTrip(const Pdu& pdu) { return decodePdu(encodePdu(pdu)); }

TEST(SnmpCodecTest, GetRoundTrip) {
  Pdu pdu;
  pdu.type = PduType::Get;
  pdu.community = "public";
  pdu.requestId = 1234;
  pdu.varbinds.push_back({Oid::parse("1.3.6.1.2.1.1.5.0"), Value::null()});
  Pdu out = roundTrip(pdu);
  EXPECT_EQ(out.type, PduType::Get);
  EXPECT_EQ(out.community, "public");
  EXPECT_EQ(out.requestId, 1234u);
  ASSERT_EQ(out.varbinds.size(), 1u);
  EXPECT_EQ(out.varbinds[0].oid.toString(), "1.3.6.1.2.1.1.5.0");
  EXPECT_TRUE(out.varbinds[0].value.isNull());
}

TEST(SnmpCodecTest, AllValueTypesRoundTrip) {
  Pdu pdu;
  pdu.type = PduType::Response;
  pdu.varbinds = {
      {Oid::parse("1.1"), Value::null()},
      {Oid::parse("1.2"), Value(true)},
      {Oid::parse("1.3"), Value(std::int64_t{-123456789})},
      {Oid::parse("1.4"), Value(3.14159)},
      {Oid::parse("1.5"), Value("a string with \0 inside ish")},
  };
  Pdu out = roundTrip(pdu);
  ASSERT_EQ(out.varbinds.size(), 5u);
  EXPECT_TRUE(out.varbinds[0].value.isNull());
  EXPECT_TRUE(out.varbinds[1].value.asBool());
  EXPECT_EQ(out.varbinds[2].value.asInt(), -123456789);
  EXPECT_DOUBLE_EQ(out.varbinds[3].value.asReal(), 3.14159);
  EXPECT_EQ(out.varbinds[4].value.type(), util::ValueType::String);
}

TEST(SnmpCodecTest, ExtremeIntegersRoundTrip) {
  Pdu pdu;
  pdu.type = PduType::Response;
  pdu.varbinds = {
      {Oid::parse("1.1"), Value(std::int64_t{0})},
      {Oid::parse("1.2"), Value(std::int64_t{-1})},
      {Oid::parse("1.3"), Value(std::int64_t{9223372036854775807LL})},
      {Oid::parse("1.4"), Value(std::int64_t{-9223372036854775807LL - 1})},
  };
  Pdu out = roundTrip(pdu);
  EXPECT_EQ(out.varbinds[0].value.asInt(), 0);
  EXPECT_EQ(out.varbinds[1].value.asInt(), -1);
  EXPECT_EQ(out.varbinds[2].value.asInt(), 9223372036854775807LL);
  EXPECT_EQ(out.varbinds[3].value.asInt(), -9223372036854775807LL - 1);
}

TEST(SnmpCodecTest, BulkFieldsRoundTrip) {
  Pdu pdu;
  pdu.type = PduType::GetBulk;
  pdu.maxRepetitions = 64;
  pdu.errorStatus = SnmpError::NoSuchName;
  Pdu out = roundTrip(pdu);
  EXPECT_EQ(out.type, PduType::GetBulk);
  EXPECT_EQ(out.maxRepetitions, 64u);
  EXPECT_EQ(out.errorStatus, SnmpError::NoSuchName);
}

TEST(SnmpCodecTest, TrapRoundTrip) {
  Pdu pdu;
  pdu.type = PduType::Trap;
  pdu.varbinds.push_back({Oid::parse("1.3.6.1.6.3.1.1.4.1.0"),
                          Value("1.3.6.1.4.1.55555.1.1")});
  Pdu out = roundTrip(pdu);
  EXPECT_EQ(out.type, PduType::Trap);
}

TEST(SnmpCodecTest, MalformedInputsThrow) {
  EXPECT_THROW(decodePdu(""), std::runtime_error);
  EXPECT_THROW(decodePdu("\xff"), std::runtime_error);
  // Truncated valid prefix.
  Pdu pdu;
  pdu.type = PduType::Get;
  pdu.varbinds.push_back({Oid::parse("1.2.3"), Value("hello")});
  std::string bytes = encodePdu(pdu);
  EXPECT_THROW(decodePdu(bytes.substr(0, bytes.size() - 3)),
               std::runtime_error);
  // Trailing garbage.
  EXPECT_THROW(decodePdu(bytes + "xx"), std::runtime_error);
}

TEST(SnmpCodecTest, EmptyVarbindListOk) {
  Pdu pdu;
  pdu.type = PduType::Get;
  Pdu out = roundTrip(pdu);
  EXPECT_TRUE(out.varbinds.empty());
}

}  // namespace
}  // namespace gridrm::agents::snmp
