#include "gridrm/agents/snmp_agent.hpp"

#include <gtest/gtest.h>

namespace gridrm::agents::snmp {
namespace {

using util::Value;

class SnmpAgentTest : public ::testing::Test {
 protected:
  SnmpAgentTest()
      : clock_(0),
        network_(clock_),
        host_(makeSpec(), clock_, 42),
        agent_(host_, network_, clock_) {
    clock_.advance(60 * util::kSecond);
  }

  static sim::HostSpec makeSpec() {
    sim::HostSpec spec;
    spec.name = "node00";
    spec.cpuCount = 2;
    return spec;
  }

  Pdu ask(Pdu request) {
    const net::Payload response = network_.request(
        {"tester", 0}, agent_.address(), encodePdu(request));
    return decodePdu(response);
  }

  Pdu get(const char* oid, const std::string& community = "public") {
    Pdu pdu;
    pdu.type = PduType::Get;
    pdu.community = community;
    pdu.requestId = 7;
    pdu.varbinds.push_back({Oid::parse(oid), Value::null()});
    return ask(pdu);
  }

  util::SimClock clock_;
  net::Network network_;
  sim::HostModel host_;
  SnmpAgent agent_;
};

TEST_F(SnmpAgentTest, GetSysName) {
  Pdu response = get(oids::kSysName);
  EXPECT_EQ(response.type, PduType::Response);
  EXPECT_EQ(response.errorStatus, SnmpError::NoError);
  ASSERT_EQ(response.varbinds.size(), 1u);
  EXPECT_EQ(response.varbinds[0].value.asString(), "node00");
  EXPECT_EQ(response.requestId, 7u);
}

TEST_F(SnmpAgentTest, GetLoadMatchesHostModel) {
  Pdu response = get(oids::kLaLoad1);
  const double reported = response.varbinds[0].value.asReal();
  EXPECT_NEAR(reported, host_.load1(), 1e-9);
}

TEST_F(SnmpAgentTest, GetUnknownOidReturnsNoSuchName) {
  Pdu response = get("1.2.3.4.5");
  EXPECT_EQ(response.errorStatus, SnmpError::NoSuchName);
  EXPECT_TRUE(response.varbinds[0].value.isNull());
}

TEST_F(SnmpAgentTest, WrongCommunityRejected) {
  Pdu response = get(oids::kSysName, "secret");
  EXPECT_EQ(response.errorStatus, SnmpError::AuthorizationError);
  EXPECT_TRUE(response.varbinds.empty());
}

TEST_F(SnmpAgentTest, MultiVarbindGet) {
  Pdu pdu;
  pdu.type = PduType::Get;
  pdu.varbinds.push_back({Oid::parse(oids::kLaLoad1), {}});
  pdu.varbinds.push_back({Oid::parse(oids::kMemAvailReal), {}});
  pdu.varbinds.push_back({Oid::parse(oids::kSysUpTime), {}});
  Pdu response = ask(pdu);
  ASSERT_EQ(response.varbinds.size(), 3u);
  EXPECT_GE(response.varbinds[1].value.asInt(), 0);
  EXPECT_EQ(response.varbinds[2].value.asInt(), host_.uptimeSeconds() * 100);
}

TEST_F(SnmpAgentTest, GetNextWalksInOrder) {
  Pdu pdu;
  pdu.type = PduType::GetNext;
  pdu.varbinds.push_back({Oid::parse("1.3.6.1.2.1.1.1.0"), {}});  // sysDescr
  Pdu response = ask(pdu);
  EXPECT_EQ(response.errorStatus, SnmpError::NoError);
  // Next in lexicographic OID order is sysUpTime.
  EXPECT_EQ(response.varbinds[0].oid.toString(), oids::kSysUpTime);
}

TEST_F(SnmpAgentTest, GetNextPastEndIsNoSuchName) {
  Pdu pdu;
  pdu.type = PduType::GetNext;
  pdu.varbinds.push_back({Oid::parse("9.9.9"), {}});
  Pdu response = ask(pdu);
  EXPECT_EQ(response.errorStatus, SnmpError::NoSuchName);
}

TEST_F(SnmpAgentTest, GetBulkCountsProcessorRows) {
  Pdu pdu;
  pdu.type = PduType::GetBulk;
  pdu.maxRepetitions = 32;
  pdu.varbinds.push_back({Oid::parse(oids::kHrProcessorLoadPrefix), {}});
  Pdu response = ask(pdu);
  const Oid prefix = Oid::parse(oids::kHrProcessorLoadPrefix);
  int cpuRows = 0;
  for (const auto& vb : response.varbinds) {
    if (prefix.isPrefixOf(vb.oid)) ++cpuRows;
  }
  EXPECT_EQ(cpuRows, 2);  // spec.cpuCount
}

TEST_F(SnmpAgentTest, MalformedRequestAnswersGenErr) {
  const net::Payload response =
      network_.request({"t", 0}, agent_.address(), "not a pdu");
  Pdu decoded = decodePdu(response);
  EXPECT_EQ(decoded.errorStatus, SnmpError::GenErr);
}

class TrapSink final : public net::RequestHandler {
 public:
  net::Payload handleRequest(const net::Address&, const net::Payload&) override {
    return "";
  }
  void handleDatagram(const net::Address&, const net::Payload& body) override {
    traps.push_back(decodePdu(body));
  }
  std::vector<Pdu> traps;
};

TEST_F(SnmpAgentTest, TrapFiredOnThresholdEdgeOnly) {
  TrapSink sink;
  network_.bind({"gw", kTrapPort}, &sink);
  agent_.setTrapSink({"gw", kTrapPort});
  agent_.setTrapThresholds(TrapThresholds{-1.0, -1});  // load always "high"

  agent_.pollTraps();
  ASSERT_EQ(sink.traps.size(), 1u);  // edge into high state
  EXPECT_EQ(sink.traps[0].type, PduType::Trap);
  agent_.pollTraps();
  EXPECT_EQ(sink.traps.size(), 1u);  // still high: no re-fire

  // Recover, then cross again: a second trap.
  agent_.setTrapThresholds(TrapThresholds{1e9, -1});
  agent_.pollTraps();
  agent_.setTrapThresholds(TrapThresholds{-1.0, -1});
  agent_.pollTraps();
  EXPECT_EQ(sink.traps.size(), 2u);
}

TEST_F(SnmpAgentTest, NoTrapWithoutSink) {
  agent_.setTrapThresholds(TrapThresholds{-1.0, -1});
  agent_.pollTraps();  // must not crash
}

}  // namespace
}  // namespace gridrm::agents::snmp
