#include "gridrm/dbc/result_set.hpp"

#include <gtest/gtest.h>

namespace gridrm::dbc {
namespace {

std::unique_ptr<VectorResultSet> sample() {
  return ResultSetBuilder()
      .addColumn("HostName", ValueType::String, "", "Processor")
      .addColumn("Load1", ValueType::Real, "", "Processor")
      .addColumn("CPUCount", ValueType::Int, "", "Processor")
      .addRow({Value("n0"), Value(0.5), Value(2)})
      .addRow({Value("n1"), Value::null(), Value(4)})
      .build();
}

TEST(ResultSetTest, CursorStartsBeforeFirstRow) {
  auto rs = sample();
  EXPECT_THROW(rs->get(0), SqlError);  // not on a row yet (JDBC semantics)
  EXPECT_TRUE(rs->next());
  EXPECT_EQ(rs->get(0).asString(), "n0");
}

TEST(ResultSetTest, IterationAndExhaustion) {
  auto rs = sample();
  int rows = 0;
  while (rs->next()) ++rows;
  EXPECT_EQ(rows, 2);
  EXPECT_FALSE(rs->next());
  EXPECT_THROW(rs->get(0), SqlError);
}

TEST(ResultSetTest, GetByNameCaseInsensitive) {
  auto rs = sample();
  rs->next();
  EXPECT_EQ(rs->getString("hostname"), "n0");
  EXPECT_DOUBLE_EQ(rs->getReal("LOAD1"), 0.5);
  EXPECT_EQ(rs->getInt("CPUCount"), 2);
}

TEST(ResultSetTest, UnknownColumnThrows) {
  auto rs = sample();
  rs->next();
  EXPECT_THROW(rs->get("nope"), SqlError);
  try {
    rs->get("nope");
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NoSuchColumn);
  }
}

TEST(ResultSetTest, WasNullTracksLastGet) {
  auto rs = sample();
  rs->next();
  rs->next();  // second row has NULL Load1
  (void)rs->get("Load1");
  EXPECT_TRUE(rs->wasNull());
  (void)rs->get("HostName");
  EXPECT_FALSE(rs->wasNull());
}

TEST(ResultSetTest, ColumnIndexOutOfRange) {
  auto rs = sample();
  rs->next();
  EXPECT_THROW(rs->get(99), SqlError);
}

TEST(ResultSetTest, RewindResetsCursor) {
  auto rs = sample();
  while (rs->next()) {
  }
  rs->rewind();
  EXPECT_TRUE(rs->next());
  EXPECT_EQ(rs->get(0).asString(), "n0");
}

TEST(ResultSetTest, MetaData) {
  auto rs = sample();
  const ResultSetMetaData& meta = rs->metaData();
  EXPECT_EQ(meta.columnCount(), 3u);
  EXPECT_EQ(meta.column(1).name, "Load1");
  EXPECT_EQ(meta.column(1).type, ValueType::Real);
  EXPECT_EQ(meta.column(0).table, "Processor");
  EXPECT_EQ(meta.columnIndex("cpucount"), 2u);
  EXPECT_FALSE(meta.columnIndex("zz").has_value());
  EXPECT_THROW(meta.column(3), SqlError);
}

TEST(ResultSetTest, MaterializeCopiesRemainingRows) {
  auto rs = sample();
  rs->next();  // consume one row
  auto copy = VectorResultSet::materialize(*rs);
  EXPECT_EQ(copy->rowCount(), 1u);  // only the unconsumed remainder
  copy->next();
  EXPECT_EQ(copy->get(0).asString(), "n1");
}

TEST(ResultSetTest, BuilderRowWidthMismatchThrows) {
  ResultSetBuilder b;
  b.addColumn("a", ValueType::Int);
  EXPECT_THROW(b.addRow({Value(1), Value(2)}), SqlError);
}

// Paper section 3.2.1: the base classes throw SQLExceptions so drivers
// can be developed incrementally.
TEST(ResultSetTest, BaseResultSetThrowsNotImplemented) {
  BaseResultSet base;
  try {
    base.next();
    FAIL() << "expected SqlError";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NotImplemented);
  }
  EXPECT_THROW(base.get(0), SqlError);
  EXPECT_THROW(base.metaData(), SqlError);
}

// A partially implemented subclass works where its overrides are used
// and throws exactly like a failing full driver elsewhere.
TEST(ResultSetTest, IncrementalDriverDevelopmentModel) {
  class PartialResultSet final : public BaseResultSet {
   public:
    bool next() override { return cursor_++ < 1; }

   private:
    int cursor_ = 0;
  };
  PartialResultSet rs;
  EXPECT_TRUE(rs.next());
  EXPECT_FALSE(rs.next());
  EXPECT_THROW(rs.get(0), SqlError);  // not overridden yet
}

TEST(ResultSetTest, EmptyResultSet) {
  auto rs = ResultSetBuilder().addColumn("a", ValueType::Int).build();
  EXPECT_EQ(rs->rowCount(), 0u);
  EXPECT_FALSE(rs->next());
}

}  // namespace
}  // namespace gridrm::dbc
