#include "gridrm/dbc/result_io.hpp"

#include <gtest/gtest.h>

namespace gridrm::dbc {
namespace {

std::unique_ptr<VectorResultSet> sample() {
  return ResultSetBuilder()
      .addColumn("HostName", ValueType::String, "", "Host")
      .addColumn("Load1", ValueType::Real, "", "Host")
      .addColumn("CPUCount", ValueType::Int, "", "Host")
      .addColumn("Up", ValueType::Bool, "", "Host")
      .addColumn("Note", ValueType::String, "unit|weird", "Host")
      .addRow({Value("n0"), Value(0.5), Value(2), Value(true), Value("plain")})
      .addRow({Value("n1"), Value::null(), Value(4), Value(false),
               Value("pipe| and\nnewline and \\slash")})
      .build();
}

TEST(ResultIoTest, RoundTripPreservesEverything) {
  auto original = sample();
  const std::string wire = serializeResultSet(*original);
  auto restored = deserializeResultSet(wire);

  ASSERT_EQ(restored->rowCount(), 2u);
  const auto& meta = restored->metaData();
  ASSERT_EQ(meta.columnCount(), 5u);
  EXPECT_EQ(meta.column(0).name, "HostName");
  EXPECT_EQ(meta.column(1).type, ValueType::Real);
  EXPECT_EQ(meta.column(4).unit, "unit|weird");
  EXPECT_EQ(meta.column(0).table, "Host");

  ASSERT_TRUE(restored->next());
  EXPECT_EQ(restored->get(0).asString(), "n0");
  EXPECT_DOUBLE_EQ(restored->get(1).asReal(), 0.5);
  EXPECT_EQ(restored->get(2).asInt(), 2);
  EXPECT_TRUE(restored->get(3).asBool());

  ASSERT_TRUE(restored->next());
  EXPECT_TRUE(restored->get(1).isNull());
  EXPECT_FALSE(restored->get(3).asBool());
  EXPECT_EQ(restored->get(4).asString(), "pipe| and\nnewline and \\slash");
}

TEST(ResultIoTest, EmptyResultSetRoundTrips) {
  auto empty = ResultSetBuilder().addColumn("a", ValueType::Int).build();
  auto restored = deserializeResultSet(serializeResultSet(*empty));
  EXPECT_EQ(restored->rowCount(), 0u);
  EXPECT_EQ(restored->metaData().columnCount(), 1u);
}

TEST(ResultIoTest, SerializeConsumesCursor) {
  auto rs = sample();
  rs->next();  // skip first row
  auto restored = deserializeResultSet(serializeResultSet(*rs));
  EXPECT_EQ(restored->rowCount(), 1u);
}

TEST(ResultIoTest, MalformedInputsThrow) {
  EXPECT_THROW(deserializeResultSet(""), SqlError);
  EXPECT_THROW(deserializeResultSet("GARBAGE\n"), SqlError);
  EXPECT_THROW(deserializeResultSet("RS1\nx\n"), SqlError);
  EXPECT_THROW(deserializeResultSet("RS1\n2\na|INT||\n"), SqlError);
  // Row width mismatch.
  EXPECT_THROW(deserializeResultSet("RS1\n2\na|INT||\nb|INT||\n1\nI1\n"),
               SqlError);
  // Bad cell tag.
  EXPECT_THROW(deserializeResultSet("RS1\n1\na|INT||\n1\nQ9\n"), SqlError);
  // Truncated rows.
  EXPECT_THROW(deserializeResultSet("RS1\n1\na|INT||\n3\nI1\n"), SqlError);
}

TEST(ResultIoTest, ExtremeValues) {
  auto rs = ResultSetBuilder()
                .addColumn("i", ValueType::Int)
                .addColumn("r", ValueType::Real)
                .addRow({Value(std::int64_t{-9223372036854775807LL}),
                         Value(1e300)})
                .addRow({Value(std::int64_t{9223372036854775807LL}),
                         Value(-2.5e-300)})
                .build();
  auto restored = deserializeResultSet(serializeResultSet(*rs));
  restored->next();
  EXPECT_EQ(restored->get(0).asInt(), -9223372036854775807LL);
  restored->next();
  EXPECT_EQ(restored->get(0).asInt(), 9223372036854775807LL);
}

}  // namespace
}  // namespace gridrm::dbc
