#include "gridrm/dbc/driver_registry.hpp"

#include <gtest/gtest.h>

namespace gridrm::dbc {
namespace {

/// Minimal stub driver claiming one subprotocol.
class StubDriver final : public Driver {
 public:
  explicit StubDriver(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  bool acceptsUrl(const util::Url& url) const override {
    ++probes_;
    return url.subprotocol() == name_;
  }
  std::unique_ptr<Connection> connect(const util::Url&,
                                      const util::Config&) override {
    throw SqlError(ErrorCode::NotImplemented, "stub");
  }
  mutable int probes_ = 0;

 private:
  std::string name_;
};

util::Url url(const std::string& text) { return *util::Url::parse(text); }

TEST(DriverRegistryTest, RegisterAndFind) {
  DriverRegistry reg;
  reg.registerDriver(std::make_shared<StubDriver>("snmp"));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_NE(reg.find("snmp"), nullptr);
  EXPECT_EQ(reg.find("nws"), nullptr);
}

TEST(DriverRegistryTest, ReregisterReplacesInPlace) {
  DriverRegistry reg;
  reg.registerDriver(std::make_shared<StubDriver>("a"));
  reg.registerDriver(std::make_shared<StubDriver>("b"));
  auto replacement = std::make_shared<StubDriver>("a");
  reg.registerDriver(replacement);
  // Still two drivers, and 'a' keeps its original position.
  ASSERT_EQ(reg.size(), 2u);
  auto drivers = reg.drivers();
  EXPECT_EQ(drivers[0].get(), replacement.get());
  EXPECT_EQ(drivers[1]->name(), "b");
}

TEST(DriverRegistryTest, Unregister) {
  DriverRegistry reg;
  reg.registerDriver(std::make_shared<StubDriver>("a"));
  EXPECT_TRUE(reg.unregisterDriver("a"));
  EXPECT_FALSE(reg.unregisterDriver("a"));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(DriverRegistryTest, NullRegistrationIgnored) {
  DriverRegistry reg;
  reg.registerDriver(nullptr);
  EXPECT_EQ(reg.size(), 0u);
}

// Table 2 of the paper: the first driver that returns true to
// acceptsURL() is the one used.
TEST(DriverRegistryTest, LocateReturnsFirstAccepting) {
  DriverRegistry reg;
  auto a = std::make_shared<StubDriver>("a");
  auto b = std::make_shared<StubDriver>("b");
  auto b2 = std::make_shared<StubDriver>("b_again");
  reg.registerDriver(a);
  reg.registerDriver(b);
  reg.registerDriver(b2);

  std::size_t scanned = 0;
  auto found = reg.locate(url("jdbc:b://host/x"), &scanned);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name(), "b");
  EXPECT_EQ(scanned, 2u);  // stopped at the first acceptor
  EXPECT_EQ(b2->probes_, 0);
}

TEST(DriverRegistryTest, LocateNoneAccepts) {
  DriverRegistry reg;
  reg.registerDriver(std::make_shared<StubDriver>("a"));
  reg.registerDriver(std::make_shared<StubDriver>("b"));
  std::size_t scanned = 0;
  EXPECT_EQ(reg.locate(url("jdbc:zzz://host/x"), &scanned), nullptr);
  EXPECT_EQ(scanned, 2u);  // scanned everything
}

TEST(DriverRegistryTest, LocateEmptyRegistry) {
  DriverRegistry reg;
  std::size_t scanned = 99;
  EXPECT_EQ(reg.locate(url("jdbc:a://h/x"), &scanned), nullptr);
  EXPECT_EQ(scanned, 0u);
}

}  // namespace
}  // namespace gridrm::dbc
