#include "gridrm/net/network.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "gridrm/sim/event_loop.hpp"

namespace gridrm::net {
namespace {

class Echo final : public RequestHandler {
 public:
  Payload handleRequest(const Address& from, const Payload& request) override {
    ++requests;
    lastFrom = from;
    return "echo:" + request;
  }
  void handleDatagram(const Address&, const Payload& body) override {
    datagrams.push_back(body);
  }
  int requests = 0;
  Address lastFrom;
  std::vector<Payload> datagrams;
};

TEST(AddressTest, ParseAndPrint) {
  Address a = Address::parse("host01:161");
  EXPECT_EQ(a.host, "host01");
  EXPECT_EQ(a.port, 161);
  EXPECT_EQ(a.toString(), "host01:161");
  EXPECT_EQ(Address::parse("bare").port, 0);
  EXPECT_EQ(Address::parse("h:99999").host, "h:99999");  // invalid port
}

TEST(NetworkTest, RequestResponse) {
  util::SimClock clock;
  Network network(clock);
  Echo echo;
  network.bind({"server", 80}, &echo);

  Payload response =
      network.request({"client", 0}, {"server", 80}, "hello");
  EXPECT_EQ(response, "echo:hello");
  EXPECT_EQ(echo.requests, 1);
  EXPECT_EQ(echo.lastFrom.host, "client");
}

TEST(NetworkTest, UnboundEndpointIsUnreachable) {
  util::SimClock clock;
  Network network(clock);
  try {
    network.request({"c", 0}, {"nowhere", 1}, "x");
    FAIL() << "expected NetError";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::Unreachable);
  }
}

TEST(NetworkTest, LatencyChargedToClock) {
  util::SimClock clock;
  Network network(clock);
  network.setDefaultLink(LinkModel{500, 0, 0.0});  // 500us one-way
  Echo echo;
  network.bind({"s", 1}, &echo);
  network.request({"c", 0}, {"s", 1}, "x");
  EXPECT_EQ(clock.now(), 1000);  // one round trip
}

TEST(NetworkTest, PerLinkOverride) {
  util::SimClock clock;
  Network network(clock);
  network.setDefaultLink(LinkModel{100, 0, 0.0});
  network.setLink("c", "far", LinkModel{10000, 0, 0.0});  // WAN link
  Echo nearEcho;
  Echo farEcho;
  network.bind({"near", 1}, &nearEcho);
  network.bind({"far", 1}, &farEcho);

  network.request({"c", 0}, {"near", 1}, "x");
  const util::TimePoint lanCost = clock.now();
  network.request({"c", 0}, {"far", 1}, "x");
  const util::TimePoint wanCost = clock.now() - lanCost;
  EXPECT_EQ(lanCost, 200);
  EXPECT_EQ(wanCost, 20000);
}

TEST(NetworkTest, LinkOverrideIsSymmetric) {
  util::SimClock clock;
  Network network(clock);
  network.setLink("b", "a", LinkModel{700, 0, 0.0});
  Echo echo;
  network.bind({"b", 1}, &echo);
  network.request({"a", 0}, {"b", 1}, "x");
  EXPECT_EQ(clock.now(), 1400);
}

TEST(NetworkTest, TotalLossAlwaysTimesOut) {
  util::SimClock clock;
  Network network(clock);
  network.setDefaultLink(LinkModel{100, 0, 1.0});  // 100% loss
  Echo echo;
  network.bind({"s", 1}, &echo);
  try {
    network.request({"c", 0}, {"s", 1}, "x", 5000);
    FAIL() << "expected timeout";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::Timeout);
  }
  EXPECT_EQ(clock.now(), 5000);  // charged the timeout
  EXPECT_EQ(echo.requests, 0);
}

TEST(NetworkTest, HostDownBehavesLikePacketLoss) {
  util::SimClock clock;
  Network network(clock);
  Echo echo;
  network.bind({"s", 1}, &echo);
  network.setHostDown("s", true);
  EXPECT_THROW(network.request({"c", 0}, {"s", 1}, "x", 1000), NetError);
  EXPECT_EQ(echo.requests, 0);
  network.setHostDown("s", false);
  EXPECT_EQ(network.request({"c", 0}, {"s", 1}, "x"), "echo:x");
}

TEST(NetworkTest, DatagramsDelivered) {
  util::SimClock clock;
  Network network(clock);
  Echo echo;
  network.bind({"s", 162}, &echo);
  network.datagram({"agent", 0}, {"s", 162}, "trap1");
  network.datagram({"agent", 0}, {"s", 162}, "trap2");
  ASSERT_EQ(echo.datagrams.size(), 2u);
  EXPECT_EQ(echo.datagrams[0], "trap1");
}

TEST(NetworkTest, DatagramToNowhereSilentlyDropped) {
  util::SimClock clock;
  Network network(clock);
  network.datagram({"a", 0}, {"gone", 1}, "x");  // must not throw
  EXPECT_EQ(network.stats({"gone", 1}).datagramsDropped, 1u);
  EXPECT_EQ(network.totalDatagrams(), 1u);
}

TEST(NetworkTest, DatagramDropsCounted) {
  util::SimClock clock;
  Network network(clock, /*seed=*/5);
  Echo echo;
  network.bind({"s", 162}, &echo);

  network.setHostDown("s", true);
  network.datagram({"a", 0}, {"s", 162}, "lost-host-down");
  network.setHostDown("s", false);
  EXPECT_EQ(network.stats({"s", 162}).datagramsDropped, 1u);

  network.setDefaultLink(LinkModel{100, 0, 1.0});  // total loss
  network.datagram({"a", 0}, {"s", 162}, "lost-on-link");
  network.setDefaultLink(LinkModel{100, 0, 0.0});
  network.datagram({"a", 0}, {"s", 162}, "delivered");

  EndpointStats stats = network.stats({"s", 162});
  EXPECT_EQ(stats.datagramsReceived, 1u);
  EXPECT_EQ(stats.datagramsDropped, 2u);
  // attempted = received + dropped, network-wide.
  EXPECT_EQ(network.totalDatagrams(), 3u);
  network.resetStats();
  EXPECT_EQ(network.stats({"s", 162}).datagramsDropped, 0u);
  EXPECT_EQ(network.totalDatagrams(), 0u);
}

TEST(NetworkTest, StatsTrackIntrusion) {
  util::SimClock clock;
  Network network(clock);
  Echo echo;
  network.bind({"s", 1}, &echo);
  network.request({"c", 0}, {"s", 1}, "abc");
  network.request({"c", 0}, {"s", 1}, "de");
  EndpointStats stats = network.stats({"s", 1});
  EXPECT_EQ(stats.requestsServed, 2u);
  EXPECT_EQ(stats.bytesIn, 5u);
  EXPECT_GT(stats.bytesOut, 0u);
  EXPECT_EQ(network.totalRequests(), 2u);
  network.resetStats();
  EXPECT_EQ(network.totalRequests(), 0u);
  EXPECT_EQ(network.stats({"s", 1}).requestsServed, 0u);
}

TEST(NetworkTest, UnbindStopsDelivery) {
  util::SimClock clock;
  Network network(clock);
  Echo echo;
  network.bind({"s", 1}, &echo);
  EXPECT_TRUE(network.isBound({"s", 1}));
  network.unbind({"s", 1});
  EXPECT_FALSE(network.isBound({"s", 1}));
  EXPECT_THROW(network.request({"c", 0}, {"s", 1}, "x"), NetError);
}

TEST(NetworkTest, JitterVariesLatencyDeterministically) {
  util::SimClock clock;
  Network network(clock, /*seed=*/7);
  network.setDefaultLink(LinkModel{100, 400, 0.0});
  Echo echo;
  network.bind({"s", 1}, &echo);
  std::vector<util::TimePoint> costs;
  for (int i = 0; i < 10; ++i) {
    const util::TimePoint before = clock.now();
    network.request({"c", 0}, {"s", 1}, "x");
    costs.push_back(clock.now() - before);
  }
  bool varied = false;
  for (std::size_t i = 1; i < costs.size(); ++i) {
    EXPECT_GE(costs[i], 200);          // at least the base RTT
    EXPECT_LT(costs[i], 200 + 2 * 400);  // jitter bound
    if (costs[i] != costs[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

// --- event-driven (scheduler-attached) mode ---------------------------

TEST(AsyncNetworkTest, RequestCompletesAtSimulatedArrival) {
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.setDefaultLink(LinkModel{500, 0, 0.0});  // 500us one-way
  Echo echo;
  network.bind({"s", 1}, &echo);

  std::optional<AsyncOutcome> outcome;
  util::TimePoint completedAt = -1;
  network.requestAsync({"c", 0}, {"s", 1}, "ping", [&](const AsyncOutcome& o) {
    outcome = o;
    completedAt = loop.now();
  });
  EXPECT_FALSE(outcome.has_value());  // nothing until the loop runs
  EXPECT_EQ(echo.requests, 0);

  loop.runUntil(400);
  EXPECT_FALSE(outcome.has_value());  // still in flight
  loop.runUntil(2000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
  EXPECT_EQ(outcome->response, "echo:ping");
  EXPECT_EQ(completedAt, 1000);  // one full round trip
  EXPECT_EQ(echo.requests, 1);
  EXPECT_EQ(network.stats({"s", 1}).requestsServed, 1u);
}

TEST(AsyncNetworkTest, LostRequestTimesOutAtDeadline) {
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.setDefaultLink(LinkModel{500, 0, 1.0});  // all loss
  Echo echo;
  network.bind({"s", 1}, &echo);

  std::optional<AsyncOutcome> outcome;
  util::TimePoint completedAt = -1;
  network.requestAsync(
      {"c", 0}, {"s", 1}, "x",
      [&](const AsyncOutcome& o) {
        outcome = o;
        completedAt = loop.now();
      },
      /*timeoutUs=*/10 * util::kMillisecond);
  loop.runFor(util::kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_EQ(outcome->error, NetErrorKind::Timeout);
  EXPECT_EQ(completedAt, 10 * util::kMillisecond);
  EXPECT_EQ(echo.requests, 0);
}

TEST(AsyncNetworkTest, UnboundPortRefusesAfterOneWayTrip) {
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.setDefaultLink(LinkModel{500, 0, 0.0});

  std::optional<AsyncOutcome> outcome;
  util::TimePoint completedAt = -1;
  network.requestAsync({"c", 0}, {"nowhere", 1}, "x",
                       [&](const AsyncOutcome& o) {
                         outcome = o;
                         completedAt = loop.now();
                       });
  loop.runFor(util::kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->error, NetErrorKind::Unreachable);
  EXPECT_EQ(completedAt, 500);  // connection refused after one-way
}

TEST(AsyncNetworkTest, MidFlightHostFailureCountsAsTimeout) {
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.setDefaultLink(LinkModel{500, 0, 0.0});
  Echo echo;
  network.bind({"s", 1}, &echo);

  std::optional<AsyncOutcome> outcome;
  network.requestAsync(
      {"c", 0}, {"s", 1}, "x",
      [&](const AsyncOutcome& o) { outcome = o; },
      /*timeoutUs=*/20 * util::kMillisecond);
  // The host dies while the request is on the wire: reachability is
  // re-checked at arrival, so the requester pays the full timeout.
  loop.schedule(200, [&] { network.setHostDown("s", true); });
  loop.runFor(util::kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->error, NetErrorKind::Timeout);
  EXPECT_EQ(echo.requests, 0);
}

TEST(AsyncNetworkTest, SyncRequestChargesLatencyInsteadOfSleeping) {
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.setDefaultLink(LinkModel{500, 0, 0.0});
  Echo echo;
  network.bind({"s", 1}, &echo);

  (void)Network::drainChargedLatency();
  Payload response = network.request({"c", 0}, {"s", 1}, "hello");
  EXPECT_EQ(response, "echo:hello");
  EXPECT_EQ(loop.now(), 0);  // the loop's clock never moved
  EXPECT_EQ(Network::drainChargedLatency(), 1000);  // but the RTT is priced
  EXPECT_EQ(Network::drainChargedLatency(), 0);     // drain resets
}

TEST(AsyncNetworkTest, DatagramDeliversInlineAndChargesHop) {
  // Datagrams keep send-before-reply ordering even in event-driven
  // mode: sync protocols (fragment streaming, traps) depend on frames
  // landing before the RPC that announced them returns. The one-way
  // hop is charged, not slept and not deferred.
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.setDefaultLink(LinkModel{300, 0, 0.0});
  Echo echo;
  network.bind({"s", 1}, &echo);
  (void)Network::drainChargedLatency();

  network.datagram({"c", 0}, {"s", 1}, "beat");
  ASSERT_EQ(echo.datagrams.size(), 1u);  // delivered before the call returns
  EXPECT_EQ(echo.datagrams[0], "beat");
  EXPECT_EQ(loop.now(), 0);  // clock untouched
  EXPECT_EQ(Network::drainChargedLatency(), 300);
  EXPECT_EQ(network.stats({"s", 1}).datagramsReceived, 1u);
}

TEST(AsyncNetworkTest, DetachRestoresSynchronousBehavior) {
  sim::EventLoop loop;
  Network network(loop.clock());
  network.attachScheduler(&loop);
  network.attachScheduler(nullptr);
  EXPECT_FALSE(network.eventDriven());

  util::SimClock clock;
  Network syncNetwork(clock);
  syncNetwork.setDefaultLink(LinkModel{500, 0, 0.0});
  Echo echo;
  syncNetwork.bind({"s", 1}, &echo);
  // Without a scheduler, requestAsync degrades to the sync path and
  // completes before returning.
  std::optional<AsyncOutcome> outcome;
  syncNetwork.requestAsync({"c", 0}, {"s", 1}, "x",
                           [&](const AsyncOutcome& o) { outcome = o; });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
  EXPECT_EQ(outcome->response, "echo:x");
  EXPECT_EQ(clock.now(), 1000);  // slept the round trip, legacy style
}

}  // namespace
}  // namespace gridrm::net
