#include "gridrm/glue/schema.hpp"

#include <gtest/gtest.h>

namespace gridrm::glue {
namespace {

using util::Value;
using util::ValueType;

TEST(SchemaTest, BuiltinGroupsPresent) {
  const Schema& s = Schema::builtin();
  for (const char* name :
       {"Host", "Processor", "Memory", "OperatingSystem", "FileSystem",
        "NetworkAdapter", "ComputeElement", "StorageElement",
        "NetworkForecast"}) {
    EXPECT_NE(s.findGroup(name), nullptr) << name;
  }
  EXPECT_GE(s.groupCount(), 9u);
}

TEST(SchemaTest, GroupLookupCaseInsensitive) {
  const Schema& s = Schema::builtin();
  EXPECT_NE(s.findGroup("processor"), nullptr);
  EXPECT_NE(s.findGroup("PROCESSOR"), nullptr);
  EXPECT_EQ(s.findGroup("NoSuchGroup"), nullptr);
}

TEST(SchemaTest, ProcessorGroupShape) {
  const GroupDef* g = Schema::builtin().findGroup("Processor");
  ASSERT_NE(g, nullptr);
  const AttributeDef* load1 = g->find("Load1");
  ASSERT_NE(load1, nullptr);
  EXPECT_EQ(load1->type, ValueType::Real);
  const AttributeDef* count = g->find("CPUCount");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->type, ValueType::Int);
  EXPECT_NE(g->find("HostName"), nullptr);
  EXPECT_EQ(g->find("Bogus"), nullptr);
}

TEST(SchemaTest, AttributeLookupCaseInsensitive) {
  const GroupDef* g = Schema::builtin().findGroup("Memory");
  ASSERT_NE(g, nullptr);
  EXPECT_NE(g->find("ramsize"), nullptr);
  EXPECT_EQ(g->indexOf("RAMSIZE"), g->indexOf("RAMSize"));
}

TEST(SchemaTest, UnitsCarried) {
  const GroupDef* g = Schema::builtin().findGroup("Memory");
  EXPECT_EQ(g->find("RAMSize")->unit, "MB");
  const GroupDef* nic = Schema::builtin().findGroup("NetworkAdapter");
  EXPECT_EQ(nic->find("Speed")->unit, "Mbps");
}

TEST(SchemaTest, AddGroupReplacesByName) {
  Schema s;
  s.addGroup(GroupDef("G", {{"a", ValueType::Int, "", ""}}));
  s.addGroup(GroupDef("g", {{"b", ValueType::Int, "", ""}}));  // replaces
  EXPECT_EQ(s.groupCount(), 1u);
  EXPECT_NE(s.findGroup("G")->find("b"), nullptr);
  EXPECT_EQ(s.findGroup("G")->find("a"), nullptr);
}

TEST(SchemaValidationTest, CleanRowPasses) {
  const GroupDef* g = Schema::builtin().findGroup("Processor");
  auto issues = validateRow(
      *g, {{"HostName", Value("n0")}, {"Load1", Value(0.5)},
           {"CPUCount", Value(2)}});
  EXPECT_TRUE(issues.empty());
}

TEST(SchemaValidationTest, NullAlwaysAllowed) {
  // Paper section 3.2.3: drivers return NULL for unavailable attributes.
  const GroupDef* g = Schema::builtin().findGroup("Processor");
  auto issues = validateRow(*g, {{"Load1", Value::null()},
                                 {"Model", Value::null()}});
  EXPECT_TRUE(issues.empty());
}

TEST(SchemaValidationTest, IntAcceptedForRealAttribute) {
  const GroupDef* g = Schema::builtin().findGroup("Processor");
  auto issues = validateRow(*g, {{"Load1", Value(1)}});
  EXPECT_TRUE(issues.empty());
}

TEST(SchemaValidationTest, TypeMismatchFlagged) {
  const GroupDef* g = Schema::builtin().findGroup("Processor");
  auto issues = validateRow(*g, {{"Load1", Value("high")}});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].attribute, "Load1");
}

TEST(SchemaValidationTest, UnknownAttributeFlagged) {
  const GroupDef* g = Schema::builtin().findGroup("Processor");
  auto issues = validateRow(*g, {{"NotAnAttr", Value(1)}});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].attribute, "NotAnAttr");
}

}  // namespace
}  // namespace gridrm::glue
