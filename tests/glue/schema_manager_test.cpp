#include "gridrm/glue/schema_manager.hpp"

#include <gtest/gtest.h>

namespace gridrm::glue {
namespace {

TEST(SchemaManagerTest, DefaultsToBuiltinSchema) {
  SchemaManager mgr;
  EXPECT_NE(mgr.schema().findGroup("Processor"), nullptr);
}

TEST(SchemaManagerTest, UnknownDriverMapIsNull) {
  SchemaManager mgr;
  EXPECT_EQ(mgr.driverMap("nope"), nullptr);
}

TEST(SchemaManagerTest, RegisterAndFetchDriverMap) {
  SchemaManager mgr;
  DriverSchemaMap map("snmp");
  map.group("Processor").map("Load1", "1.3.6.1.4.1.2021.10.1.3.1");
  mgr.registerDriverMap(std::move(map));

  auto fetched = mgr.driverMap("snmp");
  ASSERT_NE(fetched, nullptr);
  const GroupMapping* g = fetched->findGroup("Processor");
  ASSERT_NE(g, nullptr);
  auto m = g->find("Load1");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->native, "1.3.6.1.4.1.2021.10.1.3.1");
}

TEST(SchemaManagerTest, ReRegistrationReplaces) {
  SchemaManager mgr;
  DriverSchemaMap v1("d");
  v1.group("G").map("a", "old");
  mgr.registerDriverMap(std::move(v1));
  // A connection caches the map it fetched at connect time (Fig. 5).
  auto cached = mgr.driverMap("d");

  DriverSchemaMap v2("d");
  v2.group("G").map("a", "new");
  mgr.registerDriverMap(std::move(v2));

  EXPECT_EQ(mgr.driverMap("d")->findGroup("G")->find("a")->native, "new");
  // The old connection's cached map is unchanged (shared ownership).
  EXPECT_EQ(cached->findGroup("G")->find("a")->native, "old");
}

TEST(GroupMappingTest, CaseInsensitiveAttributeKeys) {
  GroupMapping g("Processor");
  g.map("Load1", "load_one");
  EXPECT_TRUE(g.find("load1").has_value());
  EXPECT_TRUE(g.find("LOAD1").has_value());
  EXPECT_FALSE(g.find("Load5").has_value());
}

TEST(GroupMappingTest, ScaleDefaultsToOne) {
  GroupMapping g("Memory");
  g.map("RAMSize", "mem_total", 1.0 / 1024);
  g.map("RAMAvailable", "mem_free");
  EXPECT_DOUBLE_EQ(g.find("RAMSize")->scale, 1.0 / 1024);
  EXPECT_DOUBLE_EQ(g.find("RAMAvailable")->scale, 1.0);
}

TEST(GroupMappingTest, EmptyNativeMeansDeclaredButUnavailable) {
  GroupMapping g("Host");
  g.map("Architecture", "");
  auto m = g.find("Architecture");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->native.empty());
}

TEST(DriverSchemaMapTest, GroupAccessCreatesOnDemand) {
  DriverSchemaMap map("d");
  EXPECT_EQ(map.findGroup("G"), nullptr);
  map.group("G").map("a", "x");
  EXPECT_NE(map.findGroup("g"), nullptr);  // case-insensitive
  EXPECT_EQ(map.groupNames().size(), 1u);
}

}  // namespace
}  // namespace gridrm::glue
