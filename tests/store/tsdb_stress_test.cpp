// Concurrency stress for the tsdb (ISSUE PR6 satellite): appenders,
// queriers, a sealer, and a retention sweeper all hammer one store.
// Run under TSan by CI; the assertions here are conservation checks
// (no row lost outside an eviction, no crash, stats add up).
#include "gridrm/store/tsdb/tsdb.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gridrm/sql/parser.hpp"

namespace gridrm::store::tsdb {
namespace {

using dbc::ColumnInfo;
using util::Value;
using util::ValueType;

TEST(TsdbStressTest, ConcurrentIngestSealEvictAndQuery) {
  util::SimClock clock;
  TsdbOptions options;
  options.segmentRows = 64;
  options.segmentSpan = 0;
  options.bucket1m = 100;  // tiny buckets: rollup folding stays busy
  options.bucket1h = 1000;
  options.rawTtl = 0;  // eviction driven by pruneOlderThan below
  TimeSeriesStore store(clock, options);
  store.createTable("History",
                    {{"Host", ValueType::String, "", "History"},
                     {"Load", ValueType::Int, "", "History"},
                     {"RecordedAt", ValueType::Int, "us", "History"}},
                    "RecordedAt");

  constexpr int kAppenders = 3;
  constexpr int kRowsEach = 2000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queried{0};

  std::vector<std::thread> threads;
  for (int a = 0; a < kAppenders; ++a) {
    threads.emplace_back([&store, a] {
      const std::string host = "h" + std::to_string(a);
      for (std::int64_t i = 0; i < kRowsEach; ++i) {
        store.append("History", {Value(host), Value(i % 10), Value(i * 10)});
      }
    });
  }
  threads.emplace_back([&store, &done, &queried] {
    const auto stmt = sql::parseSelect(
        "SELECT Host, COUNT(*), MAX(Load) FROM History "
        "WHERE RecordedAt >= 0 AND RecordedAt < 10000 GROUP BY Host");
    const auto scanAll = sql::parseSelect(
        "SELECT Host, Load FROM History WHERE Load >= 5");
    while (!done.load(std::memory_order_acquire)) {
      queried += store.query(stmt)->rowCount();
      queried += store.query(scanAll)->rowCount();
    }
  });
  threads.emplace_back([&store, &done] {
    std::int64_t cutoff = 0;
    while (!done.load(std::memory_order_acquire)) {
      store.sealAll();
      (void)store.retentionTick();
      // A slowly-advancing cutoff evicts old segments mid-flight.
      (void)store.pruneOlderThan("History", cutoff);
      cutoff += 500;
      std::this_thread::yield();
    }
  });

  for (int a = 0; a < kAppenders; ++a) threads[a].join();
  done.store(true, std::memory_order_release);
  for (std::size_t i = kAppenders; i < threads.size(); ++i) threads[i].join();

  store.sealAll();
  const TsdbStats s = store.stats();
  EXPECT_EQ(s.appendedRows,
            static_cast<std::uint64_t>(kAppenders) * kRowsEach);
  // Every appended row is either still stored or was counted evicted.
  EXPECT_EQ(s.sealedRows + s.activeRows + s.evictedRows, s.appendedRows);
  EXPECT_GT(s.queries, 0u);
  // Final full count agrees with the conservation ledger.
  auto rs = store.query(sql::parseSelect("SELECT COUNT(*) FROM History"));
  rs->next();
  EXPECT_EQ(static_cast<std::uint64_t>(rs->get(0).asInt()),
            s.sealedRows + s.activeRows);
}

TEST(TsdbStressTest, ConcurrentTableCreationAndAppend) {
  util::SimClock clock;
  TimeSeriesStore store(clock);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      const std::string table = "History" + std::to_string(t);
      store.createTable(table,
                        {{"V", ValueType::Int, "", table},
                         {"RecordedAt", ValueType::Int, "us", table}},
                        "RecordedAt");
      for (std::int64_t i = 0; i < 500; ++i) {
        store.append(table, {Value(i), Value(i)});
      }
      EXPECT_EQ(store.rowCount(table), 500u);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.tableNames().size(), 4u);
  EXPECT_EQ(store.stats().appendedRows, 2000u);
}

}  // namespace
}  // namespace gridrm::store::tsdb
