// Codec round-trip tests for the tsdb column encoders (ISSUE PR6
// satellite): the decoder must reproduce the original Value sequence
// *bitwise*, including NULLs, NaN payloads, -0.0 and mixed-type cells.
#include "gridrm/store/tsdb/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace gridrm::store::tsdb {
namespace {

using dbc::ColumnInfo;
using util::Value;
using util::ValueType;

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Bitwise Value equality: Value::compare treats NaN oddly and folds
/// -0.0 == 0.0, so Real cells compare by bit pattern instead.
bool bitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::Null:
      return true;
    case ValueType::Bool:
      return a.asBool() == b.asBool();
    case ValueType::Int:
      return a.asInt() == b.asInt();
    case ValueType::Real:
      return bits(a.asReal()) == bits(b.asReal());
    case ValueType::String:
      return a.asString() == b.asString();
  }
  return false;
}

std::vector<Value> roundTrip(const std::vector<Value>& cells,
                             ValueType declared = ValueType::Null,
                             bool deltaOfDelta = false) {
  ColumnEncoder enc(ColumnInfo{"c", declared, "", "t"}, deltaOfDelta);
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  EXPECT_EQ(col.rowCount, cells.size());
  ColumnCursor cursor(col);
  std::vector<Value> out;
  while (cursor.next()) out.push_back(cursor.value());
  EXPECT_FALSE(cursor.next());  // stays exhausted
  return out;
}

void expectRoundTrip(const std::vector<Value>& cells,
                     ValueType declared = ValueType::Null,
                     bool deltaOfDelta = false) {
  const auto out = roundTrip(cells, declared, deltaOfDelta);
  ASSERT_EQ(out.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(bitEqual(out[i], cells[i]))
        << "cell " << i << ": " << out[i].toString() << " vs "
        << cells[i].toString();
  }
}

TEST(TsdbCodecTest, VarintZigzagExtremes) {
  for (const std::int64_t v :
       {std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::min() + 1, std::int64_t{-1},
        std::int64_t{0}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    std::vector<std::uint8_t> buf;
    putVarint(buf, zigzagEncode(v));
    VarintReader reader(buf);
    EXPECT_EQ(zigzagDecode(reader.next()), v);
    EXPECT_TRUE(reader.done());
  }
}

TEST(TsdbCodecTest, TruncatedVarintThrows) {
  std::vector<std::uint8_t> buf;
  putVarint(buf, 1u << 20);
  buf.pop_back();  // cut the terminating byte
  VarintReader reader(buf);
  EXPECT_THROW((void)reader.next(), dbc::SqlError);
}

TEST(TsdbCodecTest, NonMonotonicTimestampsDeltaOfDelta) {
  // Out-of-order arrivals, duplicates, and a large backwards jump: the
  // delta-of-delta stream must absorb negative second deltas.
  expectRoundTrip({Value(std::int64_t{1000}), Value(std::int64_t{2000}),
                   Value(std::int64_t{3000}), Value(std::int64_t{1500}),
                   Value(std::int64_t{1500}), Value(std::int64_t{-7}),
                   Value(std::int64_t{900000000000})},
                  ValueType::Int, /*deltaOfDelta=*/true);
}

TEST(TsdbCodecTest, RegularTimestampsCompressToAboutOneBytePerSample) {
  std::vector<Value> cells;
  for (std::int64_t i = 0; i < 1000; ++i) {
    cells.emplace_back(std::int64_t{1700000000000000} + i * 30000000);
  }
  ColumnEncoder enc(ColumnInfo{"t", ValueType::Int, "us", "t"},
                    /*deltaOfDelta=*/true);
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  // Constant polling interval: after the first two samples every
  // delta-of-delta is zero, one varint byte each.
  EXPECT_LT(col.bytes(), cells.size() * 2);
  expectRoundTrip(cells, ValueType::Int, true);
}

TEST(TsdbCodecTest, IntExtremesWithPlainDelta) {
  expectRoundTrip({Value(std::numeric_limits<std::int64_t>::max()),
                   Value(std::numeric_limits<std::int64_t>::min()),
                   Value(std::int64_t{0}),
                   Value(std::numeric_limits<std::int64_t>::max())},
                  ValueType::Int, /*deltaOfDelta=*/false);
}

TEST(TsdbCodecTest, NanNegativeAndSignedZeroDoubles) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  expectRoundTrip(
      {Value(0.0), Value(-0.0), Value(qnan), Value(-qnan), Value(-1.5),
       Value(std::numeric_limits<double>::infinity()),
       Value(-std::numeric_limits<double>::infinity()),
       Value(std::numeric_limits<double>::denorm_min()),
       Value(std::numeric_limits<double>::max()), Value(-2.75), Value(-2.75)},
      ValueType::Real);
}

TEST(TsdbCodecTest, RepeatedGaugeCostsOneControlBytePerSample) {
  std::vector<Value> cells(512, Value(0.25));
  ColumnEncoder enc(ColumnInfo{"g", ValueType::Real, "", "t"});
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  // XOR against the previous bit pattern is zero for every repeat: one
  // control byte each (plus the first sample's full mantissa).
  EXPECT_LT(col.bytes(), 512 + 16 + 64 /* validity */ + 8);
  expectRoundTrip(cells, ValueType::Real);
}

TEST(TsdbCodecTest, EmptyColumn) {
  const auto out = roundTrip({}, ValueType::String);
  EXPECT_TRUE(out.empty());
}

TEST(TsdbCodecTest, AllNullColumn) {
  expectRoundTrip(std::vector<Value>(64, Value::null()), ValueType::Real);
}

TEST(TsdbCodecTest, NullHeavyStringColumn) {
  std::vector<Value> cells;
  for (int i = 0; i < 200; ++i) {
    if (i % 7 == 0) {
      cells.emplace_back(i % 14 == 0 ? "siteA-node00" : "");
    } else {
      cells.push_back(Value::null());
    }
  }
  ColumnEncoder enc(ColumnInfo{"host", ValueType::String, "", "t"});
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  EXPECT_EQ(col.dict.size(), 2u);  // "" and "siteA-node00", first-seen order
  expectRoundTrip(cells, ValueType::String);
}

TEST(TsdbCodecTest, StringDictionaryRunLength) {
  std::vector<Value> cells;
  for (int i = 0; i < 300; ++i) {
    cells.emplace_back(i < 150 ? "clusterA" : "clusterB");
  }
  ColumnEncoder enc(ColumnInfo{"cluster", ValueType::String, "", "t"});
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  EXPECT_EQ(col.dict.size(), 2u);
  // Two runs of 150: the id stream is a handful of varints, far below
  // one byte per cell.
  EXPECT_LT(col.ids.size(), 16u);
  expectRoundTrip(cells, ValueType::String);
}

TEST(TsdbCodecTest, SingleCellColumns) {
  expectRoundTrip({Value(std::int64_t{42})}, ValueType::Int, true);
  expectRoundTrip({Value(std::int64_t{42})}, ValueType::Int, false);
  expectRoundTrip({Value(-0.0)}, ValueType::Real);
  expectRoundTrip({Value("only")}, ValueType::String);
  expectRoundTrip({Value(true)}, ValueType::Bool);
  expectRoundTrip({Value::null()}, ValueType::Null);
}

TEST(TsdbCodecTest, BoolPacking) {
  std::vector<Value> cells;
  for (int i = 0; i < 65; ++i) {  // crosses a byte boundary + one spare
    if (i % 9 == 0) {
      cells.push_back(Value::null());
    } else {
      cells.emplace_back(i % 2 == 0);
    }
  }
  expectRoundTrip(cells, ValueType::Bool);
}

TEST(TsdbCodecTest, MixedTypeColumnUsesTagRuns) {
  // A column whose cells change type mid-stream exercises the RLE tag
  // stream (the uniformTag fast path must not be taken).
  std::vector<Value> cells = {
      Value(std::int64_t{1}), Value(std::int64_t{2}), Value(1.5),
      Value("three"),         Value::null(),          Value(false),
      Value(std::int64_t{-9}), Value("three")};
  ColumnEncoder enc(ColumnInfo{"m", ValueType::Null, "", "t"});
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  EXPECT_FALSE(col.tags.empty());
  expectRoundTrip(cells);
}

TEST(TsdbCodecTest, UniformTagFastPathOmitsTagStream) {
  std::vector<Value> cells(100, Value(std::int64_t{7}));
  cells[3] = Value::null();  // NULLs don't break tag uniformity
  ColumnEncoder enc(ColumnInfo{"u", ValueType::Int, "", "t"});
  for (const auto& v : cells) enc.add(v);
  const EncodedColumn col = enc.finish();
  EXPECT_TRUE(col.tags.empty());
  EXPECT_EQ(col.uniformTag, static_cast<std::uint8_t>(ValueType::Int));
  expectRoundTrip(cells, ValueType::Int);
}

}  // namespace
}  // namespace gridrm::store::tsdb
