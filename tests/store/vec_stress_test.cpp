// Vectorized engine under concurrency (run under TSan by CI), plus the
// tsdb zero-transpose differential: a store scanning segments through
// the batch kernels must answer byte-identically to one forced onto
// the row interpreter (tsdb.vectorized_scan = false).
//
// The stress tests hammer one Database / one TimeSeriesStore with
// appenders, a pruner, and vectorized queriers while a toggler flips
// the engine kill switch mid-flight: every query must still see a
// consistent snapshot whichever path executes it, and the counters are
// relaxed atomics so the toggling itself is race-free.
#include "gridrm/sql/vec/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "../sql/expr_generator.hpp"
#include "gridrm/dbc/result_io.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"

namespace gridrm::store {
namespace {

using dbc::ColumnInfo;
using dbc::SqlError;
using util::Value;
using util::ValueType;

struct EngineGuard {
  bool saved = sql::vec::engineEnabled();
  ~EngineGuard() { sql::vec::setEngineEnabled(saved); }
};

TEST(VecStressTest, RowStoreQueriesVsInsertAndPrune) {
  EngineGuard guard;
  sql::vec::setEngineEnabled(true);
  Database db;
  db.createTable("t", {{"host", ValueType::String, "", "t"},
                       {"load1", ValueType::Real, "", "t"},
                       {"cpus", ValueType::Int, "", "t"},
                       {"ts", ValueType::Int, "us", "t"}});

  constexpr int kWriters = 2;
  constexpr std::int64_t kRowsEach = 3000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queried{0};
  std::atomic<std::uint64_t> pruned{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      const std::string host = "h" + std::to_string(w);
      for (std::int64_t i = 0; i < kRowsEach; ++i) {
        db.insertRow("t", {Value(host), Value(0.5 * static_cast<double>(i % 8)),
                           Value(i % 4), Value(i)});
      }
    });
  }
  threads.emplace_back([&db, &done, &queried] {
    const auto filter = sql::parseSelect(
        "SELECT host, load1 + cpus FROM t "
        "WHERE load1 > 1.0 AND cpus IN (1, 2) ORDER BY ts LIMIT 50");
    const auto agg = sql::parseSelect(
        "SELECT host, count(*), sum(cpus), avg(load1) FROM t "
        "GROUP BY host ORDER BY host");
    while (!done.load(std::memory_order_acquire)) {
      queried += db.query(filter)->rowCount();
      queried += db.query(agg)->rowCount();
    }
  });
  threads.emplace_back([&db, &done, &pruned] {
    std::int64_t cutoff = 0;
    while (!done.load(std::memory_order_acquire)) {
      pruned += db.pruneOlderThan("t", "ts", cutoff);
      cutoff += 100;
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&done] {
    // The kill switch is a live tunable; queries racing the flip must
    // take whichever engine they observe without tearing.
    bool on = false;
    while (!done.load(std::memory_order_acquire)) {
      sql::vec::setEngineEnabled(on);
      on = !on;
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  sql::vec::setEngineEnabled(true);
  EXPECT_GT(queried.load(), 0u);
  // Conservation: whatever the pruner removed, the rest is still there.
  EXPECT_EQ(db.rowCount("t") + pruned.load(),
            static_cast<std::uint64_t>(kWriters) * kRowsEach);
}

TEST(VecStressTest, TsdbVectorizedScanVsIngestSealPrune) {
  EngineGuard guard;
  sql::vec::setEngineEnabled(true);
  util::SimClock clock;
  tsdb::TsdbOptions options;
  options.segmentRows = 64;
  options.segmentSpan = 0;
  options.rawTtl = 0;
  tsdb::TimeSeriesStore store(clock, options);
  store.createTable("History",
                    {{"Host", ValueType::String, "", "History"},
                     {"Load", ValueType::Int, "", "History"},
                     {"RecordedAt", ValueType::Int, "us", "History"}},
                    "RecordedAt");

  constexpr int kWriters = 2;
  constexpr std::int64_t kRowsEach = 3000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queried{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      const std::string host = "h" + std::to_string(w);
      for (std::int64_t i = 0; i < kRowsEach; ++i) {
        store.append("History", {Value(host), Value(i % 16), Value(i * 10)});
      }
    });
  }
  threads.emplace_back([&store, &done, &queried] {
    // Shapes chosen to hit the vectorized segment-scan predicate phase:
    // time-bounded, string LIKE, and numeric comparisons together.
    const auto stmt = sql::parseSelect(
        "SELECT Host, Load FROM History "
        "WHERE RecordedAt BETWEEN 100 AND 20000 AND Load >= 8 "
        "AND Host LIKE 'h%'");
    while (!done.load(std::memory_order_acquire)) {
      queried += store.query(stmt)->rowCount();
    }
  });
  threads.emplace_back([&store, &done] {
    std::int64_t cutoff = 0;
    while (!done.load(std::memory_order_acquire)) {
      store.sealAll();
      (void)store.pruneOlderThan("History", cutoff);
      cutoff += 200;
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  const tsdb::TsdbStats s = store.stats();
  EXPECT_EQ(s.appendedRows, static_cast<std::uint64_t>(kWriters) * kRowsEach);
  EXPECT_EQ(s.sealedRows + s.activeRows + s.evictedRows, s.appendedRows);
  EXPECT_GT(s.queries, 0u);
}

// ---------------------------------------------------------------------
// tsdb differential: vectorized_scan on vs off over identical data --
// sealed segments plus an unsealed write-ahead tail -- for generated
// statements. Both stores route identically (same options otherwise),
// so any divergence is the zero-transpose path's fault.

const std::vector<ColumnInfo>& tsdbSchema() {
  static const std::vector<ColumnInfo> kColumns = {
      {"host", ValueType::String, "", "t"},
      {"cluster", ValueType::String, "", "t"},
      {"load1", ValueType::Real, "", "t"},
      {"load5", ValueType::Real, "", "t"},
      {"cpus", ValueType::Int, "", "t"},
      {"mem", ValueType::Int, "", "t"},
      {"ts", ValueType::Int, "us", "t"}};
  return kColumns;
}

std::string runQuery(const tsdb::TimeSeriesStore& store,
                     const sql::SelectStatement& stmt) {
  try {
    auto rs = store.query(stmt);
    return dbc::serializeResultSet(*rs);
  } catch (const SqlError& e) {
    return std::string("SqlError: ") + e.what();
  } catch (const sql::EvalError& e) {
    return std::string("EvalError: ") + e.what();
  }
}

TEST(VecDifferentialTest, TsdbVectorizedScanMatchesRowInterpreter) {
  EngineGuard guard;
  sql::vec::setEngineEnabled(true);
  util::SimClock clock;
  tsdb::TsdbOptions vecOpts;
  vecOpts.segmentRows = 256;
  vecOpts.segmentSpan = 0;
  vecOpts.rawTtl = 0;
  tsdb::TsdbOptions rowOpts = vecOpts;
  rowOpts.vectorizedScan = false;
  tsdb::TimeSeriesStore vecStore(clock, vecOpts);
  tsdb::TimeSeriesStore rowStore(clock, rowOpts);
  vecStore.createTable("t", tsdbSchema(), "ts");
  rowStore.createTable("t", tsdbSchema(), "ts");

  sql::ExprGenerator gen(20260807u);
  for (std::int64_t i = 0; i < 3000; ++i) {
    auto m = gen.genRow();
    std::vector<Value> row = {m["host"], m["cluster"], m["load1"],
                              m["load5"], m["cpus"],   m["mem"],
                              Value(i * 100)};
    vecStore.append("t", row);
    rowStore.append("t", row);
  }
  // Segments seal at 256 rows; the remainder stays in the write-ahead
  // buffer so both the columnar and the row-buffer scan paths run.
  ASSERT_GT(vecStore.stats().segments, 0u);
  ASSERT_GT(vecStore.stats().activeRows, 0u);

  sql::vec::resetEngineStats();
  for (int i = 0; i < 80; ++i) {
    auto stmt = gen.genSelect();
    SCOPED_TRACE("sql=" + stmt.toSql());
    EXPECT_EQ(runQuery(vecStore, stmt), runQuery(rowStore, stmt));
  }
  // The vectorized store exercised the batch filter kernels: queries
  // with a WHERE ran through tryFilterBatch over decoded segments.
  EXPECT_GT(sql::vec::engineStats().vecBatches, 0u);
}

}  // namespace
}  // namespace gridrm::store
