#include "gridrm/store/database.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gridrm::store {
namespace {

using dbc::ColumnInfo;
using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;
using util::ValueType;

std::unique_ptr<Database> makeDb() {
  auto dbPtr = std::make_unique<Database>();
  Database& db = *dbPtr;
  db.createTable("Processor",
                 {{"HostName", ValueType::String, "", "Processor"},
                  {"Load1", ValueType::Real, "", "Processor"},
                  {"CPUCount", ValueType::Int, "", "Processor"},
                  {"Timestamp", ValueType::Int, "us", "Processor"}});
  db.insertRow("Processor", {Value("n0"), Value(0.2), Value(2), Value(100)});
  db.insertRow("Processor", {Value("n1"), Value(1.5), Value(4), Value(200)});
  db.insertRow("Processor", {Value("n2"), Value(0.9), Value(2), Value(300)});
  db.insertRow("Processor",
               {Value("n3"), Value::null(), Value(1), Value(400)});
  return dbPtr;
}

TEST(DatabaseTest, SelectStar) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query("SELECT * FROM Processor");
  EXPECT_EQ(rs->rowCount(), 4u);
  EXPECT_EQ(rs->metaData().columnCount(), 4u);
}

TEST(DatabaseTest, Projection) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query("SELECT HostName, Load1 FROM Processor");
  EXPECT_EQ(rs->metaData().columnCount(), 2u);
  EXPECT_EQ(rs->metaData().column(0).name, "HostName");
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "n0");
}

TEST(DatabaseTest, WhereFiltering) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query("SELECT HostName FROM Processor WHERE Load1 > 0.5");
  EXPECT_EQ(rs->rowCount(), 2u);  // n1 and n2; NULL excluded
}

TEST(DatabaseTest, WhereWithNullComparison) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  // SQL semantics: NULL Load1 matches neither > nor <=.
  auto gt = db.query("SELECT * FROM Processor WHERE Load1 > 0");
  auto le = db.query("SELECT * FROM Processor WHERE Load1 <= 0");
  EXPECT_EQ(gt->rowCount() + le->rowCount(), 3u);
  auto isNull = db.query("SELECT * FROM Processor WHERE Load1 IS NULL");
  EXPECT_EQ(isNull->rowCount(), 1u);
}

TEST(DatabaseTest, OrderByAscendingAndDescending) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto asc = db.query(
      "SELECT HostName FROM Processor WHERE Load1 IS NOT NULL ORDER BY Load1");
  asc->next();
  EXPECT_EQ(asc->get(0).asString(), "n0");
  auto desc = db.query(
      "SELECT HostName FROM Processor WHERE Load1 IS NOT NULL "
      "ORDER BY Load1 DESC");
  desc->next();
  EXPECT_EQ(desc->get(0).asString(), "n1");
}

TEST(DatabaseTest, OrderByPutsNullsFirst) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query("SELECT HostName FROM Processor ORDER BY Load1");
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "n3");  // NULL sorts first
}

TEST(DatabaseTest, Limit) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query("SELECT * FROM Processor LIMIT 2");
  EXPECT_EQ(rs->rowCount(), 2u);
  auto rs0 = db.query("SELECT * FROM Processor LIMIT 0");
  EXPECT_EQ(rs0->rowCount(), 0u);
  auto rsBig = db.query("SELECT * FROM Processor LIMIT 100");
  EXPECT_EQ(rsBig->rowCount(), 4u);
}

TEST(DatabaseTest, ComputedColumnsAndAliases) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query(
      "SELECT HostName, Load1 / CPUCount AS perCpu FROM Processor "
      "WHERE HostName = 'n1'");
  ASSERT_EQ(rs->rowCount(), 1u);
  EXPECT_EQ(rs->metaData().column(1).name, "perCpu");
  rs->next();
  EXPECT_DOUBLE_EQ(rs->get("perCpu").asReal(), 1.5 / 4);
}

TEST(DatabaseTest, TableAliasQualifiers) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query("SELECT p.HostName FROM Processor p WHERE p.Load1 > 1");
  EXPECT_EQ(rs->rowCount(), 1u);
}

TEST(DatabaseTest, WrongQualifierFails) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  EXPECT_THROW(db.query("SELECT z.HostName FROM Processor p"), SqlError);
}

TEST(DatabaseTest, InsertViaSql) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  const std::size_t n =
      db.execute("INSERT INTO Processor VALUES ('n4', 2.0, 8, 500)");
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(db.rowCount("Processor"), 5u);
}

TEST(DatabaseTest, InsertNamedColumnsFillsNulls) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  db.execute("INSERT INTO Processor (HostName, Timestamp) VALUES ('n9', 999)");
  auto rs = db.query("SELECT * FROM Processor WHERE HostName = 'n9'");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_TRUE(rs->get("Load1").isNull());
  EXPECT_EQ(rs->get("Timestamp").asInt(), 999);
}

TEST(DatabaseTest, InsertMultipleRows) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  const std::size_t n = db.execute(
      "INSERT INTO Processor VALUES ('a', 1.0, 1, 1), ('b', 2.0, 2, 2)");
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(db.rowCount("Processor"), 6u);
}

TEST(DatabaseTest, Errors) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  EXPECT_THROW(db.query("SELECT * FROM Nope"), SqlError);
  EXPECT_THROW(db.query("SELECT Missing FROM Processor"), SqlError);
  EXPECT_THROW(db.execute("INSERT INTO Nope VALUES (1)"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM Processor"), SqlError);
  EXPECT_THROW(db.insertRow("Processor", {Value(1)}), SqlError);  // arity
  EXPECT_THROW(
      db.execute("INSERT INTO Processor (Bogus) VALUES (1)"), SqlError);
}

TEST(DatabaseTest, TableNamesCaseInsensitive) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  EXPECT_TRUE(db.hasTable("processor"));
  auto rs = db.query("SELECT * FROM PROCESSOR");
  EXPECT_EQ(rs->rowCount(), 4u);
}

TEST(DatabaseTest, CreateTableReplaces) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  db.createTable("Processor", {{"x", ValueType::Int, "", ""}});
  EXPECT_EQ(db.rowCount("Processor"), 0u);
  EXPECT_EQ(db.tableNames().size(), 1u);
}

TEST(DatabaseTest, RetentionPrunesOldRows) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  const std::size_t pruned =
      db.pruneOlderThan("Processor", "Timestamp", 250);
  EXPECT_EQ(pruned, 2u);  // timestamps 100, 200
  EXPECT_EQ(db.rowCount("Processor"), 2u);
  EXPECT_EQ(db.pruneOlderThan("NoTable", "Timestamp", 1), 0u);
  EXPECT_THROW(db.pruneOlderThan("Processor", "NoCol", 1), SqlError);
}

TEST(DatabaseTest, SelectInWhereWithStrings) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto rs = db.query(
      "SELECT * FROM Processor WHERE HostName IN ('n0', 'n2', 'zz')");
  EXPECT_EQ(rs->rowCount(), 2u);
}

TEST(DatabaseTest, BetweenAndLike) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  auto between =
      db.query("SELECT * FROM Processor WHERE Timestamp BETWEEN 150 AND 350");
  EXPECT_EQ(between->rowCount(), 2u);
  auto like = db.query("SELECT * FROM Processor WHERE HostName LIKE 'n%'");
  EXPECT_EQ(like->rowCount(), 4u);
}

TEST(DatabaseTest, InsertNamedRejectsDuplicateColumns) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  // A column listed twice in the insert list is a statement error, not a
  // silent last-writer-wins overwrite.
  EXPECT_THROW(db.execute("INSERT INTO Processor (HostName, HostName) "
                          "VALUES ('x', 'y')"),
               SqlError);
  // Column matching is case-insensitive, so a case-variant duplicate is
  // the same mistake.
  EXPECT_THROW(db.execute("INSERT INTO Processor (HostName, hostname) "
                          "VALUES ('x', 'y')"),
               SqlError);
  EXPECT_EQ(db.rowCount("Processor"), 4u);  // nothing was inserted
}

TEST(DatabaseTest, InsertNamedRejectsUnknownColumnWithClearError) {
  auto dbPtr = makeDb();
  Database& db = *dbPtr;
  try {
    db.execute("INSERT INTO Processor (HostName, Bogus) VALUES ('x', 1)");
    FAIL() << "unknown insert column accepted";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NoSuchColumn);
    EXPECT_NE(std::string(e.what()).find("Bogus"), std::string::npos);
  }
  EXPECT_EQ(db.rowCount("Processor"), 4u);
}

TEST(DatabaseTest, PruneKeepsRowsWithUndatableTimeCells) {
  Database db;
  db.createTable("T", {{"Timestamp", ValueType::Int, "us", "T"},
                       {"Name", ValueType::String, "", "T"}});
  db.insertRow("T", {Value(100), Value("old")});
  db.insertRow("T", {Value("150"), Value("old-as-string")});
  db.insertRow("T", {Value::null(), Value("undated")});
  db.insertRow("T", {Value("garbage"), Value("corrupt")});
  db.insertRow("T", {Value(900), Value("fresh")});

  // Integer and numeric-string cells below the cutoff are pruned; cells
  // with no integer reading (NULL, non-numeric string) are never pruned.
  EXPECT_EQ(db.pruneOlderThan("T", "Timestamp", 250), 2u);
  auto rs = db.query("SELECT Name FROM T");
  ASSERT_EQ(rs->rowCount(), 3u);
  std::vector<std::string> names;
  while (rs->next()) names.push_back(rs->getString("Name"));
  EXPECT_EQ(names, (std::vector<std::string>{"undated", "corrupt", "fresh"}));
}

TEST(DatabaseTest, PruneEmptyTableAndAllRows) {
  Database db;
  db.createTable("T", {{"Timestamp", ValueType::Int, "us", "T"}});
  EXPECT_EQ(db.pruneOlderThan("T", "Timestamp", 1000), 0u);  // empty: no-op
  db.insertRow("T", {Value(1)});
  db.insertRow("T", {Value(2)});
  EXPECT_EQ(db.pruneOlderThan("T", "Timestamp", 1000), 2u);  // prunes all
  EXPECT_EQ(db.rowCount("T"), 0u);
  // The emptied table still exists and accepts new rows.
  db.insertRow("T", {Value(2000)});
  EXPECT_EQ(db.rowCount("T"), 1u);
}

}  // namespace
}  // namespace gridrm::store
