// Property test (ISSUE PR6 satellite): the tsdb raw path must be
// byte-for-byte indistinguishable from the row store. Both engines
// ingest identical generated rows and execute identical generated
// SELECTs; metadata, row order, and every cell (bitwise, including Real
// payloads) must match, as must any thrown error.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../sql/expr_generator.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::store {
namespace {

using dbc::ColumnInfo;
using dbc::SqlError;
using util::Value;
using util::ValueType;

std::vector<ColumnInfo> schema() {
  return {{"host", ValueType::String, "", "t"},
          {"cluster", ValueType::String, "", "t"},
          {"load1", ValueType::Real, "", "t"},
          {"load5", ValueType::Real, "", "t"},
          {"cpus", ValueType::Int, "", "t"},
          {"mem", ValueType::Real, "MB", "t"},
          {"recordedat", ValueType::Int, "us", "t"}};
}

bool bitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == ValueType::Real) {
    const double da = a.asReal(), db = b.asReal();
    std::uint64_t ua = 0, ub = 0;
    std::memcpy(&ua, &da, sizeof(ua));
    std::memcpy(&ub, &db, sizeof(ub));
    return ua == ub;
  }
  return a.compare(b) == std::strong_ordering::equal;
}

struct Outcome {
  std::unique_ptr<dbc::VectorResultSet> rs;
  bool threw = false;
  dbc::ErrorCode code = dbc::ErrorCode::Generic;
  std::string message;
};

template <typename Fn>
Outcome capture(Fn&& fn) {
  Outcome out;
  try {
    out.rs = fn();
  } catch (const SqlError& e) {
    out.threw = true;
    out.code = e.code();
    out.message = e.what();
  }
  return out;
}

void expectIdentical(const Outcome& row, const Outcome& ts,
                     const std::string& label) {
  ASSERT_EQ(row.threw, ts.threw) << label << (row.threw ? row.message
                                                        : ts.message);
  if (row.threw) {
    EXPECT_EQ(row.code, ts.code) << label;
    EXPECT_EQ(row.message, ts.message) << label;
    return;
  }
  const auto& rm = row.rs->metaData();
  const auto& tm = ts.rs->metaData();
  ASSERT_EQ(rm.columnCount(), tm.columnCount()) << label;
  for (std::size_t c = 0; c < rm.columnCount(); ++c) {
    EXPECT_EQ(rm.column(c).name, tm.column(c).name) << label;
    EXPECT_EQ(rm.column(c).type, tm.column(c).type) << label;
    EXPECT_EQ(rm.column(c).unit, tm.column(c).unit) << label;
    EXPECT_EQ(rm.column(c).table, tm.column(c).table) << label;
  }
  ASSERT_EQ(row.rs->rowCount(), ts.rs->rowCount()) << label;
  const auto& rrows = row.rs->rows();
  const auto& trows = ts.rs->rows();
  for (std::size_t r = 0; r < rrows.size(); ++r) {
    ASSERT_EQ(rrows[r].size(), trows[r].size()) << label;
    for (std::size_t c = 0; c < rrows[r].size(); ++c) {
      ASSERT_TRUE(bitEqual(rrows[r][c], trows[r][c]))
          << label << " row " << r << " col " << c << ": "
          << rrows[r][c].toString() << " vs " << trows[r][c].toString();
    }
  }
}

TEST(TsdbPropertyTest, RawPathMatchesRowStoreByteForByte) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sql::ExprGenerator gen(seed * 7919);
    util::SimClock clock;
    tsdb::TsdbOptions options;
    options.segmentRows = 7;  // several segments + a partial buffer
    options.segmentSpan = 0;
    options.tierQueries = false;  // pin the raw path; tiers are compared
                                  // against it in tsdb_store_test
    tsdb::TimeSeriesStore store(clock, options);
    Database tsDb;
    tsDb.attachTimeSeries(&store);
    tsDb.createTimeSeries("t", schema(), "recordedat");
    Database rowDb;
    rowDb.createTable("t", schema());

    for (int i = 0; i < 60; ++i) {
      const auto named = gen.genRow();
      std::vector<Value> row;
      for (const auto& col : schema()) {
        if (col.name == "recordedat") {
          row.emplace_back(static_cast<std::int64_t>(i) * 1000);
        } else {
          row.push_back(named.at(col.name));
        }
      }
      rowDb.insertRow("t", row);
      tsDb.insertRow("t", std::move(row));
    }

    for (int q = 0; q < 50; ++q) {
      const sql::SelectStatement stmt = gen.genSelect();
      const std::string label =
          "seed " + std::to_string(seed) + " query " + std::to_string(q);
      expectIdentical(capture([&] { return rowDb.query(stmt); }),
                      capture([&] { return tsDb.query(stmt); }), label);
    }
  }
}

TEST(TsdbPropertyTest, TimeConstrainedQueriesAgreeAcrossSegmentBoundaries) {
  // Time predicates drive the tsdb's phase-0 pruning (and segment
  // skipping); the row store just filters. Sweep ranges that land on,
  // inside, and between the 7-row segment boundaries.
  util::SimClock clock;
  tsdb::TsdbOptions options;
  options.segmentRows = 7;
  options.segmentSpan = 0;
  options.tierQueries = false;
  tsdb::TimeSeriesStore store(clock, options);
  Database tsDb;
  tsDb.attachTimeSeries(&store);
  tsDb.createTimeSeries("t", schema(), "recordedat");
  Database rowDb;
  rowDb.createTable("t", schema());
  sql::ExprGenerator gen(424242);
  for (int i = 0; i < 40; ++i) {
    const auto named = gen.genRow();
    std::vector<Value> row;
    for (const auto& col : schema()) {
      if (col.name == "recordedat") {
        row.emplace_back(static_cast<std::int64_t>(i) * 1000);
      } else {
        row.push_back(named.at(col.name));
      }
    }
    rowDb.insertRow("t", row);
    tsDb.insertRow("t", std::move(row));
  }
  for (const char* sql : {
           "SELECT * FROM t WHERE recordedat >= 7000 AND recordedat < 14000",
           "SELECT * FROM t WHERE recordedat >= 6999 AND recordedat <= 7000",
           "SELECT * FROM t WHERE recordedat BETWEEN 13000 AND 21000",
           "SELECT host, load1 FROM t WHERE recordedat > 38000",
           "SELECT * FROM t WHERE recordedat >= 100000",
           "SELECT cluster, COUNT(*), AVG(load1) FROM t "
           "WHERE recordedat >= 0 AND recordedat < 35000 GROUP BY cluster",
           "SELECT * FROM t WHERE recordedat >= 500 AND recordedat < 501",
       }) {
    expectIdentical(capture([&] { return rowDb.query(sql); }),
                    capture([&] { return tsDb.query(sql); }), sql);
  }
}

}  // namespace
}  // namespace gridrm::store
