// Aggregate functions and GROUP BY in the SQL engine. These run both
// against the historical store and -- because drivers share
// executeSelect -- against any data source.
#include <gtest/gtest.h>

#include <memory>

#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"

namespace gridrm::store {
namespace {

using dbc::SqlError;
using util::Value;
using util::ValueType;

std::unique_ptr<Database> makeDb() {
  auto db = std::make_unique<Database>();
  db->createTable("Samples",
                  {{"Host", ValueType::String, "", "Samples"},
                   {"Load", ValueType::Real, "", "Samples"},
                   {"Cpus", ValueType::Int, "", "Samples"}});
  db->insertRow("Samples", {Value("a"), Value(1.0), Value(2)});
  db->insertRow("Samples", {Value("a"), Value(3.0), Value(2)});
  db->insertRow("Samples", {Value("b"), Value(2.0), Value(4)});
  db->insertRow("Samples", {Value("b"), Value::null(), Value(4)});
  db->insertRow("Samples", {Value("c"), Value(5.0), Value(1)});
  return db;
}

TEST(AggregateTest, GlobalCountStar) {
  auto db = makeDb();
  auto rs = db->query("SELECT COUNT(*) FROM Samples");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 5);
  EXPECT_EQ(rs->metaData().column(0).name, "count(*)");
  EXPECT_EQ(rs->metaData().column(0).type, ValueType::Int);
}

TEST(AggregateTest, CountColumnSkipsNulls) {
  auto db = makeDb();
  auto rs = db->query("SELECT COUNT(Load) FROM Samples");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 4);
}

TEST(AggregateTest, SumAvgMinMax) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT SUM(Load), AVG(Load), MIN(Load), MAX(Load) FROM Samples");
  rs->next();
  EXPECT_DOUBLE_EQ(rs->get(0).asReal(), 11.0);
  EXPECT_DOUBLE_EQ(rs->get(1).asReal(), 11.0 / 4);  // NULL excluded
  EXPECT_DOUBLE_EQ(rs->get(2).asReal(), 1.0);
  EXPECT_DOUBLE_EQ(rs->get(3).asReal(), 5.0);
}

TEST(AggregateTest, SumOfIntsStaysInt) {
  auto db = makeDb();
  auto rs = db->query("SELECT SUM(Cpus) FROM Samples");
  rs->next();
  EXPECT_EQ(rs->get(0).type(), ValueType::Int);
  EXPECT_EQ(rs->get(0).asInt(), 13);
}

TEST(AggregateTest, GroupBy) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT Host, COUNT(*) AS n, AVG(Load) AS avgLoad FROM Samples "
      "GROUP BY Host ORDER BY Host");
  ASSERT_EQ(rs->rowCount(), 3u);
  rs->next();
  EXPECT_EQ(rs->getString("Host"), "a");
  EXPECT_EQ(rs->getInt("n"), 2);
  EXPECT_DOUBLE_EQ(rs->getReal("avgLoad"), 2.0);
  rs->next();
  EXPECT_EQ(rs->getString("Host"), "b");
  EXPECT_EQ(rs->getInt("n"), 2);
  EXPECT_DOUBLE_EQ(rs->getReal("avgLoad"), 2.0);  // NULL skipped
  rs->next();
  EXPECT_EQ(rs->getString("Host"), "c");
  EXPECT_EQ(rs->getInt("n"), 1);
}

TEST(AggregateTest, WhereAppliesBeforeGrouping) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT Host, COUNT(*) AS n FROM Samples WHERE Load > 1.5 "
      "GROUP BY Host ORDER BY Host");
  ASSERT_EQ(rs->rowCount(), 3u);
  rs->next();
  EXPECT_EQ(rs->getInt("n"), 1);  // only a's 3.0 survives
}

TEST(AggregateTest, OrderByAggregate) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT Host FROM Samples GROUP BY Host ORDER BY MAX(Load) DESC");
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "c");  // max 5.0
}

TEST(AggregateTest, LimitOnGroups) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT Host FROM Samples GROUP BY Host ORDER BY Host LIMIT 2");
  EXPECT_EQ(rs->rowCount(), 2u);
}

TEST(AggregateTest, AggregateInsideExpression) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT Host, SUM(Load) / SUM(Cpus) AS perCpu FROM Samples "
      "WHERE Load IS NOT NULL GROUP BY Host ORDER BY Host");
  rs->next();
  EXPECT_DOUBLE_EQ(rs->getReal("perCpu"), 4.0 / 4);  // a: (1+3)/(2+2)
}

TEST(AggregateTest, GlobalAggregateOverEmptyInput) {
  auto db = makeDb();
  auto rs = db->query("SELECT COUNT(*), AVG(Load) FROM Samples WHERE Load > 99");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 0);
  EXPECT_TRUE(rs->get(1).isNull());
}

TEST(AggregateTest, GroupByEmptyInputYieldsNoGroups) {
  auto db = makeDb();
  auto rs = db->query(
      "SELECT Host, COUNT(*) FROM Samples WHERE Load > 99 GROUP BY Host");
  EXPECT_EQ(rs->rowCount(), 0u);
}

TEST(AggregateTest, MinMaxOnStrings) {
  auto db = makeDb();
  auto rs = db->query("SELECT MIN(Host), MAX(Host) FROM Samples");
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "a");
  EXPECT_EQ(rs->get(1).asString(), "c");
}

TEST(AggregateTest, Errors) {
  auto db = makeDb();
  // Aggregates are not allowed in WHERE.
  EXPECT_THROW(db->query("SELECT Host FROM Samples WHERE COUNT(*) > 1"),
               SqlError);
  // Unknown function.
  EXPECT_THROW(db->query("SELECT MEDIAN(Load) FROM Samples"), SqlError);
  // SELECT * with GROUP BY is rejected.
  EXPECT_THROW(db->query("SELECT * FROM Samples GROUP BY Host"), SqlError);
  // SUM over strings.
  EXPECT_THROW(db->query("SELECT SUM(Host) FROM Samples"), SqlError);
  // Wrong arity.
  EXPECT_THROW(db->query("SELECT AVG(Load, Cpus) FROM Samples"), SqlError);
}

TEST(AggregateTest, CaseInsensitiveFunctionNames) {
  auto db = makeDb();
  auto rs = db->query("SELECT count(*), Avg(Load) FROM Samples");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 5);
}

TEST(AggregateTest, ToSqlRoundTrip) {
  const char* q =
      "SELECT Host, COUNT(*) AS n FROM Samples WHERE Load > 0 "
      "GROUP BY Host ORDER BY MAX(Load) DESC LIMIT 3";
  auto stmt = sql::parseSelect(q);
  auto again = sql::parseSelect(stmt.toSql());
  EXPECT_EQ(again.toSql(), stmt.toSql());
  EXPECT_EQ(again.groupBy.size(), 1u);
}

}  // namespace
}  // namespace gridrm::store
