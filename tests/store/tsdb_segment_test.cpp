// Segment seal/scan tests: inclusive time-bound edges, segment pruning,
// late materialisation accounting, and the never-prune sentinel for
// undatable batches.
#include "gridrm/store/tsdb/segment.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gridrm/sql/parser.hpp"

namespace gridrm::store::tsdb {
namespace {

using dbc::ColumnInfo;
using util::Value;
using util::ValueType;

const std::vector<ColumnInfo>& schema() {
  static const std::vector<ColumnInfo> cols = {
      {"Host", ValueType::String, "", "History"},
      {"Load1", ValueType::Real, "", "History"},
      {"RecordedAt", ValueType::Int, "us", "History"},
  };
  return cols;
}

SegmentPtr makeSegment(std::initializer_list<std::int64_t> times) {
  std::vector<std::vector<Value>> rows;
  int i = 0;
  for (const std::int64_t t : times) {
    rows.push_back({Value("n" + std::to_string(i++)),
                    Value(0.1 * static_cast<double>(i)), Value(t)});
  }
  return encodeSegment(schema(), /*timeColumn=*/2, rows);
}

std::vector<std::vector<Value>> scan(const Segment& segment,
                                     const TimeBounds& bounds,
                                     const sql::Expr* where, ScanStats& stats) {
  std::vector<std::vector<Value>> out;
  scanSegment(segment, bounds, where, "History", "", /*needed=*/
              std::vector<bool>(segment.columnCount(), true), out, stats);
  return out;
}

TEST(TsdbSegmentTest, TimeBoundsFromRows) {
  const auto seg = makeSegment({300, 100, 500, 200});
  EXPECT_EQ(seg->rowCount(), 4u);
  EXPECT_EQ(seg->minTime(), 100);
  EXPECT_EQ(seg->maxTime(), 500);
  EXPECT_GT(seg->bytes(), 0u);
  EXPECT_GT(seg->logicalBytes(), seg->bytes());
}

TEST(TsdbSegmentTest, InclusiveBoundaryEdges) {
  const auto seg = makeSegment({100, 200, 300, 400, 500});
  ScanStats stats;
  // Inclusive on both ends.
  EXPECT_EQ(scan(*seg, {200, 400}, nullptr, stats).size(), 3u);
  // Exactly one boundary sample.
  EXPECT_EQ(scan(*seg, {500, 500}, nullptr, stats).size(), 1u);
  EXPECT_EQ(scan(*seg, {100, 100}, nullptr, stats).size(), 1u);
  // Range between samples selects nothing but still scans the segment.
  const auto before = stats.segmentsScanned;
  EXPECT_TRUE(scan(*seg, {201, 299}, nullptr, stats).empty());
  EXPECT_EQ(stats.segmentsScanned, before + 1);
}

TEST(TsdbSegmentTest, DisjointBoundsPruneWholeSegment) {
  const auto seg = makeSegment({100, 200, 300});
  ScanStats stats;
  EXPECT_TRUE(scan(*seg, {301, 1000}, nullptr, stats).empty());
  EXPECT_TRUE(scan(*seg, {-50, 99}, nullptr, stats).empty());
  EXPECT_EQ(stats.segmentsPruned, 2u);
  EXPECT_EQ(stats.segmentsScanned, 0u);
  EXPECT_EQ(stats.rowsScanned, 0u);
}

TEST(TsdbSegmentTest, SingleRowSegment) {
  const auto seg = makeSegment({42});
  EXPECT_EQ(seg->minTime(), 42);
  EXPECT_EQ(seg->maxTime(), 42);
  ScanStats stats;
  const auto hit = scan(*seg, {42, 42}, nullptr, stats);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0][0].asString(), "n0");
  EXPECT_TRUE(scan(*seg, {43, 100}, nullptr, stats).empty());
}

TEST(TsdbSegmentTest, UndatableBatchGetsNeverPruneSentinel) {
  // All time cells NULL: min/max fall back to the full range so bounds
  // never prune the segment away...
  std::vector<std::vector<Value>> rows = {
      {Value("a"), Value(1.0), Value::null()},
      {Value("b"), Value(2.0), Value::null()}};
  const auto seg = encodeSegment(schema(), 2, rows);
  EXPECT_EQ(seg->minTime(), std::numeric_limits<util::TimePoint>::min());
  EXPECT_EQ(seg->maxTime(), std::numeric_limits<util::TimePoint>::max());
  ScanStats stats;
  // ...but a constrained scan drops the NULL-timed rows (a NULL fails
  // every comparison), while an unconstrained one keeps them.
  EXPECT_TRUE(scan(*seg, {0, 1000}, nullptr, stats).empty());
  EXPECT_EQ(scan(*seg, {}, nullptr, stats).size(), 2u);
}

TEST(TsdbSegmentTest, LateMaterialisationSkipsNonSurvivorCells) {
  std::vector<std::vector<Value>> rows;
  for (std::int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value("host" + std::to_string(i % 10)),
                    Value(static_cast<double>(i)), Value(i * 10)});
  }
  const auto seg = encodeSegment(schema(), 2, rows);
  const auto stmt =
      sql::parseSelect("SELECT Host FROM History WHERE Load1 >= 95");
  ScanStats stats;
  std::vector<std::vector<Value>> out;
  // Project only Host (+ the predicate's Load1 decoded on its own).
  scanSegment(*seg, {}, stmt.where.get(), "History", "",
              {true, false, false}, out, stats);
  ASSERT_EQ(out.size(), 5u);  // i = 95..99
  EXPECT_EQ(out[0][0].asString(), "host5");
  EXPECT_TRUE(out[0][2].isNull());  // unneeded column never materialised
  EXPECT_EQ(stats.rowsScanned, 100u);
  EXPECT_EQ(stats.rowsMaterialized, 5u);
  // Load1 decodes at all 100 candidates; Host only at the 5 survivors.
  EXPECT_EQ(stats.cellsMaterialized, 105u);
  EXPECT_EQ(stats.cellsSkipped, 95u);
}

TEST(TsdbSegmentTest, TimeBoundsNarrowCandidatesBeforePredicateDecode) {
  std::vector<std::vector<Value>> rows;
  for (std::int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value("h"), Value(static_cast<double>(i)), Value(i)});
  }
  const auto seg = encodeSegment(schema(), 2, rows);
  const auto stmt =
      sql::parseSelect("SELECT Load1 FROM History WHERE Load1 >= 0");
  ScanStats stats;
  std::vector<std::vector<Value>> out;
  scanSegment(*seg, {10, 19}, stmt.where.get(), "History", "",
              {false, true, false}, out, stats);
  EXPECT_EQ(out.size(), 10u);
  // Only the 10 in-bounds candidates ever reached the Load1 decoder.
  EXPECT_EQ(stats.cellsMaterialized, 10u);
}

TEST(TsdbSegmentTest, UnknownPredicateColumnThrowsLikeRowStore) {
  const auto seg = makeSegment({100, 200});
  const auto stmt =
      sql::parseSelect("SELECT Host FROM History WHERE NoSuch > 1");
  ScanStats stats;
  std::vector<std::vector<Value>> out;
  EXPECT_THROW(scanSegment(*seg, {}, stmt.where.get(), "History", "",
                           {true, true, true}, out, stats),
               dbc::SqlError);
}

TEST(TsdbSegmentTest, QualifiedReferencesHonourAlias) {
  const auto seg = makeSegment({100, 200, 300});
  const auto stmt = sql::parseSelect(
      "SELECT h.Host FROM History h WHERE h.RecordedAt >= 200");
  ScanStats stats;
  std::vector<std::vector<Value>> out;
  scanSegment(*seg, {}, stmt.where.get(), "History", "h",
              {true, true, true}, out, stats);
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace gridrm::store::tsdb
