// TimeSeriesStore behaviour: write-ahead buffer + sealing, tier-aware
// query rewrites (verified through TsdbStats counters -- the ISSUE PR6
// acceptance criterion), retention/TTL under a SimClock, Database
// routing, and the gateway's tsdbStats ACIL + store.retention_ms knob.
#include "gridrm/store/tsdb/tsdb.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gridrm/core/gateway.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"

namespace gridrm::store::tsdb {
namespace {

using dbc::ColumnInfo;
using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;
using util::ValueType;

constexpr util::Duration kSec = util::kSecond;

std::vector<ColumnInfo> historySchema() {
  return {{"Host", ValueType::String, "", "History"},
          {"Load", ValueType::Int, "", "History"},
          {"RecordedAt", ValueType::Int, "us", "History"}};
}

/// Two minutes of per-second samples for hosts "a" and "b";
/// Load cycles 0..9 so aggregates have closed-form expectations.
void ingestTwoMinutes(TimeSeriesStore& store) {
  store.createTable("History", historySchema(), "RecordedAt");
  for (std::int64_t s = 0; s < 120; ++s) {
    for (const char* host : {"a", "b"}) {
      store.append("History", {Value(host), Value(s % 10), Value(s * kSec)});
    }
  }
}

TsdbOptions smallSegments() {
  TsdbOptions o;
  o.segmentRows = 30;
  o.segmentSpan = 0;          // rows-only sealing
  o.bucket1m = 10 * kSec;     // shrunk buckets keep the test fast
  o.bucket1h = 60 * kSec;
  o.rawTtl = 0;
  o.rollup1mTtl = 0;
  o.rollup1hTtl = 0;
  return o;
}

std::unique_ptr<dbc::VectorResultSet> run(const TimeSeriesStore& store,
                                          const std::string& sql) {
  return store.query(sql::parseSelect(sql));
}

TEST(TsdbStoreTest, AppendSealAndCounters) {
  util::SimClock clock;
  TimeSeriesStore store(clock, smallSegments());
  ingestTwoMinutes(store);
  EXPECT_EQ(store.rowCount("History"), 240u);
  const TsdbStats s = store.stats();
  EXPECT_EQ(s.tables, 1u);
  EXPECT_EQ(s.appendedRows, 240u);
  EXPECT_EQ(s.seals, 8u);  // 240 rows / 30-row segments
  EXPECT_EQ(s.segments, 8u);
  EXPECT_EQ(s.sealedRows, 240u);
  EXPECT_EQ(s.activeRows, 0u);
  EXPECT_GT(s.encodedBytes, 0u);
  EXPECT_GT(s.compressionRatio(), 1.0);
  EXPECT_GT(s.bytesPerSample(), 0.0);
}

TEST(TsdbStoreTest, AppendErrorsMirrorRowStore) {
  util::SimClock clock;
  TimeSeriesStore store(clock);
  store.createTable("History", historySchema(), "RecordedAt");
  EXPECT_THROW(store.append("History", {Value("a")}), SqlError);
  EXPECT_THROW(store.append("NoSuch", {Value("a")}), SqlError);
  EXPECT_THROW(store.appendNamed("History", {"Host", "NoSuch"},
                                 {Value("a"), Value(1)}),
               SqlError);
  EXPECT_THROW(store.appendNamed("History", {"Host", "Host"},
                                 {Value("a"), Value("b")}),
               SqlError);
  // Unnamed columns become NULL.
  store.appendNamed("History", {"RecordedAt"}, {Value(std::int64_t{5})});
  auto rs = run(store, "SELECT Host, Load FROM History");
  ASSERT_EQ(rs->rowCount(), 1u);
  rs->next();
  EXPECT_TRUE(rs->get(0).isNull());
}

TEST(TsdbStoreTest, CoarseAlignedAggregateHitsHourTier) {
  util::SimClock clock;
  TimeSeriesStore store(clock, smallSegments());
  ingestTwoMinutes(store);
  auto rs = run(store,
                "SELECT Host, COUNT(*), SUM(Load), MIN(Load), MAX(Load) "
                "FROM History WHERE RecordedAt >= 0 AND "
                "RecordedAt < 120000000 GROUP BY Host ORDER BY Host");
  ASSERT_EQ(rs->rowCount(), 2u);
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "a");
  EXPECT_EQ(rs->get(1).asInt(), 120);
  EXPECT_EQ(rs->get(2).asInt(), 540);  // 12 cycles of 0+..+9
  EXPECT_EQ(rs->get(3).asInt(), 0);
  EXPECT_EQ(rs->get(4).asInt(), 9);
  const TsdbStats s = store.stats();
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.tierHits1h, 1u);  // [0, 120s) = two whole 60s buckets
  EXPECT_EQ(s.tierHits1m, 0u);
  EXPECT_EQ(s.rawQueries, 0u);
}

TEST(TsdbStoreTest, FinerAlignmentFallsToMinuteTier) {
  util::SimClock clock;
  TimeSeriesStore store(clock, smallSegments());
  ingestTwoMinutes(store);
  auto rs = run(store,
                "SELECT COUNT(*), SUM(Load), AVG(Load) FROM History "
                "WHERE RecordedAt >= 0 AND RecordedAt < 30000000");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 60);   // 30s x 2 hosts
  EXPECT_EQ(rs->get(1).asInt(), 270);
  EXPECT_DOUBLE_EQ(rs->get(2).asReal(), 4.5);
  const TsdbStats s = store.stats();
  // 30s aligns to the 10s buckets but not to the 60s ones.
  EXPECT_EQ(s.tierHits1m, 1u);
  EXPECT_EQ(s.tierHits1h, 0u);
}

TEST(TsdbStoreTest, UnalignedOrNonAggregateQueriesStayRaw) {
  util::SimClock clock;
  TimeSeriesStore store(clock, smallSegments());
  ingestTwoMinutes(store);
  // Unaligned lower bound.
  auto rs = run(store,
                "SELECT COUNT(*) FROM History "
                "WHERE RecordedAt >= 5000000 AND RecordedAt < 15000000");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 20);
  // Aligned but not aggregate-shaped.
  auto raw = run(store,
                 "SELECT Host FROM History "
                 "WHERE RecordedAt >= 0 AND RecordedAt < 30000000");
  EXPECT_EQ(raw->rowCount(), 60u);
  const TsdbStats s = store.stats();
  EXPECT_EQ(s.rawQueries, 2u);
  EXPECT_EQ(s.tierHits1m + s.tierHits1h, 0u);
  EXPECT_GT(s.scan.cellsSkipped, 0u);  // late materialisation at work
}

TEST(TsdbStoreTest, BufferedRowsInRangeDisableTierRewrite) {
  util::SimClock clock;
  TsdbOptions o = smallSegments();
  o.segmentRows = 100000;  // nothing seals: all rows stay in the buffer
  TimeSeriesStore store(clock, o);
  ingestTwoMinutes(store);
  auto rs = run(store,
                "SELECT COUNT(*) FROM History "
                "WHERE RecordedAt >= 0 AND RecordedAt < 120000000");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 240);
  const TsdbStats s = store.stats();
  EXPECT_EQ(s.rawQueries, 1u);  // rollups don't cover the buffer yet
  EXPECT_EQ(s.tierHits1m + s.tierHits1h, 0u);
}

TEST(TsdbStoreTest, TierRewriteMatchesRawTierAnswer) {
  util::SimClock clock;
  TimeSeriesStore tiered(clock, smallSegments());
  TsdbOptions rawOnly = smallSegments();
  rawOnly.tierQueries = false;
  TimeSeriesStore raw(clock, rawOnly);
  ingestTwoMinutes(tiered);
  ingestTwoMinutes(raw);
  for (const char* sql :
       {"SELECT Host, COUNT(*), SUM(Load), MIN(Load), MAX(Load), AVG(Load) "
        "FROM History WHERE RecordedAt >= 0 AND RecordedAt < 120000000 "
        "GROUP BY Host ORDER BY Host",
        "SELECT COUNT(Load), MAX(Load) FROM History "
        "WHERE RecordedAt >= 60000000 AND RecordedAt < 120000000",
        "SELECT Host, COUNT(*) FROM History "
        "WHERE RecordedAt >= 0 AND RecordedAt < 30000000 AND Host = 'a' "
        "GROUP BY Host"}) {
    auto a = run(tiered, sql);
    auto b = run(raw, sql);
    ASSERT_EQ(a->rowCount(), b->rowCount()) << sql;
    ASSERT_EQ(a->metaData().columnCount(), b->metaData().columnCount()) << sql;
    for (std::size_t c = 0; c < a->metaData().columnCount(); ++c) {
      EXPECT_EQ(a->metaData().column(c).name, b->metaData().column(c).name);
      EXPECT_EQ(a->metaData().column(c).type, b->metaData().column(c).type);
    }
    for (std::size_t r = 0; r < a->rows().size(); ++r) {
      for (std::size_t c = 0; c < a->rows()[r].size(); ++c) {
        EXPECT_EQ(a->rows()[r][c], b->rows()[r][c]) << sql;
      }
    }
  }
  const TsdbStats s = tiered.stats();
  EXPECT_EQ(s.tierHits1m + s.tierHits1h, 3u);
  EXPECT_EQ(raw.stats().rawQueries, 3u);
}

TEST(TsdbStoreTest, PruneDropsWholeOldSegmentsAndBufferRows) {
  util::SimClock clock;
  TsdbOptions o = smallSegments();
  o.segmentRows = 10;
  TimeSeriesStore store(clock, o);
  store.createTable("History", historySchema(), "RecordedAt");
  for (std::int64_t s = 0; s < 25; ++s) {  // 2 segments + 5 buffered
    store.append("History", {Value("a"), Value(1), Value(s * kSec)});
  }
  // An undatable buffer row survives any cutoff, like Table::prune.
  store.append("History", {Value("a"), Value(1), Value("not a time")});
  EXPECT_EQ(store.rowCount("History"), 26u);
  // Cutoff inside segment 2: only segment 1 (0..9s) is wholly older.
  EXPECT_EQ(store.pruneOlderThan("History", 15 * kSec), 10u);
  EXPECT_EQ(store.rowCount("History"), 16u);
  // Cutoff above everything: second segment + datable buffer rows go.
  EXPECT_EQ(store.pruneOlderThan("History", 1000 * kSec), 15u);
  EXPECT_EQ(store.rowCount("History"), 1u);
}

TEST(TsdbStoreTest, RollupsSurviveRawTtlEviction) {
  util::SimClock clock;
  TsdbOptions o = smallSegments();
  o.segmentRows = 10;
  o.rawTtl = 30 * kSec;
  o.rollup1mTtl = 500 * kSec;
  TimeSeriesStore store(clock, o);
  store.createTable("History", historySchema(), "RecordedAt");
  for (std::int64_t s = 0; s < 60; ++s) {
    store.append("History", {Value("a"), Value(1), Value(s * kSec)});
  }
  clock.advance(100 * kSec);
  const std::size_t evicted = store.retentionTick();
  EXPECT_EQ(evicted, 60u);  // every raw segment is past the 30s TTL
  EXPECT_EQ(store.rowCount("History"), 0u);
  TsdbStats s = store.stats();
  EXPECT_EQ(s.segments, 0u);
  EXPECT_EQ(s.evictedSegments, 6u);
  EXPECT_GT(s.rollupSegments, 0u);  // complete buckets sealed columnar
  EXPECT_GT(s.rollupRows1m, 0u);
  // The aggregate answer outlives the raw samples.
  auto rs = run(store,
                "SELECT COUNT(*), SUM(Load) FROM History "
                "WHERE RecordedAt >= 0 AND RecordedAt < 60000000");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 60);
  EXPECT_EQ(rs->get(1).asInt(), 60);
  EXPECT_GT(store.stats().tierHits1m, 0u);
  // Much later the rollup tier itself ages out.
  clock.advance(1000 * kSec);
  (void)store.retentionTick();
  EXPECT_EQ(store.stats().rollupRows1m, 0u);
}

TEST(TsdbStoreTest, ExtractTimeBoundsFromWhereTrees) {
  const auto bounds = [](const char* sql) {
    const auto stmt = sql::parseSelect(sql);
    return extractTimeBounds(stmt.where.get(), "RecordedAt", "History", "");
  };
  const auto b1 = bounds(
      "SELECT * FROM History WHERE RecordedAt >= 100 AND RecordedAt <= 200 "
      "AND Load > 1");
  EXPECT_EQ(b1.lo, 100);
  EXPECT_EQ(b1.hi, 200);
  const auto b2 = bounds("SELECT * FROM History WHERE RecordedAt > 100");
  EXPECT_EQ(b2.lo, 101);  // strict bound tightens by one microsecond
  const auto b3 =
      bounds("SELECT * FROM History WHERE RecordedAt BETWEEN 5 AND 9");
  EXPECT_EQ(b3.lo, 5);
  EXPECT_EQ(b3.hi, 9);
  const auto b4 = bounds("SELECT * FROM History WHERE 200 >= RecordedAt");
  EXPECT_EQ(b4.hi, 200);
  // OR cannot tighten: either side alone may admit any time.
  const auto b5 = bounds(
      "SELECT * FROM History WHERE RecordedAt >= 100 OR Load > 1");
  EXPECT_EQ(b5.lo, std::numeric_limits<util::TimePoint>::min());
  EXPECT_EQ(b5.hi, std::numeric_limits<util::TimePoint>::max());
}

TEST(TsdbStoreTest, DatabaseRoutesTimeSeriesTables) {
  util::SimClock clock;
  TimeSeriesStore store(clock, smallSegments());
  Database db;
  db.attachTimeSeries(&store);
  db.createTable("Live", {{"Name", ValueType::String, "", "Live"}});
  db.createTimeSeries("History", historySchema(), "RecordedAt");
  EXPECT_TRUE(db.hasTable("History"));
  EXPECT_TRUE(store.hasTable("History"));
  const auto names = db.tableNames();
  EXPECT_EQ(names.size(), 2u);
  db.insertRow("History", {Value("a"), Value(1), Value(5 * kSec)});
  db.execute("INSERT INTO History (Host, Load, RecordedAt) "
             "VALUES ('b', 2, 6000000)");
  EXPECT_EQ(db.rowCount("History"), 2u);
  auto rs = db.query("SELECT Host FROM History ORDER BY RecordedAt");
  ASSERT_EQ(rs->rowCount(), 2u);
  rs->next();
  EXPECT_EQ(rs->get(0).asString(), "a");
  EXPECT_EQ(db.pruneOlderThan("History", "RecordedAt", 6 * kSec), 1u);
  // Without an attached store the same call falls back to a row table.
  Database plain;
  plain.createTimeSeries("History", historySchema(), "RecordedAt");
  EXPECT_EQ(plain.timeSeries(), nullptr);
  plain.insertRow("History", {Value("a"), Value(1), Value(5 * kSec)});
  EXPECT_EQ(plain.rowCount("History"), 1u);
}

TEST(TsdbStoreTest, GatewayWiresStoreStatsAclAndRetention) {
  util::SimClock clock;
  net::Network network(clock);
  util::Config cfg;
  cfg.set("store.retention_ms", "600000");  // keep 10 minutes
  cfg.set("tsdb.segment_rows", "10");
  cfg.set("tsdb.bucket_1m_ms", "10000");
  core::Gateway gateway(network, clock, core::GatewayOptions::fromConfig(cfg));
  ASSERT_NE(gateway.timeSeriesStore(), nullptr);

  store::Database& db = gateway.database();
  db.createTimeSeries("HistoryProcessor", historySchema(), "RecordedAt");
  for (std::int64_t s = 0; s < 40; ++s) {
    db.insertRow("HistoryProcessor",
                 {Value("a"), Value(1), Value(s * kSec)});
  }
  const std::string token = gateway.openSession(core::Principal::admin());
  auto rs = gateway.submitHistoricalQuery(
      token, "SELECT COUNT(*) FROM HistoryProcessor");
  rs->next();
  EXPECT_EQ(rs->get(0).asInt(), 40);

  TsdbStats s = gateway.tsdbStats(token);
  EXPECT_EQ(s.appendedRows, 40u);
  EXPECT_EQ(s.queries, 1u);
  EXPECT_THROW((void)gateway.tsdbStats("bogus-token"), SqlError);
  const std::string guest =
      gateway.openSession(core::Principal{"g", {"guest"}});
  EXPECT_THROW((void)gateway.tsdbStats(guest), SqlError);

  // All samples are older than the 10-minute window once the clock
  // jumps far enough; the configured retention sweeps them.
  clock.advance(3600 * kSec);
  EXPECT_GE(gateway.enforceRetention(), 40u);  // EventHistory may add more
  EXPECT_EQ(db.rowCount("HistoryProcessor"), 0u);
}

TEST(TsdbStoreTest, GatewayExportsVecEngineStats) {
  util::SimClock clock;
  net::Network network(clock);
  core::Gateway gateway(network, clock, {});
  store::Database& db = gateway.database();
  db.createTable("Samples", {{"Host", ValueType::String, "", "Samples"},
                             {"Load", ValueType::Int, "", "Samples"}});
  for (std::int64_t i = 0; i < 100; ++i) {
    db.insertRow("Samples", {Value("a"), Value(i)});
  }
  sql::vec::setEngineEnabled(true);
  sql::vec::resetEngineStats();
  (void)db.query("SELECT Host FROM Samples WHERE Load >= 50");

  const std::string token = gateway.openSession(core::Principal::admin());
  const sql::vec::VecEngineStats s = gateway.vecEngineStats(token);
  EXPECT_EQ(s.vecStatements, 1u);
  EXPECT_EQ(s.vecRowsScanned, 100u);
  EXPECT_EQ(s.vecRowsFiltered, 50u);
  EXPECT_GE(s.vecBatches, 1u);
  // Same ACL as the other stats surfaces: a session is required.
  EXPECT_THROW((void)gateway.vecEngineStats("bogus-token"), SqlError);
}

TEST(TsdbStoreTest, DisabledTsdbFallsBackToRowTables) {
  util::SimClock clock;
  net::Network network(clock);
  util::Config cfg;
  cfg.set("tsdb.enabled", "false");
  core::Gateway gateway(network, clock, core::GatewayOptions::fromConfig(cfg));
  EXPECT_EQ(gateway.timeSeriesStore(), nullptr);
  gateway.database().createTimeSeries("HistoryX", historySchema(),
                                      "RecordedAt");
  gateway.database().insertRow("HistoryX", {Value("a"), Value(1), Value(1)});
  EXPECT_EQ(gateway.database().rowCount("HistoryX"), 1u);
  const std::string token = gateway.openSession(core::Principal::admin());
  const TsdbStats s = gateway.tsdbStats(token);  // empty, not a throw
  EXPECT_EQ(s.tables + s.appendedRows + s.queries, 0u);
}

TEST(TsdbStoreTest, TsdbOptionsFromConfig) {
  util::Config cfg = util::Config::parse(
      "tsdb.enabled = true\n"
      "tsdb.segment_rows = 512\n"
      "tsdb.segment_span_ms = 60000\n"
      "tsdb.raw_ttl_ms = 120000\n"
      "tsdb.rollup_1m_ttl_ms = 240000\n"
      "tsdb.rollup_1h_ttl_ms = 480000\n"
      "tsdb.bucket_1m_ms = 30000\n"
      "tsdb.bucket_1h_ms = 1800000\n"
      "tsdb.tier_queries = false\n"
      "tsdb.tier_min_span_buckets = 4\n");
  const TsdbOptions o = TsdbOptions::fromConfig(cfg);
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.segmentRows, 512u);
  EXPECT_EQ(o.segmentSpan, 60 * kSec);
  EXPECT_EQ(o.rawTtl, 120 * kSec);
  EXPECT_EQ(o.rollup1mTtl, 240 * kSec);
  EXPECT_EQ(o.rollup1hTtl, 480 * kSec);
  EXPECT_EQ(o.bucket1m, 30 * kSec);
  EXPECT_EQ(o.bucket1h, 1800 * kSec);
  EXPECT_FALSE(o.tierQueries);
  EXPECT_EQ(o.tierMinSpanBuckets, 4u);
  // Defaults match the declared literals.
  const TsdbOptions d = TsdbOptions::fromConfig(util::Config{});
  EXPECT_EQ(d.segmentRows, TsdbOptions{}.segmentRows);
  EXPECT_EQ(d.bucket1m, TsdbOptions{}.bucket1m);
}

}  // namespace
}  // namespace gridrm::store::tsdb
