// Federated query planner: plan-shape unit tests, merge edge cases,
// and the differential property battery — for hundreds of generated
// multi-site SELECT/WHERE/GROUP BY statements, executing the decomposed
// fragment on every site and merging the partials must produce a result
// *byte-identical* (serialized form, metadata included) to shipping all
// raw rows to the coordinator and executing the original statement over
// the site-grouped union.
//
// Rows come from ExprGenerator::genExactRow(), whose Reals are small
// dyadic rationals: per-site SUM/AVG partials then reassociate exactly,
// so even floating-point cells must match byte for byte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../sql/expr_generator.hpp"
#include "gridrm/dbc/result_io.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/store/federated_planner.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::store {
namespace {

using dbc::SqlError;
using util::Value;
using util::ValueType;

const std::vector<dbc::ColumnInfo>& tableColumns() {
  static const std::vector<dbc::ColumnInfo> kColumns = {
      {"host", ValueType::String, "", "t"},
      {"cluster", ValueType::String, "", "t"},
      {"load1", ValueType::Real, "", "t"},
      {"load5", ValueType::Real, "", "t"},
      {"cpus", ValueType::Int, "", "t"},
      {"mem", ValueType::Int, "", "t"}};
  return kColumns;
}

std::vector<Value> toRow(std::map<std::string, Value> m) {
  return {m["host"], m["cluster"], m["load1"], m["load5"], m["cpus"],
          m["mem"]};
}

/// Raw per-site row sets wrapped as SitePartials (the ship-all shape).
std::vector<SitePartial> rawSites(
    const std::vector<std::vector<std::vector<Value>>>& siteRows) {
  std::vector<SitePartial> sites;
  for (const auto& rows : siteRows) {
    sites.push_back(SitePartial{tableColumns(), rows});
  }
  return sites;
}

/// Serialized result (or a thrown-error marker) of the ship-all-rows
/// baseline: original statement over the site-grouped union.
std::string runShipAll(const FederatedPlan& plan,
                       const std::vector<std::vector<std::vector<Value>>>&
                           siteRows) {
  try {
    auto rs = mergeFederated(plan, rawSites(siteRows), /*decomposed=*/false);
    return dbc::serializeResultSet(*rs);
  } catch (const SqlError& e) {
    return std::string("SqlError: ") + e.what();
  } catch (const sql::EvalError& e) {
    return std::string("EvalError: ") + e.what();
  }
}

/// Serialized result (or marker) of the decomposed path: every site
/// executes plan.fragmentSql over its own rows (re-parsed from text,
/// exactly as a remote gateway would) and the coordinator merges the
/// partials.
std::string runDecomposed(const FederatedPlan& plan,
                          const std::vector<std::vector<std::vector<Value>>>&
                              siteRows) {
  try {
    const sql::SelectStatement frag = sql::parseSelect(plan.fragmentSql);
    std::vector<SitePartial> partials;
    for (const auto& rows : siteRows) {
      auto rs = executeSelect(frag, tableColumns(), rows);
      partials.push_back(
          SitePartial{rs->metaData().columns(), rs->rows()});
    }
    auto rs = mergeFederated(plan, partials, /*decomposed=*/true);
    return dbc::serializeResultSet(*rs);
  } catch (const SqlError& e) {
    return std::string("SqlError: ") + e.what();
  } catch (const sql::EvalError& e) {
    return std::string("EvalError: ") + e.what();
  }
}

void expectIdentical(const std::string& sqlText,
                     const std::vector<std::vector<std::vector<Value>>>&
                         siteRows) {
  const auto plan = planFederated(sql::parseSelect(sqlText));
  SCOPED_TRACE("sql=" + sqlText + " fragment=" + plan->fragmentSql);
  EXPECT_EQ(runDecomposed(*plan, siteRows), runShipAll(*plan, siteRows));
}

// ---------------------------------------------------------------------
// Plan shape.

TEST(FederatedPlannerTest, AvgDecomposesToSumCountPair) {
  const auto plan = planFederated(
      sql::parseSelect("SELECT host, avg(load1) FROM t GROUP BY host"));
  ASSERT_TRUE(plan->pushdown);
  EXPECT_TRUE(plan->aggregate);
  EXPECT_EQ(plan->keyCount, 1u);
  ASSERT_EQ(plan->aggSlots.size(), 1u);
  EXPECT_TRUE(plan->aggSlots[0].isAvg());
  const auto frag = sql::parseSelect(plan->fragmentSql);
  ASSERT_EQ(frag.items.size(), 3u);  // host, sum(load1), count(load1)
  EXPECT_EQ(frag.items[1].expr->toSql(), "sum(load1)");
  EXPECT_EQ(frag.items[2].expr->toSql(), "count(load1)");
  EXPECT_EQ(frag.groupBy.size(), 1u);
  EXPECT_EQ(plan->shipAllSql, "SELECT * FROM t");
}

TEST(FederatedPlannerTest, SharedPartialsAreDeduplicated) {
  // avg needs sum+count; the explicit sum and count reuse those same
  // fragment columns instead of shipping them twice.
  const auto plan = planFederated(sql::parseSelect(
      "SELECT avg(load1), sum(load1), count(load1) FROM t"));
  ASSERT_TRUE(plan->pushdown);
  const auto frag = sql::parseSelect(plan->fragmentSql);
  EXPECT_EQ(frag.items.size(), 2u);  // sum(load1), count(load1) only
  ASSERT_EQ(plan->aggSlots.size(), 3u);
  EXPECT_EQ(plan->aggSlots[0].partial, plan->aggSlots[1].partial);
  EXPECT_EQ(plan->aggSlots[0].countPartial, plan->aggSlots[2].partial);
}

TEST(FederatedPlannerTest, HiddenOrderKeysCarryUnprojectedColumns) {
  const auto plan = planFederated(
      sql::parseSelect("SELECT load1 FROM t ORDER BY load5 DESC LIMIT 3"));
  ASSERT_TRUE(plan->pushdown);
  EXPECT_FALSE(plan->aggregate);
  EXPECT_EQ(plan->hiddenKeys, 1u);
  const auto frag = sql::parseSelect(plan->fragmentSql);
  ASSERT_EQ(frag.items.size(), 2u);
  EXPECT_EQ(frag.items[1].alias, "__ok0");  // hidden re-sort column
  EXPECT_EQ(frag.items[1].expr->toSql(), "load5");
  ASSERT_EQ(frag.orderBy.size(), 1u);  // per-site top-N push-down
  EXPECT_TRUE(frag.orderBy[0].descending);
  ASSERT_TRUE(frag.limit.has_value());
  EXPECT_EQ(*frag.limit, 3);
}

TEST(FederatedPlannerTest, FallbackGates) {
  // Statements the engine rejects (or we cannot merge) must NOT be
  // decomposed: shipping raw rows reproduces single-site behaviour,
  // errors included.
  const char* kFallbacks[] = {
      "SELECT host FROM t WHERE count(*) > 1",        // aggregate in WHERE
      "SELECT median(load1) FROM t",                  // unknown function
      "SELECT count(load1, load5) FROM t",            // wrong arity
      "SELECT count(*) FROM t GROUP BY sum(load1)",   // aggregate group key
      "SELECT * FROM t GROUP BY host",                // star with GROUP BY
      "SELECT sum(count(load1)) FROM t",              // nested aggregate
  };
  for (const char* text : kFallbacks) {
    SCOPED_TRACE(text);
    const auto plan = planFederated(sql::parseSelect(text));
    EXPECT_FALSE(plan->pushdown);
    EXPECT_EQ(plan->fragmentSql, plan->shipAllSql);
    // Error parity: both paths surface the same engine error.
    std::vector<std::vector<std::vector<Value>>> siteRows = {
        {toRow({{"host", Value("a")}, {"load1", Value(1.0)}})},
        {toRow({{"host", Value("b")}, {"load1", Value(2.0)}})}};
    EXPECT_EQ(runDecomposed(*plan, siteRows), runShipAll(*plan, siteRows));
  }
}

// ---------------------------------------------------------------------
// Merge edge cases.

std::vector<Value> row(const char* host, Value load1, Value cpus) {
  return toRow({{"host", host ? Value(host) : Value::null()},
                {"cluster", Value("c")},
                {"load1", std::move(load1)},
                {"load5", Value(0.5)},
                {"cpus", std::move(cpus)},
                {"mem", Value(1)}});
}

TEST(FederatedMergeTest, NullGroupKeysFormTheirOwnGroup) {
  std::vector<std::vector<std::vector<Value>>> sites = {
      {row("a", Value(1.0), Value(2)), row(nullptr, Value(3.0), Value(2))},
      {row(nullptr, Value(5.0), Value(4)), row("a", Value(7.0), Value(4))}};
  expectIdentical(
      "SELECT host, count(*), sum(load1) FROM t GROUP BY host ORDER BY host",
      sites);
}

TEST(FederatedMergeTest, EmptySitesContributeNothing) {
  std::vector<std::vector<std::vector<Value>>> sites = {
      {row("a", Value(1.0), Value(2))},
      {},  // a site owning zero matching rows
      {row("b", Value(2.0), Value(4))}};
  expectIdentical("SELECT host, count(*) FROM t GROUP BY host", sites);
  expectIdentical("SELECT load1 FROM t ORDER BY load1", sites);
}

TEST(FederatedMergeTest, AllSitesEmptyGlobalAggregate) {
  std::vector<std::vector<std::vector<Value>>> sites = {{}, {}, {}};
  const auto plan = planFederated(sql::parseSelect(
      "SELECT count(*), avg(load1), min(cpus) FROM t"));
  ASSERT_TRUE(plan->pushdown);
  EXPECT_EQ(runDecomposed(*plan, sites), runShipAll(*plan, sites));
  // And the value is the engine's empty-input row: COUNT 0, rest NULL.
  const sql::SelectStatement frag = sql::parseSelect(plan->fragmentSql);
  std::vector<SitePartial> partials;
  for (const auto& rows : sites) {
    auto rs = executeSelect(frag, tableColumns(), rows);
    partials.push_back(SitePartial{rs->metaData().columns(), rs->rows()});
  }
  auto merged = mergeFederated(*plan, partials, /*decomposed=*/true);
  ASSERT_EQ(merged->rowCount(), 1u);
  merged->next();
  EXPECT_EQ(merged->get(0).asInt(), 0);
  EXPECT_TRUE(merged->get(1).isNull());
  EXPECT_TRUE(merged->get(2).isNull());
}

TEST(FederatedMergeTest, AvgSkipsNullOnlySites) {
  std::vector<std::vector<std::vector<Value>>> sites = {
      {row("a", Value(1.0), Value(1)), row("a", Value(2.0), Value(1))},
      {row("a", Value::null(), Value(1)), row("a", Value::null(), Value(1))},
      {row("a", Value(3.0), Value(1))}};
  const auto plan = planFederated(sql::parseSelect(
      "SELECT avg(load1), count(load1), count(*) FROM t"));
  EXPECT_EQ(runDecomposed(*plan, sites), runShipAll(*plan, sites));
  const sql::SelectStatement frag = sql::parseSelect(plan->fragmentSql);
  std::vector<SitePartial> partials;
  for (const auto& rows : sites) {
    auto rs = executeSelect(frag, tableColumns(), rows);
    partials.push_back(SitePartial{rs->metaData().columns(), rs->rows()});
  }
  auto merged = mergeFederated(*plan, partials, /*decomposed=*/true);
  merged->next();
  EXPECT_DOUBLE_EQ(merged->get(0).asReal(), 2.0);  // NULL-only site skipped
  EXPECT_EQ(merged->get(1).asInt(), 3);
  EXPECT_EQ(merged->get(2).asInt(), 5);
}

TEST(FederatedMergeTest, SumIsIntOnlyWhenEverySitePartialIsInt) {
  std::vector<std::vector<std::vector<Value>>> allInt = {
      {row("a", Value(1.0), Value(2))}, {row("b", Value(1.0), Value(3))}};
  std::vector<std::vector<std::vector<Value>>> mixed = {
      {row("a", Value(1.0), Value(2))},
      {toRow({{"host", Value("b")},
              {"cluster", Value("c")},
              {"load1", Value(1.0)},
              {"load5", Value(0.5)},
              {"cpus", Value(3.5)},  // a Real sneaks into an Int column
              {"mem", Value(1)}})}};
  const auto plan = planFederated(sql::parseSelect("SELECT sum(cpus) FROM t"));
  for (const auto* sites : {&allInt, &mixed}) {
    EXPECT_EQ(runDecomposed(*plan, *sites), runShipAll(*plan, *sites));
  }
  const sql::SelectStatement frag = sql::parseSelect(plan->fragmentSql);
  auto partialsOf = [&](const std::vector<std::vector<std::vector<Value>>>&
                            sites) {
    std::vector<SitePartial> partials;
    for (const auto& rows : sites) {
      auto rs = executeSelect(frag, tableColumns(), rows);
      partials.push_back(SitePartial{rs->metaData().columns(), rs->rows()});
    }
    return partials;
  };
  auto a = mergeFederated(*plan, partialsOf(allInt), true);
  a->next();
  EXPECT_EQ(a->get(0).type(), ValueType::Int);
  EXPECT_EQ(a->get(0).asInt(), 5);
  auto b = mergeFederated(*plan, partialsOf(mixed), true);
  b->next();
  EXPECT_EQ(b->get(0).type(), ValueType::Real);
  EXPECT_DOUBLE_EQ(b->get(0).asReal(), 5.5);
}

TEST(FederatedMergeTest, MinMaxTieKeepsFirstSiteOccurrence) {
  // Site 1 holds Int 2, site 2 Real 2.0: they compare equal, so the
  // merge must keep site 1's Int — exactly what the union-order
  // baseline does.
  std::vector<std::vector<std::vector<Value>>> sites = {
      {row("a", Value(5.0), Value(2))},
      {toRow({{"host", Value("b")},
              {"cluster", Value("c")},
              {"load1", Value(7.0)},
              {"load5", Value(0.5)},
              {"cpus", Value(2.0)},
              {"mem", Value(1)}})}};
  const auto plan = planFederated(sql::parseSelect("SELECT min(cpus) FROM t"));
  EXPECT_EQ(runDecomposed(*plan, sites), runShipAll(*plan, sites));
  const sql::SelectStatement frag = sql::parseSelect(plan->fragmentSql);
  std::vector<SitePartial> partials;
  for (const auto& rows : sites) {
    auto rs = executeSelect(frag, tableColumns(), rows);
    partials.push_back(SitePartial{rs->metaData().columns(), rs->rows()});
  }
  auto merged = mergeFederated(*plan, partials, true);
  merged->next();
  EXPECT_EQ(merged->get(0).type(), ValueType::Int);
}

TEST(FederatedMergeTest, NoSitesDefersToEngineOverEmptyUnion) {
  const auto plan = planFederated(
      sql::parseSelect("SELECT host, count(*) FROM t GROUP BY host"));
  auto merged = mergeFederated(*plan, {}, /*decomposed=*/true);
  auto baseline = executeSelect(plan->original, {}, {});
  EXPECT_EQ(dbc::serializeResultSet(*merged),
            dbc::serializeResultSet(*baseline));
}

// ---------------------------------------------------------------------
// Differential property battery: hundreds of generated multi-site
// statements, byte-identical decomposed vs ship-all results.

class FederatedDifferentialProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FederatedDifferentialProperty, DecomposedMergeMatchesShipAll) {
  const std::uint64_t seed = GetParam();
  sql::ExprGenerator gen(seed * 7919 + 13);
  util::Rng layout(seed * 104729 + 1);

  int pushdowns = 0;
  int aggregates = 0;
  for (int round = 0; round < 12; ++round) {
    // Normalise through the parser, exactly as PlanCache::federated
    // does with the caller's SQL text.
    const sql::SelectStatement stmt =
        sql::parseSelect(gen.genFederatedSelect().toSql());
    const auto plan = planFederated(stmt);
    if (plan->pushdown) ++pushdowns;
    if (plan->aggregate) ++aggregates;

    // 1-4 sites, each 0-9 rows (empty sites included).
    std::vector<std::vector<std::vector<Value>>> siteRows(
        1 + layout.below(4));
    for (auto& rows : siteRows) {
      const std::size_t n = layout.below(10);
      for (std::size_t i = 0; i < n; ++i) rows.push_back(toRow(gen.genExactRow()));
    }

    SCOPED_TRACE("seed=" + std::to_string(seed) + " round=" +
                 std::to_string(round) + " sql=" + stmt.toSql() +
                 " fragment=" + plan->fragmentSql);
    EXPECT_EQ(runDecomposed(*plan, siteRows), runShipAll(*plan, siteRows));
  }
  // The generator must actually exercise decomposition, not just the
  // ship-all fallback.
  EXPECT_GT(pushdowns, 0);
  EXPECT_GT(aggregates, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederatedDifferentialProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace gridrm::store
