#include "gridrm/util/strings.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitNonEmptyDropsEmptyFields) {
  EXPECT_EQ(splitNonEmpty("a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(splitNonEmpty("", ',').empty());
  EXPECT_TRUE(splitNonEmpty(",,,", ',').empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(toLower("MiXeD"), "mixed");
  EXPECT_EQ(toUpper("MiXeD"), "MIXED");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("jdbc:snmp://x", "jdbc:"));
  EXPECT_FALSE(startsWith("jd", "jdbc:"));
  EXPECT_TRUE(endsWith("file.xml", ".xml"));
  EXPECT_FALSE(endsWith("xml", ".xml"));
}

TEST(StringsTest, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("SELECT", "select"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replaceAll("a'b'c", "'", "''"), "a''b''c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("x", "", "y"), "x");  // empty needle is a no-op
}

}  // namespace
}  // namespace gridrm::util
