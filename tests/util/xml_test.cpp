#include "gridrm/util/xml.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

TEST(XmlTest, ParseSimpleDocument) {
  auto root = parseXml("<ROOT A=\"1\"><CHILD B=\"x\"/></ROOT>");
  EXPECT_EQ(root->name, "ROOT");
  EXPECT_EQ(root->attr("A"), "1");
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0]->name, "CHILD");
  EXPECT_EQ(root->children[0]->attr("B"), "x");
}

TEST(XmlTest, ChildLookupHelpers) {
  auto root = parseXml("<R><A N=\"1\"/><B/><A N=\"2\"/></R>");
  ASSERT_NE(root->child("A"), nullptr);
  EXPECT_EQ(root->child("A")->attr("N"), "1");
  EXPECT_EQ(root->child("Z"), nullptr);
  EXPECT_EQ(root->childrenNamed("A").size(), 2u);
  EXPECT_EQ(root->attr("missing", "fb"), "fb");
}

TEST(XmlTest, PrologAndCommentsSkipped) {
  auto root = parseXml(
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<R><!-- inner --><C/></R>");
  EXPECT_EQ(root->name, "R");
  EXPECT_EQ(root->children.size(), 1u);
}

TEST(XmlTest, AttributeEscapes) {
  auto root = parseXml("<R V=\"a&lt;b&gt;c&amp;d&quot;e\"/>");
  EXPECT_EQ(root->attr("V"), "a<b>c&d\"e");
}

TEST(XmlTest, SingleQuotedAttributes) {
  auto root = parseXml("<R V='hello'/>");
  EXPECT_EQ(root->attr("V"), "hello");
}

TEST(XmlTest, TextContentIsIgnoredNotFatal) {
  auto root = parseXml("<R>some text<C/>more</R>");
  EXPECT_EQ(root->children.size(), 1u);
}

TEST(XmlTest, Errors) {
  EXPECT_THROW(parseXml(""), XmlError);
  EXPECT_THROW(parseXml("<R>"), XmlError);
  EXPECT_THROW(parseXml("<R></S>"), XmlError);
  EXPECT_THROW(parseXml("<R A=1/>"), XmlError);
  EXPECT_THROW(parseXml("<R/><Extra/>"), XmlError);
}

TEST(XmlTest, WriterProducesParseableOutput) {
  XmlWriter w;
  w.open("GANGLIA_XML").attr("VERSION", "2.5.7");
  w.open("CLUSTER").attr("NAME", "my \"cluster\" <x>");
  w.open("HOST").attr("NAME", "n0").close();
  w.open("HOST").attr("NAME", "n1").close();
  w.close();  // CLUSTER
  w.close();  // GANGLIA_XML
  const std::string doc = w.take();

  auto root = parseXml(doc);
  EXPECT_EQ(root->name, "GANGLIA_XML");
  const XmlElement* cluster = root->child("CLUSTER");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->attr("NAME"), "my \"cluster\" <x>");
  EXPECT_EQ(cluster->childrenNamed("HOST").size(), 2u);
}

TEST(XmlTest, WriterErrors) {
  XmlWriter w;
  EXPECT_THROW(w.attr("k", "v"), XmlError);  // no open tag
  EXPECT_THROW(w.close(), XmlError);         // nothing to close
  w.open("R");
  EXPECT_THROW(w.take(), XmlError);  // unclosed element
}

}  // namespace
}  // namespace gridrm::util
