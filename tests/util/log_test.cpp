#include "gridrm/util/log.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().captureToMemory(true);
    Logger::instance().setLevel(LogLevel::Debug);
  }
  void TearDown() override {
    Logger::instance().captureToMemory(false);
    Logger::instance().setLevel(LogLevel::Warn);
  }
};

TEST_F(LogTest, FormatPlaceholders) {
  EXPECT_EQ(format("a {} c {}", "b", 42), "a b c 42");
  EXPECT_EQ(format("no placeholders"), "no placeholders");
  EXPECT_EQ(format("{} extra args ignored tail", 1), "1 extra args ignored tail");
  EXPECT_EQ(format("missing {} {}", 1), "missing 1 {}");
  EXPECT_EQ(format("{}{}{}", 1, 2, 3), "123");
  EXPECT_EQ(format("pi = {}", 3.5), "pi = 3.5");
}

TEST_F(LogTest, LevelsFilter) {
  Logger::instance().setLevel(LogLevel::Warn);
  logDebug("test", "should not appear");
  logInfo("test", "nor this");
  logWarn("test", "warning {}", 1);
  logError("test", "error {}", 2);
  auto lines = Logger::instance().drainCaptured();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[WARN] test: warning 1");
  EXPECT_EQ(lines[1], "[ERROR] test: error 2");
}

TEST_F(LogTest, DebugLevelPassesEverything) {
  logDebug("c", "d");
  logInfo("c", "i");
  EXPECT_EQ(Logger::instance().drainCaptured().size(), 2u);
}

TEST_F(LogTest, OffSilencesAll) {
  Logger::instance().setLevel(LogLevel::Off);
  logError("c", "even errors");
  EXPECT_TRUE(Logger::instance().drainCaptured().empty());
}

TEST_F(LogTest, DrainEmpties) {
  logWarn("c", "x");
  EXPECT_EQ(Logger::instance().drainCaptured().size(), 1u);
  EXPECT_TRUE(Logger::instance().drainCaptured().empty());
}

}  // namespace
}  // namespace gridrm::util
