#include "gridrm/util/clock.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

TEST(SimClockTest, StartsAtGivenTime) {
  SimClock clock(1000);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(SimClockTest, AdvanceMovesTime) {
  SimClock clock;
  clock.advance(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
  clock.advance(250 * kMillisecond);
  EXPECT_EQ(clock.now(), 5 * kSecond + 250 * kMillisecond);
}

TEST(SimClockTest, SleepForAdvancesInsteadOfBlocking) {
  SimClock clock;
  clock.sleepFor(3600 * kSecond);  // must return immediately
  EXPECT_EQ(clock.now(), 3600 * kSecond);
}

TEST(SimClockTest, SetNowJumps) {
  SimClock clock(50);
  clock.setNow(7);
  EXPECT_EQ(clock.now(), 7);
}

TEST(SimClockTest, AdvanceToNeverMovesBackwards) {
  SimClock clock(100);
  clock.advanceTo(40);
  EXPECT_EQ(clock.now(), 100);
  clock.advanceTo(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advanceTo(101);
  EXPECT_EQ(clock.now(), 101);
}

TEST(SimClockTest, SingleWriterModeAllowsSequentialWrites) {
  // The assertion only targets *concurrent* writers; one thread
  // advancing repeatedly (the event loop) must stay silent.
  SimClock clock;
  clock.setSingleWriter(true);
  clock.advance(10);
  clock.advanceTo(25);
  clock.setNow(30);
  EXPECT_EQ(clock.now(), 30);
  clock.setSingleWriter(false);
  clock.advance(5);
  EXPECT_EQ(clock.now(), 35);
}

TEST(SystemClockTest, MonotoneNonDecreasing) {
  SystemClock clock;
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_LE(a, b);
}

TEST(SystemClockTest, SleepForAdvancesWallTime) {
  SystemClock clock;
  const TimePoint before = clock.now();
  clock.sleepFor(2 * kMillisecond);
  EXPECT_GE(clock.now() - before, 2 * kMillisecond);
}

}  // namespace
}  // namespace gridrm::util
