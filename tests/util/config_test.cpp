#include "gridrm/util/config.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

TEST(ConfigTest, ParseBasics) {
  Config cfg = Config::parse(
      "# comment\n"
      "name = gateway-a\n"
      "port=8710\n"
      "  cache.ttl = 5000  \n"
      "\n"
      "verbose = true\n"
      "ratio = 0.75\n"
      "drivers = snmp, ganglia ,nws\n");
  EXPECT_EQ(cfg.getString("name"), "gateway-a");
  EXPECT_EQ(cfg.getInt("port"), 8710);
  EXPECT_EQ(cfg.getInt("cache.ttl"), 5000);
  EXPECT_TRUE(cfg.getBool("verbose"));
  EXPECT_DOUBLE_EQ(cfg.getReal("ratio"), 0.75);
  EXPECT_EQ(cfg.getList("drivers"),
            (std::vector<std::string>{"snmp", "ganglia", "nws"}));
}

TEST(ConfigTest, Fallbacks) {
  Config cfg;
  EXPECT_EQ(cfg.getString("missing", "d"), "d");
  EXPECT_EQ(cfg.getInt("missing", 9), 9);
  EXPECT_TRUE(cfg.getBool("missing", true));
  EXPECT_TRUE(cfg.getList("missing").empty());
}

TEST(ConfigTest, BadValuesFallBack) {
  Config cfg = Config::parse("n = notanumber\n");
  EXPECT_EQ(cfg.getInt("n", 3), 3);
  EXPECT_DOUBLE_EQ(cfg.getReal("n", 1.5), 1.5);
}

TEST(ConfigTest, SetAndHas) {
  Config cfg;
  EXPECT_FALSE(cfg.has("k"));
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.has("k"));
  EXPECT_EQ(cfg.getString("k"), "v");
}

TEST(ConfigTest, LinesWithoutEqualsIgnored) {
  Config cfg = Config::parse("garbage line\nk = v\n");
  EXPECT_EQ(cfg.values().size(), 1u);
}

}  // namespace
}  // namespace gridrm::util
