#include "gridrm/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace gridrm::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workerCount(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ShutdownCompletesPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { ++done; });
    }
    pool.shutdown();
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedNotFatal) {
  ThreadPool pool(1);
  pool.shutdown();
  std::atomic<bool> ran{false};
  std::future<void> f;
  EXPECT_NO_THROW(f = pool.submit([&] { ran = true; }));
  // The task is dropped, never run, and the future reports the broken
  // promise instead of blocking forever.
  EXPECT_THROW(f.get(), std::future_error);
  EXPECT_FALSE(ran.load());
}

}  // namespace
}  // namespace gridrm::util
