#include "gridrm/util/value.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.isNull());
  EXPECT_EQ(v.type(), ValueType::Null);
  EXPECT_FALSE(v.isNumeric());
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(true).type(), ValueType::Bool);
  EXPECT_EQ(Value(std::int64_t{7}).type(), ValueType::Int);
  EXPECT_EQ(Value(7).type(), ValueType::Int);
  EXPECT_EQ(Value(3.5).type(), ValueType::Real);
  EXPECT_EQ(Value("x").type(), ValueType::String);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::String);
}

TEST(ValueTest, ExactAccessors) {
  EXPECT_TRUE(Value(true).asBool());
  EXPECT_EQ(Value(42).asInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.25).asReal(), 2.25);
  EXPECT_EQ(Value("hello").asString(), "hello");
}

TEST(ValueTest, WrongAccessorThrows) {
  EXPECT_THROW(Value(42).asString(), std::bad_variant_access);
  EXPECT_THROW(Value("x").asInt(), std::bad_variant_access);
}

TEST(ValueTest, ToIntCoercions) {
  EXPECT_EQ(Value().toInt(-1), -1);
  EXPECT_EQ(Value(true).toInt(), 1);
  EXPECT_EQ(Value(7).toInt(), 7);
  EXPECT_EQ(Value(2.6).toInt(), 3);  // rounds
  EXPECT_EQ(Value("123").toInt(), 123);
  EXPECT_EQ(Value("12.7").toInt(), 13);
  EXPECT_EQ(Value("junk").toInt(-5), -5);
}

TEST(ValueTest, ToRealCoercions) {
  EXPECT_DOUBLE_EQ(Value().toReal(1.5), 1.5);
  EXPECT_DOUBLE_EQ(Value(false).toReal(), 0.0);
  EXPECT_DOUBLE_EQ(Value(7).toReal(), 7.0);
  EXPECT_DOUBLE_EQ(Value("0.25").toReal(), 0.25);
  EXPECT_DOUBLE_EQ(Value("nope").toReal(9.0), 9.0);
}

TEST(ValueTest, ToBoolCoercions) {
  EXPECT_TRUE(Value(1).toBool());
  EXPECT_FALSE(Value(0).toBool());
  EXPECT_TRUE(Value("true").toBool());
  EXPECT_TRUE(Value("1").toBool());
  EXPECT_FALSE(Value("false").toBool());
  EXPECT_FALSE(Value("0").toBool());
  EXPECT_TRUE(Value("maybe").toBool(true));
  EXPECT_FALSE(Value().toBool());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().toString(), "NULL");
  EXPECT_EQ(Value(true).toString(), "true");
  EXPECT_EQ(Value(42).toString(), "42");
  EXPECT_EQ(Value(0.25).toString(), "0.25");
  EXPECT_EQ(Value("s").toString(), "s");
}

TEST(ValueTest, ParsePicksMostSpecificType) {
  EXPECT_EQ(Value::parse("42").type(), ValueType::Int);
  EXPECT_EQ(Value::parse("42.5").type(), ValueType::Real);
  EXPECT_EQ(Value::parse("true").type(), ValueType::Bool);
  EXPECT_EQ(Value::parse("NULL").type(), ValueType::Null);
  EXPECT_EQ(Value::parse("hello").type(), ValueType::String);
  // A partial number is a string, not a truncated parse.
  EXPECT_EQ(Value::parse("42x").type(), ValueType::String);
}

TEST(ValueTest, ParseRoundTripsToString) {
  for (const Value& v :
       {Value(17), Value(-3), Value(2.5), Value(true), Value::null()}) {
    EXPECT_EQ(Value::parse(v.toString()), v) << v.toString();
  }
}

TEST(ValueTest, CompareNumericAcrossTypes) {
  EXPECT_EQ(Value(2).compare(Value(2.0)), std::strong_ordering::equal);
  EXPECT_EQ(Value(2).compare(Value(2.5)), std::strong_ordering::less);
  EXPECT_EQ(Value(3.1).compare(Value(3)), std::strong_ordering::greater);
}

TEST(ValueTest, CompareNullSortsFirst) {
  EXPECT_TRUE(Value::null() < Value(0));
  EXPECT_TRUE(Value::null() < Value("a"));
  EXPECT_EQ(Value::null().compare(Value::null()), std::strong_ordering::equal);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_TRUE(Value("abc") < Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_FALSE(Value("x") == Value("y"));
}

TEST(ValueTest, EqualityAcrossDifferentTypesIsFalse) {
  EXPECT_FALSE(Value("1") == Value(1));
  EXPECT_FALSE(Value(true) == Value(1));
}

}  // namespace
}  // namespace gridrm::util
