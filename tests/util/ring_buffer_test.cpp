#include "gridrm/util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace gridrm::util {
namespace {

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> buf(4);
  EXPECT_TRUE(buf.push(1));
  EXPECT_TRUE(buf.push(2));
  EXPECT_TRUE(buf.push(3));
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_EQ(buf.pop(), 2);
  EXPECT_EQ(buf.pop(), 3);
}

TEST(RingBufferTest, TryPopEmptyReturnsNullopt) {
  RingBuffer<int> buf(2);
  EXPECT_EQ(buf.tryPop(), std::nullopt);
  buf.push(5);
  EXPECT_EQ(buf.tryPop(), 5);
  EXPECT_EQ(buf.tryPop(), std::nullopt);
}

TEST(RingBufferTest, DropNewestShedsWhenFull) {
  RingBuffer<int> buf(2, OverflowPolicy::DropNewest);
  EXPECT_TRUE(buf.push(1));
  EXPECT_TRUE(buf.push(2));
  EXPECT_FALSE(buf.push(3));  // dropped
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_TRUE(buf.push(4));  // space again
  EXPECT_EQ(buf.dropped(), 1u);
}

TEST(RingBufferTest, CloseUnblocksPop) {
  RingBuffer<int> buf(2);
  std::thread closer([&] { buf.close(); });
  EXPECT_EQ(buf.pop(), std::nullopt);
  closer.join();
}

TEST(RingBufferTest, CloseDrainsRemainingItems) {
  RingBuffer<int> buf(4);
  buf.push(1);
  buf.push(2);
  buf.close();
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_EQ(buf.pop(), 2);
  EXPECT_EQ(buf.pop(), std::nullopt);
  EXPECT_FALSE(buf.push(3));  // closed
}

TEST(RingBufferTest, BlockPolicyIsLossless) {
  // Producer pushes more than capacity while a consumer drains: with
  // Block policy every element must arrive exactly once, in order.
  RingBuffer<int> buf(8, OverflowPolicy::Block);
  constexpr int kCount = 2000;
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto v = buf.pop()) received.push_back(*v);
  });
  for (int i = 0; i < kCount; ++i) ASSERT_TRUE(buf.push(i));
  buf.close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(received[i], i);
}

TEST(RingBufferTest, MultipleProducersLoseNothingUnderBlock) {
  RingBuffer<int> buf(16, OverflowPolicy::Block);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto v = buf.pop()) received.push_back(*v);
  });
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&buf, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          buf.push(p * kPerProducer + i);
        }
      });
    }
    for (auto& t : producers) t.join();
  }
  buf.close();
  consumer.join();
  ASSERT_EQ(received.size(),
            static_cast<std::size_t>(kPerProducer * kProducers));
  const long long expected =
      static_cast<long long>(kPerProducer * kProducers) *
      (kPerProducer * kProducers - 1) / 2;
  const long long actual =
      std::accumulate(received.begin(), received.end(), 0LL);
  EXPECT_EQ(actual, expected);  // every value exactly once
}

TEST(RingBufferTest, SizeAndCapacity) {
  RingBuffer<int> buf(3);
  EXPECT_EQ(buf.capacity(), 3u);
  EXPECT_EQ(buf.size(), 0u);
  buf.push(1);
  buf.push(2);
  EXPECT_EQ(buf.size(), 2u);
  buf.pop();
  EXPECT_EQ(buf.size(), 1u);
}

TEST(RingBufferTest, WrapAroundKeepsOrder) {
  RingBuffer<int> buf(3);
  for (int round = 0; round < 10; ++round) {
    buf.push(round * 2);
    buf.push(round * 2 + 1);
    EXPECT_EQ(buf.pop(), round * 2);
    EXPECT_EQ(buf.pop(), round * 2 + 1);
  }
}

}  // namespace
}  // namespace gridrm::util
