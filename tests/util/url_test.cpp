#include "gridrm/util/url.hpp"

#include <gtest/gtest.h>

namespace gridrm::util {
namespace {

TEST(UrlTest, FullForm) {
  auto u = Url::parse("jdbc:snmp://node01:161/perfdata?community=public&x=1");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->scheme(), "jdbc");
  EXPECT_EQ(u->subprotocol(), "snmp");
  EXPECT_EQ(u->host(), "node01");
  EXPECT_EQ(u->port(), 161);
  EXPECT_EQ(u->path(), "perfdata");
  EXPECT_EQ(u->param("community"), "public");
  EXPECT_EQ(u->param("x"), "1");
  EXPECT_EQ(u->param("missing", "dflt"), "dflt");
}

TEST(UrlTest, PaperExampleAnyDriver) {
  // From the paper: jdbc:://snowboard.workgroup/perfdata
  auto u = Url::parse("jdbc:://snowboard.workgroup/perfdata");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->subprotocol(), "");
  EXPECT_EQ(u->host(), "snowboard.workgroup");
  EXPECT_EQ(u->port(), 0);
  EXPECT_EQ(u->path(), "perfdata");
}

TEST(UrlTest, PaperExampleNwsDriver) {
  auto u = Url::parse("jdbc:nws://snowboard.workgroup/perfdata");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->subprotocol(), "nws");
}

TEST(UrlTest, GridRmSchemeAlias) {
  auto u = Url::parse("gridrm:ganglia://head:8649/");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->scheme(), "gridrm");
  EXPECT_EQ(u->subprotocol(), "ganglia");
}

TEST(UrlTest, NoPathOrQuery) {
  auto u = Url::parse("jdbc:scms://master:18800");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->path(), "");
  EXPECT_TRUE(u->params().empty());
}

TEST(UrlTest, EndpointSubstitutesDefaultPort) {
  auto u = Url::parse("jdbc:snmp://h/x");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->endpoint(161), "h:161");
  auto v = Url::parse("jdbc:snmp://h:200/x");
  EXPECT_EQ(v->endpoint(161), "h:200");
}

TEST(UrlTest, SubprotocolAndSchemeAreLowercased) {
  auto u = Url::parse("JDBC:SNMP://H/x");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->scheme(), "jdbc");
  EXPECT_EQ(u->subprotocol(), "snmp");
  EXPECT_EQ(u->host(), "H");  // hosts keep their case
}

TEST(UrlTest, RejectsMalformed) {
  EXPECT_FALSE(Url::parse("").has_value());
  EXPECT_FALSE(Url::parse("nonsense").has_value());
  EXPECT_FALSE(Url::parse("http://host/x").has_value());  // wrong scheme
  EXPECT_FALSE(Url::parse("jdbc:snmp:/host").has_value());
  EXPECT_FALSE(Url::parse("jdbc:snmp://").has_value());
  EXPECT_FALSE(Url::parse("jdbc:snmp://host:notaport/").has_value());
  EXPECT_FALSE(Url::parse("jdbc:snmp://host:99999/").has_value());
}

TEST(UrlTest, ParamWithoutValue) {
  auto u = Url::parse("jdbc:snmp://h/x?flag&k=v");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->param("flag", "unset"), "");
  EXPECT_EQ(u->param("k"), "v");
}

}  // namespace
}  // namespace gridrm::util
