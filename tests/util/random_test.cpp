#include "gridrm/util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridrm::util {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, BelowStaysBelow) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng r(17);
  constexpr int kN = 20000;
  double sum = 0;
  double sumSq = 0;
  for (int i = 0; i < kN; ++i) {
    const double g = r.gaussian();
    sum += g;
    sumSq += g * g;
  }
  const double mean = sum / kN;
  const double var = sumSq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng r(19);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

}  // namespace
}  // namespace gridrm::util
