#include "gridrm/sim/topology.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gridrm::sim {
namespace {

// Everything one scenario run observes, squashed into comparable
// state: the loop's event trace plus query outputs and counters.
struct Outcome {
  std::string trace;
  std::string queryDump;
  std::uint64_t eventsFired = 0;
  std::size_t loopPending = 0;
  bool operator==(const Outcome& o) const {
    return trace == o.trace && queryDump == o.queryDump &&
           eventsFired == o.eventsFired && loopPending == o.loopPending;
  }
};

std::string dumpRows(const core::QueryResult& result) {
  std::string out;
  if (!result.rows) return out;
  for (const auto& row : result.rows->rows()) {
    for (const auto& v : row) {
      out += v.toString();
      out += '|';
    }
    out += '\n';
  }
  out += "failures=" + std::to_string(result.failures.size()) + "\n";
  return out;
}

Outcome runScenario() {
  TopologyOptions opts;
  opts.gateways = 2;
  opts.hostsPerGateway = 3;
  opts.seed = 5;
  opts.refreshInterval = 30 * util::kSecond;
  opts.trapInterval = 10 * util::kSecond;
  Topology topo(opts);

  Outcome out;
  topo.loop().setTraceSink(&out.trace);
  for (int round = 0; round < 3; ++round) {
    topo.loop().runFor(20 * util::kSecond);
    auto local = topo.gateway(0).submitQuery(
        topo.adminToken(0), {topo.site(0).headUrl("snmp")},
        "SELECT HostName, Load1 FROM Processor");
    out.queryDump += dumpRows(local);
    auto federated = topo.globalLayer(0)->federatedQuery(
        topo.adminToken(0),
        {topo.site(0).headUrl("snmp"), topo.site(1).headUrl("snmp")},
        "SELECT COUNT(*) FROM Processor");
    out.queryDump += dumpRows(federated);
    topo.quiesce();
  }
  out.eventsFired = topo.loop().eventsFired();
  out.loopPending = topo.loop().pendingEvents();
  return out;
}

TEST(TopologyTest, SameSeedRunsAreByteIdentical) {
  const Outcome a = runScenario();
  const Outcome b = runScenario();
  EXPECT_FALSE(a.trace.empty());
  EXPECT_FALSE(a.queryDump.empty());
  EXPECT_GT(a.eventsFired, 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.queryDump, b.queryDump);
  EXPECT_TRUE(a == b);
}

TEST(TopologyTest, DifferentSeedDivergesInModelOutput) {
  TopologyOptions opts;
  opts.gateways = 1;
  opts.hostsPerGateway = 2;
  auto query = [](Topology& topo) {
    auto r = topo.gateway(0).submitQuery(
        topo.adminToken(0), {topo.site(0).headUrl("snmp")},
        "SELECT HostName, Load1 FROM Processor");
    return dumpRows(r);
  };
  opts.seed = 1;
  Topology a(opts);
  opts.seed = 2;
  Topology b(opts);
  EXPECT_NE(query(a), query(b));
}

TEST(TopologyTest, BuildsTheRequestedShape) {
  TopologyOptions opts;
  opts.gateways = 3;
  opts.hostsPerGateway = 4;
  Topology topo(opts);
  EXPECT_EQ(topo.gatewayCount(), 3u);
  EXPECT_EQ(topo.hostCount(), 12u);
  EXPECT_EQ(topo.site(2).cluster().size(), 4u);
  // The directory knows every gateway's producer.
  EXPECT_EQ(topo.globalLayer(0)->directory().list().size(), 3u);
}

TEST(TopologyTest, GatewayQueryReturnsLiveMetrics) {
  TopologyOptions opts;
  opts.gateways = 1;
  opts.hostsPerGateway = 2;
  Topology topo(opts);
  auto result = topo.gateway(0).submitSiteQuery(
      topo.adminToken(0), "SELECT HostName, Load1 FROM Processor");
  ASSERT_TRUE(result.rows);
  EXPECT_TRUE(result.complete());
  EXPECT_GE(result.rows->rowCount(), 2u);
}

TEST(TopologyTest, FederatedQuerySpansSites) {
  TopologyOptions opts;
  opts.gateways = 2;
  opts.hostsPerGateway = 2;
  Topology topo(opts);
  auto result = topo.globalLayer(0)->federatedQuery(
      topo.adminToken(0),
      {topo.site(0).headUrl("snmp"), topo.site(1).headUrl("snmp")},
      "SELECT COUNT(*) FROM Processor");
  ASSERT_TRUE(result.rows);
  EXPECT_TRUE(result.complete());
  ASSERT_TRUE(result.rows->next());
  EXPECT_GE(result.rows->get(0).asInt(), 2);
}

TEST(TopologyTest, DirectoryResolvesRemoteHosts) {
  TopologyOptions opts;
  opts.gateways = 2;
  opts.hostsPerGateway = 2;
  Topology topo(opts);
  auto entry = topo.globalLayer(0)->directory().lookup(
      topo.site(1).cluster().host(0).name());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->name, "gw1");
}

TEST(ServiceStationTest, QueuesDeterministically) {
  ServiceStation station(2, 100);
  // Three simultaneous arrivals on two servers: third queues behind
  // the first completion.
  EXPECT_EQ(station.admit(0), 100);
  EXPECT_EQ(station.admit(0), 100);
  EXPECT_EQ(station.admit(0), 200);
  // Idle gap: next job starts at its arrival.
  EXPECT_EQ(station.admit(1000, 50), 1150);
}

}  // namespace
}  // namespace gridrm::sim
