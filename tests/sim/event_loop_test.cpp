#include "gridrm/sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gridrm::sim {
namespace {

TEST(EventLoopTest, FiresInDueOrderAndAdvancesClock) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<util::TimePoint> firedAt;
  loop.schedule(30, [&] {
    order.push_back(3);
    firedAt.push_back(loop.now());
  });
  loop.schedule(10, [&] {
    order.push_back(1);
    firedAt.push_back(loop.now());
  });
  loop.schedule(20, [&] {
    order.push_back(2);
    firedAt.push_back(loop.now());
  });

  EXPECT_EQ(loop.runUntil(100), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // The clock jumps to each event's due time, then lands on the bound.
  EXPECT_EQ(firedAt, (std::vector<util::TimePoint>{10, 20, 30}));
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoopTest, SameInstantTiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule(50, [&order, i] { order.push_back(i); });
  }
  loop.runUntil(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventLoopTest, RunUntilBoundaryIsInclusive) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(100, [&] { ++fired; });
  loop.schedule(101, [&] { ++fired; });
  EXPECT_EQ(loop.runUntil(100), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 100);
  EXPECT_EQ(loop.runUntil(101), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PastDueEventsClampToNowNotBackwards) {
  EventLoop loop;
  loop.runUntil(500);
  util::TimePoint firedAt = -1;
  loop.schedule(100, [&] { firedAt = loop.now(); });  // already past
  loop.runUntil(500);
  EXPECT_EQ(firedAt, 500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoopTest, CancelPendingEventNeverFires) {
  EventLoop loop;
  int fired = 0;
  const EventId id = loop.schedule(10, [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already gone
  EXPECT_EQ(loop.runUntil(100), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.pendingEvents(), 0u);
}

TEST(EventLoopTest, PeriodicFiresEveryPeriodUntilCancelled) {
  EventLoop loop;
  int ticks = 0;
  const EventId id = loop.scheduleEvery(10, [&] { ++ticks; });
  loop.runUntil(55);
  EXPECT_EQ(ticks, 5);  // t = 10, 20, 30, 40, 50
  EXPECT_TRUE(loop.cancel(id));
  loop.runFor(100);
  EXPECT_EQ(ticks, 5);
}

TEST(EventLoopTest, PeriodicCanCancelItselfFromItsOwnCallback) {
  EventLoop loop;
  int ticks = 0;
  EventId id = 0;
  id = loop.scheduleEvery(10, [&] {
    if (++ticks == 3) EXPECT_TRUE(loop.cancel(id));
  });
  loop.runUntil(1000);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(loop.pendingEvents(), 0u);
}

TEST(EventLoopTest, ScheduleFromWithinCallbackFiresInSameRun) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(10, [&] {
    order.push_back(1);
    loop.schedule(20, [&] { order.push_back(2); });
    loop.scheduleAfter(5, [&] { order.push_back(3); });  // due 15
  });
  loop.runUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventLoopTest, StaggeredPeriodicFirstDelay) {
  EventLoop loop;
  std::vector<util::TimePoint> at;
  loop.scheduleEvery(100, 7, [&] { at.push_back(loop.now()); });
  loop.runUntil(250);
  EXPECT_EQ(at, (std::vector<util::TimePoint>{7, 107, 207}));
}

TEST(EventLoopTest, RunOneFiresEarliestRegardlessOfDueTime) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(1000, [&] { ++fired; });
  EXPECT_TRUE(loop.runOne());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 1000);
  EXPECT_FALSE(loop.runOne());
}

TEST(EventLoopTest, NextEventTimeSkipsCancelledEntries) {
  EventLoop loop;
  const EventId early = loop.schedule(10, [] {});
  loop.schedule(20, [] {});
  EXPECT_EQ(loop.nextEventTime(), std::optional<util::TimePoint>(10));
  loop.cancel(early);
  EXPECT_EQ(loop.nextEventTime(), std::optional<util::TimePoint>(20));
}

TEST(EventLoopTest, TraceIsByteIdenticalAcrossRuns) {
  auto scenario = [](std::string& trace) {
    EventLoop loop;
    loop.setTraceSink(&trace);
    loop.scheduleEvery(7, [] {});
    loop.scheduleEvery(11, [] {});
    loop.schedule(30, [&loop] { loop.scheduleAfter(2, [] {}); });
    loop.runUntil(100);
    return loop.eventsFired();
  };
  std::string a, b;
  const auto firedA = scenario(a);
  const auto firedB = scenario(b);
  EXPECT_EQ(firedA, firedB);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(EventLoopTest, SingleWriterClockAllowsLoopAdvance) {
  // The loop marks its clock single-writer; its own advances must not
  // trip the debug assertion.
  EventLoop loop;
  loop.schedule(10, [] {});
  loop.runUntil(20);
  EXPECT_EQ(loop.now(), 20);
}

TEST(SimClockTest, AdvanceToIsMonotonic) {
  util::SimClock clock(100);
  clock.advanceTo(50);  // behind now: no-op
  EXPECT_EQ(clock.now(), 100);
  clock.advanceTo(250);
  EXPECT_EQ(clock.now(), 250);
}

}  // namespace
}  // namespace gridrm::sim
