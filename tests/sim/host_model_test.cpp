#include "gridrm/sim/host_model.hpp"

#include <gtest/gtest.h>

namespace gridrm::sim {
namespace {

using util::kSecond;

TEST(HostModelTest, DeterministicPerSeed) {
  util::SimClock c1;
  util::SimClock c2;
  HostModel a(HostSpec{}, c1, 42);
  HostModel b(HostSpec{}, c2, 42);
  c1.advance(120 * kSecond);
  c2.advance(120 * kSecond);
  EXPECT_DOUBLE_EQ(a.load1(), b.load1());
  EXPECT_EQ(a.memFreeMb(), b.memFreeMb());
  EXPECT_EQ(a.netInBytes(), b.netInBytes());
}

TEST(HostModelTest, SnapshotMatchesPerMetricGetters) {
  util::SimClock c1;
  util::SimClock c2;
  HostModel a(HostSpec{}, c1, 42);
  HostModel b(HostSpec{}, c2, 42);  // same seed: identical twin
  c1.advance(90 * kSecond);
  c2.advance(90 * kSecond);

  // One bulk snapshot of `a` equals `b`'s per-metric reads: the
  // getters are thin delegates over the same single-advance path.
  const HostSnapshot s = a.snapshot();
  EXPECT_DOUBLE_EQ(s.load1, b.load1());
  EXPECT_DOUBLE_EQ(s.load5, b.load5());
  EXPECT_DOUBLE_EQ(s.load15, b.load15());
  EXPECT_DOUBLE_EQ(s.cpuUserPct, b.cpuUserPct());
  EXPECT_DOUBLE_EQ(s.cpuSystemPct, b.cpuSystemPct());
  EXPECT_DOUBLE_EQ(s.cpuIdlePct, b.cpuIdlePct());
  EXPECT_EQ(s.memFreeMb, b.memFreeMb());
  EXPECT_EQ(s.memUsedMb, b.memUsedMb());
  EXPECT_EQ(s.swapFreeMb, b.swapFreeMb());
  EXPECT_EQ(s.diskFreeMb, b.diskFreeMb());
  EXPECT_EQ(s.netInBytes, b.netInBytes());
  EXPECT_EQ(s.netOutBytes, b.netOutBytes());
  EXPECT_EQ(s.processCount, b.processCount());
  EXPECT_EQ(s.uptimeSeconds, b.uptimeSeconds());
}

TEST(HostModelTest, SnapshotIsInternallyCoherent) {
  util::SimClock clock;
  HostModel h(HostSpec{}, clock, 7);
  clock.advance(120 * kSecond);
  const HostSnapshot s = h.snapshot();
  // All fields derive from one model instant, so the invariants that
  // hold inside the model hold across the snapshot.
  EXPECT_DOUBLE_EQ(s.cpuUserPct + s.cpuSystemPct + s.cpuIdlePct, 100.0);
  EXPECT_EQ(s.memFreeMb + s.memUsedMb, HostSpec{}.memTotalMb);
  EXPECT_EQ(s.uptimeSeconds, 120);
  // Repeated snapshots without time passing are identical (no hidden
  // model stepping per read).
  const HostSnapshot again = h.snapshot();
  EXPECT_DOUBLE_EQ(s.load1, again.load1);
  EXPECT_EQ(s.netInBytes, again.netInBytes);
}

TEST(ClusterModelTest, RefreshAllAdvancesEveryHost) {
  util::SimClock clock;
  ClusterModel cluster("c", 3, clock, 1);
  clock.advance(60 * kSecond);
  cluster.refreshAll();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.host(i).lastUpdate(), clock.now());
  }
}

TEST(HostModelTest, DifferentSeedsDiverge) {
  util::SimClock clock;
  HostModel a(HostSpec{}, clock, 1);
  HostModel b(HostSpec{}, clock, 2);
  clock.advance(300 * kSecond);
  EXPECT_NE(a.load1(), b.load1());
}

TEST(HostModelTest, LoadStaysInPhysicalRange) {
  util::SimClock clock;
  HostSpec spec;
  spec.cpuCount = 2;
  HostModel h(spec, clock, 7);
  for (int i = 0; i < 100; ++i) {
    clock.advance(10 * kSecond);
    const double l = h.load1();
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 4.0 * spec.cpuCount);
  }
}

TEST(HostModelTest, CpuPercentagesSumToHundred) {
  util::SimClock clock;
  HostModel h(HostSpec{}, clock, 11);
  clock.advance(60 * kSecond);
  const double total = h.cpuUserPct() + h.cpuSystemPct() + h.cpuIdlePct();
  EXPECT_NEAR(total, 100.0, 0.5);
  EXPECT_GE(h.cpuIdlePct(), 0.0);
}

TEST(HostModelTest, MemoryAccountingConsistent) {
  util::SimClock clock;
  HostSpec spec;
  spec.memTotalMb = 2048;
  HostModel h(spec, clock, 13);
  for (int i = 0; i < 20; ++i) {
    clock.advance(30 * kSecond);
    EXPECT_EQ(h.memFreeMb() + h.memUsedMb(), spec.memTotalMb);
    EXPECT_GE(h.memFreeMb(), 0);
    EXPECT_LE(h.swapFreeMb(), spec.swapTotalMb);
    EXPECT_GE(h.swapFreeMb(), 0);
  }
}

TEST(HostModelTest, NetworkCountersMonotone) {
  util::SimClock clock;
  HostModel h(HostSpec{}, clock, 17);
  std::int64_t lastIn = h.netInBytes();
  std::int64_t lastOut = h.netOutBytes();
  for (int i = 0; i < 30; ++i) {
    clock.advance(10 * kSecond);
    EXPECT_GE(h.netInBytes(), lastIn);
    EXPECT_GE(h.netOutBytes(), lastOut);
    lastIn = h.netInBytes();
    lastOut = h.netOutBytes();
  }
  EXPECT_GT(lastIn, 0);
}

TEST(HostModelTest, UptimeTracksClock) {
  util::SimClock clock(1000 * kSecond);
  HostModel h(HostSpec{}, clock, 19);
  EXPECT_EQ(h.uptimeSeconds(), 0);
  clock.advance(90 * kSecond);
  EXPECT_EQ(h.uptimeSeconds(), 90);
  EXPECT_EQ(h.bootTime(), 1000 * kSecond);
}

TEST(HostModelTest, LoadAveragesSmoothProgressively) {
  // After a long settle, the 15-minute average must move less than the
  // 1-minute value across a short window.
  util::SimClock clock;
  HostModel h(HostSpec{}, clock, 23);
  clock.advance(600 * kSecond);
  h.refresh();
  const double l1a = h.load1();
  const double l15a = h.load15();
  clock.advance(60 * kSecond);
  const double l1b = h.load1();
  const double l15b = h.load15();
  EXPECT_LE(std::abs(l15b - l15a), std::abs(l1b - l1a) + 0.15);
}

TEST(HostModelTest, LongGapCappedButCountersAdvance) {
  util::SimClock clock;
  HostModel h(HostSpec{}, clock, 29);
  clock.advance(10 * kSecond);
  const std::int64_t before = h.netInBytes();
  clock.advance(24 * 3600 * kSecond);  // a simulated day while idle
  const std::int64_t after = h.netInBytes();
  EXPECT_GT(after, before);  // skipped time still charged to counters
  EXPECT_EQ(h.lastUpdate(), clock.now());
}

TEST(HostModelTest, ProcessCountReasonable) {
  util::SimClock clock;
  HostModel h(HostSpec{}, clock, 31);
  clock.advance(60 * kSecond);
  EXPECT_GT(h.processCount(), 20);
  EXPECT_LT(h.processCount(), 2000);
}

TEST(ClusterModelTest, NamingAndLookup) {
  util::SimClock clock;
  ClusterModel cluster("siteA", 4, clock, 99);
  EXPECT_EQ(cluster.size(), 4u);
  EXPECT_EQ(cluster.host(0).name(), "siteA-node00");
  EXPECT_EQ(cluster.host(3).name(), "siteA-node03");
  EXPECT_EQ(cluster.host(1).spec().clusterName, "siteA");
  EXPECT_NE(cluster.findHost("siteA-node02"), nullptr);
  EXPECT_EQ(cluster.findHost("nope"), nullptr);
  EXPECT_EQ(cluster.hostNames().size(), 4u);
}

TEST(ClusterModelTest, HostsAreIndependentProcesses) {
  util::SimClock clock;
  ClusterModel cluster("s", 2, clock, 5);
  clock.advance(300 * kSecond);
  EXPECT_NE(cluster.host(0).load1(), cluster.host(1).load1());
}

}  // namespace
}  // namespace gridrm::sim
