#include "gridrm/sim/chaos.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gridrm/sim/event_loop.hpp"

namespace gridrm::sim {
namespace {

class Sink final : public net::RequestHandler {
 public:
  net::Payload handleRequest(const net::Address&,
                             const net::Payload& request) override {
    return "ok:" + request;
  }
  void handleDatagram(const net::Address&, const net::Payload& body) override {
    datagrams.push_back(body);
  }
  std::vector<net::Payload> datagrams;
};

TEST(ChaosInjectorTest, ActionsFireInTimeOrder) {
  util::SimClock clock(0);
  net::Network network(clock);
  ChaosInjector chaos(network, clock);
  std::vector<int> order;
  chaos.at(3000, [&] { order.push_back(3); });
  chaos.at(1000, [&] { order.push_back(1); });
  chaos.at(1000, [&] { order.push_back(2); });  // same time: insertion order
  EXPECT_EQ(chaos.pendingActions(), 3u);

  clock.advance(999);
  EXPECT_EQ(chaos.fireDue(), 0u);
  clock.advance(1);
  EXPECT_EQ(chaos.fireDue(), 2u);
  clock.advance(5000);
  EXPECT_EQ(chaos.fireDue(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(chaos.pendingActions(), 0u);
}

TEST(ChaosInjectorTest, RunAdvancesClockAndPumps) {
  util::SimClock clock(0);
  net::Network network(clock);
  ChaosInjector chaos(network, clock);
  int fired = 0;
  int pumps = 0;
  chaos.at(2500, [&] { ++fired; });
  const std::size_t total = chaos.run(
      1000, [&] { ++pumps; }, /*settle=*/2000);
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_GE(pumps, 4);                 // pumped every step
  EXPECT_GE(clock.now(), 2500 + 2000);  // ran through the settle window
}

TEST(ChaosInjectorTest, LossBurstWindowDropsAndHeals) {
  util::SimClock clock(0);
  net::Network network(clock, /*seed=*/3);
  Sink sink;
  network.bind({"b", 1}, &sink);
  ChaosInjector chaos(network, clock);
  chaos.lossBurst("a", "b", 1000, 2000, /*lossProbability=*/1.0);

  auto send = [&] { network.datagram({"a", 0}, {"b", 1}, "x"); };
  send();  // before the burst
  clock.advance(1000);
  chaos.fireDue();
  send();  // inside the burst: dropped
  clock.advance(1000);
  chaos.fireDue();  // link restored
  send();
  EXPECT_EQ(sink.datagrams.size(), 2u);
  EXPECT_EQ(network.stats({"b", 1}).datagramsDropped, 1u);
}

TEST(ChaosInjectorTest, PartitionCutsEveryCrossLink) {
  util::SimClock clock(0);
  net::Network network(clock, /*seed=*/3);
  Sink sink1;
  Sink sink2;
  network.bind({"b1", 1}, &sink1);
  network.bind({"b2", 1}, &sink2);
  ChaosInjector chaos(network, clock);
  chaos.partition({"a1", "a2"}, {"b1", "b2"}, 0, 5000);
  chaos.fireDue();

  EXPECT_THROW(network.request({"a1", 0}, {"b1", 1}, "x", 100), net::NetError);
  EXPECT_THROW(network.request({"a2", 0}, {"b2", 1}, "x", 100), net::NetError);
  // Same-side traffic is unaffected.
  network.bind({"a2", 1}, &sink2);
  EXPECT_EQ(network.request({"a1", 0}, {"a2", 1}, "x"), "ok:x");

  clock.advance(5000);
  chaos.fireDue();
  EXPECT_EQ(network.request({"a1", 0}, {"b1", 1}, "x"), "ok:x");
}

TEST(ChaosInjectorTest, HostDownWindowRestoresHost) {
  util::SimClock clock(0);
  net::Network network(clock);
  Sink sink;
  network.bind({"b", 1}, &sink);
  ChaosInjector chaos(network, clock);
  chaos.hostDownWindow("b", 1000, 3000);
  clock.advance(1000);
  chaos.fireDue();
  EXPECT_THROW(network.request({"a", 0}, {"b", 1}, "x", 100), net::NetError);
  clock.advance(2000);
  chaos.fireDue();
  EXPECT_EQ(network.request({"a", 0}, {"b", 1}, "x"), "ok:x");
}

// A PR5-style chaos script (loss burst + partition + host-down window
// over live traffic) must produce identical outcomes whether the
// injector drives time itself (legacy step/pump run) or rides a bound
// EventLoop.
struct ScriptOutcome {
  std::size_t fired = 0;
  std::size_t delivered = 0;
  std::uint64_t dropped = 0;
  std::size_t pumps = 0;
  util::TimePoint endedAt = 0;
  bool operator==(const ScriptOutcome& o) const {
    return fired == o.fired && delivered == o.delivered &&
           dropped == o.dropped && pumps == o.pumps && endedAt == o.endedAt;
  }
};

ScriptOutcome runChaosScript(bool onLoop) {
  EventLoop loop;
  util::SimClock legacyClock(0);
  util::Clock& clock = onLoop ? static_cast<util::Clock&>(loop.clock())
                              : static_cast<util::Clock&>(legacyClock);
  net::Network network(clock, /*seed=*/17);
  Sink sink;
  network.bind({"b", 1}, &sink);

  ChaosInjector chaos(network, clock, /*seed=*/17);
  chaos.lossBurst("a", "b", 1 * util::kSecond, 3 * util::kSecond, 1.0);
  chaos.hostDownWindow("b", 5 * util::kSecond, 7 * util::kSecond);
  int bespoke = 0;
  chaos.at(8 * util::kSecond, [&] { ++bespoke; });
  if (onLoop) chaos.bindLoop(loop);

  ScriptOutcome out;
  out.fired = chaos.run(
      500 * util::kMillisecond,
      [&] {
        ++out.pumps;
        network.datagram({"a", 0}, {"b", 1}, "x");
      },
      /*settle=*/util::kSecond);
  out.delivered = sink.datagrams.size();
  out.dropped = network.stats({"b", 1}).datagramsDropped;
  out.endedAt = clock.now();
  EXPECT_EQ(bespoke, 1);
  return out;
}

TEST(ChaosInjectorTest, LoopBoundRunMatchesLegacyRun) {
  const ScriptOutcome legacy = runChaosScript(/*onLoop=*/false);
  const ScriptOutcome looped = runChaosScript(/*onLoop=*/true);
  EXPECT_GT(legacy.delivered, 0u);
  EXPECT_GT(legacy.dropped, 0u);
  EXPECT_TRUE(legacy == looped)
      << "legacy: fired=" << legacy.fired << " delivered=" << legacy.delivered
      << " dropped=" << legacy.dropped << " pumps=" << legacy.pumps
      << " endedAt=" << legacy.endedAt << " / looped: fired=" << looped.fired
      << " delivered=" << looped.delivered << " dropped=" << looped.dropped
      << " pumps=" << looped.pumps << " endedAt=" << looped.endedAt;
}

TEST(ChaosInjectorTest, BindLoopMigratesQueuedActions) {
  EventLoop loop;
  net::Network network(loop.clock());
  ChaosInjector chaos(network, loop.clock());
  std::vector<int> order;
  chaos.at(1000, [&] { order.push_back(1); });
  chaos.at(1000, [&] { order.push_back(2); });  // same-instant tie
  chaos.at(500, [&] { order.push_back(0); });
  chaos.bindLoop(loop);
  EXPECT_EQ(chaos.pendingActions(), 3u);

  // Interleaves with unrelated loop events in due order.
  loop.schedule(700, [&] { order.push_back(7); });
  loop.runUntil(2000);
  EXPECT_EQ(order, (std::vector<int>{0, 7, 1, 2}));
  EXPECT_EQ(chaos.pendingActions(), 0u);
}

TEST(ChaosInjectorTest, LoopBoundFollowUpsFireSameRun) {
  EventLoop loop;
  net::Network network(loop.clock());
  ChaosInjector chaos(network, loop.clock());
  chaos.bindLoop(loop);
  int chained = 0;
  chaos.at(1000, [&] {
    chaos.at(loop.now(), [&] { ++chained; });  // due immediately
  });
  EXPECT_EQ(chaos.run(500, nullptr), 2u);
  EXPECT_EQ(chained, 1);
}

TEST(ChaosInjectorTest, ActionsMayScheduleFollowUps) {
  util::SimClock clock(0);
  net::Network network(clock);
  ChaosInjector chaos(network, clock);
  int chained = 0;
  chaos.at(1000, [&] {
    chaos.at(clock.now(), [&] { ++chained; });  // due immediately
  });
  clock.advance(1000);
  EXPECT_EQ(chaos.fireDue(), 2u);
  EXPECT_EQ(chained, 1);
}

}  // namespace
}  // namespace gridrm::sim
