#include "gridrm/sim/chaos.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridrm::sim {
namespace {

class Sink final : public net::RequestHandler {
 public:
  net::Payload handleRequest(const net::Address&,
                             const net::Payload& request) override {
    return "ok:" + request;
  }
  void handleDatagram(const net::Address&, const net::Payload& body) override {
    datagrams.push_back(body);
  }
  std::vector<net::Payload> datagrams;
};

TEST(ChaosInjectorTest, ActionsFireInTimeOrder) {
  util::SimClock clock(0);
  net::Network network(clock);
  ChaosInjector chaos(network, clock);
  std::vector<int> order;
  chaos.at(3000, [&] { order.push_back(3); });
  chaos.at(1000, [&] { order.push_back(1); });
  chaos.at(1000, [&] { order.push_back(2); });  // same time: insertion order
  EXPECT_EQ(chaos.pendingActions(), 3u);

  clock.advance(999);
  EXPECT_EQ(chaos.fireDue(), 0u);
  clock.advance(1);
  EXPECT_EQ(chaos.fireDue(), 2u);
  clock.advance(5000);
  EXPECT_EQ(chaos.fireDue(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(chaos.pendingActions(), 0u);
}

TEST(ChaosInjectorTest, RunAdvancesClockAndPumps) {
  util::SimClock clock(0);
  net::Network network(clock);
  ChaosInjector chaos(network, clock);
  int fired = 0;
  int pumps = 0;
  chaos.at(2500, [&] { ++fired; });
  const std::size_t total = chaos.run(
      1000, [&] { ++pumps; }, /*settle=*/2000);
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_GE(pumps, 4);                 // pumped every step
  EXPECT_GE(clock.now(), 2500 + 2000);  // ran through the settle window
}

TEST(ChaosInjectorTest, LossBurstWindowDropsAndHeals) {
  util::SimClock clock(0);
  net::Network network(clock, /*seed=*/3);
  Sink sink;
  network.bind({"b", 1}, &sink);
  ChaosInjector chaos(network, clock);
  chaos.lossBurst("a", "b", 1000, 2000, /*lossProbability=*/1.0);

  auto send = [&] { network.datagram({"a", 0}, {"b", 1}, "x"); };
  send();  // before the burst
  clock.advance(1000);
  chaos.fireDue();
  send();  // inside the burst: dropped
  clock.advance(1000);
  chaos.fireDue();  // link restored
  send();
  EXPECT_EQ(sink.datagrams.size(), 2u);
  EXPECT_EQ(network.stats({"b", 1}).datagramsDropped, 1u);
}

TEST(ChaosInjectorTest, PartitionCutsEveryCrossLink) {
  util::SimClock clock(0);
  net::Network network(clock, /*seed=*/3);
  Sink sink1;
  Sink sink2;
  network.bind({"b1", 1}, &sink1);
  network.bind({"b2", 1}, &sink2);
  ChaosInjector chaos(network, clock);
  chaos.partition({"a1", "a2"}, {"b1", "b2"}, 0, 5000);
  chaos.fireDue();

  EXPECT_THROW(network.request({"a1", 0}, {"b1", 1}, "x", 100), net::NetError);
  EXPECT_THROW(network.request({"a2", 0}, {"b2", 1}, "x", 100), net::NetError);
  // Same-side traffic is unaffected.
  network.bind({"a2", 1}, &sink2);
  EXPECT_EQ(network.request({"a1", 0}, {"a2", 1}, "x"), "ok:x");

  clock.advance(5000);
  chaos.fireDue();
  EXPECT_EQ(network.request({"a1", 0}, {"b1", 1}, "x"), "ok:x");
}

TEST(ChaosInjectorTest, HostDownWindowRestoresHost) {
  util::SimClock clock(0);
  net::Network network(clock);
  Sink sink;
  network.bind({"b", 1}, &sink);
  ChaosInjector chaos(network, clock);
  chaos.hostDownWindow("b", 1000, 3000);
  clock.advance(1000);
  chaos.fireDue();
  EXPECT_THROW(network.request({"a", 0}, {"b", 1}, "x", 100), net::NetError);
  clock.advance(2000);
  chaos.fireDue();
  EXPECT_EQ(network.request({"a", 0}, {"b", 1}, "x"), "ok:x");
}

TEST(ChaosInjectorTest, ActionsMayScheduleFollowUps) {
  util::SimClock clock(0);
  net::Network network(clock);
  ChaosInjector chaos(network, clock);
  int chained = 0;
  chaos.at(1000, [&] {
    chaos.at(clock.now(), [&] { ++chained; });  // due immediately
  });
  clock.advance(1000);
  EXPECT_EQ(chaos.fireDue(), 2u);
  EXPECT_EQ(chained, 1);
}

}  // namespace
}  // namespace gridrm::sim
