#include "gridrm/stream/continuous_query_engine.hpp"

#include <algorithm>

#include "gridrm/sql/parser.hpp"
#include "gridrm/util/strings.hpp"
#include "gridrm/util/url.hpp"

namespace gridrm::stream {

using dbc::ErrorCode;
using dbc::SqlError;

const char* overflowPolicyName(OverflowPolicy p) noexcept {
  switch (p) {
    case OverflowPolicy::DropOldest:
      return "dropoldest";
    case OverflowPolicy::Block:
      return "block";
    case OverflowPolicy::CancelSlowConsumer:
      return "cancel";
  }
  return "?";
}

std::optional<OverflowPolicy> overflowPolicyFromName(const std::string& name) {
  const std::string lower = util::toLower(name);
  if (lower == "dropoldest" || lower == "drop_oldest") {
    return OverflowPolicy::DropOldest;
  }
  if (lower == "block") return OverflowPolicy::Block;
  if (lower == "cancel" || lower == "cancelslow") {
    return OverflowPolicy::CancelSlowConsumer;
  }
  return std::nullopt;
}

namespace {

/// True when a subscription's source filter covers an incoming source
/// tag. Either side may be a full data-source URL or a bare host.
bool sourceMatches(const std::string& filter, const std::string& filterHost,
                   const std::string& source, const std::string& sourceHost) {
  if (filter.empty() || filter == "*") return true;
  if (filter == source) return true;
  if (!filterHost.empty() &&
      (filterHost == source || filterHost == sourceHost)) {
    return true;
  }
  return !sourceHost.empty() && filter == sourceHost;
}

}  // namespace

ContinuousQueryEngine::ContinuousQueryEngine(util::Clock& clock,
                                             StreamOptions defaults,
                                             store::Database* history)
    : clock_(clock), defaults_(defaults), history_(history) {}

ContinuousQueryEngine::~ContinuousQueryEngine() {
  std::scoped_lock lock(mu_);
  shutdown_ = true;
  for (auto& [id, sub] : subscriptions_) sub->notFull.notify_all();
}

void ContinuousQueryEngine::setDispatcher(Dispatcher dispatcher) {
  std::scoped_lock lock(mu_);
  dispatcher_ = std::move(dispatcher);
}

void ContinuousQueryEngine::dispatchDrain(std::size_t id) {
  Dispatcher dispatcher;
  {
    std::scoped_lock lock(mu_);
    dispatcher = dispatcher_;
  }
  if (dispatcher != nullptr &&
      dispatcher([this, id] { drainConsumer(id); })) {
    return;
  }
  // No executor (or it shed the task): deliver on this thread so the
  // consumer still hears about its deltas.
  drainConsumer(id);
}

std::size_t ContinuousQueryEngine::subscribe(
    const std::string& sourceUrl, const std::string& sqlText,
    DeltaConsumer consumer, std::optional<StreamOptions> options) {
  sql::SelectStatement statement;
  try {
    statement = sql::parseSelect(sqlText);
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax, e.what());
  }
  bool aggregate = !statement.groupBy.empty();
  for (const auto& item : statement.items) {
    if (!item.isStar() && item.expr->containsAggregate()) aggregate = true;
  }
  for (const auto& key : statement.orderBy) {
    if (key.expr->containsAggregate()) aggregate = true;
  }
  if (aggregate) {
    throw SqlError(ErrorCode::Unsupported,
                   "continuous queries do not support aggregates/GROUP BY");
  }

  auto sub = std::make_unique<Subscription>();
  sub->sourceUrl = (sourceUrl == "*") ? "" : sourceUrl;
  if (auto url = util::Url::parse(sub->sourceUrl)) {
    sub->sourceHost = url->host();
  }
  sub->sqlText = sqlText;
  sub->statement = std::move(statement);
  sub->consumer = std::move(consumer);
  sub->options = options.value_or(defaults_);

  std::size_t id = 0;
  {
    std::unique_lock lock(mu_);
    id = nextId_++;
    sub->id = id;
    ++stats_.subscriptions;
    ++stats_.active;
    Subscription& ref = *sub;
    subscriptions_.emplace(id, std::move(sub));
    if (ref.options.replayRows > 0 && history_ != nullptr) {
      replayHistory(ref);
    }
  }
  dispatchDrain(id);
  return id;
}

std::size_t ContinuousQueryEngine::subscribePassive(
    const std::string& label, DeltaConsumer consumer,
    std::optional<StreamOptions> options) {
  auto sub = std::make_unique<Subscription>();
  sub->sourceUrl = label;
  sub->passive = true;
  sub->consumer = std::move(consumer);
  sub->options = options.value_or(defaults_);
  std::scoped_lock lock(mu_);
  const std::size_t id = nextId_++;
  sub->id = id;
  ++stats_.subscriptions;
  ++stats_.active;
  subscriptions_.emplace(id, std::move(sub));
  return id;
}

bool ContinuousQueryEngine::unsubscribe(std::size_t id) {
  std::scoped_lock lock(mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return false;
  // Unblock any producer waiting on this queue, then remove. Waiters
  // re-check under the lock, so the node must outlive them: hand the
  // notification out first, erase after.
  it->second->notFull.notify_all();
  --stats_.active;
  subscriptions_.erase(it);
  return true;
}

bool ContinuousQueryEngine::isActive(std::size_t id) const {
  std::scoped_lock lock(mu_);
  return subscriptions_.find(id) != subscriptions_.end();
}

std::size_t ContinuousQueryEngine::activeCount() const {
  std::scoped_lock lock(mu_);
  return subscriptions_.size();
}

bool ContinuousQueryEngine::matches(const Subscription& sub,
                                    const std::string& sourceUrl,
                                    const std::string& table) const {
  if (sub.passive) return false;
  if (!util::iequals(sub.statement.table, table)) return false;
  std::string sourceHost;
  if (auto url = util::Url::parse(sourceUrl)) sourceHost = url->host();
  return sourceMatches(sub.sourceUrl, sub.sourceHost, sourceUrl, sourceHost);
}

bool ContinuousQueryEngine::enqueueLocked(std::unique_lock<std::mutex>& lock,
                                          Subscription& sub,
                                          StreamDelta delta) {
  const StreamOptions& options = sub.options;
  if (sub.queue.size() >= options.queueCapacity) {
    switch (options.overflow) {
      case OverflowPolicy::DropOldest:
        while (sub.queue.size() >= options.queueCapacity) {
          ++stats_.deltasDropped;
          stats_.rowsDropped += sub.queue.front().rows.size();
          sub.queue.pop_front();
        }
        break;
      case OverflowPolicy::Block: {
        const std::size_t id = sub.id;
        sub.notFull.wait(lock, [&] {
          // `sub` stays valid while we wait: unsubscribe() notifies
          // before erasing and we re-check membership below.
          return shutdown_ ||
                 subscriptions_.find(id) == subscriptions_.end() ||
                 sub.queue.size() < options.queueCapacity;
        });
        if (shutdown_ || subscriptions_.find(id) == subscriptions_.end()) {
          ++stats_.deltasDropped;
          stats_.rowsDropped += delta.rows.size();
          return false;
        }
        break;
      }
      case OverflowPolicy::CancelSlowConsumer:
        ++stats_.cancelledSlow;
        ++stats_.deltasDropped;
        stats_.rowsDropped += delta.rows.size();
        sub.notFull.notify_all();
        --stats_.active;
        subscriptions_.erase(sub.id);
        return false;
    }
  }
  delta.sequence = sub.nextSequence++;
  ++stats_.deltasQueued;
  stats_.rowsQueued += delta.rows.size();
  sub.queue.push_back(std::move(delta));
  return true;
}

void ContinuousQueryEngine::onRows(
    const std::string& sourceUrl, const std::string& table,
    const dbc::VectorResultSet& rows) {
  onRows(sourceUrl, table, rows.metaData(), rows.rows());
}

void ContinuousQueryEngine::onRows(
    const std::string& sourceUrl, const std::string& table,
    const dbc::ResultSetMetaData& columns,
    const std::vector<std::vector<util::Value>>& rows) {
  // Snapshot matching ids first: a Block-policy enqueue releases the
  // lock, so the subscription map may mutate between evaluations.
  std::vector<std::size_t> matched;
  std::vector<std::size_t> toDrain;
  std::unique_lock lock(mu_);
  ++stats_.batchesIngested;
  for (const auto& [id, sub] : subscriptions_) {
    if (matches(*sub, sourceUrl, table)) matched.push_back(id);
  }
  for (std::size_t id : matched) {
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) continue;  // cancelled meanwhile
    Subscription& sub = *it->second;
    stats_.rowsEvaluated += rows.size();
    StreamDelta delta;
    try {
      auto result =
          store::executeSelect(sub.statement, columns.columns(), rows);
      if (result->rowCount() == 0) continue;
      delta.columns = result->metaData();
      delta.rows = result->rows();
    } catch (const SqlError&) {
      // Query incompatible with this batch's shape (e.g. a column the
      // source does not serve). Skip; the subscription stays live.
      ++stats_.evalErrors;
      continue;
    }
    delta.sourceUrl = sourceUrl;
    delta.table = sub.statement.table;
    delta.timestamp = clock_.now();
    if (enqueueLocked(lock, sub, std::move(delta)) &&
        it->second->consumer != nullptr) {
      toDrain.push_back(id);
    }
  }
  lock.unlock();
  for (std::size_t id : toDrain) dispatchDrain(id);
}

bool ContinuousQueryEngine::injectDelta(std::size_t id, StreamDelta delta) {
  bool queued = false;
  {
    std::unique_lock lock(mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) return false;
    ++stats_.batchesIngested;
    queued = enqueueLocked(lock, *it->second, std::move(delta));
  }
  if (queued) dispatchDrain(id);
  return queued;
}

void ContinuousQueryEngine::drainConsumer(std::size_t id) {
  std::unique_lock lock(mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end() || it->second->consumer == nullptr) return;
  if (it->second->draining) return;  // another thread is delivering
  it->second->draining = true;
  while (true) {
    it = subscriptions_.find(id);
    if (it == subscriptions_.end()) return;  // cancelled mid-drain
    Subscription& sub = *it->second;
    if (sub.queue.empty()) {
      sub.draining = false;
      return;
    }
    StreamDelta delta = std::move(sub.queue.front());
    sub.queue.pop_front();
    sub.notFull.notify_all();
    ++stats_.deltasDelivered;
    stats_.rowsDelivered += delta.rows.size();
    DeltaConsumer consumer = sub.consumer;
    lock.unlock();
    try {
      consumer(delta);  // plug-in code runs outside the lock (CP.22)
    } catch (...) {
      // A throwing consumer must not unwind the harvesting loop.
    }
    lock.lock();
  }
}

std::vector<StreamDelta> ContinuousQueryEngine::poll(std::size_t id,
                                                     std::size_t maxDeltas) {
  std::vector<StreamDelta> out;
  std::scoped_lock lock(mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return out;
  Subscription& sub = *it->second;
  const std::size_t count =
      maxDeltas == 0 ? sub.queue.size() : std::min(maxDeltas, sub.queue.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ++stats_.deltasDelivered;
    stats_.rowsDelivered += sub.queue.front().rows.size();
    out.push_back(std::move(sub.queue.front()));
    sub.queue.pop_front();
  }
  if (count > 0) sub.notFull.notify_all();
  return out;
}

std::size_t ContinuousQueryEngine::queueDepth(std::size_t id) const {
  std::scoped_lock lock(mu_);
  auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? 0 : it->second->queue.size();
}

void ContinuousQueryEngine::replayHistory(Subscription& sub) {
  // The poller records into History<Group> with two leading columns
  // (Source, RecordedAt); the subscription's projection and predicate
  // still resolve because the group's own columns are all present.
  sql::SelectStatement replay;
  replay.items.push_back(sql::SelectItem{});  // SELECT *
  replay.table = "History" + sub.statement.table;
  if (sub.statement.where != nullptr) {
    replay.where = sub.statement.where->clone();
  }
  std::unique_ptr<dbc::VectorResultSet> rows;
  try {
    rows = history_->query(replay);
  } catch (const SqlError&) {
    return;  // no history for this group (yet); not an error
  }
  // Rows are in insertion order: keep the newest `replayRows`, but
  // filter to the subscribed source first when one is pinned.
  std::vector<std::vector<util::Value>> kept;
  const auto sourceIdx = rows->metaData().columnIndex("Source");
  for (const auto& row : rows->rows()) {
    if (!sub.sourceUrl.empty() && sourceIdx.has_value()) {
      const std::string source = row[*sourceIdx].toString();
      std::string sourceHost;
      if (auto url = util::Url::parse(source)) sourceHost = url->host();
      if (!sourceMatches(sub.sourceUrl, sub.sourceHost, source, sourceHost)) {
        continue;
      }
    }
    kept.push_back(row);
  }
  if (kept.size() > sub.options.replayRows) {
    kept.erase(kept.begin(),
               kept.end() - static_cast<std::ptrdiff_t>(sub.options.replayRows));
  }
  if (kept.empty()) return;
  StreamDelta delta;
  delta.sequence = sub.nextSequence++;
  delta.sourceUrl = "history";
  delta.table = sub.statement.table;
  delta.timestamp = clock_.now();
  delta.columns = rows->metaData();
  delta.rows = std::move(kept);
  ++stats_.deltasQueued;
  stats_.rowsQueued += delta.rows.size();
  stats_.rowsReplayed += delta.rows.size();
  sub.queue.push_back(std::move(delta));
}

StreamStats ContinuousQueryEngine::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::stream
