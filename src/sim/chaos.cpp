#include "gridrm/sim/chaos.hpp"

#include <algorithm>

#include "gridrm/sim/event_loop.hpp"

namespace gridrm::sim {

ChaosInjector::ChaosInjector(net::Network& network, util::Clock& clock,
                             std::uint64_t seed)
    : network_(network), clock_(clock), rng_(seed) {}

void ChaosInjector::bindLoop(EventLoop& loop) {
  loop_ = &loop;
  // Migrate anything queued through the legacy path onto the loop;
  // actions_ is sorted by (when, order), so insertion order — and
  // therefore same-instant tie-breaking — is preserved.
  for (auto& a : actions_) scheduleOnLoop(a.when, std::move(a.fn));
  actions_.clear();
}

void ChaosInjector::scheduleOnLoop(util::TimePoint when,
                                   std::function<void()> fn) {
  ++pendingOnLoop_;
  loop_->schedule(when, [this, fn = std::move(fn)] {
    --pendingOnLoop_;
    ++firedOnLoop_;
    fn();
  });
}

void ChaosInjector::at(util::TimePoint when, std::function<void()> action) {
  if (loop_ != nullptr) {
    scheduleOnLoop(when, std::move(action));
    return;
  }
  Action entry{when, nextOrder_++, std::move(action)};
  auto it = std::upper_bound(
      actions_.begin(), actions_.end(), entry,
      [](const Action& a, const Action& b) {
        return a.when != b.when ? a.when < b.when : a.order < b.order;
      });
  actions_.insert(it, std::move(entry));
}

void ChaosInjector::lossBurst(const std::string& hostA,
                              const std::string& hostB, util::TimePoint from,
                              util::TimePoint until, double lossProbability) {
  net::LinkModel lossy = restoreLink_;
  lossy.lossProbability = lossProbability;
  at(from, [this, hostA, hostB, lossy] {
    network_.setLink(hostA, hostB, lossy);
  });
  at(until, [this, hostA, hostB] {
    network_.setLink(hostA, hostB, restoreLink_);
  });
}

void ChaosInjector::partition(const std::vector<std::string>& sideA,
                              const std::vector<std::string>& sideB,
                              util::TimePoint from, util::TimePoint until) {
  net::LinkModel cut = restoreLink_;
  cut.lossProbability = 1.0;
  for (const auto& a : sideA) {
    for (const auto& b : sideB) {
      at(from, [this, a, b, cut] { network_.setLink(a, b, cut); });
      at(until, [this, a, b] { network_.setLink(a, b, restoreLink_); });
    }
  }
}

void ChaosInjector::hostDownWindow(const std::string& host,
                                   util::TimePoint from,
                                   util::TimePoint until) {
  at(from, [this, host] { network_.setHostDown(host, true); });
  at(until, [this, host] { network_.setHostDown(host, false); });
}

std::size_t ChaosInjector::fireDue() {
  if (loop_ != nullptr) {
    const std::uint64_t before = firedOnLoop_;
    loop_->runUntil(loop_->now());
    return static_cast<std::size_t>(firedOnLoop_ - before);
  }
  const util::TimePoint now = clock_.now();
  std::size_t fired = 0;
  while (!actions_.empty() && actions_.front().when <= now) {
    // Pop before firing: an action may schedule follow-ups.
    Action action = std::move(actions_.front());
    actions_.erase(actions_.begin());
    action.fn();
    ++fired;
  }
  return fired;
}

std::size_t ChaosInjector::run(util::Duration step,
                               const std::function<void()>& pump,
                               util::Duration settle) {
  if (loop_ != nullptr) {
    // Compatibility wrapper: same step/pump cadence as the legacy
    // path, but time advances through the loop so any other scheduled
    // events (maintenance ticks, async deliveries) fire in order.
    const std::uint64_t before = firedOnLoop_;
    loop_->runUntil(loop_->now());
    if (pump) pump();
    util::TimePoint settleUntil =
        pendingOnLoop_ == 0 ? loop_->now() + settle : 0;
    while (pendingOnLoop_ > 0 || loop_->now() < settleUntil) {
      loop_->runFor(step);
      if (pump) pump();
      if (pendingOnLoop_ == 0 && settleUntil == 0) {
        settleUntil = loop_->now() + settle;
      }
    }
    return static_cast<std::size_t>(firedOnLoop_ - before);
  }
  std::size_t fired = fireDue();
  if (pump) pump();
  util::TimePoint settleUntil =
      actions_.empty() ? clock_.now() + settle : 0;
  while (!actions_.empty() || clock_.now() < settleUntil) {
    clock_.sleepFor(step);
    fired += fireDue();
    if (pump) pump();
    if (actions_.empty() && settleUntil == 0) {
      settleUntil = clock_.now() + settle;
    }
  }
  return fired;
}

}  // namespace gridrm::sim
