#include "gridrm/sim/chaos.hpp"

#include <algorithm>

namespace gridrm::sim {

ChaosInjector::ChaosInjector(net::Network& network, util::Clock& clock,
                             std::uint64_t seed)
    : network_(network), clock_(clock), rng_(seed) {}

void ChaosInjector::at(util::TimePoint when, std::function<void()> action) {
  Action entry{when, nextOrder_++, std::move(action)};
  auto it = std::upper_bound(
      actions_.begin(), actions_.end(), entry,
      [](const Action& a, const Action& b) {
        return a.when != b.when ? a.when < b.when : a.order < b.order;
      });
  actions_.insert(it, std::move(entry));
}

void ChaosInjector::lossBurst(const std::string& hostA,
                              const std::string& hostB, util::TimePoint from,
                              util::TimePoint until, double lossProbability) {
  net::LinkModel lossy = restoreLink_;
  lossy.lossProbability = lossProbability;
  at(from, [this, hostA, hostB, lossy] {
    network_.setLink(hostA, hostB, lossy);
  });
  at(until, [this, hostA, hostB] {
    network_.setLink(hostA, hostB, restoreLink_);
  });
}

void ChaosInjector::partition(const std::vector<std::string>& sideA,
                              const std::vector<std::string>& sideB,
                              util::TimePoint from, util::TimePoint until) {
  net::LinkModel cut = restoreLink_;
  cut.lossProbability = 1.0;
  for (const auto& a : sideA) {
    for (const auto& b : sideB) {
      at(from, [this, a, b, cut] { network_.setLink(a, b, cut); });
      at(until, [this, a, b] { network_.setLink(a, b, restoreLink_); });
    }
  }
}

void ChaosInjector::hostDownWindow(const std::string& host,
                                   util::TimePoint from,
                                   util::TimePoint until) {
  at(from, [this, host] { network_.setHostDown(host, true); });
  at(until, [this, host] { network_.setHostDown(host, false); });
}

std::size_t ChaosInjector::fireDue() {
  const util::TimePoint now = clock_.now();
  std::size_t fired = 0;
  while (!actions_.empty() && actions_.front().when <= now) {
    // Pop before firing: an action may schedule follow-ups.
    Action action = std::move(actions_.front());
    actions_.erase(actions_.begin());
    action.fn();
    ++fired;
  }
  return fired;
}

std::size_t ChaosInjector::run(util::Duration step,
                               const std::function<void()>& pump,
                               util::Duration settle) {
  std::size_t fired = fireDue();
  if (pump) pump();
  util::TimePoint settleUntil =
      actions_.empty() ? clock_.now() + settle : 0;
  while (!actions_.empty() || clock_.now() < settleUntil) {
    clock_.sleepFor(step);
    fired += fireDue();
    if (pump) pump();
    if (actions_.empty() && settleUntil == 0) {
      settleUntil = clock_.now() + settle;
    }
  }
  return fired;
}

}  // namespace gridrm::sim
