#include "gridrm/sim/topology.hpp"

namespace gridrm::sim {

Topology::Topology(TopologyOptions options) : options_(std::move(options)) {
  network_ = std::make_unique<net::Network>(loop_.clock(), options_.seed);
  network_->setDefaultLink(options_.defaultLink);
  // Charge mode: synchronous requests account their round-trip against
  // the drainable latency counter instead of sleeping the loop's clock
  // (which only the loop may advance).
  network_->attachScheduler(&loop_);

  if (options_.directoryReplicas <= 1) {
    directories_.push_back(
        std::make_unique<global::GmaDirectory>(*network_, directoryAddress()));
  } else {
    std::vector<net::Address> nodes;
    nodes.reserve(options_.directoryReplicas);
    for (std::size_t i = 0; i < options_.directoryReplicas; ++i) {
      nodes.push_back(directoryReplicaAddress(i));
    }
    const std::size_t shards = options_.directoryShards > 0
                                   ? options_.directoryShards
                                   : options_.directoryReplicas;
    directoryMap_ =
        global::ShardMap::build(nodes, shards, options_.directoryReplication);
    for (std::size_t i = 0; i < options_.directoryReplicas; ++i) {
      global::DirectoryOptions dopt;
      dopt.map = directoryMap_;
      directories_.push_back(std::make_unique<global::GmaDirectory>(
          *network_, nodes[i], std::move(dopt)));
    }
    if (options_.directorySyncInterval > 0) {
      loop_.scheduleEvery(options_.directorySyncInterval, [this] {
        for (auto& replica : directories_) {
          if (replica) (void)replica->syncTick();
        }
      });
    }
  }

  sites_.reserve(options_.gateways);
  for (std::size_t g = 0; g < options_.gateways; ++g) {
    agents::SiteOptions so;
    so.siteName = "site" + std::to_string(g);
    so.hostCount = options_.hostsPerGateway;
    so.seed = options_.seed + g * 10007;
    so.withGanglia = options_.fullAgentSet;
    so.withNws = options_.fullAgentSet;
    so.withNetLogger = options_.fullAgentSet;
    so.withScms = options_.fullAgentSet;
    so.withSql = options_.fullAgentSet;
    so.withMds = options_.fullAgentSet;
    sites_.push_back(
        std::make_unique<agents::SiteSimulation>(*network_, loop_.clock(), so));
  }

  // Let the host models evolve away from boot state before anything
  // measures them.
  if (options_.warmup > 0) loop_.runFor(options_.warmup);

  gateways_.reserve(options_.gateways);
  admins_.reserve(options_.gateways);
  for (std::size_t g = 0; g < options_.gateways; ++g) {
    core::GatewayOptions o = options_.gatewayBase;
    o.name = "gw" + std::to_string(g);
    o.host = "gw" + std::to_string(g);
    gateways_.push_back(
        std::make_unique<core::Gateway>(*network_, loop_.clock(), o));
    admins_.push_back(gateways_[g]->openSession(core::Principal::admin()));
    for (const auto& url : sites_[g]->dataSourceUrls()) {
      gateways_[g]->addDataSource(admins_[g], url);
    }
    if (options_.trapInterval > 0) {
      sites_[g]->setTrapSink(gateways_[g]->eventAddress());
    }
    sites_[g]->scheduleMaintenance(loop_, options_.trapInterval,
                                   options_.refreshInterval);
  }

  if (options_.federation) {
    globals_.reserve(options_.gateways);
    for (std::size_t g = 0; g < options_.gateways; ++g) {
      globals_.push_back(std::make_unique<global::GlobalLayer>(
          *gateways_[g], directorySeeds(), options_.globalOptions));
      globals_[g]->start();
      // Lease renewal must ride the loop: simulated time outruns the
      // 120s directory lease within one long sweep otherwise.
      if (options_.globalTickInterval > 0) {
        loop_.scheduleEvery(options_.globalTickInterval,
                            [layer = globals_[g].get()] { layer->tick(); });
      }
    }
  }

  // Setup traffic (registration, source probing) charged latency; a
  // measurement epoch starts clean.
  (void)net::Network::drainChargedLatency();
}

net::Address Topology::directoryReplicaAddress(std::size_t i) const {
  if (options_.directoryReplicas <= 1) return directoryAddress();
  return {"gma" + std::to_string(i), global::kDirectoryPort};
}

std::vector<net::Address> Topology::directorySeeds() const {
  std::vector<net::Address> seeds;
  seeds.reserve(directories_.empty() ? 1 : options_.directoryReplicas);
  if (options_.directoryReplicas <= 1) {
    seeds.push_back(directoryAddress());
  } else {
    for (std::size_t i = 0; i < options_.directoryReplicas; ++i) {
      seeds.push_back(directoryReplicaAddress(i));
    }
  }
  return seeds;
}

void Topology::restartDirectoryReplica(std::size_t i) {
  global::DirectoryOptions dopt;
  dopt.map = directoryMap_;
  // Destroy first (unbinds the address), then rebuild empty: the new
  // incarnation knows the shard map but none of the entries, exactly a
  // process restart that lost its in-memory store.
  directories_.at(i).reset();
  directories_.at(i) = std::make_unique<global::GmaDirectory>(
      *network_, directoryReplicaAddress(i), std::move(dopt));
}

Topology::~Topology() {
  // Sites cancel their maintenance events in their own destructors;
  // global layers stop before their gateways by member order.
}

void Topology::quiesce() {
  for (;;) {
    for (auto& gw : gateways_) gw->scheduler().waitIdle();
    bool allIdle = true;
    for (auto& gw : gateways_) {
      if (!gw->scheduler().idle()) {
        allIdle = false;
        break;
      }
    }
    if (allIdle) return;
  }
}

}  // namespace gridrm::sim
