#include "gridrm/sim/event_loop.hpp"

#include <algorithm>

namespace gridrm::sim {

EventLoop::EventLoop(util::TimePoint start) : clock_(start) {
  clock_.setSingleWriter(true);
}

EventLoop::~EventLoop() { clock_.setSingleWriter(false); }

EventId EventLoop::enqueue(util::TimePoint when, util::Duration period,
                           std::function<void()> fn) {
  const EventId id = nextId_++;
  // Clamp to now: an event scheduled in the past is due immediately,
  // after everything already due (its seq is newest).
  when = std::max(when, clock_.now());
  handlers_.emplace(id, std::make_shared<Handler>(Handler{std::move(fn),
                                                          period}));
  heap_.push(HeapEntry{when, nextSeq_++, id});
  return id;
}

EventId EventLoop::schedule(util::TimePoint when, std::function<void()> fn) {
  return enqueue(when, 0, std::move(fn));
}

EventId EventLoop::scheduleAfter(util::Duration delay,
                                 std::function<void()> fn) {
  return enqueue(clock_.now() + delay, 0, std::move(fn));
}

EventId EventLoop::scheduleEvery(util::Duration period,
                                 std::function<void()> fn) {
  return scheduleEvery(period, period, std::move(fn));
}

EventId EventLoop::scheduleEvery(util::Duration period,
                                 util::Duration firstDelay,
                                 std::function<void()> fn) {
  return enqueue(clock_.now() + firstDelay, period, std::move(fn));
}

bool EventLoop::cancel(EventId id) {
  // The heap entry (if any) goes stale and is skipped on pop.
  return handlers_.erase(id) != 0;
}

void EventLoop::fire(const HeapEntry& entry,
                     const std::shared_ptr<Handler>& handler) {
  clock_.advanceTo(entry.when);
  ++eventsFired_;
  if (trace_ != nullptr) {
    trace_->append("t=");
    trace_->append(std::to_string(entry.when));
    trace_->append(" id=");
    trace_->append(std::to_string(entry.id));
    trace_->push_back('\n');
  }
  handler->fn();
}

std::size_t EventLoop::runUntil(util::TimePoint t) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().when <= t) {
    const HeapEntry entry = heap_.top();
    heap_.pop();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled: stale heap entry
    std::shared_ptr<Handler> handler = it->second;
    if (handler->period > 0) {
      // Re-arm before firing so the callback can cancel its own id.
      heap_.push(HeapEntry{entry.when + handler->period, nextSeq_++,
                           entry.id});
    } else {
      handlers_.erase(it);
    }
    fire(entry, handler);
    ++fired;
  }
  clock_.advanceTo(t);
  return fired;
}

bool EventLoop::runOne() {
  while (!heap_.empty()) {
    const HeapEntry entry = heap_.top();
    heap_.pop();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;
    std::shared_ptr<Handler> handler = it->second;
    if (handler->period > 0) {
      heap_.push(HeapEntry{entry.when + handler->period, nextSeq_++,
                           entry.id});
    } else {
      handlers_.erase(it);
    }
    fire(entry, handler);
    return true;
  }
  return false;
}

std::optional<util::TimePoint> EventLoop::nextEventTime() const {
  // Skip stale (cancelled) entries without mutating the heap.
  auto heapCopy = heap_;
  while (!heapCopy.empty()) {
    const HeapEntry& top = heapCopy.top();
    if (handlers_.count(top.id) != 0) return top.when;
    heapCopy.pop();
  }
  return std::nullopt;
}

}  // namespace gridrm::sim
