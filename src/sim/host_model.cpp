#include "gridrm/sim/host_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace gridrm::sim {

namespace {
// Largest number of 1-second model steps taken per refresh. A gateway
// that has been idle for an hour should not pay an hour of simulation:
// beyond the cap the model jumps (the process is mean-reverting, so the
// distribution after a long gap is the stationary one anyway).
constexpr int kMaxStepsPerRefresh = 600;
constexpr double kStepSeconds = 1.0;
}  // namespace

HostModel::HostModel(HostSpec spec, util::Clock& clock, std::uint64_t seed)
    : spec_(std::move(spec)), clock_(clock), rng_(seed) {
  bootTime_ = clock_.now();
  lastStep_ = bootTime_;
  diurnalPhase_ = rng_.uniform(0.0, 2.0 * util::kPi);
  loadMean_ = rng_.uniform(0.15, 0.7) * spec_.cpuCount;
  load1_ = load5_ = load15_ = loadMean_;
  memUsedMb_ = 0.25 * static_cast<double>(spec_.memTotalMb);
  diskUsedMb_ = rng_.uniform(0.2, 0.6) * static_cast<double>(spec_.diskTotalMb);
  procBase_ = 60 + static_cast<int>(rng_.below(60));
}

void HostModel::refresh() {
  std::scoped_lock lock(mu_);
  advanceTo(clock_.now());
}

void HostModel::advanceTo(util::TimePoint t) {
  if (t <= lastStep_) return;
  double gapSeconds = static_cast<double>(t - lastStep_) / util::kSecond;
  int steps = static_cast<int>(gapSeconds / kStepSeconds);
  if (steps > kMaxStepsPerRefresh) {
    // Jump: charge the skipped time to the counters at the mean rate,
    // then take the capped number of fine-grained steps.
    const double skipped = (steps - kMaxStepsPerRefresh) * kStepSeconds;
    netInBytes_ += skipped * 40e3 * burstFactor_;
    netOutBytes_ += skipped * 25e3 * burstFactor_;
    steps = kMaxStepsPerRefresh;
  }
  for (int i = 0; i < steps; ++i) step(kStepSeconds);
  lastStep_ = t;
}

void HostModel::step(double dt) {
  // Diurnal drift of the load mean: period ~6 simulated hours so tests
  // running minutes of sim time still see drift.
  diurnalPhase_ += 2.0 * util::kPi * dt / (6.0 * 3600.0);
  const double diurnal = 0.5 * (1.0 + std::sin(diurnalPhase_));
  const double target =
      loadMean_ * (0.6 + 0.8 * diurnal);  // in [0.6, 1.4] x mean

  // AR(1) mean reversion with Gaussian innovation.
  const double alpha = 0.05 * dt;
  const double sigma = 0.06 * std::sqrt(dt);
  load1_ += alpha * (target - load1_) + sigma * rng_.gaussian();
  load1_ = std::clamp(load1_, 0.0, 4.0 * spec_.cpuCount);
  // 5- and 15-minute figures are EMAs of the 1-minute load.
  load5_ += (dt / 300.0) * (load1_ - load5_);
  load15_ += (dt / 900.0) * (load1_ - load15_);

  // Memory tracks load with noise; swap engages when memory is tight.
  const double memTarget =
      (0.2 + 0.5 * std::min(1.0, load1_ / spec_.cpuCount)) *
      static_cast<double>(spec_.memTotalMb);
  memUsedMb_ += 0.1 * dt * (memTarget - memUsedMb_) +
                2.0 * std::sqrt(dt) * rng_.gaussian();
  memUsedMb_ =
      std::clamp(memUsedMb_, 0.05 * spec_.memTotalMb,
                 0.98 * static_cast<double>(spec_.memTotalMb));
  const double memPressure =
      memUsedMb_ / static_cast<double>(spec_.memTotalMb);
  const double swapTarget =
      memPressure > 0.85 ? (memPressure - 0.85) * 4.0 * spec_.swapTotalMb : 0.0;
  swapUsedMb_ += 0.2 * dt * (swapTarget - swapUsedMb_);
  swapUsedMb_ = std::clamp(swapUsedMb_, 0.0,
                           static_cast<double>(spec_.swapTotalMb));

  // Disk fills slowly and is occasionally cleaned up.
  diskUsedMb_ += dt * rng_.uniform(0.0, 0.05);
  if (rng_.chance(0.0005 * dt)) diskUsedMb_ *= 0.9;  // log rotation
  diskUsedMb_ = std::clamp(diskUsedMb_, 0.0,
                           0.99 * static_cast<double>(spec_.diskTotalMb));

  // Bursty traffic: burstFactor jumps occasionally, decays toward 1.
  if (rng_.chance(0.01 * dt)) burstFactor_ = rng_.uniform(3.0, 12.0);
  burstFactor_ += 0.05 * dt * (1.0 - burstFactor_);
  const double inRate = 40e3 * burstFactor_ * (0.5 + rng_.uniform());
  const double outRate = 25e3 * burstFactor_ * (0.5 + rng_.uniform());
  netInBytes_ += inRate * dt;
  netOutBytes_ += outRate * dt;
}

HostSnapshot HostModel::snapshot() {
  const util::TimePoint now = clock_.now();
  std::scoped_lock lock(mu_);
  advanceTo(now);
  HostSnapshot snap;
  snap.load1 = load1_;
  snap.load5 = load5_;
  snap.load15 = load15_;
  const double busy =
      std::min(1.0, load1_ / static_cast<double>(spec_.cpuCount));
  snap.cpuUserPct = std::clamp(busy * 80.0, 0.0, 100.0);
  snap.cpuSystemPct = std::clamp(busy * 15.0, 0.0, 100.0);
  snap.cpuIdlePct =
      std::clamp(100.0 - snap.cpuUserPct - snap.cpuSystemPct, 0.0, 100.0);
  snap.memUsedMb = static_cast<std::int64_t>(memUsedMb_);
  snap.memFreeMb = spec_.memTotalMb - snap.memUsedMb;
  snap.swapFreeMb = spec_.swapTotalMb - static_cast<std::int64_t>(swapUsedMb_);
  snap.diskFreeMb = spec_.diskTotalMb - static_cast<std::int64_t>(diskUsedMb_);
  snap.netInBytes = static_cast<std::int64_t>(netInBytes_);
  snap.netOutBytes = static_cast<std::int64_t>(netOutBytes_);
  snap.processCount = procBase_ + static_cast<int>(load1_ * 15.0);
  snap.uptimeSeconds = (now - bootTime_) / util::kSecond;
  return snap;
}

std::int64_t HostModel::uptimeSeconds() {
  return (clock_.now() - bootTime_) / util::kSecond;
}

util::TimePoint HostModel::lastUpdate() const {
  std::scoped_lock lock(mu_);
  return lastStep_;
}

ClusterModel::ClusterModel(std::string clusterName, std::size_t hostCount,
                           util::Clock& clock, std::uint64_t seed,
                           const HostSpec& baseSpec)
    : name_(std::move(clusterName)) {
  hosts_.reserve(hostCount);
  for (std::size_t i = 0; i < hostCount; ++i) {
    HostSpec spec = baseSpec;
    char suffix[24];
    std::snprintf(suffix, sizeof(suffix), "%02zu", i);
    spec.name = name_ + "-node" + suffix;
    spec.clusterName = name_;
    hosts_.push_back(
        std::make_unique<HostModel>(std::move(spec), clock, seed + i * 7919));
  }
}

HostModel* ClusterModel::findHost(const std::string& hostName) {
  for (auto& h : hosts_) {
    if (h->name() == hostName) return h.get();
  }
  return nullptr;
}

void ClusterModel::refreshAll() {
  for (auto& h : hosts_) h->refresh();
}

std::vector<std::string> ClusterModel::hostNames() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& h : hosts_) names.push_back(h->name());
  return names;
}

}  // namespace gridrm::sim
