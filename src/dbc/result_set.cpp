#include "gridrm/dbc/result_set.hpp"

#include "gridrm/util/strings.hpp"

namespace gridrm::dbc {

const ColumnInfo& ResultSetMetaData::column(std::size_t i) const {
  if (i >= columns_.size()) {
    throw SqlError(ErrorCode::NoSuchColumn,
                   "column index " + std::to_string(i) + " out of range");
  }
  return columns_[i];
}

std::optional<std::size_t> ResultSetMetaData::columnIndex(
    const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (util::iequals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

const Value& ResultSet::get(const std::string& columnName) const {
  auto idx = metaData().columnIndex(columnName);
  if (!idx) {
    throw SqlError(ErrorCode::NoSuchColumn, "no column '" + columnName + "'");
  }
  const Value& v = get(*idx);
  wasNull_ = v.isNull();
  return v;
}

std::string ResultSet::getString(const std::string& columnName) const {
  return get(columnName).toString();
}
std::int64_t ResultSet::getInt(const std::string& columnName) const {
  return get(columnName).toInt();
}
double ResultSet::getReal(const std::string& columnName) const {
  return get(columnName).toReal();
}
bool ResultSet::getBool(const std::string& columnName) const {
  return get(columnName).toBool();
}

bool VectorResultSet::next() {
  if (!started_) {
    started_ = true;
    cursor_ = 0;
  } else {
    ++cursor_;
  }
  return cursor_ < rows_.size();
}

const Value& VectorResultSet::get(std::size_t column) const {
  if (!started_ || cursor_ >= rows_.size()) {
    throw SqlError(ErrorCode::Generic, "cursor is not on a row");
  }
  const auto& row = rows_[cursor_];
  if (column >= row.size()) {
    throw SqlError(ErrorCode::NoSuchColumn,
                   "column index " + std::to_string(column) + " out of range");
  }
  wasNull_ = row[column].isNull();
  return row[column];
}

std::unique_ptr<VectorResultSet> VectorResultSet::materialize(
    ResultSet& source) {
  std::vector<std::vector<Value>> rows;
  const std::size_t width = source.metaData().columnCount();
  while (source.next()) {
    std::vector<Value> row;
    row.reserve(width);
    for (std::size_t i = 0; i < width; ++i) row.push_back(source.get(i));
    rows.push_back(std::move(row));
  }
  return std::make_unique<VectorResultSet>(source.metaData(), std::move(rows));
}

bool SharedResultSet::next() {
  if (!started_) {
    started_ = true;
    cursor_ = 0;
  } else {
    ++cursor_;
  }
  return cursor_ < rs_->rows().size();
}

const Value& SharedResultSet::get(std::size_t column) const {
  if (!started_ || cursor_ >= rs_->rows().size()) {
    throw SqlError(ErrorCode::Generic, "cursor is not on a row");
  }
  const auto& row = rs_->rows()[cursor_];
  if (column >= row.size()) {
    throw SqlError(ErrorCode::NoSuchColumn,
                   "column index " + std::to_string(column) + " out of range");
  }
  wasNull_ = row[column].isNull();
  return row[column];
}

ResultSetBuilder& ResultSetBuilder::addColumn(std::string name, ValueType type,
                                              std::string unit,
                                              std::string table) {
  columns_.push_back(ColumnInfo{std::move(name), type, std::move(unit),
                                std::move(table)});
  return *this;
}

ResultSetBuilder& ResultSetBuilder::addRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    throw SqlError(ErrorCode::Generic,
                   "row width does not match declared columns");
  }
  rows_.push_back(std::move(row));
  return *this;
}

std::unique_ptr<VectorResultSet> ResultSetBuilder::build() {
  return std::make_unique<VectorResultSet>(
      ResultSetMetaData(std::move(columns_)), std::move(rows_));
}

}  // namespace gridrm::dbc
