#include "gridrm/dbc/result_io.hpp"

#include "gridrm/util/strings.hpp"

namespace gridrm::dbc {

namespace {

// Cells and descriptors are newline/pipe-delimited, so both characters
// (and the escape itself) are escaped inside fields.
std::string escapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '|':
        out += "\\p";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string unescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'p':
        out.push_back('|');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

/// Split on unescaped '|'.
std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cur.push_back(line[i]);
      cur.push_back(line[i + 1]);
      ++i;
      continue;
    }
    if (line[i] == '|') {
      out.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(line[i]);
  }
  out.push_back(std::move(cur));
  return out;
}

std::string encodeCell(const Value& v) {
  switch (v.type()) {
    case ValueType::Null:
      return "N";
    case ValueType::Bool:
      return v.asBool() ? "B1" : "B0";
    case ValueType::Int:
      return "I" + std::to_string(v.asInt());
    case ValueType::Real:
      return "R" + v.toString();
    case ValueType::String:
      return "S" + escapeField(v.asString());
  }
  return "N";
}

Value decodeCell(const std::string& cell) {
  if (cell.empty()) throw SqlError(ErrorCode::Generic, "empty cell");
  const std::string body = cell.substr(1);
  switch (cell[0]) {
    case 'N':
      return Value::null();
    case 'B':
      return Value(body == "1");
    case 'I':
      return Value(util::Value::parse(body).toInt());
    case 'R':
      return Value(util::Value::parse(body).toReal());
    case 'S':
      return Value(unescapeField(body));
    default:
      throw SqlError(ErrorCode::Generic,
                     std::string("bad cell tag '") + cell[0] + "'");
  }
}

ValueType typeFromName(const std::string& name) {
  if (name == "BOOL") return ValueType::Bool;
  if (name == "INT") return ValueType::Int;
  if (name == "REAL") return ValueType::Real;
  if (name == "STRING") return ValueType::String;
  return ValueType::Null;
}

}  // namespace

std::string serializeResultSet(ResultSet& rs) {
  const ResultSetMetaData& meta = rs.metaData();
  std::string out = "RS1\n";
  out += std::to_string(meta.columnCount());
  out += '\n';
  for (std::size_t i = 0; i < meta.columnCount(); ++i) {
    const ColumnInfo& c = meta.column(i);
    out += escapeField(c.name);
    out += '|';
    out += util::valueTypeName(c.type);
    out += '|';
    out += escapeField(c.unit);
    out += '|';
    out += escapeField(c.table);
    out += '\n';
  }
  std::string rowsText;
  std::size_t rows = 0;
  while (rs.next()) {
    for (std::size_t i = 0; i < meta.columnCount(); ++i) {
      if (i != 0) rowsText += '|';
      rowsText += encodeCell(rs.get(i));
    }
    rowsText += '\n';
    ++rows;
  }
  out += std::to_string(rows);
  out += '\n';
  out += rowsText;
  return out;
}

std::unique_ptr<VectorResultSet> deserializeResultSet(const std::string& text) {
  auto lines = util::split(text, '\n');
  std::size_t i = 0;
  auto nextLine = [&]() -> const std::string& {
    if (i >= lines.size()) {
      throw SqlError(ErrorCode::Generic, "truncated result set");
    }
    return lines[i++];
  };

  if (nextLine() != "RS1") {
    throw SqlError(ErrorCode::Generic, "bad result-set header");
  }
  const std::size_t ncols =
      static_cast<std::size_t>(Value::parse(nextLine()).toInt(-1));
  if (ncols == static_cast<std::size_t>(-1)) {
    throw SqlError(ErrorCode::Generic, "bad column count");
  }
  std::vector<ColumnInfo> columns;
  columns.reserve(ncols);
  for (std::size_t c = 0; c < ncols; ++c) {
    auto fields = splitFields(nextLine());
    if (fields.size() != 4) {
      throw SqlError(ErrorCode::Generic, "bad column descriptor");
    }
    columns.push_back(ColumnInfo{unescapeField(fields[0]),
                                 typeFromName(fields[1]),
                                 unescapeField(fields[2]),
                                 unescapeField(fields[3])});
  }
  const std::size_t nrows =
      static_cast<std::size_t>(Value::parse(nextLine()).toInt(-1));
  if (nrows == static_cast<std::size_t>(-1)) {
    throw SqlError(ErrorCode::Generic, "bad row count");
  }
  std::vector<std::vector<Value>> rows;
  rows.reserve(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    auto cells = splitFields(nextLine());
    if (cells.size() != ncols) {
      throw SqlError(ErrorCode::Generic, "row width mismatch");
    }
    std::vector<Value> row;
    row.reserve(ncols);
    for (const auto& cell : cells) row.push_back(decodeCell(cell));
    rows.push_back(std::move(row));
  }
  return std::make_unique<VectorResultSet>(ResultSetMetaData(std::move(columns)),
                                           std::move(rows));
}

}  // namespace gridrm::dbc
