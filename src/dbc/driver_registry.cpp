#include "gridrm/dbc/driver_registry.hpp"

#include <algorithm>

namespace gridrm::dbc {

void DriverRegistry::registerDriver(std::shared_ptr<Driver> driver) {
  if (!driver) return;
  std::scoped_lock lock(mu_);
  auto it = std::find_if(drivers_.begin(), drivers_.end(),
                         [&](const std::shared_ptr<Driver>& d) {
                           return d->name() == driver->name();
                         });
  if (it != drivers_.end()) {
    *it = std::move(driver);  // runtime upgrade keeps registration order
  } else {
    drivers_.push_back(std::move(driver));
  }
}

bool DriverRegistry::unregisterDriver(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = std::find_if(
      drivers_.begin(), drivers_.end(),
      [&](const std::shared_ptr<Driver>& d) { return d->name() == name; });
  if (it == drivers_.end()) return false;
  drivers_.erase(it);
  return true;
}

std::shared_ptr<Driver> DriverRegistry::find(const std::string& name) const {
  std::scoped_lock lock(mu_);
  for (const auto& d : drivers_) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

std::vector<std::shared_ptr<Driver>> DriverRegistry::drivers() const {
  std::scoped_lock lock(mu_);
  return drivers_;
}

std::shared_ptr<Driver> DriverRegistry::locate(const util::Url& url,
                                               std::size_t* scanned) const {
  // Copy the list under the lock, probe outside it: acceptsUrl is
  // driver code and must not run while holding the registry lock (CP.22).
  std::vector<std::shared_ptr<Driver>> snapshot = drivers();
  std::size_t probes = 0;
  for (const auto& d : snapshot) {
    ++probes;
    if (d->acceptsUrl(url)) {
      if (scanned) *scanned = probes;
      return d;
    }
  }
  if (scanned) *scanned = probes;
  return nullptr;
}

std::size_t DriverRegistry::size() const {
  std::scoped_lock lock(mu_);
  return drivers_.size();
}

}  // namespace gridrm::dbc
