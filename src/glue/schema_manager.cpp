#include "gridrm/glue/schema_manager.hpp"

#include "gridrm/util/strings.hpp"

namespace gridrm::glue {

void GroupMapping::map(const std::string& attribute, std::string native,
                       double scale) {
  attrs_[util::toLower(attribute)] =
      AttributeMapping{std::move(native), scale};
}

std::optional<AttributeMapping> GroupMapping::find(
    const std::string& attribute) const {
  auto it = attrs_.find(util::toLower(attribute));
  if (it == attrs_.end()) return std::nullopt;
  return it->second;
}

void SchemaManager::setSchema(const Schema* schema) {
  schema_.store(schema != nullptr ? schema : &Schema::builtin());
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

GroupMapping& DriverSchemaMap::group(const std::string& groupName) {
  const std::string key = util::toLower(groupName);
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    it = groups_.emplace(key, GroupMapping(groupName)).first;
  }
  return it->second;
}

const GroupMapping* DriverSchemaMap::findGroup(
    const std::string& groupName) const {
  auto it = groups_.find(util::toLower(groupName));
  return it == groups_.end() ? nullptr : &it->second;
}

std::vector<std::string> DriverSchemaMap::groupNames() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [key, g] : groups_) names.push_back(g.group());
  return names;
}

void SchemaManager::registerDriverMap(DriverSchemaMap map) {
  auto shared = std::make_shared<const DriverSchemaMap>(std::move(map));
  std::scoped_lock lock(mu_);
  maps_[shared->driver()] = std::move(shared);
}

std::shared_ptr<const DriverSchemaMap> SchemaManager::driverMap(
    const std::string& driverName) const {
  std::scoped_lock lock(mu_);
  auto it = maps_.find(driverName);
  return it == maps_.end() ? nullptr : it->second;
}

}  // namespace gridrm::glue
