#include "gridrm/glue/schema.hpp"

#include "gridrm/util/strings.hpp"

namespace gridrm::glue {

using util::ValueType;

const AttributeDef* GroupDef::find(const std::string& attrName) const {
  for (const auto& a : attributes_) {
    if (util::iequals(a.name, attrName)) return &a;
  }
  return nullptr;
}

std::optional<std::size_t> GroupDef::indexOf(const std::string& attrName) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (util::iequals(attributes_[i].name, attrName)) return i;
  }
  return std::nullopt;
}

void Schema::addGroup(GroupDef group) {
  for (auto& g : groups_) {
    if (util::iequals(g.name(), group.name())) {
      g = std::move(group);
      return;
    }
  }
  groups_.push_back(std::move(group));
}

const GroupDef* Schema::findGroup(const std::string& name) const {
  for (const auto& g : groups_) {
    if (util::iequals(g.name(), name)) return &g;
  }
  return nullptr;
}

std::vector<std::string> Schema::groupNames() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& g : groups_) names.push_back(g.name());
  return names;
}

const Schema& Schema::builtin() {
  static const Schema schema = [] {
    Schema s;
    // Every group carries HostName so multi-host results consolidate and
    // so clients can filter (WHERE HostName = '...').
    const AttributeDef hostName{"HostName", ValueType::String, "",
                                "canonical host name"};
    const AttributeDef clusterName{"ClusterName", ValueType::String, "",
                                   "owning cluster"};
    const AttributeDef timestamp{"Timestamp", ValueType::Int, "us",
                                 "sample time (microseconds)"};

    s.addGroup(GroupDef(
        "Host",
        {hostName, clusterName, timestamp,
         {"UpTime", ValueType::Int, "seconds", "seconds since boot"},
         {"ProcessCount", ValueType::Int, "", "number of processes"},
         {"OSName", ValueType::String, "", "operating system"},
         {"OSVersion", ValueType::String, "", "kernel / release"},
         {"Architecture", ValueType::String, "", "platform architecture"}}));

    s.addGroup(GroupDef(
        "Processor",
        {hostName, clusterName, timestamp,
         {"CPUCount", ValueType::Int, "", "number of processors"},
         {"ClockSpeed", ValueType::Int, "MHz", "nominal clock speed"},
         {"Model", ValueType::String, "", "processor model"},
         {"Load1", ValueType::Real, "", "1-minute run-queue length"},
         {"Load5", ValueType::Real, "", "5-minute run-queue length"},
         {"Load15", ValueType::Real, "", "15-minute run-queue length"},
         {"UserPct", ValueType::Real, "percent", "time in user mode"},
         {"SystemPct", ValueType::Real, "percent", "time in system mode"},
         {"IdlePct", ValueType::Real, "percent", "idle time"}}));

    s.addGroup(GroupDef(
        "Memory",
        {hostName, clusterName, timestamp,
         {"RAMSize", ValueType::Int, "MB", "total physical memory"},
         {"RAMAvailable", ValueType::Int, "MB", "free physical memory"},
         {"VirtualSize", ValueType::Int, "MB", "total swap"},
         {"VirtualAvailable", ValueType::Int, "MB", "free swap"}}));

    s.addGroup(GroupDef(
        "OperatingSystem",
        {hostName, clusterName, timestamp,
         {"Name", ValueType::String, "", "operating system name"},
         {"Release", ValueType::String, "", "release / kernel version"},
         {"BootTime", ValueType::Int, "us", "time of last boot"}}));

    s.addGroup(GroupDef(
        "FileSystem",
        {hostName, clusterName, timestamp,
         {"Root", ValueType::String, "", "mount point"},
         {"Size", ValueType::Int, "MB", "total capacity"},
         {"AvailableSpace", ValueType::Int, "MB", "free capacity"},
         {"ReadOnly", ValueType::Bool, "", "mounted read-only"}}));

    s.addGroup(GroupDef(
        "NetworkAdapter",
        {hostName, clusterName, timestamp,
         {"Name", ValueType::String, "", "interface name"},
         {"Speed", ValueType::Int, "Mbps", "nominal line rate"},
         {"InBytes", ValueType::Int, "bytes", "received byte counter"},
         {"OutBytes", ValueType::Int, "bytes", "transmitted byte counter"}}));

    s.addGroup(GroupDef(
        "ComputeElement",
        {clusterName, timestamp,
         {"Name", ValueType::String, "", "CE identifier"},
         {"TotalCPUs", ValueType::Int, "", "CPUs across the element"},
         {"FreeCPUs", ValueType::Int, "", "idle CPUs (load < 0.5)"},
         {"HostCount", ValueType::Int, "", "number of worker hosts"},
         {"AverageLoad", ValueType::Real, "", "mean 1-minute load"}}));

    s.addGroup(GroupDef(
        "StorageElement",
        {clusterName, timestamp,
         {"Name", ValueType::String, "", "SE identifier"},
         {"TotalSize", ValueType::Int, "MB", "aggregate capacity"},
         {"AvailableSize", ValueType::Int, "MB", "aggregate free space"}}));

    // NWS-style derived observations. GLUE at the time had no finished
    // network-measurement schema; this group fills that gap the same way
    // the GridRM prototype had to.
    s.addGroup(GroupDef(
        "NetworkForecast",
        {hostName, timestamp,
         {"Resource", ValueType::String, "",
          "measured resource (latency, bandwidth, availableCpu)"},
         {"Measurement", ValueType::Real, "", "latest measurement"},
         {"Forecast", ValueType::Real, "", "forecast next value"},
         {"ForecastError", ValueType::Real, "", "forecaster MSE"}}));

    return s;
  }();
  return schema;
}

std::vector<ValidationIssue> validateRow(
    const GroupDef& group,
    const std::vector<std::pair<std::string, util::Value>>& row) {
  std::vector<ValidationIssue> issues;
  for (const auto& [name, value] : row) {
    const AttributeDef* def = group.find(name);
    if (def == nullptr) {
      issues.push_back({name, "not a member of group " + group.name()});
      continue;
    }
    if (value.isNull()) continue;  // NULL always permitted (section 3.2.3)
    const bool numericOk = def->type == util::ValueType::Real &&
                           value.type() == util::ValueType::Int;
    if (value.type() != def->type && !numericOk) {
      issues.push_back(
          {name, std::string("expected ") + util::valueTypeName(def->type) +
                     ", got " + util::valueTypeName(value.type())});
    }
  }
  return issues;
}

}  // namespace gridrm::glue
