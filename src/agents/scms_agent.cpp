#include "gridrm/agents/scms_agent.hpp"

#include <cstdio>

#include "gridrm/util/strings.hpp"

namespace gridrm::agents::scms {

ScmsAgent::ScmsAgent(sim::ClusterModel& cluster, net::Network& network,
                     util::Clock& clock)
    : cluster_(cluster), network_(network), clock_(clock) {
  network_.bind(address(), this);
}

ScmsAgent::~ScmsAgent() { network_.unbind(address()); }

net::Address ScmsAgent::address() const {
  return {cluster_.host(0).name(), kScmsPort};
}

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}
}  // namespace

net::Payload ScmsAgent::handleRequest(const net::Address& /*from*/,
                                      const net::Payload& request) {
  auto words = util::splitNonEmpty(std::string(util::trim(request)), ' ');
  if (words.empty()) return "ERROR empty request\n";

  if (words[0] == "NODES") {
    std::string out;
    for (const auto& name : cluster_.hostNames()) out += name + "\n";
    return out;
  }
  if (words[0] == "STAT" && words.size() >= 2) {
    sim::HostModel* h = cluster_.findHost(words[1]);
    if (h == nullptr) return "ERROR unknown node " + words[1] + "\n";
    // One coherent snapshot renders the whole status page.
    const sim::HostSnapshot s = h->snapshot();
    std::string out;
    out += "node: " + h->name() + "\n";
    out += "cluster: " + cluster_.name() + "\n";
    out += "uptime: " + std::to_string(s.uptimeSeconds) + "\n";
    out += "ncpus: " + std::to_string(h->spec().cpuCount) + "\n";
    out += "cpu_mhz: " + std::to_string(h->spec().cpuMhz) + "\n";
    out += "load1: " + fmt(s.load1) + "\n";
    out += "load5: " + fmt(s.load5) + "\n";
    out += "load15: " + fmt(s.load15) + "\n";
    out += "cpu_user: " + fmt(s.cpuUserPct) + "\n";
    out += "cpu_sys: " + fmt(s.cpuSystemPct) + "\n";
    out += "cpu_idle: " + fmt(s.cpuIdlePct) + "\n";
    out += "mem_total_mb: " + std::to_string(h->spec().memTotalMb) + "\n";
    out += "mem_free_mb: " + std::to_string(s.memFreeMb) + "\n";
    out += "swap_free_mb: " + std::to_string(s.swapFreeMb) + "\n";
    out += "disk_total_mb: " + std::to_string(h->spec().diskTotalMb) + "\n";
    out += "disk_free_mb: " + std::to_string(s.diskFreeMb) + "\n";
    out += "nprocs: " + std::to_string(s.processCount) + "\n";
    out += "os: " + h->spec().osName + " " + h->spec().osVersion + "\n";
    out += "arch: " + h->spec().arch + "\n";
    return out;
  }
  return "ERROR bad request\n";
}

}  // namespace gridrm::agents::scms
