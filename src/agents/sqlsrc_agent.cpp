#include "gridrm/agents/sqlsrc_agent.hpp"

#include "gridrm/dbc/result_io.hpp"
#include "gridrm/glue/schema.hpp"
#include "gridrm/sql/lexer.hpp"

namespace gridrm::agents::sqlsrc {

using dbc::ColumnInfo;
using util::Value;

SqlSourceAgent::SqlSourceAgent(sim::ClusterModel& cluster,
                               net::Network& network, util::Clock& clock)
    : cluster_(cluster), network_(network), clock_(clock) {
  defineTables();
  network_.bind(address(), this);
}

SqlSourceAgent::~SqlSourceAgent() { network_.unbind(address()); }

net::Address SqlSourceAgent::address() const {
  return {cluster_.host(0).name(), kSqlPort};
}

void SqlSourceAgent::defineTables() {
  // Table layouts come directly from the GLUE schema definitions.
  const glue::Schema& schema = glue::Schema::builtin();
  for (const auto& groupName :
       {"Host", "Processor", "Memory", "OperatingSystem", "FileSystem",
        "NetworkAdapter", "ComputeElement"}) {
    const glue::GroupDef* g = schema.findGroup(groupName);
    std::vector<ColumnInfo> columns;
    for (const auto& attr : g->attributes()) {
      columns.push_back(ColumnInfo{attr.name, attr.type, attr.unit, g->name()});
    }
    db_.createTable(g->name(), std::move(columns));
  }
}

void SqlSourceAgent::refreshTables() {
  const std::int64_t now = clock_.now();
  // Rebuild the snapshot tables from the host models.
  defineTables();  // createTable replaces, emptying previous rows

  double loadSum = 0.0;
  std::int64_t freeCpus = 0;
  std::int64_t totalCpus = 0;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    sim::HostModel& h = cluster_.host(i);
    // One snapshot feeds every table row for this host.
    const sim::HostSnapshot s = h.snapshot();
    const std::string host = h.name();
    const std::string cl = cluster_.name();

    db_.insertRow("Host",
                  {Value(host), Value(cl), Value(now),
                   Value(s.uptimeSeconds),
                   Value(static_cast<std::int64_t>(s.processCount)),
                   Value(h.spec().osName), Value(h.spec().osVersion),
                   Value(h.spec().arch)});
    db_.insertRow(
        "Processor",
        {Value(host), Value(cl), Value(now),
         Value(static_cast<std::int64_t>(h.spec().cpuCount)),
         Value(static_cast<std::int64_t>(h.spec().cpuMhz)),
         Value(h.spec().cpuModel), Value(s.load1), Value(s.load5),
         Value(s.load15), Value(s.cpuUserPct), Value(s.cpuSystemPct),
         Value(s.cpuIdlePct)});
    db_.insertRow("Memory", {Value(host), Value(cl), Value(now),
                             Value(h.spec().memTotalMb), Value(s.memFreeMb),
                             Value(h.spec().swapTotalMb),
                             Value(s.swapFreeMb)});
    db_.insertRow("OperatingSystem",
                  {Value(host), Value(cl), Value(now), Value(h.spec().osName),
                   Value(h.spec().osVersion), Value(h.bootTime())});
    db_.insertRow("FileSystem",
                  {Value(host), Value(cl), Value(now), Value("/"),
                   Value(h.spec().diskTotalMb), Value(s.diskFreeMb),
                   Value(false)});
    db_.insertRow(
        "NetworkAdapter",
        {Value(host), Value(cl), Value(now), Value("eth0"),
         Value(static_cast<std::int64_t>(h.spec().nicSpeedMbps)),
         Value(s.netInBytes), Value(s.netOutBytes)});

    loadSum += s.load1;
    totalCpus += h.spec().cpuCount;
    if (s.load1 < 0.5) freeCpus += h.spec().cpuCount;
  }
  db_.insertRow("ComputeElement",
                {Value(cluster_.name()), Value(now),
                 Value(cluster_.name() + "-ce"), Value(totalCpus),
                 Value(freeCpus),
                 Value(static_cast<std::int64_t>(cluster_.size())),
                 Value(loadSum / static_cast<double>(cluster_.size()))});
}

net::Payload SqlSourceAgent::handleRequest(const net::Address& /*from*/,
                                           const net::Payload& request) {
  std::scoped_lock lock(mu_);
  try {
    refreshTables();
    auto rs = db_.query(request);
    return dbc::serializeResultSet(*rs);
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

}  // namespace gridrm::agents::sqlsrc
