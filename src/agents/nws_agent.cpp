#include "gridrm/agents/nws_agent.hpp"

#include <algorithm>
#include <cstdio>

#include "gridrm/util/strings.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::agents::nws {

NwsAgent::NwsAgent(sim::HostModel& host, net::Network& network,
                   util::Clock& clock, std::uint64_t seed)
    : host_(host), network_(network), clock_(clock), rng_(seed) {
  for (const char* r : kResources) {
    Series s;
    s.lastSample = clock_.now();  // measurements accumulate from boot
    series_[r] = std::move(s);
  }
  network_.bind(address(), this);
}

NwsAgent::~NwsAgent() { network_.unbind(address()); }

double NwsAgent::measure(const std::string& resource) {
  // Measurements derive from the host model plus sensor noise, so they
  // correlate over time the way NWS series do.
  if (resource == "latency") {
    // ms; grows with host load (slow responder).
    return 0.8 + 0.5 * host_.load1() + 0.1 * rng_.gaussian();
  }
  if (resource == "bandwidth") {
    // Mbps; the busier the host, the less spare bandwidth.
    const double busy =
        std::min(1.0, host_.load1() / host_.spec().cpuCount);
    return std::max(1.0, host_.spec().nicSpeedMbps * (1.0 - 0.6 * busy) *
                             (0.9 + 0.1 * rng_.uniform()));
  }
  // availableCpu: fraction of one CPU obtainable by a new process.
  const double busy = std::min(1.0, host_.load1() / host_.spec().cpuCount);
  return std::clamp(1.0 - busy + 0.05 * rng_.gaussian(), 0.0, 1.0);
}

void NwsAgent::updateForecasters(Series& s, double observed) {
  auto score = [&](Forecaster& f) {
    if (f.n > 0) {
      const double err = observed - f.prediction;
      f.mse = (f.mse * static_cast<double>(f.n - 1) + err * err) /
              static_cast<double>(f.n);
    }
    ++f.n;
  };
  score(s.lastValue);
  score(s.runningMean);
  score(s.expSmooth);

  // Update predictions for the *next* observation.
  s.lastValue.prediction = observed;
  s.meanAccum += observed;
  ++s.count;
  s.runningMean.prediction = s.meanAccum / static_cast<double>(s.count);
  constexpr double kAlpha = 0.3;
  s.expSmooth.prediction = s.count == 1
                               ? observed
                               : kAlpha * observed +
                                     (1.0 - kAlpha) * s.expSmooth.prediction;
}

const Forecaster& NwsAgent::bestForecaster(const Series& s) const {
  const Forecaster* best = &s.lastValue;
  if (s.runningMean.mse < best->mse) best = &s.runningMean;
  if (s.expSmooth.mse < best->mse) best = &s.expSmooth;
  return *best;
}

void NwsAgent::sample() {
  const util::TimePoint now = clock_.now();
  for (auto& [name, s] : series_) {
    // Cap catch-up work after long idle gaps.
    std::int64_t due = (now - s.lastSample) / kPeriod;
    if (due > 32) {
      s.lastSample = now - 32 * kPeriod;
      due = 32;
    }
    for (std::int64_t i = 0; i < due; ++i) {
      const double observed = measure(name);
      updateForecasters(s, observed);
      s.history.push_back(observed);
      if (s.history.size() > kHistoryCap) s.history.pop_front();
      s.lastSample += kPeriod;
    }
  }
}

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}
}  // namespace

net::Payload NwsAgent::handleRequest(const net::Address& /*from*/,
                                     const net::Payload& request) {
  std::scoped_lock lock(mu_);
  sample();

  auto words = util::splitNonEmpty(std::string(util::trim(request)), ' ');
  if (words.empty()) return "ERROR empty request\n";
  const std::string& cmd = words[0];

  if (cmd == "LIST") {
    std::string out;
    for (const auto& [name, s] : series_) out += name + "\n";
    return out;
  }
  if (cmd == "FORECAST" && words.size() >= 2) {
    auto it = series_.find(words[1]);
    if (it == series_.end()) return "ERROR unknown resource " + words[1] + "\n";
    const Series& s = it->second;
    if (s.history.empty()) return "ERROR no measurements yet\n";
    const Forecaster& best = bestForecaster(s);
    std::string out;
    out += "RESOURCE " + words[1] + "\n";
    out += "MEASUREMENT " + fmt(s.history.back()) + "\n";
    out += "FORECAST " + fmt(best.prediction) + "\n";
    out += "MSE " + fmt(best.mse) + "\n";
    out += "METHOD " + best.name + "\n";
    return out;
  }
  if (cmd == "SERIES" && words.size() >= 3) {
    auto it = series_.find(words[1]);
    if (it == series_.end()) return "ERROR unknown resource " + words[1] + "\n";
    const std::size_t n = static_cast<std::size_t>(std::max<std::int64_t>(
        0, util::Value::parse(words[2]).toInt(0)));
    const auto& hist = it->second.history;
    const std::size_t take = std::min(n, hist.size());
    std::string out;
    for (std::size_t i = hist.size() - take; i < hist.size(); ++i) {
      out += fmt(hist[i]) + "\n";
    }
    return out;
  }
  return "ERROR bad request\n";
}

}  // namespace gridrm::agents::nws
