#include "gridrm/agents/ganglia_agent.hpp"

#include "gridrm/util/xml.hpp"

namespace gridrm::agents::ganglia {

GangliaAgent::GangliaAgent(sim::ClusterModel& cluster, net::Network& network,
                           util::Clock& clock)
    : cluster_(cluster), network_(network), clock_(clock) {
  network_.bind(address(), this);
}

GangliaAgent::~GangliaAgent() { network_.unbind(address()); }

net::Address GangliaAgent::address() const {
  return {cluster_.host(0).name(), kGmondPort};
}

namespace {

void metric(util::XmlWriter& w, const char* name, const std::string& val,
            const char* type, const char* units) {
  w.open("METRIC")
      .attr("NAME", name)
      .attr("VAL", val)
      .attr("TYPE", type)
      .attr("UNITS", units)
      .close();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string GangliaAgent::renderXml() {
  util::XmlWriter w;
  w.open("GANGLIA_XML").attr("VERSION", "2.5.7").attr("SOURCE", "gmond");
  w.open("CLUSTER")
      .attr("NAME", cluster_.name())
      .attr("LOCALTIME", std::to_string(clock_.now() / util::kSecond));
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    sim::HostModel& h = cluster_.host(i);
    // One lock + one model advance per host, not one per metric.
    const sim::HostSnapshot s = h.snapshot();
    w.open("HOST")
        .attr("NAME", h.name())
        .attr("IP", "10.0.0." + std::to_string(i + 1))
        .attr("REPORTED", std::to_string(clock_.now() / util::kSecond));
    metric(w, "load_one", fmt(s.load1), "float", "");
    metric(w, "load_five", fmt(s.load5), "float", "");
    metric(w, "load_fifteen", fmt(s.load15), "float", "");
    metric(w, "cpu_user", fmt(s.cpuUserPct), "float", "%");
    metric(w, "cpu_system", fmt(s.cpuSystemPct), "float", "%");
    metric(w, "cpu_idle", fmt(s.cpuIdlePct), "float", "%");
    metric(w, "cpu_num", std::to_string(h.spec().cpuCount), "uint16", "CPUs");
    metric(w, "cpu_speed", std::to_string(h.spec().cpuMhz), "uint32", "MHz");
    metric(w, "mem_total", std::to_string(h.spec().memTotalMb * 1024),
           "uint32", "KB");
    metric(w, "mem_free", std::to_string(s.memFreeMb * 1024), "uint32",
           "KB");
    metric(w, "swap_total", std::to_string(h.spec().swapTotalMb * 1024),
           "uint32", "KB");
    metric(w, "swap_free", std::to_string(s.swapFreeMb * 1024), "uint32",
           "KB");
    metric(w, "disk_total", std::to_string(h.spec().diskTotalMb), "double",
           "MB");
    metric(w, "disk_free", std::to_string(s.diskFreeMb), "double", "MB");
    metric(w, "bytes_in", std::to_string(s.netInBytes), "float",
           "bytes/sec");
    metric(w, "bytes_out", std::to_string(s.netOutBytes), "float",
           "bytes/sec");
    metric(w, "proc_total", std::to_string(s.processCount), "uint32", "");
    metric(w, "machine_type", h.spec().arch, "string", "");
    metric(w, "os_name", h.spec().osName, "string", "");
    metric(w, "os_release", h.spec().osVersion, "string", "");
    metric(w, "boottime", std::to_string(h.bootTime() / util::kSecond),
           "uint32", "s");
    w.close();  // HOST
  }
  w.close();  // CLUSTER
  w.close();  // GANGLIA_XML
  return w.take();
}

net::Payload GangliaAgent::handleRequest(const net::Address& /*from*/,
                                         const net::Payload& /*request*/) {
  // gmond semantics: any connection receives the full dump.
  return renderXml();
}

}  // namespace gridrm::agents::ganglia
