#include "gridrm/agents/snmp_agent.hpp"

namespace gridrm::agents::snmp {

using util::Value;

SnmpAgent::SnmpAgent(sim::HostModel& host, net::Network& network,
                     util::Clock& clock, std::string community)
    : host_(host),
      network_(network),
      clock_(clock),
      community_(std::move(community)) {
  buildMib();
  network_.bind(address(), this);
}

SnmpAgent::~SnmpAgent() { network_.unbind(address()); }

void SnmpAgent::buildMib() {
  using Snap = sim::HostSnapshot;
  auto add = [&](const char* oidText, MibGetter getter) {
    mib_[Oid::parse(oidText)] = std::move(getter);
  };
  sim::HostModel& h = host_;

  add(oids::kSysDescr, [&h](const Snap&) {
    return Value(h.spec().osName + " " + h.spec().osVersion + " " +
                 h.spec().arch);
  });
  add(oids::kSysUpTime,
      [](const Snap& s) { return Value(s.uptimeSeconds * 100); });
  add(oids::kSysName, [&h](const Snap&) { return Value(h.name()); });
  add(oids::kHrSystemProcesses, [](const Snap& s) {
    return Value(static_cast<std::int64_t>(s.processCount));
  });
  add(oids::kHrMemorySize,
      [&h](const Snap&) { return Value(h.spec().memTotalMb * 1024); });
  add(oids::kHrStorageSize,
      [&h](const Snap&) { return Value(h.spec().diskTotalMb); });
  add(oids::kHrStorageUsed, [&h](const Snap& s) {
    return Value(h.spec().diskTotalMb - s.diskFreeMb);
  });

  const Oid procLoad = Oid::parse(oids::kHrProcessorLoadPrefix);
  for (int cpu = 1; cpu <= host_.spec().cpuCount; ++cpu) {
    mib_[procLoad.child(static_cast<std::uint32_t>(cpu))] = [](const Snap& s) {
      return Value(static_cast<std::int64_t>(100.0 - s.cpuIdlePct));
    };
  }

  add(oids::kLaLoad1, [](const Snap& s) { return Value(s.load1); });
  add(oids::kLaLoad5, [](const Snap& s) { return Value(s.load5); });
  add(oids::kLaLoad15, [](const Snap& s) { return Value(s.load15); });
  add(oids::kMemTotalReal,
      [&h](const Snap&) { return Value(h.spec().memTotalMb * 1024); });
  add(oids::kMemAvailReal,
      [](const Snap& s) { return Value(s.memFreeMb * 1024); });
  add(oids::kMemTotalSwap,
      [&h](const Snap&) { return Value(h.spec().swapTotalMb * 1024); });
  add(oids::kMemAvailSwap,
      [](const Snap& s) { return Value(s.swapFreeMb * 1024); });
  add(oids::kSsCpuUser, [](const Snap& s) {
    return Value(static_cast<std::int64_t>(s.cpuUserPct));
  });
  add(oids::kSsCpuSystem, [](const Snap& s) {
    return Value(static_cast<std::int64_t>(s.cpuSystemPct));
  });
  add(oids::kSsCpuIdle, [](const Snap& s) {
    return Value(static_cast<std::int64_t>(s.cpuIdlePct));
  });
  add(oids::kIfDescr, [](const Snap&) { return Value("eth0"); });
  add(oids::kIfSpeed, [&h](const Snap&) {
    return Value(static_cast<std::int64_t>(h.spec().nicSpeedMbps) * 1000000);
  });
  add(oids::kIfInOctets, [](const Snap& s) { return Value(s.netInBytes); });
  add(oids::kIfOutOctets, [](const Snap& s) { return Value(s.netOutBytes); });
}

std::optional<Value> SnmpAgent::lookup(const Oid& oid,
                                       const sim::HostSnapshot& snap) {
  auto it = mib_.find(oid);
  if (it == mib_.end()) return std::nullopt;
  return it->second(snap);
}

Pdu SnmpAgent::execute(const Pdu& request) {
  Pdu response;
  response.type = PduType::Response;
  response.community = request.community;
  response.requestId = request.requestId;

  if (request.community != community_) {
    response.errorStatus = SnmpError::AuthorizationError;
    return response;
  }

  // One coherent snapshot per PDU: every varbind of this request reads
  // the same model instant through a single lock round-trip.
  const sim::HostSnapshot snap = host_.snapshot();

  switch (request.type) {
    case PduType::Get: {
      for (const auto& vb : request.varbinds) {
        auto v = lookup(vb.oid, snap);
        if (!v) {
          response.errorStatus = SnmpError::NoSuchName;
          response.varbinds.push_back({vb.oid, Value::null()});
        } else {
          response.varbinds.push_back({vb.oid, std::move(*v)});
        }
      }
      return response;
    }
    case PduType::GetNext: {
      for (const auto& vb : request.varbinds) {
        auto it = mib_.upper_bound(vb.oid);
        if (it == mib_.end()) {
          response.errorStatus = SnmpError::NoSuchName;
          response.varbinds.push_back({vb.oid, Value::null()});
        } else {
          response.varbinds.push_back({it->first, it->second(snap)});
        }
      }
      return response;
    }
    case PduType::GetBulk: {
      // Walk forward from each requested OID, up to maxRepetitions rows.
      for (const auto& vb : request.varbinds) {
        auto it = mib_.upper_bound(vb.oid);
        for (std::uint32_t n = 0; n < request.maxRepetitions && it != mib_.end();
             ++n, ++it) {
          response.varbinds.push_back({it->first, it->second(snap)});
        }
      }
      return response;
    }
    default:
      response.errorStatus = SnmpError::GenErr;
      return response;
  }
}

net::Payload SnmpAgent::handleRequest(const net::Address& /*from*/,
                                      const Payload& request) {
  Pdu pdu;
  try {
    pdu = decodePdu(request);
  } catch (const std::exception&) {
    Pdu bad;
    bad.type = PduType::Response;
    bad.errorStatus = SnmpError::GenErr;
    return encodePdu(bad);
  }
  Pdu response = execute(pdu);
  pollTraps();  // threshold state may have moved since the last probe
  return encodePdu(response);
}

void SnmpAgent::sendTrap(const char* trapOid, std::vector<Varbind> varbinds) {
  if (!trapSink_) return;
  Pdu trap;
  trap.type = PduType::Trap;
  trap.community = community_;
  trap.varbinds.push_back(
      {Oid::parse("1.3.6.1.6.3.1.1.4.1.0"), Value(trapOid)});  // snmpTrapOID
  for (auto& vb : varbinds) trap.varbinds.push_back(std::move(vb));
  network_.datagram(address(), *trapSink_, encodePdu(trap));
}

void SnmpAgent::pollTraps() {
  const sim::HostSnapshot snap = host_.snapshot();
  const double load = snap.load1;
  const std::int64_t diskFree = snap.diskFreeMb;

  bool fireLoad = false;
  bool fireDisk = false;
  {
    std::scoped_lock lock(trapMu_);
    const bool high = load > thresholds_.highLoad1;
    if (high && !inHighLoad_) fireLoad = true;
    inHighLoad_ = high;
    const bool low = diskFree < thresholds_.lowDiskMb;
    if (low && !inLowDisk_) fireDisk = true;
    inLowDisk_ = low;
  }
  if (fireLoad) {
    sendTrap(oids::kTrapHighLoad,
             {{Oid::parse(oids::kLaLoad1), Value(load)},
              {Oid::parse(oids::kSysName), Value(host_.name())}});
  }
  if (fireDisk) {
    sendTrap(oids::kTrapLowDisk,
             {{Oid::parse(oids::kHrStorageUsed),
               Value(host_.spec().diskTotalMb - diskFree)},
              {Oid::parse(oids::kSysName), Value(host_.name())}});
  }
}

}  // namespace gridrm::agents::snmp
