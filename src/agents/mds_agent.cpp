#include "gridrm/agents/mds_agent.hpp"

#include <cstdio>

#include "gridrm/util/strings.hpp"

namespace gridrm::agents::mds {

std::string LdifEntry::attr(const std::string& name,
                            std::string fallback) const {
  for (const auto& [key, value] : attributes) {
    if (util::iequals(key, name)) return value;
  }
  return fallback;
}

std::vector<LdifEntry> parseLdif(const std::string& text) {
  std::vector<LdifEntry> entries;
  LdifEntry current;
  for (const auto& rawLine : util::split(text, '\n')) {
    const std::string line(util::trim(rawLine));
    if (line.empty()) {
      if (!current.dn.empty()) entries.push_back(std::move(current));
      current = LdifEntry{};
      continue;
    }
    std::size_t sep = line.find(':');
    if (sep == std::string::npos) continue;
    std::string key(util::trim(line.substr(0, sep)));
    std::string value(util::trim(line.substr(sep + 1)));
    if (util::iequals(key, "dn")) {
      current.dn = std::move(value);
    } else {
      current.attributes.emplace_back(std::move(key), std::move(value));
    }
  }
  if (!current.dn.empty()) entries.push_back(std::move(current));
  return entries;
}

MdsAgent::MdsAgent(sim::ClusterModel& cluster, net::Network& network,
                   util::Clock& clock)
    : cluster_(cluster), network_(network), clock_(clock) {
  network_.bind(address(), this);
}

MdsAgent::~MdsAgent() { network_.unbind(address()); }

net::Address MdsAgent::address() const {
  return {cluster_.host(0).name(), kGrisPort};
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// DN suffix match: is `dn` equal to, or below, `base`?
bool underBase(const std::string& dn, const std::string& base) {
  if (util::iequals(dn, base)) return true;
  return dn.size() > base.size() + 1 &&
         util::iequals(dn.substr(dn.size() - base.size()), base) &&
         dn[dn.size() - base.size() - 1] == ',';
}

int depthBelow(const std::string& dn, const std::string& base) {
  if (util::iequals(dn, base)) return 0;
  const std::string head = dn.substr(0, dn.size() - base.size() - 1);
  return static_cast<int>(util::split(head, ',').size());
}

}  // namespace

std::vector<LdifEntry> MdsAgent::buildTree() {
  std::vector<LdifEntry> tree;

  LdifEntry vo;
  vo.dn = baseDn();
  vo.attributes = {{"objectClass", "MdsVo"},
                   {"Mds-Vo-name", cluster_.name()},
                   {"Mds-validto",
                    std::to_string(clock_.now() / util::kSecond + 300)}};
  tree.push_back(std::move(vo));

  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    sim::HostModel& h = cluster_.host(i);
    const sim::HostSnapshot s = h.snapshot();
    LdifEntry e;
    e.dn = "GlueHostUniqueID=" + h.name() + "," + baseDn();
    e.attributes = {
        {"objectClass", "GlueHost"},
        {"GlueHostUniqueID", h.name()},
        {"GlueHostName", h.name()},
        {"GlueClusterName", cluster_.name()},
        {"GlueHostArchitecturePlatformType", h.spec().arch},
        {"GlueHostOperatingSystemName", h.spec().osName},
        {"GlueHostOperatingSystemRelease", h.spec().osVersion},
        {"GlueHostProcessorClockSpeed", std::to_string(h.spec().cpuMhz)},
        {"GlueHostArchitectureSMPSize", std::to_string(h.spec().cpuCount)},
        {"GlueHostProcessorLoadAverage1Min", fmt(s.load1)},
        {"GlueHostProcessorLoadAverage5Min", fmt(s.load5)},
        {"GlueHostProcessorLoadAverage15Min", fmt(s.load15)},
        {"GlueHostMainMemoryRAMSize", std::to_string(h.spec().memTotalMb)},
        {"GlueHostMainMemoryRAMAvailable", std::to_string(s.memFreeMb)},
        {"GlueHostMainMemoryVirtualSize",
         std::to_string(h.spec().swapTotalMb)},
        {"GlueHostMainMemoryVirtualAvailable", std::to_string(s.swapFreeMb)},
        {"GlueHostNetworkAdapterInboundIP", std::to_string(s.netInBytes)},
        {"GlueHostNetworkAdapterOutboundIP", std::to_string(s.netOutBytes)},
        {"Mds-validto", std::to_string(clock_.now() / util::kSecond + 300)},
    };
    tree.push_back(std::move(e));
  }
  return tree;
}

net::Payload MdsAgent::handleRequest(const net::Address& /*from*/,
                                     const net::Payload& request) {
  // SEARCH <baseDN> <base|one|sub> [(<attr>=<value>)]
  auto words = util::splitNonEmpty(std::string(util::trim(request)), ' ');
  if (words.size() < 3 || words[0] != "SEARCH") return "ERROR bad request\n";
  const std::string& base = words[1];
  const std::string& scope = words[2];
  std::string filterAttr;
  std::string filterValue;
  if (words.size() >= 4) {
    std::string f = words[3];
    if (f.size() >= 2 && f.front() == '(' && f.back() == ')') {
      f = f.substr(1, f.size() - 2);
    }
    std::size_t eq = f.find('=');
    if (eq == std::string::npos) return "ERROR bad filter\n";
    filterAttr = f.substr(0, eq);
    filterValue = f.substr(eq + 1);
  }

  std::string out;
  for (const LdifEntry& entry : buildTree()) {
    if (!underBase(entry.dn, base)) continue;
    const int depth = depthBelow(entry.dn, base);
    if (scope == "base" && depth != 0) continue;
    if (scope == "one" && depth != 1) continue;
    // "sub": everything at or below.
    if (!filterAttr.empty()) {
      const std::string value = entry.attr(filterAttr);
      if (!util::iequals(value, filterValue)) continue;
    }
    out += "dn: " + entry.dn + "\n";
    for (const auto& [key, value] : entry.attributes) {
      out += key + ": " + value + "\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace gridrm::agents::mds
