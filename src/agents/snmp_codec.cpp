#include "gridrm/agents/snmp_codec.hpp"

#include <charconv>
#include <stdexcept>

#include "gridrm/util/strings.hpp"

namespace gridrm::agents::snmp {

using util::Value;
using util::ValueType;

Oid Oid::parse(const std::string& text) {
  std::vector<std::uint32_t> parts;
  for (const auto& piece : util::splitNonEmpty(text, '.')) {
    std::uint32_t v = 0;
    auto [ptr, ec] =
        std::from_chars(piece.data(), piece.data() + piece.size(), v);
    if (ec != std::errc{} || ptr != piece.data() + piece.size()) return Oid{};
    parts.push_back(v);
  }
  return Oid(std::move(parts));
}

std::string Oid::toString() const {
  std::string out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(parts_[i]);
  }
  return out;
}

Oid Oid::child(std::uint32_t arc) const {
  std::vector<std::uint32_t> parts = parts_;
  parts.push_back(arc);
  return Oid(std::move(parts));
}

bool Oid::isPrefixOf(const Oid& other) const noexcept {
  if (parts_.size() > other.parts_.size()) return false;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i] != other.parts_[i]) return false;
  }
  return true;
}

namespace {

// --- wire primitives -------------------------------------------------
// varint (LEB128) lengths and integers; tag bytes pick the payload type.

constexpr std::uint8_t kTagNull = 0x05;
constexpr std::uint8_t kTagInt = 0x02;
constexpr std::uint8_t kTagReal = 0x09;  // 8-byte big-endian IEEE754
constexpr std::uint8_t kTagString = 0x04;
constexpr std::uint8_t kTagOid = 0x06;
constexpr std::uint8_t kTagBool = 0x01;

void putVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : s_(bytes) {}

  std::uint8_t byte() {
    need(1);
    return static_cast<std::uint8_t>(s_[i_++]);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t b = byte();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) throw std::runtime_error("snmp: varint overflow");
    }
  }

  std::string bytes(std::size_t n) {
    need(n);
    std::string out = s_.substr(i_, n);
    i_ += n;
    return out;
  }

  bool atEnd() const noexcept { return i_ == s_.size(); }

 private:
  void need(std::size_t n) const {
    if (i_ + n > s_.size()) throw std::runtime_error("snmp: truncated PDU");
  }
  const std::string& s_;
  std::size_t i_ = 0;
};

void putOid(std::string& out, const Oid& oid) {
  putVarint(out, oid.size());
  for (std::uint32_t part : oid.parts()) putVarint(out, part);
}

Oid readOid(Reader& r) {
  const std::uint64_t n = r.varint();
  if (n > 128) throw std::runtime_error("snmp: OID too long");
  std::vector<std::uint32_t> parts;
  parts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    parts.push_back(static_cast<std::uint32_t>(r.varint()));
  }
  return Oid(std::move(parts));
}

void putValue(std::string& out, const Value& v) {
  switch (v.type()) {
    case ValueType::Null:
      out.push_back(static_cast<char>(kTagNull));
      return;
    case ValueType::Bool:
      out.push_back(static_cast<char>(kTagBool));
      out.push_back(v.asBool() ? 1 : 0);
      return;
    case ValueType::Int: {
      out.push_back(static_cast<char>(kTagInt));
      // zigzag for signed values
      const std::int64_t i = v.asInt();
      putVarint(out, (static_cast<std::uint64_t>(i) << 1) ^
                         static_cast<std::uint64_t>(i >> 63));
      return;
    }
    case ValueType::Real: {
      out.push_back(static_cast<char>(kTagReal));
      std::uint64_t bits;
      const double d = v.asReal();
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      for (int shift = 56; shift >= 0; shift -= 8) {
        out.push_back(static_cast<char>((bits >> shift) & 0xff));
      }
      return;
    }
    case ValueType::String: {
      out.push_back(static_cast<char>(kTagString));
      putVarint(out, v.asString().size());
      out += v.asString();
      return;
    }
  }
}

Value readValue(Reader& r) {
  const std::uint8_t tag = r.byte();
  switch (tag) {
    case kTagNull:
      return Value::null();
    case kTagBool:
      return Value(r.byte() != 0);
    case kTagInt: {
      const std::uint64_t z = r.varint();
      return Value(static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1)));
    }
    case kTagReal: {
      std::uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) bits = (bits << 8) | r.byte();
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagString: {
      const std::uint64_t n = r.varint();
      if (n > (1u << 24)) throw std::runtime_error("snmp: string too long");
      return Value(r.bytes(static_cast<std::size_t>(n)));
    }
    case kTagOid:
      return Value(readOid(r).toString());
    default:
      throw std::runtime_error("snmp: unknown value tag");
  }
}

}  // namespace

std::string encodePdu(const Pdu& pdu) {
  std::string out;
  out.push_back(static_cast<char>(pdu.type));
  putVarint(out, pdu.community.size());
  out += pdu.community;
  putVarint(out, pdu.requestId);
  out.push_back(static_cast<char>(pdu.errorStatus));
  putVarint(out, pdu.maxRepetitions);
  putVarint(out, pdu.varbinds.size());
  for (const auto& vb : pdu.varbinds) {
    putOid(out, vb.oid);
    putValue(out, vb.value);
  }
  return out;
}

Pdu decodePdu(const std::string& bytes) {
  Reader r(bytes);
  Pdu pdu;
  const std::uint8_t type = r.byte();
  switch (type) {
    case static_cast<std::uint8_t>(PduType::Get):
    case static_cast<std::uint8_t>(PduType::GetNext):
    case static_cast<std::uint8_t>(PduType::Response):
    case static_cast<std::uint8_t>(PduType::GetBulk):
    case static_cast<std::uint8_t>(PduType::Trap):
      pdu.type = static_cast<PduType>(type);
      break;
    default:
      throw std::runtime_error("snmp: unknown PDU type");
  }
  const std::uint64_t communityLen = r.varint();
  if (communityLen > 256) throw std::runtime_error("snmp: community too long");
  pdu.community = r.bytes(static_cast<std::size_t>(communityLen));
  pdu.requestId = static_cast<std::uint32_t>(r.varint());
  pdu.errorStatus = static_cast<SnmpError>(r.byte());
  pdu.maxRepetitions = static_cast<std::uint32_t>(r.varint());
  const std::uint64_t n = r.varint();
  if (n > 4096) throw std::runtime_error("snmp: too many varbinds");
  pdu.varbinds.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Varbind vb;
    vb.oid = readOid(r);
    vb.value = readValue(r);
    pdu.varbinds.push_back(std::move(vb));
  }
  if (!r.atEnd()) throw std::runtime_error("snmp: trailing bytes");
  return pdu;
}

}  // namespace gridrm::agents::snmp
