#include "gridrm/agents/site.hpp"

namespace gridrm::agents {

SiteSimulation::SiteSimulation(net::Network& network, util::Clock& clock,
                               SiteOptions options)
    : network_(network), clock_(clock), options_(std::move(options)) {
  cluster_ = std::make_unique<sim::ClusterModel>(
      options_.siteName, options_.hostCount, clock_, options_.seed,
      options_.baseSpec);
  if (options_.withSnmp) {
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      snmpAgents_.push_back(std::make_unique<snmp::SnmpAgent>(
          cluster_->host(i), network_, clock_));
    }
  }
  if (options_.withGanglia) {
    ganglia_ =
        std::make_unique<ganglia::GangliaAgent>(*cluster_, network_, clock_);
  }
  if (options_.withNws) {
    nws_ = std::make_unique<nws::NwsAgent>(cluster_->host(0), network_, clock_,
                                           options_.seed + 101);
  }
  if (options_.withNetLogger) {
    netlogger_ = std::make_unique<netlogger::NetLoggerAgent>(
        cluster_->host(0), network_, clock_);
  }
  if (options_.withScms) {
    scms_ = std::make_unique<scms::ScmsAgent>(*cluster_, network_, clock_);
  }
  if (options_.withSql) {
    sqlsrc_ =
        std::make_unique<sqlsrc::SqlSourceAgent>(*cluster_, network_, clock_);
  }
  if (options_.withMds) {
    mds_ = std::make_unique<mds::MdsAgent>(*cluster_, network_, clock_);
  }
}

std::string SiteSimulation::headUrl(const std::string& subprotocol) const {
  const std::string head = cluster_->host(0).name();
  std::uint16_t port = 0;
  if (subprotocol == "snmp") {
    port = snmp::kSnmpPort;
  } else if (subprotocol == "ganglia") {
    port = ganglia::kGmondPort;
  } else if (subprotocol == "nws") {
    port = nws::kNwsPort;
  } else if (subprotocol == "netlogger") {
    port = netlogger::kNetLoggerPort;
  } else if (subprotocol == "scms") {
    port = scms::kScmsPort;
  } else if (subprotocol == "sql") {
    port = sqlsrc::kSqlPort;
  } else if (subprotocol == "mds") {
    port = mds::kGrisPort;
  } else if (subprotocol.empty()) {
    return "jdbc:://" + head + ":" + std::to_string(snmp::kSnmpPort) +
           "/perfdata";
  }
  return "jdbc:" + subprotocol + "://" + head + ":" + std::to_string(port) +
         "/perfdata";
}

std::vector<std::string> SiteSimulation::dataSourceUrls() const {
  std::vector<std::string> urls;
  if (options_.withSnmp) {
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      urls.push_back("jdbc:snmp://" + cluster_->host(i).name() + ":" +
                     std::to_string(snmp::kSnmpPort) + "/perfdata");
    }
  }
  if (options_.withGanglia) urls.push_back(headUrl("ganglia"));
  if (options_.withNws) urls.push_back(headUrl("nws"));
  if (options_.withNetLogger) urls.push_back(headUrl("netlogger"));
  if (options_.withScms) urls.push_back(headUrl("scms"));
  if (options_.withSql) urls.push_back(headUrl("sql"));
  if (options_.withMds) urls.push_back(headUrl("mds"));
  return urls;
}

void SiteSimulation::setTrapSink(const net::Address& sink) {
  for (auto& agent : snmpAgents_) agent->setTrapSink(sink);
}

void SiteSimulation::pollTraps() {
  for (auto& agent : snmpAgents_) agent->pollTraps();
}

SiteSimulation::~SiteSimulation() { cancelMaintenance(); }

void SiteSimulation::scheduleMaintenance(util::EventScheduler& scheduler,
                                         util::Duration trapInterval,
                                         util::Duration refreshInterval) {
  cancelMaintenance();
  maintenanceScheduler_ = &scheduler;
  if (trapInterval > 0) {
    maintenanceEvents_.push_back(
        scheduler.scheduleEvery(trapInterval, [this] { pollTraps(); }));
  }
  if (refreshInterval > 0) {
    maintenanceEvents_.push_back(scheduler.scheduleEvery(
        refreshInterval, [this] { cluster_->refreshAll(); }));
  }
}

void SiteSimulation::cancelMaintenance() {
  if (maintenanceScheduler_ != nullptr) {
    for (util::EventId id : maintenanceEvents_) {
      maintenanceScheduler_->cancel(id);
    }
  }
  maintenanceEvents_.clear();
  maintenanceScheduler_ = nullptr;
}

}  // namespace gridrm::agents
