#include "gridrm/agents/netlogger_agent.hpp"

#include <algorithm>
#include <cstdio>

#include "gridrm/util/strings.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::agents::netlogger {

std::string formatUlm(util::TimePoint ts, const std::string& host,
                      const std::string& program, const std::string& event,
                      double value) {
  char val[48];
  std::snprintf(val, sizeof(val), "%.6f", value);
  return "DATE=" + std::to_string(ts) + " HOST=" + host + " PROG=" + program +
         " LVL=Usage NL.EVNT=" + event + " VAL=" + val;
}

namespace {
bool parseField(const std::string& line, const std::string& key,
                std::string& out) {
  const std::string needle = key + "=";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  std::size_t end = line.find(' ', pos);
  if (end == std::string::npos) end = line.size();
  out = line.substr(pos, end - pos);
  return true;
}
}  // namespace

bool parseUlmValue(const std::string& line, double& value) {
  std::string text;
  if (!parseField(line, "VAL", text)) return false;
  const util::Value v = util::Value::parse(text);
  if (!v.isNumeric()) return false;
  value = v.toReal();
  return true;
}

bool parseUlmDate(const std::string& line, util::TimePoint& ts) {
  std::string text;
  if (!parseField(line, "DATE", text)) return false;
  const util::Value v = util::Value::parse(text);
  if (v.type() != util::ValueType::Int) return false;
  ts = v.asInt();
  return true;
}

NetLoggerAgent::NetLoggerAgent(sim::HostModel& host, net::Network& network,
                               util::Clock& clock)
    : host_(host), network_(network), clock_(clock) {
  lastEmit_ = clock_.now();  // log streams run from agent start
  for (const char* e : kEvents) logs_[e] = {};
  network_.bind(address(), this);
}

NetLoggerAgent::~NetLoggerAgent() { network_.unbind(address()); }

void NetLoggerAgent::appendDue() {
  const util::TimePoint now = clock_.now();
  std::int64_t due = (now - lastEmit_) / kPeriod;
  if (due <= 0) return;
  if (due > 64) {
    lastEmit_ = now - 64 * kPeriod;
    due = 64;
  }
  for (std::int64_t i = 0; i < due; ++i) {
    const util::TimePoint ts = lastEmit_ + kPeriod;
    const sim::HostSnapshot s = host_.snapshot();
    auto emit = [&](const char* event, double value) {
      auto& q = logs_[event];
      q.push_back(formatUlm(ts, host_.name(), "simd", event, value));
      if (q.size() > kCap) q.pop_front();
    };
    emit("cpu.load", s.load1);
    emit("mem.free", static_cast<double>(s.memFreeMb));
    emit("net.in", static_cast<double>(s.netInBytes));
    emit("net.out", static_cast<double>(s.netOutBytes));
    emit("disk.free", static_cast<double>(s.diskFreeMb));
    lastEmit_ = ts;
  }
}

net::Payload NetLoggerAgent::handleRequest(const net::Address& /*from*/,
                                           const net::Payload& request) {
  std::scoped_lock lock(mu_);
  appendDue();

  auto words = util::splitNonEmpty(std::string(util::trim(request)), ' ');
  if (words.empty()) return "ERROR empty request\n";
  if (words[0] == "EVENTS") {
    std::string out;
    for (const auto& [name, q] : logs_) out += name + "\n";
    return out;
  }
  if (words[0] == "TAIL" && words.size() >= 3) {
    auto it = logs_.find(words[1]);
    if (it == logs_.end()) return "ERROR unknown event " + words[1] + "\n";
    const std::size_t n = static_cast<std::size_t>(std::max<std::int64_t>(
        0, util::Value::parse(words[2]).toInt(0)));
    const auto& q = it->second;
    const std::size_t take = std::min(n, q.size());
    std::string out;
    for (std::size_t i = q.size() - take; i < q.size(); ++i) {
      out += q[i] + "\n";
    }
    return out;
  }
  return "ERROR bad request\n";
}

}  // namespace gridrm::agents::netlogger
