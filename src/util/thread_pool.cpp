#include "gridrm/util/thread_pool.hpp"

namespace gridrm::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::scoped_lock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopped_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // run outside the lock (CP.22)
  }
}

}  // namespace gridrm::util
