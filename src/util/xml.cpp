#include "gridrm/util/xml.hpp"

#include <cctype>

namespace gridrm::util {

const XmlElement* XmlElement::child(const std::string& childName) const {
  for (const auto& c : children) {
    if (c->name == childName) return c.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::childrenNamed(
    const std::string& childName) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children) {
    if (c->name == childName) out.push_back(c.get());
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::unique_ptr<XmlElement> parseDocument() {
    skipSpaceAndProlog();
    auto root = parseElement();
    skipSpaceAndProlog();
    if (i_ != s_.size()) throw XmlError("trailing content after root element");
    return root;
  }

 private:
  void skipSpaceAndProlog() {
    while (i_ < s_.size()) {
      if (std::isspace(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
        continue;
      }
      if (s_.compare(i_, 2, "<?") == 0) {
        std::size_t end = s_.find("?>", i_);
        if (end == std::string::npos) throw XmlError("unterminated prolog");
        i_ = end + 2;
        continue;
      }
      if (s_.compare(i_, 4, "<!--") == 0) {
        std::size_t end = s_.find("-->", i_);
        if (end == std::string::npos) throw XmlError("unterminated comment");
        i_ = end + 3;
        continue;
      }
      if (s_.compare(i_, 2, "<!") == 0) {  // DOCTYPE et al.
        std::size_t end = s_.find('>', i_);
        if (end == std::string::npos) throw XmlError("unterminated declaration");
        i_ = end + 1;
        continue;
      }
      return;
    }
  }

  std::string parseName() {
    std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[i_])) || s_[i_] == '_' ||
            s_[i_] == '-' || s_[i_] == '.' || s_[i_] == ':')) {
      ++i_;
    }
    if (i_ == start) throw XmlError("expected name at offset " + std::to_string(i_));
    return s_.substr(start, i_ - start);
  }

  void skipSpace() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  std::unique_ptr<XmlElement> parseElement() {
    if (i_ >= s_.size() || s_[i_] != '<') throw XmlError("expected '<'");
    ++i_;
    auto el = std::make_unique<XmlElement>();
    el->name = parseName();
    while (true) {
      skipSpace();
      if (i_ >= s_.size()) throw XmlError("unterminated tag " + el->name);
      if (s_[i_] == '/') {
        if (i_ + 1 >= s_.size() || s_[i_ + 1] != '>') {
          throw XmlError("malformed self-closing tag");
        }
        i_ += 2;
        return el;
      }
      if (s_[i_] == '>') {
        ++i_;
        parseChildren(*el);
        return el;
      }
      // attribute
      std::string key = parseName();
      skipSpace();
      if (i_ >= s_.size() || s_[i_] != '=') throw XmlError("expected '='");
      ++i_;
      skipSpace();
      if (i_ >= s_.size() || (s_[i_] != '"' && s_[i_] != '\'')) {
        throw XmlError("expected quoted attribute value");
      }
      const char quote = s_[i_++];
      std::size_t end = s_.find(quote, i_);
      if (end == std::string::npos) throw XmlError("unterminated attribute");
      el->attributes[key] = unescape(s_.substr(i_, end - i_));
      i_ = end + 1;
    }
  }

  void parseChildren(XmlElement& el) {
    while (true) {
      // Skip (and discard) any text content.
      while (i_ < s_.size() && s_[i_] != '<') ++i_;
      if (i_ >= s_.size()) throw XmlError("unterminated element " + el.name);
      if (s_.compare(i_, 4, "<!--") == 0) {
        std::size_t end = s_.find("-->", i_);
        if (end == std::string::npos) throw XmlError("unterminated comment");
        i_ = end + 3;
        continue;
      }
      if (s_.compare(i_, 2, "</") == 0) {
        i_ += 2;
        std::string name = parseName();
        if (name != el.name) {
          throw XmlError("mismatched close tag </" + name + "> for <" +
                         el.name + ">");
        }
        skipSpace();
        if (i_ >= s_.size() || s_[i_] != '>') throw XmlError("expected '>'");
        ++i_;
        return;
      }
      el.children.push_back(parseElement());
    }
  }

  static std::string unescape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) {
        out.push_back('<');
        i += 3;
      } else if (s.compare(i, 4, "&gt;") == 0) {
        out.push_back('>');
        i += 3;
      } else if (s.compare(i, 5, "&amp;") == 0) {
        out.push_back('&');
        i += 4;
      } else if (s.compare(i, 6, "&quot;") == 0) {
        out.push_back('"');
        i += 5;
      } else if (s.compare(i, 6, "&apos;") == 0) {
        out.push_back('\'');
        i += 5;
      } else {
        out.push_back('&');
      }
    }
    return out;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

std::unique_ptr<XmlElement> parseXml(const std::string& text) {
  return Parser(text).parseDocument();
}

std::string XmlWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

XmlWriter& XmlWriter::open(const std::string& name) {
  if (tagOpen_) out_ += ">";
  out_ += "<" + name;
  stack_.push_back(name);
  tagOpen_ = true;
  return *this;
}

XmlWriter& XmlWriter::attr(const std::string& key, const std::string& value) {
  if (!tagOpen_) throw XmlError("attr() outside an open tag");
  out_ += " " + key + "=\"" + escape(value) + "\"";
  return *this;
}

XmlWriter& XmlWriter::close() {
  if (stack_.empty()) throw XmlError("close() with no open element");
  if (tagOpen_) {
    out_ += "/>";
    tagOpen_ = false;
  } else {
    out_ += "</" + stack_.back() + ">";
  }
  stack_.pop_back();
  return *this;
}

std::string XmlWriter::take() {
  if (!stack_.empty()) throw XmlError("take() with unclosed elements");
  return std::move(out_);
}

}  // namespace gridrm::util
