#include "gridrm/util/clock.hpp"

#include <chrono>
#include <thread>

namespace gridrm::util {

TimePoint SystemClock::now() const noexcept {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::sleepFor(Duration us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace gridrm::util
