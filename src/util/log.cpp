#include "gridrm/util/log.hpp"

#include <cstdio>
#include <utility>

namespace gridrm::util {

namespace {
const char* levelName(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  std::scoped_lock lock(mu_);
  if (capture_) {
    lines_.push_back(format("[{}] {}: {}", levelName(level), component, msg));
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

void Logger::captureToMemory(bool on) {
  std::scoped_lock lock(mu_);
  capture_ = on;
  if (!on) lines_.clear();
}

std::vector<std::string> Logger::drainCaptured() {
  std::scoped_lock lock(mu_);
  return std::exchange(lines_, {});
}

}  // namespace gridrm::util
