#include "gridrm/util/config.hpp"

#include "gridrm/util/strings.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::util {

Config Config::parse(const std::string& text) {
  Config cfg;
  for (const auto& rawLine : split(text, '\n')) {
    std::string_view line = trim(rawLine);
    if (line.empty() || line.front() == '#') continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (!key.empty()) cfg.values_[key] = std::move(value);
  }
  return cfg;
}

std::string Config::getString(const std::string& key, std::string fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t Config::getInt(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return Value::parse(it->second).toInt(fallback);
}

double Config::getReal(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return Value::parse(it->second).toReal(fallback);
}

bool Config::getBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return Value::parse(it->second).toBool(fallback);
}

std::vector<std::string> Config::getList(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return {};
  std::vector<std::string> out;
  for (const auto& part : split(it->second, ',')) {
    auto trimmed = trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace gridrm::util
