#include "gridrm/util/url.hpp"

#include <charconv>

#include "gridrm/util/strings.hpp"

namespace gridrm::util {

std::optional<Url> Url::parse(const std::string& text) {
  Url u;
  u.text_ = text;
  std::string_view rest = text;

  // scheme:
  std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  u.scheme_ = toLower(rest.substr(0, colon));
  if (u.scheme_ != "jdbc" && u.scheme_ != "gridrm") return std::nullopt;
  rest.remove_prefix(colon + 1);

  // [subprotocol]://
  std::size_t slashes = rest.find("://");
  if (slashes == std::string_view::npos) return std::nullopt;
  u.subprotocol_ = toLower(rest.substr(0, slashes));
  rest.remove_prefix(slashes + 3);

  // host[:port]
  std::size_t pathStart = rest.find_first_of("/?");
  std::string_view authority =
      pathStart == std::string_view::npos ? rest : rest.substr(0, pathStart);
  if (authority.empty()) return std::nullopt;
  std::size_t portSep = authority.rfind(':');
  if (portSep != std::string_view::npos) {
    std::string_view portText = authority.substr(portSep + 1);
    unsigned port = 0;
    auto [ptr, ec] =
        std::from_chars(portText.data(), portText.data() + portText.size(), port);
    if (ec != std::errc{} || ptr != portText.data() + portText.size() ||
        port > 0xffff) {
      return std::nullopt;
    }
    u.port_ = static_cast<std::uint16_t>(port);
    u.host_ = std::string(authority.substr(0, portSep));
  } else {
    u.host_ = std::string(authority);
  }
  if (u.host_.empty()) return std::nullopt;
  if (pathStart == std::string_view::npos) return u;
  rest.remove_prefix(pathStart);

  // /path
  std::size_t queryStart = rest.find('?');
  std::string_view pathPart =
      queryStart == std::string_view::npos ? rest : rest.substr(0, queryStart);
  if (startsWith(pathPart, "/")) pathPart.remove_prefix(1);
  u.path_ = std::string(pathPart);
  if (queryStart == std::string_view::npos) return u;
  rest.remove_prefix(queryStart + 1);

  // k=v&k=v
  for (const auto& kv : splitNonEmpty(rest, '&')) {
    std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      u.params_[kv] = "";
    } else {
      u.params_[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }
  return u;
}

std::string Url::param(const std::string& key, std::string fallback) const {
  auto it = params_.find(key);
  return it == params_.end() ? std::move(fallback) : it->second;
}

std::string Url::endpoint(std::uint16_t defaultPort) const {
  const std::uint16_t p = port_ == 0 ? defaultPort : port_;
  return host_ + ":" + std::to_string(p);
}

}  // namespace gridrm::util
