#include "gridrm/util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace gridrm::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string toUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replaceAll(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace gridrm::util
