#include "gridrm/util/value.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace gridrm::util {

const char* valueTypeName(ValueType t) noexcept {
  switch (t) {
    case ValueType::Null:
      return "NULL";
    case ValueType::Bool:
      return "BOOL";
    case ValueType::Int:
      return "INT";
    case ValueType::Real:
      return "REAL";
    case ValueType::String:
      return "STRING";
  }
  return "?";
}

namespace {

bool parseInt(std::string_view s, std::int64_t& out) noexcept {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parseReal(std::string_view s, double& out) noexcept {
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ >= 11.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::int64_t Value::toInt(std::int64_t fallback) const noexcept {
  switch (type()) {
    case ValueType::Null:
      return fallback;
    case ValueType::Bool:
      return asBool() ? 1 : 0;
    case ValueType::Int:
      return asInt();
    case ValueType::Real:
      return static_cast<std::int64_t>(std::llround(asReal()));
    case ValueType::String: {
      std::int64_t i = 0;
      if (parseInt(asString(), i)) return i;
      double d = 0;
      if (parseReal(asString(), d)) return static_cast<std::int64_t>(std::llround(d));
      return fallback;
    }
  }
  return fallback;
}

std::optional<std::int64_t> Value::tryInt() const noexcept {
  switch (type()) {
    case ValueType::Null:
      return std::nullopt;
    case ValueType::Bool:
      return asBool() ? 1 : 0;
    case ValueType::Int:
      return asInt();
    case ValueType::Real:
      return static_cast<std::int64_t>(std::llround(asReal()));
    case ValueType::String: {
      std::int64_t i = 0;
      if (parseInt(asString(), i)) return i;
      double d = 0;
      if (parseReal(asString(), d)) {
        return static_cast<std::int64_t>(std::llround(d));
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

double Value::toReal(double fallback) const noexcept {
  switch (type()) {
    case ValueType::Null:
      return fallback;
    case ValueType::Bool:
      return asBool() ? 1.0 : 0.0;
    case ValueType::Int:
      return static_cast<double>(asInt());
    case ValueType::Real:
      return asReal();
    case ValueType::String: {
      double d = 0;
      if (parseReal(asString(), d)) return d;
      return fallback;
    }
  }
  return fallback;
}

bool Value::toBool(bool fallback) const noexcept {
  switch (type()) {
    case ValueType::Null:
      return fallback;
    case ValueType::Bool:
      return asBool();
    case ValueType::Int:
      return asInt() != 0;
    case ValueType::Real:
      return asReal() != 0.0;
    case ValueType::String: {
      const std::string& s = asString();
      if (s == "true" || s == "TRUE" || s == "1") return true;
      if (s == "false" || s == "FALSE" || s == "0") return false;
      return fallback;
    }
  }
  return fallback;
}

std::string Value::toString() const {
  switch (type()) {
    case ValueType::Null:
      return "NULL";
    case ValueType::Bool:
      return asBool() ? "true" : "false";
    case ValueType::Int:
      return std::to_string(asInt());
    case ValueType::Real: {
      // %g keeps values such as 0.25 readable while avoiding the trailing
      // zeros std::to_string(double) produces.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", asReal());
      return buf;
    }
    case ValueType::String:
      return asString();
  }
  return {};
}

Value Value::parse(std::string_view text) {
  if (text == "NULL" || text == "null") return null();
  std::int64_t i = 0;
  if (parseInt(text, i)) return Value(i);
  double d = 0;
  if (parseReal(text, d)) return Value(d);
  if (text == "true" || text == "TRUE") return Value(true);
  if (text == "false" || text == "FALSE") return Value(false);
  return Value(std::string(text));
}

std::strong_ordering Value::compare(const Value& other) const noexcept {
  const bool lnum = isNumeric();
  const bool rnum = other.isNumeric();
  if (lnum && rnum) {
    if (type() == ValueType::Int && other.type() == ValueType::Int) {
      return asInt() <=> other.asInt();
    }
    const double l = toReal();
    const double r = other.toReal();
    if (l < r) return std::strong_ordering::less;
    if (l > r) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) <=> static_cast<int>(other.type());
  }
  switch (type()) {
    case ValueType::Null:
      return std::strong_ordering::equal;
    case ValueType::Bool:
      return static_cast<int>(asBool()) <=> static_cast<int>(other.asBool());
    case ValueType::String:
      return asString().compare(other.asString()) <=> 0;
    default:
      return std::strong_ordering::equal;  // unreachable: numerics handled above
  }
}

}  // namespace gridrm::util
