#include "gridrm/core/event.hpp"

#include "gridrm/util/strings.hpp"

namespace gridrm::core {

const char* severityName(Severity s) noexcept {
  switch (s) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Critical:
      return "critical";
  }
  return "?";
}

bool eventTypeMatches(const std::string& pattern, const std::string& type) {
  if (pattern.empty() || pattern == "*") return true;
  if (pattern == type) return true;
  return util::startsWith(type, pattern + ".");
}

}  // namespace gridrm::core
