#include "gridrm/core/cache_controller.hpp"

namespace gridrm::core {

std::unique_ptr<dbc::VectorResultSet> CacheController::lookup(
    const std::string& key) {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.ttl <= 0 || clock_.now() - entry.storedAt > entry.ttl) {
    lru_.erase(entry.lruIt);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, entry.lruIt);  // mark most recent
  // Hand out an independent cursor over the shared rows.
  return std::make_unique<dbc::VectorResultSet>(entry.rs->metaData(),
                                                entry.rs->rows());
}

void CacheController::insert(const std::string& key,
                             const dbc::VectorResultSet& rs,
                             util::Duration ttl) {
  if (ttl < 0) ttl = defaultTtl_;
  if (ttl <= 0) return;  // caching disabled
  auto shared =
      std::make_shared<const dbc::VectorResultSet>(rs.metaData(), rs.rows());
  std::scoped_lock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.rs = std::move(shared);
    it->second.storedAt = clock_.now();
    it->second.ttl = ttl;
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  } else {
    lru_.push_front(key);
    entries_[key] = Entry{std::move(shared), clock_.now(), ttl, lru_.begin()};
    evictIfNeeded();
  }
  ++stats_.insertions;
}

void CacheController::evictIfNeeded() {
  while (entries_.size() > maxEntries_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void CacheController::invalidate(const std::string& key) {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lruIt);
  entries_.erase(it);
}

void CacheController::clear() {
  std::scoped_lock lock(mu_);
  entries_.clear();
  lru_.clear();
}

std::optional<util::TimePoint> CacheController::cachedAt(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.storedAt;
}

CacheStats CacheController::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t CacheController::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

}  // namespace gridrm::core
