#include "gridrm/core/cache_controller.hpp"

namespace gridrm::core {

CacheController::CacheController(util::Clock& clock, util::Duration defaultTtl,
                                 std::size_t maxEntries, std::size_t shards)
    : clock_(clock), defaultTtl_(defaultTtl) {
  if (shards == 0) shards = 1;
  if (maxEntries == 0) maxEntries = 1;
  // Split the entry budget evenly; every shard holds at least one entry
  // so a tiny cache with many shards still caches something.
  maxEntriesPerShard_ = (maxEntries + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const dbc::VectorResultSet> CacheController::lookupShared(
    const std::string& key) {
  Shard& shard = shardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.ttl <= 0 || clock_.now() - entry.storedAt > entry.ttl) {
    shard.lru.erase(entry.lruIt);
    shard.entries.erase(it);
    ++shard.stats.expirations;
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lruIt);  // most recent
  return entry.rs;
}

std::unique_ptr<dbc::SharedResultSet> CacheController::lookup(
    const std::string& key) {
  auto shared = lookupShared(key);
  if (shared == nullptr) return nullptr;
  // Zero-copy: an independent cursor over the shared rows.
  return std::make_unique<dbc::SharedResultSet>(std::move(shared));
}

void CacheController::insert(const std::string& key,
                             std::shared_ptr<const dbc::VectorResultSet> rs,
                             util::Duration ttl) {
  if (ttl < 0) ttl = defaultTtl_;
  if (ttl <= 0 || rs == nullptr) return;  // caching disabled
  Shard& shard = shardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second.rs = std::move(rs);
    it->second.storedAt = clock_.now();
    it->second.ttl = ttl;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lruIt);
  } else {
    shard.lru.push_front(key);
    shard.entries[key] =
        Entry{std::move(rs), clock_.now(), ttl, shard.lru.begin()};
    evictIfNeeded(shard);
  }
  ++shard.stats.insertions;
}

void CacheController::insert(const std::string& key,
                             const dbc::VectorResultSet& rs,
                             util::Duration ttl) {
  if (ttl < 0) ttl = defaultTtl_;
  if (ttl <= 0) return;  // skip the copy too when caching is disabled
  insert(key,
         std::make_shared<const dbc::VectorResultSet>(rs.metaData(), rs.rows()),
         ttl);
}

void CacheController::evictIfNeeded(Shard& shard) {
  while (shard.entries.size() > maxEntriesPerShard_ && !shard.lru.empty()) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void CacheController::invalidate(const std::string& key) {
  Shard& shard = shardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.lru.erase(it->second.lruIt);
  shard.entries.erase(it);
}

void CacheController::clear() {
  for (auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

std::optional<util::TimePoint> CacheController::cachedAt(
    const std::string& key) const {
  const Shard& shard = shardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  const Entry& entry = it->second;
  // An expired entry is dead data: report it as absent rather than
  // letting the tree view label it fresh. (lookup() reaps it lazily.)
  if (entry.ttl <= 0 || clock_.now() - entry.storedAt > entry.ttl) {
    return std::nullopt;
  }
  return entry.storedAt;
}

CacheStats CacheController::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.expirations += shard->stats.expirations;
  }
  return total;
}

std::size_t CacheController::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace gridrm::core
