#include "gridrm/core/gateway.hpp"

#include "gridrm/drivers/defaults.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::core {

using dbc::ErrorCode;
using dbc::SqlError;

GatewayOptions GatewayOptions::fromConfig(const util::Config& config) {
  GatewayOptions o;
  o.name = config.getString("gateway.name", o.name);
  o.host = config.getString("gateway.host", o.host);
  o.cacheTtl =
      config.getInt("cache.ttl_ms", o.cacheTtl / util::kMillisecond) *
      util::kMillisecond;
  o.cacheMaxEntries = static_cast<std::size_t>(
      config.getInt("cache.max_entries",
                    static_cast<std::int64_t>(o.cacheMaxEntries)));
  o.cacheShards = static_cast<std::size_t>(config.getInt(
      "cache.shards", static_cast<std::int64_t>(o.cacheShards)));
  o.poolMaxIdlePerSource = static_cast<std::size_t>(
      config.getInt("pool.max_idle",
                    static_cast<std::int64_t>(o.poolMaxIdlePerSource)));
  o.validatePooledConnections =
      config.getBool("pool.validate", o.validatePooledConnections);
  o.queryWorkers = static_cast<std::size_t>(config.getInt(
      "query.workers", static_cast<std::int64_t>(o.queryWorkers)));
  o.queryDeadline =
      config.getInt("query.deadline_ms",
                    o.queryDeadline / util::kMillisecond) *
      util::kMillisecond;
  if (util::toLower(config.getString("query.hedge_delay_ms", "")) == "auto") {
    o.queryHedgeDelay = kHedgeAuto;
  } else {
    o.queryHedgeDelay =
        config.getInt("query.hedge_delay_ms",
                      o.queryHedgeDelay / util::kMillisecond) *
        util::kMillisecond;
  }
  o.coalesceQueries = config.getBool("query.coalesce", o.coalesceQueries);
  o.schedulerWorkers = static_cast<std::size_t>(config.getInt(
      "scheduler.workers", static_cast<std::int64_t>(o.schedulerWorkers)));
  o.schedulerMaxQueueDepth = static_cast<std::size_t>(
      config.getInt("scheduler.max_queue_depth",
                    static_cast<std::int64_t>(o.schedulerMaxQueueDepth)));
  o.schedulerBackgroundShare = static_cast<std::size_t>(
      config.getInt("scheduler.background_share",
                    static_cast<std::int64_t>(o.schedulerBackgroundShare)));
  o.planCacheCapacity = static_cast<std::size_t>(config.getInt(
      "plan_cache.capacity", static_cast<std::int64_t>(o.planCacheCapacity)));
  o.breaker.failureThreshold = static_cast<std::size_t>(
      config.getInt("breaker.failure_threshold",
                    static_cast<std::int64_t>(o.breaker.failureThreshold)));
  o.breaker.cooldown =
      config.getInt("breaker.cooldown_ms",
                    o.breaker.cooldown / util::kMillisecond) *
      util::kMillisecond;
  o.registerDefaultDrivers =
      config.getBool("drivers.register_defaults", o.registerDefaultDrivers);
  o.eventOptions.fastBufferCapacity = static_cast<std::size_t>(config.getInt(
      "events.buffer_capacity",
      static_cast<std::int64_t>(o.eventOptions.fastBufferCapacity)));
  if (config.getBool("events.drop_newest", false)) {
    o.eventOptions.overflow = util::OverflowPolicy::DropNewest;
  }
  o.eventOptions.recordHistory =
      config.getBool("events.record_history", o.eventOptions.recordHistory);
  o.streamOptions.queueCapacity = static_cast<std::size_t>(config.getInt(
      "stream.queue_capacity",
      static_cast<std::int64_t>(o.streamOptions.queueCapacity)));
  if (auto policy = stream::overflowPolicyFromName(
          config.getString("stream.overflow", ""))) {
    o.streamOptions.overflow = *policy;
  }
  o.streamOptions.replayRows = static_cast<std::size_t>(config.getInt(
      "stream.replay_rows",
      static_cast<std::int64_t>(o.streamOptions.replayRows)));
  const std::string action =
      util::toLower(config.getString("failure.action", "dynamic"));
  if (action == "report") {
    o.failurePolicy.action = FailurePolicy::Action::Report;
  } else if (action == "retry") {
    o.failurePolicy.action = FailurePolicy::Action::Retry;
  } else if (action == "trynext") {
    o.failurePolicy.action = FailurePolicy::Action::TryNext;
  } else {
    o.failurePolicy.action = FailurePolicy::Action::DynamicReselect;
  }
  o.failurePolicy.retries =
      static_cast<int>(config.getInt("failure.retries", o.failurePolicy.retries));
  o.sessionIdleTimeout =
      config.getInt("session.idle_timeout_s",
                    o.sessionIdleTimeout / util::kSecond) *
      util::kSecond;
  o.tsdb = store::tsdb::TsdbOptions::fromConfig(config);
  o.storeRetention =
      config.getInt("store.retention_ms",
                    o.storeRetention / util::kMillisecond) *
      util::kMillisecond;
  return o;
}

Gateway::Gateway(net::Network& network, util::Clock& clock,
                 GatewayOptions options)
    : network_(network),
      clock_(clock),
      options_(std::move(options)),
      driverManager_(registry_),
      connections_(driverManager_, options_.poolMaxIdlePerSource,
                   options_.validatePooledConnections),
      cache_(clock_, options_.cacheTtl, options_.cacheMaxEntries,
             options_.cacheShards),
      planCache_(options_.planCacheCapacity),
      cgsl_(CoarseSecurityLayer::defaults()),
      fgsl_(/*defaultAllow=*/true),
      sessions_(clock_, options_.sessionIdleTimeout),
      streamEngine_(clock_, options_.streamOptions, &db_) {
  if (options_.tsdb.enabled) {
    tsdb_ = std::make_unique<store::tsdb::TimeSeriesStore>(clock_,
                                                           options_.tsdb);
    db_.attachTimeSeries(tsdb_.get());
  }
  driverManager_.setFailurePolicy(options_.failurePolicy);
  eventManager_ =
      std::make_unique<EventManager>(clock_, &db_, options_.eventOptions);
  eventManager_->addFormatter(std::make_unique<SnmpTrapFormatter>());
  eventManager_->addFormatter(std::make_unique<TextEventFormatter>());
  // Continuous queries over the pseudo-table "Events": every dispatched
  // event becomes a one-row batch with the EventHistory column shape.
  streamEventListenerId_ = eventManager_->addListener(
      "", [this](const Event& event) {
        static const dbc::ResultSetMetaData kEventColumns(
            {{"Sequence", util::ValueType::Int, "", "Events"},
             {"Timestamp", util::ValueType::Int, "us", "Events"},
             {"Type", util::ValueType::String, "", "Events"},
             {"Source", util::ValueType::String, "", "Events"},
             {"Severity", util::ValueType::String, "", "Events"},
             {"Fields", util::ValueType::String, "", "Events"}});
        std::string fields;
        for (const auto& [key, value] : event.fields) {
          if (!fields.empty()) fields += " ";
          fields += key + "=" + value.toString();
        }
        streamEngine_.onRows(
            event.source, "Events", kEventColumns,
            {{util::Value(static_cast<std::int64_t>(event.sequence)),
              util::Value(event.timestamp), util::Value(event.type),
              util::Value(event.source),
              util::Value(severityName(event.severity)),
              util::Value(fields)}});
      });
  // One scheduler for every execution path: fan-out attempts, polls,
  // stream delta dispatch and relayed global queries all compete in
  // the same weighted priority lanes.
  SchedulerOptions schedulerOptions;
  schedulerOptions.workers = options_.schedulerWorkers != 0
                                 ? options_.schedulerWorkers
                                 : options_.queryWorkers;
  schedulerOptions.maxQueueDepth = options_.schedulerMaxQueueDepth;
  schedulerOptions.backgroundShare = options_.schedulerBackgroundShare;
  scheduler_ = std::make_unique<Scheduler>(clock_, schedulerOptions);

  RequestManagerTuning tuning;
  tuning.defaultDeadline = options_.queryDeadline;
  tuning.defaultHedgeDelay = options_.queryHedgeDelay;
  tuning.coalesce = options_.coalesceQueries;
  tuning.breaker = options_.breaker;
  requestManager_ = std::make_unique<RequestManager>(
      connections_, cache_, fgsl_, &db_, clock_, *scheduler_, tuning);
  requestManager_->setPlanCache(&planCache_);
  // Consumer drains leave the producing thread (pollers, the event
  // dispatcher) and run as Background work; if the scheduler sheds the
  // drain, the engine falls back to inline delivery.
  streamEngine_.setDispatcher([this](std::function<void()> drain) {
    return scheduler_->submit(Lane::Background, std::move(drain));
  });

  if (options_.registerDefaultDrivers) {
    drivers::registerDefaultDrivers(registry_, driverContext());
  }
  // The gateway's event sink: agents send traps/alerts here.
  network_.bind(eventAddress(), eventManager_.get());
}

Gateway::~Gateway() {
  eventManager_->removeListener(streamEventListenerId_);
  network_.unbind(eventAddress());
  // Quiesce the executor before members unwind: queued drains and polls
  // must not outlive the engines they touch, and the stream engine must
  // not hand new drains to a dying scheduler.
  streamEngine_.setDispatcher(nullptr);
  scheduler_->shutdown();
}

drivers::DriverContext Gateway::driverContext() noexcept {
  drivers::DriverContext ctx;
  ctx.network = &network_;
  ctx.clock = &clock_;
  ctx.schemaManager = &schemaManager_;
  ctx.planCache = &planCache_;
  return ctx;
}

Principal Gateway::authorize(const std::string& token, Operation op) {
  auto session = sessions_.validate(token);
  if (!session) {
    throw SqlError(ErrorCode::SecurityDenied,
                   "invalid or expired session token");
  }
  cgsl_.require(session->principal, op);
  return session->principal;
}

std::string Gateway::openSession(Principal principal) {
  return sessions_.open(std::move(principal));
}

void Gateway::closeSession(const std::string& token) {
  sessions_.close(token);
}

QueryResult Gateway::submitQuery(const std::string& token,
                                 const std::vector<std::string>& urls,
                                 const std::string& sql,
                                 const QueryOptions& options) {
  Principal principal = authorize(token, Operation::RealTimeQuery);
  if (urls.size() == 1) {
    return requestManager_->queryOne(principal, urls[0], sql, options);
  }
  return requestManager_->query(principal, urls, sql, options);
}

QueryResult Gateway::submitSiteQuery(const std::string& token,
                                     const std::string& sql,
                                     const QueryOptions& options) {
  Principal principal = authorize(token, Operation::RealTimeQuery);
  return requestManager_->query(principal, dataSources(), sql, options);
}

std::unique_ptr<dbc::VectorResultSet> Gateway::submitHistoricalQuery(
    const std::string& token, const std::string& sql) {
  Principal principal = authorize(token, Operation::HistoricalQuery);
  return requestManager_->queryHistorical(principal, sql);
}

std::vector<SourceHealthSnapshot> Gateway::sourceHealth(
    const std::string& token) {
  (void)authorize(token, Operation::RealTimeQuery);
  return requestManager_->sourceHealth().snapshot();
}

SchedulerStats Gateway::schedulerStats(const std::string& token) {
  (void)authorize(token, Operation::RealTimeQuery);
  return scheduler_->stats();
}

store::tsdb::TsdbStats Gateway::tsdbStats(const std::string& token) {
  (void)authorize(token, Operation::HistoricalQuery);
  if (tsdb_ == nullptr) return {};
  return tsdb_->stats();
}

sql::vec::VecEngineStats Gateway::vecEngineStats(const std::string& token) {
  (void)authorize(token, Operation::RealTimeQuery);
  return sql::vec::engineStats();
}

std::size_t Gateway::enforceRetention() {
  std::size_t dropped = 0;
  if (options_.storeRetention > 0) {
    const std::int64_t cutoff = clock_.now() - options_.storeRetention;
    for (const auto& table : db_.tableNames()) {
      if (table.rfind("History", 0) == 0) {
        dropped += db_.pruneOlderThan(table, "RecordedAt", cutoff);
      } else if (table == "EventHistory") {
        dropped += db_.pruneOlderThan(table, "Timestamp", cutoff);
      }
    }
  }
  if (tsdb_ != nullptr) dropped += tsdb_->retentionTick();
  return dropped;
}

std::size_t Gateway::subscribeEvents(const std::string& token,
                                     const std::string& pattern,
                                     EventManager::Listener listener) {
  (void)authorize(token, Operation::EventSubscribe);
  return eventManager_->addListener(pattern, std::move(listener));
}

void Gateway::unsubscribeEvents(const std::string& token, std::size_t id) {
  (void)authorize(token, Operation::EventSubscribe);
  eventManager_->removeListener(id);
}

std::size_t Gateway::subscribeQuery(
    const std::string& token, const std::string& url, const std::string& sql,
    stream::ContinuousQueryEngine::DeltaConsumer consumer,
    std::optional<stream::StreamOptions> options) {
  (void)authorize(token, Operation::StreamSubscribe);
  return streamEngine_.subscribe(url, sql, std::move(consumer),
                                 std::move(options));
}

void Gateway::unsubscribeQuery(const std::string& token, std::size_t id) {
  (void)authorize(token, Operation::StreamSubscribe);
  (void)streamEngine_.unsubscribe(id);
}

void Gateway::registerDriver(const std::string& token,
                             std::shared_ptr<dbc::Driver> driver) {
  (void)authorize(token, Operation::DriverAdmin);
  registry_.registerDriver(std::move(driver));
}

void Gateway::registerDriver(const std::string& token,
                             std::shared_ptr<dbc::Driver> driver,
                             glue::DriverSchemaMap schemaMap) {
  (void)authorize(token, Operation::DriverAdmin);
  schemaManager_.registerDriverMap(std::move(schemaMap));
  registry_.registerDriver(std::move(driver));
}

bool Gateway::unregisterDriver(const std::string& token,
                               const std::string& driverName) {
  (void)authorize(token, Operation::DriverAdmin);
  const bool removed = registry_.unregisterDriver(driverName);
  if (removed) {
    // Idle pooled connections of the removed driver must not keep
    // serving queries as if the driver were still installed.
    (void)connections_.dropDriver(driverName);
  }
  return removed;
}

std::vector<std::string> Gateway::listDrivers(const std::string& token) const {
  auto* self = const_cast<Gateway*>(this);
  (void)self->authorize(token, Operation::DriverAdmin);
  std::vector<std::string> names;
  for (const auto& d : registry_.drivers()) names.push_back(d->name());
  return names;
}

void Gateway::setDriverPreference(const std::string& token,
                                  const std::string& url,
                                  std::vector<std::string> driverNames) {
  (void)authorize(token, Operation::DriverAdmin);
  if (driverNames.empty()) {
    driverManager_.clearStaticPreference(url);
  } else {
    driverManager_.setStaticPreference(url, std::move(driverNames));
  }
}

void Gateway::setFailurePolicy(const std::string& token,
                               const FailurePolicy& policy) {
  (void)authorize(token, Operation::DriverAdmin);
  driverManager_.setFailurePolicy(policy);
}

void Gateway::addDataSource(const std::string& token, const std::string& url) {
  (void)authorize(token, Operation::DriverAdmin);
  std::scoped_lock lock(sourcesMu_);
  dataSources_.insert(url);
}

void Gateway::removeDataSource(const std::string& token,
                               const std::string& url) {
  (void)authorize(token, Operation::DriverAdmin);
  std::scoped_lock lock(sourcesMu_);
  dataSources_.erase(url);
}

std::vector<std::string> Gateway::dataSources() const {
  std::scoped_lock lock(sourcesMu_);
  return {dataSources_.begin(), dataSources_.end()};
}

}  // namespace gridrm::core
