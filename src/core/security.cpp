#include "gridrm/core/security.hpp"

#include <algorithm>

#include "gridrm/dbc/error.hpp"

namespace gridrm::core {

bool Principal::hasRole(const std::string& role) const {
  return std::find(roles.begin(), roles.end(), role) != roles.end();
}

const char* operationName(Operation op) noexcept {
  switch (op) {
    case Operation::RealTimeQuery:
      return "real-time query";
    case Operation::HistoricalQuery:
      return "historical query";
    case Operation::EventSubscribe:
      return "event subscription";
    case Operation::StreamSubscribe:
      return "continuous-query subscription";
    case Operation::DriverAdmin:
      return "driver administration";
  }
  return "?";
}

CoarseSecurityLayer::CoarseSecurityLayer() = default;

CoarseSecurityLayer CoarseSecurityLayer::defaults() {
  CoarseSecurityLayer cgsl;
  for (Operation op : {Operation::RealTimeQuery, Operation::HistoricalQuery,
                       Operation::EventSubscribe, Operation::StreamSubscribe,
                       Operation::DriverAdmin}) {
    cgsl.allow("admin", op);
  }
  cgsl.allow("monitor", Operation::RealTimeQuery);
  cgsl.allow("monitor", Operation::HistoricalQuery);
  cgsl.allow("monitor", Operation::EventSubscribe);
  cgsl.allow("monitor", Operation::StreamSubscribe);
  cgsl.allow("guest", Operation::RealTimeQuery);
  return cgsl;
}

void CoarseSecurityLayer::allow(const std::string& role, Operation op) {
  if (check(Principal{"", {role}}, op)) return;  // idempotent
  grants_.push_back(Grant{role, op});
}

void CoarseSecurityLayer::revoke(const std::string& role, Operation op) {
  std::erase_if(grants_, [&](const Grant& g) {
    return g.role == role && g.op == op;
  });
}

bool CoarseSecurityLayer::check(const Principal& principal,
                                Operation op) const {
  for (const Grant& g : grants_) {
    if (g.op != op) continue;
    if (g.role == "*" || principal.hasRole(g.role)) return true;
  }
  return false;
}

void CoarseSecurityLayer::require(const Principal& principal,
                                  Operation op) const {
  if (!check(principal, op)) {
    throw dbc::SqlError(dbc::ErrorCode::SecurityDenied,
                        "principal '" + principal.id + "' may not perform " +
                            operationName(op));
  }
}

bool globMatch(const std::string& pattern, const std::string& text) {
  // Same backtracking approach as sql::likeMatch, with '*' wildcards.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t starP = std::string::npos;
  std::size_t starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '*') {
      starP = p++;
      starT = t;
    } else if (starP != std::string::npos) {
      p = starP + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool FineSecurityLayer::check(const Principal& principal,
                              const std::string& sourceHost,
                              const std::string& group) const {
  for (const Rule& rule : rules_) {
    const bool roleOk =
        rule.rolePattern == "*" || principal.hasRole(rule.rolePattern);
    if (!roleOk) continue;
    if (!globMatch(rule.sourcePattern, sourceHost)) continue;
    if (!globMatch(rule.groupPattern, group)) continue;
    return rule.allow;
  }
  return defaultAllow_;
}

void FineSecurityLayer::require(const Principal& principal,
                                const std::string& sourceHost,
                                const std::string& group) const {
  if (!check(principal, sourceHost, group)) {
    throw dbc::SqlError(dbc::ErrorCode::SecurityDenied,
                        "principal '" + principal.id + "' denied access to " +
                            group + " on " + sourceHost);
  }
}

}  // namespace gridrm::core
