#include "gridrm/core/circuit_breaker.hpp"

#include <algorithm>
#include <cmath>

namespace gridrm::core {

const char* breakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "?";
}

bool CircuitBreaker::allowRequest() {
  if (options_.failureThreshold == 0) return true;
  std::scoped_lock lock(mu_);
  const util::TimePoint now = clock_.now();
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now - openedAt_ < options_.cooldown) {
        ++skips_;
        return false;
      }
      // Cooldown elapsed: this request becomes the half-open probe.
      state_ = BreakerState::HalfOpen;
      probeInFlight_ = true;
      probeStartedAt_ = now;
      return true;
    case BreakerState::HalfOpen:
      if (probeInFlight_ && now - probeStartedAt_ < options_.cooldown) {
        ++skips_;
        return false;
      }
      // Either no probe is in flight (the last probe ended with a
      // client-class error that records no breaker outcome) or the
      // probe is presumed lost; claim the slot again.
      probeInFlight_ = true;
      probeStartedAt_ = now;
      return true;
  }
  return true;
}

bool CircuitBreaker::wouldReject() const {
  if (options_.failureThreshold == 0) return false;
  std::scoped_lock lock(mu_);
  const util::TimePoint now = clock_.now();
  if (state_ == BreakerState::Open) {
    return now - openedAt_ < options_.cooldown;
  }
  if (state_ == BreakerState::HalfOpen) {
    return probeInFlight_ && now - probeStartedAt_ < options_.cooldown;
  }
  return false;
}

void CircuitBreaker::recordSuccess(util::Duration latency) {
  std::scoped_lock lock(mu_);
  ++successes_;
  consecutiveFailures_ = 0;
  if (state_ == BreakerState::HalfOpen) {
    state_ = BreakerState::Closed;
    probeInFlight_ = false;
  }
  const double sample = static_cast<double>(std::max<util::Duration>(latency, 0));
  if (!haveLatency_) {
    ewmaLatency_ = sample;
    ewmaDeviation_ = 0.0;
    haveLatency_ = true;
  } else {
    const double alpha = options_.latencyAlpha;
    ewmaDeviation_ = (1.0 - alpha) * ewmaDeviation_ +
                     alpha * std::abs(sample - ewmaLatency_);
    ewmaLatency_ = (1.0 - alpha) * ewmaLatency_ + alpha * sample;
  }
}

void CircuitBreaker::recordFailure() {
  if (options_.failureThreshold == 0) {
    std::scoped_lock lock(mu_);
    ++failures_;
    return;
  }
  std::scoped_lock lock(mu_);
  ++failures_;
  ++consecutiveFailures_;
  if (state_ == BreakerState::HalfOpen) {
    // Probe relapsed: back to open, cooldown restarts.
    state_ = BreakerState::Open;
    openedAt_ = clock_.now();
    probeInFlight_ = false;
    ++opens_;
    return;
  }
  if (state_ == BreakerState::Closed &&
      consecutiveFailures_ >= options_.failureThreshold) {
    state_ = BreakerState::Open;
    openedAt_ = clock_.now();
    ++opens_;
  }
}

BreakerState CircuitBreaker::state() const {
  std::scoped_lock lock(mu_);
  return state_;
}

util::Duration CircuitBreaker::hedgeDelay(util::Duration floor) const {
  std::scoped_lock lock(mu_);
  if (!haveLatency_) return 0;
  const double p95 = ewmaLatency_ + 3.0 * ewmaDeviation_;
  return std::max(static_cast<util::Duration>(p95), floor);
}

SourceHealthSnapshot CircuitBreaker::snapshot() const {
  std::scoped_lock lock(mu_);
  SourceHealthSnapshot s;
  s.state = state_;
  s.consecutiveFailures = consecutiveFailures_;
  s.successes = successes_;
  s.failures = failures_;
  s.opens = opens_;
  s.skips = skips_;
  s.ewmaLatency = static_cast<util::Duration>(ewmaLatency_);
  s.p95Latency =
      haveLatency_
          ? static_cast<util::Duration>(ewmaLatency_ + 3.0 * ewmaDeviation_)
          : 0;
  return s;
}

CircuitBreaker& SourceHealthRegistry::breakerFor(const std::string& url) {
  std::scoped_lock lock(mu_);
  auto it = breakers_.find(url);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(url, std::make_unique<CircuitBreaker>(options_, clock_))
             .first;
  }
  return *it->second;
}

const CircuitBreaker* SourceHealthRegistry::findBreaker(
    const std::string& url) const {
  std::scoped_lock lock(mu_);
  auto it = breakers_.find(url);
  return it == breakers_.end() ? nullptr : it->second.get();
}

bool SourceHealthRegistry::allowRequest(const std::string& url) {
  if (!enabled()) return true;
  return breakerFor(url).allowRequest();
}

bool SourceHealthRegistry::wouldReject(const std::string& url) const {
  if (!enabled()) return false;
  const CircuitBreaker* b = findBreaker(url);
  return b != nullptr && b->wouldReject();
}

void SourceHealthRegistry::recordSuccess(const std::string& url,
                                         util::Duration latency) {
  breakerFor(url).recordSuccess(latency);
}

void SourceHealthRegistry::recordFailure(const std::string& url) {
  breakerFor(url).recordFailure();
}

BreakerState SourceHealthRegistry::state(const std::string& url) const {
  const CircuitBreaker* b = findBreaker(url);
  return b == nullptr ? BreakerState::Closed : b->state();
}

util::Duration SourceHealthRegistry::suggestedHedgeDelay(
    const std::string& url, util::Duration floor) const {
  const CircuitBreaker* b = findBreaker(url);
  return b == nullptr ? 0 : b->hedgeDelay(floor);
}

std::vector<SourceHealthSnapshot> SourceHealthRegistry::snapshot() const {
  std::vector<std::pair<std::string, const CircuitBreaker*>> items;
  {
    std::scoped_lock lock(mu_);
    items.reserve(breakers_.size());
    for (const auto& [url, breaker] : breakers_) {
      items.emplace_back(url, breaker.get());
    }
  }
  std::vector<SourceHealthSnapshot> out;
  out.reserve(items.size());
  for (const auto& [url, breaker] : items) {
    SourceHealthSnapshot s = breaker->snapshot();
    s.url = url;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace gridrm::core
