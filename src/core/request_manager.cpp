#include "gridrm/core/request_manager.hpp"

#include <future>

#include "gridrm/sql/parser.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::core {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

RequestManager::RequestManager(ConnectionManager& connections,
                               CacheController& cache,
                               const FineSecurityLayer& fgsl,
                               store::Database* historyDb, util::Clock& clock,
                               std::size_t workers)
    : connections_(connections),
      cache_(cache),
      fgsl_(fgsl),
      historyDb_(historyDb),
      clock_(clock),
      pool_(workers) {}

namespace {

/// Group (table) name of a query, for FGSL checks and history tables.
std::string queryGroup(const std::string& sqlText) {
  try {
    return sql::parseSelect(sqlText).table;
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax, e.what());
  }
}

}  // namespace

std::unique_ptr<dbc::VectorResultSet> RequestManager::executeSource(
    const Principal& principal, const std::string& urlText,
    const std::string& sqlText, const QueryOptions& options, bool& fromCache) {
  fromCache = false;
  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  const std::string group = queryGroup(sqlText);
  fgsl_.require(principal, url->host(), group);

  const std::string cacheKey = CacheController::key(urlText, sqlText);
  if (options.useCache) {
    if (auto cached = cache_.lookup(cacheKey)) {
      fromCache = true;
      return cached;
    }
  }

  ConnectionManager::Lease lease = connections_.acquire(*url, util::Config{});
  std::unique_ptr<dbc::VectorResultSet> rows;
  try {
    std::unique_ptr<dbc::Statement> stmt = lease->createStatement();
    std::unique_ptr<dbc::ResultSet> rs = stmt->executeQuery(sqlText);
    // Drivers in this codebase return materialised sets; materialise
    // defensively for any that stream.
    if (auto* vec = dynamic_cast<dbc::VectorResultSet*>(rs.get())) {
      rs.release();
      rows.reset(vec);
    } else {
      rows = dbc::VectorResultSet::materialize(*rs);
    }
  } catch (const SqlError& e) {
    // Connection-level failures poison the pooled connection and clear
    // the last-good driver so the next attempt reselects (section 4).
    if (e.code() == ErrorCode::ConnectionFailed ||
        e.code() == ErrorCode::Timeout ||
        e.code() == ErrorCode::ConnectionClosed) {
      lease.poison();
    }
    throw;
  }

  if (options.useCache) {
    cache_.insert(cacheKey, *rows, options.cacheTtl);
  }
  if (options.recordHistory) {
    recordHistory(urlText, group, *rows);
  }
  return rows;
}

QueryResult RequestManager::queryOne(const Principal& principal,
                                     const std::string& url,
                                     const std::string& sqlText,
                                     const QueryOptions& options) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.queries;
    ++stats_.sourceQueries;
  }
  QueryResult result;
  result.sourcesQueried = 1;
  bool fromCache = false;
  try {
    result.rows = executeSource(principal, url, sqlText, options, fromCache);
    if (fromCache) result.servedFromCache = 1;
  } catch (const SqlError& e) {
    result.failures.push_back(SourceError{url, e.what()});
    std::scoped_lock lock(mu_);
    ++stats_.sourceErrors;
  }
  return result;
}

QueryResult RequestManager::query(const Principal& principal,
                                  const std::vector<std::string>& urls,
                                  const std::string& sqlText,
                                  const QueryOptions& options) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.queries;
    stats_.sourceQueries += urls.size();
  }

  struct PerSource {
    std::unique_ptr<dbc::VectorResultSet> rows;
    std::string error;
    bool fromCache = false;
  };
  std::vector<PerSource> partials(urls.size());

  auto runOne = [&](std::size_t i) {
    try {
      partials[i].rows = executeSource(principal, urls[i], sqlText, options,
                                       partials[i].fromCache);
    } catch (const SqlError& e) {
      partials[i].error = e.what();
    } catch (const std::exception& e) {
      partials[i].error = e.what();
    }
  };

  if (options.parallel && urls.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(urls.size());
    for (std::size_t i = 0; i < urls.size(); ++i) {
      futures.push_back(pool_.submit([&, i] { runOne(i); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < urls.size(); ++i) runOne(i);
  }

  // Consolidate: common columns (from the first successful source)
  // prefixed by a Source column.
  QueryResult result;
  result.sourcesQueried = urls.size();
  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<Value>> rows;
  bool haveColumns = false;
  for (std::size_t i = 0; i < urls.size(); ++i) {
    PerSource& p = partials[i];
    if (p.rows == nullptr) {
      result.failures.push_back(SourceError{urls[i], p.error});
      std::scoped_lock lock(mu_);
      ++stats_.sourceErrors;
      continue;
    }
    if (p.fromCache) ++result.servedFromCache;
    if (!haveColumns) {
      columns.push_back(
          dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
      for (const auto& c : p.rows->metaData().columns()) columns.push_back(c);
      haveColumns = true;
    }
    const std::size_t expectedWidth = columns.size() - 1;
    if (p.rows->metaData().columnCount() != expectedWidth) {
      result.failures.push_back(SourceError{
          urls[i], "column mismatch during consolidation"});
      continue;
    }
    for (const auto& row : p.rows->rows()) {
      std::vector<Value> outRow;
      outRow.reserve(columns.size());
      outRow.emplace_back(urls[i]);
      for (const auto& v : row) outRow.push_back(v);
      rows.push_back(std::move(outRow));
    }
  }
  if (!haveColumns) {
    // Every source failed: deliver an empty, schemaless set alongside
    // the failure list.
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
  }
  result.rows = std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(columns)), std::move(rows));
  return result;
}

void RequestManager::recordHistory(const std::string& url,
                                   const std::string& group,
                                   const dbc::VectorResultSet& rs) {
  if (historyDb_ == nullptr) return;
  const std::string table = historyTableName(group);
  if (!historyDb_->hasTable(table)) {
    std::vector<dbc::ColumnInfo> columns;
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", table});
    columns.push_back(
        dbc::ColumnInfo{"RecordedAt", util::ValueType::Int, "us", table});
    for (const auto& c : rs.metaData().columns()) columns.push_back(c);
    historyDb_->createTable(table, std::move(columns));
  }
  const util::TimePoint now = clock_.now();
  std::size_t recorded = 0;
  for (const auto& row : rs.rows()) {
    std::vector<Value> outRow;
    outRow.reserve(row.size() + 2);
    outRow.emplace_back(url);
    outRow.emplace_back(now);
    for (const auto& v : row) outRow.push_back(v);
    historyDb_->insertRow(table, std::move(outRow));
    ++recorded;
  }
  std::scoped_lock lock(mu_);
  stats_.rowsRecorded += recorded;
}

std::unique_ptr<dbc::VectorResultSet> RequestManager::queryHistorical(
    const Principal& /*principal*/, const std::string& sqlText) {
  // CGSL authorises the operation class at the gateway door; reaching
  // here means HistoricalQuery was already granted.
  if (historyDb_ == nullptr) {
    throw SqlError(ErrorCode::Unsupported,
                   "this gateway keeps no historical data");
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.historyQueries;
  }
  try {
    return historyDb_->query(sqlText);
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax, e.what());
  }
}

void RequestManager::refreshCache(const std::string& url,
                                  const std::string& sql,
                                  const dbc::VectorResultSet& rows) {
  cache_.insert(CacheController::key(url, sql), rows);
}

RequestManagerStats RequestManager::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
