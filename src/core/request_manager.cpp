#include "gridrm/core/request_manager.hpp"

#include <chrono>
#include <condition_variable>

#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::core {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

RequestManager::RequestManager(ConnectionManager& connections,
                               CacheController& cache,
                               const FineSecurityLayer& fgsl,
                               store::Database* historyDb, util::Clock& clock,
                               std::size_t workers, RequestManagerTuning tuning)
    : connections_(connections),
      cache_(cache),
      fgsl_(fgsl),
      historyDb_(historyDb),
      clock_(clock),
      tuning_(tuning),
      health_(clock, tuning.breaker),
      scheduler_(nullptr),
      ownedScheduler_(std::make_unique<Scheduler>(
          clock, SchedulerOptions{.workers = workers})) {
  scheduler_ = ownedScheduler_.get();
}

RequestManager::RequestManager(ConnectionManager& connections,
                               CacheController& cache,
                               const FineSecurityLayer& fgsl,
                               store::Database* historyDb, util::Clock& clock,
                               Scheduler& scheduler,
                               RequestManagerTuning tuning)
    : connections_(connections),
      cache_(cache),
      fgsl_(fgsl),
      historyDb_(historyDb),
      clock_(clock),
      tuning_(tuning),
      health_(clock, tuning.breaker),
      scheduler_(&scheduler) {}

namespace {

constexpr const char kDeadlineExceeded[] = "deadline exceeded";
constexpr const char kOverloaded[] =
    "gateway overloaded: scheduler queue full";

}  // namespace

std::string RequestManager::queryGroup(const std::string& sqlText) const {
  if (planCache_ != nullptr) {
    // Statement-level (unbound) on purpose: the FGSL check below needs
    // only the table name and must run before any schema binding, so
    // NoSuchTable surfaces from the driver in the established order.
    return planCache_->statement(sqlText)->table;
  }
  try {
    return sql::parseSelect(sqlText).table;
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax, e.what());
  }
}

/// Completion rendezvous for one fan-out: workers decrement `remaining`
/// when a source slot is filled and the collector waits on `cv`.
struct RequestManager::FanOutState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;
};

/// Shared result slot for one source. The collector and up to two
/// attempt workers (primary + hedge) hold it through shared_ptr, so an
/// attempt abandoned past the deadline completes against live memory
/// and is simply discarded.
struct RequestManager::SourceSlot {
  std::string url;
  util::TimePoint startedAt = 0;
  /// Shared by the slot's primary and hedge attempt: cancelled when the
  /// slot settles (a win, an overload shed or a deadline seal), so a
  /// still-queued sibling attempt is dropped before it runs.
  CancelToken cancel;
  std::mutex mu;  // guards everything below
  bool done = false;
  bool abandoned = false;  // collector gave up; late results are dropped
  bool hedged = false;     // second attempt was issued
  int winner = -1;         // attempt index (0 primary, 1 hedge) that filled
  std::shared_ptr<const dbc::VectorResultSet> rows;
  std::string error;
  dbc::ErrorCode errorCode = dbc::ErrorCode::Generic;
  bool fromCache = false;
  bool coalesced = false;
};

/// Single-flight record: the leader executes the source request, every
/// concurrent identical miss waits here and shares the outcome.
struct RequestManager::Inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const dbc::VectorResultSet> rows;
  std::string error;
  dbc::ErrorCode errorCode = dbc::ErrorCode::Generic;
};

void RequestManager::settleFlight(
    const std::string& cacheKey, const std::shared_ptr<Inflight>& flight,
    std::shared_ptr<const dbc::VectorResultSet> rows, std::string error,
    dbc::ErrorCode code) {
  {
    // Retire the flight before publishing: an arrival after this point
    // starts fresh (and will usually hit the cache the leader filled).
    std::scoped_lock lock(inflightMu_);
    auto it = inflight_.find(cacheKey);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
  }
  {
    std::scoped_lock lock(flight->mu);
    flight->done = true;
    flight->rows = std::move(rows);
    flight->error = std::move(error);
    flight->errorCode = code;
  }
  flight->cv.notify_all();
}

std::shared_ptr<const dbc::VectorResultSet> RequestManager::contactSource(
    const util::Url& url, const std::string& urlText,
    const std::string& sqlText, const QueryOptions& options,
    const std::string& group, const std::string& cacheKey) {
  // The breaker gates the source *after* the cache: a degraded source
  // can still be served from recent cached rows, but is not contacted.
  if (!health_.allowRequest(urlText)) {
    throw SqlError(ErrorCode::Unavailable,
                   "circuit breaker open for " + urlText +
                       "; source reported as degraded");
  }

  ConnectionManager::Lease lease = connections_.acquire(url, util::Config{});
  std::shared_ptr<const dbc::VectorResultSet> rows;
  try {
    std::unique_ptr<dbc::Statement> stmt = lease->createStatement();
    std::unique_ptr<dbc::ResultSet> rs = stmt->executeQuery(sqlText);
    // Drivers in this codebase return materialised sets; materialise
    // defensively for any that stream. Ownership moves to shared
    // storage so the cache, followers and the client cursor all read
    // the same rows.
    if (auto* vec = dynamic_cast<dbc::VectorResultSet*>(rs.get())) {
      rs.release();
      rows.reset(vec);
    } else {
      rows = std::shared_ptr<const dbc::VectorResultSet>(
          dbc::VectorResultSet::materialize(*rs));
    }
  } catch (const SqlError& e) {
    // Connection-level failures poison the pooled connection and clear
    // the last-good driver so the next attempt reselects (section 4).
    if (e.code() == ErrorCode::ConnectionFailed ||
        e.code() == ErrorCode::Timeout ||
        e.code() == ErrorCode::ConnectionClosed) {
      lease.poison();
    }
    throw;
  }

  if (options.useCache) {
    cache_.insert(cacheKey, rows, options.cacheTtl);
  }
  if (options.recordHistory) {
    recordHistory(urlText, group, *rows);
  }
  return rows;
}

std::shared_ptr<const dbc::VectorResultSet> RequestManager::executeSource(
    const Principal& principal, const std::string& urlText,
    const std::string& sqlText, const QueryOptions& options, bool& fromCache,
    bool& coalesced, bool allowCoalesce) {
  fromCache = false;
  coalesced = false;
  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  const std::string group = queryGroup(sqlText);
  fgsl_.require(principal, url->host(), group);

  const std::string cacheKey = CacheController::key(urlText, sqlText);
  if (options.useCache) {
    if (auto cached = cache_.lookupShared(cacheKey)) {
      fromCache = true;
      return cached;
    }
  }

  // Single flight: join an in-flight execution of the same (url, sql)
  // or become its leader. Polls (useCache = false) always contact the
  // source, and hedge attempts never coalesce (allowCoalesce).
  std::shared_ptr<Inflight> flight;
  if (options.useCache && tuning_.coalesce && allowCoalesce) {
    bool leader = true;
    {
      std::scoped_lock lock(inflightMu_);
      auto it = inflight_.find(cacheKey);
      if (it != inflight_.end()) {
        flight = it->second;
        leader = false;
      } else {
        flight = std::make_shared<Inflight>();
        inflight_.emplace(cacheKey, flight);
      }
    }
    if (!leader) {
      std::unique_lock lock(flight->mu);
      flight->cv.wait(lock, [&] { return flight->done; });
      coalesced = true;
      {
        std::scoped_lock slock(mu_);
        ++stats_.coalescedQueries;
      }
      if (flight->rows != nullptr) return flight->rows;
      throw SqlError(flight->errorCode, flight->error);
    }
  }

  // Leader (or coalescing disabled). The flight must settle on every
  // exit path or followers would wait forever.
  if (flight == nullptr) {
    return contactSource(*url, urlText, sqlText, options, group, cacheKey);
  }
  try {
    auto rows = contactSource(*url, urlText, sqlText, options, group, cacheKey);
    settleFlight(cacheKey, flight, rows, {}, ErrorCode::Generic);
    return rows;
  } catch (const SqlError& e) {
    settleFlight(cacheKey, flight, nullptr, e.what(), e.code());
    throw;
  } catch (const std::exception& e) {
    settleFlight(cacheKey, flight, nullptr, e.what(), ErrorCode::Generic);
    throw;
  }
}

util::Duration RequestManager::resolveDeadline(
    const QueryOptions& options) const {
  const util::Duration d = options.deadline == kInheritTiming
                               ? tuning_.defaultDeadline
                               : options.deadline;
  return d > 0 ? d : 0;
}

util::Duration RequestManager::resolveHedgeDelay(
    const QueryOptions& options) const {
  const util::Duration d = options.hedgeDelay == kInheritTiming
                               ? tuning_.defaultHedgeDelay
                               : options.hedgeDelay;
  if (d == kHedgeAuto) return kHedgeAuto;
  return d > 0 ? d : 0;
}

void RequestManager::recordAttemptHealth(const std::string& url, bool success,
                                         dbc::ErrorCode code,
                                         util::Duration latency) {
  if (success) {
    health_.recordSuccess(url, latency);
    return;
  }
  switch (code) {
    case ErrorCode::ConnectionFailed:
    case ErrorCode::Timeout:
    case ErrorCode::ConnectionClosed:
      health_.recordFailure(url);
      break;
    default:
      // Client-class errors (syntax, security, unsupported) and breaker
      // skips say nothing about the source's responsiveness.
      break;
  }
}

void RequestManager::submitAttempt(const std::shared_ptr<FanOutState>& state,
                                   const std::shared_ptr<SourceSlot>& slot,
                                   int attempt, const Principal& principal,
                                   const std::string& sql,
                                   const QueryOptions& options) {
  // Hedge attempts ride their own lane: they must never outrank the
  // primaries they race, but a Background caller's hedge stays
  // Background (a poll's retry is not suddenly latency-critical).
  const Lane lane =
      attempt == 1
          ? (options.lane == Lane::Background ? Lane::Background : Lane::Hedge)
          : options.lane;
  // Everything is captured by value / shared_ptr: an attempt that
  // outlives the deadline must never touch the caller's stack.
  const bool accepted = scheduler_->submit(
      lane,
      [this, state, slot, attempt, principal, sql, options] {
    const util::TimePoint start = clock_.now();
    std::shared_ptr<const dbc::VectorResultSet> rows;
    std::string error;
    dbc::ErrorCode code = dbc::ErrorCode::Generic;
    bool fromCache = false;
    bool coalesced = false;
    try {
      rows = executeSource(principal, slot->url, sql, options, fromCache,
                           coalesced, /*allowCoalesce=*/attempt == 0);
    } catch (const SqlError& e) {
      error = e.what();
      code = e.code();
    } catch (const std::exception& e) {
      error = e.what();
    }
    const util::Duration elapsed = clock_.now() - start;
    const bool success = rows != nullptr;
    bool won = false;
    bool abandoned = false;
    {
      std::scoped_lock lock(slot->mu);
      abandoned = slot->abandoned;
      if (!slot->done && !slot->abandoned) {
        slot->done = true;
        slot->winner = attempt;
        slot->rows = std::move(rows);
        slot->error = std::move(error);
        slot->errorCode = code;
        slot->fromCache = fromCache;
        slot->coalesced = coalesced;
        won = true;
      }
    }
    // Abandoned attempts stay silent: the collector already charged
    // the deadline miss to the breaker, and a late success must not
    // mask a source that misses every deadline. Cache hits and
    // coalesced followers never contacted the source, so they carry no
    // health signal either (the flight's leader records its own).
    if (!abandoned && !fromCache && !coalesced) {
      recordAttemptHealth(slot->url, success, code, elapsed);
    }
    if (won) {
      // The race is settled: a sibling attempt still queued behind
      // this one is dead weight — cancel it before it runs.
      slot->cancel.cancel();
      std::scoped_lock lock(state->mu);
      --state->remaining;
      state->cv.notify_all();
    }
      },
      slot->cancel);

  if (accepted) return;
  // Admission refused: the scheduler queue is saturated (or shutting
  // down). Shed this attempt instead of queueing unboundedly.
  {
    std::scoped_lock lock(mu_);
    ++stats_.overloadRejections;
  }
  if (attempt == 1) return;  // a shed hedge leaves the primary racing alone
  bool lost = false;
  {
    std::scoped_lock lock(slot->mu);
    if (!slot->done && !slot->abandoned) {
      slot->done = true;
      slot->winner = attempt;
      slot->error = kOverloaded;
      slot->errorCode = ErrorCode::Overloaded;
      lost = true;
    }
  }
  if (lost) {
    slot->cancel.cancel();
    std::scoped_lock lock(state->mu);
    --state->remaining;
    state->cv.notify_all();
  }
}

std::vector<std::shared_ptr<RequestManager::SourceSlot>>
RequestManager::fanOut(const Principal& principal,
                       const std::vector<std::string>& urls,
                       const std::string& sql, const QueryOptions& options,
                       util::Duration deadline, util::Duration hedgeDelay) {
  auto state = std::make_shared<FanOutState>();
  state->remaining = urls.size();
  const util::TimePoint t0 = clock_.now();
  std::vector<std::shared_ptr<SourceSlot>> slots;
  slots.reserve(urls.size());
  for (const auto& url : urls) {
    auto slot = std::make_shared<SourceSlot>();
    slot->url = url;
    slot->startedAt = t0;
    slot->cancel = CancelToken::make();
    slots.push_back(std::move(slot));
  }
  for (const auto& slot : slots) {
    submitAttempt(state, slot, /*attempt=*/0, principal, sql, options);
  }

  const bool hasDeadline = deadline > 0;
  const util::TimePoint deadlineAt = t0 + deadline;
  const bool hedging = hedgeDelay > 0 || hedgeDelay == kHedgeAuto;
  bool aborted = false;  // scheduler stopped while attempts were pending

  if (!hasDeadline && !hedging) {
    // No deadline to poll the clock for, but the wait must still notice
    // a stopping scheduler: shutdown cancels queued Background attempts,
    // and a cancelled attempt never decrements `remaining`.
    for (;;) {
      std::unique_lock lock(state->mu);
      if (state->remaining == 0) break;
      state->cv.wait_for(lock, std::chrono::milliseconds(1));
      if (state->remaining == 0) break;
      lock.unlock();
      if (scheduler_->stopped()) {
        aborted = true;
        break;
      }
    }
  } else {
    // Deadline/hedge decisions depend on the injected Clock, which may
    // be simulated and advanced by another thread, so the collector
    // polls it on a short real-time tick instead of blocking on it.
    for (;;) {
      {
        std::unique_lock lock(state->mu);
        if (state->remaining == 0) break;
        state->cv.wait_for(lock, std::chrono::microseconds(200));
        if (state->remaining == 0) break;
      }
      const util::TimePoint now = clock_.now();
      if (hasDeadline && now >= deadlineAt) break;
      // A stopping scheduler cancels queued Background attempts, so a
      // Background-lane collector (a poll, a relayed query) must not
      // wait for completions that will never come.
      if (scheduler_->stopped()) {
        aborted = true;
        break;
      }
      if (!hedging) continue;
      for (const auto& slot : slots) {
        bool launch = false;
        {
          std::scoped_lock lock(slot->mu);
          if (slot->done || slot->hedged) continue;
          const util::Duration delay =
              hedgeDelay == kHedgeAuto
                  ? health_.suggestedHedgeDelay(slot->url, tuning_.hedgeFloor)
                  : hedgeDelay;
          if (delay > 0 && now - slot->startedAt >= delay) {
            slot->hedged = true;
            launch = true;
          }
        }
        if (launch) {
          {
            std::scoped_lock lock(mu_);
            ++stats_.hedgedRequests;
          }
          submitAttempt(state, slot, /*attempt=*/1, principal, sql, options);
        }
      }
    }
  }

  // Whatever is still pending is past the deadline: seal the slots so
  // late attempts are dropped, and charge the miss to the breaker.
  std::vector<std::string> missed;
  for (const auto& slot : slots) {
    bool sealed = false;
    {
      std::scoped_lock lock(slot->mu);
      if (!slot->done) {
        slot->abandoned = true;
        if (aborted) {
          // Teardown, not slowness: no breaker/deadline accounting.
          slot->error = "gateway scheduler stopped";
          slot->errorCode = ErrorCode::Overloaded;
        } else {
          slot->error = kDeadlineExceeded;
          slot->errorCode = ErrorCode::Timeout;
          missed.push_back(slot->url);
        }
        sealed = true;
      }
    }
    // A sealed slot's attempts are dead: a queued one is dropped by
    // the scheduler before it ever claims a pooled connection.
    if (sealed) slot->cancel.cancel();
  }
  if (!missed.empty()) {
    for (const auto& url : missed) health_.recordFailure(url);
    std::scoped_lock lock(mu_);
    stats_.deadlineMisses += missed.size();
  }
  return slots;
}

QueryResult RequestManager::queryOne(const Principal& principal,
                                     const std::string& url,
                                     const std::string& sqlText,
                                     const QueryOptions& options) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.queries;
    ++stats_.sourceQueries;
  }
  const util::Duration deadline = resolveDeadline(options);
  const util::Duration hedgeDelay = resolveHedgeDelay(options);
  QueryResult result;
  result.sourcesQueried = 1;

  if (deadline <= 0 && hedgeDelay == 0) {
    // Direct path: no isolation machinery, run on the caller's thread.
    const util::TimePoint start = clock_.now();
    bool fromCache = false;
    bool coalesced = false;
    try {
      auto rows = executeSource(principal, url, sqlText, options, fromCache,
                                coalesced, /*allowCoalesce=*/true);
      result.rows = std::make_unique<dbc::SharedResultSet>(std::move(rows));
      if (fromCache) {
        result.servedFromCache = 1;
      } else if (!coalesced) {
        recordAttemptHealth(url, true, ErrorCode::Generic,
                            clock_.now() - start);
      }
    } catch (const SqlError& e) {
      if (!coalesced) {
        recordAttemptHealth(url, false, e.code(), clock_.now() - start);
      }
      result.failures.push_back(SourceError{url, e.what(), e.code()});
      std::scoped_lock lock(mu_);
      ++stats_.sourceErrors;
      if (e.code() == ErrorCode::Unavailable) ++stats_.breakerSkips;
    }
    return result;
  }

  auto slots = fanOut(principal, {url}, sqlText, options, deadline, hedgeDelay);
  SourceSlot& slot = *slots[0];
  std::scoped_lock slotLock(slot.mu);
  if (slot.rows != nullptr) {
    result.rows = std::make_unique<dbc::SharedResultSet>(std::move(slot.rows));
    if (slot.fromCache) result.servedFromCache = 1;
    if (slot.hedged && slot.winner == 1) {
      std::scoped_lock lock(mu_);
      ++stats_.hedgeWins;
    }
  } else {
    result.failures.push_back(SourceError{url, slot.error, slot.errorCode});
    std::scoped_lock lock(mu_);
    ++stats_.sourceErrors;
    if (slot.errorCode == ErrorCode::Unavailable) ++stats_.breakerSkips;
  }
  return result;
}

QueryResult RequestManager::query(const Principal& principal,
                                  const std::vector<std::string>& urls,
                                  const std::string& sqlText,
                                  const QueryOptions& options) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.queries;
    stats_.sourceQueries += urls.size();
  }
  const util::Duration deadline = resolveDeadline(options);
  const util::Duration hedgeDelay = resolveHedgeDelay(options);

  std::vector<std::shared_ptr<SourceSlot>> slots;
  if ((options.parallel && urls.size() > 1) || deadline > 0 ||
      hedgeDelay != 0) {
    // A deadline or hedging implies pooled execution even for serial
    // requests: the caller's thread must stay free to keep the clock.
    slots = fanOut(principal, urls, sqlText, options, deadline, hedgeDelay);
  } else {
    slots.reserve(urls.size());
    for (const auto& url : urls) {
      auto slot = std::make_shared<SourceSlot>();
      slot->url = url;
      const util::TimePoint start = clock_.now();
      try {
        slot->rows = executeSource(principal, url, sqlText, options,
                                   slot->fromCache, slot->coalesced,
                                   /*allowCoalesce=*/true);
        slot->done = true;
        if (!slot->fromCache && !slot->coalesced) {
          recordAttemptHealth(url, true, ErrorCode::Generic,
                              clock_.now() - start);
        }
      } catch (const SqlError& e) {
        slot->error = e.what();
        slot->errorCode = e.code();
        slot->done = true;
        recordAttemptHealth(url, false, e.code(), clock_.now() - start);
      } catch (const std::exception& e) {
        slot->error = e.what();
        slot->done = true;
      }
      slots.push_back(std::move(slot));
    }
  }

  // Consolidate: common columns (from the first successful source)
  // prefixed by a Source column.
  QueryResult result;
  result.sourcesQueried = urls.size();
  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<Value>> rows;
  bool haveColumns = false;
  for (const auto& slotPtr : slots) {
    SourceSlot& p = *slotPtr;
    std::scoped_lock slotLock(p.mu);
    if (p.rows == nullptr) {
      result.failures.push_back(SourceError{p.url, p.error, p.errorCode});
      std::scoped_lock lock(mu_);
      ++stats_.sourceErrors;
      if (p.errorCode == ErrorCode::Unavailable) ++stats_.breakerSkips;
      continue;
    }
    if (p.fromCache) ++result.servedFromCache;
    if (p.hedged && p.winner == 1) {
      std::scoped_lock lock(mu_);
      ++stats_.hedgeWins;
    }
    if (!haveColumns) {
      columns.push_back(
          dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
      for (const auto& c : p.rows->metaData().columns()) columns.push_back(c);
      haveColumns = true;
    }
    const std::size_t expectedWidth = columns.size() - 1;
    if (p.rows->metaData().columnCount() != expectedWidth) {
      result.failures.push_back(
          SourceError{p.url, "column mismatch during consolidation"});
      continue;
    }
    for (const auto& row : p.rows->rows()) {
      std::vector<Value> outRow;
      outRow.reserve(columns.size());
      outRow.emplace_back(p.url);
      for (const auto& v : row) outRow.push_back(v);
      rows.push_back(std::move(outRow));
    }
  }
  if (!haveColumns) {
    // Every source failed: deliver an empty, schemaless set alongside
    // the failure list.
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
  }
  result.rows = std::make_unique<dbc::SharedResultSet>(
      std::make_shared<const dbc::VectorResultSet>(
          dbc::ResultSetMetaData(std::move(columns)), std::move(rows)));
  return result;
}

void RequestManager::recordHistory(const std::string& url,
                                   const std::string& group,
                                   const dbc::VectorResultSet& rs) {
  if (historyDb_ == nullptr) return;
  const std::string table = historyTableName(group);
  if (!historyDb_->hasTable(table)) {
    std::vector<dbc::ColumnInfo> columns;
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", table});
    columns.push_back(
        dbc::ColumnInfo{"RecordedAt", util::ValueType::Int, "us", table});
    for (const auto& c : rs.metaData().columns()) columns.push_back(c);
    // Time-partitioned on the recording timestamp: lands in the
    // gateway's columnar tsdb when one is attached, else a row table.
    historyDb_->createTimeSeries(table, std::move(columns), "RecordedAt");
  }
  const util::TimePoint now = clock_.now();
  std::size_t recorded = 0;
  for (const auto& row : rs.rows()) {
    std::vector<Value> outRow;
    outRow.reserve(row.size() + 2);
    outRow.emplace_back(url);
    outRow.emplace_back(now);
    for (const auto& v : row) outRow.push_back(v);
    historyDb_->insertRow(table, std::move(outRow));
    ++recorded;
  }
  std::scoped_lock lock(mu_);
  stats_.rowsRecorded += recorded;
}

std::unique_ptr<dbc::VectorResultSet> RequestManager::queryHistorical(
    const Principal& /*principal*/, const std::string& sqlText) {
  // CGSL authorises the operation class at the gateway door; reaching
  // here means HistoricalQuery was already granted.
  if (historyDb_ == nullptr) {
    throw SqlError(ErrorCode::Unsupported,
                   "this gateway keeps no historical data");
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.historyQueries;
  }
  try {
    return historyDb_->query(sqlText);
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax, e.what());
  }
}

void RequestManager::refreshCache(
    const std::string& url, const std::string& sql,
    std::shared_ptr<const dbc::VectorResultSet> rows) {
  cache_.insert(CacheController::key(url, sql), std::move(rows));
}

void RequestManager::refreshCache(const std::string& url,
                                  const std::string& sql,
                                  const dbc::VectorResultSet& rows) {
  cache_.insert(CacheController::key(url, sql), rows);
}

RequestManagerStats RequestManager::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
