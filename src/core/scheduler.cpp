#include "gridrm/core/scheduler.hpp"

namespace gridrm::core {

const char* laneName(Lane lane) noexcept {
  switch (lane) {
    case Lane::Interactive:
      return "interactive";
    case Lane::Hedge:
      return "hedge";
    case Lane::Background:
      return "background";
  }
  return "?";
}

Scheduler::Scheduler(util::Clock& clock, SchedulerOptions options)
    : clock_(clock), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.maxQueueDepth == 0) options_.maxQueueDepth = 1;
  if (options_.backgroundShare > 100) options_.backgroundShare = 100;
  // Leave one worker free of blocking tasks: a poll that fans out and
  // waits for its attempts can never consume the last worker those
  // attempts need to run (nested-submission deadlock).
  blockingCap_ = options_.workers > 1 ? options_.workers - 1 : 1;
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

Scheduler::~Scheduler() { shutdown(); }

bool Scheduler::submit(Lane lane, Task task, CancelToken token,
                       bool blocking) {
  if (task == nullptr) return false;
  {
    std::scoped_lock lock(mu_);
    LaneStats& stats = laneStats(lane);
    if (stopped_ || queue(lane).size() >= options_.maxQueueDepth) {
      ++stats.rejected;
      return false;
    }
    ++stats.submitted;
    queue(lane).push_back(
        Entry{std::move(task), std::move(token), blocking, clock_.now()});
    stats.queued = queue(lane).size();
    if (stats.queued > stats.maxQueued) stats.maxQueued = stats.queued;
  }
  cv_.notify_one();
  return true;
}

void Scheduler::shutdown() {
  {
    std::scoped_lock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Queued Background work is cancelled rather than drained: polls
    // and delta dispatches are periodic and a dying gateway owes them
    // nothing. Interactive and Hedge entries stay queued — workers
    // drain them so clients already admitted still get answers.
    LaneStats& bg = laneStats(Lane::Background);
    for (Entry& entry : queue(Lane::Background)) {
      entry.token.cancel();
      ++bg.cancelled;
    }
    queue(Lane::Background).clear();
    bg.queued = 0;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool Scheduler::stopped() const {
  std::scoped_lock lock(mu_);
  return stopped_;
}

bool Scheduler::queuesEmptyLocked() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

void Scheduler::waitIdle() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return queuesEmptyLocked() && running_ == 0; });
}

bool Scheduler::idle() const {
  std::scoped_lock lock(mu_);
  return queuesEmptyLocked() && running_ == 0;
}

bool Scheduler::hasEligibleLocked(Lane lane) {
  auto& q = queue(lane);
  for (auto it = q.begin(); it != q.end();) {
    if (it->token.cancelled()) {
      ++laneStats(lane).cancelled;
      it = q.erase(it);
      continue;
    }
    if (!it->blocking || runningBlocking_ < blockingCap_) return true;
    ++it;
  }
  laneStats(lane).queued = q.size();
  return false;
}

bool Scheduler::popEligibleLocked(Lane lane, Entry& out) {
  auto& q = queue(lane);
  for (auto it = q.begin(); it != q.end();) {
    if (it->token.cancelled()) {
      ++laneStats(lane).cancelled;
      it = q.erase(it);
      continue;
    }
    if (!it->blocking || runningBlocking_ < blockingCap_) {
      out = std::move(*it);
      q.erase(it);
      LaneStats& stats = laneStats(lane);
      stats.queued = q.size();
      const util::Duration wait = clock_.now() - out.enqueuedAt;
      if (wait > 0) {
        stats.totalWait += wait;
        if (wait > stats.maxWait) stats.maxWait = wait;
      }
      return true;
    }
    ++it;
  }
  laneStats(lane).queued = q.size();
  return false;
}

bool Scheduler::pickLocked(Entry& out, Lane& outLane) {
  // Weighted dispatch: strict priority, except that when Background
  // and a higher lane are both runnable, Background accrues credit and
  // periodically wins a slot so a steady interactive load can never
  // starve the harvesting that keeps the recent-status view fresh.
  std::array<Lane, kLaneCount> order{Lane::Interactive, Lane::Hedge,
                                     Lane::Background};
  const bool bgRunnable = hasEligibleLocked(Lane::Background);
  const bool hiRunnable = hasEligibleLocked(Lane::Interactive) ||
                          hasEligibleLocked(Lane::Hedge);
  if (bgRunnable && hiRunnable && options_.backgroundShare > 0) {
    bgCredit_ += options_.backgroundShare;
    if (bgCredit_ >= 100) {
      bgCredit_ -= 100;
      order = {Lane::Background, Lane::Interactive, Lane::Hedge};
    }
  }
  for (Lane lane : order) {
    if (popEligibleLocked(lane, out)) {
      outLane = lane;
      return true;
    }
  }
  return false;
}

void Scheduler::workerLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    Entry entry;
    Lane lane = Lane::Interactive;
    if (pickLocked(entry, lane)) {
      ++running_;
      if (entry.blocking) ++runningBlocking_;
      lock.unlock();
      try {
        entry.task();
      } catch (...) {
        // A throwing task must not take the worker down; failures are
        // reported through the task's own result channel.
      }
      entry.task = nullptr;  // release captures before re-locking
      lock.lock();
      --running_;
      if (entry.blocking) --runningBlocking_;
      ++laneStats(lane).executed;
      // Wake cap-blocked siblings, waitIdle() and draining shutdown.
      cv_.notify_all();
      continue;
    }
    // A failed pick pruned every cancelled entry, so empty-or-capped
    // is now literal: exit only once the drain is genuinely complete.
    if (stopped_ && queuesEmptyLocked()) return;
    cv_.wait(lock);
  }
}

SchedulerStats Scheduler::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
