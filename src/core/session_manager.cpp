#include "gridrm/core/session_manager.hpp"

namespace gridrm::core {

std::string SessionManager::open(Principal principal) {
  std::scoped_lock lock(mu_);
  const std::string token =
      "s" + std::to_string(nextId_++) + "-" + principal.id;
  const util::TimePoint now = clock_.now();
  sessions_[token] = SessionInfo{token, std::move(principal), now, now};
  return token;
}

std::optional<SessionInfo> SessionManager::validate(const std::string& token) {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return std::nullopt;
  const util::TimePoint now = clock_.now();
  if (now - it->second.lastUsed > idleTimeout_) {
    sessions_.erase(it);
    return std::nullopt;
  }
  it->second.lastUsed = now;
  return it->second;
}

void SessionManager::close(const std::string& token) {
  std::scoped_lock lock(mu_);
  sessions_.erase(token);
}

std::size_t SessionManager::expireIdle() {
  std::scoped_lock lock(mu_);
  const util::TimePoint now = clock_.now();
  std::size_t dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.lastUsed > idleTimeout_) {
      it = sessions_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t SessionManager::activeCount() const {
  std::scoped_lock lock(mu_);
  return sessions_.size();
}

}  // namespace gridrm::core
