#include "gridrm/core/driver_manager.hpp"

#include <algorithm>
#include <optional>

namespace gridrm::core {

using dbc::ErrorCode;
using dbc::SqlError;

void GridRmDriverManager::setStaticPreference(
    const std::string& urlText, std::vector<std::string> driverNames) {
  std::scoped_lock lock(mu_);
  staticPrefs_[urlText] = std::move(driverNames);
}

void GridRmDriverManager::clearStaticPreference(const std::string& urlText) {
  std::scoped_lock lock(mu_);
  staticPrefs_.erase(urlText);
}

std::vector<std::string> GridRmDriverManager::staticPreference(
    const std::string& urlText) const {
  std::scoped_lock lock(mu_);
  auto it = staticPrefs_.find(urlText);
  return it == staticPrefs_.end() ? std::vector<std::string>{} : it->second;
}

void GridRmDriverManager::setFailurePolicy(const FailurePolicy& policy) {
  std::scoped_lock lock(mu_);
  policy_ = policy;
}

FailurePolicy GridRmDriverManager::failurePolicy() const {
  std::scoped_lock lock(mu_);
  return policy_;
}

void GridRmDriverManager::setLastGoodCacheEnabled(bool enabled) {
  std::scoped_lock lock(mu_);
  cacheEnabled_ = enabled;
  if (!enabled) lastGood_.clear();
}

std::string GridRmDriverManager::cachedDriver(const std::string& urlText) const {
  std::scoped_lock lock(mu_);
  auto it = lastGood_.find(urlText);
  return it == lastGood_.end() ? std::string{} : it->second;
}

void GridRmDriverManager::reportFailure(const std::string& urlText) {
  std::scoped_lock lock(mu_);
  lastGood_.erase(urlText);
}

GridRmDriverManager::Selection GridRmDriverManager::obtainConnection(
    const util::Url& url, const util::Config& props) {
  // Phase 1 (under the lock): read configuration, build the candidate
  // plan. Phase 2 (outside): probe acceptsUrl / connect, which is driver
  // code and must not run under our lock (CP.22).
  std::vector<std::string> staticNames;
  std::string cachedName;
  FailurePolicy policy;
  bool cacheEnabled;
  {
    std::scoped_lock lock(mu_);
    auto prefIt = staticPrefs_.find(url.text());
    if (prefIt != staticPrefs_.end()) staticNames = prefIt->second;
    auto cacheIt = lastGood_.find(url.text());
    if (cacheEnabled_ && cacheIt != lastGood_.end()) cachedName = cacheIt->second;
    policy = policy_;
    cacheEnabled = cacheEnabled_;
  }

  enum class Origin { Cache, Static, Dynamic };
  struct Candidate {
    std::shared_ptr<dbc::Driver> driver;
    Origin origin;
  };

  // Primary candidates come from static preferences or the last-good
  // cache. The dynamic acceptsUrl scan is performed lazily: a cache hit
  // that connects on the first try costs zero probes, which is exactly
  // the saving the last-good cache exists to provide.
  std::vector<Candidate> candidates;
  std::vector<std::string> triedNames;
  if (!staticNames.empty()) {
    for (const auto& name : staticNames) {
      if (auto d = registry_.find(name)) {
        candidates.push_back({std::move(d), Origin::Static});
      }
    }
  } else if (!cachedName.empty()) {
    if (auto d = registry_.find(cachedName)) {
      candidates.push_back({std::move(d), Origin::Cache});
    }
  }

  const bool mayScan =
      staticNames.empty()
          ? (candidates.empty() ||
             policy.action == FailurePolicy::Action::TryNext ||
             policy.action == FailurePolicy::Action::DynamicReselect)
          : policy.action == FailurePolicy::Action::DynamicReselect;

  std::string lastError = "no candidates tried";
  bool anyFailure = false;

  auto tryCandidate = [&](const Candidate& cand,
                          bool isFirst) -> std::optional<Selection> {
    triedNames.push_back(cand.driver->name());
    const int attempts =
        policy.action == FailurePolicy::Action::Retry ? 1 + policy.retries : 1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      try {
        std::unique_ptr<dbc::Connection> conn = cand.driver->connect(url, props);
        std::scoped_lock lock(mu_);
        ++stats_.selections;
        if (cand.origin == Origin::Cache) ++stats_.cacheHits;
        if (cand.origin == Origin::Static) ++stats_.staticSelections;
        if (!isFirst || attempt > 0) ++stats_.failovers;
        if (cacheEnabled) lastGood_[url.text()] = cand.driver->name();
        return Selection{cand.driver, std::move(conn)};
      } catch (const SqlError& e) {
        lastError = e.what();
        anyFailure = true;
        std::scoped_lock lock(mu_);
        ++stats_.connectFailures;
      }
    }
    return std::nullopt;
  };

  bool first = true;
  for (const auto& cand : candidates) {
    if (auto sel = tryCandidate(cand, first)) return std::move(*sel);
    first = false;
    if (policy.action == FailurePolicy::Action::Report) break;
  }

  const bool reportStop =
      policy.action == FailurePolicy::Action::Report && anyFailure;
  bool scanned = false;
  if (mayScan && !reportStop) {
    // Dynamic location (Table 2): probe registered drivers in
    // registration order, skipping those already tried.
    std::uint64_t probes = 0;
    std::vector<Candidate> dynamic;
    for (auto& d : registry_.drivers()) {
      if (std::find(triedNames.begin(), triedNames.end(), d->name()) !=
          triedNames.end()) {
        continue;
      }
      ++probes;
      if (d->acceptsUrl(url)) dynamic.push_back({std::move(d), Origin::Dynamic});
    }
    {
      std::scoped_lock lock(mu_);
      ++stats_.dynamicScans;
      stats_.acceptProbes += probes;
    }
    scanned = true;
    for (const auto& cand : dynamic) {
      if (auto sel = tryCandidate(cand, first)) return std::move(*sel);
      first = false;
      if (policy.action == FailurePolicy::Action::Report) break;
    }
  }

  if (triedNames.empty()) {
    throw SqlError(ErrorCode::Unsupported,
                   scanned ? "no registered driver accepts " + url.text()
                           : "no driver candidates for " + url.text());
  }

  // Every candidate failed: forget any stale last-good entry.
  {
    std::scoped_lock lock(mu_);
    lastGood_.erase(url.text());
  }
  throw SqlError(ErrorCode::ConnectionFailed,
                 "all drivers failed for " + url.text() + "; last: " +
                     lastError);
}

DriverManagerStats GridRmDriverManager::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
