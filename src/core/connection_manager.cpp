#include "gridrm/core/connection_manager.hpp"

namespace gridrm::core {

void ConnectionManager::Lease::release() {
  if (manager_ == nullptr || conn_ == nullptr) return;
  manager_->give(key_, std::move(driver_), std::move(conn_), poisoned_);
  manager_ = nullptr;
}

ConnectionManager::Lease ConnectionManager::acquire(const util::Url& url,
                                                    const util::Config& props) {
  const std::string key = url.text();
  {
    std::scoped_lock lock(mu_);
    ++stats_.acquisitions;
  }
  // Reuse idle connections, validating outside the lock.
  while (true) {
    Pooled pooled;
    {
      std::scoped_lock lock(mu_);
      auto it = idle_.find(key);
      if (it == idle_.end() || it->second.empty()) break;
      pooled = std::move(it->second.front());
      it->second.pop_front();
    }
    const bool ok = !validate_ || pooled.conn->isValid();
    if (ok) {
      std::scoped_lock lock(mu_);
      ++stats_.poolHits;
      return Lease(this, key, std::move(pooled.driver),
                   std::move(pooled.conn));
    }
    std::scoped_lock lock(mu_);
    ++stats_.validationFailures;
    // loop: try the next idle connection, if any
  }

  GridRmDriverManager::Selection sel =
      driverManager_.obtainConnection(url, props);
  {
    std::scoped_lock lock(mu_);
    ++stats_.creations;
  }
  return Lease(this, key, std::move(sel.driver), std::move(sel.connection));
}

void ConnectionManager::give(const std::string& key,
                             std::shared_ptr<dbc::Driver> driver,
                             std::unique_ptr<dbc::Connection> conn,
                             bool poisoned) {
  if (poisoned) {
    driverManager_.reportFailure(key);
    std::scoped_lock lock(mu_);
    ++stats_.returns;
    ++stats_.discards;
    return;
  }
  if (conn->isClosed()) {
    std::scoped_lock lock(mu_);
    ++stats_.returns;
    ++stats_.discards;
    return;
  }
  std::scoped_lock lock(mu_);
  ++stats_.returns;
  auto& queue = idle_[key];
  if (queue.size() >= maxIdlePerSource_) {
    ++stats_.discards;
    return;
  }
  queue.push_back(Pooled{std::move(driver), std::move(conn)});
}

PoolStats ConnectionManager::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t ConnectionManager::idleCount(const std::string& urlText) const {
  std::scoped_lock lock(mu_);
  auto it = idle_.find(urlText);
  return it == idle_.end() ? 0 : it->second.size();
}

void ConnectionManager::clear() {
  std::scoped_lock lock(mu_);
  idle_.clear();
}

std::size_t ConnectionManager::dropDriver(const std::string& driverName) {
  std::scoped_lock lock(mu_);
  std::size_t dropped = 0;
  for (auto& [key, queue] : idle_) {
    const std::size_t before = queue.size();
    std::erase_if(queue, [&](const Pooled& p) {
      return p.driver->name() == driverName;
    });
    dropped += before - queue.size();
  }
  return dropped;
}

}  // namespace gridrm::core
