#include "gridrm/core/event_manager.hpp"

#include "gridrm/agents/snmp_agent.hpp"
#include "gridrm/agents/snmp_codec.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::core {

namespace snmp = agents::snmp;
using util::Value;

// ---------------------------------------------------------------------
// SnmpTrapFormatter

bool SnmpTrapFormatter::accepts(const net::Payload& native) const {
  return !native.empty() &&
         static_cast<std::uint8_t>(native[0]) ==
             static_cast<std::uint8_t>(snmp::PduType::Trap);
}

std::optional<Event> SnmpTrapFormatter::decode(
    const net::Address& from, const net::Payload& native) const {
  snmp::Pdu pdu;
  try {
    pdu = snmp::decodePdu(native);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (pdu.type != snmp::PduType::Trap) return std::nullopt;

  Event e;
  e.source = from.host;
  e.severity = Severity::Warning;
  e.type = "snmp.trap";
  const snmp::Oid trapOidKey = snmp::Oid::parse("1.3.6.1.6.3.1.1.4.1.0");
  for (const auto& vb : pdu.varbinds) {
    if (vb.oid == trapOidKey) {
      const std::string trapOid = vb.value.toString();
      if (trapOid == snmp::oids::kTrapHighLoad) {
        e.type = "snmp.trap.highload";
        e.severity = Severity::Critical;
      } else if (trapOid == snmp::oids::kTrapLowDisk) {
        e.type = "snmp.trap.lowdisk";
        e.severity = Severity::Critical;
      }
      e.fields["trapOid"] = Value(trapOid);
    } else {
      e.fields[vb.oid.toString()] = vb.value;
    }
  }
  return e;
}

std::optional<net::Payload> SnmpTrapFormatter::encode(const Event& event) const {
  // Only events that originated as (or can be phrased as) traps encode.
  if (!util::startsWith(event.type, "snmp.trap")) return std::nullopt;
  snmp::Pdu pdu;
  pdu.type = snmp::PduType::Trap;
  for (const auto& [key, value] : event.fields) {
    snmp::Oid oid = snmp::Oid::parse(key);
    if (key == "trapOid") {
      pdu.varbinds.push_back(
          {snmp::Oid::parse("1.3.6.1.6.3.1.1.4.1.0"), value});
    } else if (!oid.empty()) {
      pdu.varbinds.push_back({oid, value});
    }
  }
  return snmp::encodePdu(pdu);
}

// ---------------------------------------------------------------------
// TextEventFormatter
//
// Wire form: "EVENT <type> <severity> key=value key=value ..."

bool TextEventFormatter::accepts(const net::Payload& native) const {
  return util::startsWith(native, "EVENT ");
}

std::optional<Event> TextEventFormatter::decode(
    const net::Address& from, const net::Payload& native) const {
  auto words = util::splitNonEmpty(std::string(util::trim(native)), ' ');
  if (words.size() < 3 || words[0] != "EVENT") return std::nullopt;
  Event e;
  e.source = from.host;
  e.type = words[1];
  if (words[2] == "critical") {
    e.severity = Severity::Critical;
  } else if (words[2] == "warning") {
    e.severity = Severity::Warning;
  } else {
    e.severity = Severity::Info;
  }
  for (std::size_t i = 3; i < words.size(); ++i) {
    std::size_t eq = words[i].find('=');
    if (eq == std::string::npos) continue;
    e.fields[words[i].substr(0, eq)] = Value::parse(words[i].substr(eq + 1));
  }
  return e;
}

std::optional<net::Payload> TextEventFormatter::encode(const Event& event) const {
  std::string out = "EVENT " + event.type + " " + severityName(event.severity);
  for (const auto& [key, value] : event.fields) {
    out += " " + key + "=" + value.toString();
  }
  return out;
}

// ---------------------------------------------------------------------
// EventManager

EventManager::EventManager(util::Clock& clock, store::Database* db,
                           EventManagerOptions options)
    : clock_(clock),
      db_(db),
      options_(options),
      buffer_(options.fastBufferCapacity, options.overflow) {
  if (db_ != nullptr && options_.recordHistory &&
      !db_->hasTable("EventHistory")) {
    db_->createTable("EventHistory",
                     {{"Sequence", util::ValueType::Int, "", "EventHistory"},
                      {"Timestamp", util::ValueType::Int, "us", "EventHistory"},
                      {"Type", util::ValueType::String, "", "EventHistory"},
                      {"Source", util::ValueType::String, "", "EventHistory"},
                      {"Severity", util::ValueType::String, "", "EventHistory"},
                      {"Fields", util::ValueType::String, "", "EventHistory"}});
  }
  if (options_.threadedDispatch) {
    dispatcher_.emplace([this](std::stop_token stop) { dispatchLoop(stop); });
  }
}

EventManager::~EventManager() {
  buffer_.close();
  // ~jthread requests stop and joins.
}

void EventManager::addFormatter(std::unique_ptr<EventFormatter> formatter) {
  std::scoped_lock lock(mu_);
  formatters_.push_back(std::move(formatter));
}

std::size_t EventManager::addListener(const std::string& pattern,
                                      Listener listener) {
  std::scoped_lock lock(mu_);
  const std::size_t id = nextListenerId_++;
  listeners_.push_back(Subscription{id, pattern, std::move(listener)});
  return id;
}

void EventManager::removeListener(std::size_t id) {
  std::scoped_lock lock(mu_);
  std::erase_if(listeners_,
                [&](const Subscription& s) { return s.id == id; });
}

void EventManager::ingestNative(const net::Address& from,
                                const net::Payload& native) {
  // Snapshot formatter pointers, then run plug-in code outside the lock
  // (CP.22). Formatters are add-only for the manager's lifetime.
  std::vector<EventFormatter*> formatters;
  {
    std::scoped_lock lock(mu_);
    formatters.reserve(formatters_.size());
    for (const auto& f : formatters_) formatters.push_back(f.get());
  }
  std::optional<Event> decoded;
  for (EventFormatter* f : formatters) {
    if (!f->accepts(native)) continue;
    decoded = f->decode(from, native);
    if (decoded) break;
  }
  if (!decoded) {
    std::scoped_lock lock(mu_);
    ++stats_.undecodable;
    return;
  }
  ingest(std::move(*decoded));
}

void EventManager::ingest(Event event) {
  event.sequence = ++sequence_;
  if (event.timestamp == 0) event.timestamp = clock_.now();
  {
    std::scoped_lock lock(mu_);
    ++stats_.received;
  }
  if (options_.threadedDispatch) {
    inFlight_.fetch_add(1, std::memory_order_acq_rel);
    if (!buffer_.push(std::move(event))) {
      inFlight_.fetch_sub(1, std::memory_order_acq_rel);
      std::scoped_lock lock(mu_);
      ++stats_.dropped;
    }
  } else {
    dispatchOne(std::move(event));
  }
}

void EventManager::dispatchLoop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    std::optional<Event> event = buffer_.pop();
    if (!event) return;  // closed and drained
    dispatchOne(std::move(*event));
    inFlight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  // Stop requested: drain what remains without blocking.
  while (auto event = buffer_.tryPop()) {
    dispatchOne(std::move(*event));
    inFlight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void EventManager::dispatchOne(Event event) {
  record(event);
  // Copy matching listeners out, then invoke without holding the lock
  // (CP.22: never call unknown code under a lock).
  std::vector<Listener> matched;
  {
    std::scoped_lock lock(mu_);
    for (const auto& sub : listeners_) {
      if (eventTypeMatches(sub.pattern, event.type)) {
        matched.push_back(sub.listener);
      }
    }
    ++stats_.dispatched;
  }
  for (const auto& listener : matched) listener(event);
}

void EventManager::record(const Event& event) {
  if (db_ == nullptr || !options_.recordHistory) return;
  std::string fields;
  for (const auto& [key, value] : event.fields) {
    if (!fields.empty()) fields += " ";
    fields += key + "=" + value.toString();
  }
  db_->insertRow("EventHistory",
                 {Value(static_cast<std::int64_t>(event.sequence)),
                  Value(event.timestamp), Value(event.type),
                  Value(event.source), Value(severityName(event.severity)),
                  Value(fields)});
  std::scoped_lock lock(mu_);
  ++stats_.recorded;
}

bool EventManager::transmit(const Event& event, net::Network& network,
                            const net::Address& from, const net::Address& to,
                            const std::string& formatterName) {
  EventFormatter* formatter = nullptr;
  {
    std::scoped_lock lock(mu_);
    for (const auto& f : formatters_) {
      if (f->name() == formatterName) {
        formatter = f.get();
        break;
      }
    }
  }
  std::optional<net::Payload> encoded;
  if (formatter != nullptr) encoded = formatter->encode(event);
  if (!encoded) return false;
  network.datagram(from, to, *encoded);
  std::scoped_lock lock(mu_);
  ++stats_.transmitted;
  return true;
}

void EventManager::drain() {
  while (inFlight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
}

EventManagerStats EventManager::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
