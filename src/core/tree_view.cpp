#include "gridrm/core/tree_view.hpp"

#include <algorithm>

namespace gridrm::core {

std::string renderTable(const dbc::VectorResultSet& rs, std::size_t maxRows) {
  const auto& meta = rs.metaData();
  const std::size_t ncols = meta.columnCount();
  if (ncols == 0) return "(empty result)\n";

  std::vector<std::vector<std::string>> cells;
  std::vector<std::size_t> widths(ncols, 0);
  {
    std::vector<std::string> header;
    header.reserve(ncols);
    for (std::size_t c = 0; c < ncols; ++c) {
      header.push_back(meta.column(c).name);
      widths[c] = std::max(widths[c], header.back().size());
    }
    cells.push_back(std::move(header));
  }
  std::size_t shown = 0;
  for (const auto& row : rs.rows()) {
    if (shown++ >= maxRows) break;
    std::vector<std::string> line;
    line.reserve(ncols);
    for (std::size_t c = 0; c < ncols && c < row.size(); ++c) {
      line.push_back(row[c].toString());
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }

  std::string out;
  for (std::size_t r = 0; r < cells.size(); ++r) {
    for (std::size_t c = 0; c < cells[r].size(); ++c) {
      std::string cell = cells[r][c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 < cells[r].size()) out += "  ";
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < ncols; ++c) {
        out += std::string(widths[c], '-');
        if (c + 1 < ncols) out += "  ";
      }
      out += '\n';
    }
  }
  if (rs.rowCount() > maxRows) {
    out += "... (" + std::to_string(rs.rowCount() - maxRows) +
           " more rows)\n";
  }
  return out;
}

std::string renderTable(const dbc::SharedResultSet& rs, std::size_t maxRows) {
  return renderTable(rs.underlying(), maxRows);
}

std::string renderCachedTree(const std::string& gatewayName,
                             CacheController& cache, util::Clock& clock,
                             const std::vector<TreeViewEntry>& entries) {
  std::string out = "[gateway] " + gatewayName + "\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const bool last = i + 1 == entries.size();
    const char* branch = last ? "`-- " : "|-- ";
    const char* cont = last ? "    " : "|   ";
    out += branch + entries[i].url + "\n";

    const std::string key = CacheController::key(entries[i].url, entries[i].sql);
    auto cachedAt = cache.cachedAt(key);
    auto rows = cache.lookup(key);
    if (rows == nullptr) {
      out += std::string(cont) + "(no cached data -- poll to refresh)\n";
      continue;
    }
    const auto age = cachedAt ? (clock.now() - *cachedAt) / util::kSecond : 0;
    out += std::string(cont) + "cached " + std::to_string(age) +
           "s ago: " + entries[i].sql + "\n";
    for (const auto& line :
         [&] {
           std::vector<std::string> lines;
           std::string table = renderTable(*rows, 8);
           std::string cur;
           for (char ch : table) {
             if (ch == '\n') {
               lines.push_back(cur);
               cur.clear();
             } else {
               cur.push_back(ch);
             }
           }
           return lines;
         }()) {
      out += std::string(cont) + "  " + line + "\n";
    }
  }
  return out;
}

}  // namespace gridrm::core
