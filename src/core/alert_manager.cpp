#include "gridrm/core/alert_manager.hpp"

#include <algorithm>

#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::core {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

void AlertManager::addRule(AlertRule rule) {
  CompiledRule compiled;
  try {
    compiled.query = sql::parseSelect(rule.sql);
    // The condition is an expression; parse it through a WHERE clause.
    sql::SelectStatement shim =
        sql::parseSelect("SELECT * FROM shim WHERE " + rule.condition);
    compiled.condition = std::move(shim.where);
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax,
                   "alert rule '" + rule.name + "': " + e.what());
  }
  compiled.rule = std::move(rule);

  std::scoped_lock lock(mu_);
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const CompiledRule& r) {
                           return r.rule.name == compiled.rule.name;
                         });
  if (it != rules_.end()) {
    *it = std::move(compiled);
  } else {
    rules_.push_back(std::move(compiled));
  }
}

bool AlertManager::removeRule(const std::string& name) {
  std::scoped_lock lock(mu_);
  const auto before = rules_.size();
  std::erase_if(rules_,
                [&](const CompiledRule& r) { return r.rule.name == name; });
  return rules_.size() != before;
}

std::vector<AlertRule> AlertManager::rules() const {
  std::scoped_lock lock(mu_);
  std::vector<AlertRule> out;
  out.reserve(rules_.size());
  for (const auto& r : rules_) out.push_back(r.rule);
  return out;
}

std::size_t AlertManager::evaluateCompiled(const Principal& principal,
                                           const CompiledRule& compiled) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.evaluations;
  }
  QueryOptions options;
  options.useCache = false;  // alerts must see fresh data
  QueryResult result = requestManager_.queryOne(principal, compiled.rule.url,
                                                compiled.rule.sql, options);
  if (!result.complete() || result.rows == nullptr) {
    std::scoped_lock lock(mu_);
    ++stats_.queryFailures;
    return 0;
  }

  const auto& meta = result.rows->metaData();
  std::size_t raised = 0;
  for (const auto& row : result.rows->rows()) {
    {
      std::scoped_lock lock(mu_);
      ++stats_.rowsExamined;
    }
    sql::FnRowAccessor accessor(
        [&](const std::string& name) -> std::optional<Value> {
          auto idx = meta.columnIndex(name);
          if (!idx || *idx >= row.size()) return std::nullopt;
          return row[*idx];
        });
    bool violated = false;
    try {
      violated = sql::evaluatePredicate(*compiled.condition, accessor);
    } catch (const sql::EvalError&) {
      std::scoped_lock lock(mu_);
      ++stats_.conditionErrors;
      continue;
    }
    if (!violated) continue;

    std::string subject;
    if (auto idx = meta.columnIndex(compiled.rule.subjectColumn)) {
      if (*idx < row.size() && !row[*idx].isNull()) {
        subject = row[*idx].toString();
      }
    }
    {
      std::scoped_lock lock(mu_);
      const auto key = std::make_pair(compiled.rule.name, subject);
      auto it = lastFired_.find(key);
      if (it != lastFired_.end() &&
          clock_.now() - it->second < compiled.rule.holdOff) {
        ++stats_.suppressedByHoldOff;
        continue;
      }
      lastFired_[key] = clock_.now();
      ++stats_.alertsRaised;
    }

    Event event;
    event.type = "gateway.alert." + util::toLower(compiled.rule.name);
    event.source = subject.empty() ? compiled.rule.url : subject;
    event.severity = compiled.rule.severity;
    event.fields["rule"] = Value(compiled.rule.name);
    event.fields["condition"] = Value(compiled.rule.condition);
    event.fields["url"] = Value(compiled.rule.url);
    for (std::size_t c = 0; c < meta.columnCount() && c < row.size(); ++c) {
      if (!row[c].isNull()) event.fields[meta.column(c).name] = row[c];
    }
    eventManager_.ingest(std::move(event));
    ++raised;
  }
  return raised;
}

std::size_t AlertManager::evaluate(const Principal& principal) {
  // Copy compiled rules out so rule mutation during evaluation is safe;
  // the query/condition ASTs are cloned (unique ownership).
  std::vector<CompiledRule> snapshot;
  {
    std::scoped_lock lock(mu_);
    snapshot.reserve(rules_.size());
    for (const auto& r : rules_) {
      CompiledRule copy;
      copy.rule = r.rule;
      copy.query.table = r.query.table;  // unused during evaluation
      copy.condition = r.condition->clone();
      snapshot.push_back(std::move(copy));
    }
  }
  std::size_t raised = 0;
  for (const auto& compiled : snapshot) {
    raised += evaluateCompiled(principal, compiled);
  }
  return raised;
}

std::size_t AlertManager::evaluateRule(const Principal& principal,
                                       const std::string& name) {
  CompiledRule copy;
  {
    std::scoped_lock lock(mu_);
    auto it = std::find_if(rules_.begin(), rules_.end(),
                           [&](const CompiledRule& r) {
                             return r.rule.name == name;
                           });
    if (it == rules_.end()) {
      throw SqlError(ErrorCode::Generic, "no alert rule '" + name + "'");
    }
    copy.rule = it->rule;
    copy.condition = it->condition->clone();
  }
  return evaluateCompiled(principal, copy);
}

AlertManagerStats AlertManager::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
