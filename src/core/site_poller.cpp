#include "gridrm/core/site_poller.hpp"

#include <chrono>

#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"

namespace gridrm::core {

void SitePoller::setStreamSink(stream::ContinuousQueryEngine* sink) {
  std::scoped_lock lock(mu_);
  streamSink_ = sink;
}

void SitePoller::addTask(PollTask task) {
  std::scoped_lock lock(mu_);
  tasks_.push_back(Scheduled{std::move(task), 0});
}

std::size_t SitePoller::removeTasks(const std::string& url) {
  std::scoped_lock lock(mu_);
  const auto before = tasks_.size();
  std::erase_if(tasks_,
                [&](const Scheduled& s) { return s.task.url == url; });
  return before - tasks_.size();
}

std::size_t SitePoller::taskCount() const {
  std::scoped_lock lock(mu_);
  return tasks_.size();
}

void SitePoller::runPoll(const PollTask& task, Batch& batch) {
  // Skip sources whose breaker is open. Checked at *run* time, not at
  // submission: a breaker that opened while the poll sat queued still
  // spares the degraded source. wouldReject() is a pure read, so the
  // poller never claims the half-open probe away from interactive
  // queries.
  if (requestManager_.sourceHealth().wouldReject(task.url)) {
    std::scoped_lock lock(mu_);
    ++stats_.pollsSkippedOpen;
    return;
  }
  QueryOptions options;
  options.useCache = false;  // a poll always contacts the source
  options.recordHistory = task.recordHistory;
  options.lane = Lane::Background;  // fan-out attempts yield too
  QueryResult result =
      requestManager_.queryOne(principal_, task.url, task.sql, options);
  {
    std::scoped_lock lock(batch.mu);
    ++batch.executed;
  }
  if (!result.complete()) {
    std::scoped_lock lock(mu_);
    ++stats_.polls;
    ++stats_.pollFailures;
    return;
  }
  if (task.refreshCache && result.rows != nullptr) {
    // Hand the fresh rows to the cache so interactive clients get the
    // "recent status" view without touching the agents (section 4).
    // The poll result already owns shared row storage, so the cache
    // adopts it without copying a single row (E14).
    requestManager_.refreshCache(task.url, task.sql, result.rows->shared());
  }
  stream::ContinuousQueryEngine* sink;
  {
    std::scoped_lock lock(mu_);
    ++stats_.polls;
    sink = streamSink_;
  }
  if (sink != nullptr && result.rows != nullptr) {
    // The same fresh batch feeds continuous-query subscribers: each
    // poll refresh is one incremental push toward matching streams.
    try {
      drivers::PlanCache* plans = requestManager_.planCache();
      const std::string table = plans != nullptr
                                    ? plans->statement(task.sql)->table
                                    : sql::parseSelect(task.sql).table;
      sink->onRows(task.url, table, result.rows->metaData(),
                   result.rows->rows());
      std::scoped_lock lock(mu_);
      stats_.rowsStreamed += result.rows->rowCount();
    } catch (const sql::ParseError&) {
      // Unparseable task SQL never reaches here (the poll would have
      // failed), but stay defensive.
    } catch (const dbc::SqlError&) {
      // Same guarantee when the plan cache rejects the SQL.
    }
  }
}

std::size_t SitePoller::tick() {
  const util::TimePoint now = clock_.now();
  Scheduler& scheduler = requestManager_.scheduler();
  auto batch = std::make_shared<Batch>();
  {
    std::scoped_lock lock(mu_);
    ++stats_.ticks;
    for (auto& scheduled : tasks_) {
      if (scheduled.everRun &&
          now - scheduled.lastRun < scheduled.task.interval) {
        continue;
      }
      {
        std::scoped_lock blk(batch->mu);
        ++batch->pending;
      }
      const bool accepted = scheduler.submit(
          Lane::Background,
          [this, task = scheduled.task, batch] {
            runPoll(task, *batch);
            std::scoped_lock blk(batch->mu);
            --batch->pending;
            batch->cv.notify_all();
          },
          CancelToken{}, /*blocking=*/true);
      if (!accepted) {
        // Backpressure: leave lastRun untouched so the poll is due
        // again next tick instead of piling onto a saturated queue.
        {
          std::scoped_lock blk(batch->mu);
          --batch->pending;
        }
        ++stats_.pollsDeferred;
        continue;
      }
      scheduled.lastRun = now;
      scheduled.everRun = true;
    }
  }

  // tick() keeps its synchronous contract: the due polls run in
  // parallel on the scheduler, but the caller only resumes once they
  // are done (or the scheduler stopped and cancelled the queued ones).
  {
    std::unique_lock blk(batch->mu);
    while (batch->pending > 0) {
      batch->cv.wait_for(blk, std::chrono::milliseconds(2));
      if (batch->pending == 0) break;
      if (scheduler.stopped()) break;
    }
  }
  std::size_t executed = 0;
  {
    std::scoped_lock blk(batch->mu);
    executed = batch->executed;
  }

  if (alerts_ != nullptr && executed > 0) {
    const std::size_t raised = alerts_->evaluate(principal_);
    std::scoped_lock lock(mu_);
    stats_.alertsRaised += raised;
  }
  return executed;
}

void SitePoller::runFor(util::Duration duration, util::Duration step) {
  if (step <= 0) step = util::kSecond;
  for (util::Duration elapsed = 0; elapsed < duration; elapsed += step) {
    (void)tick();
    clock_.sleepFor(step);
  }
  (void)tick();
}

void SitePoller::startTicking(util::EventScheduler& scheduler,
                              util::Duration interval) {
  stopTicking();
  tickScheduler_ = &scheduler;
  tickEvent_ = scheduler.scheduleEvery(interval, [this] { (void)tick(); });
}

void SitePoller::stopTicking() {
  if (tickScheduler_ != nullptr) {
    tickScheduler_->cancel(tickEvent_);
  }
  tickScheduler_ = nullptr;
  tickEvent_ = 0;
}

std::size_t SitePoller::enforceRetention(store::Database& db,
                                         util::Duration keep) {
  const std::int64_t cutoff = clock_.now() - keep;
  std::size_t dropped = 0;
  for (const auto& table : db.tableNames()) {
    if (table.rfind("History", 0) == 0) {
      // Routes to the columnar tsdb for history tables stored there.
      dropped += db.pruneOlderThan(table, "RecordedAt", cutoff);
    } else if (table == "EventHistory") {
      dropped += db.pruneOlderThan(table, "Timestamp", cutoff);
    }
  }
  if (auto* ts = db.timeSeries()) {
    // Tier maintenance rides along: seal complete rollup buckets and
    // apply per-tier TTLs so downsampled history ages out on schedule.
    dropped += ts->retentionTick();
  }
  return dropped;
}

SitePollerStats SitePoller::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::core
